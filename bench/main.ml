(** Benchmark and reproduction harness.

    The paper's evaluation is a body of formal claims, not measurement
    tables (its figures are definitions).  This harness regenerates every
    claim as a table (experiments E1–E8 of DESIGN.md), then runs bechamel
    micro-benchmarks (P1–P5) for the throughput of the checkers, the
    explorer, and the optimizer.

    The heavy matrices (E1/E2, E4, E5) are swept in parallel by the
    engine (lib/engine, docs/ENGINE.md); [--jobs N] sets the domain
    count.  Swept tables are byte-identical for every N except the
    wall-clock columns (ms / "swept in" lines).

    Usage: dune exec bench/main.exe [-- --full] [-- --no-bechamel]
    [-- --jobs N]
    [--full] also sweeps the complete adequacy matrix (E5) instead of the
    default slice.

    Robustness flags (docs/ROBUSTNESS.md): [--timeout-ms MS] and
    [--max-states N] bound every swept task with a cooperative budget,
    [--retries N] retries transient failures, [--inject-faults N] (with
    [--inject-seed S]) drills the supervisor by making N tasks per table
    raise.  Under any of these the swept tables go through the supervised
    sweep: failed rows print as UNKNOWN(reason), nothing ever escapes.

    [--service] appends E10: an in-process seqd (lib/service) is started
    on a temp socket with a fresh on-disk cache, the transformation corpus
    is streamed through it three times — cold, warm (same server), and
    again after a server restart — and the table reports throughput and
    the serving-tier split per pass.  The warm pass must answer entirely
    from cache (zero computed checks) or the run counts a mismatch.

    [--json PATH] additionally writes every table (rows and wall-clock
    timings) as one JSON document; the schema is documented in
    docs/ENGINE.md.  Out-of-range flags exit 2 with a one-line message
    (README exit-code table).  Exit 0: clean (or [--keep-going]);
    3: mismatch/violation; 4: some rows UNKNOWN. *)

open Lang
module C = Litmus.Catalog
module M = Promising.Machine
module Matrix = Litmus.Matrix

module J = Service.Json

let header title =
  Fmt.pr "@.%s@.%s@." title (String.make (String.length title) '=')

(* Machine-readable record of the run (--json PATH): every table appends
   one object here; the schema is documented in docs/ENGINE.md. *)
let json_tables : J.t list ref = ref []

let add_table ?ms id title rows =
  let obj =
    [ ("id", J.String id); ("title", J.String title) ]
    @ (match ms with Some ms -> [ ("ms", J.Float ms) ] | None -> [])
    @ [ ("rows", J.List rows) ]
  in
  json_tables := J.Obj obj :: !json_tables

(* A supervised sweep row as JSON: the [Ok] payload via [row], an
   [Error] as its normalized reason. *)
let jrow_outcome ~name ~row (o : _ Engine.Sweep.outcome) =
  match o.Engine.Sweep.result with
  | Ok r -> J.Obj (("name", J.String name) :: row r)
  | Error reason ->
    J.Obj
      [ ("name", J.String name);
        ("unknown", J.String (Engine.Verdict.reason_to_string reason)) ]

(* Wall-clock line for a swept table: timing only, everything above it is
   deterministic. *)
let swept_in jobs ms = Fmt.pr "-- swept in %.1f ms (jobs=%d)@." ms jobs

let values = Domain.default_values

(* Robustness configuration shared by the swept tables; [supervised]
   switches the E1/E2, E4, E5 sweeps to Sweep.run_verdict. *)
type robust = {
  spec : Engine.Budget.spec;
  retries : int;
  inject_faults : int;
  inject_seed : int;
}

let supervised (r : robust) =
  (not (Engine.Budget.spec_is_unlimited r.spec))
  || r.retries > 0 || r.inject_faults > 0

let faults_for (r : robust) ~tasks =
  if r.inject_faults = 0 then Engine.Faults.none
  else
    Engine.Faults.seeded ~seed:r.inject_seed ~tasks ~faulty:r.inject_faults ()

let mismatches = ref 0
let unknowns = ref 0

let count_outcomes ~ok rows =
  List.iter
    (fun (_, (o : _ Engine.Sweep.outcome)) ->
      match o.Engine.Sweep.result with
      | Ok r -> if not (ok r) then incr mismatches
      | Error _ -> incr unknowns)
    rows

(* ------------------------------------------------------------------ *)
(* E1/E2: the transformation soundness matrix                           *)
(* ------------------------------------------------------------------ *)

let transformation_matrix ~pool ~robust () =
  let title =
    "E1/E2 — Transformation soundness matrix (SEQ, Def 2.4 and Def 3.3)"
  in
  header title;
  let jrow (r : Matrix.e12_row) =
    [ ("expected_simple", J.String (C.verdict_to_string r.tr.C.simple));
      ("expected_advanced", J.String (C.verdict_to_string r.tr.C.advanced));
      ("got_simple", J.String (C.verdict_to_string r.simple_got));
      ("got_advanced", J.String (C.verdict_to_string r.advanced_got));
      ("pairs", J.Int r.pairs);
      ("ok", J.Bool (Matrix.e12_ok r)) ]
  in
  let ms =
    if supervised robust then begin
      let faults = faults_for robust ~tasks:(List.length C.transformations) in
      let rows, ms =
        Engine.Stats.timed (fun () ->
            Matrix.e12_rows_v ~pool ~budget:robust.spec
              ~retries:robust.retries ~faults ())
      in
      Fmt.pr "%s" (Matrix.render_e12_v ~stats:true rows);
      count_outcomes ~ok:Matrix.e12_ok rows;
      add_table ~ms "E1/E2" title
        (List.map
           (fun ((t : C.transformation), o) ->
             jrow_outcome ~name:t.C.name ~row:jrow o)
           rows);
      ms
    end
    else begin
      let rows, ms = Engine.Stats.timed (fun () -> Matrix.e12_rows ~pool ()) in
      Fmt.pr "%s" (Matrix.render_e12 ~stats:true rows);
      add_table ~ms "E1/E2" title
        (List.map
           (fun (r : Matrix.e12_row) ->
             J.Obj (("name", J.String r.tr.C.name) :: jrow r))
           rows);
      ms
    end
  in
  swept_in (Engine.Pool.size pool) ms

(* ------------------------------------------------------------------ *)
(* E3: the certified optimizer                                          *)
(* ------------------------------------------------------------------ *)

let optimizer_table () =
  let title =
    "E3 — Certified optimizer (§4): passes, fixpoint iterations, validation"
  in
  header title;
  let jrows = ref [] in
  let programs =
    [
      ("Fig4",
       "X.store(na, 2); l = Y.load(acq); \
        if l == 0 { a = X.load(na); Y.store(rel, 1) }; \
        b = X.load(na); return 10*a + b");
      ("loop-kernel",
       "X.store(na, 1); X.store(na, 2); s = 0; i = 0; \
        while i < 2 { a = X.load(na); b = X.load(na); s = s + a + b; \
        i = i + 1 }; return s");
      ("dse-rel",
       "X.store(na, 1); Y.store(rel, 0); X.store(na, 2)");
      ("llf-chain",
       "a = X.load(na); Y.store(rel, 1); b = X.load(na); c = X.load(na); \
        return a + 3*b + 9*c");
    ]
  in
  Fmt.pr "%-12s %-6s %-6s %-6s %-6s %-10s %-10s %s@." "program" "slf" "llf"
    "dse" "licm" "iters<=3" "size" "validated";
  let fp = ref Engine.Stats.fastpath_zero in
  let (), table_ms =
    Engine.Stats.timed @@ fun () ->
  List.iter
    (fun (name, src) ->
      let prog = Parser.stmt_of_string src in
      let report, v = Optimizer.Validate.certified_optimize prog in
      let rewrites p =
        match
          List.find_opt
            (fun (r : Optimizer.Driver.pass_report) -> r.Optimizer.Driver.pass = p)
            report.Optimizer.Driver.passes
        with
        | Some r -> r.Optimizer.Driver.rewrites
        | None -> 0
      in
      let max_iters =
        List.fold_left
          (fun acc (r : Optimizer.Driver.pass_report) ->
            max acc r.Optimizer.Driver.loop_iters)
          1 report.Optimizer.Driver.passes
      in
      let route =
        match v.Optimizer.Validate.proof with
        | Optimizer.Validate.Static _ ->
          fp :=
            Engine.Stats.add_fastpath !fp
              { Engine.Stats.static_hits = 1; static_abs_hits = 0;
                enumerated = 0 };
          "static"
        | Optimizer.Validate.Static_abs _ ->
          fp :=
            Engine.Stats.add_fastpath !fp
              { Engine.Stats.static_hits = 0; static_abs_hits = 1;
                enumerated = 0 };
          "static-abs"
        | Optimizer.Validate.Enumerated ->
          fp :=
            Engine.Stats.add_fastpath !fp
              { Engine.Stats.static_hits = 0; static_abs_hits = 0;
                enumerated = 1 };
          "enum"
      in
      let validated =
        if v.Optimizer.Validate.valid then
          if v.Optimizer.Validate.simple then
            Printf.sprintf "ok (simple, %s)" route
          else Printf.sprintf "ok (advanced, %s)" route
        else "INVALID"
      in
      jrows :=
        J.Obj
          [ ("name", J.String name);
            ("slf", J.Int (rewrites Optimizer.Driver.SLF));
            ("llf", J.Int (rewrites Optimizer.Driver.LLF));
            ("dse", J.Int (rewrites Optimizer.Driver.DSE));
            ("licm", J.Int (rewrites Optimizer.Driver.LICM));
            ("iters", J.Int max_iters);
            ("size_before", J.Int report.Optimizer.Driver.size_before);
            ("size_after", J.Int report.Optimizer.Driver.size_after);
            ("valid", J.Bool v.Optimizer.Validate.valid);
            ("simple", J.Bool v.Optimizer.Validate.simple);
            ("route", J.String route) ]
        :: !jrows;
      Fmt.pr "%-12s %-6d %-6d %-6d %-6d %-10s %-10s %s@." name
        (rewrites Optimizer.Driver.SLF)
        (rewrites Optimizer.Driver.LLF)
        (rewrites Optimizer.Driver.DSE)
        (rewrites Optimizer.Driver.LICM)
        (Printf.sprintf "%d %s" max_iters (if max_iters <= 3 then "ok" else "BAD"))
        (Printf.sprintf "%d->%d" report.Optimizer.Driver.size_before
           report.Optimizer.Driver.size_after)
        validated)
    programs
  in
  add_table ~ms:table_ms "E3" title (List.rev !jrows);
  Fmt.pr "-- fast path: %a@." Engine.Stats.pp_fastpath !fp

(* ------------------------------------------------------------------ *)
(* E4: PS_na litmus outcomes                                            *)
(* ------------------------------------------------------------------ *)

let litmus_table ~pool ~robust () =
  let title = "E4 — PS_na behaviors of the paper's concurrent programs (Fig 5)" in
  header title;
  let jrow (r : Matrix.e4_row) =
    [ ("states", J.Int r.states);
      ("races", J.Bool r.races);
      ("truncated", J.Bool r.truncated);
      ("behaviors", J.String r.behaviors) ]
  in
  let ms =
    if supervised robust then begin
      let faults =
        faults_for robust ~tasks:(List.length C.concurrent_programs)
      in
      let rows, ms =
        Engine.Stats.timed (fun () ->
            Matrix.e4_rows_v ~pool ~budget:robust.spec ~retries:robust.retries
              ~faults ())
      in
      Fmt.pr "%s" (Matrix.render_e4_v ~stats:true rows);
      count_outcomes ~ok:(fun (_ : Matrix.e4_row) -> true) rows;
      add_table ~ms "E4" title
        (List.map
           (fun ((c : C.concurrent), o) ->
             jrow_outcome ~name:c.C.cname ~row:jrow o)
           rows);
      ms
    end
    else begin
      let rows, ms = Engine.Stats.timed (fun () -> Matrix.e4_rows ~pool ()) in
      Fmt.pr "%s" (Matrix.render_e4 ~stats:true rows);
      add_table ~ms "E4" title
        (List.map
           (fun (r : Matrix.e4_row) ->
             J.Obj (("name", J.String r.c.C.cname) :: jrow r))
           rows);
      ms
    end
  in
  swept_in (Engine.Pool.size pool) ms

(* ------------------------------------------------------------------ *)
(* E15: the N-model differential backend grid                           *)
(* ------------------------------------------------------------------ *)

let backend_grid_table ~pool ~robust () =
  let title =
    "E15 — Differential litmus grid: {SC, TSO, ARMv8, PS_na} with the \
     inclusion chain SC ⊆ TSO ⊆ ARMv8"
  in
  header title;
  let jrow (r : Matrix.e15_row) =
    [ ("weak", J.List (List.map (fun n -> J.Int n) r.ge.C.weak));
      ( "models",
        J.Obj (List.map (fun (m, allowed) -> (m, J.Bool allowed)) r.cells) );
      ("chain_ok", J.Bool r.chain_ok);
      ("truncated", J.Bool r.truncated);
      ("ok", J.Bool (Matrix.e15_ok r)) ]
  in
  let ms =
    if supervised robust then begin
      let faults = faults_for robust ~tasks:(List.length C.grid_programs) in
      let rows, ms =
        Engine.Stats.timed (fun () ->
            Matrix.e15_rows_v ~pool ~budget:robust.spec
              ~retries:robust.retries ~faults ())
      in
      Fmt.pr "%s" (Matrix.render_e15_v ~stats:true rows);
      count_outcomes ~ok:Matrix.e15_ok rows;
      add_table ~ms "E15" title
        (List.map
           (fun ((ge : C.grid_entry), o) ->
             jrow_outcome ~name:ge.C.g.C.cname ~row:jrow o)
           rows);
      ms
    end
    else begin
      let rows, ms = Engine.Stats.timed (fun () -> Matrix.e15_rows ~pool ()) in
      Fmt.pr "%s" (Matrix.render_e15 ~stats:true rows);
      List.iter
        (fun r -> if not (Matrix.e15_ok r) then incr mismatches)
        rows;
      add_table ~ms "E15" title
        (List.map
           (fun (r : Matrix.e15_row) ->
             J.Obj (("name", J.String r.ge.C.g.C.cname) :: jrow r))
           rows);
      ms
    end
  in
  swept_in (Engine.Pool.size pool) ms;
  (* the pass-soundness half: SEQ-validated passes re-checked as
     behavior-set refinement per backend (catchfire included — the one
     model that refutes load introduction, E6) *)
  let ptitle =
    "E15 — Pass soundness per backend: SEQ-validated passes in a \
     concurrent context"
  in
  header ptitle;
  let pjrow (r : Matrix.e15p_row) =
    [ ("context", J.String r.ctx_name);
      ( "models",
        J.Obj (List.map (fun (m, refines) -> (m, J.Bool refines)) r.cells) );
      ("truncated", J.Bool r.truncated) ]
  in
  let pms =
    if supervised robust then begin
      let faults = faults_for robust ~tasks:(List.length C.grid_passes) in
      let rows, ms =
        Engine.Stats.timed (fun () ->
            Matrix.e15p_rows_v ~pool ~budget:robust.spec
              ~retries:robust.retries ~faults ())
      in
      Fmt.pr "%s" (Matrix.render_e15p_v ~stats:true rows);
      count_outcomes ~ok:(fun (_ : Matrix.e15p_row) -> true) rows;
      add_table ~ms "E15-passes" ptitle
        (List.map
           (fun ((tr_name, _), o) ->
             jrow_outcome ~name:tr_name ~row:pjrow o)
           rows);
      ms
    end
    else begin
      let rows, ms =
        Engine.Stats.timed (fun () -> Matrix.e15p_rows ~pool ())
      in
      Fmt.pr "%s" (Matrix.render_e15p ~stats:true rows);
      add_table ~ms "E15-passes" ptitle
        (List.map
           (fun (r : Matrix.e15p_row) ->
             J.Obj (("name", J.String r.tr.C.name) :: pjrow r))
           rows);
      ms
    end
  in
  swept_in (Engine.Pool.size pool) pms

(* ------------------------------------------------------------------ *)
(* E5: adequacy                                                         *)
(* ------------------------------------------------------------------ *)

let adequacy_table ~pool ~full ~robust () =
  let title =
    if full then "E5 — Adequacy (Thm 6.2): full corpus × context matrix"
    else "E5 — Adequacy (Thm 6.2): corpus slice (use --full for the matrix)"
  in
  header title;
  let jrow (r : Litmus.Adequacy.row) =
    [ ("seq_simple", J.Bool r.seq_simple);
      ("seq_advanced", J.Bool r.seq_advanced);
      ("pairs", J.Int r.seq_pairs);
      ("states", J.Int r.states);
      ("ok", J.Bool (Litmus.Adequacy.row_ok r));
      ( "contexts",
        J.List
          (List.map
             (fun (cname, refines, complete) ->
               J.Obj
                 [ ("name", J.String cname);
                   ("refines", J.Bool refines);
                   ("complete", J.Bool complete) ])
             r.contexts) ) ]
  in
  let corpus =
    if full then C.transformations
    else List.filteri (fun i _ -> i mod 4 = 0) C.transformations
  in
  let contexts =
    if full then C.contexts else List.filteri (fun i _ -> i < 4) C.contexts
  in
  let ms =
    if supervised robust then begin
      let faults = faults_for robust ~tasks:(List.length corpus) in
      let rows, ms =
        Engine.Stats.timed (fun () ->
            Litmus.Adequacy.run_v ~pool ~contexts ~budget:robust.spec
              ~retries:robust.retries ~faults ~corpus ())
      in
      Fmt.pr "%s" (Matrix.render_e5_v ~stats:true rows);
      count_outcomes ~ok:Litmus.Adequacy.row_ok rows;
      add_table ~ms "E5" title
        (List.map
           (fun ((t : C.transformation), o) ->
             jrow_outcome ~name:t.C.name ~row:jrow o)
           rows);
      ms
    end
    else begin
      let rows, ms =
        Engine.Stats.timed (fun () ->
            Litmus.Adequacy.run ~pool ~contexts ~corpus ())
      in
      Fmt.pr "%s" (Matrix.render_e5 ~stats:true rows);
      add_table ~ms "E5" title
        (List.map
           (fun (r : Litmus.Adequacy.row) ->
             J.Obj (("name", J.String r.tr.C.name) :: jrow r))
           rows);
      ms
    end
  in
  swept_in (Engine.Pool.size pool) ms

(* ------------------------------------------------------------------ *)
(* E6: catch-fire comparison                                            *)
(* ------------------------------------------------------------------ *)

let catchfire_table () =
  let title = "E6 — Load introduction: PS_na vs the catch-fire baseline (§1)" in
  header title;
  let jrows = ref [] in
  let cases =
    [
      ("load-intro", "return 0", "a = X.load(na); return 0",
       "X.store(na, 1); return 0");
      ("licm-dead-loop",
       "b = 1; while b == 0 { a = X.load(na); b = Y.load(rlx) }; return a",
       "b = 1; c = X.load(na); while b == 0 { a = c; b = Y.load(rlx) }; return a",
       "X.store(na, 2); return 0");
      ("slf", "X.store(na, 1); b = X.load(na); return b",
       "X.store(na, 1); b = 1; return b", "Y.store(rel, 1); return 0");
    ]
  in
  Fmt.pr "%-16s %-12s %-12s@." "transformation" "PS_na" "catch-fire";
  let (), table_ms =
    Engine.Stats.timed @@ fun () ->
    List.iter
      (fun (name, src, tgt, ctx) ->
        let th s = Parser.threads_of_string (s ^ " ||| " ^ ctx) in
        let ps_ok =
          let rs = M.explore (th src) and rt = M.explore (th tgt) in
          M.refines ~src:rs.M.behaviors ~tgt:rt.M.behaviors
        in
        let cf_ok =
          let rs = Baselines.Catchfire.explore (th src) in
          let rt = Baselines.Catchfire.explore (th tgt) in
          Baselines.Catchfire.refines ~src:rs ~tgt:rt
        in
        jrows :=
          J.Obj
            [ ("name", J.String name);
              ("ps_na_sound", J.Bool ps_ok);
              ("catchfire_sound", J.Bool cf_ok) ]
          :: !jrows;
        Fmt.pr "%-16s %-12s %-12s@." name
          (if ps_ok then "sound" else "unsound")
          (if cf_ok then "sound" else "unsound"))
      cases
  in
  add_table ~ms:table_ms "E6" title (List.rev !jrows)

(* ------------------------------------------------------------------ *)
(* E7: DRF guarantees                                                   *)
(* ------------------------------------------------------------------ *)

let drf_table () =
  let title = "E7 — DRF guarantees (§5 Results, ported from [8])" in
  header title;
  let jrows = ref [] in
  let cases =
    [
      ("MP-rel-acq",
       "X.store(na,1); Y.store(rel,1); return 0 ||| \
        a = Y.load(acq); if a == 1 { b = X.load(na) }; return 10*a+b", 1);
      ("SB-rel-acq",
       "Y.store(rel,1); a = Z.load(acq); return a ||| \
        Z.store(rel,1); b = Y.load(acq); return b", 1);
      ("LB-rlx",
       "a = Y.load(rlx); Z.store(rlx,1); return a ||| \
        b = Z.load(rlx); Y.store(rlx,1); return b", 1);
      ("lock",
       "a = 0; while a == 0 { a = cas(L, 0, 1) }; X.store(na, 1); \
        L.store(rel, 0); return 0 ||| \
        b = 0; while b == 0 { b = cas(L, 0, 1) }; c = X.load(na); \
        L.store(rel, 0); return c", 0);
    ]
  in
  Fmt.pr "%-12s %-11s %-11s %-13s %-11s@." "program" "PF-racefree" "DRF-PF"
    "LOCK-racefree" "DRF-LOCK";
  let (), table_ms =
    Engine.Stats.timed @@ fun () ->
    List.iter
      (fun (name, text, budget) ->
        let params =
          { Promising.Thread.default_params with promise_budget = budget }
        in
        let lock_locs =
          if name = "lock" then Loc.Set.singleton (Loc.make "L")
          else Loc.Set.empty
        in
        let r =
          Baselines.Drf.check ~params ~lock_locs (Parser.threads_of_string text)
        in
        let show premise conclusion =
          if premise then if conclusion then "holds" else "FAILS" else "vacuous"
        in
        jrows :=
          J.Obj
            [ ("name", J.String name);
              ("pf_race_free", J.Bool r.Baselines.Drf.pf_race_free);
              ("drf_pf", J.String
                 (show r.Baselines.Drf.pf_race_free
                    r.Baselines.Drf.drf_pf_holds));
              ("lock_race_free", J.Bool r.Baselines.Drf.lock_race_free);
              ("drf_lock", J.String
                 (show r.Baselines.Drf.lock_race_free
                    r.Baselines.Drf.drf_lock_holds)) ]
          :: !jrows;
        Fmt.pr "%-12s %-11b %-11s %-13b %-11s@." name
          r.Baselines.Drf.pf_race_free
          (show r.Baselines.Drf.pf_race_free r.Baselines.Drf.drf_pf_holds)
          r.Baselines.Drf.lock_race_free
          (show r.Baselines.Drf.lock_race_free r.Baselines.Drf.drf_lock_holds))
      cases
  in
  add_table ~ms:table_ms "E7" title (List.rev !jrows)

(* ------------------------------------------------------------------ *)
(* E8: determinism premise / Remark 3 / App C                           *)
(* ------------------------------------------------------------------ *)

let determinism_table () =
  let title = "E8 — Remark 3 / App C: internal choice vs release writes" in
  header title;
  let jrows = ref [] in
  let check name src tgt =
    let src = Parser.stmt_of_string src and tgt = Parser.stmt_of_string tgt in
    let d = Domain.of_stmts ~values [ src; tgt ] in
    let adv = Seq_model.Advanced.check d ~src ~tgt in
    jrows :=
      J.Obj [ ("name", J.String name); ("accepted", J.Bool adv) ] :: !jrows;
    Fmt.pr "%-44s %s@." name (if adv then "accepted" else "refuted")
  in
  let (), table_ms =
    Engine.Stats.timed @@ fun () ->
    check "choose ; rel-write  ~>  rel-write ; choose"
      "a = choose(); Y.store(rel, 1); return a"
      "Y.store(rel, 1); a = choose(); return a";
    check "choose ; na-write  ~>  na-write ; choose"
      "a = choose(); X.store(na, 1); return a"
      "X.store(na, 1); a = choose(); return a"
  in
  add_table ~ms:table_ms "E8" title (List.rev !jrows);
  Fmt.pr "(SEQ records choose(_) labels precisely so the first reordering is@.";
  Fmt.pr " refuted — PS forbids it, App C — while the second stays allowed.)@."

(* ------------------------------------------------------------------ *)
(* E9: static fast-path validation over the transformation corpus       *)
(* ------------------------------------------------------------------ *)

let fastpath_table () =
  let title =
    "E9 — Static fast-path validation: pipeline-replay certificates vs \
     enumeration"
  in
  header title;
  (* The fast path may only ever certify pairs whose advanced refinement
     holds; the catalog's expected verdicts are the (already enumerated)
     ground truth, so no re-enumeration is needed to audit agreement. *)
  let fp = ref Engine.Stats.fastpath_zero in
  let jrows = ref [] in
  Fmt.pr "%-22s %-10s %-10s %s@." "transformation" "expected" "route" "agree";
  let (), table_ms =
    Engine.Stats.timed @@ fun () ->
    List.iter
      (fun (t : C.transformation) ->
        let src = Parser.stmt_of_string t.C.src in
        let tgt = Parser.stmt_of_string t.C.tgt in
        let cert = Optimizer.Certify.attempt ~src ~tgt () in
        let route, agree =
          match cert with
          | Some c ->
            fp :=
              Engine.Stats.add_fastpath !fp
                { Engine.Stats.static_hits = 1; static_abs_hits = 0;
                  enumerated = 0 };
            let sound = t.C.advanced = C.Sound in
            let honest = Optimizer.Certify.replay c ~src ~tgt in
            ( Printf.sprintf "static/%d" (List.length c.Optimizer.Certify.stages),
              if sound && honest then "ok"
              else begin
                incr mismatches;
                "MISMATCH"
              end )
          | None ->
            fp :=
              Engine.Stats.add_fastpath !fp
                { Engine.Stats.static_hits = 0; static_abs_hits = 0;
                  enumerated = 1 };
            ("enum", "-")
        in
        jrows :=
          J.Obj
            [ ("name", J.String t.C.name);
              ("expected", J.String (C.verdict_to_string t.C.advanced));
              ("route", J.String route);
              ("agree", J.String agree) ]
          :: !jrows;
        Fmt.pr "%-22s %-10s %-10s %s@." t.C.name
          (C.verdict_to_string t.C.advanced)
          route agree)
      C.transformations
  in
  add_table ~ms:table_ms "E9" title (List.rev !jrows);
  Fmt.pr "-- fast path: %a@." Engine.Stats.pp_fastpath !fp;
  if (!fp).Engine.Stats.static_hits = 0 then begin
    incr mismatches;
    Fmt.pr "-- ERROR: expected a nonzero static hit rate@."
  end

(* ------------------------------------------------------------------ *)
(* E14: abstract-interpretation certificates over the corpus           *)
(* ------------------------------------------------------------------ *)

let certabs_table () =
  let title =
    "E14 — seqabs certificates: abstract-interpretation coverage and \
     fast-path uplift over pipeline replay"
  in
  header title;
  (* Same ground-truth audit as E9: a certificate (of either kind) on a
     pair whose advanced verdict is Unsound would be a soundness bug in
     the certifier, counted as a mismatch.  The uplift the table exists
     to record is the set of Sound pairs the abstract certifier proves
     that pipeline replay cannot reach. *)
  let replay = ref 0 and abs = ref 0 and union = ref 0 in
  let jrows = ref [] in
  Fmt.pr "%-22s %-10s %-14s %s@." "transformation" "expected" "route" "agree";
  let (), table_ms =
    Engine.Stats.timed @@ fun () ->
    List.iter
      (fun (t : C.transformation) ->
        let src = Parser.stmt_of_string t.C.src in
        let tgt = Parser.stmt_of_string t.C.tgt in
        let cert = Optimizer.Certify.attempt ~src ~tgt () in
        let acert = Optimizer.Certabs.attempt ~src ~tgt () in
        if cert <> None then incr replay;
        if acert <> None then incr abs;
        if cert <> None || acert <> None then incr union;
        let route =
          match (cert, acert) with
          | Some _, Some _ -> "static+abs"
          | Some _, None -> "static"
          | None, Some c ->
            Printf.sprintf "static-abs/%d"
              (List.length c.Optimizer.Certabs.rules)
          | None, None -> "enum"
        in
        let sound = t.C.advanced = C.Sound in
        let agree =
          if cert = None && acert = None then "-"
          else if sound then "ok"
          else begin
            incr mismatches;
            "MISMATCH"
          end
        in
        jrows :=
          J.Obj
            [ ("name", J.String t.C.name);
              ("expected", J.String (C.verdict_to_string t.C.advanced));
              ("route", J.String route);
              ("agree", J.String agree) ]
          :: !jrows;
        Fmt.pr "%-22s %-10s %-14s %s@." t.C.name
          (C.verdict_to_string t.C.advanced)
          route agree)
      C.transformations
  in
  let total = List.length C.transformations in
  jrows :=
    J.Obj
      [ ("name", J.String "coverage");
        ("replay", J.Int !replay);
        ("abstract", J.Int !abs);
        ("union", J.Int !union);
        ("total", J.Int total) ]
    :: !jrows;
  add_table ~ms:table_ms "E14" title (List.rev !jrows);
  Fmt.pr
    "-- certifier coverage: replay %d/%d, abstract %d/%d, union %d/%d \
     (uplift +%d)@."
    !replay total !abs total !union total (!union - !replay);
  if !union <= !replay then begin
    incr mismatches;
    Fmt.pr
      "-- ERROR: the abstract certifier adds no coverage over pipeline \
       replay@."
  end

(* ------------------------------------------------------------------ *)
(* E11: seqfuzz campaign throughput — execs/s, dedup rate, shrinking    *)
(* ------------------------------------------------------------------ *)

let fuzz_table ~pool ~robust () =
  let title =
    "E11 — seqfuzz: campaign throughput (dedup, shrink steps, planted \
     refutations)"
  in
  header title;
  (* an unlimited budget is not viable here (the enumerated oracles are
     exponential in the acquire count of generated programs), so the
     default mirrors seqfuzz's own: a 10k state budget per check *)
  let budget =
    if Engine.Budget.spec_is_unlimited robust.spec then
      Engine.Budget.spec ~max_states:10_000 ()
    else robust.spec
  in
  (* the wall-clock column must be the trailing bare float, like every
     other table, so the jobs=1 vs jobs=N output diff can strip it;
     execs/s is derived from it and lives only in the JSON record *)
  Fmt.pr "%6s %7s %6s %11s %9s %8s %8s@." "execs" "unique" "dedup" "findings"
    "planted" "shrink" "ms";
  let jrows =
    List.map
      (fun max_execs ->
        let r = Fuzz.Campaign.run ~pool ~budget ~seed:2 ~max_execs () in
        let dedup_rate =
          if r.Fuzz.Campaign.requested_execs = 0 then 0.
          else
            float_of_int r.Fuzz.Campaign.dedup_dropped
            /. float_of_int r.Fuzz.Campaign.requested_execs
        in
        let nfindings = List.length r.Fuzz.Campaign.findings in
        let nplanted =
          List.length
            (List.filter (fun (_, h) -> h <> None) r.Fuzz.Campaign.planted)
        in
        (* a real finding at bench scale is a genuine cross-layer
           disagreement; planted coverage is only reported here (the CI
           smoke run asserts it at full campaign scale) *)
        if nfindings > 0 then begin
          mismatches := !mismatches + nfindings;
          List.iter
            (fun fi -> Fmt.pr "-- ERROR: %s@." (Fuzz.Campaign.render_finding fi))
            r.Fuzz.Campaign.findings
        end;
        Fmt.pr "%6d %7d %5.0f%% %11d %7d/%d %8d %.1f@."
          r.Fuzz.Campaign.requested_execs r.Fuzz.Campaign.unique_execs
          (100. *. dedup_rate) nfindings nplanted
          (List.length r.Fuzz.Campaign.planted)
          r.Fuzz.Campaign.shrink_steps_total r.Fuzz.Campaign.wall_ms;
        J.Obj
          [ ("execs", J.Int r.Fuzz.Campaign.requested_execs);
            ("unique", J.Int r.Fuzz.Campaign.unique_execs);
            ("dedup_rate", J.Float dedup_rate);
            ("findings", J.Int nfindings);
            ("planted_refuted", J.Int nplanted);
            ("shrink_steps", J.Int r.Fuzz.Campaign.shrink_steps_total);
            ("unknowns", J.Int r.Fuzz.Campaign.unknowns);
            ("wall_ms", J.Float r.Fuzz.Campaign.wall_ms);
            ("execs_per_s", J.Float (Fuzz.Campaign.execs_per_s r)) ])
      [ 40; 80 ]
  in
  add_table "E11" title jrows

(* ------------------------------------------------------------------ *)
(* E16: coverage-guided fuzzing — blind vs guided campaigns            *)
(* ------------------------------------------------------------------ *)

(* Both campaigns share the generation skeleton (same seed, same
   per-index RNG streams, same fresh/mutant parity), so their exec
   numbering is directly comparable: the refute:<variant> rows record
   the first corpus index refuting each planted variant under blind and
   guided mutation.  The guard holds guided to refuting every variant
   in no more execs than blind, and to strictly more coverage points —
   the two claims the subsystem exists to deliver. *)
let guided_fuzz_table ~pool ~robust () =
  let title =
    "E16 — coverage-guided fuzzing: blind vs guided campaigns (coverage \
     growth, execs-to-refute per planted variant)"
  in
  header title;
  (* mirrors the refutation test in test/test_fuzz.ml: at this budget a
     blind seed-2 campaign refutes all five variants, so the comparison
     is between two fully-refuting campaigns, not a coverage race *)
  let budget =
    if Engine.Budget.spec_is_unlimited robust.spec then
      Engine.Budget.spec ~max_states:20_000 ()
    else robust.spec
  in
  let seed = 2 and max_execs = 150 in
  let campaign ~guided =
    Fuzz.Campaign.run ~pool ~budget ~seed ~max_execs
      ~oracles:[ Fuzz.Oracle.Pass_correct ] ~coverage:true ~guided ()
  in
  let blind = campaign ~guided:false in
  let guided = campaign ~guided:true in
  let cov r =
    match r.Fuzz.Campaign.cov with
    | Some c -> (c.Fuzz.Campaign.cov_points, c.Fuzz.Campaign.cov_admitted,
                 c.Fuzz.Campaign.corpus_size)
    | None -> (0, 0, 0)
  in
  let nplanted r =
    List.length (List.filter (fun (_, h) -> h <> None) r.Fuzz.Campaign.planted)
  in
  let first_refute r nm =
    match List.assoc_opt nm r.Fuzz.Campaign.planted with
    | Some (Some fi) -> fi.Fuzz.Campaign.index
    | _ -> -1
  in
  Fmt.pr "%-8s %6s %7s %7s %9s %8s %8s@." "mode" "execs" "unique" "points"
    "admitted" "planted" "ms";
  let campaign_row name r =
    let points, admitted, corpus = cov r in
    Fmt.pr "%-8s %6d %7d %7d %9d %6d/%d %.1f@." name
      r.Fuzz.Campaign.requested_execs r.Fuzz.Campaign.unique_execs points
      admitted (nplanted r)
      (List.length r.Fuzz.Campaign.planted)
      r.Fuzz.Campaign.wall_ms;
    J.Obj
      [ ("name", J.String name);
        ("execs", J.Int r.Fuzz.Campaign.requested_execs);
        ("unique", J.Int r.Fuzz.Campaign.unique_execs);
        ("points", J.Int points);
        ("admitted", J.Int admitted);
        ("corpus", J.Int corpus);
        ("planted_refuted", J.Int (nplanted r));
        ("findings", J.Int (List.length r.Fuzz.Campaign.findings));
        ("unknowns", J.Int r.Fuzz.Campaign.unknowns);
        ("wall_ms", J.Float r.Fuzz.Campaign.wall_ms);
        ("execs_per_s", J.Float (Fuzz.Campaign.execs_per_s r)) ]
  in
  let blind_row = campaign_row "blind" blind in
  let guided_row = campaign_row "guided" guided in
  let variant_rows =
    List.map
      (fun (nm, _) ->
        let b = first_refute blind nm and g = first_refute guided nm in
        Fmt.pr "  refute %-24s blind #%d  guided #%d@." nm b g;
        if g < 0 then begin
          incr mismatches;
          Fmt.pr "-- ERROR: guided campaign failed to refute %s@." nm
        end;
        J.Obj
          [ ("name", J.String ("refute:" ^ nm));
            ("blind_exec", J.Int b);
            ("guided_exec", J.Int g) ])
      blind.Fuzz.Campaign.planted
  in
  (* Both campaigns share the even (fresh) half of the corpus, so the
     per-variant indices tie wherever a fresh program is the first
     refuter; the regression signal is the aggregate — the exec count
     at which the LAST variant falls, i.e. how long a campaign must run
     to refute everything.  Guided must not need more than blind. *)
  let to_refute_all r =
    List.fold_left
      (fun acc (nm, _) ->
        let i = first_refute r nm in
        if acc < 0 || i < 0 then -1 else max acc i)
      0 r.Fuzz.Campaign.planted
  in
  let b_all = to_refute_all blind and g_all = to_refute_all guided in
  if b_all >= 0 && (g_all < 0 || g_all > b_all) then begin
    incr mismatches;
    Fmt.pr "-- ERROR: guided needs more execs to refute all variants \
            (#%d > #%d)@." g_all b_all
  end;
  let bp, _, _ = cov blind and gp, _, _ = cov guided in
  Fmt.pr
    "-- coverage: blind %d points, guided %d points; all-refuted at blind \
     #%d, guided #%d@."
    bp gp b_all g_all;
  add_table "E16" title (blind_row :: guided_row :: variant_rows)

(* ------------------------------------------------------------------ *)
(* E12: enumeration core — packed fast path vs the reference checker   *)
(* ------------------------------------------------------------------ *)

(* Both sides run the same roots in the same process, so the speedup
   column is a ratio of two measurements under identical load —
   machine-independent, which is what the CI regression guard
   (bench/guard.ml) compares against bench/baseline.json.  Verdicts and
   explored pair counts must agree exactly (also enforced corpus-wide by
   test/test_diffcore.ml); a disagreement here is counted as a
   mismatch. *)
let enumcore_table () =
  let title =
    "E12 — enumeration core: packed/memoized checkers vs the set-based \
     reference (identical verdicts and pair counts)"
  in
  header title;
  let parse tr =
    let src = Parser.stmt_of_string tr.C.src in
    let tgt = Parser.stmt_of_string tr.C.tgt in
    (Domain.of_stmts ~values [ src; tgt ], src, tgt)
  in
  let refine_roots (d, src, tgt) =
    Seq_model.Refine.initial_pairs d ~src:(Prog.init src) ~tgt:(Prog.init tgt)
  in
  let advanced_roots item =
    List.map
      (fun (p : Seq_model.Refine.pair) ->
        {
          Seq_model.Advanced.commit = Loc.Set.empty;
          tgt = p.Seq_model.Refine.tgt;
          src = p.Seq_model.Refine.src;
        })
      (refine_roots item)
  in
  let corpus = List.map parse C.transformations in
  (* the transformations the simple game refutes — the advanced checker's
     real workload (E1/E2 only runs it there, Prop 3.4 covers the rest) *)
  let refuted =
    List.filter
      (fun ((d, _, _) as item) ->
        not (Seq_model.Refine.check_pairs d (refine_roots item)))
      corpus
  in
  let slice = List.filteri (fun i _ -> i mod 4 = 0) corpus in
  (* the oracle-gate enumeration workload: generated programs at the
     fuzz baseline-env oracle's sizes and fuel (lib/fuzz/oracle.ml), the
     enumeration-throughput slice this PR accelerates.  The slow side is
     the pre-PR reference recursion (no tables), the fast side the
     hash-consed memoized core; the column labelled "pairs" counts
     enumerated behaviors here and must agree exactly. *)
  let enum_items =
    let rand = Random.State.make [| 42 |] in
    List.filter_map
      (fun p ->
        let d = Domain.of_stmts [ p ] in
        match Seq_model.Config.make_tables d with
        | None -> None
        | Some _ ->
          let cfg =
            Seq_model.Config.make ~perm:(Domain.na_set d) (Prog.init p)
          in
          Some (d, cfg, (16 * Stmt.size p) + 64))
      (List.init 30 (fun i ->
           Gen.gen_program
             { Gen.default_config with Gen.allow_loops = true }
             rand ~size:(13 + (i mod 4))))
  in
  let enum_count ~tables () =
    List.fold_left
      (fun acc (d, cfg, fuel) ->
        let tables = if tables then Seq_model.Config.make_tables d else None in
        acc
        + Seq_model.Behavior.Set.cardinal
            (Seq_model.Behavior.enumerate ?tables d ~fuel cfg))
      0 enum_items
  in
  (* one full corpus pass per iteration; fixed repetition counts keep the
     slow side well above timer resolution *)
  let rows =
    [ ( "refine-corpus", 10,
        (fun () ->
          List.fold_left
            (fun acc ((d, _, _) as item) ->
              acc
              + snd (Seq_model.Refine.Slow.check_pairs_count d
                       (refine_roots item)))
            0 corpus),
        fun () ->
          List.fold_left
            (fun acc ((d, _, _) as item) ->
              acc
              + snd (Seq_model.Refine.check_pairs_count d (refine_roots item)))
            0 corpus );
      ( "advanced-refuted", 10,
        (fun () ->
          List.fold_left
            (fun acc ((d, _, _) as item) ->
              acc
              + snd (Seq_model.Advanced.Slow.check_pairs_count d
                       (advanced_roots item)))
            0 refuted),
        fun () ->
          List.fold_left
            (fun acc ((d, _, _) as item) ->
              acc
              + snd (Seq_model.Advanced.check_pairs_count d
                       (advanced_roots item)))
            0 refuted );
      ( "adequacy-seq-slice", 10,
        (fun () ->
          (* the SEQ side of an E5 adequacy row: the simple game, then the
             advanced game where simple refutes *)
          List.fold_left
            (fun acc ((d, _, _) as item) ->
              let ok, n =
                Seq_model.Refine.Slow.check_pairs_count d (refine_roots item)
              in
              let n' =
                if ok then 0
                else
                  snd (Seq_model.Advanced.Slow.check_pairs_count d
                         (advanced_roots item))
              in
              acc + n + n')
            0 slice),
        fun () ->
          List.fold_left
            (fun acc ((d, _, _) as item) ->
              let ok, n =
                Seq_model.Refine.check_pairs_count d (refine_roots item)
              in
              let n' =
                if ok then 0
                else
                  snd (Seq_model.Advanced.check_pairs_count d
                         (advanced_roots item))
              in
              acc + n + n')
            0 slice );
      ( "enumeration-oracle", 1, enum_count ~tables:false,
        enum_count ~tables:true ) ]
  in
  Fmt.pr "%-20s %8s %5s %10s %10s %9s@." "work item" "pairs" "reps"
    "slow ms" "fast ms" "speedup";
  let jrows =
    List.map
      (fun (name, reps, slow, fast) ->
        (* at reps = 1 the counting pass doubles as the timed pass (the
           enumeration row's slow side is tens of seconds) *)
        let timed_count reps f =
          Engine.Stats.timed (fun () ->
              let n = ref 0 in
              for _ = 1 to reps do n := f () done;
              !n)
        in
        let slow_pairs, slow_ms = timed_count reps slow in
        let fast_pairs, fast_ms = timed_count reps fast in
        if slow_pairs <> fast_pairs then begin
          incr mismatches;
          Fmt.pr "-- ERROR: %s explored %d pairs fast vs %d slow@." name
            fast_pairs slow_pairs
        end;
        let speedup = if fast_ms > 0. then slow_ms /. fast_ms else 0. in
        Fmt.pr "%-20s %8d %5d %10.1f %10.1f %8.1fx@." name fast_pairs reps
          slow_ms fast_ms speedup;
        J.Obj
          [ ("name", J.String name);
            ("pairs", J.Int fast_pairs);
            ("reps", J.Int reps);
            ("slow_ms", J.Float slow_ms);
            ("fast_ms", J.Float fast_ms);
            ("speedup", J.Float speedup) ])
      rows
  in
  add_table "E12" title jrows

(* ------------------------------------------------------------------ *)
(* E10: the seqd service — cold vs warm corpus throughput, hit rate     *)
(* ------------------------------------------------------------------ *)

let temp_dir prefix =
  let f = Filename.temp_file prefix "" in
  Sys.remove f;
  Unix.mkdir f 0o700;
  f

let service_table ~jobs ~robust ~backend () =
  let title =
    "E10 — seqd service: corpus throughput per cache tier (cold/warm/restart)"
  in
  header title;
  let dir = temp_dir "seq-bench-e10" in
  let config =
    {
      Service.Server.socket_path = Filename.concat dir "seqd.sock";
      tcp = None;
      cache_dir = Some (Filename.concat dir "cache");
      mem_capacity = 4096;
      jobs;
      max_inflight = max 8 (2 * jobs);
      default_budget = robust.spec;
    }
  in
  let checks =
    List.map
      (fun (t : C.transformation) ->
        { Service.Proto.src = t.C.src; tgt = t.C.tgt; values = [];
          fast_path = true; backend })
      C.transformations
  in
  let n = List.length checks in
  let pass label =
    let results, ms =
      Engine.Stats.timed (fun () ->
          Service.Client.with_connection config.Service.Server.socket_path
            (fun c -> Service.Client.batch c checks))
    in
    let tier t =
      List.length
        (List.filter
           (fun (r : Service.Proto.check_result) -> r.Service.Proto.tier = t)
           results)
    in
    let computed = tier Service.Proto.Computed in
    let mem = tier Service.Proto.Mem in
    let disk = tier Service.Proto.Disk in
    let hit_rate = float_of_int (mem + disk) /. float_of_int n in
    let req_s = if ms > 0. then float_of_int n /. (ms /. 1000.) else 0. in
    Fmt.pr "%-14s %8.1f ms %10.0f req/s   computed=%-3d mem=%-3d disk=%-3d \
            hit-rate=%.2f@."
      label ms req_s computed mem disk hit_rate;
    (label, ms, req_s, computed, mem, disk, hit_rate)
  in
  Fmt.pr "%-14s %11s %16s   %s@." "pass" "wall" "throughput"
    "serving tiers";
  let handle = Service.Server.spawn config in
  let cold = pass "cold" in
  let warm = pass "warm" in
  Service.Server.stop handle;
  (* a fresh server on the same store: everything should come from disk *)
  let handle = Service.Server.spawn config in
  let disk_pass = pass "restart" in
  Service.Server.stop handle;
  let jrow (label, ms, req_s, computed, mem, disk, hit_rate) =
    J.Obj
      [ ("pass", J.String label);
        ("ms", J.Float ms);
        ("req_per_s", J.Float req_s);
        ("computed", J.Int computed);
        ("mem", J.Int mem);
        ("disk", J.Int disk);
        ("hit_rate", J.Float hit_rate) ]
  in
  add_table "E10" title (List.map jrow [ cold; warm; disk_pass ]);
  let check_full_hits label (_, _, _, computed, _, _, _) =
    if computed > 0 then begin
      incr mismatches;
      Fmt.pr "-- ERROR: %s pass recomputed %d checks (expected pure cache \
              hits)@."
        label computed
    end
  in
  (* under a finite budget some verdicts may be Unknown, which are never
     cached — only audit full-hit passes when every answer is cacheable *)
  if Engine.Budget.spec_is_unlimited robust.spec then begin
    check_full_hits "warm" warm;
    check_full_hits "restart" disk_pass
  end

(* ------------------------------------------------------------------ *)
(* E13: seqd under chaos — clean vs fault-injected per-request latency  *)
(* ------------------------------------------------------------------ *)

(* Fixed seed: the proxy's fault schedule and the client's backoff
   jitter are pure functions of it, so the injected fault sequence
   replays across runs (bench/guard.ml floors the fault count). *)
let e13_seed = 7

let chaos_table ~jobs ~robust ~backend () =
  let title =
    "E13 — seqd under chaos: per-request latency, clean vs fault-injected"
  in
  header title;
  let dir = temp_dir "seq-bench-e13" in
  let sock = Filename.concat dir "seqd.sock" in
  let proxy_sock = Filename.concat dir "chaos.sock" in
  let config =
    {
      Service.Server.socket_path = sock;
      tcp = None;
      cache_dir = Some (Filename.concat dir "cache");
      mem_capacity = 4096;
      jobs;
      max_inflight = max 8 (2 * jobs);
      default_budget = robust.spec;
    }
  in
  let expected (t : C.transformation) : Service.Proto.verdict =
    match (t.C.simple, t.C.advanced) with
    | C.Sound, _ -> Service.Proto.Refines_simple
    | C.Unsound, C.Sound -> Service.Proto.Refines_advanced
    | C.Unsound, C.Unsound -> Service.Proto.Refuted
  in
  (* under a finite budget a verdict may legitimately be Unknown *)
  let budget_limited = not (Engine.Budget.spec_is_unlimited robust.spec) in
  let metrics = Engine.Metrics.create () in
  let n = List.length C.transformations in
  let handle = Service.Server.spawn config in
  (* one warm-up batch so both measured passes answer from the same
     cache tier and differ only in what the transport does to them *)
  Service.Client.with_connection sock (fun c ->
      ignore
        (Service.Client.batch c
           (List.map
              (fun (t : C.transformation) ->
                { Service.Proto.src = t.C.src; tgt = t.C.tgt; values = [];
                  fast_path = true; backend })
              C.transformations)));
  let run_pass label addr policy =
    let wrong = ref 0 in
    let ctrs =
      Service.Client.with_connection ~policy addr (fun c ->
          List.iter
            (fun (t : C.transformation) ->
              let r, ms =
                Engine.Stats.timed (fun () ->
                    Service.Client.check c ~src:t.C.src ~tgt:t.C.tgt ())
              in
              Engine.Metrics.observe metrics label ms;
              let want = expected t in
              let ok =
                r.Service.Proto.verdict = want
                || budget_limited
                   && (match r.Service.Proto.verdict with
                       | Service.Proto.Unknown _ -> true
                       | _ -> false)
              in
              if not ok then begin
                incr wrong;
                incr mismatches;
                Fmt.pr "-- ERROR: %s pass: %s answered %s (expected %s)@."
                  label t.C.name
                  (Service.Proto.verdict_to_string r.Service.Proto.verdict)
                  (Service.Proto.verdict_to_string want)
              end)
            C.transformations;
          Service.Client.counters c)
    in
    (ctrs, !wrong)
  in
  let clean_ctrs, clean_wrong =
    run_pass "clean" sock Service.Client.default_policy
  in
  (* the chaos pass goes through the seeded fault-injecting proxy; the
     request timeout is what turns a dropped frame into a retry *)
  let proxy =
    Service.Chaos.start
      ~listen:(Service.Addr.Unix_sock proxy_sock)
      ~upstream:(Service.Addr.Unix_sock sock)
      (Service.Chaos.schedule e13_seed)
  in
  let chaos_policy =
    {
      Service.Client.resilient_policy with
      attempts = 16;
      request_timeout_ms = Some 500.;
      seed = e13_seed;
    }
  in
  let chaos_ctrs, chaos_wrong = run_pass "chaos" proxy_sock chaos_policy in
  let fc = Service.Chaos.counts proxy in
  Service.Chaos.stop proxy;
  Service.Server.stop handle;
  let faults = Service.Chaos.injected fc in
  Fmt.pr
    "-- chaos seed=%d: frames=%d pass=%d delay=%d drop=%d garble=%d \
     truncate=%d duplicate=%d kill=%d@."
    e13_seed fc.Service.Chaos.frames fc.Service.Chaos.passed
    fc.Service.Chaos.delayed fc.Service.Chaos.dropped fc.Service.Chaos.garbled
    fc.Service.Chaos.truncated fc.Service.Chaos.duplicated
    fc.Service.Chaos.killed;
  Fmt.pr "%-8s %5s %9s %9s %9s %8s %5s %11s %7s %9s@." "pass" "req" "p50 ms"
    "p90 ms" "p99 ms" "retries" "busy" "reconnects" "faults" "verdicts";
  let row name (ctrs : Service.Client.counters) wrong faults =
    let lat =
      match Engine.Metrics.latency metrics name with
      | Some l -> l
      | None -> { Engine.Metrics.count = 0; p50 = 0.; p90 = 0.; p99 = 0. }
    in
    Fmt.pr "%-8s %5d %9.2f %9.2f %9.2f %8d %5d %11d %7d %9s@." name n
      lat.Engine.Metrics.p50 lat.Engine.Metrics.p90 lat.Engine.Metrics.p99
      ctrs.Service.Client.retries ctrs.Service.Client.busy
      ctrs.Service.Client.reconnects faults
      (if wrong = 0 then "ok" else "MISMATCH");
    J.Obj
      [ ("name", J.String name);
        ("requests", J.Int n);
        ("p50_ms", J.Float lat.Engine.Metrics.p50);
        ("p90_ms", J.Float lat.Engine.Metrics.p90);
        ("p99_ms", J.Float lat.Engine.Metrics.p99);
        ("retries", J.Int ctrs.Service.Client.retries);
        ("busy", J.Int ctrs.Service.Client.busy);
        ("reconnects", J.Int ctrs.Service.Client.reconnects);
        ("faults_injected", J.Int faults);
        ("verdicts_ok", J.Bool (wrong = 0)) ]
  in
  let clean_row = row "clean" clean_ctrs clean_wrong 0 in
  let chaos_row = row "chaos" chaos_ctrs chaos_wrong faults in
  add_table "E13" title [ clean_row; chaos_row ]

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* P1–P5: bechamel micro-benchmarks                                     *)
(* ------------------------------------------------------------------ *)

let bechamel_benches () =
  let title = "P1–P5 — Throughput (bechamel, monotonic clock)" in
  header title;
  let open Bechamel in
  let open Toolkit in
  let parse = Parser.stmt_of_string in
  let pair_of name =
    let tr = Option.get (C.find_transformation name) in
    let src = parse tr.C.src and tgt = parse tr.C.tgt in
    (Domain.of_stmts ~values [ src; tgt ], src, tgt)
  in
  let slf_pair = pair_of "slf-across-acq-read" in
  let warw_pair = pair_of "na-write-into-rel" in
  let mp_threads =
    Parser.threads_of_string
      "X.store(na,1); Y.store(rel,1); return 0 ||| \
       a = Y.load(acq); if a == 1 { b = X.load(na) }; return 10*a+b"
  in
  let gen_prog size =
    let st = Random.State.make [| 42; size |] in
    Stmt.seq
      (Gen.gen_linear Gen.default_config st ~size)
      (Stmt.Return (Expr.int 0))
  in
  let p100 = gen_prog 100 in
  let p400 = gen_prog 400 in
  let fig4 =
    parse
      "X.store(na, 2); l = Y.load(acq); \
       if l == 0 { a = X.load(na); Y.store(rel, 1) }; \
       b = X.load(na); return 10*a + b"
  in
  let tests =
    [
      Test.make ~name:"P1 SEQ simple refinement (Ex 2.11)"
        (Staged.stage (fun () ->
             let d, src, tgt = slf_pair in
             ignore (Seq_model.Refine.check d ~src ~tgt)));
      Test.make ~name:"P2 SEQ advanced refinement (Ex 2.9 ii')"
        (Staged.stage (fun () ->
             let d, src, tgt = warw_pair in
             ignore (Seq_model.Advanced.check d ~src ~tgt)));
      Test.make ~name:"P3 PS_na exploration (MP rel-acq)"
        (Staged.stage (fun () -> ignore (M.explore mp_threads)));
      Test.make ~name:"P4 optimizer pipeline, 100-instr program"
        (Staged.stage (fun () -> ignore (Optimizer.Driver.optimize p100)));
      Test.make ~name:"P4 optimizer pipeline, 400-instr program"
        (Staged.stage (fun () -> ignore (Optimizer.Driver.optimize p400)));
      Test.make ~name:"P5 translation validation (Fig 4)"
        (Staged.stage (fun () ->
             ignore (Optimizer.Validate.certified_optimize fig4)));
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"bench" ~fmt:"%s %s" tests) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  let jrows = ref [] in
  List.iter
    (fun (name, result) ->
      match Analyze.OLS.estimates result with
      | Some [ est ] ->
        jrows :=
          J.Obj [ ("name", J.String name); ("ns_per_run", J.Float est) ]
          :: !jrows;
        Fmt.pr "%-50s %14.0f ns/run@." name est
      | Some _ | None ->
        jrows := J.Obj [ ("name", J.String name) ] :: !jrows;
        Fmt.pr "%-50s (no estimate)@." name)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows);
  add_table "P1-P5" title (List.rev !jrows)

(* ------------------------------------------------------------------ *)

let rec parse_opt name = function
  | [] -> None
  | flag :: v :: _ when flag = name -> Some v
  | _ :: rest -> parse_opt name rest

(* A flag that is present but does not parse as its type is a usage
   error, like an out-of-range value (README exit-code table). *)
let usage_error msg =
  Fmt.epr "bench: %s@." msg;
  exit Engine.Cliopts.usage_exit

let parse_int name args =
  match parse_opt name args with
  | None -> None
  | Some s ->
    (match int_of_string_opt s with
     | Some v -> Some v
     | None ->
       usage_error (Printf.sprintf "flag %s: not an integer (got %S)" name s))

let parse_float name args =
  match parse_opt name args with
  | None -> None
  | Some s ->
    (match float_of_string_opt s with
     | Some v -> Some v
     | None ->
       usage_error (Printf.sprintf "flag %s: not a number (got %S)" name s))

let () =
  let args = Array.to_list Sys.argv in
  let full = List.mem "--full" args in
  let no_bechamel = List.mem "--no-bechamel" args in
  let keep_going = List.mem "--keep-going" args in
  let service = List.mem "--service" args in
  let json_path = parse_opt "--json" args in
  let jobs = Option.value (parse_int "--jobs" args) ~default:1 in
  let timeout_ms = parse_float "--timeout-ms" args in
  let max_states = parse_int "--max-states" args in
  let retries = Option.value (parse_int "--retries" args) ~default:0 in
  let inject_faults =
    Option.value (parse_int "--inject-faults" args) ~default:0
  in
  let backend =
    Option.value
      (parse_opt "--backend" args)
      ~default:Service.Proto.default_backend
  in
  (match
     match
       Engine.Cliopts.validate ~retries ~inject_faults ~jobs ~timeout_ms
         ~max_states ()
     with
     | Error _ as e -> e
     | Ok () ->
       Engine.Cliopts.validate_choice ~flag:"--backend"
         ~choices:(Service.Proto.default_backend :: Backends.Registry.names)
         backend
   with
   | Error msg -> usage_error msg
   | Ok () -> ());
  let robust =
    {
      spec = Engine.Budget.spec ?timeout_ms ?max_states ();
      retries;
      inject_faults;
      inject_seed = Option.value (parse_int "--inject-seed" args) ~default:0;
    }
  in
  let (), total_ms =
    Engine.Stats.timed @@ fun () ->
    let pool = Engine.Pool.create ~jobs () in
    transformation_matrix ~pool ~robust ();
    optimizer_table ();
    litmus_table ~pool ~robust ();
    backend_grid_table ~pool ~robust ();
    adequacy_table ~pool ~full ~robust ();
    catchfire_table ();
    drf_table ();
    determinism_table ();
    fastpath_table ();
    certabs_table ();
    fuzz_table ~pool ~robust ();
    guided_fuzz_table ~pool ~robust ();
    enumcore_table ();
    Engine.Pool.shutdown pool;
    if service then begin
      service_table ~jobs ~robust ~backend ();
      chaos_table ~jobs ~robust ~backend ()
    end;
    if not no_bechamel then bechamel_benches ()
  in
  (match json_path with
   | None -> ()
   | Some path ->
     let doc =
       J.Obj
         [ ("schema", J.String "seq-bench/7");
           ("jobs", J.Int jobs);
           ("full", J.Bool full);
           ("total_ms", J.Float total_ms);
           ("tables", J.List (List.rev !json_tables));
           ( "summary",
             J.Obj
               [ ("mismatches", J.Int !mismatches);
                 ("unknowns", J.Int !unknowns) ] ) ]
     in
     Out_channel.with_open_text path (fun oc -> J.to_channel oc doc);
     Fmt.pr "-- json record written to %s@." path);
  Fmt.pr "@.done.@.";
  if !mismatches > 0 then exit 3
  else if !unknowns > 0 && not keep_going then exit 4
