(* Bench regression guard: compare a fresh `bench --json` record against
   the checked-in baseline (bench/baseline.json) on its
   machine-independent rows.

   E12 (enumeration-core speedups): speedups are same-run ratios of two
   measurements under identical load, so they are machine-independent
   where absolute times are not — that is what gets compared.  A row
   regressing below [soft_floor] x its baseline speedup fails the guard
   (exit 1); a row collapsing by an order of magnitude is reported as a
   hard failure (exit 2) — that means a fast path stopped engaging, not
   noise.

   E13 (chaos drill, present when the record was produced with
   --service): the pass/fail signal is categorical, not a timing —
   every pass must report [verdicts_ok] (the resilient client masked
   every injected fault), and the chaos pass must actually have been
   chaotic: [faults_injected] at or above the baseline row's
   [min_faults] floor (the schedule is seeded, so a collapse here means
   the proxy stopped injecting, not noise).  A record without an E13
   table is only an error when the baseline demands one and the record
   carries other service tables.

   E14 (abstract-interpretation certificates): the baseline row fixes
   floors for the certifier coverage counts over the transformation
   corpus — [min_union] on the replay∪abstract union, and the union must
   stay strictly above the replay count (the abstract tier must keep
   certifying pairs the pipeline replay cannot).  Coverage is a pure
   function of the corpus and the certifiers, so any drop is a code
   regression, not noise.

   E15 (backend grid, gated on the baseline having an E15 table): on
   every row of the current record's differential grid the inclusion
   chain SC ⊆ TSO ⊆ ARMv8 must have held ([chain_ok]), and the SB-rlx
   row must separate TSO from SC — the weak outcome allowed under TSO,
   forbidden under SC.  Both are categorical properties of the machines,
   so any violation is a code regression.

   Records whose schema version this guard does not know are skipped
   with a notice (exit 0) instead of being misread: field meanings may
   have changed under the same names.

   The baseline's speedup fields are conservative floors (below the
   worst ratio observed across healthy runs), not a verbatim run record:
   same-run ratios still wobble with GC pressure and machine load, and
   the guard must only trip on real regressions.  Refresh them
   deliberately when the fast path materially improves.

   Usage: guard.exe CURRENT.json [BASELINE.json]  (default baseline:
   bench/baseline.json). *)

module J = Service.Json

let soft_floor = 0.75
let hard_floor = 0.1

(* Schema versions this guard knows how to judge.  A record written by a
   newer (or older) harness is skipped with a notice instead of being
   misread: field meanings may have changed under the same names. *)
let known_schemas = [ "seq-bench/5"; "seq-bench/6"; "seq-bench/7" ]

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let fail fmt = Fmt.kstr (fun m -> prerr_endline ("guard: " ^ m); exit 1) fmt

let load path =
  match J.of_string (read_file path) with
  | doc -> doc
  | exception J.Parse_error msg -> fail "%s: JSON parse error at %s" path msg

let tables path doc =
  match Option.bind (J.member "tables" doc) J.to_list_opt with
  | Some ts -> ts
  | None -> fail "%s: no \"tables\" array" path

(* The rows of table [id], or [None] when the record has no such table. *)
let table_rows id tables =
  Option.bind
    (List.find_opt
       (fun t -> Option.bind (J.member "id" t) J.to_string_opt = Some id)
       tables)
    (fun t -> Option.bind (J.member "rows" t) J.to_list_opt)

let row_name row = Option.bind (J.member "name" row) J.to_string_opt

let find_row name rows =
  List.find_opt (fun r -> row_name r = Some name) rows

(* Skip-with-notice (exit 0) on a record whose schema the guard does not
   know; fail hard only when the schema field itself is missing. *)
let check_schema path doc =
  match Option.bind (J.member "schema" doc) J.to_string_opt with
  | None -> fail "%s: no \"schema\" field" path
  | Some s when List.mem s known_schemas -> ()
  | Some s ->
    Fmt.pr "guard: %s: unknown schema %S (known: %s) — skipping@." path s
      (String.concat ", " known_schemas);
    exit 0

(* ---------------- E12: speedup floors ---------------- *)

let e12_pairs path tbls : (string * float) list =
  match table_rows "E12" tbls with
  | None -> fail "%s: no E12 table" path
  | Some rows ->
    List.filter_map
      (fun row ->
        match
          (row_name row, Option.bind (J.member "speedup" row) J.to_float_opt)
        with
        | Some name, Some speedup -> Some (name, speedup)
        | _ -> None)
      rows

let check_e12 ~current ~cur_tbls ~baseline ~base_tbls =
  let cur = e12_pairs current cur_tbls in
  let base = e12_pairs baseline base_tbls in
  if base = [] then fail "%s: baseline has no E12 speedup rows" baseline;
  let soft = ref [] and hard = ref [] in
  List.iter
    (fun (name, bspeed) ->
      match List.assoc_opt name cur with
      | None ->
        fail "row %S present in baseline but missing from %s" name current
      | Some cspeed ->
        let ratio = cspeed /. bspeed in
        Fmt.pr "%-22s baseline %6.2fx  current %6.2fx  ratio %.2f@." name
          bspeed cspeed ratio;
        if ratio < hard_floor then hard := name :: !hard
        else if ratio < soft_floor then soft := name :: !soft)
    base;
  (match !hard, !soft with
   | [], [] ->
     Fmt.pr "guard: all %d E12 rows within bounds@." (List.length base)
   | _ -> ());
  (!hard, !soft)

(* ---------------- E13: chaos drill invariants ---------------- *)

let check_e13 ~current ~cur_tbls ~base_tbls =
  match table_rows "E13" base_tbls with
  | None -> []  (* baseline predates the chaos drill *)
  | Some base_rows -> (
    match table_rows "E13" cur_tbls with
    | None ->
      (* E13 only exists under --service; a non-service record is fine,
         a service record that lost the table is not *)
      if table_rows "E10" cur_tbls <> None then
        fail "%s: has service tables but no E13 chaos table" current
      else begin
        Fmt.pr "guard: no service tables in record, E13 skipped@.";
        []
      end
    | Some cur_rows ->
      let bad = ref [] in
      List.iter
        (fun brow ->
          let name =
            match row_name brow with
            | Some n -> n
            | None -> fail "baseline E13 row without a name"
          in
          match find_row name cur_rows with
          | None ->
            fail "E13 row %S present in baseline but missing from %s" name
              current
          | Some crow ->
            let verdicts_ok =
              match J.member "verdicts_ok" crow with
              | Some (J.Bool b) -> b
              | _ -> false
            in
            let faults =
              match
                Option.bind (J.member "faults_injected" crow) J.to_float_opt
              with
              | Some f -> f
              | None -> 0.
            in
            let min_faults =
              match
                Option.bind (J.member "min_faults" brow) J.to_float_opt
              with
              | Some f -> f
              | None -> 0.
            in
            Fmt.pr "E13 %-8s verdicts_ok=%b  faults=%.0f (floor %.0f)@." name
              verdicts_ok faults min_faults;
            if not verdicts_ok then begin
              Fmt.epr "guard: E13 %s pass: verdicts diverged under faults@."
                name;
              bad := name :: !bad
            end;
            if faults < min_faults then begin
              Fmt.epr
                "guard: E13 %s pass: only %.0f faults injected (floor %.0f) \
                 — the chaos proxy is not exercising the client@."
                name faults min_faults;
              bad := name :: !bad
            end)
        base_rows;
      if !bad = [] then
        Fmt.pr "guard: all %d E13 rows within bounds@." (List.length base_rows);
      !bad)

(* ---------------- E14: certifier coverage floors ---------------- *)

let check_e14 ~current ~cur_tbls ~base_tbls =
  match table_rows "E14" base_tbls with
  | None -> []  (* baseline predates the abstract certifier *)
  | Some base_rows -> (
    let floor_row =
      match find_row "coverage" base_rows with
      | Some r -> r
      | None -> fail "baseline E14 table has no \"coverage\" row"
    in
    let min_union =
      match Option.bind (J.member "min_union" floor_row) J.to_float_opt with
      | Some f -> int_of_float f
      | None -> fail "baseline E14 coverage row has no min_union floor"
    in
    match table_rows "E14" cur_tbls with
    | None -> fail "%s: no E14 table" current
    | Some cur_rows ->
      let cov =
        match find_row "coverage" cur_rows with
        | Some r -> r
        | None -> fail "%s: E14 table has no coverage row" current
      in
      let geti k =
        match Option.bind (J.member k cov) J.to_float_opt with
        | Some f -> int_of_float f
        | None -> fail "%s: E14 coverage row has no %S" current k
      in
      let replay = geti "replay"
      and abs = geti "abstract"
      and union = geti "union"
      and total = geti "total" in
      Fmt.pr
        "E14 coverage: replay %d/%d  abstract %d/%d  union %d/%d (floor %d)@."
        replay total abs total union total min_union;
      let bad = ref [] in
      if union < min_union then begin
        Fmt.epr "guard: E14 union %d below baseline floor %d@." union
          min_union;
        bad := "union-floor" :: !bad
      end;
      if union <= replay then begin
        Fmt.epr
          "guard: E14 union %d does not exceed replay %d — the abstract \
           certifier adds no coverage@."
          union replay;
        bad := "abstract-uplift" :: !bad
      end;
      if !bad = [] then Fmt.pr "guard: E14 coverage within bounds@.";
      !bad)

(* ---------------- E15: backend grid invariants ---------------- *)

(* Categorical, machine-independent: on every E15 row the inclusion
   chain SC ⊆ TSO ⊆ ARMv8 must have held, and the SB row must separate
   TSO from SC (allowed under TSO, forbidden under SC) — the one
   separation the whole backend grid exists to exhibit.  Rows the sweep
   left UNKNOWN are skipped with a notice. *)
let check_e15 ~current ~cur_tbls ~base_tbls =
  match table_rows "E15" base_tbls with
  | None -> []  (* baseline predates the backend grid *)
  | Some _ -> (
    match table_rows "E15" cur_tbls with
    | None -> fail "%s: no E15 table" current
    | Some cur_rows ->
      let bad = ref [] in
      let known =
        List.filter (fun row -> J.member "unknown" row = None) cur_rows
      in
      (match List.length cur_rows - List.length known with
       | 0 -> ()
       | n -> Fmt.pr "guard: E15: %d UNKNOWN row(s) skipped@." n);
      let model row m =
        match
          Option.bind (J.member "models" row) (fun ms -> J.member m ms)
        with
        | Some (J.Bool b) -> b
        | _ ->
          fail "%s: E15 row %S has no %S verdict" current
            (Option.value (row_name row) ~default:"?")
            m
      in
      List.iter
        (fun row ->
          let name = Option.value (row_name row) ~default:"?" in
          let chain_ok =
            match J.member "chain_ok" row with
            | Some (J.Bool b) -> b
            | _ -> fail "%s: E15 row %S has no chain_ok" current name
          in
          Fmt.pr "E15 %-12s chain_ok=%b sc=%b tso=%b armv8=%b ps=%b@." name
            chain_ok (model row "sc") (model row "tso") (model row "armv8")
            (model row "ps");
          if not chain_ok then begin
            Fmt.epr
              "guard: E15 %s: inclusion chain SC ⊆ TSO ⊆ ARMv8 violated@."
              name;
            bad := ("chain:" ^ name) :: !bad
          end)
        known;
      (match find_row "SB-rlx" known with
       | None ->
         if find_row "SB-rlx" cur_rows = None then
           fail "%s: E15 table has no SB-rlx row" current
       | Some row ->
         if not (model row "tso" && not (model row "sc")) then begin
           Fmt.epr
             "guard: E15 SB-rlx must separate TSO from SC (allowed under \
              TSO, forbidden under SC)@.";
           bad := "SB-separation" :: !bad
         end);
      if !bad = [] then
        Fmt.pr "guard: all %d E15 rows within bounds@." (List.length known);
      !bad)

(* ---------------- E16: guided-fuzzing invariants ---------------- *)

(* Categorical plus one floor: the guided campaign must refute every
   planted variant ([min_planted] from the baseline), must not need
   more execs than the blind campaign to refute them all (the two
   campaigns share every even corpus index, so the comparison is exact,
   not statistical), and its coverage-point count must stay at or above
   the baseline floor [min_points] (signals are pure functions of the
   deterministic corpus, so a drop is a code regression, not noise). *)
let check_e16 ~current ~cur_tbls ~base_tbls =
  match table_rows "E16" base_tbls with
  | None -> []  (* baseline predates guided fuzzing *)
  | Some base_rows -> (
    let floor_row =
      match find_row "guided" base_rows with
      | Some r -> r
      | None -> fail "baseline E16 table has no \"guided\" row"
    in
    let floor k =
      match Option.bind (J.member k floor_row) J.to_float_opt with
      | Some f -> int_of_float f
      | None -> fail "baseline E16 guided row has no %S floor" k
    in
    let min_planted = floor "min_planted" and min_points = floor "min_points" in
    match table_rows "E16" cur_tbls with
    | None -> fail "%s: no E16 table" current
    | Some cur_rows ->
      let geti row k =
        match Option.bind (J.member k row) J.to_float_opt with
        | Some f -> int_of_float f
        | None ->
          fail "%s: E16 row %S has no %S" current
            (Option.value (row_name row) ~default:"?")
            k
      in
      let guided =
        match find_row "guided" cur_rows with
        | Some r -> r
        | None -> fail "%s: E16 table has no guided row" current
      in
      let bad = ref [] in
      let planted = geti guided "planted_refuted" in
      let points = geti guided "points" in
      Fmt.pr "E16 guided: planted %d (floor %d)  points %d (floor %d)@."
        planted min_planted points min_points;
      if planted < min_planted then begin
        Fmt.epr "guard: E16 guided refuted %d planted variants (floor %d)@."
          planted min_planted;
        bad := "planted-floor" :: !bad
      end;
      if points < min_points then begin
        Fmt.epr "guard: E16 guided coverage %d points below floor %d@." points
          min_points;
        bad := "points-floor" :: !bad
      end;
      let refutes =
        List.filter
          (fun row ->
            match row_name row with
            | Some n ->
              String.length n > 7 && String.sub n 0 7 = "refute:"
            | None -> false)
          cur_rows
      in
      let all r k =
        List.fold_left
          (fun acc row ->
            let i = geti row k in
            if acc < 0 || i < 0 then -1 else max acc i)
          0 r
      in
      let b_all = all refutes "blind_exec" and g_all = all refutes "guided_exec" in
      Fmt.pr "E16 execs-to-refute-all: blind #%d  guided #%d@." b_all g_all;
      if b_all >= 0 && (g_all < 0 || g_all > b_all) then begin
        Fmt.epr
          "guard: E16 guided needs more execs than blind to refute every \
           planted variant (#%d > #%d)@."
          g_all b_all;
        bad := "execs-to-refute" :: !bad
      end;
      if !bad = [] then Fmt.pr "guard: E16 within bounds@.";
      !bad)

let () =
  let current, baseline =
    match Array.to_list Sys.argv with
    | [ _; c ] -> (c, "bench/baseline.json")
    | [ _; c; b ] -> (c, b)
    | _ -> fail "usage: guard.exe CURRENT.json [BASELINE.json]"
  in
  let cur_doc = load current and base_doc = load baseline in
  check_schema current cur_doc;
  check_schema baseline base_doc;
  let cur_tbls = tables current cur_doc in
  let base_tbls = tables baseline base_doc in
  let hard, soft = check_e12 ~current ~cur_tbls ~baseline ~base_tbls in
  let chaos_bad = check_e13 ~current ~cur_tbls ~base_tbls in
  let abs_bad = check_e14 ~current ~cur_tbls ~base_tbls in
  let grid_bad = check_e15 ~current ~cur_tbls ~base_tbls in
  let fuzz_bad = check_e16 ~current ~cur_tbls ~base_tbls in
  match hard, soft, chaos_bad, abs_bad, grid_bad, fuzz_bad with
  | [], [], [], [], [], [] -> ()
  | hard, soft, chaos_bad, abs_bad, grid_bad, fuzz_bad ->
    List.iter
      (Fmt.epr "guard: HARD regression (order of magnitude): %s@.")
      hard;
    List.iter
      (Fmt.epr "guard: regression below %.0f%% of baseline: %s@."
         (100. *. soft_floor))
      soft;
    List.iter (Fmt.epr "guard: E13 chaos invariant violated: %s@.") chaos_bad;
    List.iter (Fmt.epr "guard: E14 certifier floor violated: %s@.") abs_bad;
    List.iter (Fmt.epr "guard: E15 grid invariant violated: %s@.") grid_bad;
    List.iter
      (Fmt.epr "guard: E16 guided-fuzzing invariant violated: %s@.")
      fuzz_bad;
    exit (if hard <> [] then 2 else 1)
