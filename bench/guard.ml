(* Bench regression guard: compare the E12 enumeration-core speedup rows
   of a fresh `bench --json` record against the checked-in baseline
   (bench/baseline.json).

   Speedups are same-run ratios of two measurements under identical
   load, so they are machine-independent where absolute times are not —
   that is what gets compared.  A row regressing below
   [soft_floor] x its baseline speedup fails the guard (exit 1); a row
   collapsing by an order of magnitude is reported as a hard failure
   (exit 2) — that means a fast path stopped engaging, not noise.

   The baseline's speedup fields are conservative floors (below the
   worst ratio observed across healthy runs), not a verbatim run record:
   same-run ratios still wobble with GC pressure and machine load, and
   the guard must only trip on real regressions.  Refresh them
   deliberately when the fast path materially improves.

   Usage: guard.exe CURRENT.json [BASELINE.json]  (default baseline:
   bench/baseline.json). *)

module J = Service.Json

let soft_floor = 0.75
let hard_floor = 0.1

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let fail fmt = Fmt.kstr (fun m -> prerr_endline ("guard: " ^ m); exit 1) fmt

(* The E12 rows as (name, speedup) pairs. *)
let e12_rows path : (string * float) list =
  let doc =
    match J.of_string (read_file path) with
    | doc -> doc
    | exception J.Parse_error msg -> fail "%s: JSON parse error at %s" path msg
  in
  let tables =
    match Option.bind (J.member "tables" doc) J.to_list_opt with
    | Some ts -> ts
    | None -> fail "%s: no \"tables\" array" path
  in
  let e12 =
    List.find_opt
      (fun t -> Option.bind (J.member "id" t) J.to_string_opt = Some "E12")
      tables
  in
  match Option.bind e12 (fun t -> Option.bind (J.member "rows" t) J.to_list_opt)
  with
  | None -> fail "%s: no E12 table" path
  | Some rows ->
    List.filter_map
      (fun row ->
        match
          ( Option.bind (J.member "name" row) J.to_string_opt,
            Option.bind (J.member "speedup" row) J.to_float_opt )
        with
        | Some name, Some speedup -> Some (name, speedup)
        | _ -> None)
      rows

let () =
  let current, baseline =
    match Array.to_list Sys.argv with
    | [ _; c ] -> (c, "bench/baseline.json")
    | [ _; c; b ] -> (c, b)
    | _ -> fail "usage: guard.exe CURRENT.json [BASELINE.json]"
  in
  let cur = e12_rows current in
  let base = e12_rows baseline in
  if base = [] then fail "%s: baseline has no E12 speedup rows" baseline;
  let soft = ref [] and hard = ref [] in
  List.iter
    (fun (name, bspeed) ->
      match List.assoc_opt name cur with
      | None -> fail "row %S present in baseline but missing from %s" name current
      | Some cspeed ->
        let ratio = cspeed /. bspeed in
        Fmt.pr "%-22s baseline %6.2fx  current %6.2fx  ratio %.2f@." name
          bspeed cspeed ratio;
        if ratio < hard_floor then hard := name :: !hard
        else if ratio < soft_floor then soft := name :: !soft)
    base;
  match !hard, !soft with
  | [], [] -> Fmt.pr "guard: all %d E12 rows within bounds@." (List.length base)
  | hard, soft ->
    List.iter
      (Fmt.epr "guard: HARD regression (order of magnitude): %s@.")
      hard;
    List.iter (Fmt.epr "guard: regression below %.0f%% of baseline: %s@." (100. *. soft_floor)) soft;
    exit (if hard <> [] then 2 else 1)
