(** Chaos drill: the whole corpus through a fault-injecting proxy.

    Spawns an in-process seqd, puts {!Service.Chaos} between the client
    and the daemon with a fixed seed — frame delays, dropped / garbled /
    truncated / duplicated frames, connections killed mid-response — and
    streams every catalog transformation as an individual check under
    the resilient client policy.  The drill passes when every verdict
    matches the catalog's expectation (the retry / backoff / reconnect
    machinery masked every injected fault), at least one fault was
    actually injected (the drill is not vacuous), and the daemon drains
    cleanly.  Exit 0 on pass, 1 on fail.

    Run: dune exec examples/chaos_drill.exe *)

open Promising_seq
module C = Litmus.Catalog
module Proto = Service.Proto

let temp_dir prefix =
  let f = Filename.temp_file prefix "" in
  Sys.remove f;
  Unix.mkdir f 0o700;
  f

let seed = 2026

let expected (t : C.transformation) : Proto.verdict =
  match (t.C.simple, t.C.advanced) with
  | C.Sound, _ -> Proto.Refines_simple
  | C.Unsound, C.Sound -> Proto.Refines_advanced
  | C.Unsound, C.Unsound -> Proto.Refuted

let () =
  let dir = temp_dir "seqd-chaos" in
  let sock = Filename.concat dir "seqd.sock" in
  let proxy_sock = Filename.concat dir "chaos.sock" in
  let config =
    {
      (Service.Server.default_config ~socket_path:sock) with
      cache_dir = Some (Filename.concat dir "cache");
      jobs = 2;
    }
  in
  let server = Service.Server.spawn config in
  let proxy =
    Service.Chaos.start
      ~listen:(Service.Addr.Unix_sock proxy_sock)
      ~upstream:(Service.Addr.Unix_sock sock)
      (Service.Chaos.schedule seed)
  in
  let policy =
    {
      Service.Client.resilient_policy with
      attempts = 16;
      request_timeout_ms = Some 500.;
      seed;
    }
  in
  let wrong = ref 0 in
  let ctrs =
    Service.Client.with_connection ~policy proxy_sock (fun c ->
        List.iter
          (fun (t : C.transformation) ->
            let r = Service.Client.check c ~src:t.C.src ~tgt:t.C.tgt () in
            let want = expected t in
            if r.Proto.verdict <> want then begin
              incr wrong;
              Fmt.epr "MISMATCH %-28s got %s, expected %s@." t.C.name
                (Proto.verdict_to_string r.Proto.verdict)
                (Proto.verdict_to_string want)
            end)
          C.transformations;
        Service.Client.counters c)
  in
  let fc = Service.Chaos.counts proxy in
  Service.Chaos.stop proxy;
  Service.Server.stop server;
  let faults = Service.Chaos.injected fc in
  Fmt.pr
    "chaos drill: seed=%d checks=%d@.  proxy: frames=%d pass=%d delay=%d \
     drop=%d garble=%d truncate=%d duplicate=%d kill=%d@.  client: \
     retries=%d busy=%d reconnects=%d@."
    seed
    (List.length C.transformations)
    fc.Service.Chaos.frames fc.Service.Chaos.passed fc.Service.Chaos.delayed
    fc.Service.Chaos.dropped fc.Service.Chaos.garbled
    fc.Service.Chaos.truncated fc.Service.Chaos.duplicated
    fc.Service.Chaos.killed ctrs.Service.Client.retries
    ctrs.Service.Client.busy ctrs.Service.Client.reconnects;
  if Sys.file_exists sock then begin
    Fmt.epr "FAIL: daemon socket not unlinked by the drain@.";
    exit 1
  end;
  if faults = 0 then begin
    Fmt.epr "FAIL: the schedule injected no faults (vacuous drill)@.";
    exit 1
  end;
  if !wrong > 0 then begin
    Fmt.epr "FAIL: %d verdict(s) diverged under chaos@." !wrong;
    exit 1
  end;
  Fmt.pr "ok: %d faults injected, every verdict matched the catalog@." faults
