(** A programmatic round-trip against an in-process seqd.

    Spawns the server on a temp socket with an on-disk cache, sends the
    same refinement check three times — cold, warm, and after a server
    restart — and shows the serving tier moving computed → mem → disk
    while the verdict and its proof provenance stay identical
    (docs/SERVICE.md).

    Run: dune exec examples/service_roundtrip.exe *)

open Promising_seq

let temp_dir prefix =
  let f = Filename.temp_file prefix "" in
  Sys.remove f;
  Unix.mkdir f 0o700;
  f

let () =
  let dir = temp_dir "seqd-example" in
  let config =
    {
      (Service.Server.default_config
         ~socket_path:(Filename.concat dir "seqd.sock"))
      with
      cache_dir = Some (Filename.concat dir "cache");
    }
  in
  (* store-to-load forwarding: sound, and certified statically *)
  let src = "X.store(na, 1); a = X.load(na); return a" in
  let tgt = "X.store(na, 1); a = 1; return a" in
  let check label =
    Service.Client.with_connection config.Service.Server.socket_path
      (fun c ->
        let r = Service.Client.check c ~src ~tgt () in
        Fmt.pr "%-8s %s@." label (Service.Proto.check_result_to_string r))
  in
  let server = Service.Server.spawn config in
  check "cold";
  check "warm";
  Service.Server.stop server;
  (* a fresh server over the same store answers from disk *)
  let server = Service.Server.spawn config in
  check "restart";
  (* the stats RPC: request counters, tier split, latency percentiles *)
  Service.Client.with_connection config.Service.Server.socket_path (fun c ->
      Fmt.pr "@.stats:@.%s" (Service.Client.stats c));
  Service.Server.stop server
