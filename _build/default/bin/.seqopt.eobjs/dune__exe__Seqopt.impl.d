bin/seqopt.ml: Arg Cmd Cmdliner Fmt In_channel Lang List Loc Optimizer Parser Printf Seq_model Stmt Term
