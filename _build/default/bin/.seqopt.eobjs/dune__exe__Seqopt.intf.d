bin/seqopt.mli:
