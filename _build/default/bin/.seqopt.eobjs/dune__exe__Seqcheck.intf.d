bin/seqcheck.mli:
