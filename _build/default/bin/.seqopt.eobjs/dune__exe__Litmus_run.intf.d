bin/litmus_run.mli:
