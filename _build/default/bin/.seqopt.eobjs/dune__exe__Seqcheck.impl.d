bin/seqcheck.ml: Arg Cmd Cmdliner Domain Fmt In_channel Lang List Loc Parser Prog Seq_model Term Value
