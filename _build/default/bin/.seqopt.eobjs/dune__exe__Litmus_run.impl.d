bin/litmus_run.ml: Arg Baselines Cmd Cmdliner Fmt In_channel Lang List Litmus Parser Printf Promising String Term
