(** seqopt — the certified optimizer as a command-line tool.

    Reads a WHILE program (file or stdin), runs the §4 pass pipeline,
    validates the result in SEQ (translation validation), and prints the
    optimized program. *)

open Cmdliner
open Lang

let read_input = function
  | None | Some "-" -> In_channel.input_all In_channel.stdin
  | Some path -> In_channel.with_open_text path In_channel.input_all

let run input passes no_validate quiet =
  try
    let src_text = read_input input in
    let prog = Parser.stmt_of_string src_text in
    let passes =
      match passes with
      | [] -> Optimizer.Driver.all_passes
      | names ->
        List.map
          (fun n ->
            match Optimizer.Driver.pass_of_string n with
            | Some p -> p
            | None -> failwith (Printf.sprintf "unknown pass %S" n))
          names
    in
    let report = Optimizer.Driver.optimize ~passes prog in
    if not quiet then
      Fmt.epr "%a@." Optimizer.Driver.pp_report report;
    if not no_validate then begin
      let v =
        Optimizer.Validate.validate ~src:report.Optimizer.Driver.input
          ~tgt:report.Optimizer.Driver.output ()
      in
      if not v.Optimizer.Validate.valid then begin
        Fmt.epr "validation FAILED: output does not refine input in SEQ@.";
        exit 2
      end;
      if not quiet then
        Fmt.epr "validated: SEQ %s refinement holds@."
          (if v.Optimizer.Validate.simple then "simple" else "advanced")
    end;
    Fmt.pr "%s@." (Stmt.to_string report.Optimizer.Driver.output);
    0
  with
  | Parser.Error msg | Failure msg ->
    Fmt.epr "error: %s@." msg;
    1
  | Seq_model.Config.Mixed_access x ->
    Fmt.epr "error: location %s is accessed both atomically and non-atomically@."
      (Loc.name x);
    1

let input =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE"
         ~doc:"Input program ('-' or absent for stdin).")

let passes =
  Arg.(value & opt (list string) [] & info [ "p"; "passes" ] ~docv:"PASSES"
         ~doc:"Comma-separated passes to run (slf, llf, dse, licm).")

let no_validate =
  Arg.(value & flag & info [ "no-validate" ]
         ~doc:"Skip SEQ translation validation.")

let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Only print the output program.")

let cmd =
  Cmd.v
    (Cmd.info "seqopt" ~version:"1.0"
       ~doc:"Certified optimizer for weak-memory WHILE programs (PLDI 2022)")
    Term.(const run $ input $ passes $ no_validate $ quiet)

let () = exit (Cmd.eval' cmd)
