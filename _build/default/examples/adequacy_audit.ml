(** Auditing the adequacy theorem (Thm 6.2) on a slice of the corpus.

    Run with: dune exec examples/adequacy_audit.exe

    For a selection of transformations, compares the SEQ verdicts (simple
    and advanced refinement) against PS_na contextual refinement in the
    context library.  Every SEQ-validated transformation must refine in
    every context; refuted ones usually exhibit a refusing context too. *)

open Promising_seq
module A = Litmus.Adequacy
module C = Litmus.Catalog

let corpus =
  [
    "slf-basic"; "reorder-na-rw-same"; "na-write-into-acq";
    "na-write-into-rel"; "slf-across-rel-acq"; "rlx-read-then-na-write";
    "dse-across-rel-write"; "store-intro-after-rel"; "irrelevant-load-intro";
  ]

let () =
  Fmt.pr "%-26s %-8s %-9s %s@." "transformation" "simple" "advanced"
    "PS_na contexts (✓ refines)";
  List.iter
    (fun name ->
      match C.find_transformation name with
      | None -> ()
      | Some tr ->
        let row = A.check_transformation tr in
        let ctxs =
          String.concat " "
            (List.map
               (fun (n, ok, _) -> Printf.sprintf "%s:%s" n (if ok then "✓" else "✗"))
               row.A.contexts)
        in
        Fmt.pr "%-26s %-8b %-9b %s@." name row.A.seq_simple row.A.seq_advanced
          ctxs;
        if not (A.row_ok row) then begin
          Fmt.pr "ADEQUACY VIOLATION on %s@." name;
          exit 1
        end)
    corpus;
  Fmt.pr "@.No SEQ-accepts/PS_na-refutes pair: adequacy holds on this slice.@."
