(** The certified optimizer end to end (§4).

    Run with: dune exec examples/optimizer_pipeline.exe

    Optimizes the paper's Fig 4 program and a loop-heavy kernel with all
    four passes (SLF, LLF, DSE, LICM), printing the per-pass statistics and
    the SEQ translation-validation certificate for each run. *)

open Promising_seq
open Lang

let demo name src =
  let prog = Parser.stmt_of_string src in
  Fmt.pr "==== %s ====@.input:@.%s@.@." name (Stmt.to_string prog);
  let report, verdict = Opt.Validate.certified_optimize prog in
  Fmt.pr "%a@.@." Opt.Driver.pp_report report;
  Fmt.pr "output:@.%s@.@." (Stmt.to_string report.Opt.Driver.output);
  Fmt.pr "certificate: SEQ %s refinement%s@.@."
    (if verdict.Opt.Validate.simple then "simple" else "advanced")
    (if verdict.Opt.Validate.valid then "" else " — VALIDATION FAILED");
  assert verdict.Opt.Validate.valid

let () =
  (* Fig 4 of the paper (constant 2 keeps the checking domain small) *)
  demo "Fig 4: SLF across atomics"
    "X.store(na, 2); \
     l = Y.load(acq); \
     if l == 0 { a = X.load(na); Y.store(rel, 1) }; \
     b = X.load(na); \
     return 10*a + b";
  (* a loop kernel exercising LICM + LLF + DSE together *)
  demo "loop kernel: LICM + LLF + DSE"
    "X.store(na, 1); \
     X.store(na, 2); \
     s = 0; i = 0; \
     while i < 2 { \
       a = X.load(na); \
       b = X.load(na); \
       s = s + a + b; \
       i = i + 1 \
     }; \
     return s";
  (* overwritten store across a release write: Ex 3.5, needs the advanced
     refinement notion to validate *)
  demo "Ex 3.5: DSE across a release write"
    "X.store(na, 1); Y.store(rel, 0); X.store(na, 2)"
