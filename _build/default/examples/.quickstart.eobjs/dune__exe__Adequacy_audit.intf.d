examples/adequacy_audit.mli:
