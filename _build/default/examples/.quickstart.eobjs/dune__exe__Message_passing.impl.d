examples/message_passing.ml: Baselines Fmt Lang Parser Promising_seq Ps Value
