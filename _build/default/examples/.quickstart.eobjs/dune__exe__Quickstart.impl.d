examples/quickstart.ml: Domain Fmt Lang Parser Promising_seq Ps Seq
