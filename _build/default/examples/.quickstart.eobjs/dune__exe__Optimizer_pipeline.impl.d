examples/optimizer_pipeline.ml: Fmt Lang Opt Parser Promising_seq Stmt
