examples/adequacy_audit.ml: Fmt List Litmus Printf Promising_seq String
