examples/quickstart.mli:
