(** Weak-memory exploration: message passing, promises, and races.

    Run with: dune exec examples/message_passing.exe

    Explores the PS_na behaviors of classic concurrent idioms and the
    paper's Example 5.1, and contrasts them with the SC and catch-fire
    baselines. *)

open Promising_seq
open Lang

let show name text =
  let progs = Parser.threads_of_string text in
  let ps = Ps.Machine.explore progs in
  let sc = Baselines.Sc.explore progs in
  let cf = Baselines.Catchfire.explore progs in
  Fmt.pr "== %s ==@." name;
  Fmt.pr "  PS_na (%4d states): %a@." ps.Ps.Machine.states
    Ps.Machine.pp_behaviors ps.Ps.Machine.behaviors;
  Fmt.pr "  SC    (%4d states): %a@." sc.Baselines.Sc.states
    Ps.Machine.pp_behaviors sc.Baselines.Sc.behaviors;
  Fmt.pr "  catch-fire: %s@.@."
    (if cf.Baselines.Catchfire.catches_fire then "UB — the program races"
     else "race-free, SC behaviors");
  ps

let () =
  (* Properly synchronised message passing: the data read is never stale,
     never racy. *)
  ignore
    (show "message passing (rel/acq)"
       "X.store(na, 7); Y.store(rel, 1); return 0 ||| \
        a = Y.load(acq); if a == 1 { b = X.load(na) }; return b");
  (* Broken message passing: relaxed flag means the data race surfaces as
     an undef read in PS_na and as UB under catch-fire. *)
  ignore
    (show "message passing (rlx flag — racy)"
       "X.store(na, 7); Y.store(rlx, 1); return 0 ||| \
        a = Y.load(rlx); if a == 1 { b = X.load(na) }; return b");
  (* Load buffering: the promising machinery at work (a=b=1 requires a
     promise). *)
  ignore
    (show "load buffering (rlx)"
       "a = Y.load(rlx); Z.store(rlx, 1); return a ||| \
        b = Z.load(rlx); Y.store(rlx, 1); return b");
  (* Example 5.1: a promise certified through a racy non-atomic read. *)
  let r =
    show "Example 5.1 (promise + racy na read)"
      "a = X.load(na); Y.store(rlx, 1); return a ||| \
       b = Y.load(rlx); if b == 1 { X.store(na, 1) }; return b"
  in
  let witness =
    Ps.Machine.Ret [ (Value.Undef, []); (Value.Int 1, []) ]
  in
  assert (Ps.Machine.Behavior_set.mem witness r.Ps.Machine.behaviors);
  Fmt.pr "Example 5.1 witness ⟨undef ∥ 1⟩ found, as the paper predicts.@."
