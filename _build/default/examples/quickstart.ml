(** Quickstart: check a compiler transformation with sequential reasoning.

    Run with: dune exec examples/quickstart.exe

    The scenario is Example 1.1/1.2 of the paper: a store-to-load
    forwarding pass wants to replace a non-atomic load with the value of an
    earlier store, possibly across atomic operations.  Instead of reasoning
    about the full promising semantics, we check behavioral refinement in
    the {e sequential} model SEQ — which, by the adequacy theorem, entails
    contextual refinement under any concurrent context. *)

open Promising_seq
open Lang

let check name ~src ~tgt =
  let src = Parser.stmt_of_string src and tgt = Parser.stmt_of_string tgt in
  let d = Domain.of_stmts [ src; tgt ] in
  let simple = Seq.Refine.check d ~src ~tgt in
  let advanced = if simple then true else Seq.Advanced.check d ~src ~tgt in
  Fmt.pr "%-42s %s@." name
    (if simple then "SOUND (simple notion)"
     else if advanced then "SOUND (advanced notion)"
     else "UNSOUND");
  advanced

let () =
  Fmt.pr "== Store-to-load forwarding, sequentially justified ==@.";
  (* Ex 1.1: the basic pattern *)
  ignore
    (check "SLF (Ex 1.1)"
       ~src:"X.store(na, 1); b = X.load(na); return b"
       ~tgt:"X.store(na, 1); b = 1; return b");
  (* Ex 1.2 / 2.11: across an acquire read *)
  ignore
    (check "SLF across an acquire (Ex 2.11)"
       ~src:"X.store(na, 1); a = Y.load(acq); b = X.load(na); return 3*a + b"
       ~tgt:"X.store(na, 1); a = Y.load(acq); b = 1; return 3*a + b");
  (* Ex 2.12: ... but not across a release-acquire pair *)
  ignore
    (check "SLF across a rel-acq pair (Ex 2.12)"
       ~src:"X.store(na, 1); Y.store(rel, 2); a = Z.load(acq); b = X.load(na); return b"
       ~tgt:"X.store(na, 1); Y.store(rel, 2); a = Z.load(acq); b = 1; return b");
  (* load introduction — the catch-fire killer (Ex 1.3) *)
  ignore
    (check "irrelevant load introduction (Ex 2.8)"
       ~src:"return 0"
       ~tgt:"a = X.load(na); return 0");
  Fmt.pr "@.== And the adequacy payoff: a concurrent cross-check ==@.";
  (* SEQ said SLF is sound; PS_na agrees under a racing context. *)
  let explore text = Ps.Machine.explore (Parser.threads_of_string text) in
  let ctx = "X.store(na, 2); Y.store(rel, 1); return 0" in
  let src = explore ("X.store(na, 1); b = X.load(na); return b ||| " ^ ctx) in
  let tgt = explore ("X.store(na, 1); b = 1; return b ||| " ^ ctx) in
  Fmt.pr "source behaviors: %a@." Ps.Machine.pp_behaviors src.Ps.Machine.behaviors;
  Fmt.pr "target behaviors: %a@." Ps.Machine.pp_behaviors tgt.Ps.Machine.behaviors;
  Fmt.pr "PS_na contextual refinement: %b@."
    (Ps.Machine.refines ~src:src.Ps.Machine.behaviors ~tgt:tgt.Ps.Machine.behaviors)
