(** Small-step labeled transition system for WHILE programs (§2, "Program
    representation in the paper").

    A program state [σ] is a continuation stack plus a register file.  Every
    non-terminal state offers exactly one {e action shape}; for reads and
    choices the successor is a function of the observed/chosen value.  This
    makes every WHILE program {e deterministic} in the sense of Def 6.1,
    which the adequacy theorem (Thm 6.2) requires. *)

type state = {
  cont : Stmt.t list;  (** continuation; the head is never [Seq] *)
  regs : Value.t Reg.Map.t;
  ret : Value.t option;
      (** [Some v] once a [return] has been evaluated: the state is
          [return(v)] in the paper's sense.  Evaluating [return e] is a
          silent step, so a partial behavior exists between a program's
          last action and its termination (cf. Example 2.2). *)
}

(* Flatten [Seq] so the continuation head is always an executable form. *)
let rec push (s : Stmt.t) (k : Stmt.t list) : Stmt.t list =
  match s with
  | Stmt.Seq (a, b) -> push a (push b k)
  | Stmt.Skip -> k
  | s -> s :: k

let init ?(regs = Reg.Map.empty) (s : Stmt.t) : state =
  { cont = push s []; regs; ret = None }

let compare_state (a : state) (b : state) =
  let c = Stdlib.compare a.cont b.cont in
  if c <> 0 then c
  else
    let c = Option.compare Value.compare a.ret b.ret in
    if c <> 0 then c else Reg.Map.compare Value.compare a.regs b.regs

let equal_state a b = compare_state a b = 0

let read_reg st r = Reg.Map.find_default ~default:Value.zero r st.regs
let write_reg st r v = { st with regs = Reg.Map.add r v st.regs }

(** Outcome of a successful atomic update, as a function of the read value. *)
type update_outcome =
  | Upd_fault  (** e.g. CAS comparison against [undef]: UB *)
  | Upd_write of Value.t * state
      (** exchange succeeded: write the value, continue *)
  | Upd_read_only of state
      (** failed CAS: behaves as an acquire read, no write *)

(** The unique action shape offered by a state. *)
type shape =
  | Terminated of Value.t
  | Undefined  (** the state steps to ⊥ (UB) *)
  | Silent of state
  | Choice of (Value.t -> state)
      (** [choose(v)] for every defined value [v] *)
  | Do_read of Mode.read * Loc.t * (Value.t -> state)
  | Do_write of Mode.write * Loc.t * Value.t * state
  | Do_update of Loc.t * (Value.t -> update_outcome)
      (** acquire-release RMW; the function consumes the read value *)
  | Do_fence of Mode.fence * state
  | Do_out of Value.t * state  (** system call: print *)

let step (st : state) : shape =
  match st.cont with
  | [] ->
    (match st.ret with
     | Some v -> Terminated v
     | None ->
       (* implicit return(0): also a silent step, so the state after the
          program's last action is still "running" (partial behaviors with
          the final written set exist, cf. Example 2.2) *)
       Silent { st with cont = []; ret = Some Value.zero })
  | s :: k ->
    (match s with
     | Stmt.Skip -> Silent { st with cont = k }
     | Stmt.Seq (a, b) -> Silent { st with cont = push a (push b k) }
     | Stmt.Abort -> Undefined
     | Stmt.Return e ->
       (match Expr.eval st.regs e with
        | Expr.Fault -> Undefined
        | Expr.Ok v -> Silent { st with cont = []; ret = Some v })
     | Stmt.Assign (r, e) ->
       (match Expr.eval st.regs e with
        | Expr.Fault -> Undefined
        | Expr.Ok v -> Silent (write_reg { st with cont = k } r v))
     | Stmt.If (e, a, b) ->
       (match Expr.eval st.regs e with
        | Expr.Fault -> Undefined
        | Expr.Ok v ->
          (match Value.to_bool v with
           | None -> Undefined (* branching on undef is UB (Remark 1) *)
           | Some true -> Silent { st with cont = push a k }
           | Some false -> Silent { st with cont = push b k }))
     | Stmt.While (e, body) ->
       (match Expr.eval st.regs e with
        | Expr.Fault -> Undefined
        | Expr.Ok v ->
          (match Value.to_bool v with
           | None -> Undefined
           | Some true -> Silent { st with cont = push body (s :: k) }
           | Some false -> Silent { st with cont = k }))
     | Stmt.Choose r ->
       Choice (fun v -> write_reg { st with cont = k } r v)
     | Stmt.Freeze (r, e) ->
       (match Expr.eval st.regs e with
        | Expr.Fault -> Undefined
        | Expr.Ok (Value.Int _ as v) -> Silent (write_reg { st with cont = k } r v)
        | Expr.Ok Value.Undef -> Choice (fun v -> write_reg { st with cont = k } r v))
     | Stmt.Load (r, m, x) ->
       Do_read (m, x, fun v -> write_reg { st with cont = k } r v)
     | Stmt.Store (m, x, e) ->
       (match Expr.eval st.regs e with
        | Expr.Fault -> Undefined
        | Expr.Ok v -> Do_write (m, x, v, { st with cont = k }))
     | Stmt.Cas (r, x, e_exp, e_new) ->
       (match Expr.eval st.regs e_exp, Expr.eval st.regs e_new with
        | Expr.Fault, _ | _, Expr.Fault -> Undefined
        | Expr.Ok v_exp, Expr.Ok v_new ->
          Do_update
            ( x,
              fun v_read ->
                match v_read, v_exp with
                | Value.Undef, _ | _, Value.Undef ->
                  (* comparing against undef is branching on undef: UB *)
                  Upd_fault
                | Value.Int a, Value.Int b ->
                  if a = b then
                    Upd_write (v_new, write_reg { st with cont = k } r Value.one)
                  else Upd_read_only (write_reg { st with cont = k } r Value.zero) ))
     | Stmt.Fadd (r, x, e) ->
       (match Expr.eval st.regs e with
        | Expr.Fault -> Undefined
        | Expr.Ok v_add ->
          Do_update
            ( x,
              fun v_read ->
                match Expr.apply_binop Expr.Add v_read v_add with
                | Expr.Fault -> Upd_fault
                | Expr.Ok v_new ->
                  Upd_write (v_new, write_reg { st with cont = k } r v_read) ))
     | Stmt.Fence m -> Do_fence (m, { st with cont = k })
     | Stmt.Print e ->
       (match Expr.eval st.regs e with
        | Expr.Fault -> Undefined
        | Expr.Ok v -> Do_out (v, { st with cont = k })))

(** Every WHILE program is deterministic by construction (Def 6.1): [step]
    returns a single shape, and distinct read/choice values lead to the
    branches (ii)/(iii) of the definition.  Exposed for documentation and
    tests. *)
let is_deterministic (_ : Stmt.t) = true

let pp_state ppf st =
  Fmt.pf ppf "@[<v>regs: %a ret: %a@ code: %a@]"
    (Reg.Map.pp Value.pp) st.regs
    (Fmt.option ~none:(Fmt.any "-") Value.pp) st.ret
    (Fmt.list ~sep:Fmt.semi Stmt.pp) st.cont
