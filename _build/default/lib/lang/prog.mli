(** Small-step labeled transition system for WHILE programs (§2, "Program
    representation in the paper").

    Every non-terminal state offers exactly one action {!shape}; reads and
    choices continue as a function of the observed/chosen value, making
    every WHILE program {e deterministic} in the sense of Def 6.1 (required
    by the adequacy theorem).  Evaluating [return e] — including the
    implicit [return 0] at the end of a program — is a silent step, so a
    running state exists between a program's last action and its
    termination (Example 2.2 relies on this). *)

type state = {
  cont : Stmt.t list;  (** continuation; the head is never [Seq] *)
  regs : Value.t Reg.Map.t;
  ret : Value.t option;  (** [Some v] once a [return] has been evaluated *)
}

val init : ?regs:Value.t Reg.Map.t -> Stmt.t -> state

val compare_state : state -> state -> int
val equal_state : state -> state -> bool

val read_reg : state -> Reg.t -> Value.t
val write_reg : state -> Reg.t -> Value.t -> state

(** Outcome of an atomic update as a function of the read value. *)
type update_outcome =
  | Upd_fault  (** e.g. CAS comparison against [undef]: UB *)
  | Upd_write of Value.t * state  (** success: write the value, continue *)
  | Upd_read_only of state  (** failed CAS: an acquire read, no write *)

(** The unique action shape offered by a state. *)
type shape =
  | Terminated of Value.t
  | Undefined  (** the state steps to ⊥ (UB) *)
  | Silent of state
  | Choice of (Value.t -> state)
  | Do_read of Mode.read * Loc.t * (Value.t -> state)
  | Do_write of Mode.write * Loc.t * Value.t * state
  | Do_update of Loc.t * (Value.t -> update_outcome)
  | Do_fence of Mode.fence * state
  | Do_out of Value.t * state

val step : state -> shape

(** Always true — WHILE programs are deterministic by construction
    (Def 6.1); exposed for documentation and tests. *)
val is_deterministic : Stmt.t -> bool

val pp_state : Format.formatter -> state -> unit
