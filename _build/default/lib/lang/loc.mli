(** Shared-memory locations.  SEQ partitions them into non-atomic and
    atomic ones and forbids mixing (§2, footnote 3); PS_na allows mixing.
    The partition is derived from program footprints ({!Stmt.footprint}). *)

include module type of Symbol
