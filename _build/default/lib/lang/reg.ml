(** Thread-local registers. *)

include Symbol
