(** Interned string symbols, used for both shared-memory locations and
    thread-local registers.  Provides total order, maps and sets. *)

module T = struct
  type t = string
  let compare = String.compare
  let equal = String.equal
end

include T

let make (s : string) : t = s
let name (s : t) : string = s
let hash = Hashtbl.hash
let pp = Fmt.string

module Set = struct
  include Set.Make (T)

  let pp ppf s =
    Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ",") string) (elements s)
end

module Map = struct
  include Map.Make (T)

  let find_default ~default k m =
    match find_opt k m with
    | Some v -> v
    | None -> default

  let keys m = fold (fun k _ acc -> k :: acc) m [] |> List.rev

  let pp pp_v ppf m =
    let pp_binding ppf (k, v) = Fmt.pf ppf "%s↦%a" k pp_v v in
    Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any ";") pp_binding) (bindings m)
end
