(** Shared-memory locations.

    SEQ (§2) partitions locations into non-atomic ([Loc_na]) and atomic
    ([Loc_at]) ones and forbids mixed-mode access to a single location;
    PS_na (§5) allows mixing.  We represent locations by name only and let
    each client compute/validate the partition from a program's footprint
    (see {!Footprint}). *)

include Symbol
