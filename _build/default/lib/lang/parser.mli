(** Recursive-descent parser for WHILE programs and multi-thread litmus
    programs.  See README.md for the grammar. *)

exception Error of string  (** "line:col: message" *)

(** Parse a single-thread program. *)
val stmt_of_string : string -> Stmt.t

(** Parse a multi-thread program: threads separated by [|||]. *)
val threads_of_string : string -> Stmt.t list
