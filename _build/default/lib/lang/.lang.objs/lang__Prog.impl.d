lib/lang/prog.ml: Expr Fmt Loc Mode Option Reg Stdlib Stmt Value
