lib/lang/parser.ml: Expr Lexer List Loc Mode Printf Reg Stmt
