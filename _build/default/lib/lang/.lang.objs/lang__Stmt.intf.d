lib/lang/stmt.mli: Expr Format Loc Mode Reg
