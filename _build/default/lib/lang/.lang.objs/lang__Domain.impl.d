lib/lang/domain.ml: Fmt List Loc Stmt Value
