lib/lang/expr.mli: Format Reg Value
