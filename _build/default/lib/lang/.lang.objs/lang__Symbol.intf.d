lib/lang/symbol.mli: Format Map Set
