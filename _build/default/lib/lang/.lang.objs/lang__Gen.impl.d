lib/lang/gen.ml: Expr List Loc Mode Random Reg Stmt
