lib/lang/parser.mli: Stmt
