lib/lang/gen.mli: Expr Loc Random Reg Stmt
