lib/lang/prog.mli: Format Loc Mode Reg Stmt Value
