lib/lang/reg.mli: Symbol
