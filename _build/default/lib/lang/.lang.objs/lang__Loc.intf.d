lib/lang/loc.mli: Symbol
