lib/lang/symbol.ml: Fmt Hashtbl List Map Set String
