lib/lang/reg.ml: Symbol
