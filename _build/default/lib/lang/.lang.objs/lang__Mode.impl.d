lib/lang/mode.ml: Fmt
