lib/lang/mode.mli: Format
