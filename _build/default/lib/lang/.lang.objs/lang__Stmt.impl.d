lib/lang/stmt.ml: Expr Fmt Loc Mode Printf Reg
