lib/lang/loc.ml: Symbol
