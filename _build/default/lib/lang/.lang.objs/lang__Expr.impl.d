lib/lang/expr.ml: Fmt Reg Value
