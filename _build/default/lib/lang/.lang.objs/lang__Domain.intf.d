lib/lang/domain.mli: Format Loc Stmt Value
