lib/lang/value.ml: Fmt Int
