lib/lang/lexer.mli:
