(** Interned string symbols (locations and registers) with total order,
    maps, and sets. *)

type t = string

val compare : t -> t -> int
val equal : t -> t -> bool
val make : string -> t
val name : t -> string
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Set : sig
  include Set.S with type elt = t

  val pp : Format.formatter -> t -> unit
end

module Map : sig
  include Map.S with type key = t

  val find_default : default:'a -> key -> 'a t -> 'a
  val keys : 'a t -> key list
  val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
end
