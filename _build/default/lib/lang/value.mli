(** Values with the distinguished undefined value (§2, "Values").

    [undef] is what racy non-atomic reads return in PS_na and SEQ; it can
    be resolved to an arbitrary defined value by [freeze] (Remark 1).  The
    partial order {!le} is the paper's [⊑]:
    [v ⊑ v' ⇔ v = v' ∨ v' = undef] — [undef] is the top element. *)

type t =
  | Int of int
  | Undef

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** [le v v'] is [v ⊑ v']. *)
val le : t -> t -> bool

val is_undef : t -> bool
val is_defined : t -> bool

val zero : t
val one : t
val of_int : int -> t
val to_int : t -> int option

(** Truthiness for conditionals; [None] on [undef] (branching on [undef]
    is UB, Remark 1). *)
val to_bool : t -> bool option

val of_bool : bool -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
