(** Values of the language and of the memory models.

    Following §2 of the paper, the set of values contains a distinguished
    "undefined value" [undef] (LLVM's [undef]): racy non-atomic reads return
    it, and a [freeze] instruction can later resolve it to an arbitrary
    defined value.  The partial order [le] is the paper's [⊑]:
    [v ⊑ v' ⇔ v = v' ∨ v' = undef], i.e. [undef] is the top element and all
    defined values are incomparable. *)

type t =
  | Int of int
  | Undef

let equal a b =
  match a, b with
  | Int x, Int y -> x = y
  | Undef, Undef -> true
  | Int _, Undef | Undef, Int _ -> false

let compare a b =
  match a, b with
  | Int x, Int y -> Int.compare x y
  | Undef, Undef -> 0
  | Int _, Undef -> -1
  | Undef, Int _ -> 1

let hash = function
  | Int x -> x * 2
  | Undef -> 1

(* v ⊑ v'  ⇔  v = v' ∨ v' = undef *)
let le a b =
  match b with
  | Undef -> true
  | Int _ -> equal a b

let is_undef = function Undef -> true | Int _ -> false
let is_defined v = not (is_undef v)

let zero = Int 0
let one = Int 1

let of_int n = Int n

let to_int = function
  | Int n -> Some n
  | Undef -> None

(* Truthiness for conditionals.  Branching on [undef] is UB (Remark 1),
   so this returns [None] on [undef]. *)
let to_bool = function
  | Int 0 -> Some false
  | Int _ -> Some true
  | Undef -> None

let of_bool b = if b then one else zero

let pp ppf = function
  | Int n -> Fmt.int ppf n
  | Undef -> Fmt.string ppf "undef"

let to_string v = Fmt.str "%a" pp v
