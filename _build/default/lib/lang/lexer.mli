(** Hand-written lexer for the WHILE concrete syntax. *)

type token =
  | INT of int
  | IDENT of string
  | KW of string
  | PUNCT of string
  | OP of string
  | EOF

type located = { tok : token; line : int; col : int }

exception Error of string * int * int

val tokenize : string -> located list
