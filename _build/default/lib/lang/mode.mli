(** Access and fence modes (the paper's fragment plus fences and RMW from
    its Coq development). *)

type read = Rna | Rrlx | Racq
type write = Wna | Wrlx | Wrel
type fence = Facq | Frel | Facqrel | Fsc

val read_is_atomic : read -> bool
val write_is_atomic : write -> bool

val pp_read : Format.formatter -> read -> unit
val pp_write : Format.formatter -> write -> unit
val pp_fence : Format.formatter -> fence -> unit

val read_of_string : string -> read option
val write_of_string : string -> write option
val fence_of_string : string -> fence option
