(** Access and fence modes.

    The paper's presented fragment has non-atomic, relaxed, and
    release/acquire reads and writes.  We additionally carry fence modes and
    an acquire-release RMW (atomic update), which the paper's Coq
    development covers but the paper text elides. *)

type read = Rna | Rrlx | Racq

type write = Wna | Wrlx | Wrel

type fence = Facq | Frel | Facqrel | Fsc

let read_is_atomic = function Rna -> false | Rrlx | Racq -> true
let write_is_atomic = function Wna -> false | Wrlx | Wrel -> true

let pp_read ppf m =
  Fmt.string ppf (match m with Rna -> "na" | Rrlx -> "rlx" | Racq -> "acq")

let pp_write ppf m =
  Fmt.string ppf (match m with Wna -> "na" | Wrlx -> "rlx" | Wrel -> "rel")

let pp_fence ppf m =
  Fmt.string ppf
    (match m with
     | Facq -> "acq" | Frel -> "rel" | Facqrel -> "acqrel" | Fsc -> "sc")

let read_of_string = function
  | "na" -> Some Rna
  | "rlx" -> Some Rrlx
  | "acq" -> Some Racq
  | _ -> None

let write_of_string = function
  | "na" -> Some Wna
  | "rlx" -> Some Wrlx
  | "rel" -> Some Wrel
  | _ -> None

let fence_of_string = function
  | "acq" -> Some Facq
  | "rel" -> Some Frel
  | "acqrel" -> Some Facqrel
  | "sc" -> Some Fsc
  | _ -> None
