(** Thread-local registers. *)

include module type of Symbol
