(** Hand-written lexer for the WHILE concrete syntax (menhir is not
    available in the sealed toolchain). *)

type token =
  | INT of int
  | IDENT of string
  | KW of string       (* keywords: skip if else while return print ... *)
  | PUNCT of string    (* ( ) { } , ; . = ||| *)
  | OP of string       (* + - * / % == != < <= > >= && || ! *)
  | EOF

type located = { tok : token; line : int; col : int }

exception Error of string * int * int

let keywords =
  [ "skip"; "if"; "else"; "while"; "return"; "print"; "fence"; "abort";
    "choose"; "freeze"; "cas"; "fadd"; "undef"; "load"; "store" ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize (src : string) : located list =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 and col = ref 1 in
  let emit tok l c = toks := { tok; line = l; col = c } :: !toks in
  let i = ref 0 in
  let advance () =
    (if !i < n && src.[!i] = '\n' then begin
       incr line;
       col := 1
     end
     else incr col);
    incr i
  in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    let l0 = !line and c0 = !col in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '/' && peek 1 = Some '/' then
      while !i < n && src.[!i] <> '\n' do advance () done
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do advance () done;
      emit (INT (int_of_string (String.sub src start (!i - start)))) l0 c0
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do advance () done;
      let s = String.sub src start (!i - start) in
      if List.mem s keywords then emit (KW s) l0 c0 else emit (IDENT s) l0 c0
    end
    else begin
      let two =
        match peek 1 with
        | Some c1 -> Some (Printf.sprintf "%c%c" c c1)
        | None -> None
      in
      let three =
        match peek 1, peek 2 with
        | Some c1, Some c2 -> Some (Printf.sprintf "%c%c%c" c c1 c2)
        | _ -> None
      in
      match three with
      | Some "|||" ->
        emit (PUNCT "|||") l0 c0;
        advance (); advance (); advance ()
      | _ ->
        (match two with
         | Some (("==" | "!=" | "<=" | ">=" | "&&" | "||") as op) ->
           emit (OP op) l0 c0;
           advance (); advance ()
         | _ ->
           (match c with
            | '(' | ')' | '{' | '}' | ',' | ';' | '.' ->
              emit (PUNCT (String.make 1 c)) l0 c0;
              advance ()
            | '=' ->
              emit (PUNCT "=") l0 c0;
              advance ()
            | '+' | '-' | '*' | '/' | '%' | '<' | '>' | '!' ->
              emit (OP (String.make 1 c)) l0 c0;
              advance ()
            | _ ->
              raise (Error (Printf.sprintf "unexpected character %C" c, l0, c0))))
    end
  done;
  emit EOF !line !col;
  List.rev !toks
