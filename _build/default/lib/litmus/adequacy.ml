(** Empirical validation of the adequacy theorem (Thm 6.2, E5).

    Adequacy states: if σ_tgt ⊑w σ_src in SEQ (and σ_src is deterministic,
    which WHILE programs are by construction), then for {e any} concurrent
    context, the target contextually refines the source in PS_na.  We
    cannot quantify over all contexts, but we can falsify: for every corpus
    transformation and every context in the library, a SEQ-accepted
    transformation must PS_na-refine.  A single SEQ-accepts/PS_na-refutes
    pair would be a counterexample to the implementation (or the
    theorem). *)

open Lang
module M = Promising.Machine

type row = {
  tr : Catalog.transformation;
  seq_simple : bool;
  seq_advanced : bool;
  contexts : (string * bool * bool) list;
      (** context name, PS_na refines, exploration complete *)
}

(** Does the adequacy implication hold on this row? *)
let row_ok (r : row) =
  (not r.seq_advanced) || List.for_all (fun (_, refines, _) -> refines) r.contexts

let check_transformation ?(params = Promising.Thread.default_params)
    ?(contexts = Catalog.contexts) (tr : Catalog.transformation) : row =
  let src = Parser.stmt_of_string tr.Catalog.src in
  let tgt = Parser.stmt_of_string tr.Catalog.tgt in
  let d = Domain.of_stmts ~values:params.Promising.Thread.values [ src; tgt ] in
  let seq_simple = Seq_model.Refine.check d ~src ~tgt in
  let seq_advanced =
    if seq_simple then true (* Prop 3.4 *)
    else Seq_model.Advanced.check d ~src ~tgt
  in
  let contexts =
    List.map
      (fun (name, ctx_src) ->
        let ctx_threads = Parser.threads_of_string ctx_src in
        (* a ⊥ behavior of the source matches everything, so the source
           exploration may stop at the first ⊥ and skip the target *)
        let rs = M.explore ~params ~until_bot:true (src :: ctx_threads) in
        if M.Behavior_set.mem M.Bot rs.M.behaviors then (name, true, true)
        else
          let rt = M.explore ~params (tgt :: ctx_threads) in
          ( name,
            M.refines ~src:rs.M.behaviors ~tgt:rt.M.behaviors,
            (not rs.M.truncated) && not rt.M.truncated ))
      contexts
  in
  { tr; seq_simple; seq_advanced; contexts }

(** Run the experiment over (a sublist of) the corpus. *)
let run ?params ?contexts ?(corpus = Catalog.transformations) () : row list =
  List.map (check_transformation ?params ?contexts) corpus
