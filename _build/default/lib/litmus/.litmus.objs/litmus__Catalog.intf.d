lib/litmus/catalog.mli:
