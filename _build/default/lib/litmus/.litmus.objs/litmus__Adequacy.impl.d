lib/litmus/adequacy.ml: Catalog Domain Lang List Parser Promising Seq_model
