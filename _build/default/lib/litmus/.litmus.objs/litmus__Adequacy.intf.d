lib/litmus/adequacy.mli: Catalog Promising
