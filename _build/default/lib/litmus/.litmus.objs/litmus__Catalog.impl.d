lib/litmus/catalog.ml: Lang List
