(** The paper's examples as a machine-readable corpus.

    Conventions: [X], [W] are non-atomic locations; [Y], [Z] atomic;
    [a]..[d] registers.  Transformation snippets end with an observer
    [return] so register results are behaviors. *)

type verdict = Sound | Unsound

val verdict_to_string : verdict -> string

type transformation = {
  name : string;
  paper_ref : string;  (** example / section number in the paper *)
  src : string;
  tgt : string;
  simple : verdict;  (** expected under simple refinement (Def 2.4) *)
  advanced : verdict;  (** expected under advanced refinement (Def 3.3) *)
}

val transformations : transformation list
val find_transformation : string -> transformation option

(** Concurrent litmus programs (for E4). *)
type concurrent = {
  cname : string;
  cref : string;
  threads : string;  (** [|||]-separated program text *)
}

val concurrent_programs : concurrent list

(** Concurrent contexts for the adequacy experiment (E5), following the
    corpus location conventions. *)
val contexts : (string * string) list
