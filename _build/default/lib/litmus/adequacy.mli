(** Empirical validation of the adequacy theorem (Thm 6.2, experiment E5):
    every SEQ-(weakly-)validated transformation must contextually refine in
    PS_na for every context in the library; a single
    SEQ-accepts/PS_na-refutes pair would be a counterexample. *)

type row = {
  tr : Catalog.transformation;
  seq_simple : bool;
  seq_advanced : bool;
  contexts : (string * bool * bool) list;
      (** context name, PS_na refines, exploration complete *)
}

(** Does the adequacy implication hold on this row? *)
val row_ok : row -> bool

val check_transformation :
  ?params:Promising.Thread.params ->
  ?contexts:(string * string) list ->
  Catalog.transformation ->
  row

val run :
  ?params:Promising.Thread.params ->
  ?contexts:(string * string) list ->
  ?corpus:Catalog.transformation list ->
  unit ->
  row list
