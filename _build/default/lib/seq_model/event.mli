(** SEQ trace labels (Fig 1) and the [⊑] relation on labels (Def 2.3).

    Acquire/release events record the permission sets before/after, the
    written-locations set, and a memory fragment.  Fences are
    acquire/release events without a location; an RMW is an acquire event
    immediately followed by a release event (both from one atomic move). *)

open Lang

type acq_kind =
  | Acq_read of Loc.t * Value.t
  | Acq_fence
  | Acq_fence_sc  (** acquire half of an SC fence *)
  | Acq_update of Loc.t * Value.t  (** acquire half of an RMW: read value *)

type rel_kind =
  | Rel_write of Loc.t * Value.t
  | Rel_fence
  | Rel_fence_sc  (** release half of an SC fence *)
  | Rel_update of Loc.t * Value.t  (** release half of an RMW: new value *)

type acq = {
  akind : acq_kind;
  apre : Loc.Set.t;  (** P before *)
  apost : Loc.Set.t;  (** P' after, P ⊆ P' *)
  awritten : Loc.Set.t;  (** F at the transition *)
  agained : Value.t Loc.Map.t;  (** V : P'∖P → Val, gained values *)
}

type rel = {
  rkind : rel_kind;
  rpre : Loc.Set.t;  (** P before *)
  rpost : Loc.Set.t;  (** P' after, P' ⊆ P *)
  rwritten : Loc.Set.t;  (** F at the transition (reset afterwards) *)
  rreleased : Value.t Loc.Map.t;  (** V = M|P, the released memory *)
}

type t =
  | Choose of Value.t
  | Rlx_read of Loc.t * Value.t
  | Rlx_write of Loc.t * Value.t
  | Acq of acq
  | Rel of rel
  | Out of Value.t  (** system call (print) *)

val compare : t -> t -> int
val equal : t -> t -> bool
val compare_kinds_a : acq_kind -> acq_kind -> int
val compare_kinds_r : rel_kind -> rel_kind -> int

val is_acquire : t -> bool
val is_release : t -> bool

(** [le e_tgt e_src] is [e_tgt ⊑ e_src] (Def 2.3(1)). *)
val le : t -> t -> bool

(** Pointwise [⊑] on same-length traces (Def 2.3(2)). *)
val trace_le : t list -> t list -> bool

(** Stripped labels [|e|] — what oracles observe (§3): acquire labels drop
    F; release labels drop F and V. *)
type stripped =
  | S_choose of Value.t
  | S_rlx_read of Loc.t * Value.t
  | S_rlx_write of Loc.t * Value.t
  | S_acq of acq_kind * Loc.Set.t * Loc.Set.t * Value.t Loc.Map.t
  | S_rel of rel_kind * Loc.Set.t * Loc.Set.t
  | S_out of Value.t

val strip : t -> stripped

val pp : Format.formatter -> t -> unit
val pp_trace : Format.formatter -> t list -> unit
