lib/seq_model/config.ml: Domain Event Fmt Lang List Loc Mode Prog Set Stmt Value
