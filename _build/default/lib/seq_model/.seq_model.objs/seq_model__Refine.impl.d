lib/seq_model/refine.ml: Config Domain Event Fmt Lang List Loc Map Mode Prog Stmt Value
