lib/seq_model/oracle.ml: Behavior Config Domain Event Lang Loc Value
