lib/seq_model/oracle.mli: Behavior Config Domain Event Lang Loc Value
