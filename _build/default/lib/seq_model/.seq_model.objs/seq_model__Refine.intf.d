lib/seq_model/refine.mli: Config Domain Event Format Lang Prog Stmt
