lib/seq_model/advanced.mli: Config Domain Lang Loc Stmt
