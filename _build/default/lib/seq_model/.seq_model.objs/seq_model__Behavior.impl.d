lib/seq_model/behavior.ml: Config Domain Event Fmt Lang List Loc Seq Set Stdlib Value
