lib/seq_model/advanced.ml: Config Domain Event Lang List Loc Map Mode Prog Set Stmt Value
