lib/seq_model/event.ml: Fmt Int Lang List Loc Value
