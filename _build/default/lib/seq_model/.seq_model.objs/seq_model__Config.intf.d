lib/seq_model/config.mli: Domain Event Format Lang Loc Prog Stmt Value
