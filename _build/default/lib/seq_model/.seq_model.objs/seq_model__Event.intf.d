lib/seq_model/event.mli: Format Lang Loc Value
