lib/seq_model/behavior.mli: Config Domain Event Format Lang Loc Set Stdlib Value
