(** SEQ trace labels (Fig 1) and the [⊑] relation on labels (Def 2.3).

    Acquire and release events record the permission sets before/after the
    transition, the written-locations set, and a memory fragment — exactly
    the annotations Fig 1 puts on [Racq]/[Wrel] transitions.  Fences
    (covered by the paper's Coq development, elided in the paper text) are
    represented as acquire/release events without a location; an
    acquire-release RMW is emitted as an acquire event immediately followed
    by a release event. *)

open Lang

type acq_kind =
  | Acq_read of Loc.t * Value.t
  | Acq_fence
  | Acq_fence_sc  (** acquire half of an SC fence *)
  | Acq_update of Loc.t * Value.t  (** acquire half of an RMW, read value *)

type rel_kind =
  | Rel_write of Loc.t * Value.t
  | Rel_fence
  | Rel_fence_sc  (** release half of an SC fence *)
  | Rel_update of Loc.t * Value.t  (** release half of an RMW, written value *)

type acq = {
  akind : acq_kind;
  apre : Loc.Set.t;   (** permission set [P] before *)
  apost : Loc.Set.t;  (** permission set [P'] after, [P ⊆ P'] *)
  awritten : Loc.Set.t;  (** written-locations set [F] at the transition *)
  agained : Value.t Loc.Map.t;
      (** [V : P'∖P → Val], environment-provided values for gained
          locations *)
}

type rel = {
  rkind : rel_kind;
  rpre : Loc.Set.t;   (** [P] before *)
  rpost : Loc.Set.t;  (** [P'] after, [P' ⊆ P] *)
  rwritten : Loc.Set.t;  (** [F] at the transition (reset to ∅ after) *)
  rreleased : Value.t Loc.Map.t;  (** [V = M|P], the released memory *)
}

type t =
  | Choose of Value.t
  | Rlx_read of Loc.t * Value.t
  | Rlx_write of Loc.t * Value.t
  | Acq of acq
  | Rel of rel
  | Out of Value.t  (** system call (print) *)

(* --- total order, for sets/dedup --- *)

let compare_kinds_a a b =
  match a, b with
  | Acq_read (x, v), Acq_read (y, w) ->
    let c = Loc.compare x y in
    if c <> 0 then c else Value.compare v w
  | Acq_read _, _ -> -1
  | _, Acq_read _ -> 1
  | Acq_fence, Acq_fence -> 0
  | Acq_fence, _ -> -1
  | _, Acq_fence -> 1
  | Acq_fence_sc, Acq_fence_sc -> 0
  | Acq_fence_sc, _ -> -1
  | _, Acq_fence_sc -> 1
  | Acq_update (x, v), Acq_update (y, w) ->
    let c = Loc.compare x y in
    if c <> 0 then c else Value.compare v w

let compare_kinds_r a b =
  match a, b with
  | Rel_write (x, v), Rel_write (y, w) ->
    let c = Loc.compare x y in
    if c <> 0 then c else Value.compare v w
  | Rel_write _, _ -> -1
  | _, Rel_write _ -> 1
  | Rel_fence, Rel_fence -> 0
  | Rel_fence, _ -> -1
  | _, Rel_fence -> 1
  | Rel_fence_sc, Rel_fence_sc -> 0
  | Rel_fence_sc, _ -> -1
  | _, Rel_fence_sc -> 1
  | Rel_update (x, v), Rel_update (y, w) ->
    let c = Loc.compare x y in
    if c <> 0 then c else Value.compare v w

let compare_acq a b =
  let c = compare_kinds_a a.akind b.akind in
  if c <> 0 then c
  else
    let c = Loc.Set.compare a.apre b.apre in
    if c <> 0 then c
    else
      let c = Loc.Set.compare a.apost b.apost in
      if c <> 0 then c
      else
        let c = Loc.Set.compare a.awritten b.awritten in
        if c <> 0 then c
        else Loc.Map.compare Value.compare a.agained b.agained

let compare_rel a b =
  let c = compare_kinds_r a.rkind b.rkind in
  if c <> 0 then c
  else
    let c = Loc.Set.compare a.rpre b.rpre in
    if c <> 0 then c
    else
      let c = Loc.Set.compare a.rpost b.rpost in
      if c <> 0 then c
      else
        let c = Loc.Set.compare a.rwritten b.rwritten in
        if c <> 0 then c
        else Loc.Map.compare Value.compare a.rreleased b.rreleased

let rank = function
  | Choose _ -> 0
  | Rlx_read _ -> 1
  | Rlx_write _ -> 2
  | Acq _ -> 3
  | Rel _ -> 4
  | Out _ -> 5

let compare e1 e2 =
  match e1, e2 with
  | Choose a, Choose b -> Value.compare a b
  | Rlx_read (x, v), Rlx_read (y, w) | Rlx_write (x, v), Rlx_write (y, w) ->
    let c = Loc.compare x y in
    if c <> 0 then c else Value.compare v w
  | Acq a, Acq b -> compare_acq a b
  | Rel a, Rel b -> compare_rel a b
  | Out a, Out b -> Value.compare a b
  | _ -> Int.compare (rank e1) (rank e2)

let equal a b = compare a b = 0

let is_acquire = function Acq _ -> true | Choose _ | Rlx_read _ | Rlx_write _ | Rel _ | Out _ -> false
let is_release = function Rel _ -> true | Choose _ | Rlx_read _ | Rlx_write _ | Acq _ | Out _ -> false

(* --- the ⊑ relation on labels (Def 2.3) --- *)

let map_le m1 m2 =
  (* pointwise v1 ⊑ v2 on an equal domain *)
  Loc.Map.cardinal m1 = Loc.Map.cardinal m2
  && Loc.Map.for_all
       (fun x v1 ->
         match Loc.Map.find_opt x m2 with
         | Some v2 -> Value.le v1 v2
         | None -> false)
       m1

(* e_tgt ⊑ e_src *)
let le (etgt : t) (esrc : t) : bool =
  match etgt, esrc with
  | Choose a, Choose b -> Value.equal a b
  | Rlx_read (x, v), Rlx_read (y, w) -> Loc.equal x y && Value.equal v w
  | Rlx_write (x, v), Rlx_write (y, w) -> Loc.equal x y && Value.le v w
  | Out a, Out b -> Value.le a b
  | Acq a, Acq b ->
    compare_kinds_a a.akind b.akind = 0
    && Loc.Set.equal a.apre b.apre
    && Loc.Set.equal a.apost b.apost
    && Loc.Set.subset a.awritten b.awritten
    && Loc.Map.equal Value.equal a.agained b.agained
  | Rel a, Rel b ->
    (match a.rkind, b.rkind with
     | Rel_write (x, v), Rel_write (y, w) | Rel_update (x, v), Rel_update (y, w)
       -> Loc.equal x y && Value.le v w
     | Rel_fence, Rel_fence | Rel_fence_sc, Rel_fence_sc -> true
     | (Rel_write _ | Rel_fence | Rel_fence_sc | Rel_update _), _ -> false)
    && Loc.Set.equal a.rpre b.rpre
    && Loc.Set.equal a.rpost b.rpost
    && Loc.Set.subset a.rwritten b.rwritten
    && map_le a.rreleased b.rreleased
  | (Choose _ | Rlx_read _ | Rlx_write _ | Acq _ | Rel _ | Out _), _ -> false

let trace_le trtgt trsrc =
  List.length trtgt = List.length trsrc && List.for_all2 le trtgt trsrc

(* --- stripped labels |e| (for oracles, §3) --- *)

type stripped =
  | S_choose of Value.t
  | S_rlx_read of Loc.t * Value.t
  | S_rlx_write of Loc.t * Value.t
  | S_acq of acq_kind * Loc.Set.t * Loc.Set.t * Value.t Loc.Map.t
  | S_rel of rel_kind * Loc.Set.t * Loc.Set.t
  | S_out of Value.t

let strip = function
  | Choose v -> S_choose v
  | Rlx_read (x, v) -> S_rlx_read (x, v)
  | Rlx_write (x, v) -> S_rlx_write (x, v)
  | Acq a -> S_acq (a.akind, a.apre, a.apost, a.agained)
  | Rel r -> S_rel (r.rkind, r.rpre, r.rpost)
  | Out v -> S_out v

(* --- pretty-printing --- *)

let pp_akind ppf = function
  | Acq_read (x, v) -> Fmt.pf ppf "R^acq(%a,%a)" Loc.pp x Value.pp v
  | Acq_fence -> Fmt.string ppf "F^acq"
  | Acq_fence_sc -> Fmt.string ppf "F^sc-acq"
  | Acq_update (x, v) -> Fmt.pf ppf "U^acq(%a,%a)" Loc.pp x Value.pp v

let pp_rkind ppf = function
  | Rel_write (x, v) -> Fmt.pf ppf "W^rel(%a,%a)" Loc.pp x Value.pp v
  | Rel_fence -> Fmt.string ppf "F^rel"
  | Rel_fence_sc -> Fmt.string ppf "F^sc-rel"
  | Rel_update (x, v) -> Fmt.pf ppf "U^rel(%a,%a)" Loc.pp x Value.pp v

let pp ppf = function
  | Choose v -> Fmt.pf ppf "choose(%a)" Value.pp v
  | Rlx_read (x, v) -> Fmt.pf ppf "R^rlx(%a,%a)" Loc.pp x Value.pp v
  | Rlx_write (x, v) -> Fmt.pf ppf "W^rlx(%a,%a)" Loc.pp x Value.pp v
  | Acq a ->
    Fmt.pf ppf "%a[P:%a→%a,F:%a,V:%a]" pp_akind a.akind Loc.Set.pp a.apre
      Loc.Set.pp a.apost Loc.Set.pp a.awritten (Loc.Map.pp Value.pp) a.agained
  | Rel r ->
    Fmt.pf ppf "%a[P:%a→%a,F:%a,V:%a]" pp_rkind r.rkind Loc.Set.pp r.rpre
      Loc.Set.pp r.rpost Loc.Set.pp r.rwritten (Loc.Map.pp Value.pp) r.rreleased
  | Out v -> Fmt.pf ppf "out(%a)" Value.pp v

let pp_trace ppf tr = Fmt.(list ~sep:(any "·") pp) ppf tr
