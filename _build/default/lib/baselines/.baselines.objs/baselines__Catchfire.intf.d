lib/baselines/catchfire.mli: Lang Sc Stmt Value
