lib/baselines/vclock.mli: Format
