lib/baselines/sc.ml: Array Fmt Hashtbl Lang List Loc Mode Prog Promising Queue Stmt Value Vclock
