lib/baselines/catchfire.ml: Lang Promising Sc Stmt
