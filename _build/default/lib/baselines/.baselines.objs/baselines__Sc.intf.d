lib/baselines/sc.mli: Lang Loc Promising Stmt Value
