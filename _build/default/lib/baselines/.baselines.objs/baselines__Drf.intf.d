lib/baselines/drf.mli: Lang Loc Promising Stmt
