lib/baselines/drf.ml: Lang Loc Promising Sc Stmt
