(** The catch-fire baseline: C/C++11-style semantics where any data race is
    undefined behavior (§1).

    The paper's key departure from prior work (and from C/C++11) is that
    PS_na does {e not} catch fire on write-read races — racy reads return
    [undef] — which is what makes (irrelevant) load introduction sound.
    This module gives the comparison point: behaviors are the SC behaviors,
    except that if {e any} interleaving races, the program has UB (the
    standard "DRF or catch fire" reading). *)

open Lang

type result = {
  behaviors : Sc.Behavior_set.t;
  catches_fire : bool;
}

let explore ?values ?max_states (progs : Stmt.t list) : result =
  let r = Sc.explore ?values ?max_states progs in
  if r.Sc.races then
    { behaviors = Sc.Behavior_set.add Sc.Bot r.Sc.behaviors; catches_fire = true }
  else { behaviors = r.Sc.behaviors; catches_fire = false }

(** Contextual refinement under catch-fire: every target behavior must be
    matched (⊥ in the source matches everything).  Load introduction fails
    this when the introduced load races in the target while the source is
    race-free. *)
let refines ~(src : result) ~(tgt : result) : bool =
  Promising.Machine.refines ~src:src.behaviors ~tgt:tgt.behaviors
