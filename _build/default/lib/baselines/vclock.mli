(** Vector clocks for happens-before race detection in the SC baseline. *)

type t = int array  (** index = thread id *)

val make : int -> t

(** Initial clock of a thread: its own component starts at 1 so that its
    accesses are unordered with other threads' initial clocks. *)
val init_thread : int -> int -> t

val copy : t -> t
val tick : t -> int -> t
val join : t -> t -> t

(** epoch (tid, clock) ≤ vector clock *)
val epoch_le : int * int -> t -> bool

val le : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
