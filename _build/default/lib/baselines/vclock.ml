(** Vector clocks for happens-before race detection in the SC baseline. *)

type t = int array  (* index = thread id *)

let make n = Array.make n 0

(** Initial clock of thread [tid]: its own component starts at 1 so that
    its accesses are unordered with other threads' initial clocks (epochs
    at 0 would be vacuously ordered). *)
let init_thread n tid =
  let c = Array.make n 0 in
  c.(tid) <- 1;
  c

let copy = Array.copy

let tick (c : t) (tid : int) =
  let c = copy c in
  c.(tid) <- c.(tid) + 1;
  c

let join (a : t) (b : t) : t = Array.mapi (fun i x -> max x b.(i)) a

(** epoch (tid, clock) ≤ vector clock *)
let epoch_le ((tid, clk) : int * int) (c : t) = clk <= c.(tid)

let le (a : t) (b : t) =
  let ok = ref true in
  Array.iteri (fun i x -> if x > b.(i) then ok := false) a;
  !ok

let compare (a : t) (b : t) = Stdlib.compare a b

let pp ppf (c : t) =
  Fmt.pf ppf "⟨%a⟩" Fmt.(array ~sep:comma int) c
