(** Data-race-freedom guarantee experiments (E7; §5 "Results", following
    the DRF theorems the paper ports from Cho et al. [8]), checked
    empirically by comparing the full PS_na, promise-free, and SC behavior
    sets. *)

open Lang
module M = Promising.Machine

type report = {
  pf_race_free : bool;
      (** no race involving a rlx-or-weaker access in any promise-free
          execution (the DRF-PF premise) *)
  sc_race_free : bool;
      (** no conflicting unordered pair at all under SC (the DRF-SC
          premise; no access in the fragment is an SC atomic) *)
  lock_race_free : bool;
      (** conflicting unordered pairs confined to the designated lock
          locations (the DRF-LOCK premise) *)
  drf_pf_holds : bool;  (** premise ⟹ full = promise-free behaviors *)
  drf_sc_holds : bool;  (** premise ⟹ full = SC behaviors *)
  drf_lock_holds : bool;  (** premise ⟹ full = SC behaviors *)
  full : M.Behavior_set.t;
  promise_free : M.Behavior_set.t;
  sc : M.Behavior_set.t;
}

val check :
  ?params:Promising.Thread.params -> ?lock_locs:Loc.Set.t -> Stmt.t list ->
  report
