(** Sequentially consistent interleaving baseline with happens-before data
    race detection (vector clocks); used by the catch-fire comparison (E6)
    and the DRF experiments (E7). *)

open Lang

type behavior = Promising.Machine.behavior =
  | Ret of (Value.t * Value.t list) list
  | Bot

module Behavior_set = Promising.Machine.Behavior_set

type result = {
  behaviors : Behavior_set.t;
  races : bool;
      (** some interleaving has a data race (conflicting unordered pair
          with at least one non-atomic access) *)
  strict_races : bool;
      (** some interleaving has a conflicting unordered pair of any access
          modes (the DRF-SC premise — nothing in the fragment is an SC
          atomic) *)
  strict_race_locs : Loc.Set.t;
      (** locations of such pairs (the DRF-LOCK premise) *)
  truncated : bool;
  states : int;
}

(** Exhaustive interleaving exploration under SC. *)
val explore : ?values:Value.t list -> ?max_states:int -> Stmt.t list -> result
