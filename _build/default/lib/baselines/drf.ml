(** Data-race-freedom guarantee experiments (E7; §5 "Results", following
    the DRF theorems of Cho et al. [8] that the paper ports to PS_na).

    - DRF-PF (promise-free): if no execution of the {e promise-free}
      machine has a race, then the full PS_na behaviors coincide with the
      promise-free behaviors.
    - DRF-SC (lock/RA-style): a program whose SC executions are race-free
      has exactly its SC behaviors under PS_na.

    These are checked empirically on given programs by running the three
    explorers and comparing behavior sets. *)

open Lang
module M = Promising.Machine

type report = {
  pf_race_free : bool;
      (** no race involving a rlx-or-weaker access in any promise-free
          execution (the DRF-PF premise) *)
  sc_race_free : bool;
      (** no conflicting unordered pair at all in any SC interleaving (the
          DRF-SC premise; no access in the fragment is an SC atomic) *)
  lock_race_free : bool;
      (** conflicting unordered pairs confined to the designated lock
          locations (the DRF-LOCK premise) *)
  drf_pf_holds : bool;  (** pf race-free ⟹ full = promise-free behaviors *)
  drf_sc_holds : bool;  (** sc race-free ⟹ full = SC behaviors *)
  drf_lock_holds : bool;  (** lock race-free ⟹ full = SC behaviors *)
  full : M.Behavior_set.t;
  promise_free : M.Behavior_set.t;
  sc : M.Behavior_set.t;
}

let check ?(params = Promising.Thread.default_params)
    ?(lock_locs = Loc.Set.empty) (progs : Stmt.t list) : report =
  let full = M.explore ~params progs in
  let pf =
    M.explore ~params:{ params with Promising.Thread.promise_budget = 0 } progs
  in
  let sc = Sc.explore ~values:params.Promising.Thread.values progs in
  let pf_race_free = not pf.M.weak_races in
  let sc_race_free = not sc.Sc.strict_races in
  let lock_race_free = Loc.Set.subset sc.Sc.strict_race_locs lock_locs in
  let same_as_sc = M.Behavior_set.equal full.M.behaviors sc.Sc.behaviors in
  let drf_pf_holds =
    (not pf_race_free) || M.Behavior_set.equal full.M.behaviors pf.M.behaviors
  in
  let drf_sc_holds = (not sc_race_free) || same_as_sc in
  let drf_lock_holds = (not lock_race_free) || same_as_sc in
  {
    pf_race_free;
    sc_race_free;
    lock_race_free;
    drf_pf_holds;
    drf_sc_holds;
    drf_lock_holds;
    full = full.M.behaviors;
    promise_free = pf.M.behaviors;
    sc = sc.Sc.behaviors;
  }
