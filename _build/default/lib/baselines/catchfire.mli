(** The catch-fire baseline: C/C++11-style "data race ⇒ UB" semantics
    (§1).  PS_na's departure from this — racy reads return [undef] — is
    what makes load introduction sound; this module is the comparison
    point for experiment E6. *)

open Lang

type result = {
  behaviors : Sc.Behavior_set.t;  (** SC behaviors, plus ⊥ if racy *)
  catches_fire : bool;  (** some interleaving has a data race *)
}

val explore : ?values:Value.t list -> ?max_states:int -> Stmt.t list -> result

(** Contextual refinement under catch-fire (⊥ in the source matches
    everything). *)
val refines : src:result -> tgt:result -> bool
