lib/promising/time.mli: Format
