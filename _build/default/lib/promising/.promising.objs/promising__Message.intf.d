lib/promising/message.mli: Format Lang Loc Time Value View
