lib/promising/machine.ml: Buffer Fmt Hashtbl Lang List Loc Map Memory Message Mode Option Printf Prog Queue Set Stmt Thread Time Tview Value View
