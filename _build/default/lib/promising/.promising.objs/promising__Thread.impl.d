lib/promising/thread.ml: Fmt Int Lang List Loc Memory Message Mode Option Prog Stmt Time Tview Value View
