lib/promising/memory.ml: Fmt Lang List Loc Message Time Value View
