lib/promising/machine.mli: Format Hashtbl Lang Memory Set Stmt Thread Value
