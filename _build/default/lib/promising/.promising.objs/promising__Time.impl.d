lib/promising/time.ml: Fmt Stdlib
