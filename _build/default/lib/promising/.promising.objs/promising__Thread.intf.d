lib/promising/thread.mli: Format Lang Loc Memory Message Prog Stmt Tview Value View
