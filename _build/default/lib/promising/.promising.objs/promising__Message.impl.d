lib/promising/message.ml: Bool Fmt Lang Loc Time Value View
