lib/promising/view.mli: Format Lang Loc Time
