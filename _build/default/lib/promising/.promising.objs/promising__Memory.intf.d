lib/promising/memory.mli: Format Lang Loc Message Time View
