lib/promising/tview.ml: Fmt View
