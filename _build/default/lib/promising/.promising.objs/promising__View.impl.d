lib/promising/view.ml: Lang Loc Time
