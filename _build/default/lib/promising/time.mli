(** Timestamps: non-negative exact rationals (Time ≜ {0} ∪ ℚ⁺, §5). *)

type t = private { num : int; den : int }

val make : int -> int -> t
val zero : t
val one : t
val of_int : int -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val lt : t -> t -> bool
val le : t -> t -> bool
val max : t -> t -> t

(** Strictly between [a] and [b] (requires [a < b]). *)
val between : t -> t -> t

(** Strictly above [a]. *)
val above : t -> t

val pp : Format.formatter -> t -> unit
