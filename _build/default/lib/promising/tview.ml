(** Thread view triples, PS2-style (Lee et al. 2020), extending the
    paper's single-view fragment so that fences can be given their real
    semantics:

    - [cur]: the current view — constrains reads/writes and is what the
      race-helper judges against;
    - [acq]: the acquire view — additionally accumulates the views of
      messages read by relaxed reads; an acquire {e fence} promotes it
      into [cur];
    - [rel]: the fence-release view — published by a release {e fence};
      subsequent relaxed writes carry it, giving them release-write force
      (C11's fence synchronisation).

    Per-location release views (release sequences) are not modelled; see
    DESIGN.md. *)

type t = {
  cur : View.t;
  acq : View.t;
  rel : View.t;
}

(* Invariant: rel ⊑ cur ⊑ acq. *)

let bot = { cur = View.bot; acq = View.bot; rel = View.bot }

let compare a b =
  let c = View.compare a.cur b.cur in
  if c <> 0 then c
  else
    let c = View.compare a.acq b.acq in
    if c <> 0 then c else View.compare a.rel b.rel

let equal a b = compare a b = 0

(* --- effects of the thread steps --- *)

(** A read of [x] at timestamp [t] whose message carries [mview].
    [sync] joins the message view into [cur] (acquire reads);
    [track] joins it into [acq] (all atomic reads, for later acquire
    fences) — non-atomic reads track nothing. *)
let read x t ~mview ~sync ~track (v : t) : t =
  let pt = View.singleton x t in
  let cur = View.join v.cur pt in
  let cur = if sync then View.join cur mview else cur in
  let acq = View.join v.acq pt in
  let acq = if track then View.join acq mview else acq in
  let acq = View.join acq cur in
  { v with cur; acq }

(** A write of [x] at timestamp [t]. *)
let write x t (v : t) : t =
  let pt = View.singleton x t in
  { v with cur = View.join v.cur pt; acq = View.join v.acq pt }

(** Acquire fence: promote the acquire view. *)
let acq_fence (v : t) : t = { v with cur = v.acq }

(** Release fence: publish the current view. *)
let rel_fence (v : t) : t = { v with rel = v.cur }

(** Degenerate triple for fence-free programs: the acq/rel components can
    never be observed, so collapsing them restores the single-view state
    space of the paper's fragment. *)
let collapse (v : t) : t = { cur = v.cur; acq = v.cur; rel = View.bot }

let pp ppf v =
  Fmt.pf ppf "cur=%a acq=%a rel=%a" View.pp v.cur View.pp v.acq View.pp v.rel
