(** Thread views: [Loc → Time], with the bottom view represented by the
    empty map (every location at timestamp 0, which is below every message
    — equivalent to the paper's distinguished ⊥ since timestamps are
    non-negative). *)

open Lang

type t = Time.t Loc.Map.t

let bot : t = Loc.Map.empty

let find x (v : t) = Loc.Map.find_default ~default:Time.zero x v

let is_bot (v : t) = Loc.Map.for_all (fun _ t -> Time.equal t Time.zero) v

let set x t (v : t) : t =
  if Time.equal t Time.zero then Loc.Map.remove x v else Loc.Map.add x t v

let singleton x t : t = set x t bot

let join (a : t) (b : t) : t =
  Loc.Map.union (fun _ t1 t2 -> Some (Time.max t1 t2)) a b

let le (a : t) (b : t) =
  Loc.Map.for_all (fun x t -> Time.le t (find x b)) a

let compare (a : t) (b : t) =
  (* compare canonically: zero entries never stored *)
  Loc.Map.compare Time.compare
    (Loc.Map.filter (fun _ t -> not (Time.equal t Time.zero)) a)
    (Loc.Map.filter (fun _ t -> not (Time.equal t Time.zero)) b)

let equal a b = compare a b = 0

let pp ppf (v : t) = Loc.Map.pp Time.pp ppf v
