(** PS_na memory: per location, the timestamp-sorted message list
    (including the initialisation message ⟨x@0, 0, ⊥⟩).

    New-message insertion enumerates canonical positions (gap midpoints,
    above-max); behaviors only depend on relative timestamp order, and
    explored states are deduplicated up to order-isomorphism, so midpoints
    lose no behaviors. *)

open Lang

type t = {
  msgs : Message.t list Loc.Map.t;  (** per location, sorted by timestamp *)
  scv : View.t;  (** the global SC view exchanged by SC fences (PS2) *)
}

val init : Loc.t list -> t

val sc_view : t -> View.t
val with_sc_view : t -> View.t -> t
val messages_at : t -> Loc.t -> Message.t list
val all_messages : t -> Message.t list
val compare : t -> t -> int

(** Canonical insertion timestamps above [floor]: [(ts, pred_ts)] pairs
    where [pred_ts] is the predecessor's timestamp.  Positions in front of
    an attached message are excluded (RMW atomicity). *)
val insert_positions : ?floor:Time.t -> t -> Loc.t -> (Time.t * Time.t) list

(** Insert a message at a non-colliding timestamp. *)
val add : t -> Message.t -> t

(** Replace a message in place (the [lower] step). *)
val replace : t -> old_m:Message.t -> new_m:Message.t -> t

(** Concrete messages of a location readable at a view timestamp. *)
val readable : t -> Loc.t -> Time.t -> Message.t list

(** The message directly following [m] in its location's timeline. *)
val successor : t -> Message.t -> Message.t option

val max_ts : t -> Loc.t -> Time.t
val pp : Format.formatter -> t -> unit
