(** Thread views [Loc → Time]; the bottom view ⊥ is represented by the
    empty map (all timestamps 0, below every message). *)

open Lang

type t = Time.t Loc.Map.t

val bot : t
val find : Loc.t -> t -> Time.t
val is_bot : t -> bool
val set : Loc.t -> Time.t -> t -> t
val singleton : Loc.t -> Time.t -> t
val join : t -> t -> t
val le : t -> t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
