(** Messages (§5, Fig 5): concrete messages ⟨x@t, v, V⟩ and valueless
    non-atomic messages x@t ∈ NAMsg used for race detection.

    [attached] encodes RMW atomicity: an attached message sits immediately
    after its predecessor in its location's timeline, and nothing may ever
    be inserted between them (the point-timestamp rendering of PS's
    "from = previous to" adjacency). *)

open Lang

type payload =
  | Concrete of { value : Value.t; view : View.t }
  | Reserved  (** NAMsg: valueless, view ⊥ *)

type t = {
  loc : Loc.t;
  ts : Time.t;
  attached : bool;
  payload : payload;
}

let view m =
  match m.payload with
  | Concrete { view; _ } -> view
  | Reserved -> View.bot

let value m =
  match m.payload with
  | Concrete { value; _ } -> Some value
  | Reserved -> None

let is_concrete m = match m.payload with Concrete _ -> true | Reserved -> false
let is_reserved m = match m.payload with Reserved -> true | Concrete _ -> false

let compare_payload p1 p2 =
  match p1, p2 with
  | Reserved, Reserved -> 0
  | Reserved, Concrete _ -> -1
  | Concrete _, Reserved -> 1
  | Concrete c1, Concrete c2 ->
    let c = Value.compare c1.value c2.value in
    if c <> 0 then c else View.compare c1.view c2.view

let compare m1 m2 =
  let c = Loc.compare m1.loc m2.loc in
  if c <> 0 then c
  else
    let c = Time.compare m1.ts m2.ts in
    if c <> 0 then c
    else
      let c = Bool.compare m1.attached m2.attached in
      if c <> 0 then c else compare_payload m1.payload m2.payload

let equal m1 m2 = compare m1 m2 = 0

let pp ppf m =
  match m.payload with
  | Concrete { value; view } ->
    Fmt.pf ppf "⟨%a@@%a%s,%a,%a⟩" Loc.pp m.loc Time.pp m.ts
      (if m.attached then "!" else "")
      Value.pp value View.pp view
  | Reserved ->
    Fmt.pf ppf "⟨%a@@%a%s⟩" Loc.pp m.loc Time.pp m.ts
      (if m.attached then "!" else "")
