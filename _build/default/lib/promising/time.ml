(** Timestamps: non-negative rationals (Time ≜ {0} ∪ ℚ⁺, §5).

    The [num] library is not available in the sealed toolchain, so this is
    a small exact-rational module over [int].  Litmus-scale explorations
    keep numerators/denominators tiny; operations normalize so overflow is
    not a practical concern. *)

type t = { num : int; den : int }  (* invariant: den > 0, gcd(|num|,den)=1 *)

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let make num den =
  assert (den <> 0);
  let s = if den < 0 then -1 else 1 in
  let num = s * num and den = s * den in
  let g = gcd (abs num) den in
  if g = 0 then { num = 0; den = 1 } else { num = num / g; den = den / g }

let zero = { num = 0; den = 1 }
let one = { num = 1; den = 1 }
let of_int n = { num = n; den = 1 }

let compare a b = Stdlib.compare (a.num * b.den) (b.num * a.den)
let equal a b = compare a b = 0
let lt a b = compare a b < 0
let le a b = compare a b <= 0
let max a b = if lt a b then b else a

(** Strictly between [a] and [b] (requires [a < b]): the midpoint. *)
let between a b =
  assert (lt a b);
  make ((a.num * b.den) + (b.num * a.den)) (2 * a.den * b.den)

(** Strictly above [a]. *)
let above a = make (a.num + a.den) a.den

let pp ppf t =
  if t.den = 1 then Fmt.int ppf t.num else Fmt.pf ppf "%d/%d" t.num t.den
