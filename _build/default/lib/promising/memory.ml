(** PS_na memory: for each location, the timestamp-sorted list of messages
    (including the initialization message ⟨x@0, 0, ⊥⟩).

    New-message insertion enumerates canonical positions: the midpoint of
    every gap between consecutive messages (unless the successor is
    attached — RMW atomicity) and a point above the maximum.  Because
    behaviors only depend on the relative order of timestamps, and explored
    states are deduplicated up to order-isomorphism, midpoints lose no
    behaviors. *)

open Lang

type t = {
  msgs : Message.t list Loc.Map.t;  (* sorted by ts, ascending *)
  scv : View.t;
      (* the global SC view [S] exchanged by SC fences (PS2-style; ⊥ when
         the program has no SC fences) *)
}

let init (locs : Loc.t list) : t =
  let msgs =
    List.fold_left
      (fun m x ->
        Loc.Map.add x
          [ {
              Message.loc = x;
              ts = Time.zero;
              attached = false;
              payload = Message.Concrete { value = Value.zero; view = View.bot };
            } ]
          m)
      Loc.Map.empty locs
  in
  { msgs; scv = View.bot }

let messages_at (mem : t) (x : Loc.t) : Message.t list =
  Loc.Map.find_default ~default:[] x mem.msgs

let all_messages (mem : t) : Message.t list =
  Loc.Map.fold (fun _ ms acc -> ms @ acc) mem.msgs []

let sc_view (mem : t) = mem.scv
let with_sc_view (mem : t) scv = { mem with scv }

let compare (a : t) (b : t) =
  let c = Loc.Map.compare (List.compare Message.compare) a.msgs b.msgs in
  if c <> 0 then c else View.compare a.scv b.scv

(** Canonical timestamps for inserting a new message at [x], optionally
    above [floor].  Returns pairs [(ts, pred_ts)] where [pred_ts] is the
    timestamp of the predecessor message (needed for attached inserts). *)
let insert_positions ?(floor = Time.zero) (mem : t) (x : Loc.t) :
    (Time.t * Time.t) list =
  let ms = messages_at mem x in
  let rec gaps = function
    | [] -> []
    | [ last ] -> [ (Time.above last.Message.ts, last.Message.ts) ]
    | m1 :: (m2 :: _ as rest) ->
      let here =
        if m2.Message.attached then []
        else [ (Time.between m1.Message.ts m2.Message.ts, m1.Message.ts) ]
      in
      here @ gaps rest
  in
  List.filter (fun (ts, _) -> Time.lt floor ts) (gaps ms)

(** Insert a message whose timestamp does not collide (caller obtained it
    from {!insert_positions}). *)
let add (mem : t) (m : Message.t) : t =
  let ms = messages_at mem m.Message.loc in
  let rec ins = function
    | [] -> [ m ]
    | m' :: rest ->
      if Time.lt m.Message.ts m'.Message.ts then m :: m' :: rest
      else m' :: ins rest
  in
  { mem with msgs = Loc.Map.add m.Message.loc (ins ms) mem.msgs }

(** Replace a message at the same (loc, ts) — the [lower] step. *)
let replace (mem : t) ~(old_m : Message.t) ~(new_m : Message.t) : t =
  assert (Loc.equal old_m.Message.loc new_m.Message.loc);
  assert (Time.equal old_m.Message.ts new_m.Message.ts);
  let ms = messages_at mem old_m.Message.loc in
  let ms =
    List.map (fun m -> if Message.equal m old_m then new_m else m) ms
  in
  { mem with msgs = Loc.Map.add old_m.Message.loc ms mem.msgs }

(** Concrete messages of [x] readable at view timestamp [t] (ts ≥ t). *)
let readable (mem : t) (x : Loc.t) (t : Time.t) : Message.t list =
  List.filter
    (fun m -> Message.is_concrete m && Time.le t m.Message.ts)
    (messages_at mem x)

(** The message directly following [m] in its location's timeline, if
    any. *)
let successor (mem : t) (m : Message.t) : Message.t option =
  let rec go = function
    | m1 :: (m2 :: _ as rest) ->
      if Time.equal m1.Message.ts m.Message.ts then Some m2
      else go rest
    | [ _ ] | [] -> None
  in
  go (messages_at mem m.Message.loc)

let max_ts (mem : t) (x : Loc.t) : Time.t =
  List.fold_left
    (fun acc m -> Time.max acc m.Message.ts)
    Time.zero (messages_at mem x)

let pp ppf (mem : t) =
  Loc.Map.iter
    (fun _ ms -> Fmt.pf ppf "@[%a@]@ " (Fmt.list ~sep:Fmt.sp Message.pp) ms)
    mem.msgs;
  if not (View.is_bot mem.scv) then Fmt.pf ppf "S=%a" View.pp mem.scv
