(** PS_na thread states and thread-configuration steps (Fig 5).

    A thread is ⟨σ, V, P⟩: program state, view, and promise set; we
    additionally record emitted outputs (system calls) and the number of
    promise steps taken (to bound exploration).

    Exploration choices that the paper leaves unbounded are made canonical
    and bounded here; see DESIGN.md:
    - new messages take gap-midpoint / above-max timestamps (complete up to
      the order-isomorphism used for state deduplication);
    - non-atomic write batches (memory: na-write) insert at most
      [batch_bound] extra messages;
    - promised messages carry view ⊥ or [x ↦ t] (what na/rlx fulfillment
      can match) and at most [promise_budget] promise steps are taken;
    - atomic updates on racy (mixed-access) locations are not enumerated. *)

open Lang

type t = {
  prog : Prog.state;
  views : Tview.t;  (* cur/acq/rel views; cur is the paper's V *)
  promises : Message.t list;  (* sorted by Message.compare *)
  outs : Value.t list;  (* outputs, most recent first *)
  promised : int;  (* promise steps taken so far *)
}

let init prog = { prog; views = Tview.bot; promises = []; outs = []; promised = 0 }

let cur th = th.views.Tview.cur

let compare a b =
  let c = Prog.compare_state a.prog b.prog in
  if c <> 0 then c
  else
    let c = Tview.compare a.views b.views in
    if c <> 0 then c
    else
      let c = List.compare Message.compare a.promises b.promises in
      if c <> 0 then c
      else
        let c = List.compare Value.compare a.outs b.outs in
        if c <> 0 then c else Int.compare a.promised b.promised

type params = {
  values : Value.t list;  (** defined values for choices/promises *)
  batch_bound : int;  (** max extra messages per non-atomic write *)
  batch_concrete : bool;
      (** also enumerate fresh {e concrete} extra messages in non-atomic
          write batches (the paper's rule allows arbitrary values; fresh
          reserved messages and promise fulfillment — the uses the paper
          motivates — are always enumerated) *)
  promise_budget : int;  (** max promise steps per thread *)
  cert_fuel : int;  (** depth bound for certification search *)
  max_states : int;  (** machine-exploration state budget *)
  track_fence_views : bool;
      (** keep the acq/rel view components; {!Machine.explore} turns this
          off for fence-free programs, where the components are inert and
          only split states *)
}

let default_params =
  {
    values = [ Value.Int 0; Value.Int 1; Value.Int 2 ];
    batch_bound = 1;
    batch_concrete = false;
    promise_budget = 1;
    cert_fuel = 24;
    max_states = 200_000;
    track_fence_views = true;
  }

let values_with_undef p = Value.Undef :: p.values

let add_promise th m =
  { th with promises = List.sort Message.compare (m :: th.promises) }

let remove_promise th m =
  { th with promises = List.filter (fun m' -> not (Message.equal m' m)) th.promises }

let has_promise th m = List.exists (Message.equal m) th.promises

(** The race-helper judgment (Fig 5): some message of [x], not our own
    promise, sits above our view — and for atomic accesses it must be a
    valueless non-atomic message. *)
let is_racy (mem : Memory.t) (th : t) (x : Loc.t) ~(atomic : bool) : bool =
  List.exists
    (fun m ->
      (not (has_promise th m))
      && Time.lt (View.find x (cur th)) m.Message.ts
      && ((not atomic) || Message.is_reserved m))
    (Memory.messages_at mem x)

(* (fail)/(racy-write) side condition: every outstanding promise is still
   above the thread's view. *)
let may_fail th =
  List.for_all
    (fun m -> Time.lt (View.find m.Message.loc (cur th)) m.Message.ts)
    th.promises

(** One thread-configuration step. [Step (th, mem, promise_like)] — the
    flag marks promise steps, which certification excludes. *)
type outcome =
  | Step of t * Memory.t * bool
  | Failure  (** the thread reaches ⟨⊥, V, ∅⟩ *)

(* All ways to put a single new/fulfilled message ⟨x@t, v, view_of t⟩ with
   t > floor; [mk_view] builds the message view from the chosen t. *)
let write_single (mem : Memory.t) (th : t) x ~floor ~mk_payload :
    (Message.t * Memory.t * t) list =
  let fresh =
    List.map
      (fun (ts, _pred) ->
        let m =
          { Message.loc = x; ts; attached = false; payload = mk_payload ts }
        in
        (m, Memory.add mem m, th))
      (Memory.insert_positions ~floor mem x)
  in
  let fulfilled =
    List.filter_map
      (fun m ->
        if
          Loc.equal m.Message.loc x
          && Time.lt floor m.Message.ts
          && Message.compare_payload m.Message.payload (mk_payload m.Message.ts)
             = 0
        then Some (m, mem, remove_promise th m)
        else None)
      th.promises
  in
  fresh @ fulfilled

(* Non-atomic write batches: up to [bound] extra ⊥-view messages (fresh
   reserved/concrete ones or fulfilled promises) strictly between the view
   and the final message. *)
let rec na_batches (p : params) (mem : Memory.t) (th : t) x ~floor ~bound :
    (Time.t * Memory.t * t) list =
  let no_extra = [ (floor, mem, th) ] in
  if bound = 0 then no_extra
  else
    let payloads =
      Message.Reserved
      ::
      (if p.batch_concrete then
         List.map
           (fun v -> Message.Concrete { value = v; view = View.bot })
           (values_with_undef p)
       else [])
    in
    let one_extra =
      List.concat_map
        (fun payload ->
          write_single mem th x ~floor ~mk_payload:(fun _ -> payload))
        payloads
      (* fulfilling reserved/⊥-view promises regardless of payload: *)
      @ List.filter_map
          (fun m ->
            if
              Loc.equal m.Message.loc x
              && Time.lt floor m.Message.ts
              && View.is_bot (Message.view m)
            then Some (m, mem, remove_promise th m)
            else None)
          th.promises
    in
    no_extra
    @ List.concat_map
        (fun (m, mem', th') ->
          na_batches p mem' th' x ~floor:m.Message.ts ~bound:(bound - 1))
        one_extra

(** All PS_na steps of a thread against the given memory. *)
let steps (p : params) (mem : Memory.t) (th : t) : outcome list =
  let normalize =
    if p.track_fence_views then fun o -> o
    else
      function
      | Step (th', mem', fl) ->
        Step ({ th' with views = Tview.collapse th'.views }, mem', fl)
      | Failure -> Failure
  in
  List.map normalize
  @@
  let ret_failure = if may_fail th then [ Failure ] else [] in
  match Prog.step th.prog with
  | Prog.Terminated _ -> []
  | Prog.Undefined -> ret_failure
  | Prog.Silent p' -> [ Step ({ th with prog = p' }, mem, false) ]
  | Prog.Do_out (v, p') ->
    [ Step ({ th with prog = p'; outs = v :: th.outs }, mem, false) ]
  | Prog.Choice f ->
    List.map (fun v -> Step ({ th with prog = f v }, mem, false)) p.values
  | Prog.Do_read (o, x, f) ->
    let atomic = Mode.read_is_atomic o in
    let normal =
      List.map
        (fun m ->
          let v = Option.get (Message.value m) in
          let views' =
            Tview.read x m.Message.ts ~mview:(Message.view m)
              ~sync:(o = Mode.Racq) ~track:atomic th.views
          in
          Step ({ th with prog = f v; views = views' }, mem, false))
        (Memory.readable mem x (View.find x (cur th)))
    in
    let racy =
      if is_racy mem th x ~atomic then
        [ Step ({ th with prog = f Value.Undef }, mem, false) ]
      else []
    in
    normal @ racy
  | Prog.Do_write (o, x, v, p') ->
    let floor = View.find x (cur th) in
    let racy =
      if is_racy mem th x ~atomic:(Mode.write_is_atomic o) then ret_failure
      else []
    in
    let normal =
      match o with
      | Mode.Wna ->
        List.concat_map
          (fun (floor', mem', th') ->
            List.map
              (fun (m, mem'', th'') ->
                let views' = Tview.write x m.Message.ts th''.views in
                Step ({ th'' with prog = p'; views = views' }, mem'', false))
              (write_single mem' th' x ~floor:floor' ~mk_payload:(fun _ ->
                   Message.Concrete { value = v; view = View.bot })))
          (na_batches p mem th x ~floor ~bound:p.batch_bound)
      | Mode.Wrlx ->
        (* after a release fence, relaxed writes carry the published view
           (C11 fence synchronisation, PS2-style) *)
        let relv = th.views.Tview.rel in
        List.map
          (fun (m, mem', th') ->
            let views' = Tview.write x m.Message.ts th'.views in
            Step ({ th' with prog = p'; views = views' }, mem', false))
          (write_single mem th x ~floor ~mk_payload:(fun ts ->
               Message.Concrete
                 { value = v; view = View.join relv (View.singleton x ts) }))
      | Mode.Wrel ->
        (* no outstanding non-⊥ promises on x *)
        let promises_ok =
          List.for_all
            (fun m ->
              (not (Loc.equal m.Message.loc x))
              || (not (Message.is_concrete m))
              || View.is_bot (Message.view m))
            th.promises
        in
        if not promises_ok then []
        else
          List.filter_map
            (fun (ts, _pred) ->
              let views' = Tview.write x ts th.views in
              let m =
                {
                  Message.loc = x;
                  ts;
                  attached = false;
                  payload =
                    Message.Concrete
                      { value = v; view = views'.Tview.cur };
                }
              in
              Some
                (Step ({ th with prog = p'; views = views' }, Memory.add mem m,
                       false)))
            (Memory.insert_positions ~floor mem x)
    in
    normal @ racy
  | Prog.Do_update (x, f) ->
    (* acquire-release RMW: read a message and write immediately after it *)
    let promises_ok =
      List.for_all
        (fun m ->
          (not (Loc.equal m.Message.loc x))
          || (not (Message.is_concrete m))
          || View.is_bot (Message.view m))
        th.promises
    in
    List.concat_map
      (fun m_r ->
        let v_read = Option.get (Message.value m_r) in
        match f v_read with
        | Prog.Upd_fault -> ret_failure
        | Prog.Upd_read_only p' ->
          let views' =
            Tview.read x m_r.Message.ts ~mview:(Message.view m_r) ~sync:true
              ~track:true th.views
          in
          [ Step ({ th with prog = p'; views = views' }, mem, false) ]
        | Prog.Upd_write (v_new, p') ->
          if not promises_ok then []
          else
            let slot =
              match Memory.successor mem m_r with
              | None -> Some (Time.above m_r.Message.ts)
              | Some m2 ->
                if m2.Message.attached then None
                else Some (Time.between m_r.Message.ts m2.Message.ts)
            in
            (match slot with
             | None -> []
             | Some ts ->
               let views' =
                 Tview.write x ts
                   (Tview.read x m_r.Message.ts ~mview:(Message.view m_r)
                      ~sync:true ~track:true th.views)
               in
               let m_w =
                 {
                   Message.loc = x;
                   ts;
                   attached = true;
                   payload =
                     Message.Concrete
                       { value = v_new; view = views'.Tview.cur };
                 }
               in
               [ Step
                   ({ th with prog = p'; views = views' }, Memory.add mem m_w,
                    false)
               ]))
      (Memory.readable mem x (View.find x (cur th)))
  | Prog.Do_fence (fm, p') ->
    (* PS2-style fences over the view triple (an extension of the paper's
       single-view fragment; its Coq development covers fences too) *)
    let promises_bot =
      List.for_all
        (fun m ->
          (not (Message.is_concrete m)) || View.is_bot (Message.view m))
        th.promises
    in
    let rel views = Tview.rel_fence views in
    let acq views = Tview.acq_fence views in
    (match fm with
     | Mode.Facq ->
       [ Step ({ th with prog = p'; views = acq th.views }, mem, false) ]
     | Mode.Frel ->
       if promises_bot then
         [ Step ({ th with prog = p'; views = rel th.views }, mem, false) ]
       else []
     | Mode.Facqrel ->
       if promises_bot then
         [ Step ({ th with prog = p'; views = rel (acq th.views) }, mem, false) ]
       else []
     | Mode.Fsc ->
       (* SC fence: synchronise with the global SC view [S] (PS2-style):
          the thread's views and S all become S ⊔ V_acq *)
       if promises_bot then
         let m = View.join (Memory.sc_view mem) th.views.Tview.acq in
         let views' = { Tview.cur = m; acq = m; rel = m } in
         [ Step
             ({ th with prog = p'; views = views' },
              Memory.with_sc_view mem m, false) ]
       else [])

(* Locations a statement may write to (any mode) — a thread can only ever
   fulfill promises on locations it writes, so promising elsewhere is
   pointless and pruned. *)
let rec writable_locs acc = function
  | Stmt.Store (_, x, _) | Stmt.Cas (_, x, _, _) | Stmt.Fadd (_, x, _) ->
    Loc.Set.add x acc
  | Stmt.Seq (a, b) | Stmt.If (_, a, b) -> writable_locs (writable_locs acc a) b
  | Stmt.While (_, a) -> writable_locs acc a
  | Stmt.Skip | Stmt.Assign _ | Stmt.Load _ | Stmt.Fence _ | Stmt.Choose _
  | Stmt.Freeze _ | Stmt.Print _ | Stmt.Abort | Stmt.Return _ -> acc

(** Promise and lower steps (kept separate so certification can exclude
    promises and exploration can bound them). *)
let promise_steps (p : params) (locs : Loc.t list) (mem : Memory.t) (th : t) :
    outcome list =
  if th.promised >= p.promise_budget then []
  else
    List.concat_map
      (fun x ->
        List.concat_map
          (fun (ts, _pred) ->
            let payloads =
              Message.Reserved
              :: List.concat_map
                   (fun v ->
                     [
                       Message.Concrete { value = v; view = View.bot };
                       Message.Concrete { value = v; view = View.singleton x ts };
                     ])
                   (values_with_undef p)
            in
            List.map
              (fun payload ->
                let m = { Message.loc = x; ts; attached = false; payload } in
                Step
                  ( add_promise { th with promised = th.promised + 1 } m,
                    Memory.add mem m,
                    true ))
              payloads)
          (Memory.insert_positions mem x))
      locs

(** The (lower) step: weaken an own promise's value to [undef] and/or its
    view to ⊥. *)
let lower_steps (mem : Memory.t) (th : t) : outcome list =
  List.concat_map
    (fun m ->
      match m.Message.payload with
      | Message.Reserved -> []
      | Message.Concrete { value; view } ->
        let variants =
          (if Value.is_undef value then []
           else [ Message.Concrete { value = Value.Undef; view } ])
          @ (if View.is_bot view then []
             else [ Message.Concrete { value; view = View.bot } ])
          @
          if Value.is_undef value || View.is_bot view then []
          else [ Message.Concrete { value = Value.Undef; view = View.bot } ]
        in
        List.map
          (fun payload ->
            let m' = { m with Message.payload } in
            let th' = add_promise (remove_promise th m) m' in
            Step (th', Memory.replace mem ~old_m:m ~new_m:m', false))
          variants)
    th.promises

let pp ppf th =
  Fmt.pf ppf "@[<v>V=%a P=[%a] outs=[%a]@ %a@]" Tview.pp th.views
    (Fmt.list ~sep:Fmt.semi Message.pp)
    th.promises
    (Fmt.list ~sep:Fmt.comma Value.pp)
    (List.rev th.outs) Prog.pp_state th.prog
