(** Messages (§5, Fig 5): concrete messages ⟨x@t, v, V⟩ and valueless
    non-atomic messages x@t ∈ NAMsg used for race detection.

    [attached] encodes RMW atomicity: an attached message sits immediately
    after its predecessor and nothing may ever be inserted between them
    (the point-timestamp rendering of PS's interval adjacency). *)

open Lang

type payload =
  | Concrete of { value : Value.t; view : View.t }
  | Reserved  (** NAMsg: valueless, view ⊥ *)

type t = {
  loc : Loc.t;
  ts : Time.t;
  attached : bool;
  payload : payload;
}

val view : t -> View.t
val value : t -> Value.t option
val is_concrete : t -> bool
val is_reserved : t -> bool
val compare_payload : payload -> payload -> int
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
