(** PS_na thread states ⟨σ, V, P⟩ and thread-configuration steps (Fig 5),
    with the exploration bounds documented in DESIGN.md. *)

open Lang

type t = {
  prog : Prog.state;
  views : Tview.t;  (** cur/acq/rel view triple; [cur] is the paper's V *)
  promises : Message.t list;  (** sorted *)
  outs : Value.t list;  (** outputs, most recent first *)
  promised : int;  (** promise steps taken so far *)
}

val init : Prog.state -> t

(** The current view (the single view of the paper's fragment). *)
val cur : t -> View.t

val compare : t -> t -> int

type params = {
  values : Value.t list;  (** defined values for choices/promises *)
  batch_bound : int;  (** max extra messages per non-atomic write *)
  batch_concrete : bool;
      (** also enumerate fresh concrete extra messages in write batches *)
  promise_budget : int;  (** max promise steps per thread *)
  cert_fuel : int;  (** depth bound for certification search *)
  max_states : int;  (** machine-exploration state budget *)
  track_fence_views : bool;
      (** keep the acq/rel view components (inert without fences) *)
}

val default_params : params

val values_with_undef : params -> Value.t list

val has_promise : t -> Message.t -> bool

(** The race-helper judgment (Fig 5): some message of [x], not our own
    promise, sits above our view — for atomic accesses it must be a
    valueless non-atomic message. *)
val is_racy : Memory.t -> t -> Loc.t -> atomic:bool -> bool

(** The (fail)/(racy-write) side condition: all promises above the view. *)
val may_fail : t -> bool

type outcome =
  | Step of t * Memory.t * bool  (** successor; flag marks promise steps *)
  | Failure  (** the thread reaches ⟨⊥, V, ∅⟩ *)

(** All non-promise PS_na steps of a thread against the given memory.
    Fences use PS2-style view-triple semantics (an extension of the
    paper's single-view fragment). *)
val steps : params -> Memory.t -> t -> outcome list

(** Locations a statement may write — a thread can only fulfill promises
    on locations it writes. *)
val writable_locs : Loc.Set.t -> Stmt.t -> Loc.Set.t

(** Promise steps at the given locations (bounded by the budget). *)
val promise_steps : params -> Loc.t list -> Memory.t -> t -> outcome list

(** The (lower) step: weaken an own promise's value to [undef] and/or its
    view to ⊥. *)
val lower_steps : Memory.t -> t -> outcome list

val pp : Format.formatter -> t -> unit
