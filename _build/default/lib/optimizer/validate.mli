(** Translation validation: per-run certification of optimizer output.

    Where the paper certifies the optimizer once and for all in Coq (via a
    simulation in SEQ), this reproduction certifies each run: the output
    must weakly behaviorally refine the input in SEQ over the finite
    domain (Def 3.3); by adequacy (Thm 6.2) this entails contextual
    refinement in PS_na. *)

open Lang

type verdict = {
  valid : bool;  (** advanced refinement (Def 3.3) holds *)
  simple : bool;  (** the stronger §2 notion (Def 2.4) also holds *)
  domain : Domain.t;  (** the finite domain the check ranged over *)
}

exception Mixed_access of Loc.t

(** Validate a transformation in SEQ. *)
val validate :
  ?values:Value.t list -> src:Stmt.t -> tgt:Stmt.t -> unit -> verdict

(** Optimize and validate the result. *)
val certified_optimize :
  ?passes:Driver.pass list ->
  ?values:Value.t list ->
  Stmt.t ->
  Driver.report * verdict
