lib/optimizer/dse.mli: Lang Loc Stmt
