lib/optimizer/cp.ml: Expr Lang Reg Stmt Value
