lib/optimizer/licm.ml: Lang List Llf Loc Mode Printf Stmt
