lib/optimizer/llf.mli: Lang Loc Reg Stmt
