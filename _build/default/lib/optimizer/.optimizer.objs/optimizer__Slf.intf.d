lib/optimizer/slf.mli: Lang Loc Stmt Value
