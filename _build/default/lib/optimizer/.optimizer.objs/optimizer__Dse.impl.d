lib/optimizer/dse.ml: Lang Loc Mode Option Stmt
