lib/optimizer/validate.ml: Domain Driver Lang Seq_model Stmt
