lib/optimizer/slf.ml: Expr Lang Loc Mode Option Stmt Value
