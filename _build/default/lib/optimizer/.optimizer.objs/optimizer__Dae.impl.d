lib/optimizer/dae.ml: Expr Lang Mode Reg Stmt
