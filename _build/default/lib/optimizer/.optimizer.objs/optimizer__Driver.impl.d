lib/optimizer/driver.ml: Cp Dae Dse Fmt Lang Licm List Llf Slf Stdlib Stmt
