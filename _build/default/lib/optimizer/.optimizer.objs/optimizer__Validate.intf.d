lib/optimizer/validate.mli: Domain Driver Lang Loc Stmt Value
