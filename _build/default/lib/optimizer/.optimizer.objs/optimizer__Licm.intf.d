lib/optimizer/licm.mli: Lang Loc Stmt
