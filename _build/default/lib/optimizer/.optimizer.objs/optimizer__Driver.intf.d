lib/optimizer/driver.mli: Format Lang Stmt
