lib/optimizer/llf.ml: Expr Lang Loc Mode Reg Stmt
