(** Translation validation: per-run certification of optimizer output.

    Where the paper certifies the optimizer once and for all in Coq by
    establishing a simulation in SEQ, we certify each {e run}: the output
    must (advanced-)behaviorally refine the input in SEQ over the finite
    domain (Def 3.3, decided by the Fig 6 simulation).  By the adequacy
    theorem (Thm 6.2) this entails contextual refinement in PS_na — and E5
    cross-checks that implication empirically. *)

open Lang

type verdict = {
  valid : bool;
  simple : bool;  (** the stronger §2 notion also holds *)
  domain : Domain.t;
}

exception Mixed_access = Seq_model.Config.Mixed_access

(** Validate a transformation in SEQ: [tgt] must weakly behaviorally
    refine [src]. *)
let validate ?(values = Domain.default_values) ~(src : Stmt.t) ~(tgt : Stmt.t)
    () : verdict =
  let d = Domain.of_stmts ~values [ src; tgt ] in
  let valid = Seq_model.Advanced.check d ~src ~tgt in
  let simple = valid && Seq_model.Refine.check d ~src ~tgt in
  { valid; simple; domain = d }

(** Optimize and validate; raises [Invalid_argument] if the optimizer
    produced an output that SEQ refuses — which would be an optimizer
    bug. *)
let certified_optimize ?passes ?values (s : Stmt.t) : Driver.report * verdict =
  let report = Driver.optimize ?passes s in
  let v = validate ?values ~src:report.Driver.input ~tgt:report.Driver.output () in
  (report, v)
