(* E5: empirical adequacy (Thm 6.2) — SEQ-validated transformations must
   contextually refine in PS_na on the context library.  The quick suite
   covers a representative slice; the full corpus × context sweep runs in
   the benchmark harness (bench/main.exe, table E5) and in the `Slow
   test. *)

module A = Litmus.Adequacy
module C = Litmus.Catalog

let quick_corpus =
  [
    "slf-basic";
    "reorder-na-rw-diff";
    "na-write-into-acq";
    "na-read-into-rel";
    "slf-across-rel-write";
    "rlx-read-then-na-write";  (* needs the advanced notion: late UB *)
    "na-write-into-rel";  (* needs commitments *)
    "dse-across-rel-write";
    "irrelevant-load-intro";  (* the load-introduction headline *)
  ]

let quick_contexts =
  List.filter
    (fun (n, _) -> List.mem n [ "idle"; "na-writer"; "rel-acq-flagger"; "acq-guarded-writer" ])
    C.contexts

let check_row (r : A.row) =
  if not (A.row_ok r) then
    let bad =
      List.filter_map
        (fun (n, ok, _) -> if ok then None else Some n)
        r.A.contexts
    in
    Alcotest.failf "adequacy violated on %s in context(s) %s" r.A.tr.C.name
      (String.concat ", " bad)

let suite =
  List.filter_map
    (fun name ->
      Option.map
        (fun tr ->
          Alcotest.test_case ("adequacy: " ^ name) `Quick (fun () ->
              check_row (A.check_transformation ~contexts:quick_contexts tr)))
        (C.find_transformation name))
    quick_corpus
  @ [
      (* the full corpus × context matrix takes minutes; run it via
         PSEQ_FULL=1 dune runtest, or through `bench/main.exe --full` *)
      Alcotest.test_case "adequacy: full corpus sweep" `Slow (fun () ->
          if Sys.getenv_opt "PSEQ_FULL" = None then
            Alcotest.skip ()
          else List.iter check_row (A.run ()));
    ]
