(* Property-based tests (QCheck, registered via QCheck_alcotest).

   The heavyweight properties are differential: the two independent
   implementations of SEQ refinement (behavior-set enumeration per
   Def 2.1/2.3 vs the simulation game) must agree; the optimizer must
   always produce SEQ-valid output; single-threaded PS_na must coincide
   with the sequential (SC) semantics. *)

open Lang

let small_cfg =
  {
    Gen.default_config with
    Gen.na_locs = [ Loc.make "X" ];
    at_locs = [ Loc.make "Y" ];
    regs = [ Reg.make "a"; Reg.make "b" ];
    values = [ 0; 1 ];
  }

let opt_cfg =
  {
    Gen.default_config with
    Gen.na_locs = [ Loc.make "X"; Loc.make "W" ];
    at_locs = [ Loc.make "Y" ];
    allow_loops = true;
  }

(* QCheck generator wrapping our seeded generator. *)
let stmt_gen (cfg : Gen.config) ~size : Stmt.t QCheck.Gen.t =
 fun rand -> Gen.gen_program cfg rand ~size

let stmt_arbitrary cfg ~size =
  QCheck.make
    ~print:(fun s -> Stmt.to_string s)
    (stmt_gen cfg ~size)

let values2 = [ Value.Int 0; Value.Int 1 ]

(* 1. Reflexivity of SEQ refinement on random programs. *)
let refine_reflexive =
  QCheck.Test.make ~name:"SEQ refinement is reflexive" ~count:40
    (stmt_arbitrary small_cfg ~size:4)
    (fun s ->
      let d = Domain.of_stmts ~values:values2 [ s ] in
      Seq_model.Refine.check d ~src:s ~tgt:s)

(* 2. Prop 3.4 on random program pairs: simple ⇒ advanced. *)
let prop_3_4 =
  QCheck.Test.make ~name:"simple refinement implies advanced (Prop 3.4)"
    ~count:25
    (QCheck.pair (stmt_arbitrary small_cfg ~size:3) (stmt_arbitrary small_cfg ~size:3))
    (fun (src, tgt) ->
      let d = Domain.of_stmts ~values:values2 [ src; tgt ] in
      (not (Seq_model.Refine.check d ~src ~tgt))
      || Seq_model.Advanced.check d ~src ~tgt)

(* 3. Differential: enumeration-based Def 2.4 agrees with the game. *)
let enum_vs_game =
  QCheck.Test.make ~name:"behavior enumeration agrees with simulation game"
    ~count:15
    (QCheck.pair (stmt_arbitrary small_cfg ~size:3) (stmt_arbitrary small_cfg ~size:3))
    (fun (src, tgt) ->
      let d = Domain.of_stmts ~values:values2 [ src; tgt ] in
      let game = Seq_model.Refine.check d ~src ~tgt in
      let enum =
        List.for_all
          (fun (p : Seq_model.Refine.pair) ->
            match
              (* generated programs are loop-free, so executions fit well
                 within the fuel *)
              Seq_model.Behavior.refines_at d ~fuel:16
                ~src:p.Seq_model.Refine.src ~tgt:p.Seq_model.Refine.tgt
            with
            | Ok () -> true
            | Error _ -> false)
          (Seq_model.Refine.initial_pairs d ~src:(Prog.init src)
             ~tgt:(Prog.init tgt))
      in
      game = enum)

(* 4. The optimizer always produces SEQ-valid output ("certified").
   Loop-free programs only: the advanced-refinement game on an unlucky
   random loop-with-acquire shape can be very large; loop validation is
   covered deterministically by the optimizer suite and the corpus. *)
let optimizer_certified =
  QCheck.Test.make ~name:"optimizer output always validates in SEQ" ~count:25
    (stmt_arbitrary { opt_cfg with Gen.allow_loops = false } ~size:6)
    (fun s ->
      let _, v = Optimizer.Validate.certified_optimize ~values:values2 s in
      v.Optimizer.Validate.valid)

(* 5. The optimizer never grows the instruction count. *)
let optimizer_shrinks =
  QCheck.Test.make ~name:"SLF/LLF/DSE never grow programs" ~count:60
    (stmt_arbitrary opt_cfg ~size:8)
    (fun s ->
      let r =
        Optimizer.Driver.optimize
          ~passes:[ Optimizer.Driver.SLF; Optimizer.Driver.LLF; Optimizer.Driver.DSE ]
          s
      in
      r.Optimizer.Driver.size_after <= r.Optimizer.Driver.size_before)

(* 6. Single-threaded PS_na coincides with the SC interleaving semantics. *)
let ps_vs_sc_sequential =
  QCheck.Test.make ~name:"single-threaded PS_na equals sequential semantics"
    ~count:15
    (stmt_arbitrary small_cfg ~size:4)
    (fun s ->
      let params =
        { Promising.Thread.default_params with values = values2; max_states = 50_000 }
      in
      let ps = Promising.Machine.explore ~params [ s ] in
      let sc = Baselines.Sc.explore ~values:values2 [ s ] in
      QCheck.assume ((not ps.Promising.Machine.truncated) && not sc.Baselines.Sc.truncated);
      Promising.Machine.Behavior_set.equal ps.Promising.Machine.behaviors
        sc.Baselines.Sc.behaviors)

(* 7. PS_na behavioral refinement is reflexive on random 2-thread programs. *)
let ps_refl =
  QCheck.Test.make ~name:"PS_na refinement is reflexive" ~count:8
    (QCheck.pair (stmt_arbitrary small_cfg ~size:3) (stmt_arbitrary small_cfg ~size:3))
    (fun (t1, t2) ->
      let params =
        { Promising.Thread.default_params with values = values2; max_states = 50_000 }
      in
      let r = Promising.Machine.explore ~params [ t1; t2 ] in
      QCheck.assume (not r.Promising.Machine.truncated);
      Promising.Machine.refines ~src:r.Promising.Machine.behaviors
        ~tgt:r.Promising.Machine.behaviors)

(* 8. Parser round-trips the pretty-printer on random programs. *)
let parse_pp_roundtrip =
  QCheck.Test.make ~name:"parse ∘ pp = id on random programs" ~count:100
    (stmt_arbitrary opt_cfg ~size:8)
    (fun s ->
      let printed = Stmt.to_string s in
      let reparsed = Parser.stmt_of_string printed in
      String.equal printed (Stmt.to_string reparsed))

let suite =
  List.map
    (QCheck_alcotest.to_alcotest ~long:false)
    [
      refine_reflexive;
      prop_3_4;
      enum_vs_game;
      optimizer_certified;
      optimizer_shrinks;
      ps_vs_sc_sequential;
      ps_refl;
      parse_pp_roundtrip;
    ]

(* 9. End-to-end optimizer differential: on single-threaded programs the
   full pipeline preserves the observable (return value + output) behavior
   set exactly, checked against the independent SC interpreter. *)
let optimizer_preserves_sequential =
  QCheck.Test.make
    ~name:"optimizer preserves single-thread observable behaviors" ~count:40
    (stmt_arbitrary opt_cfg ~size:8)
    (fun s ->
      let r = Optimizer.Driver.optimize s in
      let explore p = Baselines.Sc.explore ~values:values2 ~max_states:20_000 [ p ] in
      let before = explore s and after = explore r.Optimizer.Driver.output in
      QCheck.assume
        ((not before.Baselines.Sc.truncated) && not after.Baselines.Sc.truncated);
      Baselines.Sc.Behavior_set.equal before.Baselines.Sc.behaviors
        after.Baselines.Sc.behaviors)

(* 10. DSE + SLF compose: running the pipeline twice equals running it
   once (idempotence). *)
let optimizer_idempotent =
  QCheck.Test.make ~name:"optimizer pipeline is idempotent" ~count:60
    (stmt_arbitrary opt_cfg ~size:8)
    (fun s ->
      let once = (Optimizer.Driver.optimize s).Optimizer.Driver.output in
      let twice = (Optimizer.Driver.optimize once).Optimizer.Driver.output in
      String.equal (Stmt.to_string once) (Stmt.to_string twice))

let suite =
  suite
  @ List.map
      (QCheck_alcotest.to_alcotest ~long:false)
      [ optimizer_preserves_sequential; optimizer_idempotent ]
