(* Oracles (Def 3.2) made concrete: Tr(Ω) membership and the §3
   counterexamples exhibited with explicit environments. *)

open Lang
module B = Seq_model.Behavior
module O = Seq_model.Oracle

let parse = Parser.stmt_of_string
let test name f = Alcotest.test_case name `Quick f
let check_bool msg = Alcotest.(check bool) msg

let domain srcs =
  Domain.of_stmts ~values:[ Value.Int 0; Value.Int 1 ] (List.map parse srcs)

let cfg ?(perm = []) src =
  Seq_model.Config.make
    ~perm:(Loc.Set.of_list (List.map Loc.make perm))
    (Prog.init (parse src))

let has_bot behs =
  B.Set.exists (fun (_, r) -> r = B.Bot) behs

let suite =
  [
    test "free oracle allows every trace" (fun () ->
        let d = domain [ "a = Y.load(rlx); Y.store(rel, a); return a" ] in
        let behs =
          B.enumerate d ~fuel:10 (cfg "a = Y.load(rlx); Y.store(rel, a); return a")
        in
        B.Set.iter
          (fun (tr, _) -> check_bool "allowed" true (O.allows O.free tr))
          behs);
    test "reads_satisfy filters read values" (fun () ->
        let om = O.reads_satisfy (Loc.make "Y") (fun v -> v = Value.Int 0) in
        let read v = Seq_model.Event.Rlx_read (Loc.make "Y", v) in
        check_bool "0 allowed" true (O.allows om [ read (Value.Int 0) ]);
        check_bool "1 refused" false (O.allows om [ read (Value.Int 1) ]);
        (* no monotonicity obligation for reads: the label order relates
           write values to undef, not read values *)
        check_bool "undef refusable" false (O.allows om [ read Value.Undef ]));
    (* §3's second counterexample, now with the explicit oracle: the source
       of   a := x^rlx; if a = 1 { 1/0 }; loop   can only reach ⊥ by
       reading 1; under the environment that never offers 1 it has no
       UB behavior, while the target ⊥s with an empty trace. *)
    test "the §3 oracle counterexample, concretely" (fun () ->
        let d = domain [ "a = Y.load(rlx); if a == 1 { b = 1/0 }; return a" ] in
        let src = cfg "a = Y.load(rlx); if a == 1 { b = 1/0 }; return a" in
        let tgt = cfg "b = 1/0; a = Y.load(rlx); return a" in
        let adversary = O.reads_satisfy (Loc.make "Y") (fun v -> v = Value.Int 0) in
        let src_behs = O.allowed_behaviors d adversary ~fuel:10 src in
        let tgt_behs = O.allowed_behaviors d adversary ~fuel:10 tgt in
        check_bool "target still reaches ⊥ (trace ε ∈ Tr(Ω))" true
          (has_bot tgt_behs);
        check_bool "source cannot reach ⊥ under this oracle" false
          (has_bot src_behs));
    (* ...whereas for the late-UB example the source ⊥s for EVERY oracle:
       its racy write does not depend on the read. *)
    test "late-UB source fails under the adversarial oracle too" (fun () ->
        let d = domain [ "a = Y.load(rlx); X.store(na, 1); return a" ] in
        (* no permission on X: the na write is racy *)
        let src = cfg "a = Y.load(rlx); X.store(na, 1); return a" in
        let adversary =
          O.both
            (O.reads_satisfy (Loc.make "Y") (fun v -> v = Value.Int 0))
            O.no_permission_gain
        in
        let src_behs = O.allowed_behaviors d adversary ~fuel:10 src in
        check_bool "source reaches ⊥ anyway" true (has_bot src_behs));
    test "drop_all_on_release constrains release labels" (fun () ->
        let d = domain [ "X.store(na,1); Y.store(rel, 1)" ] in
        let c = cfg ~perm:[ "X" ] "X.store(na,1); Y.store(rel, 1)" in
        let behs = O.allowed_behaviors d O.drop_all_on_release ~fuel:10 c in
        B.Set.iter
          (fun (tr, _) ->
            List.iter
              (function
                | Seq_model.Event.Rel r ->
                  check_bool "post-permissions empty" true
                    (Loc.Set.is_empty r.Seq_model.Event.rpost)
                | _ -> ())
              tr)
          behs);
  ]
