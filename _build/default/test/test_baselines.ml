(* Baselines: SC interleaving with race detection, the catch-fire
   comparison (E6 — load introduction is unsound under catch-fire but sound
   under SEQ/PS_na), and DRF guarantees (E7). *)

open Lang
module M = Promising.Machine
module Sc = Baselines.Sc
module Cf = Baselines.Catchfire

let threads = Parser.threads_of_string
let test name f = Alcotest.test_case name `Quick f
let check_bool msg = Alcotest.(check bool) msg
let ret vs = M.Ret (List.map (fun v -> (v, [])) vs)
let i n = Value.Int n

let suite =
  [
    test "SC forbids SB both-zero" (fun () ->
        let r =
          Sc.explore
            (threads
               "Y.store(rlx,1); a = Z.load(rlx); return a ||| \
                Z.store(rlx,1); b = Y.load(rlx); return b")
        in
        check_bool "no 0,0 under SC" false
          (Sc.Behavior_set.mem (ret [ i 0; i 0 ]) r.Sc.behaviors));
    test "SC race detection: na conflict races, atomics do not" (fun () ->
        let racy = Sc.explore (threads "X.store(na,1) ||| a = X.load(na); return a") in
        check_bool "na race" true racy.Sc.races;
        let atomic =
          Sc.explore (threads "Y.store(rlx,1) ||| a = Y.load(rlx); return a")
        in
        check_bool "no na race" false atomic.Sc.races;
        check_bool "but a strict race" true atomic.Sc.strict_races);
    test "SC: rel-acq synchronisation removes the race" (fun () ->
        let r =
          Sc.explore
            (threads
               "X.store(na,1); Y.store(rel,1) ||| \
                a = Y.load(acq); if a == 1 { b = X.load(na) }; return b")
        in
        check_bool "race-free" false r.Sc.races);
    test "SC: lock via CAS removes the race" (fun () ->
        let r =
          Sc.explore
            (threads
               "a = 0; while a == 0 { a = cas(L, 0, 1) }; X.store(na, 1); \
                L.store(rel, 0) ||| \
                b = 0; while b == 0 { b = cas(L, 0, 1) }; c = X.load(na); \
                L.store(rel, 0); return c")
        in
        check_bool "race-free" false r.Sc.races);
    (* E6: load introduction across the three semantics *)
    test "E6: load introduction sound in PS_na, unsound under catch-fire"
      (fun () ->
        let src = "return 0" in
        let tgt = "a = X.load(na); return 0" in
        let ctx = "X.store(na, 1); return 0" in
        let ps_src = M.explore (threads (src ^ " ||| " ^ ctx)) in
        let ps_tgt = M.explore (threads (tgt ^ " ||| " ^ ctx)) in
        check_bool "PS_na refines" true
          (M.refines ~src:ps_src.M.behaviors ~tgt:ps_tgt.M.behaviors);
        let cf_src = Cf.explore (threads (src ^ " ||| " ^ ctx)) in
        let cf_tgt = Cf.explore (threads (tgt ^ " ||| " ^ ctx)) in
        check_bool "target catches fire" true cf_tgt.Cf.catches_fire;
        check_bool "source does not" false cf_src.Cf.catches_fire;
        check_bool "catch-fire refuses" false (Cf.refines ~src:cf_src ~tgt:cf_tgt));
    test "E6: LICM (Ex 1.3) introduces a racy load under catch-fire"
      (fun () ->
        (* the loop never executes: b starts at 1 *)
        let src = "b = 1; while b == 0 { a = X.load(na); b = Y.load(rlx) }; return a" in
        let tgt =
          "b = 1; c = X.load(na); while b == 0 { a = c; b = Y.load(rlx) }; return a"
        in
        let ctx = "X.store(na, 2); return 0" in
        let cf_src = Cf.explore (threads (src ^ " ||| " ^ ctx)) in
        let cf_tgt = Cf.explore (threads (tgt ^ " ||| " ^ ctx)) in
        check_bool "catch-fire refuses LICM" false
          (Cf.refines ~src:cf_src ~tgt:cf_tgt);
        let ps_src = M.explore (threads (src ^ " ||| " ^ ctx)) in
        let ps_tgt = M.explore (threads (tgt ^ " ||| " ^ ctx)) in
        check_bool "PS_na accepts LICM" true
          (M.refines ~src:ps_src.M.behaviors ~tgt:ps_tgt.M.behaviors));
    (* E7: DRF guarantees *)
    test "E7: DRF-PF holds on MP-rel-acq" (fun () ->
        let r =
          Baselines.Drf.check
            (threads
               "X.store(na,1); Y.store(rel,1); return 0 ||| \
                a = Y.load(acq); if a == 1 { b = X.load(na) }; return 10*a+b")
        in
        check_bool "premise" true r.Baselines.Drf.pf_race_free;
        check_bool "conclusion" true r.Baselines.Drf.drf_pf_holds);
    test "E7: DRF-PF premise fails on LB-rlx (rlx race), so no claim"
      (fun () ->
        let r =
          Baselines.Drf.check
            (threads
               "a = Y.load(rlx); Z.store(rlx,1); return a ||| \
                b = Z.load(rlx); Y.store(rlx,1); return b")
        in
        check_bool "premise fails" false r.Baselines.Drf.pf_race_free;
        (* and indeed full ≠ promise-free: LB needs promises *)
        check_bool "full has more behaviors" false
          (M.Behavior_set.equal r.Baselines.Drf.full r.Baselines.Drf.promise_free));
    test "E7: DRF-LOCK holds on the lock program" (fun () ->
        (* the CAS/release traffic on L itself races under the strict
           notion — exactly why the applicable guarantee is DRF-LOCK, with
           the lock location exempted *)
        let r =
          Baselines.Drf.check
            ~params:{ Promising.Thread.default_params with promise_budget = 0 }
            ~lock_locs:(Lang.Loc.Set.singleton (Lang.Loc.make "L"))
            (threads
               "a = 0; while a == 0 { a = cas(L, 0, 1) }; X.store(na, 1); \
                L.store(rel, 0); return 0 ||| \
                b = 0; while b == 0 { b = cas(L, 0, 1) }; c = X.load(na); \
                L.store(rel, 0); return c")
        in
        check_bool "strict races confined to L" true
          r.Baselines.Drf.lock_race_free;
        check_bool "plain DRF-SC premise fails (locks race)" false
          r.Baselines.Drf.sc_race_free;
        check_bool "conclusion" true r.Baselines.Drf.drf_lock_holds);
    test "E7: DRF-SC premise fails on SB (no claim)" (fun () ->
        let r =
          Baselines.Drf.check
            (threads
               "Y.store(rel,1); a = Z.load(acq); return a ||| \
                Z.store(rel,1); b = Y.load(acq); return b")
        in
        check_bool "premise fails" false r.Baselines.Drf.sc_race_free);
  ]
