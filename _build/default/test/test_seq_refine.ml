(* Simple behavioral refinement in SEQ (§2, Def 2.4) over the whole litmus
   corpus: every transformation the paper validates must be accepted, every
   counterexample refuted — with the expected verdicts recorded in
   Litmus.Catalog. *)

open Lang
module C = Litmus.Catalog

let values = Domain.default_values

let check_simple (tr : C.transformation) =
  let src = Parser.stmt_of_string tr.C.src in
  let tgt = Parser.stmt_of_string tr.C.tgt in
  let d = Domain.of_stmts ~values [ src; tgt ] in
  if Seq_model.Refine.check d ~src ~tgt then C.Sound else C.Unsound

let suite =
  List.map
    (fun (tr : C.transformation) ->
      let name = Printf.sprintf "%s [%s]" tr.C.name tr.C.paper_ref in
      Alcotest.test_case name `Quick (fun () ->
          Alcotest.(check string)
            "simple refinement verdict"
            (C.verdict_to_string tr.C.simple)
            (C.verdict_to_string (check_simple tr))))
    C.transformations

(* The quantify-written flag must not change any verdict: all F-conditions
   are monotone in a common initial F (see Refine.initial_pairs). *)
let written_quantification_suite =
  let pick =
    [ "overwritten-store-elim"; "na-write-then-rel"; "store-intro-after-rel" ]
  in
  List.filter_map
    (fun name ->
      Option.map
        (fun (tr : C.transformation) ->
          Alcotest.test_case ("quantify-written: " ^ name) `Quick (fun () ->
              let src = Parser.stmt_of_string tr.C.src in
              let tgt = Parser.stmt_of_string tr.C.tgt in
              let d = Domain.of_stmts ~values [ src; tgt ] in
              let v1 = Seq_model.Refine.check d ~src ~tgt in
              let v2 =
                Seq_model.Refine.check ~quantify_written:true d ~src ~tgt
              in
              Alcotest.(check bool) "same verdict" v1 v2))
        (C.find_transformation name))
    pick

let suite = suite @ written_quantification_suite

(* Every refuted transformation must come with an extractable
   counterexample; validated ones must not. *)
let counterexample_suite =
  [
    Alcotest.test_case "counterexamples exist exactly for refuted entries"
      `Quick (fun () ->
        List.iter
          (fun (tr : C.transformation) ->
            let src = Parser.stmt_of_string tr.C.src in
            let tgt = Parser.stmt_of_string tr.C.tgt in
            let d = Domain.of_stmts ~values [ src; tgt ] in
            let roots =
              Seq_model.Refine.initial_pairs d ~src:(Prog.init src)
                ~tgt:(Prog.init tgt)
            in
            let cex = Seq_model.Refine.find_counterexample d roots in
            match tr.C.simple, cex with
            | C.Sound, Some c ->
              Alcotest.failf "unexpected counterexample for %s: %s" tr.C.name
                c.Seq_model.Refine.reason
            | C.Unsound, None ->
              Alcotest.failf "missing counterexample for %s" tr.C.name
            | C.Sound, None | C.Unsound, Some _ -> ())
          C.transformations);
  ]

let suite = suite @ counterexample_suite
