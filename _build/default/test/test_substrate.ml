(* Unit tests for the PS_na substrate: rational timestamps, views, view
   triples, and message memories. *)

open Lang
module T = Promising.Time
module V = Promising.View
module Tv = Promising.Tview
module Mem = Promising.Memory
module Msg = Promising.Message

let test name f = Alcotest.test_case name `Quick f
let check_bool msg = Alcotest.(check bool) msg
let x = Loc.make "X"
let y = Loc.make "Y"

let msg ?(attached = false) loc ts v =
  {
    Msg.loc;
    ts = T.make ts 1;
    attached;
    payload = Msg.Concrete { value = Value.Int v; view = V.bot };
  }

let suite =
  [
    test "Time: exact rationals" (fun () ->
        let a = T.make 1 3 and b = T.make 2 6 in
        check_bool "1/3 = 2/6" true (T.equal a b);
        check_bool "normalized" true (T.equal (T.make (-2) (-6)) a);
        let m = T.between T.zero T.one in
        check_bool "0 < mid" true (T.lt T.zero m);
        check_bool "mid < 1" true (T.lt m T.one);
        check_bool "above" true (T.lt T.one (T.above T.one)));
    test "Time: between is strictly inside arbitrarily often" (fun () ->
        let rec go lo hi n =
          if n = 0 then ()
          else begin
            let m = T.between lo hi in
            check_bool "lo<m" true (T.lt lo m);
            check_bool "m<hi" true (T.lt m hi);
            go lo m (n - 1)
          end
        in
        go T.zero T.one 12);
    test "View: join and order" (fun () ->
        let v1 = V.singleton x T.one in
        let v2 = V.singleton y (T.make 2 1) in
        let j = V.join v1 v2 in
        check_bool "x" true (T.equal (V.find x j) T.one);
        check_bool "y" true (T.equal (V.find y j) (T.make 2 1));
        check_bool "v1 ⊑ j" true (V.le v1 j);
        check_bool "j ⋢ v1" false (V.le j v1);
        check_bool "bot is bot" true (V.is_bot V.bot);
        check_bool "zero entries are canonical" true
          (V.equal V.bot (V.set x T.zero V.bot)));
    test "Tview: read/write/fence effects" (fun () ->
        let mv = V.singleton y (T.make 3 1) in
        (* rlx read: cur gets the timestamp, acq additionally the message
           view *)
        let v = Tv.read x T.one ~mview:mv ~sync:false ~track:true Tv.bot in
        check_bool "cur has x" true (T.equal (V.find x v.Tv.cur) T.one);
        check_bool "cur misses y" true (T.equal (V.find y v.Tv.cur) T.zero);
        check_bool "acq has y" true (T.equal (V.find y v.Tv.acq) (T.make 3 1));
        (* acquire fence promotes acq into cur *)
        let v' = Tv.acq_fence v in
        check_bool "after F^acq cur has y" true
          (T.equal (V.find y v'.Tv.cur) (T.make 3 1));
        (* release fence publishes cur *)
        let v'' = Tv.rel_fence v' in
        check_bool "rel view published" true (V.le v'.Tv.cur v''.Tv.rel));
    test "Memory: insertion positions respect attachment" (fun () ->
        let mem = Mem.init [ x ] in
        let mem = Mem.add mem (msg x 2 1) in
        (* positions: between init@0 and @2, and above @2 *)
        check_bool "two gaps" true
          (List.length (Mem.insert_positions mem x) = 2);
        let mem = Mem.add mem (msg ~attached:true x 3 2) in
        (* the slot in front of the attached message is gone *)
        let ps = Mem.insert_positions mem x in
        check_bool "attached blocks its gap" true (List.length ps = 2);
        List.iter
          (fun (ts, _) ->
            check_bool "not between 2 and 3" false
              (T.lt (T.make 2 1) ts && T.lt ts (T.make 3 1)))
          ps);
    test "Memory: readable respects the view floor" (fun () ->
        let mem = Mem.init [ x ] in
        let mem = Mem.add mem (msg x 2 1) in
        let mem = Mem.add mem (msg x 4 2) in
        check_bool "all at 0" true (List.length (Mem.readable mem x T.zero) = 3);
        check_bool "two at 2" true
          (List.length (Mem.readable mem x (T.make 2 1)) = 2);
        check_bool "one at 3" true
          (List.length (Mem.readable mem x (T.make 3 1)) = 1));
    test "Memory: successor" (fun () ->
        let mem = Mem.init [ x ] in
        let m1 = msg x 2 1 in
        let mem = Mem.add mem m1 in
        (match Mem.successor mem m1 with
         | None -> ()
         | Some _ -> Alcotest.fail "m1 is last");
        let m2 = msg x 4 2 in
        let mem = Mem.add mem m2 in
        match Mem.successor mem m1 with
        | Some m when Msg.equal m m2 -> ()
        | _ -> Alcotest.fail "successor of m1 should be m2");
    test "Memory: SC view round-trips" (fun () ->
        let mem = Mem.init [ x ] in
        check_bool "initially bot" true (V.is_bot (Mem.sc_view mem));
        let v = V.singleton x T.one in
        let mem = Mem.with_sc_view mem v in
        check_bool "updated" true (V.equal (Mem.sc_view mem) v);
        check_bool "compare sees it" false (Mem.compare mem (Mem.init [ x ]) = 0));
  ]
