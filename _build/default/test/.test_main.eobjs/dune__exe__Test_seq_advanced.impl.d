test/test_seq_advanced.ml: Alcotest Domain Lang List Litmus Parser Printf Seq_model
