test/test_seq_refine.ml: Alcotest Domain Lang List Litmus Option Parser Printf Prog Seq_model
