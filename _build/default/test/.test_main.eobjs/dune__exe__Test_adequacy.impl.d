test/test_adequacy.ml: Alcotest List Litmus Option String Sys
