test/test_properties.ml: Baselines Domain Gen Lang List Loc Optimizer Parser Prog Promising QCheck QCheck_alcotest Reg Seq_model Stmt String Value
