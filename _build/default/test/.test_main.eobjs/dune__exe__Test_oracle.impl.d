test/test_oracle.ml: Alcotest Domain Lang List Loc Parser Prog Seq_model Value
