test/test_baselines.ml: Alcotest Baselines Lang List Parser Promising Value
