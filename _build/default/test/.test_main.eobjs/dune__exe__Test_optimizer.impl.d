test/test_optimizer.ml: Alcotest Lang List Optimizer Parser Stmt
