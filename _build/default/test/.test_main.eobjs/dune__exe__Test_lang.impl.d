test/test_lang.ml: Alcotest Expr Hashtbl Lang List Litmus Loc Parser Prog Reg Stmt Value
