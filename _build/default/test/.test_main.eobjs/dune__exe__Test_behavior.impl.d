test/test_behavior.ml: Alcotest Domain Lang List Litmus Loc Parser Prog Seq_model Stmt Value
