test/test_promising.ml: Alcotest Lang List Parser Promising Value
