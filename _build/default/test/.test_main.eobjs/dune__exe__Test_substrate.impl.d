test/test_substrate.ml: Alcotest Lang List Loc Promising Value
