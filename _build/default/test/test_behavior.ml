(* SEQ behaviors by direct enumeration (Def 2.1/2.3) and the differential
   check against the simulation-game refinement decision procedure. *)

open Lang
module B = Seq_model.Behavior

let parse = Parser.stmt_of_string

let cfg_of ?(perm = []) ?(mem = []) src =
  let mem =
    List.fold_left (fun m (x, v) -> Loc.Map.add (Loc.make x) v m) Loc.Map.empty mem
  in
  Seq_model.Config.make
    ~perm:(Loc.Set.of_list (List.map Loc.make perm))
    ~mem (Prog.init (parse src))

let test name f = Alcotest.test_case name `Quick f

(* Example 2.2 of the paper: behaviors of x^rlx := 1; y^na := 2; return 3 *)
let example_2_2 () =
  let d =
    Domain.make ~values:[ Value.Int 1; Value.Int 2; Value.Int 3 ]
      ~na_locs:[ Loc.make "Y" ] ~at_locs:[ Loc.make "X" ] ()
  in
  let src = "X.store(rlx, 1); Y.store(na, 2); return 3" in
  let with_perm = cfg_of ~perm:[ "Y" ] src in
  let behs = B.enumerate d ~fuel:10 with_perm in
  let y = Loc.make "Y" in
  let w1 = Seq_model.Event.Rlx_write (Loc.make "X", Value.Int 1) in
  let expect =
    [
      ([], B.Prt Loc.Set.empty);
      ([ w1 ], B.Prt Loc.Set.empty);
      ([ w1 ], B.Prt (Loc.Set.singleton y));
      ([ w1 ],
       B.Trm (Value.Int 3, Loc.Set.singleton y, Loc.Map.singleton y (Value.Int 2)));
    ]
  in
  List.iter
    (fun b ->
      if not (B.Set.mem b behs) then
        Alcotest.failf "missing behavior %a" B.pp b)
    expect;
  (* without permission on Y, the only terminating behavior is ⊥ *)
  let behs' = B.enumerate d ~fuel:10 (cfg_of src) in
  Alcotest.(check bool) "⊥ present" true (B.Set.mem ([ w1 ], B.Bot) behs');
  B.Set.iter
    (function
      | _, B.Trm _ -> Alcotest.fail "unexpected termination without permission"
      | _ -> ())
    behs'

(* Differential: the enumeration-based Def 2.4 agrees with the simulation
   game on the corpus entries without loops (enumeration needs finite
   traces to be meaningful at small fuel). *)
let differential () =
  let loopless (tr : Litmus.Catalog.transformation) =
    let has_loop s =
      let rec go = function
        | Stmt.While _ -> true
        | Stmt.Seq (a, b) | Stmt.If (_, a, b) -> go a || go b
        | _ -> false
      in
      go (parse s)
    in
    (not (has_loop tr.Litmus.Catalog.src)) && not (has_loop tr.Litmus.Catalog.tgt)
  in
  let values = [ Value.Int 0; Value.Int 1 ] in
  List.iter
    (fun (tr : Litmus.Catalog.transformation) ->
      let src = parse tr.Litmus.Catalog.src in
      let tgt = parse tr.Litmus.Catalog.tgt in
      let d = Domain.of_stmts ~values [ src; tgt ] in
      let game = Seq_model.Refine.check d ~src ~tgt in
      let enum =
        List.for_all
          (fun (p : Seq_model.Refine.pair) ->
            match
              B.refines_at d ~fuel:12 ~src:p.Seq_model.Refine.src
                ~tgt:p.Seq_model.Refine.tgt
            with
            | Ok () -> true
            | Error _ -> false)
          (Seq_model.Refine.initial_pairs d ~src:(Prog.init src)
             ~tgt:(Prog.init tgt))
      in
      if game <> enum then
        Alcotest.failf "game=%b enum=%b disagree on %s" game enum
          tr.Litmus.Catalog.name)
    (List.filter loopless Litmus.Catalog.transformations)

let suite =
  [
    test "Example 2.2 behaviors" example_2_2;
    Alcotest.test_case "enumeration vs game differential (loop-free corpus)"
      `Slow differential;
    test "behavior ⊑: source ⊥ matches extensions" (fun () ->
        let d = Domain.make ~na_locs:[] ~at_locs:[ Loc.make "X" ] () in
        let w v = Seq_model.Event.Rlx_write (Loc.make "X", Value.Int v) in
        Alcotest.(check bool) "prefix" true
          (B.le d ([ w 1; w 2 ], B.Prt Loc.Set.empty) ([ w 1 ], B.Bot));
        Alcotest.(check bool) "non-prefix" false
          (B.le d ([ w 2; w 2 ], B.Prt Loc.Set.empty) ([ w 1 ], B.Bot)));
    test "behavior ⊑: undef in source write" (fun () ->
        let d = Domain.make ~na_locs:[] ~at_locs:[ Loc.make "X" ] () in
        let wt = Seq_model.Event.Rlx_write (Loc.make "X", Value.Int 1) in
        let ws = Seq_model.Event.Rlx_write (Loc.make "X", Value.Undef) in
        Alcotest.(check bool) "W(1) ⊑ W(undef)" true
          (B.le d ([ wt ], B.Prt Loc.Set.empty) ([ ws ], B.Prt Loc.Set.empty));
        Alcotest.(check bool) "W(undef) ⋢ W(1)" false
          (B.le d ([ ws ], B.Prt Loc.Set.empty) ([ wt ], B.Prt Loc.Set.empty)));
  ]
