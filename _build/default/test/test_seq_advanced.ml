(* Advanced behavioral refinement (§3, Def 3.3) over the litmus corpus,
   plus Proposition 3.4 (simple implies advanced) as a meta-check on every
   corpus entry. *)

open Lang
module C = Litmus.Catalog

let values = Domain.default_values

let parse_pair (tr : C.transformation) =
  let src = Parser.stmt_of_string tr.C.src in
  let tgt = Parser.stmt_of_string tr.C.tgt in
  let d = Domain.of_stmts ~values [ src; tgt ] in
  (d, src, tgt)

let suite =
  List.map
    (fun (tr : C.transformation) ->
      let name = Printf.sprintf "%s [%s]" tr.C.name tr.C.paper_ref in
      Alcotest.test_case name `Quick (fun () ->
          let d, src, tgt = parse_pair tr in
          let got =
            if Seq_model.Advanced.check d ~src ~tgt then C.Sound else C.Unsound
          in
          Alcotest.(check string)
            "advanced refinement verdict"
            (C.verdict_to_string tr.C.advanced)
            (C.verdict_to_string got)))
    C.transformations

(* Prop 3.4: σ_tgt ⊑ σ_src ⇒ σ_tgt ⊑w σ_src — as computed, not just as
   recorded in the catalog. *)
let prop_3_4_suite =
  [
    Alcotest.test_case "Prop 3.4 over the corpus" `Slow (fun () ->
        List.iter
          (fun (tr : C.transformation) ->
            let d, src, tgt = parse_pair tr in
            let simple = Seq_model.Refine.check d ~src ~tgt in
            if simple then
              let adv = Seq_model.Advanced.check d ~src ~tgt in
              if not adv then
                Alcotest.failf "Prop 3.4 violated on %s" tr.C.name)
          C.transformations);
  ]

let suite = suite @ prop_3_4_suite
