(* Language substrate: values and the ⊑ order, expression evaluation with
   undef/UB, footprints, parsing, and the LTS determinism claim. *)

open Lang

let v = Alcotest.testable Value.pp Value.equal

let eval_str rf_bindings e_src =
  (* parse via a statement to reuse the expression grammar *)
  let s = Parser.stmt_of_string ("r = " ^ e_src) in
  match s with
  | Stmt.Assign (_, e) ->
    let rf =
      List.fold_left
        (fun m (r, x) -> Reg.Map.add (Reg.make r) x m)
        Reg.Map.empty rf_bindings
    in
    Expr.eval rf e
  | _ -> assert false

let test name f = Alcotest.test_case name `Quick f

let suite =
  [
    test "⊑: undef is top" (fun () ->
        Alcotest.(check bool) "v ⊑ undef" true (Value.le (Value.Int 3) Value.Undef);
        Alcotest.(check bool) "undef ⋢ v" false (Value.le Value.Undef (Value.Int 3));
        Alcotest.(check bool) "refl" true (Value.le (Value.Int 3) (Value.Int 3));
        Alcotest.(check bool) "distinct" false (Value.le (Value.Int 3) (Value.Int 4)));
    test "arith propagates undef" (fun () ->
        match eval_str [ ("a", Value.Undef) ] "a + 1" with
        | Expr.Ok x -> Alcotest.check v "undef" Value.Undef x
        | Expr.Fault -> Alcotest.fail "unexpected fault");
    test "division by zero is UB" (fun () ->
        Alcotest.(check bool) "fault" true (eval_str [] "1 / 0" = Expr.Fault));
    test "division by undef is UB" (fun () ->
        Alcotest.(check bool) "fault" true
          (eval_str [ ("a", Value.Undef) ] "1 / a" = Expr.Fault));
    test "comparison on values" (fun () ->
        match eval_str [ ("a", Value.Int 2) ] "a < 3 && a > 1" with
        | Expr.Ok x -> Alcotest.check v "true" Value.one x
        | Expr.Fault -> Alcotest.fail "unexpected fault");
    test "unset registers read as zero" (fun () ->
        match eval_str [] "q + 5" with
        | Expr.Ok x -> Alcotest.check v "5" (Value.Int 5) x
        | Expr.Fault -> Alcotest.fail "unexpected fault");
    test "footprint separates na and atomic" (fun () ->
        let s =
          Parser.stmt_of_string
            "a = X.load(na); Y.store(rel, 1); b = cas(Z, 0, 1); W.store(na, 2)"
        in
        let fp = Stmt.footprint s in
        Alcotest.(check (list string)) "na" [ "W"; "X" ]
          (Loc.Set.elements fp.Stmt.na);
        Alcotest.(check (list string)) "at" [ "Y"; "Z" ]
          (Loc.Set.elements fp.Stmt.at));
    test "mixed access detection" (fun () ->
        let s = Parser.stmt_of_string "a = X.load(na); X.store(rlx, 1)" in
        Alcotest.(check (list string)) "mixed" [ "X" ]
          (Loc.Set.elements (Stmt.mixed_locations s)));
    test "parser round-trip" (fun () ->
        let src =
          "a = X.load(na); if a == 1 { Y.store(rel, a + 1) } else { \
           while a < 3 { a = a + 1 } }; b = freeze(a); print(b); return b"
        in
        let s1 = Parser.stmt_of_string src in
        let s2 = Parser.stmt_of_string (Stmt.to_string s1) in
        Alcotest.(check string) "round-trip" (Stmt.to_string s1) (Stmt.to_string s2));
    test "parser rejects bad mode" (fun () ->
        Alcotest.check_raises "bad mode"
          (Parser.Error "1:12: invalid read mode \"sc\"") (fun () ->
            ignore (Parser.stmt_of_string "a = X.load(sc)")));
    test "threads split on |||" (fun () ->
        let ts = Parser.threads_of_string "return 1 ||| return 2 ||| return 3" in
        Alcotest.(check int) "3 threads" 3 (List.length ts));
    test "branching on undef is UB" (fun () ->
        let st = Prog.init (Parser.stmt_of_string "if 1/0 { skip }; return 1") in
        (match Prog.step st with
         | Prog.Undefined -> ()
         | _ -> Alcotest.fail "expected UB"));
    test "freeze of a defined value is silent" (fun () ->
        let st = Prog.init (Parser.stmt_of_string "a = freeze(4); return a") in
        match Prog.step st with
        | Prog.Silent _ -> ()
        | _ -> Alcotest.fail "expected silent step");
    test "freeze of undef offers choices" (fun () ->
        let st = Prog.init (Parser.stmt_of_string "a = freeze(undef); return a") in
        let rec run st n =
          if n > 10 then Alcotest.fail "did not terminate"
          else
            match Prog.step st with
            | Prog.Terminated x -> x
            | Prog.Silent st' -> run st' (n + 1)
            | _ -> Alcotest.fail "unexpected label"
        in
        match Prog.step st with
        | Prog.Choice f -> Alcotest.check v "7" (Value.Int 7) (run (f (Value.Int 7)) 0)
        | _ -> Alcotest.fail "expected choice");
    test "program end returns 0 after one silent step" (fun () ->
        match Prog.step (Prog.init Stmt.Skip) with
        | Prog.Silent st' ->
          (match Prog.step st' with
           | Prog.Terminated x -> Alcotest.check v "0" Value.zero x
           | _ -> Alcotest.fail "expected termination")
        | _ -> Alcotest.fail "expected silent implicit-return step");
    test "while loops unfold" (fun () ->
        let st =
          Prog.init (Parser.stmt_of_string "i = 0; while i < 3 { i = i + 1 }; return i")
        in
        let rec run st n =
          if n > 100 then Alcotest.fail "did not terminate"
          else
            match Prog.step st with
            | Prog.Terminated x -> x
            | Prog.Silent st' -> run st' (n + 1)
            | _ -> Alcotest.fail "unexpected label"
        in
        Alcotest.check v "3" (Value.Int 3) (run st 0));
  ]

(* Corpus sanity: every catalog entry parses, has a unique name, and
   respects the SEQ location conventions. *)
let catalog_sanity =
  [
    test "litmus corpus is well-formed" (fun () ->
        let names = Hashtbl.create 64 in
        List.iter
          (fun (tr : Litmus.Catalog.transformation) ->
            let n = tr.Litmus.Catalog.name in
            if Hashtbl.mem names n then Alcotest.failf "duplicate name %s" n;
            Hashtbl.add names n ();
            let src = Parser.stmt_of_string tr.Litmus.Catalog.src in
            let tgt = Parser.stmt_of_string tr.Litmus.Catalog.tgt in
            (* each side must be internally unmixed (SEQ precondition) *)
            List.iter
              (fun s ->
                if not (Loc.Set.is_empty (Stmt.mixed_locations s)) then
                  Alcotest.failf "mixed-mode location in %s" n)
              [ src; tgt ])
          Litmus.Catalog.transformations;
        List.iter
          (fun (c : Litmus.Catalog.concurrent) ->
            ignore (Parser.threads_of_string c.Litmus.Catalog.threads))
          Litmus.Catalog.concurrent_programs;
        List.iter
          (fun (_, ctx) -> ignore (Parser.threads_of_string ctx))
          Litmus.Catalog.contexts);
  ]

let suite = suite @ catalog_sanity
