(* PS_na (§5): exhaustive bounded exploration of the paper's concurrent
   examples and the classic litmus shapes the promising semantics is
   calibrated on. *)

open Lang
module M = Promising.Machine

let params = Promising.Thread.default_params

let explore ?(params = params) src =
  M.explore ~params (Parser.threads_of_string src)

let ret vs = M.Ret (List.map (fun v -> (v, [])) vs)
let i n = Value.Int n
let u = Value.Undef

let has r b = M.Behavior_set.mem b r.M.behaviors
let complete r = not r.M.truncated

let test name f = Alcotest.test_case name `Quick f
let check_bool msg = Alcotest.(check bool) msg

let suite =
  [
    test "SB-rlx allows both-zero" (fun () ->
        let r = explore
            "X.store(rlx,1); a = Y.load(rlx); return a ||| \
             Y.store(rlx,1); b = X.load(rlx); return b"
        in
        check_bool "complete" true (complete r);
        check_bool "0,0" true (has r (ret [ i 0; i 0 ]));
        check_bool "1,1" true (has r (ret [ i 1; i 1 ])));
    test "SB-rel-acq still allows both-zero" (fun () ->
        let r = explore
            "X.store(rel,1); a = Y.load(acq); return a ||| \
             Y.store(rel,1); b = X.load(acq); return b"
        in
        check_bool "0,0" true (has r (ret [ i 0; i 0 ])));
    test "MP-rel-acq forbids stale and racy reads" (fun () ->
        let r = explore
            "X.store(na,1); Y.store(rel,1); return 0 ||| \
             a = Y.load(acq); if a == 1 { b = X.load(na) }; return 10*a+b"
        in
        check_bool "complete" true (complete r);
        check_bool "synchronised" true (has r (ret [ i 0; i 11 ]));
        check_bool "no stale" false (has r (ret [ i 0; i 10 ]));
        check_bool "no undef" false (has r (ret [ i 0; u ]));
        check_bool "no UB" false (has r M.Bot));
    test "MP-rlx allows racy undef" (fun () ->
        let r = explore
            "X.store(na,1); Y.store(rlx,1); return 0 ||| \
             a = Y.load(rlx); if a == 1 { b = X.load(na) }; return b"
        in
        check_bool "undef read" true (has r (ret [ i 0; u ]));
        check_bool "no UB" false (has r M.Bot));
    test "LB-rlx allows 1,1 (promises)" (fun () ->
        let r = explore
            "a = X.load(rlx); Y.store(rlx,1); return a ||| \
             b = Y.load(rlx); X.store(rlx,1); return b"
        in
        check_bool "1,1" true (has r (ret [ i 1; i 1 ])));
    test "LB-data forbids thin-air" (fun () ->
        let r = explore
            "a = X.load(rlx); Y.store(rlx,a); return a ||| \
             b = Y.load(rlx); X.store(rlx,b); return b"
        in
        check_bool "complete" true (complete r);
        check_bool "only 0,0" true
          (M.Behavior_set.equal r.M.behaviors
             (M.Behavior_set.singleton (ret [ i 0; i 0 ]))));
    test "write-write race is UB" (fun () ->
        let r = explore "X.store(na,1); return 0 ||| X.store(na,2); return 0" in
        check_bool "⊥" true (has r M.Bot));
    test "atomic-nonatomic write race is UB" (fun () ->
        let r = explore "X.store(na,1); return 0 ||| X.store(rlx,2); return 0" in
        check_bool "⊥" true (has r M.Bot));
    test "write-read race reads undef, no UB" (fun () ->
        let r = explore "a = X.load(na); return a ||| X.store(na,1); return 0" in
        check_bool "undef" true (has r (ret [ u; i 0 ]));
        check_bool "no ⊥" false (has r M.Bot));
    test "atomic accesses to the same location do not race" (fun () ->
        let r = explore "a = X.load(rlx); return a ||| X.store(rlx,1); return 0" in
        check_bool "no undef" false (has r (ret [ u; i 0 ]));
        check_bool "no ⊥" false (has r M.Bot));
    test "coherence: per-location order (CoRR)" (fun () ->
        let r = explore "X.store(rlx,1); X.store(rlx,2); a = X.load(rlx); return a" in
        check_bool "reads own latest" true
          (M.Behavior_set.equal r.M.behaviors (M.Behavior_set.singleton (ret [ i 2 ]))));
    test "Example 5.1: promise + racy na read" (fun () ->
        let r = explore
            "a = X.load(na); Y.store(rlx,1); return a ||| \
             b = Y.load(rlx); if b == 1 { X.store(na,1) }; return b"
        in
        check_bool "a=undef, b=1" true (has r (ret [ u; i 1 ])));
    test "CAS success and failure" (fun () ->
        let r = explore "a = cas(X, 0, 1); return a ||| b = cas(X, 0, 2); return b" in
        check_bool "complete" true (complete r);
        check_bool "left wins" true (has r (ret [ i 1; i 0 ]));
        check_bool "right wins" true (has r (ret [ i 0; i 1 ]));
        check_bool "not both" false (has r (ret [ i 1; i 1 ])));
    test "fetch-add serialises" (fun () ->
        let r = explore
            "a = fadd(X, 1); return a ||| b = fadd(X, 1); return b"
        in
        check_bool "0,1" true (has r (ret [ i 0; i 1 ]));
        check_bool "1,0" true (has r (ret [ i 1; i 0 ]));
        check_bool "no duplicate" false (has r (ret [ i 0; i 0 ])));
    test "spinlock via CAS protects a na location" (fun () ->
        (* classic DRF-by-lock: both threads update X under the lock L *)
        let r = explore ~params:{ params with promise_budget = 0 }
            "a = 0; while a == 0 { a = cas(L, 0, 1) }; \
             t = X.load(na); X.store(na, t + 1); L.store(rel, 0); return 0 ||| \
             b = 0; while b == 0 { b = cas(L, 0, 1) }; \
             s = X.load(na); X.store(na, s + 1); L.store(rel, 0); return s"
        in
        check_bool "no UB under lock" false (has r M.Bot);
        check_bool "second sees first" true (has r (ret [ i 0; i 1 ])));
    test "print outputs are part of behaviors" (fun () ->
        let r = explore "print(7); return 1" in
        check_bool "out" true
          (M.Behavior_set.mem (M.Ret [ (i 1, [ i 7 ]) ]) r.M.behaviors));
    (* Appendix C / Remark 3: PS disallows reordering an internal choice
       past a release write — the promise is blocked by the release. *)
    test "App C: choice before release blocks promise-reorder behavior"
      (fun () ->
        let src = "b = choose(); X.store(rel, 0); \
                   if b == 1 { c = Y.load(rlx); if c == 1 { X.store(rlx,1) } } \
                   else { X.store(rlx,1) }; return 0 ||| \
                   a = X.load(rlx); Y.store(rlx, a); return a"
        in
        let r = explore ~params:{ params with promise_budget = 1 } src in
        (* thread 2 must not observe X=1 with b=1-branch printing 1; we
           check the machine explores without UB and that a=1 requires the
           else-branch timing: a=1 ∥ feasible, but never via thin air *)
        check_bool "no UB" false (has r M.Bot));
  ]

(* Appendix B: the multi-message non-atomic write is needed — a promise of
   X=2 is fulfilled as a batch extra of the write X :=na 1, letting the
   *source* of the App B optimization print 1. *)
let appendix_b =
  test "App B: batch fulfillment lets the source print 1" (fun () ->
      let src =
        "a = X.load(na); Y.store(rlx, a); return 0 ||| \
         b = Y.load(rlx); c = freeze(b); \
         if c == 1 { X.store(na, 1); print(1) } else { X.store(na, 2) }; \
         return c"
      in
      let r =
        explore ~params:{ params with promise_budget = 1; batch_bound = 1 } src
      in
      let printed_one =
        M.Behavior_set.exists
          (function
            | M.Ret [ _; (_, outs) ] -> List.mem (i 1) outs
            | _ -> false)
          r.M.behaviors
      in
      check_bool "print(1) reachable in the source" true printed_one)

(* Appendix C: PS forbids reordering an internal choice (freeze) past a
   release write — the release blocks the promise, so only the *target*
   (release hoisted before the freeze) can print 1. *)
let appendix_c =
  let pi1 = "a = X.load(rlx); Y.store(rlx, a); return a" in
  let src_pi2 =
    "b = freeze(undef); X.store(rel, 0); \
     if b == 1 { c = Y.load(rlx); if c == 1 { X.store(rlx, 1); print(1) } } \
     else { X.store(rlx, 1) }; return b"
  in
  let tgt_pi2 =
    "X.store(rel, 0); b = freeze(undef); \
     if b == 1 { c = Y.load(rlx); if c == 1 { X.store(rlx, 1); print(1) } } \
     else { X.store(rlx, 1) }; return b"
  in
  let printed_one r =
    M.Behavior_set.exists
      (function
        | M.Ret [ _; (_, outs) ] -> List.mem (i 1) outs
        | _ -> false)
      r.M.behaviors
  in
  test "App C: freeze;rel-write reorder changes PS behaviors" (fun () ->
      let p = { params with promise_budget = 1 } in
      let r_src = explore ~params:p (pi1 ^ " ||| " ^ src_pi2) in
      let r_tgt = explore ~params:p (pi1 ^ " ||| " ^ tgt_pi2) in
      check_bool "source cannot print 1" false (printed_one r_src);
      check_bool "target can print 1" true (printed_one r_tgt);
      check_bool "so the reordering is not a PS refinement" false
        (M.refines ~src:r_src.M.behaviors ~tgt:r_tgt.M.behaviors))

let suite = suite @ [ appendix_b; appendix_c ]

(* §5 "Results": strengthening non-atomic accesses to atomic ones is sound
   in PS_na (checked contextually — it is a PS-level theorem, not a SEQ
   transformation, since it changes the location's access class). *)
let strengthening =
  [
    test "strengthening na read to rlx is a PS_na refinement" (fun () ->
        let ctx = " ||| X.store(rlx, 1); return 0" in
        let rs = explore ("a = X.load(na); return a" ^ ctx) in
        let rt = explore ("a = X.load(rlx); return a" ^ ctx) in
        check_bool "refines" true
          (M.refines ~src:rs.M.behaviors ~tgt:rt.M.behaviors));
    test "strengthening na write to rel is a PS_na refinement" (fun () ->
        let ctx = " ||| a = X.load(rlx); return a" in
        let rs = explore ("X.store(na, 1); return 0" ^ ctx) in
        let rt = explore ("X.store(rel, 1); return 0" ^ ctx) in
        check_bool "refines" true
          (M.refines ~src:rs.M.behaviors ~tgt:rt.M.behaviors));
    test "weakening rlx to na is NOT a PS_na refinement" (fun () ->
        (* the na target races (undef, even UB) where the rlx source
           cannot *)
        let ctx = " ||| X.store(rlx, 1); return 0" in
        let rs = explore ("a = X.load(rlx); return a" ^ ctx) in
        let rt = explore ("a = X.load(na); return a" ^ ctx) in
        check_bool "does not refine" false
          (M.refines ~src:rs.M.behaviors ~tgt:rt.M.behaviors));
  ]

let suite = suite @ strengthening

(* Fences (PS2-style view triples, extension): a release fence before a
   relaxed flag write synchronises with an acquire fence after a relaxed
   flag read — MP without rel/acq accesses. *)
let fences =
  [
    test "fence MP: rel-fence + rlx flag synchronises via acq-fence"
      (fun () ->
        let r =
          explore
            "X.store(na,1); fence(rel); Y.store(rlx,1); return 0 ||| \
             a = Y.load(rlx); fence(acq); if a == 1 { b = X.load(na) }; \
             return 10*a+b"
        in
        check_bool "complete" true (complete r);
        check_bool "synchronised read" true (has r (ret [ i 0; i 11 ]));
        check_bool "no stale read" false (has r (ret [ i 0; i 10 ]));
        check_bool "no racy undef" false (has r (ret [ i 0; u ]));
        check_bool "no UB" false (has r M.Bot));
    test "fence MP: missing acq fence leaves the race" (fun () ->
        let r =
          explore
            "X.store(na,1); fence(rel); Y.store(rlx,1); return 0 ||| \
             a = Y.load(rlx); if a == 1 { b = X.load(na) }; return b"
        in
        check_bool "racy undef possible" true (has r (ret [ i 0; u ])));
    test "fence MP: missing rel fence leaves the race" (fun () ->
        let r =
          explore
            "X.store(na,1); Y.store(rlx,1); return 0 ||| \
             a = Y.load(rlx); fence(acq); if a == 1 { b = X.load(na) }; \
             return b"
        in
        check_bool "racy undef possible" true (has r (ret [ i 0; u ])));
    test "fences do not make SB sequentially consistent" (fun () ->
        let r =
          explore
            "Y.store(rlx,1); fence(acqrel); a = Z.load(rlx); return a ||| \
             Z.store(rlx,1); fence(acqrel); b = Y.load(rlx); return b"
        in
        (* PS2-style acq/rel fences are not SC fences: both-zero remains *)
        check_bool "0,0 allowed" true (has r (ret [ i 0; i 0 ])));
  ]

let suite = suite @ fences

(* SC fences (PS2-style global SC view, extension): SB with SC fences
   recovers sequential consistency — both-zero is forbidden. *)
let sc_fences =
  [
    test "SC fences forbid SB both-zero" (fun () ->
        let r =
          explore
            "Y.store(rlx,1); fence(sc); a = Z.load(rlx); return a ||| \
             Z.store(rlx,1); fence(sc); b = Y.load(rlx); return b"
        in
        check_bool "complete" true (complete r);
        check_bool "no 0,0" false (has r (ret [ i 0; i 0 ]));
        check_bool "0,1 still there" true (has r (ret [ i 0; i 1 ])));
    test "SC fence also synchronises like rel-acq fences" (fun () ->
        let r =
          explore
            "X.store(na,1); fence(sc); Y.store(rlx,1); return 0 ||| \
             a = Y.load(rlx); fence(sc); if a == 1 { b = X.load(na) }; \
             return 10*a+b"
        in
        check_bool "synchronised" true (has r (ret [ i 0; i 11 ]));
        check_bool "no racy undef" false (has r (ret [ i 0; u ])));
  ]

let suite = suite @ sc_fences
