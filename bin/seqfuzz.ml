(** seqfuzz — differential fuzzing of the SEQ toolchain, with planted
    bugs as end-to-end oracle coverage.

    Generates a deterministically seeded corpus of WHILE programs
    (generator phases + AST mutation), runs every program through the
    differential oracles (each optimizer pass must refine its input; the
    static race analysis must cover SEQ's dynamic races; lint-clean
    programs must be dynamically race-free; single-thread SC behaviors
    must fall inside SEQ's envelope) and through three deliberately
    unsound pass variants (dead-store elimination across a
    release/acquire pair, load forwarding across an acquire, LICM past
    an acquire) that the campaign must {e refute} — a planted variant
    surviving means the fuzzer or the checker lost its teeth.
    Counterexamples are shrunk to minimal reproducers; [--out DIR]
    writes them as .wm pairs re-checkable with seqcheck.

    Exit codes (README table): 0 — no real findings and every planted
    variant refuted; 3 — a real finding, or a planted variant survived;
    4 — neither, but some checks were UNKNOWN (budget ran out) and not
    [--keep-going]; 2 — out-of-range flags; 1 — I/O errors.

    The report on stdout contains no timing fields, so it is
    byte-identical across [--jobs] settings for state/fuel budgets
    (wall-clock budgets make individual verdicts machine-dependent);
    timing goes to stderr. *)

open Cmdliner

let oracle_conv =
  let parse s =
    match Fuzz.Oracle.of_string s with
    | Some k -> Ok k
    | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown oracle %S (expected one of: %s)" s
              (String.concat ", " (List.map Fuzz.Oracle.name Fuzz.Oracle.all))))
  in
  Arg.conv (parse, fun ppf k -> Fmt.string ppf (Fuzz.Oracle.name k))

let variant_conv =
  let parse s =
    match Fuzz.Planted.of_string s with
    | Some v -> Ok v
    | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown planted variant %S (expected one of: %s)"
              s
              (String.concat ", "
                 (List.map Fuzz.Planted.name Fuzz.Planted.all))))
  in
  Arg.conv (parse, fun ppf v -> Fmt.string ppf (Fuzz.Planted.name v))

let mkdir_p dir =
  (* one level is enough for --out targets like _fuzz/ci *)
  let rec go d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      Unix.mkdir d 0o755
    end
  in
  go dir

let write_file path contents =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc contents)

let reproducer_basename (fi : Fuzz.Campaign.finding) =
  (* planted:dse-across-release -> planted-dse-across-release *)
  String.map (function ':' -> '-' | c -> c) fi.Fuzz.Campaign.oracle

let write_out dir (r : Fuzz.Campaign.report) =
  mkdir_p dir;
  write_file
    (Filename.concat dir "report.json")
    (Service.Json.to_string (Fuzz.Campaign.json r) ^ "\n");
  (* every shrunk planted refutation becomes a seqcheck-ready pair:
     SRC = the minimized program, TGT = the planted variant's output on
     it.  `seqcheck <v>.src.wm <v>.tgt.wm` must exit 3. *)
  List.iter
    (fun (nm, hit) ->
      match hit with
      | Some ({ Fuzz.Campaign.shrunk = Some s; _ } as fi) ->
        (match Fuzz.Planted.of_string nm with
         | None -> ()
         | Some v ->
           let base = Filename.concat dir (reproducer_basename fi) in
           write_file (base ^ ".src.wm") (Lang.Stmt.to_string s ^ "\n");
           write_file (base ^ ".tgt.wm")
             (Lang.Stmt.to_string (Fuzz.Planted.apply v s) ^ "\n"))
      | _ -> ())
    r.Fuzz.Campaign.planted;
  (* real findings keep their (shrunk, when available) program *)
  List.iteri
    (fun i (fi : Fuzz.Campaign.finding) ->
      let p = Option.value fi.shrunk ~default:fi.program in
      write_file
        (Filename.concat dir
           (Printf.sprintf "finding-%02d-%s.wm" i (reproducer_basename fi)))
        (Lang.Stmt.to_string p ^ "\n"))
    r.Fuzz.Campaign.findings

let run seed max_execs jobs oracles planted no_shrink budget_ms max_states
    out keep_going backend coverage corpus_dir resume =
  let ( let* ) r f =
    match r with
    | Error msg ->
      Fmt.epr "seqfuzz: %s@." msg;
      Engine.Cliopts.usage_exit
    | Ok () -> f ()
  in
  let* () = Engine.Cliopts.validate ~jobs ~timeout_ms:budget_ms ~max_states () in
  let* () = Engine.Cliopts.validate_nonneg ~flag:"--max-execs" max_execs in
  let* () =
    Engine.Cliopts.validate_choice ~flag:"--backend"
      ~choices:Backends.Registry.names backend
  in
  let* () =
    if resume && corpus_dir = None then
      Error "--resume needs a --corpus DIR to resume from"
    else Ok ()
  in
  (
       (* Unlike seqcheck, an unbounded default is not viable here: the
          enumerated checks are exponential in the acquire count of
          generated programs.  A state budget keeps every check bounded
          and the run reproducible; pass --max-states to change it. *)
       let max_states = Some (Option.value max_states ~default:20_000) in
       let budget = Engine.Budget.spec ?timeout_ms:budget_ms ?max_states () in
       let oracles = if oracles = [] then Fuzz.Oracle.all else oracles in
       (* --backend retargets the hardware-envelope oracle; explicitly
          requested machines (--oracle baseline-hw:<m>) are kept as-is. *)
       let oracles =
         List.map
           (function
             | Fuzz.Oracle.Baseline_hw m when m = Fuzz.Oracle.default_hw ->
               Fuzz.Oracle.Baseline_hw backend
             | k -> k)
           oracles
       in
       let planted = if planted = [] then Fuzz.Planted.all else planted in
       let r =
         Fuzz.Campaign.run ~jobs ~budget ~oracles ~planted
           ~shrink:(not no_shrink) ~guided:coverage ?corpus_dir ~resume
           ~seed ~max_execs ()
       in
       print_string (Fuzz.Campaign.render r);
       Fmt.epr "-- %d unique execs in %.1f ms (jobs=%d, %.1f execs/s)@."
         r.Fuzz.Campaign.unique_execs r.Fuzz.Campaign.wall_ms jobs
         (Fuzz.Campaign.execs_per_s r);
       (try Option.iter (fun dir -> write_out dir r) out
        with Unix.Unix_error (e, _, arg) ->
          Fmt.epr "seqfuzz: %s: %s@." arg (Unix.error_message e);
          exit 1);
       let survived =
         List.exists (fun (_, hit) -> hit = None) r.Fuzz.Campaign.planted
       in
       if r.Fuzz.Campaign.findings <> [] || survived then 3
       else if r.Fuzz.Campaign.unknowns > 0 && not keep_going then 4
       else 0)

let seed =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N"
         ~doc:"Campaign seed; every report field except timing is a pure \
               function of (seed, flags).")

let max_execs =
  Arg.(value & opt int 200 & info [ "max-execs" ] ~docv:"N"
         ~doc:"Corpus size before dedup.")

let jobs =
  Arg.(value & opt int 1 & info [ "jobs"; "j" ]
         ~doc:"Worker domains for the oracle sweep.")

let oracles =
  Arg.(value & opt_all oracle_conv [] & info [ "oracle" ] ~docv:"NAME"
         ~doc:"Run only this differential oracle (repeatable; default: \
               all of pass-correct, analysis-sound, lint-agree, \
               baseline-env, baseline-hw).")

let planted =
  Arg.(value & opt_all variant_conv [] & info [ "planted" ] ~docv:"NAME"
         ~doc:"Check only this planted variant (repeatable; default: all).")

let no_shrink =
  Arg.(value & flag & info [ "no-shrink" ]
         ~doc:"Report original counterexamples without minimizing them.")

let budget_ms =
  Arg.(value & opt (some float) None & info [ "budget-ms" ] ~docv:"MS"
         ~doc:"Wall-clock budget per check (makes verdicts \
               machine-dependent; prefer --max-states for reproducible \
               runs).")

let max_states =
  Arg.(value & opt (some int) None & info [ "max-states" ] ~docv:"N"
         ~doc:"State budget per check (default 20000; exhausted checks \
               count as unknowns).")

let out =
  Arg.(value & opt (some string) None & info [ "out" ] ~docv:"DIR"
         ~doc:"Write report.json and minimized .wm reproducer pairs \
               (re-checkable with seqcheck) to this directory.")

let keep_going =
  Arg.(value & flag & info [ "keep-going" ]
         ~doc:"Exit 0 even when some checks were UNKNOWN (budget ran \
               out), as long as nothing failed.")

let backend =
  Arg.(value & opt string Fuzz.Oracle.default_hw
       & info [ "backend" ] ~docv:"NAME"
           ~doc:"Hardware machine the baseline-hw oracle cross-checks \
                 against (sc, catchfire, tso, armv8, ps; default tso).")

let coverage =
  Arg.(value & flag & info [ "coverage" ]
         ~doc:"Coverage-guided campaign: derive deterministic coverage \
               signals per program, keep a shrunk pool of \
               coverage-novel seeds, and bias mutation energy toward \
               recently-novel ones.  The report stays byte-identical \
               across --jobs.")

let corpus_dir =
  Arg.(value & opt (some string) None & info [ "corpus" ] ~docv:"DIR"
         ~doc:"Persist the coverage pool, counterexample reproducers \
               and swept fingerprints into this SEQC store (the seqd \
               cache format; repairable with seqd --fsck) at the end \
               of the run.  Implies coverage accounting.")

let resume =
  Arg.(value & flag & info [ "resume" ]
         ~doc:"Warm-start from the --corpus store: replay its pool and \
               reproducers first and skip every already-swept program \
               without running an oracle.")

let cmd =
  Cmd.v
    (Cmd.info "seqfuzz" ~version:"1.0"
       ~doc:"differential fuzzer for the SEQ toolchain (planted-bug \
             oracles, coverage-guided corpus, shrinking)")
    Term.(const run $ seed $ max_execs $ jobs $ oracles $ planted
          $ no_shrink $ budget_ms $ max_states $ out $ keep_going $ backend
          $ coverage $ corpus_dir $ resume)

let () = exit (Cmd.eval' cmd)
