(** seqlint — static race/UB linter for WHILE-language programs.

    Usage: seqlint FILE.wm ... — lints each program (threads separated by
    [|||]) with the permission/mode analyses and prints diagnostics:
    errors for possible racy non-atomic writes (UB) and mixed
    atomic/non-atomic access, warnings for possible racy non-atomic reads
    (undef), hints for store-introduction-unsafe points and for
    instructions an optimizer pass would rewrite or remove.

    [--corpus] lints every concurrent program of the built-in litmus
    catalog instead.  Exit code 0: no errors (warnings and hints are
    informational); 3: at least one error; 1: parse failure; 2 is
    reserved for usage errors, like every driver (see README). *)

open Cmdliner
open Lang

let read path = In_channel.with_open_text path In_channel.input_all

let lint_text ~label ~hints text =
  let threads = Parser.threads_of_string text in
  let diags = Optimizer.Lint.lint ~hints threads in
  let n = List.length threads in
  if diags = [] then Fmt.pr "%s: clean@." label
  else begin
    Fmt.pr "%s:@." label;
    List.iter
      (fun d -> Fmt.pr "  %a@." (Optimizer.Lint.pp_diag ~threads:n) d)
      diags
  end;
  Optimizer.Lint.has_errors diags

let run files corpus hints =
  try
    let targets =
      if corpus then
        List.map
          (fun (c : Litmus.Catalog.concurrent) ->
            (c.Litmus.Catalog.cname, c.Litmus.Catalog.threads))
          Litmus.Catalog.concurrent_programs
      else List.map (fun f -> (f, read f)) files
    in
    if targets = [] then begin
      Fmt.epr "error: no input files (or use --corpus)@.";
      1
    end
    else begin
      let errors =
        List.fold_left
          (fun acc (label, text) ->
            if lint_text ~label ~hints text then acc + 1 else acc)
          0 targets
      in
      if errors > 0 then 3 else 0
    end
  with
  | Parser.Error msg ->
    Fmt.epr "parse error: %s@." msg;
    1
  | Sys_error msg ->
    Fmt.epr "error: %s@." msg;
    1

let files =
  Arg.(value & pos_all file [] & info [] ~docv:"FILE"
         ~doc:"Programs to lint (threads separated by |||).")

let corpus =
  Arg.(value & flag & info [ "corpus" ]
         ~doc:"Lint every concurrent program of the built-in catalog.")

let hints =
  Arg.(value & opt bool true & info [ "hints" ] ~docv:"BOOL"
         ~doc:"Also emit optimizer-pass hints (dead stores, redundant \
               loads, dead assignments).")

let cmd =
  Cmd.v
    (Cmd.info "seqlint" ~version:"1.0"
       ~doc:"Static race/UB linter for SEQ (PLDI 2022)")
    Term.(const run $ files $ corpus $ hints)

let () = exit (Cmd.eval' cmd)
