(** seqlint — static race/UB linter for WHILE-language programs.

    Usage: seqlint FILE.wm ... — lints each program (threads separated by
    [|||]) with the permission/mode analyses and prints diagnostics:
    errors for possible racy non-atomic writes (UB) and mixed
    atomic/non-atomic access, warnings for possible racy non-atomic reads
    (undef), hints for store-introduction-unsafe points and for
    instructions an optimizer pass would rewrite or remove.

    [--corpus] lints every concurrent program of the built-in litmus
    catalog instead.  [--json] emits one machine-readable record for the
    whole run (schema [seqlint/1], deterministic field order) instead of
    the human rendering.  Exit code 0: no errors (warnings and hints are
    informational); 3: at least one error; 1: parse failure; 2 is
    reserved for usage errors, like every driver (see README). *)

open Cmdliner
open Lang

let read path = In_channel.with_open_text path In_channel.input_all

let severity_name = function
  | Optimizer.Lint.Error -> "error"
  | Optimizer.Lint.Warning -> "warning"
  | Optimizer.Lint.Hint -> "hint"

let diag_json (d : Optimizer.Lint.diag) : Service.Json.t =
  Service.Json.Obj
    [
      ("rule", Service.Json.String (Optimizer.Lint.rule_name d.rule));
      ("severity", Service.Json.String (severity_name d.sev));
      ("thread", Service.Json.Int d.thread);
      ("path", Service.Json.String (Analysis.Path.to_string d.path));
      ( "loc",
        match d.loc with
        | Some x -> Service.Json.String (Loc.name x)
        | None -> Service.Json.Null );
      ("message", Service.Json.String d.message);
    ]

let program_json ~label ~threads diags : Service.Json.t =
  Service.Json.Obj
    [
      ("program", Service.Json.String label);
      ("threads", Service.Json.Int threads);
      ("errors", Service.Json.Bool (Optimizer.Lint.has_errors diags));
      ("diags", Service.Json.List (List.map diag_json diags));
    ]

let lint_text ~label ~hints text =
  let threads = Parser.threads_of_string text in
  let diags = Optimizer.Lint.lint ~hints threads in
  let n = List.length threads in
  if diags = [] then Fmt.pr "%s: clean@." label
  else begin
    Fmt.pr "%s:@." label;
    List.iter
      (fun d -> Fmt.pr "  %a@." (Optimizer.Lint.pp_diag ~threads:n) d)
      diags
  end;
  Optimizer.Lint.has_errors diags

let run files corpus hints json =
  try
    let targets =
      if corpus then
        List.map
          (fun (c : Litmus.Catalog.concurrent) ->
            (c.Litmus.Catalog.cname, c.Litmus.Catalog.threads))
          Litmus.Catalog.concurrent_programs
      else List.map (fun f -> (f, read f)) files
    in
    if targets = [] then begin
      Fmt.epr "error: no input files (or use --corpus)@.";
      1
    end
    else if json then begin
      let records, errors =
        List.fold_left
          (fun (recs, errs) (label, text) ->
            let threads = Parser.threads_of_string text in
            let diags = Optimizer.Lint.lint ~hints threads in
            let n = List.length threads in
            ( program_json ~label ~threads:n diags :: recs,
              if Optimizer.Lint.has_errors diags then errs + 1 else errs ))
          ([], 0) targets
      in
      Service.Json.to_channel stdout
        (Service.Json.Obj
           [
             ("schema", Service.Json.String "seqlint/1");
             ("programs", Service.Json.List (List.rev records));
           ]);
      if errors > 0 then 3 else 0
    end
    else begin
      let errors =
        List.fold_left
          (fun acc (label, text) ->
            if lint_text ~label ~hints text then acc + 1 else acc)
          0 targets
      in
      if errors > 0 then 3 else 0
    end
  with
  | Parser.Error msg ->
    Fmt.epr "parse error: %s@." msg;
    1
  | Sys_error msg ->
    Fmt.epr "error: %s@." msg;
    1

let files =
  Arg.(value & pos_all file [] & info [] ~docv:"FILE"
         ~doc:"Programs to lint (threads separated by |||).")

let corpus =
  Arg.(value & flag & info [ "corpus" ]
         ~doc:"Lint every concurrent program of the built-in catalog.")

let hints =
  Arg.(value & opt bool true & info [ "hints" ] ~docv:"BOOL"
         ~doc:"Also emit optimizer-pass hints (dead stores, redundant \
               loads, dead assignments).")

let json =
  Arg.(value & flag & info [ "json" ]
         ~doc:"Emit one seqlint/1 JSON record for the whole run instead \
               of the human rendering.")

let cmd =
  Cmd.v
    (Cmd.info "seqlint" ~version:"1.0"
       ~doc:"Static race/UB linter for SEQ (PLDI 2022)")
    Term.(const run $ files $ corpus $ hints $ json)

let () = exit (Cmd.eval' cmd)
