(** seqcheck — decide SEQ behavioral refinement between two programs.

    Usage: seqcheck SRC.wm TGT.wm — checks whether TGT (weakly)
    behaviorally refines SRC over the finite domain (Def 2.4 / Def 3.3).
    Exit code 0: refines; 3: does not; 4: undecided (budget ran out).

    [--corpus] instead re-checks the whole built-in transformation corpus
    against its expected verdicts, swept in parallel ([--jobs N],
    engine-backed; see docs/ENGINE.md).  Exit 0: all verdicts match.

    [--timeout-ms]/[--max-states] bound each check; an exhausted budget
    yields UNKNOWN(reason) instead of an answer (docs/ROBUSTNESS.md).
    Corpus sweeps under a budget never abort: failed rows are reported as
    UNKNOWN and exit 4 unless [--keep-going].

    Mixed atomic/non-atomic access {e within} a program is detected
    statically up front (SEQ's well-formedness precondition) and reported
    as a diagnostic citing both conflicting instructions; the run-time
    [Mixed_access] exception remains only as a backstop.  A location
    whose mode class differs only between SRC and TGT is accepted with a
    note — the refinement check itself refutes such pairs (the target
    emits labels the source cannot).  [--lint] additionally prints
    the full static race/UB diagnostics for both programs (see seqlint).

    [--server ADDR] turns seqcheck into a thin client of a running seqd
    (ADDR is a Unix socket path or [tcp:HOST:PORT]): single checks are
    sent as one request, [--corpus] as one parallel batch over one
    connection, and each answer reports its serving tier
    ([computed]/[mem]/[disk]) next to the proof provenance.  In server
    mode [--retries N] bounds re-sends on connection failures and [Busy]
    answers (verdict requests are pure, so re-sending is safe); if the
    daemon still cannot be reached — it died mid-batch, say — the check
    is undecided: exit 4 with a diagnostic, never an uncaught protocol
    error.  Other exit codes are unchanged; out-of-range flags exit 2
    (see README). *)

open Cmdliner
open Lang

let read path = In_channel.with_open_text path In_channel.input_all

let budget_spec timeout_ms max_states =
  Engine.Budget.spec ?timeout_ms ?max_states ()

(* ---------------- client mode (--server ADDR) ---------------- *)

let exit_of_verdict ~keep_going : Service.Proto.verdict -> int = function
  | Refines_simple | Refines_advanced -> 0
  | Refuted -> 3
  | Unknown _ -> if keep_going then 0 else 4

(* Expected protocol verdict of a corpus row: [Refines_simple] when both
   notions hold, [Refines_advanced] when only Def 3.3 does, [Refuted]
   otherwise ((Sound, Unsound) cannot occur — simple implies advanced). *)
let expected_verdict (t : Litmus.Catalog.transformation) :
    Service.Proto.verdict =
  match t.simple, t.advanced with
  | Sound, _ -> Refines_simple
  | Unsound, Sound -> Refines_advanced
  | Unsound, Unsound -> Refuted

let corpus_summary (results : Service.Proto.check_result list) =
  let count p = List.length (List.filter p results) in
  let computed =
    count (fun r -> r.Service.Proto.tier = Service.Proto.Computed)
  in
  let of_origin o (r : Service.Proto.check_result) =
    r.tier = Service.Proto.Computed && r.origin = Some o
  in
  Fmt.pr
    "-- cache: computed=%d (static=%d, static-abs=%d, enumerated=%d) mem=%d \
     disk=%d unknown=%d@."
    computed
    (count (of_origin Service.Proto.Static))
    (count (of_origin Service.Proto.Static_abs))
    (count (of_origin Service.Proto.Enumerated))
    (count (fun r -> r.Service.Proto.tier = Service.Proto.Mem))
    (count (fun r -> r.Service.Proto.tier = Service.Proto.Disk))
    (count (fun r ->
         match r.Service.Proto.verdict with
         | Service.Proto.Unknown _ -> true
         | _ -> false))

let run_client addr backend src_path tgt_path values corpus timeout_ms
    max_states keep_going retries =
  let budget = { Service.Proto.timeout_ms; max_states } in
  let policy =
    { Service.Client.resilient_policy with attempts = retries + 1 }
  in
  Service.Client.with_connection ~policy addr (fun c ->
      if corpus then begin
        let entries = Litmus.Catalog.transformations in
        let checks =
          List.map
            (fun (t : Litmus.Catalog.transformation) ->
              { Service.Proto.src = t.src; tgt = t.tgt; values;
                fast_path = true; backend })
            entries
        in
        (* one connection, one batch: the server sweeps it in parallel *)
        let results, ms =
          Engine.Stats.timed (fun () -> Service.Client.batch ~budget c checks)
        in
        let rows = List.combine entries results in
        let mismatches = ref 0 and unknowns = ref 0 in
        List.iter
          (fun ((t : Litmus.Catalog.transformation),
                (r : Service.Proto.check_result)) ->
            let status =
              match r.verdict with
              | Service.Proto.Unknown _ ->
                incr unknowns;
                "unknown"
              | v when v = expected_verdict t -> "ok"
              | _ ->
                incr mismatches;
                "MISMATCH"
            in
            Fmt.pr "%-28s %-44s %s@." t.name
              (Service.Proto.check_result_to_string r)
              status)
          rows;
        Fmt.pr "-- %d checks in %.1f ms via %s@." (List.length rows) ms addr;
        corpus_summary results;
        if !mismatches > 0 then 3
        else if !unknowns > 0 && not keep_going then 4
        else 0
      end
      else
        match src_path, tgt_path with
        | None, _ | _, None ->
          Fmt.epr "error: SRC and TGT are required (or use --corpus)@.";
          1
        | Some src_path, Some tgt_path ->
          let r =
            Service.Client.check ~values ~backend ~budget c
              ~src:(read src_path) ~tgt:(read tgt_path) ()
          in
          Fmt.pr "%s@." (Service.Proto.check_result_to_string r);
          exit_of_verdict ~keep_going r.Service.Proto.verdict)

let run_corpus jobs spec retries keep_going =
  if Engine.Budget.spec_is_unlimited spec && retries = 0 then begin
    (* the exact historical path: byte-identical tables, raising sweep *)
    let rows, ms =
      Engine.Stats.timed (fun () -> Litmus.Matrix.e12_rows ~jobs ())
    in
    Fmt.pr "%s" (Litmus.Matrix.render_e12 ~stats:true rows);
    Fmt.pr "-- swept in %.1f ms (jobs=%d)@." ms jobs;
    if List.for_all Litmus.Matrix.e12_ok rows then 0 else 3
  end
  else begin
    let rows, ms =
      Engine.Stats.timed (fun () ->
          Litmus.Matrix.e12_rows_v ~jobs ~budget:spec ~retries ())
    in
    Fmt.pr "%s" (Litmus.Matrix.render_e12_v ~stats:true rows);
    Fmt.pr "-- swept in %.1f ms (jobs=%d)@." ms jobs;
    let mismatch =
      List.exists
        (fun (_, (o : _ Engine.Sweep.outcome)) ->
          match o.result with
          | Ok r -> not (Litmus.Matrix.e12_ok r)
          | Error _ -> false)
        rows
    in
    let unknown =
      List.exists (fun (_, o) -> not (Engine.Sweep.outcome_ok o)) rows
    in
    if mismatch then 3 else if unknown && not keep_going then 4 else 0
  end

exception Static_mixed

let run src_path tgt_path values advanced_only corpus jobs timeout_ms
    max_states keep_going retries lint backend server =
  let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e in
  match
    let* () =
      Engine.Cliopts.validate ~retries ~jobs ~timeout_ms ~max_states ()
    in
    Engine.Cliopts.validate_choice ~flag:"--backend"
      ~choices:(Service.Proto.default_backend :: Backends.Registry.names)
      backend
  with
  | Error msg ->
    Fmt.epr "seqcheck: %s@." msg;
    Engine.Cliopts.usage_exit
  | Ok () ->
  try
    match server with
    | Some addr -> (
      (* a daemon that dies mid-batch (or mid-handshake) leaves the
         check undecided, not erroneous: exit 4 with a diagnostic, never
         an uncaught Unix_error/Proto.Error escaping the sweep *)
      try
        run_client addr backend src_path tgt_path values corpus timeout_ms
          max_states keep_going retries
      with
      | Unix.Unix_error (e, _, arg) ->
        Fmt.epr
          "seqcheck: daemon at %s unreachable or died mid-request (%s%s)@."
          addr
          (Unix.error_message e)
          (if arg = "" then "" else ": " ^ arg);
        Fmt.epr "UNKNOWN(daemon lost after %d attempt(s))@." (retries + 1);
        4
      | Service.Proto.Error msg ->
        Fmt.epr "seqcheck: protocol failure talking to %s: %s@." addr msg;
        Fmt.epr "UNKNOWN(daemon lost after %d attempt(s))@." (retries + 1);
        4
      | Service.Client.Timeout ->
        Fmt.epr "seqcheck: request to %s timed out@." addr;
        Fmt.epr "UNKNOWN(daemon lost after %d attempt(s))@." (retries + 1);
        4)
    | None ->
    let spec = budget_spec timeout_ms max_states in
    if corpus then run_corpus jobs spec retries keep_going
    else
    match src_path, tgt_path with
    | None, _ | _, None ->
      Fmt.epr "error: SRC and TGT are required (or use --corpus)@.";
      1
    | Some src_path, Some tgt_path ->
    let src = Parser.stmt_of_string (read src_path) in
    let tgt = Parser.stmt_of_string (read tgt_path) in
    if backend <> Service.Proto.default_backend then begin
      (* a hardware backend: behavior-set inclusion under the named
         machine (mixed access is tolerated, as by PS_na) *)
      let (module M : Backends.Backend.MACHINE) =
        Option.get (Backends.Registry.find backend)
      in
      let values = List.map (fun n -> Value.Int n) values in
      let budget = Engine.Budget.start spec in
      match
        let r_src = M.explore ~values ~budget [ src ] in
        let r_tgt = M.explore ~values ~budget [ tgt ] in
        (r_src, r_tgt)
      with
      | exception Engine.Budget.Exhausted r ->
        Fmt.pr "UNKNOWN(%s)@." (Engine.Budget.reason_to_string r);
        if keep_going then 0 else 4
      | r_src, r_tgt ->
        if
          r_src.Backends.Backend.truncated
          || r_tgt.Backends.Backend.truncated
        then begin
          Fmt.pr "UNKNOWN(%s: truncated)@." M.name;
          if keep_going then 0 else 4
        end
        else if Backends.Backend.refines ~src:r_src ~tgt:r_tgt then begin
          Fmt.pr "REFINES (behavior inclusion under %s)@." M.name;
          0
        end
        else begin
          Fmt.pr "DOES NOT REFINE (under %s)@." M.name;
          3
        end
    end
    else begin
    (* static well-formedness pre-check: mixing within a single program
       is what [Config.check_no_mixing] would reject at run time — catch
       it up front with sites.  A location whose mode class differs only
       {e between} SRC and TGT (e.g. an na→rlx strengthening) is legal
       input: the domain classifies it non-atomic and the refinement
       check refutes the pair, so it is only worth a note. *)
    (match Analysis.Modes.per_thread_conflicts [ src; tgt ] with
     | [] -> ()
     | conflicts ->
       List.iter
         (fun c ->
           Fmt.epr "error: %a@."
             (Analysis.Modes.pp_conflict ~src:[ src; tgt ])
             c)
         conflicts;
       Fmt.epr "(thread 0 = SRC, thread 1 = TGT; SEQ rejects mixed access)@.";
       raise Static_mixed);
    (match Analysis.Modes.combined_conflicts [ src; tgt ] with
     | [] -> ()
     | conflicts ->
       List.iter
         (fun (c : Analysis.Modes.conflict) ->
           Fmt.epr
             "note: %s changes access mode between SRC and TGT (treated \
              as non-atomic)@."
             (Loc.name c.Analysis.Modes.cloc))
         conflicts);
    let lint_errors =
      (* Same rules, same severities, same exit contract as seqlint:
         error-severity diagnostics force exit 3 even when the
         refinement holds, so `seqcheck --lint` and `seqlint` never
         disagree on a program pair (CLI-tested). *)
      lint
      && List.fold_left
           (fun acc (label, s) ->
             match Optimizer.Lint.lint [ s ] with
             | [] ->
               Fmt.epr "lint (%s): clean@." label;
               acc
             | diags ->
               Fmt.epr "lint (%s):@." label;
               List.iter
                 (fun d ->
                   Fmt.epr "  %a@." (Optimizer.Lint.pp_diag ~threads:1) d)
                 diags;
               acc || Optimizer.Lint.has_errors diags)
           false
           [ ("src", src); ("tgt", tgt) ]
    in
    let with_lint code =
      if code = 0 && lint_errors then begin
        Fmt.pr "(lint errors: exit 3, matching seqlint)@.";
        3
      end
      else code
    in
    let values = List.map (fun n -> Value.Int n) values in
    let d = Domain.of_stmts ~values [ src; tgt ] in
    Fmt.epr "domain: %a@." Domain.pp d;
    let budget = Engine.Budget.start spec in
    (match
       let simple =
         if advanced_only then false
         else Seq_model.Refine.check ~budget d ~src ~tgt
       in
       if simple then `Simple
       else if Seq_model.Advanced.check ~budget d ~src ~tgt then `Advanced
       else `Refuted
     with
     | `Simple ->
       Fmt.pr "REFINES (simple notion, Def 2.4)@.";
       with_lint 0
     | `Advanced ->
       Fmt.pr "REFINES (advanced notion, Def 3.3)@.";
       with_lint 0
     | `Refuted ->
       Fmt.pr "DOES NOT REFINE@.";
       let roots =
         Seq_model.Refine.initial_pairs d ~src:(Prog.init src)
           ~tgt:(Prog.init tgt)
       in
       (match Seq_model.Refine.find_counterexample d roots with
        | Some cex -> Fmt.pr "%a@." Seq_model.Refine.pp_counterexample cex
        | None ->
          Fmt.pr
            "(no simple-notion counterexample: the failure is specific to the            advanced notion)@.");
       3
     | exception Engine.Budget.Exhausted r ->
       Fmt.pr "UNKNOWN(%s)@." (Engine.Budget.reason_to_string r);
       if keep_going then 0 else 4)
    end
  with
  | Parser.Error msg ->
    Fmt.epr "parse error: %s@." msg;
    1
  | Static_mixed -> 1
  | Seq_model.Config.Mixed_access x ->
    (* backstop: the static pre-check above should have caught this *)
    Fmt.epr "error: location %s is accessed both atomically and non-atomically@."
      (Loc.name x);
    1
  | Unix.Unix_error (e, _, arg) ->
    Fmt.epr "error: server %s: %s@." arg (Unix.error_message e);
    1
  | Service.Proto.Error msg ->
    Fmt.epr "protocol error: %s@." msg;
    1
  | Failure msg ->
    Fmt.epr "error: %s@." msg;
    1

let src = Arg.(value & pos 0 (some file) None & info [] ~docv:"SRC")
let tgt = Arg.(value & pos 1 (some file) None & info [] ~docv:"TGT")

let values =
  Arg.(value & opt (list int) [ 0; 1; 2 ] & info [ "values" ] ~docv:"INTS"
         ~doc:"Defined values of the finite checking domain.")

let advanced_only =
  Arg.(value & flag & info [ "advanced-only" ]
         ~doc:"Skip the simple-notion check.")

let corpus =
  Arg.(value & flag & info [ "corpus" ]
         ~doc:"Re-check the built-in transformation corpus (parallel).")

let jobs =
  Arg.(value & opt int 1 & info [ "jobs"; "j" ]
         ~doc:"Worker domains for the --corpus sweep.")

let timeout_ms =
  Arg.(value & opt (some float) None & info [ "timeout-ms" ] ~docv:"MS"
         ~doc:"Wall-clock budget per check; exhaustion yields UNKNOWN.")

let max_states =
  Arg.(value & opt (some int) None & info [ "max-states" ] ~docv:"N"
         ~doc:"Simulation-pair budget per check; exhaustion yields UNKNOWN.")

let keep_going =
  Arg.(value & flag & info [ "keep-going" ]
         ~doc:"Exit 0 even when some results are UNKNOWN (budget ran out).")

let retries =
  Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N"
         ~doc:"Retries per corpus task on transient failures (deadline); \
               with --server, re-sends per request on connection failures \
               and Busy answers (seeded backoff).")

let lint =
  Arg.(value & flag & info [ "lint" ]
         ~doc:"Print static race/UB diagnostics for both programs before                checking (see seqlint).")

let backend =
  Arg.(value & opt string "seq" & info [ "backend" ] ~docv:"NAME"
         ~doc:"Memory model the check runs under: seq (the default \
               SEQ sequential refinement) or a hardware backend (sc, \
               catchfire, tso, armv8, ps) meaning behavior-set \
               inclusion under that machine.")

let server =
  Arg.(value & opt (some string) None & info [ "server" ] ~docv:"ADDR"
         ~doc:"Send the check(s) to a running seqd at this address (a \
               Unix socket path or tcp:HOST:PORT) instead of checking \
               locally; --corpus goes over one connection as one \
               parallel batch.")

let cmd =
  Cmd.v
    (Cmd.info "seqcheck" ~version:"1.0"
       ~doc:"SEQ behavioral-refinement checker (PLDI 2022)")
    Term.(const run $ src $ tgt $ values $ advanced_only $ corpus $ jobs
          $ timeout_ms $ max_states $ keep_going $ retries $ lint $ backend
          $ server)

let () = exit (Cmd.eval' cmd)
