(** seqcheck — decide SEQ behavioral refinement between two programs.

    Usage: seqcheck SRC.wm TGT.wm — checks whether TGT (weakly)
    behaviorally refines SRC over the finite domain (Def 2.4 / Def 3.3).
    Exit code 0: refines; 3: does not.

    [--corpus] instead re-checks the whole built-in transformation corpus
    against its expected verdicts, swept in parallel ([--jobs N],
    engine-backed; see docs/ENGINE.md).  Exit 0: all verdicts match. *)

open Cmdliner
open Lang

let read path = In_channel.with_open_text path In_channel.input_all

let run_corpus jobs =
  let rows, ms =
    Engine.Stats.timed (fun () -> Litmus.Matrix.e12_rows ~jobs ())
  in
  Fmt.pr "%s" (Litmus.Matrix.render_e12 ~stats:true rows);
  Fmt.pr "-- swept in %.1f ms (jobs=%d)@." ms jobs;
  if List.for_all Litmus.Matrix.e12_ok rows then 0 else 3

let run src_path tgt_path values advanced_only corpus jobs =
  try
    if corpus then run_corpus jobs
    else
    match src_path, tgt_path with
    | None, _ | _, None ->
      Fmt.epr "error: SRC and TGT are required (or use --corpus)@.";
      1
    | Some src_path, Some tgt_path ->
    let src = Parser.stmt_of_string (read src_path) in
    let tgt = Parser.stmt_of_string (read tgt_path) in
    let values = List.map (fun n -> Value.Int n) values in
    let d = Domain.of_stmts ~values [ src; tgt ] in
    Fmt.epr "domain: %a@." Domain.pp d;
    let simple =
      if advanced_only then false else Seq_model.Refine.check d ~src ~tgt
    in
    let advanced =
      if simple then true else Seq_model.Advanced.check d ~src ~tgt
    in
    if simple then Fmt.pr "REFINES (simple notion, Def 2.4)@."
    else if advanced then Fmt.pr "REFINES (advanced notion, Def 3.3)@."
    else begin
      Fmt.pr "DOES NOT REFINE@.";
      let roots =
        Seq_model.Refine.initial_pairs d ~src:(Prog.init src)
          ~tgt:(Prog.init tgt)
      in
      match Seq_model.Refine.find_counterexample d roots with
      | Some cex -> Fmt.pr "%a@." Seq_model.Refine.pp_counterexample cex
      | None ->
        Fmt.pr
          "(no simple-notion counterexample: the failure is specific to the            advanced notion)@."
    end;
    if advanced then 0 else 3
  with
  | Parser.Error msg ->
    Fmt.epr "parse error: %s@." msg;
    1
  | Seq_model.Config.Mixed_access x ->
    Fmt.epr "error: location %s is accessed both atomically and non-atomically@."
      (Loc.name x);
    1

let src = Arg.(value & pos 0 (some file) None & info [] ~docv:"SRC")
let tgt = Arg.(value & pos 1 (some file) None & info [] ~docv:"TGT")

let values =
  Arg.(value & opt (list int) [ 0; 1; 2 ] & info [ "values" ] ~docv:"INTS"
         ~doc:"Defined values of the finite checking domain.")

let advanced_only =
  Arg.(value & flag & info [ "advanced-only" ]
         ~doc:"Skip the simple-notion check.")

let corpus =
  Arg.(value & flag & info [ "corpus" ]
         ~doc:"Re-check the built-in transformation corpus (parallel).")

let jobs =
  Arg.(value & opt int 1 & info [ "jobs"; "j" ]
         ~doc:"Worker domains for the --corpus sweep.")

let cmd =
  Cmd.v
    (Cmd.info "seqcheck" ~version:"1.0"
       ~doc:"SEQ behavioral-refinement checker (PLDI 2022)")
    Term.(const run $ src $ tgt $ values $ advanced_only $ corpus $ jobs)

let () = exit (Cmd.eval' cmd)
