(** seqd — the persistent refinement-check service.

    Runs a long-lived daemon on a Unix-domain socket, accepting
    refinement / lint / optimize / litmus requests over the versioned
    length-prefixed protocol (docs/SERVICE.md) and answering from a
    two-tier content-addressed result cache: an in-memory LRU in front
    of an on-disk store ([--cache-dir]).  Batch requests are swept in
    parallel over [--jobs] worker domains; every other request is served
    one at a time, which is what makes the SIGINT/SIGTERM drain trivial:
    the in-flight request completes, its response is flushed, and the
    socket is unlinked before exit.

    Clients: [seqcheck --server PATH] (single checks and the corpus as
    one batch), or any program speaking the protocol via
    [Service.Client].  Exit 0 after a clean drain; 2 on bad flags. *)

open Cmdliner

let run socket cache_dir mem_capacity jobs timeout_ms max_states =
  match
    let ( let* ) = Result.bind in
    let* () = Engine.Cliopts.validate ~jobs ~timeout_ms ~max_states () in
    Engine.Cliopts.validate_pos ~flag:"--mem-capacity" mem_capacity
  with
  | Error msg ->
    Fmt.epr "seqd: %s@." msg;
    Engine.Cliopts.usage_exit
  | Ok () ->
    let config =
      {
        Service.Server.socket_path = socket;
        cache_dir;
        mem_capacity;
        jobs;
        default_budget = Engine.Budget.spec ?timeout_ms ?max_states ();
      }
    in
    Fmt.epr "seqd: listening on %s (jobs=%d, cache=%s)@." socket jobs
      (match cache_dir with Some d -> d | None -> "memory-only");
    Service.Server.run config;
    Fmt.epr "seqd: drained, bye@.";
    0

let socket =
  Arg.(value & opt string "/tmp/seqd.sock" & info [ "socket" ] ~docv:"PATH"
         ~doc:"Unix-domain socket to listen on.")

let cache_dir =
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR"
         ~doc:"On-disk result store (created if absent); omit for a \
               memory-only cache.")

let mem_capacity =
  Arg.(value & opt int 4096 & info [ "mem-capacity" ] ~docv:"N"
         ~doc:"In-memory LRU capacity (entries).")

let jobs =
  Arg.(value & opt int 1 & info [ "jobs"; "j" ]
         ~doc:"Worker domains for batch sweeps.")

let timeout_ms =
  Arg.(value & opt (some float) None & info [ "timeout-ms" ] ~docv:"MS"
         ~doc:"Default wall-clock budget per request (client budgets \
               override field-wise).")

let max_states =
  Arg.(value & opt (some int) None & info [ "max-states" ] ~docv:"N"
         ~doc:"Default state budget per request (client budgets override \
               field-wise).")

let cmd =
  Cmd.v
    (Cmd.info "seqd" ~version:"1.0"
       ~doc:"Persistent SEQ refinement-check service with a \
             content-addressed result cache")
    Term.(const run $ socket $ cache_dir $ mem_capacity $ jobs $ timeout_ms
          $ max_states)

let () = exit (Cmd.eval' cmd)
