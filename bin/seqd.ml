(** seqd — the persistent refinement-check service.

    Runs a long-lived daemon on a Unix-domain socket (and optionally a
    TCP port, [--tcp HOST:PORT]), accepting refinement / lint /
    optimize / litmus requests over the versioned length-prefixed
    protocol (docs/SERVICE.md) and answering from a two-tier
    content-addressed result cache: an in-memory LRU in front of an
    on-disk store ([--cache-dir]).  Request evaluation is dispatched
    onto [--jobs] worker domains, so many clients make progress at
    once; at most [--max-inflight] evaluations run concurrently and
    excess requests are answered [Busy] (clients back off and retry).
    On SIGINT/SIGTERM the daemon drains: in-flight evaluations finish,
    their responses are flushed, and the socket is unlinked before
    exit.

    [--fsck] instead scans the on-disk store: entries failing
    magic/version/length/MD5 validation are pruned and orphan temp
    files (a kill mid-write) removed.  Exit 0 if the store was already
    clean, 1 if anything was repaired.

    Clients: [seqcheck --server PATH|tcp:HOST:PORT] (single checks and
    the corpus as one batch), or any program speaking the protocol via
    [Service.Client].  Exit 0 after a clean drain; 2 on bad flags. *)

open Cmdliner

let run_fsck cache_dir =
  match cache_dir with
  | None ->
    Fmt.epr "seqd: --fsck requires --cache-dir@.";
    Engine.Cliopts.usage_exit
  | Some dir ->
    let r = Service.Cache.fsck ~dir in
    Fmt.pr
      "fsck %s: scanned=%d valid=%d pruned=%d orphan-tmp=%d%s@." dir
      r.Service.Cache.scanned r.Service.Cache.valid r.Service.Cache.pruned
      r.Service.Cache.orphan_tmp
      (if r.Service.Cache.version_reset then " (foreign VERSION: store cleared)"
       else "");
    if Service.Cache.fsck_clean r then 0 else 1

let run socket tcp cache_dir mem_capacity jobs max_inflight timeout_ms
    max_states fsck =
  if fsck then run_fsck cache_dir
  else
    match
      let ( let* ) = Result.bind in
      let* () = Engine.Cliopts.validate ~jobs ~timeout_ms ~max_states () in
      let* () = Engine.Cliopts.validate_pos ~flag:"--mem-capacity" mem_capacity in
      let* () = Engine.Cliopts.validate_pos ~flag:"--max-inflight" max_inflight in
      match tcp with
      | None -> Ok None
      | Some hp -> (
        match Service.Addr.parse_hostport hp with
        | Service.Addr.Tcp (host, port) -> Ok (Some (host, port))
        | _ -> assert false
        | exception Failure msg -> Error msg)
    with
    | Error msg ->
      Fmt.epr "seqd: %s@." msg;
      Engine.Cliopts.usage_exit
    | Ok tcp ->
      let config =
        {
          Service.Server.socket_path = socket;
          tcp;
          cache_dir;
          mem_capacity;
          jobs;
          max_inflight;
          default_budget = Engine.Budget.spec ?timeout_ms ?max_states ();
        }
      in
      Fmt.epr "seqd: listening on %s%s (jobs=%d, max-inflight=%d, cache=%s)@."
        socket
        (match tcp with
         | Some (h, p) -> Printf.sprintf " and tcp:%s:%d" h p
         | None -> "")
        jobs max_inflight
        (match cache_dir with Some d -> d | None -> "memory-only");
      Service.Server.run config;
      Fmt.epr "seqd: drained, bye@.";
      0

let socket =
  Arg.(value & opt string "/tmp/seqd.sock" & info [ "socket" ] ~docv:"PATH"
         ~doc:"Unix-domain socket to listen on.")

let tcp =
  Arg.(value & opt (some string) None & info [ "tcp" ] ~docv:"HOST:PORT"
         ~doc:"Also listen on this TCP address (same protocol; clients \
               connect with tcp:HOST:PORT).")

let cache_dir =
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR"
         ~doc:"On-disk result store (created if absent); omit for a \
               memory-only cache.")

let mem_capacity =
  Arg.(value & opt int 4096 & info [ "mem-capacity" ] ~docv:"N"
         ~doc:"In-memory LRU capacity (entries).")

let jobs =
  Arg.(value & opt int 1 & info [ "jobs"; "j" ]
         ~doc:"Worker domains evaluating requests (and batch sweeps).")

let max_inflight =
  Arg.(value & opt int 8 & info [ "max-inflight" ] ~docv:"N"
         ~doc:"Admission gate: evaluations in flight before excess \
               requests are answered Busy.")

let timeout_ms =
  Arg.(value & opt (some float) None & info [ "timeout-ms" ] ~docv:"MS"
         ~doc:"Default wall-clock budget per request (client budgets \
               override field-wise).")

let max_states =
  Arg.(value & opt (some int) None & info [ "max-states" ] ~docv:"N"
         ~doc:"Default state budget per request (client budgets override \
               field-wise).")

let fsck =
  Arg.(value & flag & info [ "fsck" ]
         ~doc:"Scan the on-disk store ($(b,--cache-dir)), prune corrupt \
               entries and orphan temp files, then exit (0 = clean, \
               1 = repaired).")

let cmd =
  Cmd.v
    (Cmd.info "seqd" ~version:"1.0"
       ~doc:"Persistent SEQ refinement-check service with a \
             content-addressed result cache")
    Term.(const run $ socket $ tcp $ cache_dir $ mem_capacity $ jobs
          $ max_inflight $ timeout_ms $ max_states $ fsck)

let () = exit (Cmd.eval' cmd)
