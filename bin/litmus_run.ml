(** litmus_run — explore all PS_na behaviors of a concurrent program.

    The input is a WHILE program with threads separated by [|||]; the tool
    prints the exhaustively explored behavior set (bounded promises), and
    optionally the SC / catch-fire baselines and the DRF report.
    [--all] instead sweeps the whole built-in catalog in parallel
    ([--jobs N], engine-backed; see docs/ENGINE.md). *)

open Cmdliner
open Lang

let read_input = function
  | None | Some "-" -> In_channel.input_all In_channel.stdin
  | Some path -> In_channel.with_open_text path In_channel.input_all

let run_all params jobs =
  let rows, ms =
    Engine.Stats.timed (fun () -> Litmus.Matrix.e4_rows ~jobs ~params ())
  in
  Fmt.pr "%s" (Litmus.Matrix.render_e4 ~stats:true rows);
  Fmt.pr "-- swept in %.1f ms (jobs=%d)@." ms jobs;
  if List.exists (fun (r : Litmus.Matrix.e4_row) -> r.truncated) rows then 3
  else 0

let run input promises batch max_states compare_baselines named all jobs =
  try
    let params =
      {
        Promising.Thread.default_params with
        promise_budget = promises;
        batch_bound = batch;
        max_states;
      }
    in
    if all then run_all params jobs
    else
    let text =
      match named with
      | Some n ->
        (match
           List.find_opt
             (fun c -> c.Litmus.Catalog.cname = n)
             Litmus.Catalog.concurrent_programs
         with
         | Some c -> c.Litmus.Catalog.threads
         | None ->
           failwith
             (Printf.sprintf "unknown litmus %S; available: %s" n
                (String.concat ", "
                   (List.map
                      (fun c -> c.Litmus.Catalog.cname)
                      Litmus.Catalog.concurrent_programs))))
      | None -> read_input input
    in
    let progs = Parser.threads_of_string text in
    let r = Promising.Machine.explore ~params progs in
    Fmt.pr "PS_na behaviors (%d states%s%s):@.  %a@." r.Promising.Machine.states
      (if r.Promising.Machine.truncated then ", TRUNCATED" else "")
      (if r.Promising.Machine.races then ", races observed" else "")
      Promising.Machine.pp_behaviors r.Promising.Machine.behaviors;
    if compare_baselines then begin
      let sc = Baselines.Sc.explore progs in
      Fmt.pr "SC behaviors (%d states%s):@.  %a@." sc.Baselines.Sc.states
        (if sc.Baselines.Sc.races then ", races" else "")
        Promising.Machine.pp_behaviors sc.Baselines.Sc.behaviors;
      let cf = Baselines.Catchfire.explore progs in
      Fmt.pr "catch-fire: %s@."
        (if cf.Baselines.Catchfire.catches_fire then "UB (data race)"
         else "race-free")
    end;
    0
  with
  | Parser.Error msg | Failure msg ->
    Fmt.epr "error: %s@." msg;
    1

let input = Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE")

let promises =
  Arg.(value & opt int 1 & info [ "promises" ] ~doc:"Promise-step budget per thread.")

let batch =
  Arg.(value & opt int 1 & info [ "batch" ]
         ~doc:"Extra-message budget per non-atomic write.")

let max_states =
  Arg.(value & opt int 200_000 & info [ "max-states" ] ~doc:"State budget.")

let compare_baselines =
  Arg.(value & flag & info [ "baselines" ]
         ~doc:"Also print SC and catch-fire baselines.")

let named =
  Arg.(value & opt (some string) None & info [ "name" ]
         ~doc:"Run a named litmus test from the built-in catalog.")

let all =
  Arg.(value & flag & info [ "all" ]
         ~doc:"Sweep every litmus test of the built-in catalog (parallel).")

let jobs =
  Arg.(value & opt int 1 & info [ "jobs"; "j" ]
         ~doc:"Worker domains for the --all sweep.")

let cmd =
  Cmd.v
    (Cmd.info "litmus_run" ~version:"1.0"
       ~doc:"PS_na litmus-test explorer (PLDI 2022)")
    Term.(const run $ input $ promises $ batch $ max_states $ compare_baselines $ named $ all $ jobs)

let () = exit (Cmd.eval' cmd)
