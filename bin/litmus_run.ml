(** litmus_run — explore all PS_na behaviors of a concurrent program.

    The input is a WHILE program with threads separated by [|||]; the tool
    prints the exhaustively explored behavior set (bounded promises), and
    optionally the SC / catch-fire baselines and the DRF report.
    [--all] instead sweeps the whole built-in catalog in parallel
    ([--jobs N], engine-backed; see docs/ENGINE.md).

    [--timeout-ms] bounds each exploration with a cooperative wall-clock
    budget (the existing [--max-states] remains the explorer's truncation
    bound); an exhausted budget yields an UNKNOWN(reason) row instead of
    an answer.  [--inject-faults N] (with [--inject-seed S]) makes N
    deterministically chosen sweep tasks raise, exercising the supervised
    sweep's quarantine path (docs/ROBUSTNESS.md).  Exit 0: clean; 3:
    truncated; 4: some rows UNKNOWN (suppressed by [--keep-going]). *)

open Cmdliner
open Lang

let read_input = function
  | None | Some "-" -> In_channel.input_all In_channel.stdin
  | Some path -> In_channel.with_open_text path In_channel.input_all

(* The E15 differential grid: every grid litmus program under every
   backend, plus the pass-soundness grid.  Tables are rendered with
   [stats:false] so stdout is byte-identical across runs and [--jobs]
   settings (the CI determinism step diffs them); timing goes to
   stderr. *)
let run_grid jobs spec retries faults keep_going =
  let plain =
    Engine.Budget.spec_is_unlimited spec && retries = 0
    && faults == Engine.Faults.none
  in
  let out, truncated, unknown, mismatch =
    if plain then begin
      let rows, ms =
        Engine.Stats.timed (fun () -> Litmus.Matrix.e15_rows ~jobs ())
      in
      let prows, pms =
        Engine.Stats.timed (fun () -> Litmus.Matrix.e15p_rows ~jobs ())
      in
      Fmt.epr "-- grid swept in %.1f ms, pass grid in %.1f ms (jobs=%d)@." ms
        pms jobs;
      ( Litmus.Matrix.render_e15 rows ^ "\n" ^ Litmus.Matrix.render_e15p prows,
        List.exists (fun (r : Litmus.Matrix.e15_row) -> r.truncated) rows
        || List.exists (fun (r : Litmus.Matrix.e15p_row) -> r.truncated) prows,
        false,
        List.exists (fun r -> not (Litmus.Matrix.e15_ok r)) rows )
    end
    else begin
      let rows, ms =
        Engine.Stats.timed (fun () ->
            Litmus.Matrix.e15_rows_v ~jobs ~budget:spec ~retries ~faults ())
      in
      let prows, pms =
        Engine.Stats.timed (fun () ->
            Litmus.Matrix.e15p_rows_v ~jobs ~budget:spec ~retries ~faults ())
      in
      Fmt.epr "-- grid swept in %.1f ms, pass grid in %.1f ms (jobs=%d)@." ms
        pms jobs;
      let oks l =
        List.filter_map
          (fun (_, (o : _ Engine.Sweep.outcome)) ->
            match o.result with Ok r -> Some r | Error _ -> None)
          l
      in
      let ok_rows = oks rows and ok_prows = oks prows in
      ( Litmus.Matrix.render_e15_v rows ^ "\n"
        ^ Litmus.Matrix.render_e15p_v prows,
        List.exists (fun (r : Litmus.Matrix.e15_row) -> r.truncated) ok_rows
        || List.exists
             (fun (r : Litmus.Matrix.e15p_row) -> r.truncated)
             ok_prows,
        List.exists (fun (_, o) -> not (Engine.Sweep.outcome_ok o)) rows
        || List.exists (fun (_, o) -> not (Engine.Sweep.outcome_ok o)) prows,
        List.exists (fun r -> not (Litmus.Matrix.e15_ok r)) ok_rows )
    end
  in
  Fmt.pr "%s" out;
  if mismatch || truncated then 3
  else if unknown && not keep_going then 4
  else 0

let run_all params jobs spec retries faults keep_going =
  if
    Engine.Budget.spec_is_unlimited spec && retries = 0
    && faults == Engine.Faults.none
  then begin
    (* the exact historical path: byte-identical tables, raising sweep *)
    let rows, ms =
      Engine.Stats.timed (fun () -> Litmus.Matrix.e4_rows ~jobs ~params ())
    in
    Fmt.pr "%s" (Litmus.Matrix.render_e4 ~stats:true rows);
    Fmt.pr "-- swept in %.1f ms (jobs=%d)@." ms jobs;
    if List.exists (fun (r : Litmus.Matrix.e4_row) -> r.truncated) rows then 3
    else 0
  end
  else begin
    let rows, ms =
      Engine.Stats.timed (fun () ->
          Litmus.Matrix.e4_rows_v ~jobs ~params ~budget:spec ~retries ~faults
            ())
    in
    Fmt.pr "%s" (Litmus.Matrix.render_e4_v ~stats:true rows);
    Fmt.pr "-- swept in %.1f ms (jobs=%d)@." ms jobs;
    let truncated =
      List.exists
        (fun (_, (o : _ Engine.Sweep.outcome)) ->
          match o.result with
          | Ok (r : Litmus.Matrix.e4_row) -> r.truncated
          | Error _ -> false)
        rows
    in
    let unknown =
      List.exists (fun (_, o) -> not (Engine.Sweep.outcome_ok o)) rows
    in
    if truncated then 3 else if unknown && not keep_going then 4 else 0
  end

let run input promises batch max_states compare_baselines named all grid
    backend jobs timeout_ms keep_going retries inject_faults inject_seed =
  let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e in
  match
    let* () =
      Engine.Cliopts.validate ~retries ~inject_faults ~jobs ~timeout_ms
        ~max_states:(Some max_states) ()
    in
    Engine.Cliopts.validate_choice ~flag:"--backend"
      ~choices:Backends.Registry.names backend
  with
  | Error msg ->
    Fmt.epr "litmus_run: %s@." msg;
    Engine.Cliopts.usage_exit
  | Ok () ->
  try
    let params =
      {
        Promising.Thread.default_params with
        promise_budget = promises;
        batch_bound = batch;
        max_states;
      }
    in
    let spec = Engine.Budget.spec ?timeout_ms () in
    let faults =
      if inject_faults = 0 then Engine.Faults.none
      else
        Engine.Faults.seeded ~seed:inject_seed
          ~tasks:(List.length Litmus.Catalog.concurrent_programs)
          ~faulty:inject_faults ()
    in
    if grid then run_grid jobs spec retries faults keep_going
    else if all then run_all params jobs spec retries faults keep_going
    else
    let text =
      match named with
      | Some n ->
        (match
           List.find_opt
             (fun c -> c.Litmus.Catalog.cname = n)
             Litmus.Catalog.concurrent_programs
         with
         | Some c -> c.Litmus.Catalog.threads
         | None ->
           failwith
             (Printf.sprintf "unknown litmus %S; available: %s" n
                (String.concat ", "
                   (List.map
                      (fun c -> c.Litmus.Catalog.cname)
                      Litmus.Catalog.concurrent_programs))))
      | None -> read_input input
    in
    let progs = Parser.threads_of_string text in
    (* static mixed-access check: PS_na tolerates mixing, so only warn —
       but warn up front, citing both instructions, instead of relying on
       any run-time backstop *)
    List.iter
      (fun c ->
        Fmt.epr
          "warning: mixed access (PS_na tolerates it; SEQ would reject): %a@."
          (Analysis.Modes.pp_conflict ~src:progs) c)
      (Analysis.Modes.combined_conflicts progs);
    let budget = Engine.Budget.start spec in
    (if backend = "ps" then
       match Promising.Machine.explore ~params ~budget progs with
       | exception Engine.Budget.Exhausted reason ->
         Fmt.pr "UNKNOWN(%s)@." (Engine.Budget.reason_to_string reason);
         raise Exit
       | r ->
         Fmt.pr "PS_na behaviors (%d states%s%s):@.  %a@."
           r.Promising.Machine.states
           (if r.Promising.Machine.truncated then ", TRUNCATED" else "")
           (if r.Promising.Machine.races then ", races observed" else "")
           Promising.Machine.pp_behaviors r.Promising.Machine.behaviors
     else
       let (module M : Backends.Backend.MACHINE) =
         Option.get (Backends.Registry.find backend)
       in
       match M.explore ~max_states ~budget progs with
       | exception Engine.Budget.Exhausted reason ->
         Fmt.pr "UNKNOWN(%s)@." (Engine.Budget.reason_to_string reason);
         raise Exit
       | r ->
         Fmt.pr "%s behaviors (%d states%s%s):@.  %a@." M.name
           r.Backends.Backend.states
           (if r.Backends.Backend.truncated then ", TRUNCATED" else "")
           (if r.Backends.Backend.races then ", races observed" else "")
           Promising.Machine.pp_behaviors r.Backends.Backend.behaviors);
    if compare_baselines then begin
      let sc = Baselines.Sc.explore progs in
      Fmt.pr "SC behaviors (%d states%s):@.  %a@." sc.Baselines.Sc.states
        (if sc.Baselines.Sc.races then ", races" else "")
        Promising.Machine.pp_behaviors sc.Baselines.Sc.behaviors;
      let cf = Baselines.Catchfire.explore progs in
      Fmt.pr "catch-fire: %s@."
        (if cf.Baselines.Catchfire.catches_fire then "UB (data race)"
         else "race-free")
    end;
    0
  with
  | Exit -> if keep_going then 0 else 4
  | Parser.Error msg | Failure msg ->
    Fmt.epr "error: %s@." msg;
    1

let input = Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE")

let promises =
  Arg.(value & opt int 1 & info [ "promises" ] ~doc:"Promise-step budget per thread.")

let batch =
  Arg.(value & opt int 1 & info [ "batch" ]
         ~doc:"Extra-message budget per non-atomic write.")

let max_states =
  Arg.(value & opt int 200_000 & info [ "max-states" ] ~doc:"State budget.")

let compare_baselines =
  Arg.(value & flag & info [ "baselines" ]
         ~doc:"Also print SC and catch-fire baselines.")

let named =
  Arg.(value & opt (some string) None & info [ "name" ]
         ~doc:"Run a named litmus test from the built-in catalog.")

let all =
  Arg.(value & flag & info [ "all" ]
         ~doc:"Sweep every litmus test of the built-in catalog (parallel).")

let grid =
  Arg.(value & flag & info [ "grid" ]
         ~doc:"Print the E15 N-model differential grid (litmus rows under \
               every backend, plus the pass-soundness grid).")

let backend =
  Arg.(value & opt string "ps" & info [ "backend" ] ~docv:"NAME"
         ~doc:"Memory-model backend for single-program exploration \
               (sc, catchfire, tso, armv8, ps).")

let jobs =
  Arg.(value & opt int 1 & info [ "jobs"; "j" ]
         ~doc:"Worker domains for the --all/--grid sweeps.")

let timeout_ms =
  Arg.(value & opt (some float) None & info [ "timeout-ms" ] ~docv:"MS"
         ~doc:"Wall-clock budget per exploration; exhaustion yields UNKNOWN.")

let keep_going =
  Arg.(value & flag & info [ "keep-going" ]
         ~doc:"Exit 0 even when some rows are UNKNOWN.")

let retries =
  Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N"
         ~doc:"Retries per --all task on transient failures (deadline).")

let inject_faults =
  Arg.(value & opt int 0 & info [ "inject-faults" ] ~docv:"N"
         ~doc:"Deterministically make N --all tasks raise (robustness \
               drills; see docs/ROBUSTNESS.md).")

let inject_seed =
  Arg.(value & opt int 0 & info [ "inject-seed" ] ~docv:"S"
         ~doc:"Seed selecting which tasks --inject-faults hits.")

let cmd =
  Cmd.v
    (Cmd.info "litmus_run" ~version:"1.0"
       ~doc:"PS_na litmus-test explorer (PLDI 2022)")
    Term.(const run $ input $ promises $ batch $ max_states $ compare_baselines
          $ named $ all $ grid $ backend $ jobs $ timeout_ms $ keep_going
          $ retries $ inject_faults $ inject_seed)

let () = exit (Cmd.eval' cmd)
