(* The robustness layer: budgets only ever weaken a verdict to Unknown
   (never flip Proved/Refuted), an unlimited budget is byte-identical to
   no budget at all, and the supervised sweep (Sweep.run_verdict) never
   raises — trapped tasks are quarantined per-index, transient failures
   are retried, and the parallel=sequential determinism contract holds
   even under injected faults.  See docs/ROBUSTNESS.md. *)

module B = Engine.Budget
module V = Engine.Verdict
module F = Engine.Faults
module S = Engine.Sweep
module C = Litmus.Catalog
module Matrix = Litmus.Matrix

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Budget unit tests                                                    *)
(* ------------------------------------------------------------------ *)

let test_unlimited_noop () =
  Alcotest.(check bool) "unlimited" true (B.is_unlimited B.unlimited);
  for _ = 1 to 10_000 do
    B.check B.unlimited;
    B.spend_state B.unlimited;
    B.spend_fuel B.unlimited
  done;
  (* the shared value must never accumulate anything (domain-safety) *)
  Alcotest.(check int) "no states recorded" 0 (B.states_used B.unlimited);
  Alcotest.(check bool) "spec_unlimited detected" true
    (B.spec_is_unlimited B.spec_unlimited);
  Alcotest.(check bool) "spec with a bound detected" false
    (B.spec_is_unlimited (B.spec ~max_states:5 ()))

let test_state_budget_exhausts () =
  let b = B.start (B.spec ~max_states:3 ()) in
  B.spend_state b;
  B.spend_state b;
  B.spend_state b;
  match B.spend_state b with
  | () -> Alcotest.fail "expected Exhausted States"
  | exception B.Exhausted B.States -> ()

let test_zero_deadline_deterministic () =
  (* poll countdown starts at zero, so an already-expired deadline must
     fire on the very first check — no 256-iteration grace period *)
  let b = B.start (B.spec ~timeout_ms:0. ()) in
  match B.check b with
  | () -> Alcotest.fail "expected Exhausted Deadline on first check"
  | exception B.Exhausted B.Deadline -> ()

let test_fuel_budget () =
  let b = B.start (B.spec ~fuel:2 ()) in
  B.spend_fuel b;
  B.spend_fuel b;
  match B.spend_fuel b with
  | () -> Alcotest.fail "expected Exhausted Fuel"
  | exception B.Exhausted B.Fuel -> ()

(* ------------------------------------------------------------------ *)
(* Verdict unit tests                                                   *)
(* ------------------------------------------------------------------ *)

let test_transience_classification () =
  Alcotest.(check bool) "deadline is transient" true
    (V.transient (V.Exhausted B.Deadline));
  Alcotest.(check bool) "states is not transient" false
    (V.transient (V.Exhausted B.States));
  Alcotest.(check bool) "fuel is not transient" false
    (V.transient (V.Exhausted B.Fuel));
  Alcotest.(check bool) "transient trap" true
    (V.transient (V.Trapped { exn = "x"; backtrace = ""; transient = true }));
  Alcotest.(check bool) "non-transient trap" false
    (V.transient (V.Trapped { exn = "x"; backtrace = ""; transient = false }))

let test_capture_traps () =
  (match V.capture (fun () -> 41 + 1) with
   | Ok 42 -> ()
   | _ -> Alcotest.fail "expected Ok 42");
  (match V.capture (fun () -> raise (B.Exhausted B.Deadline)) with
   | Error (V.Exhausted B.Deadline) -> ()
   | _ -> Alcotest.fail "expected Error (Exhausted Deadline)");
  match V.capture (fun () -> failwith "boom") with
  | Error (V.Trapped t) ->
    Alcotest.(check bool) "exn rendered" true
      (String.length t.V.exn > 0 && not t.V.transient)
  | _ -> Alcotest.fail "expected Error Trapped"

(* ------------------------------------------------------------------ *)
(* Budgeted checkers: Unknown (States) but never a flipped verdict      *)
(* ------------------------------------------------------------------ *)

(* A corpus entry with a large simple-notion pair count, so a tiny state
   budget exhausts mid-game. *)
let big_tr = Option.get (C.find_transformation "acq-then-na-read")

let check_verdict_of budget tr =
  let src = Lang.Parser.stmt_of_string tr.C.src in
  let tgt = Lang.Parser.stmt_of_string tr.C.tgt in
  let d = Lang.Domain.of_stmts ~values:Lang.Domain.default_values [ src; tgt ] in
  Seq_model.Refine.check_verdict ?budget d ~src ~tgt

let test_tiny_state_budget_unknown () =
  match check_verdict_of (Some (B.start (B.spec ~max_states:4 ()))) big_tr with
  | V.Unknown (V.Exhausted B.States) -> ()
  | v -> Alcotest.failf "expected Unknown(states), got %s" (V.to_string v)

let test_ample_budget_agrees () =
  (* with a budget big enough, the three-valued form must agree exactly
     with the unbudgeted boolean *)
  List.iteri
    (fun i tr ->
      if i mod 7 = 0 then begin
        let expect = check_verdict_of None tr in
        let got =
          check_verdict_of (Some (B.start (B.spec ~max_states:1_000_000 ()))) tr
        in
        Alcotest.(check string)
          (Printf.sprintf "%s agrees under ample budget" tr.C.name)
          (V.to_string expect) (V.to_string got)
      end)
    C.transformations

let test_explore_v_budget () =
  let progs =
    Lang.Parser.threads_of_string
      "Y.store(rlx,1); a = Z.load(rlx); return a ||| \
       Z.store(rlx,1); b = Y.load(rlx); return b"
  in
  (match
     Promising.Machine.explore_v ~budget:(B.start (B.spec ~max_states:3 ()))
       progs
   with
   | Error (V.Exhausted B.States) -> ()
   | Ok _ -> Alcotest.fail "expected Error (states)"
   | Error r -> Alcotest.failf "expected states, got %s" (V.reason_to_string r));
  match Promising.Machine.explore_v progs with
  | Ok r -> Alcotest.(check bool) "unbudgeted Ok" true (r.Promising.Machine.states > 0)
  | Error r -> Alcotest.failf "unexpected %s" (V.reason_to_string r)

(* ------------------------------------------------------------------ *)
(* Supervised sweep: quarantine, retry, fault injection                 *)
(* ------------------------------------------------------------------ *)

let results_of outcomes =
  List.map
    (fun (o : _ S.outcome) ->
      match o.S.result with
      | Ok v -> Printf.sprintf "ok:%d:a%d" v o.S.attempts
      | Error r ->
        Printf.sprintf "err:%s:a%d:q%b" (V.reason_to_string r) o.S.attempts
          o.S.quarantined)
    outcomes

let test_quarantine_isolates () =
  let tasks = List.init 10 Fun.id in
  let outcomes =
    S.run_verdict ~jobs:3 ~faults:(F.raise_at [ 3; 7 ])
      ~f:(fun ~budget:_ x -> x * 2)
      tasks
  in
  Alcotest.(check int) "one outcome per task" 10 (List.length outcomes);
  List.iteri
    (fun i (o : _ S.outcome) ->
      if i = 3 || i = 7 then begin
        Alcotest.(check bool) "faulty task quarantined" true o.S.quarantined;
        match o.S.result with
        | Error (V.Trapped _) -> ()
        | _ -> Alcotest.failf "task %d: expected a trap" i
      end
      else
        match o.S.result with
        | Ok v -> Alcotest.(check int) "healthy task intact" (i * 2) v
        | Error _ -> Alcotest.failf "task %d poisoned by neighbor" i)
    outcomes

let test_retry_transient () =
  (* a transient fault that fires only on attempt 1: with one retry the
     task must succeed on attempt 2 *)
  let outcomes =
    S.run_verdict ~jobs:2 ~retries:1 ~backoff_ms:0.
      ~faults:(F.raise_at ~transient:true ~attempts:1 [ 1 ])
      ~f:(fun ~budget:_ x -> x + 100)
      [ 0; 1; 2 ]
  in
  match outcomes with
  | [ a; b; c ] ->
    Alcotest.(check bool) "task 0 first try" true (a.S.result = Ok 100 && a.S.attempts = 1);
    Alcotest.(check bool) "task 1 succeeded on retry" true
      (b.S.result = Ok 101 && b.S.attempts = 2 && not b.S.quarantined);
    Alcotest.(check bool) "task 2 first try" true (c.S.result = Ok 102 && c.S.attempts = 1)
  | _ -> Alcotest.fail "expected 3 outcomes"

let test_no_retry_nontransient () =
  let outcomes =
    S.run_verdict ~jobs:2 ~retries:5 ~backoff_ms:0.
      ~faults:(F.raise_at ~transient:false [ 0 ])
      ~f:(fun ~budget:_ x -> x)
      [ 0 ]
  in
  match outcomes with
  | [ o ] ->
    Alcotest.(check int) "no retry for a quarantined task" 1 o.S.attempts;
    Alcotest.(check bool) "quarantined" true o.S.quarantined
  | _ -> Alcotest.fail "expected 1 outcome"

let test_burn_states_fault () =
  (* Burn_states exhausts a state budget: Unknown(states), not transient,
     so retries must not re-run it *)
  let outcomes =
    S.run_verdict ~jobs:2 ~retries:3 ~backoff_ms:0.
      ~budget:(B.spec ~max_states:10 ())
      ~faults:[ { F.index = 1; action = F.Burn_states 50; attempts = max_int } ]
      ~f:(fun ~budget x -> B.spend_state budget; x)
      [ 0; 1; 2 ]
  in
  match results_of outcomes with
  | [ "ok:0:a1"; "err:states:a1:qfalse"; "ok:2:a1" ] -> ()
  | rs -> Alcotest.failf "unexpected outcomes: %s" (String.concat " " rs)

let test_stall_fault_deadline () =
  (* Stall_ms past the deadline must surface as Unknown(deadline) — and
     deadline is transient, so with retries the stall repeats and still
     ends Unknown after the retry budget *)
  let outcomes =
    S.run_verdict ~jobs:2 ~retries:1 ~backoff_ms:0.
      ~budget:(B.spec ~timeout_ms:5. ())
      ~faults:[ { F.index = 0; action = F.Stall_ms 30.; attempts = max_int } ]
      ~f:(fun ~budget:_ x -> x)
      [ 0; 1 ]
  in
  match outcomes with
  | [ a; b ] ->
    (match a.S.result with
     | Error (V.Exhausted B.Deadline) ->
       Alcotest.(check int) "stall retried once" 2 a.S.attempts
     | _ -> Alcotest.fail "expected deadline on the stalled task");
    Alcotest.(check bool) "other task fine" true (b.S.result = Ok 1)
  | _ -> Alcotest.fail "expected 2 outcomes"

(* ------------------------------------------------------------------ *)
(* Mixed-access at the task boundary (satellite a)                      *)
(* ------------------------------------------------------------------ *)

let poisoned : C.transformation =
  {
    C.name = "poisoned-mixed-access";
    paper_ref = "(test)";
    (* X used non-atomically and atomically: Config.Mixed_access *)
    src = "X.store(na, 1); a = X.load(acq); return a";
    tgt = "return 0";
    simple = C.Sound;
    advanced = C.Sound;
  }

let test_mixed_access_is_per_task () =
  let healthy = Option.get (C.find_transformation "slf-basic") in
  let rows =
    Matrix.e12_rows_v ~jobs:2 ~corpus:[ healthy; poisoned; healthy ] ()
  in
  match rows with
  | [ (_, a); (_, b); (_, c) ] ->
    Alcotest.(check bool) "row 0 unaffected" true (S.outcome_ok a);
    Alcotest.(check bool) "row 2 unaffected" true (S.outcome_ok c);
    (match b.S.result with
     | Error (V.Trapped t) ->
       Alcotest.(check bool) "trap mentions mixed access" true
         (contains ~sub:"mixed" t.V.exn);
       Alcotest.(check bool) "quarantined" true b.S.quarantined
     | _ -> Alcotest.fail "expected the poisoned row to trap");
    let rendered = Matrix.render_e12_v rows in
    Alcotest.(check bool) "render shows UNKNOWN row" true
      (contains ~sub:"UNKNOWN(trap:" rendered)
  | _ -> Alcotest.fail "expected 3 rows"

(* ------------------------------------------------------------------ *)
(* Renderer byte-identity on the all-Ok path                            *)
(* ------------------------------------------------------------------ *)

let test_render_identity_when_ok () =
  let corpus = List.filteri (fun i _ -> i mod 5 = 0) C.transformations in
  let plain = List.map (fun tr -> Matrix.e12_row tr) corpus in
  let supervised = Matrix.e12_rows_v ~jobs:2 ~corpus () in
  Alcotest.(check string) "render_e12_v = render_e12 when all Ok"
    (Matrix.render_e12 ~stats:false plain)
    (Matrix.render_e12_v ~stats:false supervised)

(* ------------------------------------------------------------------ *)
(* qcheck: unlimited budgets change nothing; determinism under faults   *)
(* ------------------------------------------------------------------ *)

let slice_of mask l =
  List.filteri
    (fun i _ -> match List.nth_opt mask i with Some b -> b | None -> false)
    l

let e12_summary (r : Matrix.e12_row) =
  Printf.sprintf "%s:%s/%s:%d" r.Matrix.tr.C.name
    (C.verdict_to_string r.Matrix.simple_got)
    (C.verdict_to_string r.Matrix.advanced_got)
    r.Matrix.pairs

let qcheck_unlimited_identity =
  QCheck.Test.make
    ~name:"run_verdict with an unlimited budget = plain sweep, byte-identical"
    ~count:4
    QCheck.(list_of_size Gen.(return (List.length C.transformations)) bool)
    (fun mask ->
      let corpus = slice_of mask C.transformations in
      let plain = List.map (fun tr -> Matrix.e12_row tr) corpus in
      let supervised = Matrix.e12_rows_v ~jobs:4 ~corpus () in
      List.for_all (fun (_, o) -> S.outcome_ok o) supervised
      && String.equal
           (Matrix.render_e12 ~stats:false plain)
           (Matrix.render_e12_v ~stats:false supervised)
      && List.for_all2
           (fun r (_, (o : _ S.outcome)) ->
             match o.S.result with
             | Ok r' -> String.equal (e12_summary r) (e12_summary r')
             | Error _ -> false)
           plain supervised)

let outcome_fingerprint (o : _ S.outcome) =
  (* everything except wall_ms must be scheduling-proof *)
  Printf.sprintf "%s:a%d:q%b"
    (match o.S.result with
     | Ok s -> "ok:" ^ s
     | Error r -> "err:" ^ V.reason_to_string r)
    o.S.attempts o.S.quarantined

let qcheck_fault_determinism =
  QCheck.Test.make
    ~name:"run_verdict jobs:4 = jobs:1 under seeded fault injection"
    ~count:6
    QCheck.(pair small_nat (list_of_size Gen.(return 12) bool))
    (fun (seed, mask) ->
      let tasks =
        List.filteri (fun i _ -> List.nth mask i) (List.init 12 Fun.id)
      in
      let n = List.length tasks in
      let faults = F.seeded ~seed ~tasks:n ~faulty:(min 3 n) () in
      let sweep jobs =
        S.run_verdict ~jobs ~chunk:1 ~retries:1 ~backoff_ms:0. ~faults
          ~f:(fun ~budget:_ x -> string_of_int (x * x))
          tasks
      in
      let seq = List.map outcome_fingerprint (sweep 1) in
      let par = List.map outcome_fingerprint (sweep 4) in
      List.length seq = List.length par && List.for_all2 String.equal seq par)

let suite =
  [
    Alcotest.test_case "budget: unlimited is an inert no-op" `Quick
      test_unlimited_noop;
    Alcotest.test_case "budget: state budget exhausts" `Quick
      test_state_budget_exhausts;
    Alcotest.test_case "budget: 0ms deadline fires on first check" `Quick
      test_zero_deadline_deterministic;
    Alcotest.test_case "budget: fuel budget exhausts" `Quick test_fuel_budget;
    Alcotest.test_case "verdict: transience classification" `Quick
      test_transience_classification;
    Alcotest.test_case "verdict: capture traps exceptions" `Quick
      test_capture_traps;
    Alcotest.test_case "checker: tiny state budget gives Unknown(states)"
      `Quick test_tiny_state_budget_unknown;
    Alcotest.test_case "checker: ample budget never flips a verdict" `Quick
      test_ample_budget_agrees;
    Alcotest.test_case "machine: explore_v respects the budget" `Quick
      test_explore_v_budget;
    Alcotest.test_case "sweep: quarantine leaves other tasks intact" `Quick
      test_quarantine_isolates;
    Alcotest.test_case "sweep: transient fault retried once" `Quick
      test_retry_transient;
    Alcotest.test_case "sweep: non-transient fault not retried" `Quick
      test_no_retry_nontransient;
    Alcotest.test_case "sweep: burned states give Unknown(states)" `Quick
      test_burn_states_fault;
    Alcotest.test_case "sweep: stall past deadline gives Unknown(deadline)"
      `Quick test_stall_fault_deadline;
    Alcotest.test_case "sweep: mixed access is a per-task Unknown row" `Quick
      test_mixed_access_is_per_task;
    Alcotest.test_case "render: _v renderer byte-identical on all-Ok" `Quick
      test_render_identity_when_ok;
    QCheck_alcotest.to_alcotest qcheck_unlimited_identity;
    QCheck_alcotest.to_alcotest qcheck_fault_determinism;
  ]
