(* Differential harness for the fast enumeration core (Seq_model.Core):
   the hash-consed, memoized checkers and the packed per-mask caches must
   be observationally identical to the set-based reference
   implementations — same verdicts, same explored pair counts, same
   transition lists (content and order), same behavior sets — across the
   litmus corpus, random generated programs, and worker counts. *)

open Lang
module C = Litmus.Catalog

let values = Domain.default_values

let parse_pair (tr : C.transformation) =
  let src = Parser.stmt_of_string tr.C.src in
  let tgt = Parser.stmt_of_string tr.C.tgt in
  (Domain.of_stmts ~values [ src; tgt ], src, tgt)

let refine_roots (d, src, tgt) =
  Seq_model.Refine.initial_pairs d ~src:(Prog.init src) ~tgt:(Prog.init tgt)

let advanced_roots item =
  List.map
    (fun (p : Seq_model.Refine.pair) ->
      {
        Seq_model.Advanced.commit = Loc.Set.empty;
        tgt = p.Seq_model.Refine.tgt;
        src = p.Seq_model.Refine.src;
      })
    (refine_roots item)

let corpus = lazy (List.map parse_pair C.transformations)

(* --------------------------------------------------------------- *)
(* Corpus-wide: fast == Slow, verdict and pair count, both games    *)
(* --------------------------------------------------------------- *)

let corpus_suite =
  [
    Alcotest.test_case "refine: fast == Slow on every transformation" `Quick
      (fun () ->
        List.iter2
          (fun (tr : C.transformation) ((d, _, _) as item) ->
            let roots = refine_roots item in
            let v_slow, n_slow = Seq_model.Refine.Slow.check_pairs_count d roots in
            let v_fast, n_fast = Seq_model.Refine.check_pairs_count d roots in
            Alcotest.(check bool) (tr.C.name ^ ": verdict") v_slow v_fast;
            Alcotest.(check int) (tr.C.name ^ ": pair count") n_slow n_fast)
          C.transformations (Lazy.force corpus));
    Alcotest.test_case "advanced: fast == Slow on every transformation"
      `Quick (fun () ->
        List.iter2
          (fun (tr : C.transformation) ((d, _, _) as item) ->
            let roots = advanced_roots item in
            let v_slow, n_slow =
              Seq_model.Advanced.Slow.check_pairs_count d roots
            in
            let v_fast, n_fast = Seq_model.Advanced.check_pairs_count d roots in
            Alcotest.(check bool) (tr.C.name ^ ": verdict") v_slow v_fast;
            Alcotest.(check int) (tr.C.name ^ ": node count") n_slow n_fast)
          C.transformations (Lazy.force corpus));
    Alcotest.test_case "symmetry reduction preserves every corpus verdict"
      `Quick (fun () ->
        List.iter
          (fun (tr : C.transformation) ->
            let src = Parser.stmt_of_string tr.C.src in
            let tgt = Parser.stmt_of_string tr.C.tgt in
            let d = Domain.of_stmts ~values [ src; tgt ] in
            Alcotest.(check bool)
              (tr.C.name ^ ": refine under symmetry")
              (Seq_model.Refine.check d ~src ~tgt)
              (Seq_model.Refine.check ~symmetry:true d ~src ~tgt))
          C.transformations);
  ]

(* --------------------------------------------------------------- *)
(* Same results at jobs:1 and jobs:4                                *)
(* --------------------------------------------------------------- *)

let sweep_results ~jobs =
  let f ~budget:_ ((d, _, _) as item) =
    let vr, nr = Seq_model.Refine.check_pairs_count d (refine_roots item) in
    let va, na =
      if vr then (true, 0)
      else Seq_model.Advanced.check_pairs_count d (advanced_roots item)
    in
    (vr, nr, va, na)
  in
  List.map
    (fun (o : _ Engine.Sweep.outcome) -> o.Engine.Sweep.result)
    (Engine.Sweep.run_verdict ~jobs ~f (Lazy.force corpus))

let jobs_suite =
  [
    Alcotest.test_case
      "corpus verdicts and pair counts agree at jobs:1 and jobs:4" `Quick
      (fun () ->
        let r1 = sweep_results ~jobs:1 in
        let r4 = sweep_results ~jobs:4 in
        List.iteri
          (fun i (o1, o4) ->
            if o1 <> o4 then
              Alcotest.failf "transformation %d: jobs:1 and jobs:4 disagree" i)
          (List.combine r1 r4));
  ]

(* --------------------------------------------------------------- *)
(* Random programs: fast == Slow on generated refinement queries    *)
(* --------------------------------------------------------------- *)

let gen_cfg =
  {
    Gen.default_config with
    Gen.na_locs = [ Loc.make "X" ];
    at_locs = [ Loc.make "Y" ];
    regs = [ Reg.make "a"; Reg.make "b" ];
    values = [ 0; 1 ];
  }

let stmt_gen (cfg : Gen.config) ~size : Stmt.t QCheck.Gen.t =
 fun rand -> Gen.gen_program cfg rand ~size

let stmt_arbitrary cfg ~size =
  QCheck.make
    ~print:(fun s -> Fmt.str "%a" Stmt.pp s)
    (stmt_gen cfg ~size)

let qcheck_games =
  QCheck.Test.make
    ~name:"fast == Slow on random program pairs (refine and advanced)"
    ~count:30
    (QCheck.pair (stmt_arbitrary gen_cfg ~size:3) (stmt_arbitrary gen_cfg ~size:3))
    (fun (src, tgt) ->
      let d = Domain.of_stmts ~values [ src; tgt ] in
      let item = (d, src, tgt) in
      let roots = refine_roots item in
      let aroots = advanced_roots item in
      Seq_model.Refine.Slow.check_pairs_count d roots
      = Seq_model.Refine.check_pairs_count d roots
      && Seq_model.Advanced.Slow.check_pairs_count d aroots
         = Seq_model.Advanced.check_pairs_count d aroots)

let loop_cfg = { gen_cfg with Gen.allow_loops = true }

let qcheck_enumeration =
  QCheck.Test.make
    ~name:"memoized behavior enumeration == reference on random programs"
    ~count:20
    (stmt_arbitrary loop_cfg ~size:8)
    (fun p ->
      let d = Domain.of_stmts [ p ] in
      let cfg = Seq_model.Config.make ~perm:(Domain.na_set d) (Prog.init p) in
      let fuel = (4 * Stmt.size p) + 16 in
      let slow = Seq_model.Behavior.enumerate d ~fuel cfg in
      let fast =
        Seq_model.Behavior.enumerate
          ?tables:(Seq_model.Config.make_tables d) d ~fuel cfg
      in
      Seq_model.Behavior.Set.equal slow fast)

let qcheck_suite =
  List.map
    (QCheck_alcotest.to_alcotest ~long:false)
    [ qcheck_games; qcheck_enumeration ]

(* --------------------------------------------------------------- *)
(* Packed / Core layer contracts                                    *)
(* --------------------------------------------------------------- *)

let contract_domain =
  Domain.make
    ~values:[ Value.Int 0; Value.Int 1 ]
    ~na_locs:[ Loc.make "X"; Loc.make "W"; Loc.make "Z" ]
    ~at_locs:[ Loc.make "Y" ] ()

(* Every reachable configuration of [p] from the all-permission initial
   one, breadth-first, capped. *)
let reachable d p ~cap =
  let module CSet = Set.Make (Seq_model.Config) in
  let seen = ref CSet.empty in
  let queue = Queue.create () in
  Queue.add (Seq_model.Config.make ~perm:(Domain.na_set d) (Prog.init p)) queue;
  while (not (Queue.is_empty queue)) && CSet.cardinal !seen < cap do
    let cfg = Queue.pop queue in
    if not (CSet.mem cfg !seen) then begin
      seen := CSet.add cfg !seen;
      List.iter
        (fun (_, next) ->
          match next with
          | Seq_model.Config.Cont c -> Queue.add c queue
          | Seq_model.Config.Bot -> ())
        (Seq_model.Config.moves d cfg)
    end
  done;
  CSet.elements !seen

let equal_move (evs1, n1) (evs2, n2) =
  List.compare Seq_model.Event.compare evs1 evs2 = 0
  &&
  match n1, n2 with
  | Seq_model.Config.Bot, Seq_model.Config.Bot -> true
  | Seq_model.Config.Cont c1, Seq_model.Config.Cont c2 ->
    Seq_model.Config.equal c1 c2
  | _ -> false

let equal_line (l1 : Seq_model.Config.line) (l2 : Seq_model.Config.line) =
  Loc.Set.equal l1.Seq_model.Config.written_max l2.Seq_model.Config.written_max
  &&
  match l1.Seq_model.Config.line_end, l2.Seq_model.Config.line_end with
  | L_bot, L_bot | L_diverge, L_diverge -> true
  | L_term (v1, c1), L_term (v2, c2) ->
    Value.compare v1 v2 = 0 && Seq_model.Config.equal c1 c2
  | L_label c1, L_label c2 -> Seq_model.Config.equal c1 c2
  | _ -> false

let sample_programs =
  [
    "X.store(na, 1); a = Y.load(acq); W.store(na, a); Y.store(rel, 1); \
     b = X.load(na); return b";
    "c = 0; while c < 2 { a = Y.load(acq); X.store(na, 1); \
     Y.store(rel, 1); c = c + 1 }; return 0";
    (* an unlabeled silent cycle: line must report L_diverge, not loop *)
    "while 0 == 0 { skip }; return 1";
  ]

let contract_suite =
  [
    Alcotest.test_case
      "packed acquire/release choice caches replay the Domain lists" `Quick
      (fun () ->
        let pk = Packed.make contract_domain in
        List.iter
          (fun perm ->
            let pmask = Packed.mask_of_set pk perm in
            let cached = Packed.acquire_choices pk pmask in
            let fresh = Domain.acquire_choices contract_domain perm in
            Alcotest.(check int)
              "acquire choice count" (List.length fresh) (List.length cached);
            List.iter2
              (fun (p1, m1) (p2, m2) ->
                Alcotest.(check bool) "acquire post set" true
                  (Loc.Set.equal p1 p2);
                Alcotest.(check int) "acquire values" 0
                  (Loc.Map.compare Value.compare m1 m2))
              cached fresh;
            let rcached = Packed.release_choices pk pmask in
            let rfresh = Domain.subsets_of contract_domain perm in
            Alcotest.(check int)
              "release choice count" (List.length rfresh) (List.length rcached);
            List.iter2
              (fun s1 s2 ->
                Alcotest.(check bool) "release subset" true (Loc.Set.equal s1 s2))
              rcached rfresh)
          (Domain.subsets contract_domain.Domain.na_locs));
    Alcotest.test_case "submasks enumerates exactly the submasks" `Quick
      (fun () ->
        List.iter
          (fun mask ->
            let subs = Packed.submasks mask in
            let expected =
              List.filter
                (fun x -> x land mask = x)
                (List.init 16 (fun i -> i))
            in
            Alcotest.(check (list int))
              (Printf.sprintf "submasks of %d" mask)
              (List.sort compare expected)
              (List.sort compare subs))
          [ 0; 1; 5; 7; 10; 15 ]);
    Alcotest.test_case "moves_t == moves on every reachable configuration"
      `Quick (fun () ->
        List.iter
          (fun srcp ->
            let p = Parser.stmt_of_string srcp in
            let d = Domain.of_stmts [ p ] in
            match Seq_model.Config.make_tables d with
            | None -> Alcotest.fail "sample domain should pack"
            | Some tb ->
              List.iter
                (fun cfg ->
                  let m1 = Seq_model.Config.moves d cfg in
                  let m2 = Seq_model.Config.moves_t tb d cfg in
                  Alcotest.(check int)
                    "move count" (List.length m1) (List.length m2);
                  List.iter2
                    (fun mv1 mv2 ->
                      Alcotest.(check bool)
                        "same move (content and order)" true
                        (equal_move mv1 mv2))
                    m1 m2)
                (reachable d p ~cap:500))
          sample_programs);
    Alcotest.test_case "Core.line == Config.line on every reachable \
                        configuration (divergent loops included)" `Quick
      (fun () ->
        List.iter
          (fun srcp ->
            let p = Parser.stmt_of_string srcp in
            let d = Domain.of_stmts [ p ] in
            match Seq_model.Core.create d with
            | None -> Alcotest.fail "sample domain should pack"
            | Some core ->
              List.iter
                (fun cfg ->
                  Alcotest.(check bool)
                    "same line" true
                    (equal_line (Seq_model.Config.line cfg)
                       (Seq_model.Core.line core cfg)))
                (reachable d p ~cap:500))
          sample_programs);
    Alcotest.test_case "released_mem is independent of enumeration order"
      `Quick (fun () ->
        let d = contract_domain in
        List.iter
          (fun perm ->
            List.iter
              (fun mem ->
                let cfg =
                  Seq_model.Config.make ~perm ~mem
                    (Prog.init (Parser.stmt_of_string "return 0"))
                in
                let got = Seq_model.Config.released_mem d cfg in
                (* the spec, built by folding over the permission set
                   itself — any enumeration order must produce this map *)
                let want =
                  Loc.Set.fold
                    (fun x acc ->
                      Loc.Map.add x (Seq_model.Config.read_mem cfg x) acc)
                    perm Loc.Map.empty
                in
                Alcotest.(check int)
                  "released memory" 0
                  (Loc.Map.compare Value.compare want got))
              (Domain.memories d))
          (Domain.subsets d.Domain.na_locs));
  ]

let suite = corpus_suite @ jobs_suite @ qcheck_suite @ contract_suite
