(* The hardware-backend zoo (lib/backends): x86-TSO store buffers,
   ARMv8-flavoured local reordering, the shared MACHINE signature and
   registry, and the SC ⊆ TSO ⊆ ARMv8 inclusion chain the E15 grid
   asserts per row. *)

open Lang
module B = Backends.Backend
module Tso = Backends.Tso
module Armv8 = Backends.Armv8
module Registry = Backends.Registry
module Sc = Baselines.Sc

let threads = Parser.threads_of_string
let test name f = Alcotest.test_case name `Quick f
let check_bool msg = Alcotest.(check bool) msg
let check_int msg = Alcotest.(check int) msg
let ret vs = B.Ret (List.map (fun v -> (v, [])) vs)
let i n = Value.Int n
let mem b (r : B.result) = B.Behavior_set.mem b r.B.behaviors

let sb =
  "Y.store(rlx,1); a = Z.load(rlx); return a ||| \
   Z.store(rlx,1); b = Y.load(rlx); return b"

let sb_fence =
  "Y.store(rlx,1); fence(sc); a = Z.load(rlx); return a ||| \
   Z.store(rlx,1); fence(sc); b = Y.load(rlx); return b"

let mp_rlx =
  "X.store(rlx,1); Y.store(rlx,1); return 0 ||| \
   a = Y.load(rlx); if a == 1 { b = X.load(rlx) }; return 10*a+b"

let mp_rel_acq =
  "X.store(na,1); Y.store(rel,1); return 0 ||| \
   a = Y.load(acq); if a == 1 { b = X.load(na) }; return 10*a+b"

let mp_fences =
  "X.store(na,1); fence(rel); Y.store(rlx,1); return 0 ||| \
   a = Y.load(rlx); fence(acq); if a == 1 { b = X.load(na) }; return 10*a+b"

(* The acceptance separations: SB separates TSO from SC, MP-rlx
   separates ARMv8 from TSO. *)

let separation_tests =
  [
    test "SB both-zero: allowed under TSO, forbidden under SC" (fun () ->
        let tso = Tso.explore (threads sb) in
        check_bool "TSO allows 0,0" true (mem (ret [ i 0; i 0 ]) tso);
        let sc = Registry.Sc_machine.explore (threads sb) in
        check_bool "SC forbids 0,0" false (mem (ret [ i 0; i 0 ]) sc));
    test "SC fences restore SC on SB under TSO and ARMv8" (fun () ->
        let tso = Tso.explore (threads sb_fence) in
        check_bool "TSO forbids fenced 0,0" false (mem (ret [ i 0; i 0 ]) tso);
        let arm = Armv8.explore (threads sb_fence) in
        check_bool "ARMv8 forbids fenced 0,0" false
          (mem (ret [ i 0; i 0 ]) arm));
    test "MP-rlx stale read: allowed under ARMv8, forbidden under TSO"
      (fun () ->
        let arm = Armv8.explore (threads mp_rlx) in
        check_bool "ARMv8 allows a=1,b=0" true (mem (ret [ i 0; i 10 ]) arm);
        let tso = Tso.explore (threads mp_rlx) in
        check_bool "TSO forbids a=1,b=0" false (mem (ret [ i 0; i 10 ]) tso));
    test "MP-rel-acq: the release view forbids the stale read under ARMv8"
      (fun () ->
        let arm = Armv8.explore (threads mp_rel_acq) in
        check_bool "ARMv8 forbids a=1,b=0" false
          (mem (ret [ i 0; i 10 ]) arm);
        check_bool "ARMv8 allows a=1,b=1" true (mem (ret [ i 0; i 11 ]) arm));
    test "MP-fences: full barriers forbid the stale read under ARMv8"
      (fun () ->
        let arm = Armv8.explore (threads mp_fences) in
        check_bool "ARMv8 forbids a=1,b=0" false
          (mem (ret [ i 0; i 10 ]) arm));
  ]

let machine_tests =
  [
    test "TSO forwards its own buffered store" (fun () ->
        let r = Tso.explore (threads "X.store(rlx,1); a = X.load(rlx); return a") in
        check_bool "reads 1" true (mem (ret [ i 1 ]) r);
        check_int "exactly one behavior" 1 (B.Behavior_set.cardinal r.B.behaviors));
    test "ARMv8 per-location coherence: own writes are not reordered"
      (fun () ->
        let r =
          Armv8.explore
            (threads "X.store(rlx,1); X.store(rlx,2); return 0 ||| \
                      a = X.load(rlx); b = X.load(rlx); return 10*a+b")
        in
        (* reads of one location are coherent: never 2 then 1 *)
        check_bool "no 2,1" false (mem (ret [ i 0; i 21 ]) r));
    test "RMWs are SC points: a CAS lock still excludes under TSO/ARMv8"
      (fun () ->
        let lock =
          "a = 0; while a == 0 { a = cas(L, 0, 1) }; X.store(na, 1); \
           L.store(rel, 0) ||| \
           b = 0; while b == 0 { b = cas(L, 0, 1) }; c = X.load(na); \
           L.store(rel, 0); return c"
        in
        let tso = Tso.explore (threads lock) in
        check_bool "TSO race-free" false tso.B.races;
        let arm = Armv8.explore (threads lock) in
        check_bool "ARMv8 race-free" false arm.B.races);
    test "race verdicts agree with the SC baseline" (fun () ->
        let racy = "a = X.load(na); return a ||| X.store(na,1); return 0" in
        let tso = Tso.explore (threads racy) in
        let arm = Armv8.explore (threads racy) in
        check_bool "TSO races" true tso.B.races;
        check_bool "ARMv8 races" true arm.B.races;
        let sync = threads mp_rel_acq in
        check_bool "TSO rel-acq race-free" false (Tso.explore sync).B.races;
        check_bool "ARMv8 rel-acq race-free" false (Armv8.explore sync).B.races);
    test "UB is ⊥ under every backend" (fun () ->
        let progs = threads "abort ||| return 0" in
        List.iter
          (fun (module M : B.MACHINE) ->
            check_bool (M.name ^ " has ⊥") true
              (mem B.Bot (M.explore progs)))
          Registry.all);
    test "budget exhaustion escapes as Engine.Budget.Exhausted" (fun () ->
        let budget = Engine.Budget.make ~max_states:5 () in
        check_bool "raises" true
          (try
             ignore (Tso.explore ~budget (threads sb));
             false
           with Engine.Budget.Exhausted _ -> true));
  ]

let registry_tests =
  [
    test "registry: every name resolves, unknown names do not" (fun () ->
        check_bool "five machines" true (List.length Registry.all = 5);
        List.iter
          (fun name ->
            check_bool ("find " ^ name) true
              (Option.is_some (Registry.find name)))
          Registry.names;
        check_bool "unknown rejected" true (Option.is_none (Registry.find "sc2")));
    test "refines across backends: TSO target vs SC source refuted on SB"
      (fun () ->
        let progs = threads sb in
        let sc = Registry.Sc_machine.explore progs in
        let tso = Tso.explore progs in
        check_bool "SC ⊑ TSO as sets" true (B.subset ~small:sc ~big:tso);
        check_bool "tgt TSO refines src TSO" true (B.refines ~src:tso ~tgt:tso);
        check_bool "tgt TSO does not refine src SC" false
          (B.refines ~src:sc ~tgt:tso));
  ]

(* The inclusion chain on the whole litmus catalog. *)
let chain_on_catalog =
  test "SC ⊆ TSO ⊆ ARMv8 on the litmus catalog" (fun () ->
      List.iter
        (fun (c : Litmus.Catalog.concurrent) ->
          let progs = threads c.Litmus.Catalog.threads in
          let sc = Registry.Sc_machine.explore ~max_states:50_000 progs in
          let tso = Tso.explore ~max_states:50_000 progs in
          let arm = Armv8.explore ~max_states:50_000 progs in
          if not (sc.B.truncated || tso.B.truncated || arm.B.truncated) then begin
            check_bool (c.Litmus.Catalog.cname ^ ": SC ⊆ TSO") true
              (B.subset ~small:sc ~big:tso);
            check_bool (c.Litmus.Catalog.cname ^ ": TSO ⊆ ARMv8") true
              (B.subset ~small:tso ~big:arm)
          end)
        Litmus.Catalog.concurrent_programs)

(* The qcheck inclusion property on generated two-thread programs:
   budget-bounded, truncated explorations skipped. *)
let gen_cfg =
  {
    Gen.default_config with
    Gen.na_locs = [ Loc.make "X" ];
    at_locs = [ Loc.make "Y"; Loc.make "Z" ];
    regs = [ Reg.make "a"; Reg.make "b" ];
    values = [ 0; 1 ];
    allow_loops = false;
  }

let pair_gen : (Stmt.t * Stmt.t) QCheck.Gen.t =
 fun rand ->
  (Gen.gen_program gen_cfg rand ~size:3, Gen.gen_program gen_cfg rand ~size:3)

let chain_qcheck =
  QCheck.Test.make ~name:"SC ⊆ TSO ⊆ ARMv8 on generated programs" ~count:30
    (QCheck.make
       ~print:(fun (s, t) -> Stmt.to_string s ^ " ||| " ^ Stmt.to_string t)
       pair_gen)
    (fun (s, t) ->
      let progs = [ s; t ] in
      let max_states = 30_000 in
      let sc = Registry.Sc_machine.explore ~max_states progs in
      let tso = Tso.explore ~max_states progs in
      let arm = Armv8.explore ~max_states progs in
      sc.B.truncated || tso.B.truncated || arm.B.truncated
      || (B.subset ~small:sc ~big:tso && B.subset ~small:tso ~big:arm))

let suite =
  separation_tests @ machine_tests @ registry_tests
  @ [ chain_on_catalog; QCheck_alcotest.to_alcotest chain_qcheck ]
