(* The parallel=sequential contract of lib/engine: Sweep.run over any
   task list returns byte-identical results and ordering for every
   [jobs] setting, exceptions propagate deterministically (lowest task
   index wins), cancellation keeps min-index semantics, and the pool
   never deadlocks on a raising task.  The qcheck properties sweep
   random slices of the litmus catalog — the engine's real workload —
   through real checkers. *)

module S = Engine.Sweep
module P = Engine.Pool
module C = Litmus.Catalog
module M = Promising.Machine

let int_list = Alcotest.(list int)

(* ------------------------------------------------------------------ *)
(* Unit tests: edges of the pool/sweep machinery                        *)
(* ------------------------------------------------------------------ *)

let test_empty () =
  Alcotest.check int_list "empty task list" []
    (S.run ~jobs:3 ~f:(fun x -> x) [])

let test_single () =
  Alcotest.check int_list "single task" [ 42 ]
    (S.run ~jobs:4 ~f:(fun x -> x + 41) [ 1 ])

let test_more_jobs_than_tasks () =
  Alcotest.check int_list "jobs > tasks" [ 2; 4; 6 ]
    (S.run ~jobs:8 ~f:(fun x -> 2 * x) [ 1; 2; 3 ])

let test_input_order () =
  let tasks = List.init 50 Fun.id in
  Alcotest.check int_list "results in input order"
    (List.map (fun i -> i * i) tasks)
    (S.run ~jobs:4 ~chunk:3 ~f:(fun i -> i * i) tasks)

let test_exception_propagates () =
  (* The raising task's exception must escape run; with several raising
     tasks, the lowest-index one must win regardless of scheduling; and
     the pool must stay usable afterwards (no deadlock, workers alive). *)
  P.with_pool ~jobs:4 (fun pool ->
      let f i = if i mod 10 = 7 then failwith (Printf.sprintf "boom%d" i) else i in
      (match S.run ~pool ~chunk:1 ~f (List.init 40 Fun.id) with
       | _ -> Alcotest.fail "expected the task exception to propagate"
       | exception Failure msg ->
         Alcotest.(check string) "lowest-index exception wins" "boom7" msg);
      (* same pool, next job: must complete normally *)
      Alcotest.check int_list "pool survives a raising job" [ 1; 2; 3 ]
        (S.run ~pool ~f:(fun x -> x) [ 1; 2; 3 ]))

let test_find_first_min_index () =
  (* matches at 17 and 23: the lowest index must win however fast a
     later worker finds 23 *)
  let f i = if i = 17 || i = 23 then Some (i * 100) else None in
  match S.find_first ~jobs:4 ~chunk:1 ~f (List.init 60 Fun.id) with
  | Some (17, 1700) -> ()
  | Some (i, v) -> Alcotest.failf "expected (17, 1700), got (%d, %d)" i v
  | None -> Alcotest.fail "expected a match"

let test_find_first_none () =
  match S.find_first ~jobs:3 ~f:(fun _ -> None) (List.init 10 Fun.id) with
  | None -> ()
  | Some _ -> Alcotest.fail "expected no match"

let test_run_with_envs () =
  (* init runs at most once per worker slot, and per-domain state never
     changes results *)
  let created = Atomic.make 0 in
  let init () =
    Atomic.incr created;
    Hashtbl.create 16
  in
  let f memo i =
    match Hashtbl.find_opt memo i with
    | Some v -> v
    | None ->
      let v = i * 3 in
      Hashtbl.add memo i v;
      v
  in
  let tasks = List.init 30 (fun i -> i mod 5) in
  let got = S.run_with ~jobs:4 ~chunk:2 ~init ~f tasks in
  Alcotest.check int_list "memoized results correct"
    (List.map (fun i -> i * 3) tasks)
    got;
  let n = Atomic.get created in
  if n < 1 || n > 4 then Alcotest.failf "expected 1..4 envs, created %d" n

let test_run_timed () =
  let rs = S.run_timed ~jobs:2 ~f:(fun x -> x + 1) [ 1; 2 ] in
  Alcotest.check int_list "timed results" [ 2; 3 ] (List.map fst rs);
  List.iter
    (fun (_, ms) -> if ms < 0. then Alcotest.fail "negative wall time")
    rs

(* ------------------------------------------------------------------ *)
(* qcheck: the determinism contract on real workloads                   *)
(* ------------------------------------------------------------------ *)

(* A random slice (subset, in order) of a list, driven by qcheck bools. *)
let slice_of mask l =
  List.filteri
    (fun i _ -> match List.nth_opt mask i with Some b -> b | None -> false)
    l

let e12_summary (r : Litmus.Matrix.e12_row) =
  Printf.sprintf "%s:%s/%s:%d" r.Litmus.Matrix.tr.C.name
    (C.verdict_to_string r.Litmus.Matrix.simple_got)
    (C.verdict_to_string r.Litmus.Matrix.advanced_got)
    r.Litmus.Matrix.pairs

let det_transformations =
  QCheck.Test.make
    ~name:"Sweep.run jobs:4 = jobs:1 on random transformation slices"
    ~count:6
    QCheck.(list_of_size Gen.(return (List.length C.transformations)) bool)
    (fun mask ->
      let tasks = slice_of mask C.transformations in
      let f tr = e12_summary (Litmus.Matrix.e12_row tr) in
      let seq = S.run ~jobs:1 ~f tasks in
      let par = S.run ~jobs:4 ~chunk:1 ~f tasks in
      List.length seq = List.length par && List.for_all2 String.equal seq par)

(* Cheap litmus programs only: the point is scheduling diversity, not
   state-space size. *)
let cheap_litmus =
  List.filter
    (fun (c : C.concurrent) ->
      List.mem c.C.cname [ "SB-rlx"; "LB-rlx"; "LB-data"; "RW-race" ])
    C.concurrent_programs

let det_explore_with_domain_memo =
  QCheck.Test.make
    ~name:
      "Sweep.run_with per-domain memo: jobs:4 = jobs:1 on litmus slices"
    ~count:3
    QCheck.(list_of_size Gen.(return (List.length cheap_litmus)) bool)
    (fun mask ->
      let tasks = slice_of mask cheap_litmus in
      let f memo (c : C.concurrent) =
        let r = M.explore ~memo (Lang.Parser.threads_of_string c.C.threads) in
        (* everything except memo_hits/timing must be scheduling-proof,
           even though the per-domain memo is warm from earlier tasks *)
        Fmt.str "%s:%d:%b:%b:%a" c.C.cname r.M.states r.M.races r.M.truncated
          M.pp_behaviors r.M.behaviors
      in
      let sweep jobs =
        S.run_with ~jobs ~chunk:1 ~init:M.make_memo ~f tasks
      in
      let seq = sweep 1 and par = sweep 4 in
      List.length seq = List.length par && List.for_all2 String.equal seq par)

(* Hardware backends must be scheduling-proof too: Tso's store-buffer
   interleaving and Armv8's reordering frontier are explored with
   worklists whose visit order could silently leak into the behavior
   set.  Sweeping the E15 grid at jobs:4 vs jobs:1 pins every cell,
   chain verdict and state count (wall_ms excluded — it is the one
   timing field). *)
let e15_summary (r : Litmus.Matrix.e15_row) =
  Printf.sprintf "%s:%s:%b:%b" r.Litmus.Matrix.ge.C.g.C.cname
    (String.concat ","
       (List.map
          (fun (m, allowed) -> Printf.sprintf "%s=%b" m allowed)
          r.Litmus.Matrix.cells))
    r.Litmus.Matrix.chain_ok r.Litmus.Matrix.truncated

let det_backend_grid =
  QCheck.Test.make
    ~name:"backend grid: jobs:4 = jobs:1 on random E15 slices" ~count:4
    QCheck.(list_of_size Gen.(return (List.length C.grid_programs)) bool)
    (fun mask ->
      let tasks = slice_of mask C.grid_programs in
      let f ge = e15_summary (Litmus.Matrix.e15_row ge) in
      let seq = S.run ~jobs:1 ~f tasks in
      let par = S.run ~jobs:4 ~chunk:1 ~f tasks in
      List.length seq = List.length par && List.for_all2 String.equal seq par)

let suite =
  [
    Alcotest.test_case "sweep: empty task list" `Quick test_empty;
    Alcotest.test_case "sweep: single task" `Quick test_single;
    Alcotest.test_case "sweep: jobs > tasks" `Quick test_more_jobs_than_tasks;
    Alcotest.test_case "sweep: input order" `Quick test_input_order;
    Alcotest.test_case "sweep: exception propagation, pool survives" `Quick
      test_exception_propagates;
    Alcotest.test_case "sweep: find_first picks min index" `Quick
      test_find_first_min_index;
    Alcotest.test_case "sweep: find_first none" `Quick test_find_first_none;
    Alcotest.test_case "sweep: per-domain envs" `Quick test_run_with_envs;
    Alcotest.test_case "sweep: run_timed" `Quick test_run_timed;
    QCheck_alcotest.to_alcotest det_transformations;
    QCheck_alcotest.to_alcotest det_explore_with_domain_memo;
    QCheck_alcotest.to_alcotest det_backend_grid;
  ]
