let () =
  Alcotest.run "promising_seq"
    [
      ("lang", Test_lang.suite);
      ("substrate", Test_substrate.suite);
      ("seq-behavior", Test_behavior.suite);
      ("seq-refine", Test_seq_refine.suite);
      ("seq-advanced", Test_seq_advanced.suite);
      ("seq-oracle", Test_oracle.suite);
      ("promising", Test_promising.suite);
      ("optimizer", Test_optimizer.suite);
      ("baselines", Test_baselines.suite);
      ("backends", Test_backends.suite);
      ("engine", Test_engine.suite);
      ("robustness", Test_robustness.suite);
      ("adequacy", Test_adequacy.suite);
      ("golden", Test_golden.suite);
      ("diffcore", Test_diffcore.suite);
      ("properties", Test_properties.suite);
      ("analysis", Test_analysis.suite);
      ("service", Test_service.suite);
      ("fuzz", Test_fuzz.suite);
      ("cli", Test_cli.suite);
    ]
