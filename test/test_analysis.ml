(* Static analysis layer: paths, dataflow tables, permission/mode/liveness
   analyses, lint diagnostics, and the static fast-path certifier.

   The load-bearing properties are differential, checked by QCheck:
   - racy-access soundness: every dynamic racy access SEQ can perform
     (over all initial permission sets and memories) is statically
     flagged — so a program the linter calls race-clean has none;
   - fast-path soundness: a static certificate is never issued for a
     pair whose advanced refinement enumeration refutes, and validation
     verdicts are identical with and without the fast path. *)

open Lang

let parse = Parser.stmt_of_string
let values2 = [ Value.Int 0; Value.Int 1 ]

let path_testable =
  Alcotest.testable Analysis.Path.pp Analysis.Path.equal

(* ------------------------------------------------------------------ *)
(* Paths                                                                *)
(* ------------------------------------------------------------------ *)

let test_path_roundtrip () =
  let s =
    parse
      "X.store(na, 1); a = Y.load(acq); \
       if a == 1 { b = X.load(na) } else { b = 0 }; \
       while b < 2 { b = b + 1 }; return b"
  in
  let count = ref 0 in
  Analysis.Path.iter_leaves s ~f:(fun path leaf ->
      incr count;
      match Analysis.Path.find s path with
      | Some leaf' ->
        Alcotest.(check bool)
          (Analysis.Path.to_string path ^ " resolves to its leaf")
          true
          (Stdlib.compare leaf leaf' = 0)
      | None -> Alcotest.fail "path does not resolve");
  Alcotest.(check bool) "saw several leaves" true (!count >= 6);
  Alcotest.(check string) "root renders as /" "/"
    (Analysis.Path.to_string Analysis.Path.root)

let test_path_describe () =
  let s = parse "X.store(na, 1); a = X.load(na)" in
  let descrs = ref [] in
  Analysis.Path.iter_leaves s ~f:(fun path _ ->
      descrs := Analysis.Path.describe s path :: !descrs);
  Alcotest.(check bool) "descriptions are nonempty" true
    (List.for_all (fun d -> String.length d > 0) !descrs)

(* ------------------------------------------------------------------ *)
(* Permission analysis                                                  *)
(* ------------------------------------------------------------------ *)

let racy_pairs s =
  List.sort_uniq compare
    (List.map
       (fun (a : Analysis.Perm.access) -> (a.kind, a.loc))
       (Analysis.Perm.racy_accesses s))

let test_perm_basic () =
  let x = Loc.make "X" in
  (* the store itself is possibly racy; the read after it is covered *)
  let s = parse "X.store(na, 1); a = X.load(na); return a" in
  Alcotest.(check (list (pair string string)))
    "only the store flags"
    [ ("write", "X") ]
    (List.map
       (fun (k, l) ->
         ((match k with `Read -> "read" | `Write -> "write"), Loc.name l))
       (racy_pairs s));
  (* a release destroys the fact *)
  let s2 = parse "X.store(na, 1); Y.store(rel, 1); a = X.load(na); return a" in
  Alcotest.(check bool) "read after release flags" true
    (List.mem (`Read, x) (racy_pairs s2));
  (* an acquire preserves it *)
  let s3 = parse "X.store(na, 1); a = Y.load(acq); b = X.load(na); return b" in
  Alcotest.(check bool) "read after acquire does not flag" false
    (List.mem (`Read, x) (racy_pairs s3))

let test_perm_join () =
  (* fact must survive only when forced on both branches *)
  let s =
    parse
      "a = Y.load(rlx); \
       if a == 1 { X.store(na, 1) } else { X.store(na, 2) }; \
       b = X.load(na); return b"
  in
  let x = Loc.make "X" in
  Alcotest.(check bool) "covered after both-branch write" false
    (List.mem (`Read, x) (racy_pairs s));
  let s2 =
    parse
      "a = Y.load(rlx); \
       if a == 1 { X.store(na, 1) } else { Y.store(rel, 1) }; \
       b = X.load(na); return b"
  in
  Alcotest.(check bool) "not covered after one-branch release" true
    (List.mem (`Read, x) (racy_pairs s2))

let test_perm_loop () =
  (* the loop may run zero times: facts forced only inside do not leak *)
  let s =
    parse
      "i = 0; while i < 2 { X.store(na, 1); i = i + 1 }; \
       a = X.load(na); return a"
  in
  let x = Loc.make "X" in
  Alcotest.(check bool) "read after maybe-zero-trip loop flags" true
    (List.mem (`Read, x) (racy_pairs s));
  (* but a pre-loop write makes everything covered, loop or not *)
  let s2 =
    parse
      "X.store(na, 0); i = 0; while i < 2 { X.store(na, 1); i = i + 1 }; \
       a = X.load(na); return a"
  in
  Alcotest.(check (list (pair string string)))
    "only the initial store flags"
    [ ("write", "X") ]
    (List.map
       (fun (k, l) ->
         ((match k with `Read -> "read" | `Write -> "write"), Loc.name l))
       (racy_pairs s2))

let test_store_intro () =
  (* after x :=na v the written-set justifies a redundant store; after a
     release it does not *)
  let unsafe s =
    List.map (fun (_, l) -> Loc.name l) (Analysis.Perm.store_intro_unsafe s)
  in
  Alcotest.(check (list string)) "second store is F-covered" [ "X" ]
    (unsafe (parse "X.store(na, 1); X.store(na, 2)"));
  Alcotest.(check (list string)) "release resets F" [ "X"; "X" ]
    (unsafe (parse "X.store(na, 1); Y.store(rel, 1); X.store(na, 2)"))

(* ------------------------------------------------------------------ *)
(* Mode-consistency analysis                                            *)
(* ------------------------------------------------------------------ *)

let test_modes_static_vs_runtime () =
  (* per-thread conflicts are exactly what Config.check_no_mixing raises
     on; combined conflicts are strictly stronger (cross-thread mixing) *)
  let cases =
    [
      [ parse "X.store(na, 1); a = X.load(na); return a" ];
      [ parse "X.store(na, 1); a = X.load(rlx); return a" ];
      [ parse "X.store(rlx, 1); a = X.load(acq); return a" ];
      Parser.threads_of_string
        "X.store(na, 1); Y.store(rel, 1) ||| a = Y.load(acq); b = X.load(na)";
      Parser.threads_of_string
        "X.store(na, 1) ||| a = X.load(acq); return a";
    ]
  in
  List.iter
    (fun threads ->
      let static = Analysis.Modes.per_thread_conflicts threads <> [] in
      let dynamic =
        match Seq_model.Config.check_no_mixing threads with
        | () -> false
        | exception Seq_model.Config.Mixed_access _ -> true
      in
      Alcotest.(check bool) "per-thread static mixing = runtime mixing"
        dynamic static;
      (* combined ⊇ per-thread *)
      if static then
        Alcotest.(check bool) "combined conflicts subsume per-thread" false
          (Analysis.Modes.consistent threads))
    cases;
  (* cross-thread mixing: invisible to the runtime check, caught combined *)
  let cross =
    Parser.threads_of_string "X.store(na, 1) ||| a = X.load(acq); return a"
  in
  Alcotest.(check bool) "cross-thread mixing has no per-thread conflict" true
    (Analysis.Modes.per_thread_conflicts cross = []);
  Alcotest.(check bool) "cross-thread mixing is combined-inconsistent" false
    (Analysis.Modes.consistent cross)

let test_modes_catalog () =
  (* no catalog program is mixed — and the linter agrees with the runtime
     check on every one of them *)
  List.iter
    (fun (c : Litmus.Catalog.concurrent) ->
      let threads = Parser.threads_of_string c.Litmus.Catalog.threads in
      Alcotest.(check bool)
        (c.Litmus.Catalog.cname ^ " is mode-consistent")
        true
        (Analysis.Modes.consistent threads))
    Litmus.Catalog.concurrent_programs;
  List.iter
    (fun (t : Litmus.Catalog.transformation) ->
      let src = parse t.Litmus.Catalog.src
      and tgt = parse t.Litmus.Catalog.tgt in
      Alcotest.(check bool)
        (t.Litmus.Catalog.name ^ " src is mode-consistent alone")
        true
        (Analysis.Modes.consistent [ src ]);
      Alcotest.(check bool)
        (t.Litmus.Catalog.name ^ " tgt is mode-consistent alone")
        true
        (Analysis.Modes.consistent [ tgt ]);
      (* exactly one corpus pair changes a location's mode class between
         src and tgt: the na→rlx strengthening, legal input that the
         refinement check (not a well-formedness gate) refutes *)
      Alcotest.(check bool)
        (t.Litmus.Catalog.name ^ " combined consistency")
        (t.Litmus.Catalog.name <> "no-na-to-rlx-strengthening")
        (Analysis.Modes.consistent [ src; tgt ]))
    Litmus.Catalog.transformations

let test_modes_conflict_sites () =
  let threads =
    Parser.threads_of_string "X.store(na, 1) ||| a = X.load(acq); return a"
  in
  match Analysis.Modes.combined_conflicts threads with
  | [ c ] ->
    Alcotest.(check string) "conflict location" "X" (Loc.name c.Analysis.Modes.cloc);
    Alcotest.(check int) "na witness thread" 0 c.Analysis.Modes.na_site.Analysis.Modes.thread;
    Alcotest.(check int) "at witness thread" 1 c.Analysis.Modes.at_site.Analysis.Modes.thread
  | l -> Alcotest.failf "expected exactly one conflict, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* Liveness and pass sites                                              *)
(* ------------------------------------------------------------------ *)

let test_live_dead_assignments () =
  let s = parse "a = 1; a = 2; b = X.load(na); return a" in
  let dead = Analysis.Live.dead_assignments s in
  (* dead: the first a = 1 (overwritten) and the unused load into b *)
  Alcotest.(check int) "two dead assignments" 2 (List.length dead);
  let _, _, _, dae_sites = Optimizer.Dae.run s in
  List.iter
    (fun (path, _) ->
      Alcotest.(check bool)
        ("DAE removes " ^ Analysis.Path.to_string path)
        true
        (List.exists (Analysis.Path.equal path) dae_sites))
    dead

let test_pass_sites_resolve () =
  (* every rewrite site recorded by a pass names a real node of its input *)
  let progs =
    [
      parse
        "X.store(na, 2); l = Y.load(acq); \
         if l == 0 { a = X.load(na); Y.store(rel, 1) }; \
         b = X.load(na); return 10*a + b";
      parse
        "X.store(na, 1); X.store(na, 2); s = 0; i = 0; \
         while i < 2 { a = X.load(na); b = X.load(na); s = s + a + b; \
         i = i + 1 }; return s";
    ]
  in
  List.iter
    (fun s ->
      List.iter
        (fun pass ->
          let _, rewrites, _, sites = Optimizer.Driver.run_pass pass s in
          if pass <> Optimizer.Driver.CP && pass <> Optimizer.Driver.LICM then
            Alcotest.(check int)
              (Optimizer.Driver.pass_name pass ^ ": one site per rewrite")
              rewrites (List.length sites);
          List.iter
            (fun p ->
              Alcotest.(check bool)
                (Optimizer.Driver.pass_name pass ^ " site "
                 ^ Analysis.Path.to_string p ^ " resolves")
                true
                (Analysis.Path.find s p <> None))
            sites)
        Optimizer.Driver.all_passes)
    progs

(* ------------------------------------------------------------------ *)
(* Lint                                                                 *)
(* ------------------------------------------------------------------ *)

let rules diags = List.map (fun d -> d.Optimizer.Lint.rule) diags

let test_lint_rules () =
  let diags =
    Optimizer.Lint.lint
      (Parser.threads_of_string "X.store(na, 1) ||| a = X.load(acq); return a")
  in
  Alcotest.(check bool) "mixed flagged" true
    (List.mem Optimizer.Lint.Mixed_access (rules diags));
  Alcotest.(check bool) "mixed is an error" true
    (Optimizer.Lint.has_errors diags);
  let diags2 =
    Optimizer.Lint.lint [ parse "X.store(na, 1); X.store(na, 2); a = X.load(na); return a" ]
  in
  Alcotest.(check bool) "dead store hint" true
    (List.mem Optimizer.Lint.Dead_store (rules diags2));
  Alcotest.(check bool) "redundant load hint" true
    (List.mem Optimizer.Lint.Redundant_load (rules diags2));
  let clean = Optimizer.Lint.lint [ parse "a = Y.load(acq); Y.store(rel, a); return a" ] in
  Alcotest.(check (list string)) "atomic-only program is clean" []
    (List.map (fun d -> Optimizer.Lint.rule_name d.Optimizer.Lint.rule) clean)

let test_lint_mixed_always_flagged () =
  (* acceptance: seqlint flags every Mixed_access program statically *)
  let mixed_cases =
    [
      "X.store(na, 1); a = X.load(rlx); return a";
      "X.store(rlx, 1); a = X.load(na); return a";
      "a = X.load(na) ||| b = X.load(acq)";
      "X.store(na, 1) ||| b = fadd(X, 1)";
    ]
  in
  List.iter
    (fun text ->
      let threads = Parser.threads_of_string text in
      let diags = Optimizer.Lint.lint ~hints:false threads in
      Alcotest.(check bool)
        ("mixed diagnosed: " ^ text)
        true
        (List.mem Optimizer.Lint.Mixed_access (rules diags)))
    mixed_cases

(* ------------------------------------------------------------------ *)
(* Static fast-path certifier                                           *)
(* ------------------------------------------------------------------ *)

let test_certify_corpus () =
  (* the certifier may fire only on pairs whose expected advanced verdict
     is Sound, its certificates must replay, and it must fire on a
     nontrivial part of the corpus *)
  let hits = ref 0 in
  List.iter
    (fun (t : Litmus.Catalog.transformation) ->
      let src = parse t.Litmus.Catalog.src
      and tgt = parse t.Litmus.Catalog.tgt in
      match Optimizer.Certify.attempt ~src ~tgt () with
      | None -> ()
      | Some c ->
        incr hits;
        Alcotest.(check string)
          (t.Litmus.Catalog.name ^ ": static cert only on sound pairs")
          "sound"
          (Litmus.Catalog.verdict_to_string t.Litmus.Catalog.advanced);
        Alcotest.(check bool)
          (t.Litmus.Catalog.name ^ ": certificate replays")
          true
          (Optimizer.Certify.replay c ~src ~tgt))
    Litmus.Catalog.transformations;
  Alcotest.(check bool) "nonzero corpus hit rate" true (!hits > 0)

let test_certify_refuses_mixed () =
  let src = parse "X.store(na, 1); a = X.load(rlx); return a" in
  Alcotest.(check bool) "no certificate for mixed programs" true
    (Optimizer.Certify.attempt ~src ~tgt:src () = None)

let test_validate_provenance () =
  (* certified_optimize output is its own pipeline image: static route *)
  let s = parse "X.store(na, 1); a = X.load(na); b = X.load(na); return a + b" in
  let _, v = Optimizer.Validate.certified_optimize ~values:values2 s in
  (match v.Optimizer.Validate.proof with
   | Optimizer.Validate.Static _ -> ()
   | Optimizer.Validate.Static_abs _ ->
     Alcotest.fail "pipeline images take the replay route, not the abstract one"
   | Optimizer.Validate.Enumerated -> Alcotest.fail "expected the static route");
  Alcotest.(check bool) "valid" true v.Optimizer.Validate.valid;
  (* with the fast path off, same verdict through enumeration *)
  let _, v' =
    Optimizer.Validate.certified_optimize ~values:values2 ~fast_path:false s
  in
  (match v'.Optimizer.Validate.proof with
   | Optimizer.Validate.Enumerated -> ()
   | Optimizer.Validate.Static _ | Optimizer.Validate.Static_abs _ ->
     Alcotest.fail "fast path was disabled");
  Alcotest.(check bool) "same valid" v.Optimizer.Validate.valid
    v'.Optimizer.Validate.valid;
  Alcotest.(check bool) "same simple" v.Optimizer.Validate.simple
    v'.Optimizer.Validate.simple


(* ------------------------------------------------------------------ *)
(* seqabs: value numbering, available accesses, static DRF              *)
(* ------------------------------------------------------------------ *)

(* Degenerate nested loops: the fixpoint terminates with no widening
   bound (the must-state chain shrinks pointwise), and only
   iteration-independent bindings survive the join. *)
let test_vn_nested_loops () =
  let s =
    parse
      "a = 1; b = a + 1; c = 0; \
       while (d < 2) { while (e < 2) { e = e + 1; c = c + 1 }; d = d + 1 }; \
       return b + c"
  in
  let facts = Analysis.Vn.analyze s in
  let ret_state =
    match
      List.find_map
        (fun (p, st) ->
          match Analysis.Path.find s p with
          | Some (Stmt.Return _) -> Some st
          | _ -> None)
        (Analysis.Path.Map.bindings facts)
    with
    | Some st -> st
    | None -> Alcotest.fail "no before-fact recorded at the return"
  in
  let bound r = Analysis.Vn.reg_vn ret_state (Reg.make r) <> None in
  Alcotest.(check bool) "loop-independent a survives" true (bound "a");
  Alcotest.(check bool) "loop-independent b survives" true (bound "b");
  Alcotest.(check bool) "iteration-dependent c is dropped" false (bound "c");
  Alcotest.(check bool) "loop counter d is dropped" false (bound "d");
  Alcotest.(check bool) "inner counter e is dropped" false (bound "e")

(* loop_fix directly on degenerate bodies: identity stabilizes
   immediately; a body rebinding a register to a fresh number every
   probe converges by dropping the binding. *)
let test_vn_loop_fix_degenerate () =
  let ctx = Analysis.Vn.create () in
  let a = Reg.make "a" in
  let st0 =
    Analysis.Vn.transfer ctx Analysis.Vn.empty
      (Stmt.Assign (a, Expr.int 1))
  in
  let _, iters = Analysis.Vn.loop_fix (fun st -> st) st0 in
  Alcotest.(check bool) "identity body stabilizes immediately" true
    (iters <= 2);
  let step st =
    { st with Analysis.Vn.regs = Reg.Map.add a (Analysis.Vn.fresh ctx)
                                   st.Analysis.Vn.regs }
  in
  let stf, iters' = Analysis.Vn.loop_fix step st0 in
  Alcotest.(check bool) "fresh-per-probe binding is dropped" true
    (Analysis.Vn.reg_vn stf a = None);
  Alcotest.(check bool) "convergence within the binding count" true
    (iters' <= 3)

let test_avail_findings () =
  let s =
    parse
      "X.store(na, 1); a = X.load(na); b = X.load(na); X.store(na, b); \
       return b"
  in
  let fs = Analysis.Avail.analyze s in
  let kinds =
    List.sort_uniq compare
      (List.map
         (fun f -> (Analysis.Avail.kind_name f.Analysis.Avail.kind,
                    f.Analysis.Avail.permitted))
         fs)
  in
  Alcotest.(check bool) "the second load is redundant (permitted)" true
    (List.mem ("redundant-load", true) kinds);
  Alcotest.(check bool) "the write-back store is a noop (permitted)" true
    (List.mem ("noop-store", true) kinds)

(* Static DRF vs the promising-machine reference: every Race_free
   verdict must be confirmed by the promise-free race check, and the
   ownership-protocol needle (MP-rel-acq) must actually be certified. *)
let test_drf_catalog_agreement () =
  let verdicts =
    List.map
      (fun (c : Litmus.Catalog.concurrent) ->
        let threads = Parser.threads_of_string c.Litmus.Catalog.threads in
        (c.Litmus.Catalog.cname, threads, Analysis.Drf.certify threads))
      Litmus.Catalog.concurrent_programs
  in
  let race_free =
    List.filter_map
      (fun (nm, threads, v) ->
        match v with
        | Analysis.Drf.Race_free _ -> Some (nm, threads)
        | Analysis.Drf.Unproven _ -> None)
      verdicts
  in
  Alcotest.(check bool) "MP-rel-acq certified race-free" true
    (List.mem_assoc "MP-rel-acq" race_free);
  Alcotest.(check bool) "WW-race stays unproven" true
    (List.for_all (fun (nm, _) -> nm <> "WW-race") race_free);
  List.iter
    (fun (nm, threads) ->
      let r = Baselines.Drf.check threads in
      Alcotest.(check bool)
        (nm ^ ": promise-free reference confirms race-freedom") true
        r.Baselines.Drf.pf_race_free)
    race_free

(* Certabs on the catalog: never certifies an advanced-unsound pair, and
   covers strictly more of it than pipeline replay (the E14 uplift). *)
let test_certabs_corpus () =
  let replay = ref 0 and union = ref 0 in
  List.iter
    (fun (t : Litmus.Catalog.transformation) ->
      let src = Parser.stmt_of_string t.Litmus.Catalog.src in
      let tgt = Parser.stmt_of_string t.Litmus.Catalog.tgt in
      let c = Optimizer.Certify.attempt ~src ~tgt () in
      let a = Optimizer.Certabs.attempt ~src ~tgt () in
      if c <> None then incr replay;
      if c <> None || a <> None then incr union;
      if a <> None then
        Alcotest.(check string)
          (t.Litmus.Catalog.name ^ ": abstract certificates are sound")
          "sound"
          (Litmus.Catalog.verdict_to_string t.Litmus.Catalog.advanced))
    Litmus.Catalog.transformations;
  Alcotest.(check bool)
    "abstract tier certifies strictly more than pipeline replay" true
    (!union > !replay)

(* ------------------------------------------------------------------ *)
(* QCheck properties                                                    *)
(* ------------------------------------------------------------------ *)

let small_cfg =
  {
    Gen.default_config with
    Gen.na_locs = [ Loc.make "X" ];
    at_locs = [ Loc.make "Y" ];
    regs = [ Reg.make "a"; Reg.make "b" ];
    values = [ 0; 1 ];
  }

let stmt_arbitrary cfg ~size =
  QCheck.make
    ~print:(fun s -> Stmt.to_string s)
    (fun rand -> Gen.gen_program cfg rand ~size)

(* All (kind, loc) pairs of racy non-atomic accesses SEQ can actually
   perform, over every initial permission set and memory of the domain —
   a bounded but exhaustive-within-fuel exploration via Config.moves. *)
let dynamic_racy_pairs (s : Stmt.t) : ([ `Read | `Write ] * Loc.t) list =
  let module CSet = Set.Make (Seq_model.Config) in
  let d = Domain.of_stmts ~values:values2 [ s ] in
  let seen = ref CSet.empty in
  let acc = ref [] in
  let fuel = ref 30_000 in
  let rec visit cfg =
    if !fuel > 0 && not (CSet.mem cfg !seen) then begin
      decr fuel;
      seen := CSet.add cfg !seen;
      (match Prog.step cfg.Seq_model.Config.prog with
       | Prog.Do_read (Mode.Rna, x, _)
         when not (Loc.Set.mem x cfg.Seq_model.Config.perm) ->
         acc := (`Read, x) :: !acc
       | Prog.Do_write (Mode.Wna, x, _, _)
         when not (Loc.Set.mem x cfg.Seq_model.Config.perm) ->
         acc := (`Write, x) :: !acc
       | _ -> ());
      List.iter
        (fun (_, next) ->
          match next with
          | Seq_model.Config.Cont c -> visit c
          | Seq_model.Config.Bot -> ())
        (Seq_model.Config.moves d cfg)
    end
  in
  List.iter
    (fun perm ->
      List.iter
        (fun mem -> visit (Seq_model.Config.make ~perm ~mem (Prog.init s)))
        (Domain.memories d))
    (Domain.subsets d.Domain.na_locs);
  List.sort_uniq compare !acc

(* Racy-access soundness: the static racy set covers the dynamic one, so
   a no-racy lint verdict means no execution races. *)
let lint_soundness =
  QCheck.Test.make ~name:"static racy accesses cover SEQ's dynamic races"
    ~count:30
    (stmt_arbitrary small_cfg ~size:4)
    (fun s ->
      let static = racy_pairs s in
      List.for_all (fun p -> List.mem p static) (dynamic_racy_pairs s))

(* Fast-path completeness on pipeline images: a prefix of the pipeline
   applied to s is always certified, and the certificate is honest. *)
let certify_pipeline_images =
  QCheck.Test.make ~name:"pipeline images always get a static certificate"
    ~count:30
    (QCheck.pair
       (QCheck.int_bound (List.length Optimizer.Driver.all_passes))
       (stmt_arbitrary small_cfg ~size:5))
    (fun (k, src) ->
      let prefix = List.filteri (fun i _ -> i < k) Optimizer.Driver.all_passes in
      let tgt =
        List.fold_left
          (fun cur p ->
            let cur', _, _, _ = Optimizer.Driver.run_pass p cur in
            cur')
          src prefix
      in
      match Optimizer.Certify.attempt ~src ~tgt () with
      | Some c -> Optimizer.Certify.replay c ~src ~tgt
      | None -> false)

(* Fast-path soundness: whenever a certificate is issued for a random
   pair, enumeration confirms the advanced refinement. *)
let certify_soundness =
  QCheck.Test.make
    ~name:"a static certificate is never refuted by enumeration" ~count:40
    (QCheck.pair
       (stmt_arbitrary small_cfg ~size:4)
       (stmt_arbitrary small_cfg ~size:4))
    (fun (src, tgt) ->
      match Optimizer.Certify.attempt ~src ~tgt () with
      | None -> QCheck.assume_fail ()
      | Some _ ->
        let d = Domain.of_stmts ~values:values2 [ src; tgt ] in
        Seq_model.Advanced.check d ~src ~tgt)

(* Verdict equivalence: the fast path changes the route, never the
   verdict. *)
let validate_route_independent =
  QCheck.Test.make ~name:"validation verdicts are route-independent"
    ~count:15
    (stmt_arbitrary small_cfg ~size:4)
    (fun s ->
      let _, v = Optimizer.Validate.certified_optimize ~values:values2 s in
      let _, v' =
        Optimizer.Validate.certified_optimize ~values:values2 ~fast_path:false
          s
      in
      v.Optimizer.Validate.valid = v'.Optimizer.Validate.valid
      && v.Optimizer.Validate.simple = v'.Optimizer.Validate.simple)

(* The sites a pass reports always name nodes of its input program. *)
let sites_always_resolve =
  QCheck.Test.make ~name:"pass rewrite sites resolve in the input" ~count:50
    (stmt_arbitrary
       { small_cfg with Gen.allow_loops = true; regs = [ Reg.make "a"; Reg.make "b"; Reg.make "c" ] }
       ~size:6)
    (fun s ->
      List.for_all
        (fun pass ->
          let _, _, _, sites = Optimizer.Driver.run_pass pass s in
          List.for_all (fun p -> Analysis.Path.find s p <> None) sites)
        Optimizer.Driver.all_passes)


(* Static_abs soundness: whenever the abstract certifier accepts a
   random pair, enumeration confirms the advanced refinement. *)
let certabs_soundness =
  QCheck.Test.make
    ~name:"an abstract certificate is never refuted by enumeration"
    ~count:40
    (QCheck.pair
       (stmt_arbitrary small_cfg ~size:4)
       (stmt_arbitrary small_cfg ~size:4))
    (fun (src, tgt) ->
      match Optimizer.Certabs.attempt ~src ~tgt () with
      | None -> QCheck.assume_fail ()
      | Some _ ->
        let d = Domain.of_stmts ~values:values2 [ src; tgt ] in
        Seq_model.Advanced.check d ~src ~tgt)

(* Analysis facts are invariant under Stmt.normalize: paths move, but
   the observable facts (racy accesses, availability findings, lint
   rules with their severities and locations) must not. *)
let facts_normalize_invariant =
  let avail_sig s =
    List.sort compare
      (List.map
         (fun f ->
           (f.Analysis.Avail.loc, f.Analysis.Avail.kind,
            f.Analysis.Avail.permitted))
         (Analysis.Avail.analyze s))
  in
  let lint_sig s =
    List.sort compare
      (List.map
         (fun d ->
           (d.Optimizer.Lint.rule, d.Optimizer.Lint.sev, d.Optimizer.Lint.loc))
         (Optimizer.Lint.lint [ s ]))
  in
  QCheck.Test.make ~name:"analysis facts are invariant under normalize"
    ~count:40
    (stmt_arbitrary small_cfg ~size:5)
    (fun s ->
      let n = Stmt.normalize s in
      List.sort_uniq compare (racy_pairs s)
      = List.sort_uniq compare (racy_pairs n)
      && avail_sig s = avail_sig n
      && lint_sig s = lint_sig n)

let qcheck_tests =
  List.map (QCheck_alcotest.to_alcotest ~long:false)
    [
      lint_soundness;
      certify_pipeline_images;
      certify_soundness;
      certabs_soundness;
      facts_normalize_invariant;
      validate_route_independent;
      sites_always_resolve;
    ]

let suite =
  [
    Alcotest.test_case "path: iter_leaves/find round-trip" `Quick
      test_path_roundtrip;
    Alcotest.test_case "path: describe is single-line" `Quick
      test_path_describe;
    Alcotest.test_case "perm: store covers, release destroys, acquire keeps"
      `Quick test_perm_basic;
    Alcotest.test_case "perm: joins intersect" `Quick test_perm_join;
    Alcotest.test_case "perm: loop facts do not leak" `Quick test_perm_loop;
    Alcotest.test_case "perm: store-introduction regions" `Quick
      test_store_intro;
    Alcotest.test_case "modes: static = runtime mixing" `Quick
      test_modes_static_vs_runtime;
    Alcotest.test_case "modes: catalog is mode-consistent" `Quick
      test_modes_catalog;
    Alcotest.test_case "modes: conflict cites both sites" `Quick
      test_modes_conflict_sites;
    Alcotest.test_case "live: dead assignments are DAE's sites" `Quick
      test_live_dead_assignments;
    Alcotest.test_case "passes: sites resolve and count rewrites" `Quick
      test_pass_sites_resolve;
    Alcotest.test_case "lint: rule coverage" `Quick test_lint_rules;
    Alcotest.test_case "lint: every mixed program flagged statically" `Quick
      test_lint_mixed_always_flagged;
    Alcotest.test_case "certify: corpus hits are sound and replay" `Quick
      test_certify_corpus;
    Alcotest.test_case "certify: mixed programs refused" `Quick
      test_certify_refuses_mixed;
    Alcotest.test_case "validate: provenance and route equivalence" `Quick
      test_validate_provenance;
    Alcotest.test_case "vn: nested-loop fixpoint keeps only invariants"
      `Quick test_vn_nested_loops;
    Alcotest.test_case "vn: loop_fix on degenerate bodies" `Quick
      test_vn_loop_fix_degenerate;
    Alcotest.test_case "avail: redundant load and noop store cited" `Quick
      test_avail_findings;
    Alcotest.test_case "drf: static certifier agrees with the reference"
      `Quick test_drf_catalog_agreement;
    Alcotest.test_case "certabs: corpus coverage is sound and uplifting"
      `Quick test_certabs_corpus;
  ]
  @ qcheck_tests
