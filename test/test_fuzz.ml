(* Tests for the seqfuzz subsystem: printer/parser round-trip through
   Fingerprint, the Gen weight-knob compatibility contract (golden
   seeds), mutation well-formedness, shrinker invariants, the planted
   variants' ground truth, and the campaign's jobs-determinism and
   planted-refutation contracts. *)

open Lang

(* ------------------------------------------------------------------ *)
(* QCheck plumbing (same idiom as test_properties). *)

let stmt_gen (cfg : Gen.config) ~size : Stmt.t QCheck.Gen.t =
 fun rand -> Gen.gen_program cfg rand ~size

let stmt_arbitrary cfg ~size =
  QCheck.make ~print:(fun s -> Stmt.to_string s) (stmt_gen cfg ~size)

let rich_cfg =
  {
    Gen.default_config with
    Gen.allow_loops = true;
    allow_rmw = true;
    at_locs = Gen.default_config.Gen.at_locs @ [ Loc.make "Z" ];
  }

(* ------------------------------------------------------------------ *)
(* 1. Printer/parser round-trip: on normalized programs, parse∘print is
   the identity up to Fingerprint (the parser produces normalized
   trees, and Stmt.normalize is idempotent). *)

let roundtrip_fingerprint =
  QCheck.Test.make ~name:"parse (print p) re-fingerprints identically"
    ~count:200
    (stmt_arbitrary rich_cfg ~size:8)
    (fun p ->
      let q = Stmt.normalize p in
      let q' = Parser.stmt_of_string (Stmt.to_string q) in
      Fingerprint.stmt q = Fingerprint.stmt q')

(* The two printer gaps this property caught: negative constants used to
   print as application-position [- 1] (unparseable), and [Seq] used to
   rely on associativity the parser does not reproduce. *)
let test_roundtrip_negative_const () =
  let p =
    Stmt.seq
      (Stmt.Assign (Reg.make "a", Expr.int (-1)))
      (Stmt.seq
         (Stmt.Store
            (Mode.Wna, Loc.make "X",
             Expr.Binop (Expr.Add, Expr.int (-2), Expr.reg (Reg.make "a"))))
         (Stmt.Return (Expr.Unop (Expr.Neg, Expr.reg (Reg.make "a")))))
  in
  let q = Stmt.normalize p in
  let q' = Parser.stmt_of_string (Stmt.to_string q) in
  Alcotest.(check string)
    "fingerprint round-trips" (Fingerprint.stmt q) (Fingerprint.stmt q')

let test_normalize_idempotent_on_parse () =
  let src = "a = X.load(na); Y.store(rel, 1); if a { b = -3 }; return a + b" in
  let p = Parser.stmt_of_string src in
  Alcotest.(check bool)
    "parser output is normalized" true (Stmt.normalize p = p)

(* ------------------------------------------------------------------ *)
(* 2. Weight-knob compatibility: with every knob at its default the
   generator consumes the RNG stream exactly as it always did.  These
   fingerprints were pinned before the knobs existed; a change here
   means old seeds no longer reproduce old corpora. *)

let golden_seeds =
  (* (generator, seed, size, md5 of Fingerprint.stmt) *)
  [
    ("gen_program", 1, 4, "daddd0a2e03daea8755d9ef3e3761dac");
    ("gen_linear", 1, 4, "95f715ad0f271a272575e32645ce69bf");
    ("gen_loops", 1, 4, "ba044bd5a50e04a55247e97da40eecb2");
    ("gen_program", 7, 6, "f39e1bbf40273f0e3cf7ea96c2858b80");
    ("gen_linear", 7, 6, "f9b6ae71324292a7d9002415c041827d");
    ("gen_loops", 7, 6, "573d4b4b4251df28012cbd496b96a278");
    ("gen_program", 42, 8, "37aa443d475fab47dfdf7042840b2d1a");
    ("gen_linear", 42, 8, "64e1a795d6684138102eb6e137b8b501");
    ("gen_loops", 42, 8, "156fa8c3b591f3edea6aed72053d5294");
    ("gen_program", 123, 10, "0ff31370bc0c6fadc5c9865f107173bd");
    ("gen_linear", 123, 10, "da6119263998988b6ebef651513cdc46");
    ("gen_loops", 123, 10, "ec2e0a3bd31eb975b475922889678ecf");
    ("gen_program", 2024, 12, "63a494d4cc31524e475e6c084babb9bc");
    ("gen_linear", 2024, 12, "8438bbe44bb164e1562c64826860d666");
    ("gen_loops", 2024, 12, "fe26bce686a25d3ad8f53525a6d59b0d");
  ]

let loops_cfg =
  { Gen.default_config with Gen.allow_loops = true; allow_rmw = true }

let test_golden_seeds () =
  List.iter
    (fun (gen, seed, size, expected) ->
      let st = Random.State.make [| seed; size |] in
      let p =
        match gen with
        | "gen_program" -> Gen.gen_program Gen.default_config st ~size
        | "gen_linear" -> Gen.gen_linear Gen.default_config st ~size
        | "gen_loops" -> Gen.gen_program loops_cfg st ~size
        | _ -> assert false
      in
      Alcotest.(check string)
        (Printf.sprintf "%s seed=%d size=%d" gen seed size)
        expected (Fingerprint.stmt p))
    golden_seeds

(* Dropping a weight to 0 removes the instruction family entirely. *)
let rec count_na_stores = function
  | Stmt.Store (Mode.Wna, _, _) -> 1
  | Stmt.Seq (a, b) | Stmt.If (_, a, b) -> count_na_stores a + count_na_stores b
  | Stmt.While (_, a) -> count_na_stores a
  | _ -> 0

let no_store_weight =
  QCheck.Test.make ~name:"w_na_store = 0 generates no non-atomic stores"
    ~count:100
    (stmt_arbitrary { Gen.default_config with Gen.w_na_store = 0 } ~size:8)
    (fun p -> count_na_stores p = 0)

(* ------------------------------------------------------------------ *)
(* 3. Well-formedness: generation and mutation keep the non-atomic and
   atomic pools disjoint and never invent locations. *)

let subset l1 l2 = List.for_all (fun x -> List.exists (Loc.equal x) l2) l1

let pools_ok (cfg : Gen.config) p =
  let d = Domain.of_stmts [ p ] in
  Analysis.Modes.per_thread_conflicts [ p ] = []
  && subset d.Domain.na_locs cfg.Gen.na_locs
  && subset d.Domain.at_locs cfg.Gen.at_locs

let weighted_cfg =
  {
    rich_cfg with
    Gen.w_na_load = 4;
    w_na_store = 2;
    w_mode_strong = 3;
    size_jitter = 2;
  }

let gen_well_formed =
  QCheck.Test.make ~name:"weighted generation keeps pools disjoint"
    ~count:200
    (stmt_arbitrary weighted_cfg ~size:8)
    (fun p -> pools_ok weighted_cfg p)

let mutant_gen (cfg : Gen.config) ~size ~rounds : Stmt.t QCheck.Gen.t =
 fun rand ->
  let p = ref (Gen.gen_program cfg rand ~size) in
  for _ = 1 to rounds do
    p := Fuzz.Mutate.mutate cfg rand !p
  done;
  !p

let mutate_well_formed =
  QCheck.Test.make ~name:"mutation chains keep pools disjoint" ~count:200
    (QCheck.make
       ~print:(fun s -> Stmt.to_string s)
       (mutant_gen weighted_cfg ~size:6 ~rounds:4))
    (fun p -> pools_ok weighted_cfg p)

let mutate_normalized =
  QCheck.Test.make ~name:"mutants are normalized" ~count:200
    (QCheck.make
       ~print:(fun s -> Stmt.to_string s)
       (mutant_gen rich_cfg ~size:6 ~rounds:2))
    (fun p -> Stmt.normalize p = p)

(* ------------------------------------------------------------------ *)
(* 4. Shrinker invariants: the result still satisfies the predicate, is
   never larger (strictly smaller when any step was accepted), and the
   whole process is deterministic. *)

let lex_le (a1, b1) (a2, b2) = a1 < a2 || (a1 = a2 && b1 <= b2)

let shrink_invariants =
  (* a cheap structural predicate keeps this property fast while still
     exercising every candidate class *)
  let rec has_acq = function
    | Stmt.Load (_, Mode.Racq, _) -> true
    | Stmt.Seq (a, b) | Stmt.If (_, a, b) -> has_acq a || has_acq b
    | Stmt.While (_, a) -> has_acq a
    | _ -> false
  in
  QCheck.Test.make ~name:"shrink: still-fails, never-larger, deterministic"
    ~count:150
    (stmt_arbitrary { rich_cfg with Gen.w_mode_strong = 2 } ~size:8)
    (fun p ->
      let p = Stmt.normalize p in
      QCheck.assume (has_acq p);
      let q, steps = Fuzz.Shrink.shrink ~check:has_acq p in
      let q', steps' = Fuzz.Shrink.shrink ~check:has_acq p in
      has_acq q
      && lex_le (Fuzz.Shrink.measure q) (Fuzz.Shrink.measure p)
      && (steps = 0 || Fuzz.Shrink.measure q < Fuzz.Shrink.measure p)
      && (q, steps) = (q', steps'))

let test_shrink_reaches_minimum () =
  (* an acquire load buried under junk shrinks to just that load *)
  let p =
    Parser.stmt_of_string
      "a = 1; X.store(na, 2); b = Y.load(acq); c = a + b; return c"
  in
  let rec has_acq = function
    | Stmt.Load (_, Mode.Racq, _) -> true
    | Stmt.Seq (a, b) | Stmt.If (_, a, b) -> has_acq a || has_acq b
    | Stmt.While (_, a) -> has_acq a
    | _ -> false
  in
  let q, _ = Fuzz.Shrink.shrink ~check:has_acq (Stmt.normalize p) in
  Alcotest.(check int) "shrinks to the single acquire" 1 (Stmt.size q)

(* ------------------------------------------------------------------ *)
(* 5. Planted ground truth: each variant transforms its needle and the
   output does not refine the input; the shapes the real passes handle
   correctly stay sound even under the buggy variants. *)

let refuted v src =
  let p = Stmt.normalize (Parser.stmt_of_string src) in
  let tgt = Fuzz.Planted.apply v p in
  Alcotest.(check bool)
    (Fuzz.Planted.name v ^ " transforms its needle") true (tgt <> p);
  Alcotest.(check bool)
    (Fuzz.Planted.name v ^ " is refuted on its needle") false
    (Fuzz.Oracle.refines
       ~budget:(Engine.Budget.make ~max_states:50_000 ())
       ~src:p ~tgt)

let sound_on v src =
  let p = Stmt.normalize (Parser.stmt_of_string src) in
  let tgt = Fuzz.Planted.apply v p in
  if tgt <> p then
    Alcotest.(check bool)
      (Fuzz.Planted.name v ^ " stays sound on the safe shape") true
      (Fuzz.Oracle.refines
         ~budget:(Engine.Budget.make ~max_states:50_000 ())
         ~src:p ~tgt)

let test_planted_dse () =
  (* store–release–acquire–store: eliminating the first store lets the
     environment observe the missing write (Ex 3.5 boundary) *)
  refuted Fuzz.Planted.Dse_rel
    "X.store(na, 1); Y.store(rel, 0); a = Z.load(acq); X.store(na, 2); \
     return a";
  (* across a release write alone the elimination is still sound in the
     advanced notion (Ex 3.5) — the buggy pass must NOT be refuted here *)
  sound_on Fuzz.Planted.Dse_rel
    "X.store(na, 1); Y.store(rel, 0); X.store(na, 2); return 0"

let test_planted_llf () =
  refuted Fuzz.Planted.Llf_acq
    "a = X.load(na); b = Y.load(acq); c = X.load(na); return c";
  (* forwarding with nothing between the loads is ordinary sound SLF *)
  sound_on Fuzz.Planted.Llf_acq "a = X.load(na); c = X.load(na); return c"

let test_planted_licm () =
  refuted Fuzz.Planted.Licm_acq
    "i = 0; while i < 2 { a = X.load(na); b = Y.load(acq); i = i + 1 }; \
     return a";
  (* hoisting out of an acquire-free loop is sound LICM *)
  sound_on Fuzz.Planted.Licm_acq
    "i = 0; while i < 2 { a = X.load(na); i = i + 1 }; return a"

let test_planted_cse () =
  (* acquire–acquire: the second load is an environment-choice event and
     never a common subexpression *)
  refuted Fuzz.Planted.Cse_acq
    "a = Y.load(acq); b = Y.load(acq); return b";
  (* pure-expression CSE territory: the variant leaves na loads alone *)
  sound_on Fuzz.Planted.Cse_acq
    "a = X.load(na); b = X.load(na); return b"

let test_planted_rle () =
  (* store–release–acquire–load (Ex 2.12): the environment may take X at
     the release, change it, and hand it back at the acquire *)
  refuted Fuzz.Planted.Rle_rel
    "X.store(na, 1); Y.store(rel, 1); a = Y.load(acq); b = X.load(na); \
     return b";
  (* across a lone acquire the forwarding is sound (slf-across-acq-read):
     without a release the environment never gains X *)
  sound_on Fuzz.Planted.Rle_rel
    "X.store(na, 1); a = Y.load(acq); b = X.load(na); return b"

(* ------------------------------------------------------------------ *)
(* 6. The real passes are never flagged: pass-correct returns no finding
   on random programs (each pass's output refines its input). *)

let passes_never_flagged =
  QCheck.Test.make ~name:"real passes are never flagged" ~count:60
    (stmt_arbitrary rich_cfg ~size:6)
    (fun p ->
      Fuzz.Oracle.check Fuzz.Oracle.Pass_correct
        ~budget:(Engine.Budget.make ~max_states:50_000 ())
        (Stmt.normalize p)
      = None)

(* ------------------------------------------------------------------ *)
(* 7. Campaign contracts. *)

let small_budget = Engine.Budget.spec ~max_states:5_000 ()

let test_campaign_jobs_deterministic () =
  let run jobs =
    Fuzz.Campaign.run ~jobs ~budget:small_budget ~seed:5 ~max_execs:24 ()
  in
  let r1 = run 1 and r3 = run 3 in
  Alcotest.(check string)
    "render is byte-identical across jobs"
    (Fuzz.Campaign.render r1) (Fuzz.Campaign.render r3);
  Alcotest.(check int) "unknown counts agree" r1.Fuzz.Campaign.unknowns
    r3.Fuzz.Campaign.unknowns

let test_campaign_refutes_planted () =
  (* the CI smoke configuration, in miniature: all planted variants must
     be refuted and shrink small; the real oracles must stay quiet *)
  let r =
    Fuzz.Campaign.run ~jobs:2
      ~budget:(Engine.Budget.spec ~max_states:20_000 ())
      ~oracles:[ Fuzz.Oracle.Pass_correct ] ~seed:2 ~max_execs:150 ()
  in
  Alcotest.(check int) "no real findings" 0
    (List.length r.Fuzz.Campaign.findings);
  List.iter
    (fun (nm, hit) ->
      match hit with
      | None -> Alcotest.failf "planted variant %s survived" nm
      | Some fi ->
        (match fi.Fuzz.Campaign.shrunk with
         | None -> Alcotest.failf "%s not shrunk" nm
         | Some s ->
           if Stmt.size s > 8 then
             Alcotest.failf "%s reproducer has %d statements (> 8)" nm
               (Stmt.size s);
           (* the reproducer is still a counterexample *)
           let tgt =
             Fuzz.Planted.apply (Option.get (Fuzz.Planted.of_string nm)) s
           in
           Alcotest.(check bool)
             (nm ^ " reproducer still refutes") false
             (tgt = s
              || Fuzz.Oracle.refines
                   ~budget:(Engine.Budget.make ~max_states:50_000 ())
                   ~src:s ~tgt)))
    r.Fuzz.Campaign.planted

(* ------------------------------------------------------------------ *)
(* 8. Coverage-guided subsystem: signal determinism, corpus/persist
   round-trips (with cache-style corrupt-entry rejection), guided
   campaigns keeping the byte-identity contract. *)

let coverage_signals_deterministic =
  QCheck.Test.make
    ~name:"coverage signals are deterministic, sorted, deduplicated"
    ~count:40
    (stmt_arbitrary rich_cfg ~size:6)
    (fun p ->
      let p = Stmt.normalize p in
      let s1 = Fuzz.Coverage.signals p in
      let s2 = Fuzz.Coverage.signals p in
      s1 = s2 && s1 = List.sort_uniq String.compare s1 && s1 <> [])

let fresh_tmp_dir prefix =
  let base = Filename.temp_file prefix "" in
  Sys.remove base;
  base

(* The lexicographically first entry file of a store (deterministic). *)
let first_entry_file dir =
  let shards =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           f <> "VERSION" && Sys.is_directory (Filename.concat dir f))
    |> List.sort String.compare
  in
  let sdir = Filename.concat dir (List.hd shards) in
  let files = Sys.readdir sdir |> Array.to_list |> List.sort String.compare in
  Filename.concat sdir (List.hd files)

let test_persist_roundtrip () =
  let dir = fresh_tmp_dir "seqfuzz-corpus" in
  let progs =
    List.map Lang.Parser.stmt_of_string
      [
        "X.store(na, 1); Y.store(rel, 1); return 0";
        "a = Y.load(acq); b = X.load(na); return b";
        "a = Z.load(rlx); return a";
      ]
  in
  let c = Fuzz.Corpus.create () in
  List.iter (fun p -> ignore (Fuzz.Corpus.add ~shrink_admit:false c p)) progs;
  let members =
    List.map (fun e -> e.Fuzz.Corpus.program) (Fuzz.Corpus.entries c)
  in
  Alcotest.(check int) "all three programs are coverage-novel" 3
    (List.length members);
  let seen = [ "00deadbeef"; "11cafe" ] in
  let n =
    Fuzz.Persist.save ~dir ~corpus:members
      ~findings:[ List.hd members ] ~seen
  in
  Alcotest.(check int) "entries written" 6 n;
  let st = Fuzz.Persist.load ~dir in
  let fps ps = List.sort String.compare (List.map Lang.Fingerprint.stmt ps) in
  Alcotest.(check int) "nothing skipped" 0 st.Fuzz.Persist.skipped;
  Alcotest.(check (list string))
    "corpus round-trips" (fps members)
    (fps st.Fuzz.Persist.corpus);
  Alcotest.(check int) "finding round-trips" 1
    (List.length st.Fuzz.Persist.findings);
  Alcotest.(check (list string))
    "seen fingerprints round-trip"
    (List.sort String.compare seen)
    (List.sort String.compare st.Fuzz.Persist.seen);
  (* minimize: re-admission in order keeps every coverage point *)
  let c2 = Fuzz.Corpus.create () in
  List.iter
    (fun p -> ignore (Fuzz.Corpus.add ~shrink_admit:false c2 p))
    st.Fuzz.Persist.corpus;
  let m = Fuzz.Corpus.minimize c2 in
  Alcotest.(check bool) "minimized pool is no larger" true
    (Fuzz.Corpus.size m <= Fuzz.Corpus.size c2);
  Alcotest.(check int) "minimized pool keeps the coverage points"
    (Fuzz.Coverage.points (Fuzz.Corpus.coverage c2))
    (Fuzz.Coverage.points (Fuzz.Corpus.coverage m));
  (* corrupt-entry rejection, mirroring the cache tests: a truncated
     entry is skipped by load (never an error) and pruned by fsck *)
  let victim = first_entry_file dir in
  Out_channel.with_open_bin victim (fun oc ->
      Out_channel.output_string oc "SEQ");
  let st2 = Fuzz.Persist.load ~dir in
  Alcotest.(check int) "corrupt entry skipped" 1 st2.Fuzz.Persist.skipped;
  let rep = Service.Cache.fsck ~dir in
  Alcotest.(check int) "fsck prunes the corrupt entry" 1
    rep.Service.Cache.pruned;
  Alcotest.(check bool) "fsck keeps the rest" true
    (rep.Service.Cache.valid = 5);
  let st3 = Fuzz.Persist.load ~dir in
  Alcotest.(check int) "clean after fsck" 0 st3.Fuzz.Persist.skipped

let guided_campaign_jobs_deterministic =
  QCheck.Test.make
    ~name:"guided campaigns are byte-identical at jobs 1 vs jobs 4" ~count:3
    QCheck.(int_range 1 1_000)
    (fun seed ->
      let run jobs =
        Fuzz.Campaign.run ~jobs ~budget:small_budget ~guided:true ~seed
          ~max_execs:16 ()
      in
      Fuzz.Campaign.render (run 1) = Fuzz.Campaign.render (run 4))

let test_campaign_resume_warm () =
  let dir = fresh_tmp_dir "seqfuzz-resume" in
  let run resume =
    Fuzz.Campaign.run ~jobs:2 ~budget:small_budget
      ~oracles:[ Fuzz.Oracle.Pass_correct ] ~guided:true ~corpus_dir:dir
      ~resume ~seed:7 ~max_execs:40 ()
  in
  let r1 = run false in
  let c1 = Option.get r1.Fuzz.Campaign.cov in
  Alcotest.(check bool) "first run persists" true
    (c1.Fuzz.Campaign.persisted > 0);
  let r2 = run true in
  let c2 = Option.get r2.Fuzz.Campaign.cov in
  Alcotest.(check bool) "second run resumes the pool" true
    (c2.Fuzz.Campaign.resumed > 0);
  Alcotest.(check bool) "second run is warm (fewer fresh execs)" true
    (c2.Fuzz.Campaign.fresh_execs < c1.Fuzz.Campaign.fresh_execs);
  Alcotest.(check bool) "coverage points are monotone across runs" true
    (c2.Fuzz.Campaign.cov_points >= c1.Fuzz.Campaign.cov_points)

let qsuite = List.map (QCheck_alcotest.to_alcotest ~long:false)

let suite =
  qsuite
    [
      roundtrip_fingerprint;
      no_store_weight;
      gen_well_formed;
      mutate_well_formed;
      mutate_normalized;
      shrink_invariants;
      passes_never_flagged;
      coverage_signals_deterministic;
      guided_campaign_jobs_deterministic;
    ]
  @ [
      Alcotest.test_case "round-trip: negative constants" `Quick
        test_roundtrip_negative_const;
      Alcotest.test_case "parser output is normalized" `Quick
        test_normalize_idempotent_on_parse;
      Alcotest.test_case "Gen golden seeds (knob compatibility)" `Quick
        test_golden_seeds;
      Alcotest.test_case "shrink reaches the minimal program" `Quick
        test_shrink_reaches_minimum;
      Alcotest.test_case "planted DSE ground truth" `Quick test_planted_dse;
      Alcotest.test_case "planted LLF ground truth" `Quick test_planted_llf;
      Alcotest.test_case "planted LICM ground truth" `Quick test_planted_licm;
      Alcotest.test_case "planted CSE ground truth" `Quick test_planted_cse;
      Alcotest.test_case "planted RLE ground truth" `Quick test_planted_rle;
      Alcotest.test_case "campaign is jobs-deterministic" `Quick
        test_campaign_jobs_deterministic;
      Alcotest.test_case "campaign refutes every planted variant" `Slow
        test_campaign_refutes_planted;
      Alcotest.test_case "persist round-trip (corrupt entries rejected)" `Quick
        test_persist_roundtrip;
      Alcotest.test_case "resumed campaign is warm" `Quick
        test_campaign_resume_warm;
    ]
