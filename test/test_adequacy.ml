(* E5: empirical adequacy (Thm 6.2) — SEQ-validated transformations must
   contextually refine in PS_na on the context library.  The quick suite
   covers a representative slice; the full corpus × context sweep runs in
   the benchmark harness (bench/main.exe, table E5) and in the `Slow
   test. *)

module A = Litmus.Adequacy
module C = Litmus.Catalog

let quick_corpus =
  [
    "slf-basic";
    "reorder-na-rw-diff";
    "na-write-into-acq";
    "na-read-into-rel";
    "slf-across-rel-write";
    "rlx-read-then-na-write";  (* needs the advanced notion: late UB *)
    "na-write-into-rel";  (* needs commitments *)
    "dse-across-rel-write";
    "irrelevant-load-intro";  (* the load-introduction headline *)
  ]

let quick_contexts =
  List.filter
    (fun (n, _) -> List.mem n [ "idle"; "na-writer"; "rel-acq-flagger"; "acq-guarded-writer" ])
    C.contexts

let check_row (r : A.row) =
  if not (A.row_ok r) then
    let bad =
      List.filter_map
        (fun (n, ok, _) -> if ok then None else Some n)
        r.A.contexts
    in
    Alcotest.failf "adequacy violated on %s in context(s) %s" r.A.tr.C.name
      (String.concat ", " bad)

(* Engine-swept slice: A.run must agree row-by-row with the catalog's
   expected SEQ verdicts, hold the adequacy implication, and return the
   same rows (including states/pairs/memo-hit stats) for every [jobs]
   setting — each row computes with row-local state, so nothing but
   wall-clock may vary. *)
let sweep_corpus =
  List.filter_map C.find_transformation
    [
      "slf-basic";
      "reorder-na-rw-same";  (* SEQ-unsound: adequacy holds vacuously *)
      "na-write-into-rel";
      "rlx-read-then-na-write";
      "dse-across-rel-write";
      "irrelevant-load-intro";
    ]

let test_swept_slice () =
  let rows = A.run ~jobs:2 ~contexts:quick_contexts ~corpus:sweep_corpus () in
  Alcotest.(check int) "one row per transformation"
    (List.length sweep_corpus) (List.length rows);
  List.iter
    (fun (r : A.row) ->
      check_row r;
      Alcotest.(check bool)
        (r.A.tr.C.name ^ ": simple SEQ verdict matches catalog")
        (r.A.tr.C.simple = C.Sound) r.A.seq_simple;
      Alcotest.(check bool)
        (r.A.tr.C.name ^ ": advanced SEQ verdict matches catalog")
        (r.A.tr.C.advanced = C.Sound) r.A.seq_advanced;
      Alcotest.(check int) (r.A.tr.C.name ^ ": all contexts checked")
        (List.length quick_contexts)
        (List.length r.A.contexts))
    rows

let test_jobs_invariance () =
  let corpus = List.filteri (fun i _ -> i < 3) sweep_corpus in
  let sweep jobs = A.run ~jobs ~contexts:quick_contexts ~corpus () in
  (* rows carry no timing, so full structural equality is the contract *)
  if sweep 1 <> sweep 3 then
    Alcotest.fail "adequacy rows differ between jobs:1 and jobs:3"

let suite =
  List.filter_map
    (fun name ->
      Option.map
        (fun tr ->
          Alcotest.test_case ("adequacy: " ^ name) `Quick (fun () ->
              check_row (A.check_transformation ~contexts:quick_contexts tr)))
        (C.find_transformation name))
    quick_corpus
  @ [
      Alcotest.test_case "adequacy: engine-swept slice" `Quick
        test_swept_slice;
      Alcotest.test_case "adequacy: rows invariant under jobs" `Quick
        test_jobs_invariance;
      (* the full corpus × context matrix takes minutes; run it via
         PSEQ_FULL=1 dune runtest, or through `bench/main.exe --full` *)
      Alcotest.test_case "adequacy: full corpus sweep" `Slow (fun () ->
          if Sys.getenv_opt "PSEQ_FULL" = None then
            Alcotest.skip ()
          else List.iter check_row (A.run ()));
    ]
