(* The certified optimizer (§4, App D): pass outputs, Fig 4, analysis
   fixpoint bounds, and per-run translation validation. *)

open Lang
module D = Optimizer.Driver

let parse = Parser.stmt_of_string

let norm s = Stmt.to_string s

let check_output name ?passes src expected =
  Alcotest.test_case name `Quick (fun () ->
      let r = D.optimize ?passes (parse src) in
      Alcotest.(check string) "optimized output" (norm (parse expected))
        (norm r.D.output))

let check_valid name ?passes src =
  Alcotest.test_case (name ^ " validates") `Quick (fun () ->
      let r, v = Optimizer.Validate.certified_optimize ?passes (parse src) in
      ignore r;
      Alcotest.(check bool) "SEQ-valid" true v.Optimizer.Validate.valid)

let fig4_src =
  "X.store(na, 2); l = Y.load(acq); \
   if l == 0 { a = X.load(na); Y.store(rel, 1) }; \
   b = X.load(na); return 10*a + b"

let suite =
  [
    (* Fig 4: both loads become register assignments *)
    check_output "Fig 4 SLF" ~passes:[ D.SLF ] fig4_src
      "X.store(na, 2); l = Y.load(acq); \
       if l == 0 { a = 2; Y.store(rel, 1) }; \
       b = 2; return 10*a + b";
    check_valid "Fig 4 full pipeline" fig4_src;
    (* SLF respects the ⊤ transition at a rel-acq pair (Ex 2.12) *)
    check_output "SLF stops at rel-acq pair" ~passes:[ D.SLF ]
      "X.store(na, 1); Y.store(rel, 1); a = Z.load(acq); b = X.load(na); return b"
      "X.store(na, 1); Y.store(rel, 1); a = Z.load(acq); b = X.load(na); return b";
    check_output "SLF survives a single RMW" ~passes:[ D.SLF ]
      "X.store(na, 1); a = cas(Y, 0, 1); b = X.load(na); return b"
      "X.store(na, 1); a = cas(Y, 0, 1); b = 1; return b";
    check_output "SLF joins branches" ~passes:[ D.SLF ]
      "if c { X.store(na, 1) } else { X.store(na, 1) }; a = X.load(na); return a"
      "if c { X.store(na, 1) } else { X.store(na, 1) }; a = 1; return a";
    check_output "SLF join conflict blocks" ~passes:[ D.SLF ]
      "if c { X.store(na, 1) } else { X.store(na, 2) }; a = X.load(na); return a"
      "if c { X.store(na, 1) } else { X.store(na, 2) }; a = X.load(na); return a";
    (* LLF *)
    check_output "LLF forwards" ~passes:[ D.LLF ]
      "a = X.load(na); b = X.load(na); return 10*a + b"
      "a = X.load(na); b = a; return 10*a + b";
    check_output "LLF killed by acquire" ~passes:[ D.LLF ]
      "a = X.load(na); c = Y.load(acq); b = X.load(na); return 10*a + b"
      "a = X.load(na); c = Y.load(acq); b = X.load(na); return 10*a + b";
    check_output "LLF survives release" ~passes:[ D.LLF ]
      "a = X.load(na); Y.store(rel, 1); b = X.load(na); return 10*a + b"
      "a = X.load(na); Y.store(rel, 1); b = a; return 10*a + b";
    check_output "LLF killed by register reassignment" ~passes:[ D.LLF ]
      "a = X.load(na); a = 7; b = X.load(na); return 10*a + b"
      "a = X.load(na); a = 7; b = X.load(na); return 10*a + b";
    check_output "LLF register store forwarding (extension)" ~passes:[ D.LLF ]
      "X.store(na, a); b = X.load(na); return b"
      "X.store(na, a); b = a; return b";
    (* DSE *)
    check_output "DSE basic" ~passes:[ D.DSE ]
      "X.store(na, 1); X.store(na, 2)"
      "skip; X.store(na, 2)";
    check_output "DSE across release write (Ex 3.5)" ~passes:[ D.DSE ]
      "X.store(na, 1); Y.store(rel, 0); X.store(na, 2)"
      "skip; Y.store(rel, 0); X.store(na, 2)";
    check_output "DSE blocked by rel-acq pair" ~passes:[ D.DSE ]
      "X.store(na, 1); Y.store(rel, 0); a = Z.load(acq); X.store(na, 2); return a"
      "X.store(na, 1); Y.store(rel, 0); a = Z.load(acq); X.store(na, 2); return a";
    check_output "DSE blocked by read" ~passes:[ D.DSE ]
      "X.store(na, 1); a = X.load(na); X.store(na, 2); return a"
      "X.store(na, 1); a = X.load(na); X.store(na, 2); return a";
    check_output "DSE chain" ~passes:[ D.DSE ]
      "X.store(na, 1); X.store(na, 2); X.store(na, 3)"
      "skip; skip; X.store(na, 3)";
    (* LICM *)
    check_output "LICM hoists invariant load" ~passes:[ D.LICM ]
      "while b == 0 { a = X.load(na); b = Y.load(rlx) }; return a"
      "licm0 = X.load(na); while b == 0 { a = licm0; b = Y.load(rlx) }; return a";
    check_output "LICM blocked by store in loop" ~passes:[ D.LICM ]
      "while b == 0 { a = X.load(na); X.store(na, a + 1); b = Y.load(rlx) }; return a"
      "while b == 0 { a = X.load(na); X.store(na, a + 1); b = Y.load(rlx) }; return a";
    check_output "LICM blocked by acquire in loop" ~passes:[ D.LICM ]
      "while b == 0 { a = X.load(na); b = Y.load(acq) }; return a"
      "while b == 0 { a = X.load(na); b = Y.load(acq) }; return a";
    (* validation of each pass on the paper patterns *)
    check_valid "SLF pattern" ~passes:[ D.SLF ]
      "X.store(na, 1); a = Y.load(rlx); b = X.load(na); return 10*a + b";
    check_valid "LLF pattern" ~passes:[ D.LLF ]
      "a = X.load(na); Y.store(rel, 1); b = X.load(na); return 10*a + b";
    check_valid "DSE pattern" ~passes:[ D.DSE ]
      "X.store(na, 1); Y.store(rel, 0); X.store(na, 2)";
    check_valid "LICM pattern" ~passes:[ D.LICM ]
      "while b == 0 { a = X.load(na); b = Y.load(rlx) }; return a";
    (* §4: the SLF analysis reaches a loop fixpoint in ≤ 3 iterations *)
    Alcotest.test_case "SLF loop fixpoint within 3 iterations" `Quick
      (fun () ->
        let progs =
          [
            "X.store(na, 1); while b == 0 { a = X.load(na); b = Y.load(rlx) }; return a";
            "X.store(na, 1); while b == 0 { Y.store(rel, 1); a = X.load(na); \
             b = Y.load(rlx) }; return a";
            "X.store(na, 1); while b == 0 { Y.store(rel, 1); c = Y.load(acq); \
             a = X.load(na); b = c }; return a";
            "while b == 0 { X.store(na, 1); while c == 0 { a = X.load(na); \
             c = Y.load(rlx) }; b = Y.load(rlx) }; return a";
          ]
        in
        List.iter
          (fun src ->
            let _, _, iters, _ = Optimizer.Slf.run (parse src) in
            if iters > 3 then
              Alcotest.failf "fixpoint took %d iterations on %s" iters src)
          progs);
    (* idempotence: a second run finds nothing new *)
    Alcotest.test_case "pipeline idempotent on Fig 4" `Quick (fun () ->
        let r1 = D.optimize (parse fig4_src) in
        let r2 = D.optimize r1.D.output in
        Alcotest.(check string) "stable" (norm r1.D.output) (norm r2.D.output));
  ]

(* The sequential clean-up extensions: constant propagation and dead
   assignment elimination. *)
let extension_suite =
  [
    check_output "CP folds constants through registers" ~passes:[ D.CP ]
      "a = 2; b = a + 1; X.store(na, b); return b"
      "a = 2; b = 3; X.store(na, 3); return 3";
    check_output "CP never folds divisions" ~passes:[ D.CP ]
      "a = 0; b = 1 / a; return b"
      "a = 0; b = 1 / 0; return b";
    check_output "CP is killed by loads" ~passes:[ D.CP ]
      "a = 2; a = X.load(na); b = a + 1; return b"
      "a = 2; a = X.load(na); b = a + 1; return b";
    check_output "CP joins branches" ~passes:[ D.CP ]
      "if c { a = 1 } else { a = 1 }; return a"
      "if c { a = 1 } else { a = 1 }; return 1";
    check_output "CP folds freeze of defined values" ~passes:[ D.CP ]
      "a = freeze(4); return a"
      "a = 4; return 4";
    check_output "CP + SLF: propagation feeds forwarding (to fixpoint)"
      ~passes:[ D.CP; D.SLF ]
      "a = 2; X.store(na, a); b = X.load(na); return b"
      "a = 2; X.store(na, 2); b = 2; return 2";
    check_output "DAE removes dead assignments" ~passes:[ D.DAE ]
      "a = 1; a = 2; return a"
      "skip; a = 2; return a";
    check_output "DAE keeps faulting assignments" ~passes:[ D.DAE ]
      "a = 1 / b; return 0"
      "a = 1 / b; return 0";
    check_output "DAE removes dead na loads (Ex 2.8)" ~passes:[ D.DAE ]
      "a = X.load(na); return 0"
      "skip; return 0";
    check_output "DAE keeps dead atomic loads" ~passes:[ D.DAE ]
      "a = Y.load(acq); return 0"
      "a = Y.load(acq); return 0";
    check_output "DAE keeps choose (its label is observable)" ~passes:[ D.DAE ]
      "a = choose(); return 0"
      "a = choose(); return 0";
    check_output "DAE liveness through loops" ~passes:[ D.DAE ]
      "s = 0; i = 0; while i < 2 { s = s + i; i = i + 1 }; return s"
      "s = 0; i = 0; while i < 2 { s = s + i; i = i + 1 }; return s";
    check_output "LLF + DAE: forwarding then sweeping" ~passes:[ D.LLF; D.DAE ]
      "a = X.load(na); b = X.load(na); return b"
      "a = X.load(na); b = a; return b";
    check_valid "CP pattern" ~passes:[ D.CP ]
      "a = 2; X.store(na, a); b = X.load(na); return b";
    check_valid "DAE pattern" ~passes:[ D.DAE ]
      "a = X.load(na); b = 1; return 0";
    check_valid "full extended pipeline on Fig 4" fig4_src;
  ]

let suite = suite @ extension_suite
