(** The seqd service stack: wire protocol, two-tier cache, handler
    semantics, in-process server end-to-end, metrics, CLI validation.

    The load-bearing properties, matching docs/SERVICE.md:
    - protocol encode/decode is an identity on every constructor, and
      framing rejects bad magic / version / truncation deterministically;
    - any corrupted cache entry — truncated, garbled, or written by
      another format version — is a miss, never an error;
    - a server-returned verdict is byte-identical to a local
      [Optimizer.Validate] run (qcheck over the corpus), and cache hits
      preserve the original proof provenance while re-tagging the tier;
    - a warm corpus pass answers entirely from cache (zero computed). *)

module Proto = Service.Proto
module Cache = Service.Cache
module Handler = Service.Handler
module Server = Service.Server
module Client = Service.Client
module C = Litmus.Catalog

(* naive substring search, enough for asserting on rendered snapshots *)
let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let temp_dir prefix =
  let f = Filename.temp_file prefix "" in
  Sys.remove f;
  Unix.mkdir f 0o700;
  f

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error _ -> ()

(* every regular file under [dir], deepest-last order not guaranteed *)
let rec files_under dir =
  Array.to_list (Sys.readdir dir)
  |> List.concat_map (fun e ->
         let p = Filename.concat dir e in
         if Sys.is_directory p then files_under p else [ p ])

(* ------------------------------------------------------------------ *)
(* protocol                                                            *)
(* ------------------------------------------------------------------ *)

let some_budget = { Proto.timeout_ms = Some 1.5; max_states = Some 42 }

let sample_check =
  { Proto.src = "return 0"; tgt = "return 0"; values = [ 0; 1 ];
    fast_path = true; backend = Proto.default_backend }

let sample_requests =
  [
    Proto.Ping;
    Proto.Check (sample_check, some_budget);
    Proto.Batch ([ sample_check; { sample_check with fast_path = false } ],
                 Proto.no_budget);
    Proto.Lint { prog = "a = X.load(na); return a"; hints = false };
    Proto.Optimize
      ({ Proto.oprog = "X.store(na, 1)"; ovalues = []; ofast_path = true },
       some_budget);
    Proto.Litmus
      ({ Proto.lprog = "return 0 ||| return 1";
         lparams = { Proto.promises = 1; batch = 2; lit_max_states = 10 } },
       Proto.no_budget);
    Proto.Stats;
    Proto.Shutdown;
  ]

let sample_result =
  { Proto.verdict = Proto.Refines_advanced; origin = Some Proto.Static;
    tier = Proto.Disk; states = 7 }

let sample_responses =
  [
    Proto.Pong;
    Proto.Checked sample_result;
    Proto.Checked
      { Proto.verdict = Proto.Unknown "timeout"; origin = None;
        tier = Proto.Computed; states = 0 };
    Proto.Batched [ sample_result; sample_result ];
    Proto.Linted
      { errors = 1; warnings = 2; hints = 3; rendered = "r\n";
        tier = Proto.Mem };
    Proto.Optimized
      { output = "return 0"; result = sample_result;
        passes = [ ("slf", 2); ("dse", 0) ] };
    Proto.Litmus_result
      { behaviors = "{0}"; states = 12; races = true; truncated = false;
        tier = Proto.Computed };
    Proto.Stats_result "req.total 3\n";
    Proto.Err "nope";
    Proto.Bye;
  ]

let test_proto_roundtrip () =
  List.iter
    (fun req ->
      Alcotest.(check bool)
        "request roundtrips" true
        (Proto.decode_request (Proto.encode_request req) = req))
    sample_requests;
  List.iter
    (fun resp ->
      Alcotest.(check bool)
        "response roundtrips" true
        (Proto.decode_response (Proto.encode_response resp) = resp))
    sample_responses

let test_proto_rejects () =
  let garbled = "notaprotocolpayload" in
  (match Proto.decode_request garbled with
   | exception Proto.Error _ -> ()
   | _ -> Alcotest.fail "garbage request accepted");
  (* trailing bytes after a well-formed payload are a codec violation *)
  let padded = Proto.encode_request Proto.Ping ^ "x" in
  (match Proto.decode_request padded with
   | exception Proto.Error _ -> ()
   | _ -> Alcotest.fail "trailing bytes accepted")

let write_all fd s =
  ignore (Unix.write_substring fd s 0 (String.length s))

let with_pipe f =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () -> f r w)

let test_framing () =
  (* roundtrip via an OS pipe *)
  with_pipe (fun r w ->
      Proto.write_frame w "hello";
      Proto.write_frame w "";
      Unix.close w;
      Alcotest.(check (option string)) "frame 1" (Some "hello")
        (Proto.read_frame r);
      Alcotest.(check (option string)) "frame 2" (Some "")
        (Proto.read_frame r);
      Alcotest.(check (option string)) "clean EOF" None (Proto.read_frame r));
  (* bad magic *)
  with_pipe (fun r w ->
      write_all w "SEQX\x01\x00\x00\x00\x00";
      Unix.close w;
      match Proto.read_frame r with
      | exception Proto.Error _ -> ()
      | _ -> Alcotest.fail "bad magic accepted");
  (* version mismatch *)
  with_pipe (fun r w ->
      write_all w "SEQD\xff\x00\x00\x00\x00";
      Unix.close w;
      match Proto.read_frame r with
      | exception Proto.Error _ -> ()
      | _ -> Alcotest.fail "bad version accepted");
  (* EOF mid-frame (header promised 5 bytes, delivered 2) *)
  with_pipe (fun r w ->
      write_all w "SEQD\x01\x00\x00\x00\x05ab";
      Unix.close w;
      match Proto.read_frame r with
      | exception Proto.Error _ -> ()
      | _ -> Alcotest.fail "truncated frame accepted")

(* ------------------------------------------------------------------ *)
(* cache                                                               *)
(* ------------------------------------------------------------------ *)

let test_cache_tiers () =
  let dir = temp_dir "seq-cache" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let c = Cache.create ~dir ~mem_capacity:8 () in
  Alcotest.(check bool) "miss before add" true (Cache.find c "k1" = None);
  Cache.add c "k1" "payload-1";
  Alcotest.(check bool) "mem hit" true
    (Cache.find c "k1" = Some ("payload-1", Cache.Hit_mem));
  (* a fresh cache over the same store: first find comes from disk and is
     promoted, the second from memory *)
  let c2 = Cache.create ~dir ~mem_capacity:8 () in
  Alcotest.(check bool) "disk hit" true
    (Cache.find c2 "k1" = Some ("payload-1", Cache.Hit_disk));
  Alcotest.(check bool) "promoted to mem" true
    (Cache.find c2 "k1" = Some ("payload-1", Cache.Hit_mem));
  let s = Cache.stats c2 in
  Alcotest.(check int) "one disk hit" 1 s.Cache.hits_disk;
  Alcotest.(check int) "one mem hit" 1 s.Cache.hits_mem

let test_cache_lru_eviction () =
  let dir = temp_dir "seq-cache" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let c = Cache.create ~dir ~mem_capacity:2 () in
  Cache.add c "a" "A";
  Cache.add c "b" "B";
  Cache.add c "c" "C";
  Alcotest.(check int) "capacity respected" 2 (Cache.mem_size c);
  (* the oldest entry fell out of the LRU but survives on disk *)
  Alcotest.(check bool) "evicted entry served from disk" true
    (Cache.find c "a" = Some ("A", Cache.Hit_disk));
  (* memory-only cache: eviction loses the entry for good *)
  let m = Cache.create ~mem_capacity:2 () in
  Cache.add m "a" "A";
  Cache.add m "b" "B";
  Cache.add m "c" "C";
  Alcotest.(check bool) "memory-only eviction is a miss" true
    (Cache.find m "a" = None)

(* corrupt every entry file under [dir] with [f] and expect a miss *)
let corruption_case ~what f =
  let dir = temp_dir "seq-cache" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let c = Cache.create ~dir ~mem_capacity:4 () in
  Cache.add c "key" "precious payload";
  let entries =
    List.filter
      (fun p -> Filename.basename p <> "VERSION")
      (files_under dir)
  in
  Alcotest.(check bool) "one entry on disk" true (List.length entries = 1);
  List.iter f entries;
  (* a fresh cache (cold LRU) must treat the damage as a miss *)
  let c2 = Cache.create ~dir ~mem_capacity:4 () in
  Alcotest.(check bool) what true (Cache.find c2 "key" = None)

let test_cache_truncated_entry () =
  corruption_case ~what:"truncated entry is a miss" (fun path ->
      let full = In_channel.with_open_bin path In_channel.input_all in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc
            (String.sub full 0 (String.length full / 2))))

let test_cache_empty_entry () =
  corruption_case ~what:"zero-byte entry is a miss" (fun path ->
      Out_channel.with_open_bin path (fun _ -> ()))

let test_cache_garbled_entry () =
  corruption_case ~what:"garbled payload is a miss" (fun path ->
      let full =
        Bytes.of_string (In_channel.with_open_bin path In_channel.input_all)
      in
      (* flip one payload byte; magic/version/length stay plausible *)
      let i = Bytes.length full - 1 in
      Bytes.set full i (Char.chr (Char.code (Bytes.get full i) lxor 0xff));
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_bytes oc full))

let test_cache_version_mismatch_entry () =
  corruption_case ~what:"other-format entry is a miss" (fun path ->
      let full =
        Bytes.of_string (In_channel.with_open_bin path In_channel.input_all)
      in
      (* byte 4 is the per-entry format version *)
      Bytes.set full 4 (Char.chr (Cache.format_version + 1));
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_bytes oc full))

let test_cache_store_version_mismatch () =
  let dir = temp_dir "seq-cache" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let c = Cache.create ~dir ~mem_capacity:4 () in
  Cache.add c "key" "payload";
  (* simulate a store stamped by a future format *)
  Out_channel.with_open_text (Filename.concat dir "VERSION") (fun oc ->
      Out_channel.output_string oc "999\n");
  let c2 = Cache.create ~dir ~mem_capacity:4 () in
  Alcotest.(check bool) "mismatched store reads as empty" true
    (Cache.find c2 "key" = None);
  (* ... and was re-stamped so new writes land in the current format *)
  Cache.add c2 "key2" "fresh";
  let c3 = Cache.create ~dir ~mem_capacity:4 () in
  Alcotest.(check bool) "re-stamped store serves new writes" true
    (Cache.find c3 "key2" = Some ("fresh", Cache.Hit_disk))

(* ------------------------------------------------------------------ *)
(* fingerprinting                                                      *)
(* ------------------------------------------------------------------ *)

let test_fingerprint_keys () =
  let fp src = Lang.Fingerprint.stmt (Lang.Parser.stmt_of_string src) in
  Alcotest.(check bool) "identical programs agree" true
    (fp "a = X.load(na); return a" = fp "a  =  X.load( na ) ;  return a");
  Alcotest.(check bool) "different mode differs" true
    (fp "a = X.load(na); return a" <> fp "a = X.load(rlx); return a");
  Alcotest.(check bool) "different value differs" true
    (fp "X.store(na, 1)" <> fp "X.store(na, 2)");
  (* the part list is length-prefixed: concatenation cannot collide *)
  Alcotest.(check bool) "key parts are delimited" true
    (Lang.Fingerprint.key [ "ab"; "c" ] <> Lang.Fingerprint.key [ "a"; "bc" ])

(* ------------------------------------------------------------------ *)
(* handler semantics                                                   *)
(* ------------------------------------------------------------------ *)

let check_of (t : C.transformation) =
  { Proto.src = t.C.src; tgt = t.C.tgt; values = []; fast_path = true;
    backend = Proto.default_backend }

let handler_check h ?(budget = Proto.no_budget) t =
  match Handler.handle h (Proto.Check (check_of t, budget)) with
  | Proto.Checked r -> r
  | _ -> Alcotest.fail "expected Checked"

let test_handler_tiers_and_provenance () =
  let dir = temp_dir "seq-handler" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let h = Handler.create ~cache_dir:dir () in
  let tr = List.hd C.transformations in
  let cold = handler_check h tr in
  Alcotest.(check bool) "cold pass computes" true
    (cold.Proto.tier = Proto.Computed);
  let warm = handler_check h tr in
  Alcotest.(check bool) "warm pass hits memory" true
    (warm.Proto.tier = Proto.Mem);
  (* the definite verdict and its provenance survive the cache verbatim *)
  Alcotest.(check bool) "verdict preserved" true
    (warm.Proto.verdict = cold.Proto.verdict);
  Alcotest.(check bool) "origin preserved" true
    (warm.Proto.origin = cold.Proto.origin);
  (* a fresh handler over the same store: disk tier *)
  let h2 = Handler.create ~cache_dir:dir () in
  let disk = handler_check h2 tr in
  Alcotest.(check bool) "restart hits disk" true
    (disk.Proto.tier = Proto.Disk);
  Alcotest.(check bool) "verdict preserved across restart" true
    (disk.Proto.verdict = cold.Proto.verdict)

let test_handler_unknown_uncached () =
  let h = Handler.create () in
  let tr =
    (* an enumerated (not statically certified) corpus entry, so the
       zero-state budget bites *)
    List.find (fun (t : C.transformation) -> t.C.name = "no-rlx-store-elim")
      C.transformations
  in
  let starved = { Proto.timeout_ms = None; max_states = Some 0 } in
  let r = handler_check h ~budget:starved tr in
  (match r.Proto.verdict with
   | Proto.Unknown _ -> ()
   | _ -> Alcotest.fail "expected Unknown under a zero budget");
  Alcotest.(check bool) "unknown has no origin" true (r.Proto.origin = None);
  (* the budget-dependent answer was not cached: an unlimited retry
     computes (a cache hit would re-serve Unknown forever) *)
  let r2 = handler_check h tr in
  Alcotest.(check bool) "retry computes a definite verdict" true
    (r2.Proto.tier = Proto.Computed
     && match r2.Proto.verdict with Proto.Unknown _ -> false | _ -> true)

(* Per-backend cache isolation: the key includes the backend name, so a
   cached SEQ verdict is never served for a tso check (the two notions
   can genuinely disagree), hw verdicts carry Enumerated provenance, and
   unknown backend names answer Unknown without polluting the cache. *)
let test_handler_backend_isolation () =
  let dir = temp_dir "seq-handler-hw" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let h = Handler.create ~cache_dir:dir () in
  let tr = List.hd C.transformations in
  let check b = { (check_of tr) with Proto.backend = b } in
  let run c =
    match Handler.handle h (Proto.Check (c, Proto.no_budget)) with
    | Proto.Checked r -> r
    | _ -> Alcotest.fail "expected Checked"
  in
  let seq = run (check Proto.default_backend) in
  Alcotest.(check bool) "seq cold computes" true
    (seq.Proto.tier = Proto.Computed);
  let tso = run (check "tso") in
  Alcotest.(check bool) "tso computes despite warm seq entry" true
    (tso.Proto.tier = Proto.Computed);
  Alcotest.(check bool) "hw verdict has enumerated provenance" true
    (tso.Proto.origin = Some Proto.Enumerated);
  Alcotest.(check bool) "tso warm pass hits memory" true
    ((run (check "tso")).Proto.tier = Proto.Mem);
  Alcotest.(check bool) "seq entry survives untouched" true
    ((run (check Proto.default_backend)).Proto.tier = Proto.Mem);
  (* an unknown backend name is a per-request error, not a cacheable
     verdict *)
  let bogus = run (check "bogus") in
  (match bogus.Proto.verdict with
   | Proto.Unknown _ -> ()
   | _ -> Alcotest.fail "unknown backend must answer Unknown");
  Alcotest.(check bool) "unknown backend is not cached" true
    ((run (check "bogus")).Proto.tier = Proto.Computed)

let test_handler_parse_error () =
  let h = Handler.create () in
  (match Handler.handle h (Proto.Check ({ Proto.src = "while ("; tgt = "return 0"; values = []; fast_path = true; backend = Proto.default_backend }, Proto.no_budget)) with
   | Proto.Checked { verdict = Proto.Unknown _; origin = None; _ } -> ()
   | _ -> Alcotest.fail "parse failure must answer Unknown");
  (* and handle never raises on garbage programs in other requests *)
  match Handler.handle h (Proto.Lint { prog = "|||"; hints = true }) with
  | Proto.Err _ | Proto.Linted _ -> ()
  | _ -> Alcotest.fail "unexpected lint response"

let test_handler_batch_order () =
  let h = Handler.create () in
  let trs = List.filteri (fun i _ -> i < 6) C.transformations in
  let checks = List.map check_of trs in
  let batched =
    match Handler.handle h (Proto.Batch (checks, Proto.no_budget)) with
    | Proto.Batched rs -> rs
    | _ -> Alcotest.fail "expected Batched"
  in
  let singles = List.map (fun t -> handler_check h t) trs in
  (* the batch computed cold; the singles then hit memory — so compare
     verdict/origin only, which must agree pairwise in corpus order *)
  List.iter2
    (fun (b : Proto.check_result) (s : Proto.check_result) ->
      Alcotest.(check bool) "batch and single agree" true
        (b.Proto.verdict = s.Proto.verdict && b.Proto.origin = s.Proto.origin))
    batched singles

(* qcheck: the service's verdict/origin equals a local Validate run on
   the same pair, for every corpus transformation (random order). *)
let prop_server_matches_local =
  QCheck.Test.make ~count:40 ~name:"service verdict == local Validate"
    QCheck.(int_range 0 (List.length C.transformations - 1))
    (fun i ->
      let tr = List.nth C.transformations i in
      let h = Handler.create () in
      let remote = handler_check h tr in
      let local =
        let src = Lang.Parser.stmt_of_string tr.C.src in
        let tgt = Lang.Parser.stmt_of_string tr.C.tgt in
        Handler.of_validate (Optimizer.Validate.validate ~src ~tgt ())
      in
      let expected_verdict, expected_origin = local in
      remote.Proto.verdict = expected_verdict
      && remote.Proto.origin = Some expected_origin)

(* ------------------------------------------------------------------ *)
(* in-process server end-to-end                                        *)
(* ------------------------------------------------------------------ *)

let test_server_end_to_end () =
  let dir = temp_dir "seq-server" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let config =
    {
      (Server.default_config
         ~socket_path:(Filename.concat dir "seqd.sock"))
      with
      cache_dir = Some (Filename.concat dir "cache");
      jobs = 2;
    }
  in
  let trs = List.filteri (fun i _ -> i < 8) C.transformations in
  let checks = List.map check_of trs in
  let handle = Server.spawn config in
  let cold, warm =
    Client.with_connection config.Server.socket_path (fun c ->
        Alcotest.(check bool) "ping" true (Client.ping c);
        let cold = Client.batch c checks in
        let warm = Client.batch c checks in
        let stats = Client.stats c in
        Alcotest.(check bool) "stats mentions requests" true
          (String.length stats > 0);
        (cold, warm))
  in
  Server.stop handle;
  Alcotest.(check int) "all answered" (List.length checks)
    (List.length cold);
  List.iter
    (fun (r : Proto.check_result) ->
      Alcotest.(check bool) "cold computes" true (r.Proto.tier = Proto.Computed))
    cold;
  List.iter2
    (fun (r : Proto.check_result) (c0 : Proto.check_result) ->
      Alcotest.(check bool) "warm hits memory" true (r.Proto.tier = Proto.Mem);
      Alcotest.(check bool) "warm verdict identical" true
        (r.Proto.verdict = c0.Proto.verdict
         && r.Proto.origin = c0.Proto.origin))
    warm cold;
  (* restart over the same store: the disk tier answers *)
  let handle = Server.spawn config in
  let after =
    Client.with_connection config.Server.socket_path (fun c ->
        Client.batch c checks)
  in
  Server.stop handle;
  List.iter
    (fun (r : Proto.check_result) ->
      Alcotest.(check bool) "post-restart hits disk" true
        (r.Proto.tier = Proto.Disk))
    after;
  (* the socket is unlinked by the drain *)
  Alcotest.(check bool) "socket unlinked" false
    (Sys.file_exists config.Server.socket_path)

(* ------------------------------------------------------------------ *)
(* incremental framing (the nonblocking server's read path)            *)
(* ------------------------------------------------------------------ *)

let test_assembler_incremental () =
  let a = Proto.Assembler.create () in
  let wire =
    Proto.Assembler.frame_bytes "hello"
    ^ Proto.Assembler.frame_bytes ""
    ^ Proto.Assembler.frame_bytes "world"
  in
  (* drip the wire bytes in one-byte reads: frame boundaries must not
     depend on read chunking *)
  String.iter (fun c -> Proto.Assembler.feed a (Bytes.make 1 c) 0 1) wire;
  Alcotest.(check (option string)) "frame 1" (Some "hello")
    (Proto.Assembler.next a);
  Alcotest.(check (option string)) "frame 2 (empty)" (Some "")
    (Proto.Assembler.next a);
  Alcotest.(check (option string)) "frame 3" (Some "world")
    (Proto.Assembler.next a);
  Alcotest.(check (option string)) "drained" None (Proto.Assembler.next a);
  Alcotest.(check bool) "between frames: EOF would be clean" false
    (Proto.Assembler.mid_frame a);
  (* a partial header means EOF here tears a frame *)
  Proto.Assembler.feed a (Bytes.of_string "SEQ") 0 3;
  Alcotest.(check bool) "mid-header is mid-frame" true
    (Proto.Assembler.mid_frame a);
  (* bad magic is a deterministic protocol error *)
  let b = Proto.Assembler.create () in
  (match Proto.Assembler.feed b (Bytes.of_string "XXXXXXXXX") 0 9 with
   | exception Proto.Error _ -> ()
   | () -> Alcotest.fail "bad magic accepted by assembler")

let test_large_frame_roundtrip () =
  (* ~1 MiB, well under the 16 MiB frame cap but far over any single
     read/write chunk: exercises the partial-read/short-write loops *)
  let payload = String.init (1 lsl 20) (fun i -> Char.chr (i land 0xff)) in
  with_pipe (fun r w ->
      let writer = Domain.spawn (fun () -> Proto.write_frame w payload) in
      Alcotest.(check bool) "1 MiB frame roundtrips" true
        (Proto.read_frame r = Some payload);
      Domain.join writer)

(* ------------------------------------------------------------------ *)
(* client resilience against a scripted daemon                         *)
(* ------------------------------------------------------------------ *)

(* One scripted connection per element: accept, then for each action
   read one request frame and either answer it or hang up. *)
type fake_action = Reply of Proto.response | Hangup

let run_fake_server lfd (conns : fake_action list list) =
  List.iter
    (fun actions ->
      let fd, _ = Unix.accept lfd in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          try
            List.iter
              (fun act ->
                match Proto.read_frame fd with
                | None -> raise Exit
                | Some _req -> (
                  match act with
                  | Reply r -> Proto.write_frame fd (Proto.encode_response r)
                  | Hangup -> raise Exit))
              actions
          with Exit -> ()))
    conns

let fake_policy =
  {
    Client.resilient_policy with
    attempts = 5;
    base_delay_ms = 1.;
    max_delay_ms = 10.;
    connect_timeout_ms = Some 2000.;
    seed = 3;
  }

let with_fake_server conns f =
  let dir = temp_dir "seq-fake" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let path = Filename.concat dir "fake.sock" in
  (* bind before spawning, so the client's first connect cannot race the
     listener into an (uncounted-for) extra retry *)
  let lfd = Service.Addr.listen_fd (Service.Addr.Unix_sock path) in
  Fun.protect
    ~finally:(fun () -> try Unix.close lfd with Unix.Unix_error _ -> ())
  @@ fun () ->
  let srv = Domain.spawn (fun () -> run_fake_server lfd conns) in
  Fun.protect ~finally:(fun () -> Domain.join srv) (fun () -> f path)

let test_client_retry_until_success () =
  (* two connections die after reading the request; the third answers —
     the client must mask both failures and count them *)
  with_fake_server
    [ [ Hangup ]; [ Hangup ]; [ Reply Proto.Pong ] ]
    (fun path ->
      let c = Client.connect ~policy:fake_policy path in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      Alcotest.(check bool) "ping survives two dead connections" true
        (Client.ping c);
      let k = Client.counters c in
      Alcotest.(check int) "two retries" 2 k.Client.retries;
      Alcotest.(check int) "two reconnects" 2 k.Client.reconnects;
      Alcotest.(check int) "no busy" 0 k.Client.busy)

let test_client_busy_backoff () =
  (* the admission gate answers Busy twice on a healthy connection: the
     client backs off and re-sends without reconnecting *)
  with_fake_server
    [ [ Reply Proto.Busy; Reply Proto.Busy; Reply Proto.Pong ] ]
    (fun path ->
      let c = Client.connect ~policy:fake_policy path in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      Alcotest.(check bool) "ping survives Busy answers" true (Client.ping c);
      let k = Client.counters c in
      Alcotest.(check int) "two busy answers" 2 k.Client.busy;
      Alcotest.(check int) "busy retries counted" 2 k.Client.retries;
      Alcotest.(check int) "same connection throughout" 0 k.Client.reconnects)

let test_backoff_deterministic () =
  let b attempt =
    Engine.Faults.backoff_ms ~seed:1 ~base_ms:5. ~max_ms:100. ~attempt
  in
  Alcotest.(check bool) "same (seed, attempt) replays" true (b 1 = b 1);
  (* attempt n's delay is in [base * 2^(n-1), 1.5 * that], capped *)
  Alcotest.(check bool) "first delay within [5, 7.5]" true
    (b 1 >= 5. && b 1 <= 7.5);
  Alcotest.(check bool) "fourth delay within [40, 60]" true
    (b 4 >= 40. && b 4 <= 60.);
  Alcotest.(check bool) "cap respected far out" true (b 12 <= 100.);
  Alcotest.(check bool) "different seed, different jitter" true
    (Engine.Faults.backoff_ms ~seed:2 ~base_ms:5. ~max_ms:100. ~attempt:1
     <> b 1)

(* ------------------------------------------------------------------ *)
(* chaos proxy                                                         *)
(* ------------------------------------------------------------------ *)

let test_chaos_schedule_determinism () =
  let module Chaos = Service.Chaos in
  let s = Chaos.schedule 11 in
  let seq () = List.init 200 (Chaos.fault_at s) in
  Alcotest.(check bool) "fixed seed replays the fault sequence" true
    (seq () = seq ());
  Alcotest.(check bool) "another seed gives another sequence" true
    (List.init 200 (Chaos.fault_at (Chaos.schedule 12)) <> seq ());
  Alcotest.(check bool) "rate 0 never faults" true
    (List.for_all
       (fun f -> f = Chaos.Pass)
       (List.init 200 (Chaos.fault_at (Chaos.schedule ~rate:0. 11))));
  Alcotest.(check bool) "rate 1 always faults" true
    (List.for_all
       (fun f -> f <> Chaos.Pass)
       (List.init 200 (Chaos.fault_at (Chaos.schedule ~rate:1. 11))))

let test_chaos_end_to_end () =
  let module Chaos = Service.Chaos in
  let dir = temp_dir "seq-chaos" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let sock = Filename.concat dir "seqd.sock" in
  let proxy_sock = Filename.concat dir "chaos.sock" in
  let config =
    { (Server.default_config ~socket_path:sock) with jobs = 2 }
  in
  let trs = List.filteri (fun i _ -> i < 8) C.transformations in
  let handle = Server.spawn config in
  Fun.protect ~finally:(fun () -> Server.stop handle) @@ fun () ->
  let proxy =
    Chaos.start
      ~listen:(Service.Addr.Unix_sock proxy_sock)
      ~upstream:(Service.Addr.Unix_sock sock)
      (Chaos.schedule ~rate:0.3 5)
  in
  Fun.protect ~finally:(fun () -> Chaos.stop proxy) @@ fun () ->
  let policy =
    {
      Client.resilient_policy with
      attempts = 16;
      base_delay_ms = 1.;
      max_delay_ms = 10.;
      request_timeout_ms = Some 500.;
      seed = 5;
    }
  in
  let through_chaos =
    Client.with_connection ~policy proxy_sock (fun c ->
        List.map
          (fun (t : C.transformation) ->
            let r = Client.check c ~src:t.C.src ~tgt:t.C.tgt () in
            (r.Proto.verdict, r.Proto.origin))
          trs)
  in
  (* same pairs, no network, no faults *)
  let h = Handler.create () in
  let local =
    List.map
      (fun t ->
        let r = handler_check h t in
        (r.Proto.verdict, r.Proto.origin))
      trs
  in
  Alcotest.(check bool) "verdicts through chaos == local" true
    (through_chaos = local);
  Alcotest.(check bool) "the schedule actually injected faults" true
    (Chaos.injected (Chaos.counts proxy) > 0)

(* ------------------------------------------------------------------ *)
(* crash recovery: fsck                                                *)
(* ------------------------------------------------------------------ *)

let test_fsck_recovers_store () =
  let dir = temp_dir "seq-fsck" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let c = Cache.create ~dir ~mem_capacity:8 () in
  Cache.add c "k1" "payload-1";
  Cache.add c "k2" "payload-2";
  let entries =
    List.filter (fun p -> Filename.basename p <> "VERSION") (files_under dir)
  in
  Alcotest.(check int) "two entries on disk" 2 (List.length entries);
  (* a kill mid-write: one torn entry plus one orphan temp file *)
  let victim = List.hd entries in
  let full = In_channel.with_open_bin victim In_channel.input_all in
  Out_channel.with_open_bin victim (fun oc ->
      Out_channel.output_string oc (String.sub full 0 (String.length full / 2)));
  Out_channel.with_open_bin
    (Filename.concat (Filename.dirname victim) ".seqc-orphan.tmp")
    (fun oc -> Out_channel.output_string oc "torn write debris");
  let r = Cache.fsck ~dir in
  Alcotest.(check int) "scanned both entries" 2 r.Cache.scanned;
  Alcotest.(check int) "one valid" 1 r.Cache.valid;
  Alcotest.(check int) "one pruned" 1 r.Cache.pruned;
  Alcotest.(check int) "one orphan removed" 1 r.Cache.orphan_tmp;
  Alcotest.(check bool) "dirty store reported" false (Cache.fsck_clean r);
  (* second pass: the store is clean now *)
  let r2 = Cache.fsck ~dir in
  Alcotest.(check bool) "second pass clean" true (Cache.fsck_clean r2);
  Alcotest.(check int) "one entry survives" 1 r2.Cache.scanned;
  (* the surviving entry still serves; the pruned one is an honest miss *)
  let c2 = Cache.create ~dir ~mem_capacity:8 () in
  let hit k = Cache.find c2 k <> None in
  Alcotest.(check bool) "exactly one key survives" true
    (hit "k1" <> hit "k2")

let test_fsck_missing_dir () =
  let r = Cache.fsck ~dir:"/nonexistent/seq-fsck-nowhere" in
  Alcotest.(check bool) "missing dir is a clean zero report" true
    (Cache.fsck_clean r && r.Cache.scanned = 0)

(* ------------------------------------------------------------------ *)
(* TCP transport and concurrent clients                                *)
(* ------------------------------------------------------------------ *)

let free_port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  match Unix.getsockname fd with
  | Unix.ADDR_INET (_, p) -> p
  | _ -> Alcotest.fail "expected an inet sockaddr"

let test_server_tcp_matches_unix () =
  let dir = temp_dir "seq-tcp" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let port = free_port () in
  let config =
    {
      (Server.default_config ~socket_path:(Filename.concat dir "seqd.sock"))
      with
      tcp = Some ("127.0.0.1", port);
      cache_dir = Some (Filename.concat dir "cache");
      jobs = 2;
    }
  in
  let trs = List.filteri (fun i _ -> i < 8) C.transformations in
  let checks = List.map check_of trs in
  let handle = Server.spawn config in
  Fun.protect ~finally:(fun () -> Server.stop handle) @@ fun () ->
  let via_unix =
    Client.with_connection config.Server.socket_path (fun c ->
        Client.batch c checks)
  in
  let via_tcp =
    Client.with_connection
      (Printf.sprintf "tcp:127.0.0.1:%d" port)
      (fun c -> Client.batch c checks)
  in
  List.iter2
    (fun (u : Proto.check_result) (t : Proto.check_result) ->
      Alcotest.(check bool) "tcp verdict == unix verdict" true
        (t.Proto.verdict = u.Proto.verdict && t.Proto.origin = u.Proto.origin);
      (* both transports share one daemon cache: the second pass hits *)
      Alcotest.(check bool) "tcp pass served from cache" true
        (t.Proto.tier = Proto.Mem))
    via_unix via_tcp

let test_server_concurrent_clients () =
  let dir = temp_dir "seq-conc" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let config =
    {
      (Server.default_config ~socket_path:(Filename.concat dir "seqd.sock"))
      with
      jobs = 2;
      max_inflight = 16;
    }
  in
  let trs = List.filteri (fun i _ -> i < 10) C.transformations in
  let handle = Server.spawn config in
  Fun.protect ~finally:(fun () -> Server.stop handle) @@ fun () ->
  let worker () =
    Client.with_connection config.Server.socket_path (fun c ->
        List.map
          (fun (t : C.transformation) ->
            let r = Client.check c ~src:t.C.src ~tgt:t.C.tgt () in
            (r.Proto.verdict, r.Proto.origin))
          trs)
  in
  let domains = List.init 4 (fun _ -> Domain.spawn worker) in
  let results = List.map Domain.join domains in
  let reference = List.hd results in
  List.iteri
    (fun i r ->
      Alcotest.(check bool)
        (Printf.sprintf "client %d agrees with client 0" i)
        true (r = reference))
    results;
  (* and with a local, serial evaluation *)
  let h = Handler.create () in
  let local =
    List.map
      (fun t ->
        let r = handler_check h t in
        (r.Proto.verdict, r.Proto.origin))
      trs
  in
  Alcotest.(check bool) "concurrent verdicts == local" true
    (reference = local)

(* ------------------------------------------------------------------ *)
(* metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_metrics () =
  let m = Engine.Metrics.create () in
  Engine.Metrics.incr m "req.total";
  Engine.Metrics.incr ~n:4 m "req.total";
  Alcotest.(check int) "counter" 5 (Engine.Metrics.get m "req.total");
  Alcotest.(check int) "absent counter" 0 (Engine.Metrics.get m "nope");
  for i = 1 to 100 do
    Engine.Metrics.observe m "lat" (float_of_int i)
  done;
  (match Engine.Metrics.latency m "lat" with
   | None -> Alcotest.fail "expected a latency summary"
   | Some l ->
     Alcotest.(check int) "count" 100 l.Engine.Metrics.count;
     (* nearest-rank on 1..100: p50 = 50, p90 = 90, p99 = 99 *)
     Alcotest.(check (float 0.0)) "p50" 50.0 l.Engine.Metrics.p50;
     Alcotest.(check (float 0.0)) "p90" 90.0 l.Engine.Metrics.p90;
     Alcotest.(check (float 0.0)) "p99" 99.0 l.Engine.Metrics.p99);
  let rendered = Engine.Metrics.render m in
  Alcotest.(check bool) "render lists the counter" true
    (contains ~sub:"req.total 5" rendered)

(* ------------------------------------------------------------------ *)
(* CLI flag validation                                                 *)
(* ------------------------------------------------------------------ *)

let test_cliopts () =
  let ok = function Ok () -> true | Error _ -> false in
  Alcotest.(check bool) "jobs 1 ok" true (ok (Engine.Cliopts.validate_jobs 1));
  Alcotest.(check bool) "jobs 0 rejected" false
    (ok (Engine.Cliopts.validate_jobs 0));
  Alcotest.(check bool) "jobs -3 rejected" false
    (ok (Engine.Cliopts.validate_jobs (-3)));
  Alcotest.(check bool) "absent timeout ok" true
    (ok (Engine.Cliopts.validate_timeout_ms None));
  Alcotest.(check bool) "zero timeout ok" true
    (ok (Engine.Cliopts.validate_timeout_ms (Some 0.0)));
  Alcotest.(check bool) "negative timeout rejected" false
    (ok (Engine.Cliopts.validate_timeout_ms (Some (-1.0))));
  Alcotest.(check bool) "nan timeout rejected" false
    (ok (Engine.Cliopts.validate_timeout_ms (Some Float.nan)));
  Alcotest.(check bool) "negative retries rejected" false
    (ok (Engine.Cliopts.validate_retries (-1)));
  Alcotest.(check bool) "negative max-states rejected" false
    (ok (Engine.Cliopts.validate_max_states (Some (-1))));
  Alcotest.(check bool) "combined validation finds first error" true
    (match
       Engine.Cliopts.validate ~jobs:0 ~timeout_ms:(Some (-1.0))
         ~max_states:None ()
     with
     | Error msg -> contains ~sub:"--jobs" msg
     | Ok () -> false);
  Alcotest.(check int) "usage exit code" 2 Engine.Cliopts.usage_exit

let suite =
  [
    Alcotest.test_case "proto: encode/decode roundtrip" `Quick
      test_proto_roundtrip;
    Alcotest.test_case "proto: codec rejects garbage" `Quick test_proto_rejects;
    Alcotest.test_case "proto: framing boundaries" `Quick test_framing;
    Alcotest.test_case "cache: mem/disk tiers + promotion" `Quick
      test_cache_tiers;
    Alcotest.test_case "cache: LRU eviction with disk fallback" `Quick
      test_cache_lru_eviction;
    Alcotest.test_case "cache: truncated entry is a miss" `Quick
      test_cache_truncated_entry;
    Alcotest.test_case "cache: zero-byte entry is a miss" `Quick
      test_cache_empty_entry;
    Alcotest.test_case "cache: garbled entry is a miss" `Quick
      test_cache_garbled_entry;
    Alcotest.test_case "cache: foreign-version entry is a miss" `Quick
      test_cache_version_mismatch_entry;
    Alcotest.test_case "cache: store VERSION mismatch reads empty" `Quick
      test_cache_store_version_mismatch;
    Alcotest.test_case "fingerprint: canonical keys" `Quick
      test_fingerprint_keys;
    Alcotest.test_case "handler: tier progression, provenance" `Quick
      test_handler_tiers_and_provenance;
    Alcotest.test_case "handler: per-backend verdicts never leak" `Quick
      test_handler_backend_isolation;
    Alcotest.test_case "handler: Unknown is never cached" `Quick
      test_handler_unknown_uncached;
    Alcotest.test_case "handler: parse errors answer Unknown" `Quick
      test_handler_parse_error;
    Alcotest.test_case "handler: batch == singles, in order" `Quick
      test_handler_batch_order;
    QCheck_alcotest.to_alcotest prop_server_matches_local;
    Alcotest.test_case "server: end-to-end tiers over a socket" `Quick
      test_server_end_to_end;
    Alcotest.test_case "proto: assembler reassembles any chunking" `Quick
      test_assembler_incremental;
    Alcotest.test_case "proto: 1 MiB frame roundtrips" `Quick
      test_large_frame_roundtrip;
    Alcotest.test_case "client: retries until a connection survives" `Quick
      test_client_retry_until_success;
    Alcotest.test_case "client: Busy backs off on the same connection" `Quick
      test_client_busy_backoff;
    Alcotest.test_case "faults: backoff is seeded and capped" `Quick
      test_backoff_deterministic;
    Alcotest.test_case "chaos: schedule is pure in (seed, index)" `Quick
      test_chaos_schedule_determinism;
    Alcotest.test_case "chaos: corpus verdicts survive a faulty wire" `Quick
      test_chaos_end_to_end;
    Alcotest.test_case "fsck: prunes torn entries and orphan tmps" `Quick
      test_fsck_recovers_store;
    Alcotest.test_case "fsck: missing store is clean" `Quick
      test_fsck_missing_dir;
    Alcotest.test_case "server: tcp and unix answer identically" `Quick
      test_server_tcp_matches_unix;
    Alcotest.test_case "server: concurrent clients, one answer" `Quick
      test_server_concurrent_clients;
    Alcotest.test_case "metrics: counters and percentiles" `Quick test_metrics;
    Alcotest.test_case "cliopts: range validation" `Quick test_cliopts;
  ]
