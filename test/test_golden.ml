(* Golden-table regression test for the E1/E2 transformation soundness
   matrix.  The table below is Matrix.render_e12 ~stats:false over the
   full corpus — every byte (verdicts, pair counts, row order) is a
   deterministic function of the corpus, so any drift is a real change
   in checker behavior and must be reviewed, not absorbed.

   To regenerate after an intentional change:
     dune exec bin/seqcheck.exe -- --corpus 2>/dev/null \
       | sed -E 's/ [0-9]+\.[0-9]+$//; s/ ms$//' | head -n -1

   Comparison right-trims each line: the renderer pads fixed-width
   columns, so rows carry trailing spaces the editor would strip. *)

let golden =
  {golden|name                             paper ref                  simple(exp/got)    advanced(exp/got)  ok         pairs
slf-basic                        Ex 1.1                     sound/sound        sound/sound        ok         8
licm-pattern                     Ex 1.3                     sound/sound        sound/sound        ok         40
reorder-na-rw-diff               Ex 2.5                     sound/sound        sound/sound        ok         64
reorder-na-rw-same               Ex 2.5                     unsound/unsound    unsound/unsound    ok         16
reorder-na-ww-diff               Ex 2.5 (variant)           sound/sound        sound/sound        ok         64
overwritten-store-elim           Ex 2.6(i)                  sound/sound        sound/sound        ok         8
store-to-load-fwd                Ex 2.6(ii)                 sound/sound        sound/sound        ok         8
load-to-load-fwd                 Ex 2.6(iii)                sound/sound        sound/sound        ok         8
read-before-write-elim           Ex 2.6(iv)                 sound/sound        sound/sound        ok         8
write-after-read-intro           Ex 2.6 (converse of iv)    unsound/unsound    unsound/unsound    ok         16
redundant-store-intro            Ex 2.6(i')                 sound/sound        sound/sound        ok         8
copy-to-load-intro               Ex 2.6(iii')               sound/sound        sound/sound        ok         8
write-before-loop                Ex 2.7                     unsound/unsound    unsound/unsound    ok         16
write-before-loop-after-write    Ex 2.7 (variant)           unsound/unsound    unsound/unsound    ok         16
read-before-loop                 Ex 2.7                     sound/sound        sound/sound        ok         8
unused-load-elim                 Ex 2.8                     sound/sound        sound/sound        ok         8
irrelevant-load-intro            Ex 2.8                     sound/sound        sound/sound        ok         8
acq-then-na-write                Ex 2.9(i)                  unsound/unsound    unsound/unsound    ok         16
na-write-then-rel                Ex 2.9(ii)                 unsound/unsound    unsound/unsound    ok         26
acq-then-na-read                 Ex 2.9(iii)                unsound/unsound    unsound/unsound    ok         104
na-read-then-rel                 Ex 2.9(iv)                 unsound/unsound    unsound/unsound    ok         38
na-write-into-acq                Ex 2.9(i')                 sound/sound        sound/sound        ok         24
na-read-into-acq                 Ex 2.9(iii')               sound/sound        sound/sound        ok         52
na-read-into-rel                 Ex 2.9(iv')                sound/sound        sound/sound        ok         19
na-write-into-rel                Ex 2.9(ii')                unsound/unsound    sound/sound        ok         24
store-intro-after-rel            Ex 2.10                    unsound/unsound    unsound/unsound    ok         20
store-intro-after-rlx            Ex 2.10                    sound/sound        sound/sound        ok         9
slf-across-rlx-read              Ex 2.11                    sound/sound        sound/sound        ok         12
slf-across-rlx-write             Ex 2.11                    sound/sound        sound/sound        ok         9
slf-across-acq-read              Ex 2.11                    sound/sound        sound/sound        ok         12
slf-across-rel-write             Ex 2.11                    sound/sound        sound/sound        ok         10
slf-across-rel-acq               Ex 2.12                    unsound/unsound    unsound/unsound    ok         60
rlx-read-then-na-write           §3 (late UB)              unsound/unsound    sound/sound        ok         32
acq-then-div0                    Ex 3.1                     unsound/unsound    unsound/unsound    ok         2
ex3.1-end-to-end                 Ex 3.1 (whole chain)       unsound/unsound    unsound/unsound    ok         2
conditional-ub-hoist             §3 (oracle counterexample) unsound/unsound    unsound/unsound    ok         2
unconditional-ub-hoist           §3                        unsound/unsound    sound/sound        ok         2
dse-across-rlx-read              Ex 3.5                     sound/sound        sound/sound        ok         24
dse-across-acq-read              Ex 3.5                     sound/sound        sound/sound        ok         24
dse-across-rel-write             Ex 3.5                     unsound/unsound    sound/sound        ok         26
dse-across-rel-acq               Ex 3.5 (boundary)          unsound/unsound    unsound/unsound    ok         66
choose-then-rel                  Remark 3 / App C           unsound/unsound    unsound/unsound    ok         2
choose-then-na-write             Remark 3 (allowed by ⊑w) unsound/unsound    sound/sound        ok         28
freeze-then-rel                  App C (freeze form)        unsound/unsound    unsound/unsound    ok         2
na-write-into-acq-fence          extension (fence roach motel) sound/sound        sound/sound        ok         12
acq-fence-then-na-write          extension (fence roach motel) unsound/unsound    unsound/unsound    ok         16
slf-across-cas                   extension (SLF across a single RMW) sound/sound        sound/sound        ok         11
no-slf-across-rel-then-cas       extension (rel;RMW is a rel-acq pair) unsound/unsound    unsound/unsound    ok         46
rmw-identity                     extension (RMW matches itself) sound/sound        sound/sound        ok         5
no-slf-across-sc-fence           extension (SC fence is a rel-acq pair) unsound/unsound    unsound/unsound    ok         26
slf-across-rel-fence             extension (Ex 2.11 analogue for fences) sound/sound        sound/sound        ok         10
no-sc-fence-weakening            extension (sc fence ≠ acq-rel fence) unsound/unsound    unsound/unsound    ok         2
sc-fence-identity                extension                  sound/sound        sound/sound        ok         2
no-acq-load-to-load-fwd          §2 (atomics are not optimized) unsound/unsound    unsound/unsound    ok         10
no-rlx-store-elim                §2 (atomics are not optimized) unsound/unsound    unsound/unsound    ok         2
no-rlx-slf                       §2 (atomics are not optimized) unsound/unsound    unsound/unsound    ok         4
no-na-to-rlx-strengthening       §5 (a mapping theorem, not a SEQ one) unsound/unsound    unsound/unsound    ok         16
-- 57 transformations, 0 mismatches
|golden}

let rtrim s =
  let n = ref (String.length s) in
  while !n > 0 && (s.[!n - 1] = ' ' || s.[!n - 1] = '\t') do decr n done;
  String.sub s 0 !n

let lines s = String.split_on_char '\n' s |> List.map rtrim

(* Right-trimmed, blank-line-insensitive comparison with a line-precise
   failure report.  All renderers pad fixed-width columns, so rows carry
   trailing spaces an editor would strip from the embedded golden. *)
let check_golden ~what ~expected ~actual =
  let exp = List.filter (fun l -> l <> "") (lines expected) in
  let got = List.filter (fun l -> l <> "") (lines actual) in
  if exp <> got then begin
    Fmt.epr "--- actual %s ---@.%s--- end ---@." what actual;
    let rec first_diff i = function
      | [], [] -> ()
      | e :: _, [] -> Alcotest.failf "line %d: missing %S" i e
      | [], g :: _ -> Alcotest.failf "line %d: extra %S" i g
      | e :: es, g :: gs ->
        if e <> g then
          Alcotest.failf "line %d differs:@.  expected %S@.  got      %S" i e g
        else first_diff (i + 1) (es, gs)
    in
    first_diff 1 (exp, got)
  end

let test_e12_golden () =
  (* swept through the engine so the golden table also re-certifies the
     parallel=sequential rendering contract *)
  let actual = Litmus.Matrix.render_e12 ~stats:false (Litmus.Matrix.e12_rows ~jobs:2 ()) in
  check_golden ~what:"E1/E2 table" ~expected:golden ~actual

(* E4 litmus exploration: states, races and behavior sets per catalog
   program.  State counts pin the promising-machine and SC-baseline
   visited-set identities — a conflation or split in either shows up
   here as a count drift. *)
let golden_e4 =
  {golden|litmus       paper ref          states   races   behaviors
SB-rlx       classic            136      false   {⟨0 ∥ 0⟩; ⟨0 ∥ 1⟩; ⟨1 ∥ 0⟩; ⟨1 ∥ 1⟩}
MP-rel-acq   classic            200      false   {⟨0 ∥ 0⟩; ⟨0 ∥ 11⟩}
LB-rlx       classic            157      false   {⟨0 ∥ 0⟩; ⟨0 ∥ 1⟩; ⟨1 ∥ 0⟩; ⟨1 ∥ 1⟩}
LB-data      out-of-thin-air    157      false   {⟨0 ∥ 0⟩}
Ex-5.1       Ex 5.1             647      true    {⟨0 ∥ 0⟩; ⟨0 ∥ 1⟩; ⟨1 ∥ 1⟩; ⟨2 ∥ 1⟩; ⟨undef ∥ 1⟩}
WW-race      §5                1901     true    {⊥; ⟨0 ∥ 0⟩}
RW-race      §5                216      true    {⟨0 ∥ 0⟩; ⟨1 ∥ 0⟩; ⟨2 ∥ 0⟩; ⟨undef ∥ 0⟩}
2+2W-rlx     classic            3824     false   {⟨0 ∥ 0 ∥ 0⟩; ⟨0 ∥ 0 ∥ 1⟩; ⟨0 ∥ 0 ∥ 2⟩; ⟨0 ∥ 0 ∥ 10⟩; ⟨0 ∥ 0 ∥ 11⟩; ⟨0 ∥ 0 ∥ 12⟩; ⟨0 ∥ 0 ∥ 20⟩; ⟨0 ∥ 0 ∥ 21⟩; ⟨0 ∥ 0 ∥ 22⟩}
MP-fences    extension (fences) 290      false   {⟨0 ∥ 0⟩; ⟨0 ∥ 11⟩}
SB-sc-fence  extension (SC fences) 208      false   {⟨0 ∥ 1⟩; ⟨1 ∥ 0⟩; ⟨1 ∥ 1⟩}
-- 10 litmus programs
|golden}

let test_e4_golden () =
  let actual =
    Litmus.Matrix.render_e4 ~stats:false (Litmus.Matrix.e4_rows ~jobs:2 ())
  in
  check_golden ~what:"E4 table" ~expected:golden_e4 ~actual

(* E5 adequacy slice exactly as the default (non --full) bench run slices
   it: every 4th transformation × the first 4 contexts. *)
let golden_e5 =
  {golden|transformation                   SEQ-adv   PS-refines  ok
slf-basic                        true      true        ok
reorder-na-ww-diff               true      true        ok
read-before-write-elim           true      true        ok
write-before-loop                false     false       ok
irrelevant-load-intro            true      true        ok
na-read-then-rel                 false     true        ok
na-write-into-rel                true      true        ok
slf-across-rlx-write             true      true        ok
rlx-read-then-na-write           true      true        ok
unconditional-ub-hoist           true      true        ok
dse-across-rel-acq               false     true        ok
na-write-into-acq-fence          true      true        ok
rmw-identity                     true      true        ok
sc-fence-identity                true      true        ok
no-na-to-rlx-strengthening       false     true        ok
-- 15 rows x 4 contexts, 0 adequacy violations
|golden}

let test_e5_golden () =
  let corpus =
    List.filteri (fun i _ -> i mod 4 = 0) Litmus.Catalog.transformations
  in
  let contexts = List.filteri (fun i _ -> i < 4) Litmus.Catalog.contexts in
  let actual =
    Litmus.Matrix.render_e5 ~stats:false
      (Litmus.Adequacy.run ~jobs:2 ~contexts ~corpus ())
  in
  check_golden ~what:"E5 slice" ~expected:golden_e5 ~actual

(* E15 differential grid: per-backend allow/forbid verdicts for the weak
   behavior of each catalog grid entry, plus the SC ⊆ TSO ⊆ ARMv8 chain
   check.  Pins the hardware machines' behavior sets: a TSO buffer or
   ARMv8 reordering change that admits or loses a weak behavior flips a
   cell here.  Regenerate with:
     dune exec bin/litmus_run.exe -- --grid 2>/dev/null *)
let golden_e15 =
  {golden|litmus       paper ref          weak       sc      tso     armv8   ps      chain     ok
SB-rlx       classic            0,0        forbid  allow   allow   allow   ok        ok
SB-sc-fence  extension (SC fences) 0,0        forbid  forbid  forbid  forbid  ok        ok
MP-rel-acq   classic            0,10       forbid  forbid  forbid  forbid  ok        ok
MP-rlx       classic            0,10       forbid  forbid  allow   allow   ok        ok
MP-fences    extension (fences) 0,10       forbid  forbid  forbid  forbid  ok        ok
LB-rlx       classic            1,1        forbid  forbid  forbid  allow   ok        ok
IRIW-rlx     classic            0,0,10,10  forbid  forbid  allow   allow   ok        ok
R-rlx        classic            0,0,12     forbid  allow   allow   allow   ok        ok
S-rlx        classic            0,1,12     forbid  forbid  allow   allow   ok        ok
WRC-rlx      classic            0,1,10     forbid  forbid  allow   allow   ok        ok
CoRR-rlx     classic            0,10       forbid  forbid  forbid  forbid  ok        ok
-- 11 grid rows, 0 mismatches
|golden}

let test_e15_golden () =
  let actual =
    Litmus.Matrix.render_e15 ~stats:false (Litmus.Matrix.e15_rows ~jobs:2 ())
  in
  check_golden ~what:"E15 grid" ~expected:golden_e15 ~actual

(* E15 pass-soundness grid: catchfire must refute irrelevant-load-intro
   (a load of a racy location is UB there, not a no-op) while every
   other backend accepts all six pairs. *)
let golden_e15p =
  {golden|transformation             context              sc        catchfire   tso       armv8     ps
store-to-load-fwd          na-writer            ok        ok          ok        ok        ok
reorder-na-rw-diff         na-writer            ok        ok          ok        ok        ok
irrelevant-load-intro      na-writer            ok        REFUTED     ok        ok        ok
unused-load-elim           na-writer            ok        ok          ok        ok        ok
overwritten-store-elim     na-reader            ok        ok          ok        ok        ok
read-before-write-elim     na-writer            ok        ok          ok        ok        ok
-- 6 pass rows
|golden}

let test_e15p_golden () =
  let actual =
    Litmus.Matrix.render_e15p ~stats:false (Litmus.Matrix.e15p_rows ~jobs:2 ())
  in
  check_golden ~what:"E15 pass grid" ~expected:golden_e15p ~actual

(* seqlint over examples/programs/*.wm must reproduce the checked-in
   examples/seqlint.golden byte for byte (same rendering as
   bin/seqlint.ml, same shell-glob file order). *)
let test_seqlint_golden () =
  (* dune runtest runs with cwd _build/default/test (where the source_tree
     dep materialises ../examples); a direct dune exec runs from the
     project root. *)
  let root =
    if Sys.file_exists "../examples/programs" then ".." else "examples/.."
  in
  let dir = Filename.concat root "examples/programs" in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".wm")
    |> List.sort String.compare
  in
  Alcotest.(check bool) "example programs present" true (files <> []);
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  List.iter
    (fun f ->
      let label = "examples/programs/" ^ f in
      let text =
        In_channel.with_open_text (Filename.concat dir f) In_channel.input_all
      in
      let threads = Lang.Parser.threads_of_string text in
      let diags = Optimizer.Lint.lint ~hints:true threads in
      let n = List.length threads in
      if diags = [] then Fmt.pf ppf "%s: clean@." label
      else begin
        Fmt.pf ppf "%s:@." label;
        List.iter
          (fun d -> Fmt.pf ppf "  %a@." (Optimizer.Lint.pp_diag ~threads:n) d)
          diags
      end)
    files;
  Format.pp_print_flush ppf ();
  let expected =
    In_channel.with_open_text
      (Filename.concat root "examples/seqlint.golden")
      In_channel.input_all
  in
  check_golden ~what:"seqlint output" ~expected ~actual:(Buffer.contents buf)

let suite =
  [
    Alcotest.test_case "E1/E2 table matches golden" `Quick test_e12_golden;
    Alcotest.test_case "E4 table matches golden" `Quick test_e4_golden;
    Alcotest.test_case "E5 slice matches golden" `Quick test_e5_golden;
    Alcotest.test_case "E15 grid matches golden" `Quick test_e15_golden;
    Alcotest.test_case "E15 pass grid matches golden" `Quick test_e15p_golden;
    Alcotest.test_case "seqlint output matches golden" `Quick
      test_seqlint_golden;
  ]
