(* CLI exit-code contract for the drivers (README: 0 ok, 1 parse/IO
   error, 2 usage, 3 refuted/lint errors, 4 undecided).

   The load-bearing check is the seqlint/seqcheck agreement: `seqcheck
   --lint SRC TGT` must exit 3 exactly when `seqlint SRC TGT` does
   (error-severity diagnostics), even if the refinement itself holds —
   the two front ends share Optimizer.Lint and must never disagree on a
   program pair.

   dune runtest runs with cwd _build/default/test, so the freshly built
   drivers are at ../bin/*.exe (declared as deps in test/dune); a direct
   `dune exec test/test_main.exe` from the project root finds them under
   _build/default/bin. *)

let exe name =
  let local = Filename.concat "../bin" (name ^ ".exe") in
  if Sys.file_exists local then local
  else Filename.concat "_build/default/bin" (name ^ ".exe")

let examples =
  if Sys.file_exists "../examples/programs" then "../examples/programs"
  else "examples/programs"

let wm f = Filename.concat examples f

let run_exit cmd =
  match Unix.system (cmd ^ " > /dev/null 2>&1") with
  | Unix.WEXITED n -> n
  | Unix.WSIGNALED _ | Unix.WSTOPPED _ -> -1

let check_exit what expected cmd =
  Alcotest.(check int) what expected (run_exit cmd)

let test_seqlint_exit_codes () =
  (* warnings and hints are informational: exit 0 *)
  check_exit "warning-only program exits 0" 0
    (Fmt.str "%s %s" (exe "seqlint") (wm "bad_reorder_src.wm"));
  (* a drf-guarded downgrade removes the would-be racy-write error *)
  check_exit "DRF-certified program exits 0" 0
    (Fmt.str "%s %s" (exe "seqlint") (wm "mp.wm"));
  check_exit "racy-write program exits 3" 3
    (Fmt.str "%s %s" (exe "seqlint") (wm "slf_src.wm"))

(* cmdliner's `file` converter rejects a nonexistent positional at parse
   time, so this surfaces as its CLI-error code (124), never as one of
   the verdict codes 0/3/4. *)
let test_seqlint_missing_file () =
  let code = run_exit (Fmt.str "%s /nonexistent.wm" (exe "seqlint")) in
  Alcotest.(check bool)
    "missing file is a usage/IO error" true
    (code = 1 || code = 2 || code = 124)

let test_seqlint_json_same_exit () =
  List.iter
    (fun f ->
      let plain = run_exit (Fmt.str "%s %s" (exe "seqlint") (wm f)) in
      let json = run_exit (Fmt.str "%s --json %s" (exe "seqlint") (wm f)) in
      Alcotest.(check int) (f ^ ": --json preserves the exit code") plain json)
    [ "mp.wm"; "slf_src.wm"; "bad_reorder_src.wm" ]

let test_seqcheck_lint_agreement () =
  List.iter
    (fun (s, t) ->
      let lint_errors =
        run_exit (Fmt.str "%s %s %s" (exe "seqlint") (wm s) (wm t)) = 3
      in
      let plain =
        run_exit (Fmt.str "%s %s %s" (exe "seqcheck") (wm s) (wm t))
      in
      let linted =
        run_exit (Fmt.str "%s --lint %s %s" (exe "seqcheck") (wm s) (wm t))
      in
      Alcotest.(check int)
        (Fmt.str "%s/%s: --lint agrees with seqlint" s t)
        (if plain = 0 && lint_errors then 3 else plain)
        linted)
    [
      ("slf_src.wm", "slf_tgt.wm");
      (* refines, lint errors: 0 -> 3 *)
      ("bad_reorder_src.wm", "bad_reorder_tgt.wm");
      (* refuted either way: 3 *)
      ("fig4.wm", "fig4.wm");
      (* self-refinement with lint errors: 0 -> 3 *)
    ]

let suite =
  [
    Alcotest.test_case "seqlint exit codes" `Quick test_seqlint_exit_codes;
    Alcotest.test_case "seqlint missing-file exit" `Quick
      test_seqlint_missing_file;
    Alcotest.test_case "seqlint --json preserves exit codes" `Quick
      test_seqlint_json_same_exit;
    Alcotest.test_case "seqcheck --lint agrees with seqlint" `Quick
      test_seqcheck_lint_agreement;
  ]
