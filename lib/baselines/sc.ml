(** Sequentially consistent interleaving baseline with happens-before data
    race detection.

    Used for (i) the catch-fire comparison (E6: under C/C++11-style
    semantics a data race is UB, which makes load introduction unsound),
    and (ii) DRF-guarantee experiments (E7).

    Memory is a flat map; release/acquire (and RMW) accesses synchronize
    via per-location release clocks; relaxed accesses do not synchronize
    but also do not race (only conflicting pairs with at least one
    non-atomic access race, §5). *)

open Lang

type loc_meta = {
  w_na : (int * int) option;  (* epoch of last non-atomic write *)
  w_at : (int * int) option;  (* epoch of last atomic write *)
  r_na : Vclock.t;  (* join of non-atomic read clocks *)
  r_at : Vclock.t;  (* join of atomic read clocks *)
  release : Vclock.t;  (* release clock (for acq/rel synchronisation) *)
}

type state = {
  progs : Prog.state list;
  clocks : Vclock.t list;
  mem : Value.t Loc.Map.t;
  meta : loc_meta Loc.Map.t;
  outs : Value.t list list;  (* per thread, most recent first *)
  raced : bool;  (* a data race occurred: conflicting pair, ≥1 non-atomic *)
  raced_strict : Loc.Set.t;
      (* locations with a conflicting unordered pair of any access modes —
         the premises of the DRF-SC guarantee (empty set; no access in the
         fragment is SC) and of DRF-LOCK (⊆ the lock locations) *)
}

type behavior = Promising.Machine.behavior =
  | Ret of (Value.t * Value.t list) list
  | Bot

module Behavior_set = Promising.Machine.Behavior_set

type result = {
  behaviors : Behavior_set.t;
  races : bool;  (** some interleaving contains a data race (≥1 na access) *)
  strict_races : bool;
      (** some interleaving contains a conflicting unordered pair of any
          access modes (the DRF-SC premise) *)
  strict_race_locs : Loc.Set.t;
      (** the locations of such pairs (for the DRF-LOCK premise) *)
  truncated : bool;
  states : int;
}

let n_threads st = List.length st.progs

let empty_meta n =
  {
    w_na = None;
    w_at = None;
    r_na = Vclock.make n;
    r_at = Vclock.make n;
    release = Vclock.make n;
  }

let get_meta st x = Loc.Map.find_default ~default:(empty_meta (n_threads st)) x st.meta

let read_mem st x = Loc.Map.find_default ~default:Value.zero x st.mem

let epoch_ok e c = match e with None -> true | Some ep -> Vclock.epoch_le ep c

(* Is this access racy against the recorded history? *)
let racy_read st tid x ~atomic =
  let m = get_meta st x in
  let c = List.nth st.clocks tid in
  if atomic then not (epoch_ok m.w_na c)
  else not (epoch_ok m.w_na c && epoch_ok m.w_at c)

let racy_read_strict st tid x =
  let m = get_meta st x in
  let c = List.nth st.clocks tid in
  not (epoch_ok m.w_na c && epoch_ok m.w_at c)

let racy_write_strict st tid x =
  let m = get_meta st x in
  let c = List.nth st.clocks tid in
  not
    (epoch_ok m.w_na c && epoch_ok m.w_at c && Vclock.le m.r_na c
     && Vclock.le m.r_at c)

let racy_write st tid x ~atomic =
  let m = get_meta st x in
  let c = List.nth st.clocks tid in
  if atomic then not (epoch_ok m.w_na c && Vclock.le m.r_na c)
  else
    not
      (epoch_ok m.w_na c && epoch_ok m.w_at c && Vclock.le m.r_na c
       && Vclock.le m.r_at c)

let set_nth l i v = List.mapi (fun j x -> if j = i then v else x) l

let record_read st tid x ~atomic =
  let m = get_meta st x in
  let c = List.nth st.clocks tid in
  let m =
    if atomic then { m with r_at = Vclock.join m.r_at c }
    else { m with r_na = Vclock.join m.r_na c }
  in
  { st with meta = Loc.Map.add x m st.meta }

let record_write st tid x ~atomic =
  let m = get_meta st x in
  let c = List.nth st.clocks tid in
  let ep = Some (tid, c.(tid)) in
  let m = if atomic then { m with w_at = ep } else { m with w_na = ep } in
  { st with meta = Loc.Map.add x m st.meta }

(* Acquire: join the location's release clock into ours. *)
let do_acquire st tid x =
  let m = get_meta st x in
  let c = Vclock.join (List.nth st.clocks tid) m.release in
  { st with clocks = set_nth st.clocks tid c }

(* Release: tick our clock and publish it on the location. *)
let do_release st tid x =
  let c = Vclock.tick (List.nth st.clocks tid) tid in
  let st = { st with clocks = set_nth st.clocks tid c } in
  let m = get_meta st x in
  let m = { m with release = Vclock.join m.release c } in
  { st with meta = Loc.Map.add x m st.meta }

(** Successors of [st] by one step of thread [tid] ([None] if that thread
    cannot move), plus a UB flag. *)
let thread_steps (values : Value.t list) (st : state) (tid : int) :
    [ `Next of state | `Ub ] list =
  let prog = List.nth st.progs tid in
  let with_prog st p = { st with progs = set_nth st.progs tid p } in
  match Prog.step prog with
  | Prog.Terminated _ -> []
  | Prog.Undefined -> [ `Ub ]
  | Prog.Silent p -> [ `Next (with_prog st p) ]
  | Prog.Do_out (v, p) ->
    let outs = set_nth st.outs tid (v :: List.nth st.outs tid) in
    [ `Next (with_prog { st with outs } p) ]
  | Prog.Choice f -> List.map (fun v -> `Next (with_prog st (f v))) values
  | Prog.Do_read (o, x, f) ->
    let atomic = Mode.read_is_atomic o in
    let raced = st.raced || racy_read st tid x ~atomic in
    let raced_strict =
      if racy_read_strict st tid x then Loc.Set.add x st.raced_strict
      else st.raced_strict
    in
    let st = { st with raced; raced_strict } in
    let st = if o = Mode.Racq then do_acquire st tid x else st in
    let st = record_read st tid x ~atomic in
    [ `Next (with_prog st (f (read_mem st x))) ]
  | Prog.Do_write (o, x, v, p) ->
    let atomic = Mode.write_is_atomic o in
    let raced = st.raced || racy_write st tid x ~atomic in
    let raced_strict =
      if racy_write_strict st tid x then Loc.Set.add x st.raced_strict
      else st.raced_strict
    in
    let st = { st with raced; raced_strict } in
    let st = if o = Mode.Wrel then do_release st tid x else st in
    let st = record_write st tid x ~atomic in
    [ `Next (with_prog { st with mem = Loc.Map.add x v st.mem } p) ]
  | Prog.Do_update (x, f) ->
    let raced = st.raced || racy_write st tid x ~atomic:true in
    let raced_strict =
      if racy_write_strict st tid x then Loc.Set.add x st.raced_strict
      else st.raced_strict
    in
    let st = { st with raced; raced_strict } in
    let v_read = read_mem st x in
    (match f v_read with
     | Prog.Upd_fault -> [ `Ub ]
     | Prog.Upd_read_only p ->
       let st = do_acquire st tid x in
       let st = record_read st tid x ~atomic:true in
       [ `Next (with_prog st p) ]
     | Prog.Upd_write (v_new, p) ->
       let st = do_acquire st tid x in
       let st = do_release st tid x in
       let st = record_read st tid x ~atomic:true in
       let st = record_write st tid x ~atomic:true in
       [ `Next (with_prog { st with mem = Loc.Map.add x v_new st.mem } p) ])
  | Prog.Do_fence (m, p) ->
    (* SC baseline: fences are global synchronisation barriers; we model
       them as release+acquire on a distinguished token location. *)
    let tok = Loc.make "__fence__" in
    let st =
      match m with
      | Mode.Facq -> do_acquire st tid tok
      | Mode.Frel -> do_release st tid tok
      | Mode.Facqrel | Mode.Fsc -> do_release (do_acquire st tid tok) tid tok
    in
    [ `Next (with_prog st p) ]

let terminal_behavior st =
  let rec go acc progs outs =
    match progs, outs with
    | [], [] -> Some (Ret (List.rev acc))
    | p :: ps, o :: os ->
      (match Prog.step p with
       | Prog.Terminated v -> go ((v, List.rev o) :: acc) ps os
       | _ -> None)
    | _ -> None
  in
  go [] st.progs st.outs

(* Canonical state identity for the visited set.  [meta] is deliberately
   excluded: it is a function of the access history already summarised by
   (clocks, raced, raced_strict) for the purposes of this exploration, and
   keying on it would only split states without changing any behavior or
   race verdict.  (The exclusion predates this comparator — the previous
   string-rendered key had the same components — so state counts are
   stable.) *)
module State_key = struct
  type t = state

  let compare s1 s2 =
    let c = List.compare Prog.compare_state s1.progs s2.progs in
    if c <> 0 then c
    else
      let c = List.compare Vclock.compare s1.clocks s2.clocks in
      if c <> 0 then c
      else
        let c = Loc.Map.compare Value.compare s1.mem s2.mem in
        if c <> 0 then c
        else
          let c =
            List.compare (List.compare Value.compare) s1.outs s2.outs
          in
          if c <> 0 then c
          else
            let c = Bool.compare s1.raced s2.raced in
            if c <> 0 then c
            else Loc.Set.compare s1.raced_strict s2.raced_strict
end

module State_set = Set.Make (State_key)

(** Exhaustive SC interleaving exploration. *)
let explore ?(values = [ Value.Int 0; Value.Int 1; Value.Int 2 ])
    ?(max_states = 200_000) (progs : Stmt.t list) : result =
  let n = List.length progs in
  let init =
    {
      progs = List.map Prog.init progs;
      clocks = List.init n (fun tid -> Vclock.init_thread n tid);
      mem = Loc.Map.empty;
      meta = Loc.Map.empty;
      outs = List.init n (fun _ -> []);
      raced = false;
      raced_strict = Loc.Set.empty;
    }
  in
  let visited = ref State_set.empty in
  let n_visited = ref 0 in
  let behaviors = ref Behavior_set.empty in
  let races = ref false in
  let strict_race_locs = ref Loc.Set.empty in
  let truncated = ref false in
  let queue = Queue.create () in
  let push st =
    if not (State_set.mem st !visited) then
      if !n_visited >= max_states then truncated := true
      else begin
        visited := State_set.add st !visited;
        incr n_visited;
        Queue.push st queue
      end
  in
  push init;
  while not (Queue.is_empty queue) do
    let st = Queue.pop queue in
    if st.raced then races := true;
    strict_race_locs := Loc.Set.union !strict_race_locs st.raced_strict;
    (match terminal_behavior st with
     | Some b -> behaviors := Behavior_set.add b !behaviors
     | None -> ());
    for tid = 0 to n - 1 do
      List.iter
        (function
          | `Ub -> behaviors := Behavior_set.add Bot !behaviors
          | `Next st' -> push st')
        (thread_steps values st tid)
    done
  done;
  {
    behaviors = !behaviors;
    races = !races;
    strict_races = not (Loc.Set.is_empty !strict_race_locs);
    strict_race_locs = !strict_race_locs;
    truncated = !truncated;
    states = !n_visited;
  }
