(** Simple behavioral refinement in SEQ (§2, Def 2.4), decided by a
    simulation game over the finite domain.

    Because WHILE programs are deterministic (Def 6.1) and all environment
    choices are recorded inside trace labels, step-wise label matching
    coincides with trace-set inclusion; the reachable pair graph is pruned
    to a greatest fixpoint (the refinement is safety-style: partial, not
    termination-preserving). *)

open Lang

(** A simulation-game node: a target and a source configuration that agree
    on the permission set. *)
type pair = { tgt : Config.t; src : Config.t }

val compare_pair : pair -> pair -> int

(** Initial pairs realizing Def 2.4's "for every P, F, M".
    [quantify_written] additionally ranges the initial F over all subsets;
    by monotonicity of all F-side conditions in a common initial F, the
    default F = ∅ already decides the quantified statement (tested). *)
val initial_pairs :
  ?quantify_written:bool ->
  Domain.t ->
  src:Prog.state ->
  tgt:Prog.state ->
  pair list

(** The set-based reference checker: recomputes every line and move list,
    runs the greatest fixpoint by repeated full passes — none of the fast
    path's caching layers.  Same game, so verdicts {e and} explored pair
    counts must agree with the default entry points (the differential
    harness in test/test_diffcore.ml enforces this). *)
module Slow : sig
  val check_pairs : ?budget:Engine.Budget.t -> Domain.t -> pair list -> bool

  val check_pairs_count :
    ?budget:Engine.Budget.t -> Domain.t -> pair list -> bool * int
end

(** Decide refinement from a set of initial pairs.  [budget] (default
    unlimited, a no-op) is charged one state per explored simulation pair
    and polled along the fixpoint; on exhaustion {!Engine.Budget.Exhausted}
    escapes — use the [_verdict] forms to get [Unknown] instead.

    Runs the hash-consed, memoized fast path when the domain and roots
    pack (falling back to {!Slow} otherwise); verdict and pair count are
    identical either way. *)
val check_pairs : ?budget:Engine.Budget.t -> Domain.t -> pair list -> bool

(** Like {!check_pairs}, also reporting the number of simulation pairs
    explored. *)
val check_pairs_count :
  ?budget:Engine.Budget.t -> Domain.t -> pair list -> bool * int

(** Budgeted three-valued {!check_pairs}: never raises; budget exhaustion
    and trapped exceptions are reported as [Unknown]. *)
val check_pairs_verdict :
  ?budget:Engine.Budget.t -> Domain.t -> pair list -> unit Engine.Verdict.t

(** [check d ~src ~tgt] decides [σ_tgt ⊑ σ_src] (Def 2.4) over the finite
    domain.  [symmetry] (default off) explores one initial environment per
    orbit of the location renamings fixing both programs — verdict
    preserved, pair counts reduced (hence off wherever counts are golden).
    @raise Config.Mixed_access on mixed atomic/non-atomic use of a
    location.
    @raise Engine.Budget.Exhausted when [budget] runs out. *)
val check :
  ?quantify_written:bool -> ?symmetry:bool -> ?budget:Engine.Budget.t ->
  Domain.t -> src:Stmt.t -> tgt:Stmt.t -> bool

(** Like {!check}, also reporting the number of simulation pairs explored
    (the SEQ analogue of a state count, for sweep statistics). *)
val check_count :
  ?quantify_written:bool -> ?symmetry:bool -> ?budget:Engine.Budget.t ->
  Domain.t -> src:Stmt.t -> tgt:Stmt.t -> bool * int

(** Budgeted three-valued {!check}: never raises. *)
val check_verdict :
  ?quantify_written:bool -> ?symmetry:bool -> ?budget:Engine.Budget.t ->
  Domain.t -> src:Stmt.t -> tgt:Stmt.t -> unit Engine.Verdict.t

(** A witness for a refuted refinement. *)
type counterexample = {
  initial : pair;  (** the failing initial configuration pair *)
  trace : Event.t list;  (** target labels leading to the failure *)
  failing : pair;  (** the pair at which matching breaks *)
  reason : string;
}

(** Extract a counterexample when refinement fails ([None] if it holds). *)
val find_counterexample :
  ?budget:Engine.Budget.t -> Domain.t -> pair list -> counterexample option

val pp_counterexample : Format.formatter -> counterexample -> unit
