(** Oracles (Def 3.2): LTSs over stripped transition labels representing a
    possible concurrent environment.

    {!Advanced} decides the ∀-oracle quantification internally; this module
    makes oracles concrete so Def 3.2/3.3 and the §3 counterexamples can be
    exercised directly.  Oracles built from the combinators satisfy
    progress and monotonicity by construction. *)

open Lang

type t =
  | Oracle : {
      init : 's;
      step : 's -> Event.stripped -> 's option;
    }
      -> t  (** an LTS with existential internal state *)

(** [tr ∈ Tr(Ω)]. *)
val allows : t -> Event.t list -> bool

(** The free oracle: allows everything. *)
val free : t

(** Constrain the values of atomic reads of a location ([undef] stays
    allowed — monotonicity). *)
val reads_satisfy : Loc.t -> (Value.t -> bool) -> t

(** An environment that never grants permissions. *)
val no_permission_gain : t

(** An environment that forces every release to drop all permissions. *)
val drop_all_on_release : t

(** Constrain [choose] resolutions. *)
val chooses_satisfy : (Value.t -> bool) -> t

(** Intersection (product LTS). *)
val both : t -> t -> t

(** The behaviors whose traces the oracle allows (Def 3.3's restriction of
    behavior sets).  [budget] is charged as in {!Behavior.enumerate}. *)
val allowed_behaviors :
  ?budget:Engine.Budget.t -> ?tables:Config.tables -> Domain.t -> t ->
  fuel:int -> Config.t -> Behavior.Set.t
