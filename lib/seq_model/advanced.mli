(** Advanced behavioral refinement (§3): refinement up to commitment sets
    (Fig 2) quantified over all oracles (Def 3.2/3.3), decided by the
    simulation of Fig 6 over the finite domain. *)

open Lang

(** Can the configuration reach ⊥ without any acquire event, under every
    oracle (environment choices universally quantified)?  The late-UB
    escape of Fig 6: such a source matches every target behavior. *)
val can_fail_universally : ?budget:Engine.Budget.t -> Domain.t -> Config.t -> bool

(** Can the configuration, without acquires and under every oracle, extend
    its execution until its writes cover [need]?  (rule beh-partial;
    reaching ⊥ also wins, via beh-failure.) *)
val can_fulfill_universally :
  ?budget:Engine.Budget.t -> Domain.t -> need:Loc.Set.t -> Config.t -> bool

(** A simulation node: commitment set R plus the two configurations. *)
type pair = { commit : Loc.Set.t; tgt : Config.t; src : Config.t }

(** The set-based reference checker (no hash-consing, no transition or
    suffix-game memoization beyond the per-check [can_fail] memo the
    checker always had).  Same game as the default entry points, so
    verdicts {e and} explored node counts must agree — enforced by
    test/test_diffcore.ml. *)
module Slow : sig
  val check_pairs : ?budget:Engine.Budget.t -> Domain.t -> pair list -> bool

  val check_pairs_count :
    ?budget:Engine.Budget.t -> Domain.t -> pair list -> bool * int
end

(** Decide refinement from a set of initial pairs.  [budget] (default
    unlimited, a no-op) is charged one state per explored simulation node
    and polled along the fixpoint and inside the ∀-oracle suffix games; on
    exhaustion {!Engine.Budget.Exhausted} escapes — use the [_verdict]
    forms to get [Unknown] instead.

    Runs the hash-consed, memoized fast path when the domain and roots
    pack (falling back to {!Slow} otherwise); verdict and node count are
    identical either way. *)
val check_pairs : ?budget:Engine.Budget.t -> Domain.t -> pair list -> bool

(** Like {!check_pairs}, also reporting the number of simulation nodes
    explored. *)
val check_pairs_count :
  ?budget:Engine.Budget.t -> Domain.t -> pair list -> bool * int

(** Budgeted three-valued {!check_pairs}: never raises; budget exhaustion
    and trapped exceptions are reported as [Unknown]. *)
val check_pairs_verdict :
  ?budget:Engine.Budget.t -> Domain.t -> pair list -> unit Engine.Verdict.t

(** [check d ~src ~tgt] decides [σ_tgt ⊑w σ_src] (Def 3.3) over the finite
    domain.  Implies nothing about termination; by Prop 3.4 it is implied
    by {!Refine.check}.  @raise Config.Mixed_access on mixed-mode use of a
    location.
    @raise Engine.Budget.Exhausted when [budget] runs out. *)
val check :
  ?quantify_written:bool -> ?symmetry:bool -> ?budget:Engine.Budget.t ->
  Domain.t -> src:Stmt.t -> tgt:Stmt.t -> bool

(** Like {!check}, also reporting the number of simulation nodes explored
    (for sweep statistics).  [symmetry] (default off) explores one initial
    environment per location-renaming orbit — verdict preserved, node
    counts reduced. *)
val check_count :
  ?quantify_written:bool -> ?symmetry:bool -> ?budget:Engine.Budget.t ->
  Domain.t -> src:Stmt.t -> tgt:Stmt.t -> bool * int

(** Budgeted three-valued {!check}: never raises. *)
val check_verdict :
  ?quantify_written:bool -> ?symmetry:bool -> ?budget:Engine.Budget.t ->
  Domain.t -> src:Stmt.t -> tgt:Stmt.t -> unit Engine.Verdict.t
