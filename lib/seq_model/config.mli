(** SEQ configurations ⟨σ, P, F, M⟩ and the transitions of Fig 1. *)

open Lang

type t = {
  prog : Prog.state;
  perm : Loc.Set.t;  (** P — non-atomic locations we may safely access *)
  written : Loc.Set.t;  (** F — written since the last release *)
  mem : Value.t Loc.Map.t;  (** M — values of the non-atomic locations *)
}

val make :
  ?perm:Loc.Set.t -> ?written:Loc.Set.t -> ?mem:Value.t Loc.Map.t ->
  Prog.state -> t

val compare : t -> t -> int
val equal : t -> t -> bool

(** Memory lookup; absent locations read as 0 (the PS_na initialisation
    value). *)
val read_mem : t -> Loc.t -> Value.t

type next =
  | Cont of t
  | Bot  (** the program state became ⊥ (UB) *)

(** A SEQ move: emitted trace labels (empty for silent/non-atomic steps,
    two for an RMW or acq-rel fence) and the successor. *)
type move = Event.t list * next

type status =
  | Running
  | Term of Value.t  (** σ = return(v) *)

val status : t -> status

exception Mixed_access of Loc.t

(** Enforce the SEQ well-formedness precondition: no location is accessed
    both atomically and non-atomically (§2, footnote 3). *)
val check_no_mixing : Stmt.t list -> unit

(** Acquire effect: gain permissions with environment-provided values. *)
val apply_acquire : t -> post:Loc.Set.t -> vnew:Value.t Loc.Map.t -> t

(** Release effect: drop permissions, reset the written set. *)
val apply_release : t -> post:Loc.Set.t -> t

(** The released memory annotation V = M|P over the domain. *)
val released_mem : Domain.t -> t -> Value.t Loc.Map.t

(** All SEQ moves of a configuration (Fig 1), enumerating environment
    choices over the domain; terminal configurations have none. *)
val moves : Domain.t -> t -> move list

(** Per-domain cached environment-choice tables (wrapping
    {!Lang.Packed}).  One [tables] value belongs to one domain and one
    check — never share across domains or concurrent workers. *)
type tables = { packed : Packed.t }

val make_tables : Domain.t -> tables option
(** [None] when the domain's non-atomic footprint exceeds
    {!Lang.Packed.max_locs} — callers then stay on the uncached path. *)

val moves_t : tables -> Domain.t -> t -> move list
(** [moves_t tb d cfg = moves d cfg] — same moves, same order — with the
    acquire/release choice lists served from [tb]'s caches.  Falls back
    to {!moves} if [cfg] lies outside the packed universe. *)

(** Advancement through the unique unlabeled (silent and non-atomic) steps
    up to the next labeled event. *)
type line_end =
  | L_term of Value.t * t
  | L_bot  (** the line reaches ⊥ *)
  | L_diverge  (** an unlabeled cycle: a silent infinite loop *)
  | L_label of t  (** the next step emits a label *)

type line = {
  line_end : line_end;
  written_max : Loc.Set.t;
      (** maximal written set along the line (F grows monotonically on
          unlabeled steps) *)
}

val line : t -> line

val pp : Format.formatter -> t -> unit
