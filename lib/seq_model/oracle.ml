(** Oracles (Def 3.2): LTSs over stripped transition labels representing a
    possible concurrent environment.

    The advanced refinement checker ({!Advanced}) realizes the "for every
    oracle" quantification internally as a universal game, so oracles are
    not needed to {e decide} refinement; this module makes them concrete so
    that the definitions and the §3 counterexamples can be exercised
    directly in tests: one can build an oracle, check [tr ∈ Tr(Ω)], and
    exhibit the environment that defeats an unsound transformation.

    Oracles built by the combinators below satisfy the paper's two
    conditions by construction:
    - {e progress}: every label shape is enabled for some instantiation
      (the predicates only constrain, never empty, the allowed choices on
      environment-controlled components);
    - {e monotonicity}: if [e ⊑ e'] and [e] is allowed, so is [e']
      (predicates that hold on a value hold on [undef], checked by using
      [Value.le]-closed predicates). *)

open Lang

(** An oracle with existential internal state. *)
type t =
  | Oracle : {
      init : 's;
      step : 's -> Event.stripped -> 's option;
    }
      -> t

let step_trace (Oracle o) (tr : Event.t list) : bool =
  let rec go st = function
    | [] -> true
    | e :: rest ->
      (match o.step st (Event.strip e) with
       | Some st' -> go st' rest
       | None -> false)
  in
  go o.init tr

(** [tr ∈ Tr(Ω)]. *)
let allows = step_trace

(* ---- combinators ---- *)

(** The free oracle: allows everything (the "most permissive"
    environment). *)
let free : t = Oracle { init = (); step = (fun () _ -> Some ()) }

(** Constrain the values returned by relaxed/acquire reads of location [x]
    to satisfy [pred].  (Monotonicity imposes nothing here: the label order
    [⊑] of Def 2.3 relates {e write} values to [undef], but read labels
    only reflexively — an environment may well never offer [undef].) *)
let reads_satisfy (x : Loc.t) (pred : Value.t -> bool) : t =
  let ok v = pred v in
  Oracle
    {
      init = ();
      step =
        (fun () e ->
          match e with
          | Event.S_rlx_read (y, v) when Loc.equal x y ->
            if ok v then Some () else None
          | Event.S_acq (Event.Acq_read (y, v), _, _, _) when Loc.equal x y ->
            if ok v then Some () else None
          | _ -> Some ());
    }

(** An environment that never grants permissions (acquires gain nothing). *)
let no_permission_gain : t =
  Oracle
    {
      init = ();
      step =
        (fun () e ->
          match e with
          | Event.S_acq (_, pre, post, _) ->
            if Loc.Set.equal pre post then Some () else None
          | _ -> Some ());
    }

(** An environment that forces every release to drop all permissions. *)
let drop_all_on_release : t =
  Oracle
    {
      init = ();
      step =
        (fun () e ->
          match e with
          | Event.S_rel (_, _, post) ->
            if Loc.Set.is_empty post then Some () else None
          | _ -> Some ());
    }

(** Constrain [choose] resolutions to [pred]. *)
let chooses_satisfy (pred : Value.t -> bool) : t =
  Oracle
    {
      init = ();
      step =
        (fun () e ->
          match e with
          | Event.S_choose v -> if pred v then Some () else None
          | _ -> Some ());
    }

(** Intersection of two oracles (product LTS). *)
let both (Oracle a) (Oracle b) : t =
  Oracle
    {
      init = (a.init, b.init);
      step =
        (fun (sa, sb) e ->
          match a.step sa e, b.step sb e with
          | Some sa', Some sb' -> Some (sa', sb')
          | _, _ -> None);
    }

(** Behaviors of a configuration whose traces the oracle allows —
    Def 3.3's restriction of the behavior sets. *)
let allowed_behaviors ?budget ?tables (d : Domain.t) (om : t) ~fuel
    (cfg : Config.t) : Behavior.Set.t =
  Behavior.Set.filter
    (fun (tr, _) -> allows om tr)
    (Behavior.enumerate ?budget ?tables d ~fuel cfg)
