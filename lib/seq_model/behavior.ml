(** SEQ behaviors (Def 2.1), the [⊑] relation on behaviors (Def 2.3(3)),
    and bounded-complete behavior enumeration.

    A behavior is ⟨tr, r⟩ with [r ∈ {trm(v,F,M), prt(F), ⊥}].  Enumeration
    is inductive exactly as in Def 2.1: every configuration contributes its
    ⟨ε, r⟩ behavior (with [r = prt(F)] when still running), and every move
    prepends its labels.  [fuel] bounds the number of steps; on the finite
    domain this enumerates the complete behavior set of executions up to
    that length. *)

open Lang

type result =
  | Trm of Value.t * Loc.Set.t * Value.t Loc.Map.t
  | Prt of Loc.Set.t
  | Bot

type t = Event.t list * result

let compare_result r1 r2 =
  match r1, r2 with
  | Trm (v1, f1, m1), Trm (v2, f2, m2) ->
    let c = Value.compare v1 v2 in
    if c <> 0 then c
    else
      let c = Loc.Set.compare f1 f2 in
      if c <> 0 then c else Loc.Map.compare Value.compare m1 m2
  | Trm _, _ -> -1
  | _, Trm _ -> 1
  | Prt f1, Prt f2 -> Loc.Set.compare f1 f2
  | Prt _, _ -> -1
  | _, Prt _ -> 1
  | Bot, Bot -> 0

let compare (tr1, r1) (tr2, r2) =
  let c = List.compare Event.compare tr1 tr2 in
  if c <> 0 then c else compare_result r1 r2

module Set = Set.Make (struct
  type nonrec t = t
  let compare = compare
end)

(* Memory ⊑: pointwise over the domain's non-atomic locations (absent
   entries read as 0 on both sides). *)
let mem_le (d : Domain.t) m1 m2 =
  List.for_all
    (fun x ->
      Value.le
        (Loc.Map.find_default ~default:Value.zero x m1)
        (Loc.Map.find_default ~default:Value.zero x m2))
    d.Domain.na_locs

(** ⟨tr_tgt, r_tgt⟩ ⊑ ⟨tr_src, r_src⟩ (Def 2.3(3)).  The ⊥-rule matches a
    source UB behavior against any target behavior extending a ⊑-prefix. *)
let le (d : Domain.t) ((trtgt, rtgt) : t) ((trsrc, rsrc) : t) : bool =
  match rsrc with
  | Bot ->
    (* ⟨tr_tgt·tr, r⟩ ⊑ ⟨tr_src, ⊥⟩ when tr_tgt ⊑ tr_src *)
    let rec prefix_le trt trs =
      match trt, trs with
      | _, [] -> true
      | [], _ :: _ -> false
      | et :: trt', es :: trs' -> Event.le et es && prefix_le trt' trs'
    in
    ignore rtgt;
    prefix_le trtgt trsrc
  | Trm (vsrc, fsrc, msrc) ->
    (match rtgt with
     | Trm (vtgt, ftgt, mtgt) ->
       Event.trace_le trtgt trsrc && Value.le vtgt vsrc
       && Loc.Set.subset ftgt fsrc && mem_le d mtgt msrc
     | Prt _ | Bot -> false)
  | Prt fsrc ->
    (match rtgt with
     | Prt ftgt -> Event.trace_le trtgt trsrc && Loc.Set.subset ftgt fsrc
     | Trm _ | Bot -> false)

(* The inductive enumeration of Def 2.1, literally: every configuration
   contributes its ⟨ε, r⟩ behavior, every move prepends its labels to the
   behaviors of its successor at one less fuel. *)
let enumerate_ref ~budget (moves : Config.t -> Config.move list) ~fuel
    (cfg : Config.t) : Set.t =
  let rec go fuel cfg acc =
    Engine.Budget.spend_state budget;
    let base =
      match Config.status cfg with
      | Config.Term v -> ([], Trm (v, cfg.Config.written, cfg.Config.mem))
      | Config.Running -> ([], Prt cfg.Config.written)
    in
    let acc = Set.add base acc in
    if fuel = 0 then acc
    else
      List.fold_left
        (fun acc (evs, nxt) ->
          let subs =
            match nxt with
            | Config.Bot -> Set.singleton ([], Bot)
            | Config.Cont cfg' -> go (fuel - 1) cfg' Set.empty
          in
          Set.fold (fun (tr, r) acc -> Set.add (evs @ tr, r) acc) subs acc)
        acc (moves cfg)
  in
  go fuel cfg Set.empty

(* The same induction with the recursion memoized on (fuel, interned
   configuration): the behavior set of a subproblem is a pure function
   of the configuration's value and the remaining fuel, so diamonds in
   the transition graph — different interleavings of environment choices
   reaching the same state at the same depth — are computed once instead
   of once per path.  Behaviors themselves are hash-consed to dense ids
   (a trace is a move applied to a shorter interned trace, a result is a
   packed triple), so the per-edge prepend folds are integer-set
   operations instead of deep trace comparisons; the id sets are
   materialized into one ordinary {!Set.t} at the very end.  [budget] is
   charged per distinct subproblem plus per behavior propagated along
   each edge — proportional to the set insertions actually performed,
   where the reference charges per path but folds over full behavior
   sets for free; test/test_diffcore.ml locks set equality against
   {!enumerate_ref}. *)
module Int_set = Stdlib.Set.Make (Int)

let enumerate_core ~budget (core : Core.t) ~fuel (cfg : Config.t) : Set.t =
  let pk = Core.packed core in
  (* results: (kind, written mask, mem id, value id) -> dense id *)
  let result_ids : (int * int * int * int, int) Hashtbl.t =
    Hashtbl.create 64
  in
  let result_rev : (int, result) Hashtbl.t = Hashtbl.create 64 in
  let result_of key r =
    match Hashtbl.find_opt result_ids key with
    | Some rid -> rid
    | None ->
      let rid = Hashtbl.length result_ids in
      Hashtbl.add result_ids key rid;
      Hashtbl.add result_rev rid (r ());
      rid
  in
  let rid_bot = result_of (0, 0, 0, 0) (fun () -> Bot) in
  (* traces: id 0 is the empty trace; every other trace is the label
     list of move (cfg id, move index) prepended to a shorter trace *)
  let trace_ids : (int * int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let trace_rev : (int, Event.t list * int) Hashtbl.t = Hashtbl.create 64 in
  let trace_count = ref 1 in
  let prepend ~src ~k evs tid =
    let key = (src, k, tid) in
    match Hashtbl.find_opt trace_ids key with
    | Some tid' -> tid'
    | None ->
      let tid' = !trace_count in
      incr trace_count;
      Hashtbl.add trace_ids key tid';
      Hashtbl.add trace_rev tid' (evs, tid);
      tid'
  in
  (* behaviors: (trace id, result id) -> dense id *)
  let behavior_ids : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let behavior_rev : (int, int * int) Hashtbl.t = Hashtbl.create 64 in
  let behavior_of tid rid =
    let key = (tid, rid) in
    match Hashtbl.find_opt behavior_ids key with
    | Some bid -> bid
    | None ->
      let bid = Hashtbl.length behavior_ids in
      Hashtbl.add behavior_ids key bid;
      Hashtbl.add behavior_rev bid key;
      bid
  in
  let bid_bot = behavior_of 0 rid_bot in
  let memo : (int * int, Int_set.t) Hashtbl.t = Hashtbl.create 64 in
  let rec go fuel id =
    match Hashtbl.find_opt memo (fuel, id) with
    | Some s -> s
    | None ->
      Engine.Budget.spend_state budget;
      let c = Core.cfg core id in
      let base_rid =
        match Config.status c with
        | Config.Term v ->
          result_of
            (2, Core.written_mask core id, Core.mem_id core id,
             Packed.value_id pk v)
            (fun () -> Trm (v, c.Config.written, c.Config.mem))
        | Config.Running ->
          result_of
            (1, Core.written_mask core id, 0, 0)
            (fun () -> Prt c.Config.written)
      in
      let acc = Int_set.singleton (behavior_of 0 base_rid) in
      let result =
        if fuel = 0 then acc
        else begin
          let nexts = Core.moves_next core id in
          let k = ref (-1) in
          List.fold_left
            (fun acc (evs, _) ->
              incr k;
              let k = !k in
              let subs =
                if nexts.(k) < 0 then Int_set.singleton bid_bot
                else go (fuel - 1) nexts.(k)
              in
              (* propagating a sub-behavior along an edge is the unit of
                 work here (set insertions), so that is what the budget
                 charges *)
              Engine.Budget.spend_state ~n:(Int_set.cardinal subs) budget;
              if evs = [] then Int_set.union subs acc
              else
                Int_set.fold
                  (fun bid acc ->
                    let tid, rid = Hashtbl.find behavior_rev bid in
                    Int_set.add
                      (behavior_of (prepend ~src:id ~k evs tid) rid)
                      acc)
                  subs acc)
            acc
            (Core.moves_id core id)
        end
      in
      Hashtbl.replace memo (fuel, id) result;
      result
  in
  let top = go fuel (Core.intern core cfg) in
  (* materialize: each distinct trace is rebuilt once *)
  let trace_mat : (int, Event.t list) Hashtbl.t = Hashtbl.create 64 in
  let rec mat_trace tid =
    if tid = 0 then []
    else
      match Hashtbl.find_opt trace_mat tid with
      | Some l -> l
      | None ->
        let evs, parent = Hashtbl.find trace_rev tid in
        let l = evs @ mat_trace parent in
        Hashtbl.add trace_mat tid l;
        l
  in
  Int_set.fold
    (fun bid acc ->
      let tid, rid = Hashtbl.find behavior_rev bid in
      Set.add (mat_trace tid, Hashtbl.find result_rev rid) acc)
    top Set.empty

(** All behaviors of [cfg] generated by executions of at most [fuel]
    moves.  With [tables] the enumeration is memoized over hash-consed
    configurations (identical sets; the budget then charges subproblems
    and per-edge behavior propagations rather than paths — proportional
    to the set insertions actually performed); without, the reference
    recursion runs as-is. *)
let enumerate ?(budget = Engine.Budget.unlimited) ?tables (d : Domain.t)
    ~fuel (cfg : Config.t) : Set.t =
  match tables with
  | Some tb -> (
    match enumerate_core ~budget (Core.of_tables tb) ~fuel cfg with
    | s -> s
    | exception Packed.Unpackable ->
      enumerate_ref ~budget (Config.moves d) ~fuel cfg)
  | None -> enumerate_ref ~budget (Config.moves d) ~fuel cfg

(** Enumeration-based simple behavioral refinement at a given pair of
    initial configurations: every target behavior must be ⊑-matched by a
    source behavior.  The source gets extra fuel so that matching behaviors
    that require more source steps (e.g. its unlabeled prefix) are not cut
    off by the bound. *)
let refines_at ?budget ?tables (d : Domain.t) ~fuel ~(src : Config.t)
    ~(tgt : Config.t) : (unit, t) Stdlib.result =
  let src_behs = enumerate ?budget ?tables d ~fuel:(2 * fuel) src in
  let tgt_behs = enumerate ?budget ?tables d ~fuel tgt in
  let matched bt = Set.exists (fun bs -> le d bt bs) src_behs in
  match Set.to_seq tgt_behs |> Seq.find (fun bt -> not (matched bt)) with
  | None -> Ok ()
  | Some bt -> Error bt

let pp_result ppf = function
  | Trm (v, f, m) ->
    Fmt.pf ppf "trm(%a,%a,%a)" Value.pp v Loc.Set.pp f (Loc.Map.pp Value.pp) m
  | Prt f -> Fmt.pf ppf "prt(%a)" Loc.Set.pp f
  | Bot -> Fmt.string ppf "⊥"

let pp ppf (tr, r) =
  Fmt.pf ppf "⟨%a, %a⟩" Event.pp_trace tr pp_result r
