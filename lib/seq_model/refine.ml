(** Simple behavioral refinement in SEQ (Def 2.4), decided by a simulation
    game.

    Because WHILE programs are deterministic (Def 6.1), the unlabeled
    fragment of any SEQ execution is a straight line ({!Config.line}), and
    the environment's choices are recorded inside the trace labels
    (read values, gained/dropped permissions, fresh memory values).  Hence
    on the finite domain, step-wise label matching — a simulation — decides
    trace-set inclusion exactly:

    - every instantiated labeled move of the target must be answered by the
      source emitting a ⊑-greater label (the environment parts of which are
      copied from the target's label),
    - at every point the target's partial behaviors ⟨ε, prt(F)⟩ must be
      matched, which amounts to [F_tgt ⊆ F_src] along the unlabeled lines,
    - a source that reaches ⊥ by unlabeled steps matches everything
      (⟨tr·_, _⟩ ⊑ ⟨tr, ⊥⟩),
    - termination must be matched with [v ⊑ v'], [F ⊆ F'], [M ⊑ M'].

    The set of reachable pairs is explored, then a greatest fixpoint prunes
    pairs whose obligations fail — sound for the safety-style (partial,
    non-termination-preserving) refinement of the paper. *)

open Lang

type pair = { tgt : Config.t; src : Config.t }

let compare_pair a b =
  let c = Config.compare a.tgt b.tgt in
  if c <> 0 then c else Config.compare a.src b.src

module Pair_map = Map.Make (struct
  type t = pair
  let compare = compare_pair
end)

let mem_le (d : Domain.t) m1 m2 =
  List.for_all
    (fun x ->
      Value.le
        (Loc.Map.find_default ~default:Value.zero x m1)
        (Loc.Map.find_default ~default:Value.zero x m2))
    d.Domain.na_locs

(* The game logic below is written once against this vtable and
   instantiated twice: [slow_ops] recomputes lines and move lists at
   every use (the reference implementation, kept under {!Slow}), the
   fast path serves both from a {!Core} context's per-configuration
   memos.  Both must return identical values — the games may not drift. *)
type ops = {
  line : Config.t -> Config.line;
  moves : Config.t -> Config.move list;
}

let slow_ops (d : Domain.t) : ops =
  { line = Config.line; moves = Config.moves d }

(* The source's position while answering the labels of one target move.
   RMWs and acquire-release fences emit two labels atomically; the pending
   constructors hold the forced second half. *)
type src_point =
  | Plain of Config.t
  | Pend_rel of Event.rel_kind * Config.t  (* release half of an RMW due *)
  | Pend_acq of Event.acq_kind * Config.t
      (* acquire half of an acq-rel/SC fence due *)

(* Outcome of the source answering one target move. *)
type answer =
  | Const of bool
  | Dep of pair  (* holds iff this pair holds *)

(* Answer one target label from a source configuration that sits at a
   labeled step (caller has advanced the line).  Returns the successor
   point, [`Bot] if the source emits the label and then moves to ⊥ (which
   matches every continuation), or [`No] on mismatch. *)
let respond1 (scfg : Config.t) (ev : Event.t) :
    [ `Ok of src_point | `Bot | `No ] =
  let open Event in
  match ev, Prog.step scfg.Config.prog with
  | Choose v, Prog.Choice f -> `Ok (Plain { scfg with prog = f v })
  | Rlx_read (x, v), Prog.Do_read (Mode.Rrlx, y, f) when Loc.equal x y ->
    `Ok (Plain { scfg with prog = f v })
  | Rlx_write (x, vt), Prog.Do_write (Mode.Wrlx, y, vs, p) when Loc.equal x y ->
    if Value.le vt vs then `Ok (Plain { scfg with prog = p }) else `No
  | Out vt, Prog.Do_out (vs, p) ->
    if Value.le vt vs then `Ok (Plain { scfg with prog = p }) else `No
  | Acq a, shape ->
    (* label ⊑ requires equal P, P', V and F_tgt ⊆ F_src *)
    if
      not
        (Loc.Set.equal a.apre scfg.Config.perm
         && Loc.Set.subset a.awritten scfg.Config.written)
    then `No
    else
      let continue prog' =
        `Ok
          (Plain
             (Config.apply_acquire { scfg with prog = prog' } ~post:a.apost
                ~vnew:a.agained))
      in
      (match a.akind, shape with
       | Acq_read (x, v), Prog.Do_read (Mode.Racq, y, f) when Loc.equal x y ->
         continue (f v)
       | Acq_fence, Prog.Do_fence (Mode.Facq, p) -> continue p
       | Acq_update (x, v), Prog.Do_update (y, f) when Loc.equal x y ->
         (match f v with
          | Prog.Upd_fault -> `Bot
          | Prog.Upd_read_only p -> continue p
          | Prog.Upd_write (v_new, p) ->
            let cfg' =
              Config.apply_acquire { scfg with prog = p } ~post:a.apost
                ~vnew:a.agained
            in
            `Ok (Pend_rel (Rel_update (x, v_new), cfg')))
       | _, _ -> `No)
  | Rel r, shape ->
    if
      not
        (Loc.Set.equal r.rpre scfg.Config.perm
         && Loc.Set.subset r.rwritten scfg.Config.written)
    then `No
    else
      (* V_tgt ⊑ V_src pointwise on the recorded (pre-release) permission
         set; both sides share P so the domains coincide. *)
      let src_released =
        Loc.Set.fold
          (fun y acc -> Loc.Map.add y (Config.read_mem scfg y) acc)
          scfg.Config.perm Loc.Map.empty
      in
      let mem_cond =
        Loc.Map.for_all
          (fun y vt ->
            match Loc.Map.find_opt y src_released with
            | Some vs -> Value.le vt vs
            | None -> false)
          r.rreleased
      in
      if not mem_cond then `No
      else
        let continue prog' =
          `Ok (Plain (Config.apply_release { scfg with prog = prog' } ~post:r.rpost))
        in
        (match r.rkind, shape with
         | Rel_write (x, vt), Prog.Do_write (Mode.Wrel, y, vs, p)
           when Loc.equal x y ->
           if Value.le vt vs then continue p else `No
         | Rel_fence, Prog.Do_fence (Mode.Frel, p) -> continue p
         | Rel_fence, Prog.Do_fence (Mode.Facqrel, p) ->
           (* acq-rel fence: release half now, acquire half pending *)
           `Ok
             (Pend_acq
                (Event.Acq_fence,
                 Config.apply_release { scfg with prog = p } ~post:r.rpost))
         | Rel_fence_sc, Prog.Do_fence (Mode.Fsc, p) ->
           `Ok
             (Pend_acq
                (Event.Acq_fence_sc,
                 Config.apply_release { scfg with prog = p } ~post:r.rpost))
         | _, _ -> `No)
  | (Choose _ | Rlx_read _ | Rlx_write _ | Out _), _ -> `No

(* Answer a pending second half. *)
let respond_pending (point : src_point) (ev : Event.t) :
    [ `Ok of src_point | `Bot | `No ] =
  let open Event in
  match point, ev with
  | Pend_rel (skind, scfg), Rel r ->
    if
      not
        (Loc.Set.equal r.rpre scfg.Config.perm
         && Loc.Set.subset r.rwritten scfg.Config.written)
    then `No
    else
      let src_released =
        Loc.Set.fold
          (fun y acc -> Loc.Map.add y (Config.read_mem scfg y) acc)
          scfg.Config.perm Loc.Map.empty
      in
      let mem_cond =
        Loc.Map.for_all
          (fun y vt ->
            match Loc.Map.find_opt y src_released with
            | Some vs -> Value.le vt vs
            | None -> false)
          r.rreleased
      in
      let kind_ok =
        match r.rkind, skind with
        | Rel_update (x, vt), Rel_update (y, vs) -> Loc.equal x y && Value.le vt vs
        | _, _ -> false
      in
      if mem_cond && kind_ok then
        `Ok (Plain (Config.apply_release scfg ~post:r.rpost))
      else `No
  | Pend_acq (k, scfg), Acq a ->
    if
      not
        (Loc.Set.equal a.apre scfg.Config.perm
         && Loc.Set.subset a.awritten scfg.Config.written
         && Event.compare_kinds_a a.akind k = 0)
    then `No
    else `Ok (Plain (Config.apply_acquire scfg ~post:a.apost ~vnew:a.agained))
  | (Plain _ | Pend_rel _ | Pend_acq _), _ -> `No

(* Have the source answer the label list of one target move, advancing
   through its unlabeled line between moves. *)
let rec consume (ops : ops) (point : src_point) (evs : Event.t list)
    (next_t : Config.next) : answer =
  match evs with
  | [] ->
    (match point with
     | Pend_rel _ | Pend_acq _ ->
       (* the source owes a label the target will not produce *)
       Const false
     | Plain scfg ->
       (match next_t with
        | Config.Bot ->
          (* target ⊥ now: source must reach ⊥ by unlabeled steps *)
          let ln = ops.line scfg in
          Const (ln.Config.line_end = Config.L_bot)
        | Config.Cont tcfg' -> Dep { tgt = tcfg'; src = scfg }))
  | ev :: rest ->
    (match point with
     | Pend_rel _ | Pend_acq _ ->
       (match respond_pending point ev with
        | `Ok point' -> consume ops point' rest next_t
        | `Bot -> Const true
        | `No -> Const false)
     | Plain scfg ->
       let ln = ops.line scfg in
       (match ln.Config.line_end with
        | Config.L_bot -> Const true  (* ⟨matched-prefix, ⊥⟩ matches all *)
        | Config.L_label scfg' ->
          (match respond1 scfg' ev with
           | `Ok point' -> consume ops point' rest next_t
           | `Bot -> Const true
           | `No -> Const false)
        | Config.L_term _ | Config.L_diverge -> Const false))

(* Local obligations and dependencies of a pair. *)
type node = {
  local_ok : bool;
  deps : answer list;  (* one per instantiated target move *)
}

let analyze (ops : ops) (d : Domain.t) (p : pair) : node =
  let ln_t = ops.line p.tgt in
  let ln_s = ops.line p.src in
  if ln_s.Config.line_end = Config.L_bot then { local_ok = true; deps = [] }
  else if not (Loc.Set.subset ln_t.Config.written_max ln_s.Config.written_max)
  then { local_ok = false; deps = [] }
  else
    match ln_t.Config.line_end with
    | Config.L_bot -> { local_ok = false; deps = [] }
    | Config.L_diverge -> { local_ok = true; deps = [] }
    | Config.L_term (v, tcfg') ->
      (match ln_s.Config.line_end with
       | Config.L_term (v', scfg') ->
         let ok =
           Value.le v v'
           && Loc.Set.subset tcfg'.Config.written scfg'.Config.written
           && mem_le d tcfg'.Config.mem scfg'.Config.mem
         in
         { local_ok = ok; deps = [] }
       | Config.L_bot | Config.L_diverge | Config.L_label _ ->
         { local_ok = false; deps = [] })
    | Config.L_label tcfg' ->
      (match ln_s.Config.line_end with
       | Config.L_label scfg' ->
         let answers =
           List.map
             (fun (evs, next_t) -> consume ops (Plain scfg') evs next_t)
             (ops.moves tcfg')
         in
         { local_ok = true; deps = answers }
       | Config.L_bot | Config.L_term _ | Config.L_diverge ->
         { local_ok = false; deps = [] })

(* Explore the reachable pair graph, then prune to the greatest fixpoint.
   Shared by the boolean checks (which only need [alive]) and
   counterexample extraction (which also walks [nodes]).  [budget] is
   charged one state per explored pair and polled along both phases; with
   the default unlimited budget every call is a no-op and the result is
   identical to the unbudgeted checker. *)
let solve ?(budget = Engine.Budget.unlimited) (ops : ops) (d : Domain.t)
    (roots : pair list) : node Pair_map.t * bool Pair_map.t =
  (* Phase 1: explore the reachable pair graph. *)
  let nodes : node Pair_map.t ref = ref Pair_map.empty in
  let rec explore p =
    if not (Pair_map.mem p !nodes) then begin
      Engine.Budget.spend_state budget;
      (* insert a stub first to cut cycles *)
      nodes := Pair_map.add p { local_ok = true; deps = [] } !nodes;
      let node = analyze ops d p in
      nodes := Pair_map.add p node !nodes;
      List.iter
        (function Dep q -> explore q | Const _ -> ())
        node.deps
    end
  in
  List.iter explore roots;
  (* Phase 2: prune to the greatest fixpoint. *)
  let alive = ref (Pair_map.map (fun _ -> true) !nodes) in
  let changed = ref true in
  while !changed do
    changed := false;
    Pair_map.iter
      (fun p node ->
        Engine.Budget.check budget;
        if Pair_map.find p !alive then begin
          let ok =
            node.local_ok
            && List.for_all
                 (function
                   | Const b -> b
                   | Dep q -> Pair_map.find q !alive)
                 node.deps
          in
          if not ok then begin
            alive := Pair_map.add p false !alive;
            changed := true
          end
        end)
      !nodes
  done;
  (!nodes, !alive)

(** The set-based reference checker: recomputes every line and move list
    and runs the greatest fixpoint by repeated full passes.  Kept as the
    differential-testing oracle for the fast path below — same game,
    none of the caching layers. *)
module Slow = struct
  let check_pairs_count ?budget (d : Domain.t) (roots : pair list) :
      bool * int =
    let nodes, alive = solve ?budget (slow_ops d) d roots in
    ( List.for_all (fun p -> Pair_map.find p alive) roots,
      Pair_map.cardinal nodes )

  let check_pairs ?budget (d : Domain.t) (roots : pair list) : bool =
    fst (check_pairs_count ?budget d roots)
end

(* Fast path: configurations hash-consed to dense ids in a {!Core}
   context (which also memoizes lines and move lists), pairs interned by
   id pair, and the whole game threaded at the id level — a
   configuration is hashed once, when first discovered as a line or
   move successor, and every later reference is an array index.  The
   source's answer to one target move is a pure function of (source
   line-end id, target line-end id, move index), so answers are
   memoized and shared between every pair that reaches the same
   post-line frontier.  Phase 1 runs the identical DFS — same pair set,
   same order, same budget spend points — so the explored pair count
   matches the reference exactly.  Phase 2 computes the same greatest
   fixpoint by reverse-dependency propagation: a pair dies iff its
   local obligations fail or it depends, transitively, on a dead pair —
   O(pairs + deps) instead of repeated full passes. *)

(* An [answer] at the id level. *)
type fanswer = FConst of bool | FDep of int * int  (* tgt id, src id *)

let solve_fast ?(budget = Engine.Budget.unlimited) (core : Core.t)
    (d : Domain.t) (roots : pair list) : bool * int =
  (* Mirrors [consume]: walk the source through one target move's label
     list, at id granularity.  [next_t] is the interned continuation of
     the move (-1 for [Bot]). *)
  let rec consume_fast (point : src_point) (evs : Event.t list)
      (next_t : int) : fanswer =
    match evs with
    | [] ->
      (match point with
       | Pend_rel _ | Pend_acq _ -> FConst false
       | Plain scfg ->
         let sid = Core.intern core scfg in
         if next_t < 0 then
           let ln = Core.line_id core sid in
           FConst (ln.Config.line_end = Config.L_bot)
         else FDep (next_t, sid))
    | ev :: rest ->
      (match point with
       | Pend_rel _ | Pend_acq _ ->
         (match respond_pending point ev with
          | `Ok point' -> consume_fast point' rest next_t
          | `Bot -> FConst true
          | `No -> FConst false)
       | Plain scfg ->
         let sid = Core.intern core scfg in
         let ln = Core.line_id core sid in
         (match ln.Config.line_end with
          | Config.L_bot -> FConst true
          | Config.L_label scfg' ->
            (match respond1 scfg' ev with
             | `Ok point' -> consume_fast point' rest next_t
             | `Bot -> FConst true
             | `No -> FConst false)
          | Config.L_term _ | Config.L_diverge -> FConst false))
  in
  (* (source line-end id, target line-end id, move index) -> answer *)
  let answer_memo : (int * int * int, fanswer) Hashtbl.t =
    Hashtbl.create 64
  in
  (* [analyze] at the id level: local obligations plus one answer per
     instantiated target move. *)
  let analyze_fast (tid : int) (sid : int) : bool * fanswer list =
    let ln_t = Core.line_id core tid in
    let ln_s = Core.line_id core sid in
    if ln_s.Config.line_end = Config.L_bot then (true, [])
    else if
      (* written_max subset, as a packed-mask test *)
      Core.line_wmax_mask core tid land lnot (Core.line_wmax_mask core sid)
      <> 0
    then (false, [])
    else
      match ln_t.Config.line_end with
      | Config.L_bot -> (false, [])
      | Config.L_diverge -> (true, [])
      | Config.L_term (v, tcfg') ->
        (match ln_s.Config.line_end with
         | Config.L_term (v', scfg') ->
           ( Value.le v v'
             && Loc.Set.subset tcfg'.Config.written scfg'.Config.written
             && mem_le d tcfg'.Config.mem scfg'.Config.mem,
             [] )
         | Config.L_bot | Config.L_diverge | Config.L_label _ -> (false, []))
      | Config.L_label _ ->
        (match ln_s.Config.line_end with
         | Config.L_label _ ->
           let t'id = Core.line_next core tid in
           let s'id = Core.line_next core sid in
           let moves = Core.moves_id core t'id in
           let nexts = Core.moves_next core t'id in
           let answers =
             List.mapi
               (fun k (evs, _) ->
                 let key = (s'id, t'id, k) in
                 match Hashtbl.find_opt answer_memo key with
                 | Some a -> a
                 | None ->
                   let a =
                     consume_fast (Plain (Core.cfg core s'id)) evs nexts.(k)
                   in
                   Hashtbl.add answer_memo key a;
                   a)
               moves
           in
           (true, answers)
         | Config.L_bot | Config.L_term _ | Config.L_diverge -> (false, []))
  in
  let pair_ids : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let local_ok = ref (Bytes.make 64 '\001') in
  let deps = ref (Array.make 64 [||]) in
  let count = ref 0 in
  let ensure n =
    if n > Bytes.length !local_ok then begin
      let lo = Bytes.make (2 * Bytes.length !local_ok) '\001' in
      Bytes.blit !local_ok 0 lo 0 (Bytes.length !local_ok);
      local_ok := lo;
      let dp = Array.make (2 * Array.length !deps) [||] in
      Array.blit !deps 0 dp 0 (Array.length !deps);
      deps := dp
    end
  in
  let rec explore (tid : int) (sid : int) : int =
    let key = (tid, sid) in
    match Hashtbl.find_opt pair_ids key with
    | Some pid -> pid
    | None ->
      Engine.Budget.spend_state budget;
      let pid = !count in
      incr count;
      ensure !count;
      (* register before analyzing to cut cycles, like the stub above *)
      Hashtbl.add pair_ids key pid;
      let node_ok, node_deps = analyze_fast tid sid in
      let ok = ref node_ok in
      let dep_ids =
        List.filter_map
          (function
            | FConst true -> None
            | FConst false ->
              ok := false;
              None
            | FDep (t, s) -> Some (explore t s))
          node_deps
      in
      if not !ok then Bytes.set !local_ok pid '\000';
      !deps.(pid) <- Array.of_list dep_ids;
      pid
  in
  let root_ids =
    List.map
      (fun p -> explore (Core.intern core p.tgt) (Core.intern core p.src))
      roots
  in
  let n = !count in
  let rdeps = Array.make (max n 1) [] in
  for pid = 0 to n - 1 do
    Array.iter (fun q -> rdeps.(q) <- pid :: rdeps.(q)) !deps.(pid)
  done;
  let alive = Array.make (max n 1) true in
  let stack = ref [] in
  for pid = 0 to n - 1 do
    if Bytes.get !local_ok pid = '\000' then begin
      alive.(pid) <- false;
      stack := pid :: !stack
    end
  done;
  let rec drain () =
    match !stack with
    | [] -> ()
    | pid :: rest ->
      stack := rest;
      Engine.Budget.check budget;
      List.iter
        (fun r ->
          if alive.(r) then begin
            alive.(r) <- false;
            stack := r :: !stack
          end)
        rdeps.(pid);
      drain ()
  in
  drain ();
  (List.for_all (fun pid -> alive.(pid)) root_ids, n)

(** Decide simple behavioral refinement from a set of initial configuration
    pairs (target, source) that share P, F, M, also reporting the number of
    simulation pairs explored.  Runs the fast hash-consed path when the
    domain and the roots pack; falls back to {!Slow} otherwise. *)
let check_pairs_count ?budget (d : Domain.t) (roots : pair list) : bool * int =
  match Core.create d with
  | None -> Slow.check_pairs_count ?budget d roots
  | Some core ->
    (* Validate the roots up front: packability is closed under
       reachability (permissions shrink on release, grow within the
       domain on acquire; written sets stay under the permissions), so a
       packable root set means the whole run packs. *)
    (match
       List.iter
         (fun p ->
           ignore (Core.intern core p.tgt);
           ignore (Core.intern core p.src))
         roots
     with
     | () -> solve_fast ?budget core d roots
     | exception Packed.Unpackable -> Slow.check_pairs_count ?budget d roots)

let check_pairs ?budget (d : Domain.t) (roots : pair list) : bool =
  fst (check_pairs_count ?budget d roots)

(** Budgeted three-valued form of {!check_pairs}: budget exhaustion and
    trapped exceptions become [Unknown] instead of escaping. *)
let check_pairs_verdict ?budget (d : Domain.t) (roots : pair list) :
    unit Engine.Verdict.t =
  Engine.Verdict.run (fun () ->
      Engine.Verdict.of_bool (check_pairs ?budget d roots))

(** Initial configuration pairs for Def 2.4's "for every P, F, M".
    [quantify_written] additionally ranges the initial F over all subsets
    (all refinement conditions are monotone in a common initial F, so
    F = ∅ is the strongest instance; the flag exists for assurance
    testing). *)
let initial_pairs ?(quantify_written = false) (d : Domain.t)
    ~(src : Prog.state) ~(tgt : Prog.state) : pair list =
  let perms = Domain.subsets d.Domain.na_locs in
  let writtens =
    if quantify_written then Domain.subsets d.Domain.na_locs
    else [ Loc.Set.empty ]
  in
  let mems = Domain.memories d in
  List.concat_map
    (fun perm ->
      List.concat_map
        (fun written ->
          List.map
            (fun mem ->
              {
                tgt = Config.make ~perm ~written ~mem tgt;
                src = Config.make ~perm ~written ~mem src;
              })
            mems)
        writtens)
    perms

(* Symmetry reduction: keep one initial environment per orbit of the
   location renamings fixing both programs.  Verdict-preserving,
   count-changing — opt-in only (goldens pin unreduced pair counts). *)
let filter_symmetry ~symmetry (d : Domain.t) ~(stmts : Stmt.t list)
    (roots : pair list) : pair list =
  if not symmetry then roots
  else
    match Core.Symmetry.automorphisms d stmts with
    | [] -> roots
    | autos ->
      List.filter
        (fun p ->
          Core.Symmetry.minimal_env autos ~perm:p.tgt.Config.perm
            ~written:p.tgt.Config.written ~mem:p.tgt.Config.mem)
        roots

(** [check d ~src ~tgt] decides [σ_tgt ⊑ σ_src] (Def 2.4) over the finite
    domain: SEQ simple behavioral refinement for every initial permission
    set, written set, and memory.  [symmetry] (default off) explores one
    initial environment per location-renaming orbit. *)
let check ?quantify_written ?(symmetry = false) ?budget (d : Domain.t)
    ~(src : Stmt.t) ~(tgt : Stmt.t) : bool =
  Config.check_no_mixing [ src; tgt ];
  let roots =
    initial_pairs ?quantify_written d ~src:(Prog.init src) ~tgt:(Prog.init tgt)
    |> filter_symmetry ~symmetry d ~stmts:[ src; tgt ]
  in
  check_pairs ?budget d roots

(** Like {!check}, also reporting the number of simulation pairs explored
    (the SEQ analogue of a state count, for sweep statistics). *)
let check_count ?quantify_written ?(symmetry = false) ?budget (d : Domain.t)
    ~(src : Stmt.t) ~(tgt : Stmt.t) : bool * int =
  Config.check_no_mixing [ src; tgt ];
  let roots =
    initial_pairs ?quantify_written d ~src:(Prog.init src) ~tgt:(Prog.init tgt)
    |> filter_symmetry ~symmetry d ~stmts:[ src; tgt ]
  in
  check_pairs_count ?budget d roots

(** Budgeted three-valued form of {!check}: [Unknown] on budget
    exhaustion, [Mixed_access], or any other trapped exception. *)
let check_verdict ?quantify_written ?symmetry ?budget (d : Domain.t)
    ~(src : Stmt.t) ~(tgt : Stmt.t) : unit Engine.Verdict.t =
  Engine.Verdict.run (fun () ->
      Engine.Verdict.of_bool
        (check ?quantify_written ?symmetry ?budget d ~src ~tgt))

(* ------------------------------------------------------------------ *)
(* Counterexample extraction                                            *)
(* ------------------------------------------------------------------ *)

type counterexample = {
  initial : pair;  (** the failing initial configuration pair *)
  trace : Event.t list;  (** target labels leading to the failure *)
  failing : pair;  (** the pair at which matching breaks *)
  reason : string;
}

let describe_local (d : Domain.t) (p : pair) : string =
  let ln_t = Config.line p.tgt in
  let ln_s = Config.line p.src in
  if not (Loc.Set.subset ln_t.Config.written_max ln_s.Config.written_max) then
    Fmt.str
      "partial behavior mismatch: target writes %a but the source can only \
       reach written set %a"
      Loc.Set.pp ln_t.Config.written_max Loc.Set.pp ln_s.Config.written_max
  else
    match ln_t.Config.line_end, ln_s.Config.line_end with
    | Config.L_bot, _ -> "the target reaches ⊥ but the source cannot"
    | Config.L_term (v, tcfg), Config.L_term (v', scfg) ->
      Fmt.str
        "termination mismatch: target trm(%a,%a,%a) vs source trm(%a,%a,%a)"
        Value.pp v Loc.Set.pp tcfg.Config.written (Loc.Map.pp Value.pp)
        tcfg.Config.mem Value.pp v' Loc.Set.pp scfg.Config.written
        (Loc.Map.pp Value.pp) scfg.Config.mem
    | Config.L_term _, _ -> "the target terminates but the source cannot"
    | Config.L_label _, _ ->
      "the target performs a labeled action the source cannot answer"
    | Config.L_diverge, _ -> "unexpected divergence mismatch"

(** Extract a counterexample when [check_pairs] fails: the target-side
    trace of an unmatched behavior plus a description of the final
    mismatch.  Returns [None] when refinement holds. *)
let find_counterexample ?budget (d : Domain.t) (roots : pair list) :
    counterexample option =
  (* counterexample extraction stays on the reference solver: it walks
     [nodes], which only the Pair_map phase produces *)
  let nodes, alive = solve ?budget (slow_ops d) d roots in
  match List.find_opt (fun p -> not (Pair_map.find p alive)) roots with
  | None -> None
  | Some root ->
    (* walk dead pairs, collecting the target labels of failing moves *)
    let rec walk p trace fuel =
      let node = Pair_map.find p nodes in
      if fuel = 0 then
        Some { initial = root; trace = List.rev trace; failing = p;
               reason = "deep mismatch (walk fuel exhausted)" }
      else if not node.local_ok then
        Some { initial = root; trace = List.rev trace; failing = p;
               reason = describe_local d p }
      else begin
        (* align deps with the instantiated target moves *)
        let moves =
          match (Config.line p.tgt).Config.line_end with
          | Config.L_label tcfg' -> Config.moves d tcfg'
          | _ -> []
        in
        let rec first_bad deps moves =
          match deps, moves with
          | Const false :: _, (evs, _) :: _ ->
            Some
              { initial = root; trace = List.rev (List.rev_append evs trace);
                failing = p;
                reason =
                  Fmt.str "the source cannot answer the target action %a"
                    Event.pp_trace evs }
          | Dep q :: _, (evs, _) :: _ when not (Pair_map.find q alive) ->
            walk q (List.rev_append evs trace) (fuel - 1)
          | _ :: deps', _ :: moves' -> first_bad deps' moves'
          | _, _ ->
            Some { initial = root; trace = List.rev trace; failing = p;
                   reason = "internal: no failing dependency found" }
        in
        first_bad node.deps moves
      end
    in
    walk root [] 1000

let pp_counterexample ppf (c : counterexample) =
  Fmt.pf ppf
    "@[<v>counterexample (initial P=%a, M=%a):@ target trace: %a@ %s@]"
    Loc.Set.pp c.initial.tgt.Config.perm (Loc.Map.pp Value.pp)
    c.initial.tgt.Config.mem Event.pp_trace c.trace c.reason
