(** Fast enumeration core: hash-consed configurations with dense integer
    ids, and memoized line/moves over a packed domain.

    A [Core.t] is a per-check context — one domain, one check, never
    shared across domains or concurrent workers (the same contract as
    [Promising.Machine.memo]).  The memoized operations return exactly
    what their uncached counterparts in {!Config} return; the
    differential harness (test/test_diffcore.ml) locks verdict and
    pair-count equality against the set-based reference checkers. *)

open Lang

type t

val create : Domain.t -> t option
(** [None] when the domain's non-atomic footprint exceeds
    {!Lang.Packed.max_locs}: callers stay on the set-based path. *)

val of_tables : Config.tables -> t
(** A fresh per-check context over already-built tables (the domain is
    the tables' domain). *)

val domain : t -> Domain.t
val tables : t -> Config.tables
val packed : t -> Packed.t

val intern : t -> Config.t -> int
(** Dense id of a configuration; equal configurations get equal ids.
    @raise Lang.Packed.Unpackable if the configuration's permission or
    written set leaves the domain's non-atomic footprint (reachable
    configurations of packable roots never do). *)

val cfg : t -> int -> Config.t
(** The first-interned representative of an id. *)

val perm_mask : t -> int -> int
val written_mask : t -> int -> int

val mem_id : t -> int -> int
(** Packed-memory id of the configuration's memory
    ({!Lang.Packed.pack_mem}). *)

val cfg_count : t -> int
(** Number of distinct configurations interned so far. *)

val line : t -> Config.t -> Config.line
(** Memoized {!Config.line} (computed by a Brent-cycle walker with
    identical output — locked by test/test_diffcore.ml). *)

val line_id : t -> int -> Config.line

val line_next : t -> int -> int
(** Interned id of the end configuration of [line_id t id] (the
    [L_term]/[L_label] configuration), or -1 for [L_bot]/[L_diverge].
    Forces the line memo. *)

val line_wmax_mask : t -> int -> int
(** Packed mask of [(line_id t id).written_max].  Forces the line
    memo. *)

val moves : t -> Config.t -> Config.move list
(** Memoized {!Config.moves} (served through {!Config.moves_t}). *)

val moves_id : t -> int -> Config.move list

val moves_next : t -> int -> int array
(** Per-move successor ids for [moves_id t id]: the interned [Cont]
    configuration, or -1 for a [Bot] move.  Forces the moves memo. *)

(** Symmetry reduction over initial environments: explore one
    representative per orbit of the location renamings that fix the
    checked programs syntactically.  Verdict-preserving but
    count-changing, hence opt-in everywhere. *)
module Symmetry : sig
  val max_locs : int

  val automorphisms : Domain.t -> Stmt.t list -> (Loc.t -> Loc.t) list
  (** Non-identity renamings of the non-atomic footprint fixing every
      statement up to {!Stmt.normalize}; [[]] when the footprint has
      fewer than 2 or more than {!max_locs} locations. *)

  val minimal_env :
    (Loc.t -> Loc.t) list ->
    perm:Loc.Set.t -> written:Loc.Set.t -> mem:Value.t Loc.Map.t -> bool
  (** Is this environment the lexicographic minimum of its orbit under
      the given renamings (plus identity)? *)
end
