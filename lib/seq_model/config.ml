(** SEQ configurations ⟨σ, P, F, M⟩ and the transitions of Fig 1.

    Two step interfaces are provided:
    - {!moves}: the full transition relation, enumerating all environment
      choices over a {!Lang.Domain.t} — used by behavior enumeration
      (Def 2.1);
    - {!line}: advance through the deterministic, unlabeled (silent and
      non-atomic) steps up to the next labeled event — used by the
      simulation-based refinement checkers, exploiting that WHILE programs
      are deterministic (Def 6.1) so the unlabeled fragment of an execution
      is a straight line. *)

open Lang

type t = {
  prog : Prog.state;
  perm : Loc.Set.t;       (** P — non-atomic locations we may safely access *)
  written : Loc.Set.t;    (** F — written since the last release *)
  mem : Value.t Loc.Map.t;  (** M — values of the non-atomic locations *)
}

let make ?(perm = Loc.Set.empty) ?(written = Loc.Set.empty)
    ?(mem = Loc.Map.empty) prog =
  { prog; perm; written; mem }

let compare a b =
  let c = Prog.compare_state a.prog b.prog in
  if c <> 0 then c
  else
    let c = Loc.Set.compare a.perm b.perm in
    if c <> 0 then c
    else
      let c = Loc.Set.compare a.written b.written in
      if c <> 0 then c
      else Loc.Map.compare Value.compare a.mem b.mem

let equal a b = compare a b = 0

let read_mem cfg x = Loc.Map.find_default ~default:Value.zero x cfg.mem

(** Where a single SEQ move leads. *)
type next =
  | Cont of t
  | Bot  (** the program state became ⊥ (UB) *)

(** A SEQ move: the emitted trace labels (empty for silent/non-atomic
    steps, two for an RMW) and the successor. *)
type move = Event.t list * next

(** Status of a configuration before taking any step. *)
type status =
  | Running
  | Term of Value.t  (** [σ = return(v)] *)

let status cfg =
  match Prog.step cfg.prog with
  | Prog.Terminated v -> Term v
  | _ -> Running

exception Mixed_access of Loc.t

let () =
  Printexc.register_printer (function
    | Mixed_access x ->
      Some
        (Printf.sprintf "mixed atomic/non-atomic access to %s" (Loc.name x))
    | _ -> None)

(** Check the SEQ well-formedness precondition: no location is accessed
    both atomically and non-atomically (§2, footnote 3). *)
let check_no_mixing (stmts : Stmt.t list) =
  List.iter
    (fun s ->
      match Loc.Set.choose_opt (Stmt.mixed_locations s) with
      | Some x -> raise (Mixed_access x)
      | None -> ())
    stmts

(* Acquire effect: gain permissions [gain ⊆ Loc_na ∖ P] with new values
   [vnew : gain → Val]; memory is overwritten on the gained locations. *)
let apply_acquire cfg ~post ~vnew =
  let mem =
    Loc.Map.fold (fun x v m -> Loc.Map.add x v m) vnew cfg.mem
  in
  { cfg with perm = post; mem }

(* Release effect: drop to [post ⊆ P]; written set resets. *)
let apply_release cfg ~post = { cfg with perm = post; written = Loc.Set.empty }

let released_mem (d : Domain.t) cfg =
  (* V = M|P over the domain's non-atomic locations *)
  List.fold_left
    (fun acc x ->
      if Loc.Set.mem x cfg.perm then Loc.Map.add x (read_mem cfg x) acc else acc)
    Loc.Map.empty d.Domain.na_locs

(* All acquire instantiations: (P', V, successor-builder input).  The
   enumeration (content and order) is Domain.acquire_choices — the single
   canonical definition that the packed caches also replay. *)
let acquire_choices (d : Domain.t) cfg = Domain.acquire_choices d cfg.perm

let release_choices (d : Domain.t) cfg = Domain.subsets_of d cfg.perm

(* The release halves of an RMW / release write / release fence.  The
   released memory V = M|P depends only on [cfg], so it is computed once
   outside the per-choice closure. *)
let rel_moves_gen ~rel d cfg ~rkind (after : t) : move list =
  let rreleased = released_mem d cfg in
  List.map
    (fun post ->
      let ev =
        Event.Rel
          {
            Event.rkind;
            rpre = cfg.perm;
            rpost = post;
            rwritten = cfg.written;
            rreleased;
          }
      in
      ([ ev ], Cont (apply_release after ~post)))
    (rel cfg)

(** The transition relation of Fig 1, parameterized by the providers of
    the environment acquire/release choices.  [acq cfg] must equal
    [Domain.acquire_choices d cfg.perm] and [rel cfg] must equal
    [Domain.subsets_of d cfg.perm] — same contents, same order; the
    parameterization only lets {!moves_t} substitute cached copies. *)
let moves_gen ~acq ~rel (d : Domain.t) (cfg : t) : move list =
  let acquire_choices _d cfg = acq cfg in
  let rel_moves d cfg ~rkind after = rel_moves_gen ~rel d cfg ~rkind after in
  match Prog.step cfg.prog with
  | Prog.Terminated _ -> []
  | Prog.Undefined -> [ ([], Bot) ]
  | Prog.Silent p -> [ ([], Cont { cfg with prog = p }) ]
  | Prog.Do_out (v, p) -> [ ([ Event.Out v ], Cont { cfg with prog = p }) ]
  | Prog.Choice f ->
    List.map
      (fun v -> ([ Event.Choose v ], Cont { cfg with prog = f v }))
      d.Domain.values
  | Prog.Do_read (Mode.Rna, x, f) ->
    if Loc.Set.mem x cfg.perm then
      (* (na-read) *)
      [ ([], Cont { cfg with prog = f (read_mem cfg x) }) ]
    else
      (* (racy-na-read): loads undef *)
      [ ([], Cont { cfg with prog = f Value.Undef }) ]
  | Prog.Do_read (Mode.Rrlx, x, f) ->
    List.map
      (fun v -> ([ Event.Rlx_read (x, v) ], Cont { cfg with prog = f v }))
      (Domain.values_with_undef d)
  | Prog.Do_read (Mode.Racq, x, f) ->
    List.concat_map
      (fun v ->
        List.map
          (fun (post, vnew) ->
            let ev =
              Event.Acq
                {
                  Event.akind = Event.Acq_read (x, v);
                  apre = cfg.perm;
                  apost = post;
                  awritten = cfg.written;
                  agained = vnew;
                }
            in
            ([ ev ], Cont (apply_acquire { cfg with prog = f v } ~post ~vnew)))
          (acquire_choices d cfg))
      (Domain.values_with_undef d)
  | Prog.Do_write (Mode.Wna, x, v, p) ->
    if Loc.Set.mem x cfg.perm then
      (* (na-write) *)
      [ ([],
         Cont
           {
             cfg with
             prog = p;
             written = Loc.Set.add x cfg.written;
             mem = Loc.Map.add x v cfg.mem;
           }) ]
    else
      (* (racy-na-write): UB *)
      [ ([], Bot) ]
  | Prog.Do_write (Mode.Wrlx, x, v, p) ->
    [ ([ Event.Rlx_write (x, v) ], Cont { cfg with prog = p }) ]
  | Prog.Do_write (Mode.Wrel, x, v, p) ->
    rel_moves d cfg ~rkind:(Event.Rel_write (x, v)) { cfg with prog = p }
  | Prog.Do_fence (Mode.Facq, p) ->
    List.map
      (fun (post, vnew) ->
        let ev =
          Event.Acq
            {
              Event.akind = Event.Acq_fence;
              apre = cfg.perm;
              apost = post;
              awritten = cfg.written;
              agained = vnew;
            }
        in
        ([ ev ], Cont (apply_acquire { cfg with prog = p } ~post ~vnew)))
      (acquire_choices d cfg)
  | Prog.Do_fence (Mode.Frel, p) ->
    rel_moves d cfg ~rkind:Event.Rel_fence { cfg with prog = p }
  | Prog.Do_fence (((Mode.Facqrel | Mode.Fsc) as fm), p) ->
    (* release half then acquire half, atomically (two labels); an SC
       fence gets its own label kinds so it never matches a plain acq-rel
       fence in trace comparisons *)
    let rk, ak =
      match fm with
      | Mode.Fsc -> (Event.Rel_fence_sc, Event.Acq_fence_sc)
      | _ -> (Event.Rel_fence, Event.Acq_fence)
    in
    List.concat_map
      (fun (evs_r, nxt) ->
        match nxt with
        | Bot -> [ (evs_r, Bot) ]
        | Cont cfg_r ->
          List.map
            (fun (post, vnew) ->
              let ev =
                Event.Acq
                  {
                    Event.akind = ak;
                    apre = cfg_r.perm;
                    apost = post;
                    awritten = cfg_r.written;
                    agained = vnew;
                  }
              in
              (evs_r @ [ ev ], Cont (apply_acquire cfg_r ~post ~vnew)))
            (acquire_choices d cfg_r))
      (rel_moves d cfg ~rkind:rk { cfg with prog = p })
  | Prog.Do_update (x, f) ->
    (* acquire half: read any value, gain permissions; then the program
       decides; on success, release half. *)
    List.concat_map
      (fun v_read ->
        List.concat_map
          (fun (post, vnew) ->
            let acq_ev =
              Event.Acq
                {
                  Event.akind = Event.Acq_update (x, v_read);
                  apre = cfg.perm;
                  apost = post;
                  awritten = cfg.written;
                  agained = vnew;
                }
            in
            match f v_read with
            | Prog.Upd_fault -> [ ([ acq_ev ], Bot) ]
            | Prog.Upd_read_only p ->
              [ ([ acq_ev ],
                 Cont (apply_acquire { cfg with prog = p } ~post ~vnew)) ]
            | Prog.Upd_write (v_new, p) ->
              let cfg_a = apply_acquire { cfg with prog = p } ~post ~vnew in
              List.map
                (fun (evs_r, nxt) -> (acq_ev :: evs_r, nxt))
                (rel_moves d cfg_a ~rkind:(Event.Rel_update (x, v_new)) cfg_a))
          (acquire_choices d cfg))
      (Domain.values_with_undef d)

(** All SEQ moves of a configuration (Fig 1), enumerated over the domain.
    Terminal configurations have no moves (use {!status}). *)
let moves (d : Domain.t) (cfg : t) : move list =
  moves_gen d cfg ~acq:(acquire_choices d) ~rel:(release_choices d)

(* ------------------------------------------------------------------ *)
(* Cached enumeration tables.                                          *)
(* ------------------------------------------------------------------ *)

(** Per-domain cached environment-choice tables (wrapping
    {!Lang.Packed}).  One [tables] belongs to one domain and one check —
    never share across domains or concurrent workers. *)
type tables = { packed : Packed.t }

let make_tables (d : Domain.t) : tables option =
  match Packed.make d with
  | pk -> Some { packed = pk }
  | exception Packed.Unpackable -> None

(** [moves_t tb d cfg = moves d cfg], with the acquire/release choice
    lists served from [tb]'s per-mask caches.  Falls back to the uncached
    path if [cfg] lies outside the packed universe. *)
let moves_t (tb : tables) (d : Domain.t) (cfg : t) : move list =
  let pk = tb.packed in
  try
    moves_gen d cfg
      ~acq:(fun c -> Packed.acquire_choices pk (Packed.mask_of_set pk c.perm))
      ~rel:(fun c -> Packed.release_choices pk (Packed.mask_of_set pk c.perm))
  with Packed.Unpackable -> moves d cfg

(* ------------------------------------------------------------------ *)
(* The unlabeled line: deterministic advancement to the next label.    *)
(* ------------------------------------------------------------------ *)

(** Result of advancing a configuration through its (unique) unlabeled
    steps to the next labeled event or terminal situation.  [written_max]
    is the final (and, by monotonicity of F along unlabeled steps, maximal)
    written-locations set reached on the line. *)
type line_end =
  | L_term of Value.t * t  (** terminated; final config after the line *)
  | L_bot  (** the line reaches ⊥ (division, abort, racy na-write) *)
  | L_diverge  (** an unlabeled cycle: a silent infinite loop *)
  | L_label of t  (** the next step of [t] emits a label *)

type line = { line_end : line_end; written_max : Loc.Set.t }

(** Advance through silent and non-atomic steps only.  The successor of
    such a step is unique (programs are deterministic and non-atomic reads
    take their value from P/M), so this is a straight line; cycles are
    detected to report divergence. *)
let line (cfg : t) : line =
  let module S = Set.Make (struct
    type nonrec t = t
    let compare = compare
  end) in
  let rec go seen cfg =
    if S.mem cfg seen then { line_end = L_diverge; written_max = cfg.written }
    else
      let seen = S.add cfg seen in
      match Prog.step cfg.prog with
      | Prog.Terminated v -> { line_end = L_term (v, cfg); written_max = cfg.written }
      | Prog.Undefined -> { line_end = L_bot; written_max = cfg.written }
      | Prog.Silent p -> go seen { cfg with prog = p }
      | Prog.Do_read (Mode.Rna, x, f) ->
        let v = if Loc.Set.mem x cfg.perm then read_mem cfg x else Value.Undef in
        go seen { cfg with prog = f v }
      | Prog.Do_write (Mode.Wna, x, v, p) ->
        if Loc.Set.mem x cfg.perm then
          go seen
            {
              cfg with
              prog = p;
              written = Loc.Set.add x cfg.written;
              mem = Loc.Map.add x v cfg.mem;
            }
        else { line_end = L_bot; written_max = cfg.written }
      | Prog.Choice _ | Prog.Do_read ((Mode.Rrlx | Mode.Racq), _, _)
      | Prog.Do_write ((Mode.Wrlx | Mode.Wrel), _, _, _)
      | Prog.Do_update _ | Prog.Do_fence _ | Prog.Do_out _ ->
        { line_end = L_label cfg; written_max = cfg.written }
  in
  go S.empty cfg

let pp ppf cfg =
  Fmt.pf ppf "@[<v>P=%a F=%a M=%a@ %a@]" Loc.Set.pp cfg.perm Loc.Set.pp
    cfg.written (Loc.Map.pp Value.pp) cfg.mem Prog.pp_state cfg.prog
