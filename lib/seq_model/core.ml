(** Fast enumeration core: hash-consed configurations and memoized
    transitions over a packed domain.

    A [Core.t] is a per-check context (like [Promising.Machine.memo]:
    one domain, one check, never shared across domains or concurrent
    workers).  It interns SEQ configurations into dense integer ids —
    program states by a custom hash table, the P/F/M components through
    {!Lang.Packed} masks and memory ids — and memoizes the two
    operations the refinement games thrash:

    - {!line}: the deterministic unlabeled advancement of a
      configuration.  In a simulation game the same configuration
      appears in many pairs (the pair space is close to a product of
      the two sides' state spaces), so each distinct line is now walked
      once instead of once per pair;
    - {!moves}: the full labeled transition enumeration (Fig 1), served
      through {!Config.moves_t} so the environment acquire/release
      choice lists also come from per-mask caches.

    Both memos return the {e very} values the uncached functions would:
    fidelity is locked by test/test_diffcore.ml, which checks verdicts
    {e and} explored pair counts against the set-based reference
    implementations ([Refine.Slow], [Advanced.Slow]). *)

open Lang

module Prog_tbl = Hashtbl.Make (struct
  type t = Prog.state

  let equal = Prog.equal_state

  (* Continuations are plain constructor trees; the default shallow
     polymorphic hash discriminates well because two distinct remaining
     programs differ near the root, and hashing deep would make every
     intern walk the whole tree.  Collisions fall through to
     [equal_state], which also bails out near the root.  Register files
     are maps, whose tree shape is insertion-order dependent — fold in
     key order instead of hashing the tree. *)
  let hash (st : Prog.state) =
    let h = Hashtbl.hash st.Prog.cont in
    let h =
      match st.Prog.ret with
      | None -> h
      | Some v -> (h * 31) + Value.hash v + 17
    in
    Reg.Map.fold
      (fun r v acc -> (((acc * 31) + Reg.hash r) * 31) + Value.hash v)
      st.Prog.regs h
end)

type t = {
  d : Domain.t;
  tables : Config.tables;
  pk : Packed.t;
  prog_ids : int Prog_tbl.t;
  mutable prog_count : int;
  (* (prog id, perm mask, written mask, mem id) -> configuration id *)
  cfg_ids : (int * int * int * int, int) Hashtbl.t;
  mutable cfg_rev : Config.t array;  (* id -> first-interned representative *)
  mutable cfg_key : (int * int * int * int) array;  (* id -> packed quad *)
  mutable cfg_count : int;
  mutable line_memo : Config.line option array;
  mutable line_next : int array;
      (* id of the line's end configuration (L_term/L_label), -1 none *)
  mutable line_wmax : int array;  (* mask of the line's written_max *)
  mutable moves_memo : Config.move list option array;
  mutable moves_next : int array array;
      (* per move: id of the [Cont] successor, -1 for [Bot] *)
}

let dummy_key = (-1, -1, -1, -1)

let of_tables (tables : Config.tables) : t =
  let pk = tables.Config.packed in
  {
    d = Packed.domain pk;
    tables;
    pk;
    prog_ids = Prog_tbl.create 64;
    prog_count = 0;
    cfg_ids = Hashtbl.create 64;
    cfg_rev = Array.make 64 (Config.make (Prog.init Stmt.Skip));
    cfg_key = Array.make 64 dummy_key;
    cfg_count = 0;
    line_memo = Array.make 64 None;
    line_next = Array.make 64 (-1);
    line_wmax = Array.make 64 0;
    moves_memo = Array.make 64 None;
    moves_next = Array.make 64 [||];
  }

let create (d : Domain.t) : t option =
  match Config.make_tables d with
  | None -> None
  | Some tables -> Some (of_tables tables)

let domain t = t.d
let tables t = t.tables
let packed t = t.pk
let cfg_count t = t.cfg_count

let prog_id t (st : Prog.state) : int =
  match Prog_tbl.find_opt t.prog_ids st with
  | Some i -> i
  | None ->
    let i = t.prog_count in
    t.prog_count <- i + 1;
    Prog_tbl.add t.prog_ids st i;
    i

let grow t =
  let n = Array.length t.cfg_rev in
  let g = 2 * n in
  let rev = Array.make g t.cfg_rev.(0) in
  Array.blit t.cfg_rev 0 rev 0 n;
  t.cfg_rev <- rev;
  let key = Array.make g dummy_key in
  Array.blit t.cfg_key 0 key 0 n;
  t.cfg_key <- key;
  let lm = Array.make g None in
  Array.blit t.line_memo 0 lm 0 n;
  t.line_memo <- lm;
  let ln = Array.make g (-1) in
  Array.blit t.line_next 0 ln 0 n;
  t.line_next <- ln;
  let lw = Array.make g 0 in
  Array.blit t.line_wmax 0 lw 0 n;
  t.line_wmax <- lw;
  let mm = Array.make g None in
  Array.blit t.moves_memo 0 mm 0 n;
  t.moves_memo <- mm;
  let mn = Array.make g [||] in
  Array.blit t.moves_next 0 mn 0 n;
  t.moves_next <- mn

(** Intern a configuration.  @raise Lang.Packed.Unpackable when its
    permission or written set leaves the domain's non-atomic footprint
    (reachable configurations of packable roots never do — permissions
    only shrink on release and grow within the domain on acquire). *)
let intern t (cfg : Config.t) : int =
  let key =
    ( prog_id t cfg.Config.prog,
      Packed.mask_of_set t.pk cfg.Config.perm,
      Packed.mask_of_set t.pk cfg.Config.written,
      Packed.pack_mem t.pk cfg.Config.mem )
  in
  match Hashtbl.find_opt t.cfg_ids key with
  | Some id -> id
  | None ->
    let id = t.cfg_count in
    if id >= Array.length t.cfg_rev then grow t;
    t.cfg_rev.(id) <- cfg;
    t.cfg_key.(id) <- key;
    t.cfg_count <- id + 1;
    Hashtbl.add t.cfg_ids key id;
    id

let cfg t id = t.cfg_rev.(id)
let perm_mask t id = let _, p, _, _ = t.cfg_key.(id) in p
let written_mask t id = let _, _, w, _ = t.cfg_key.(id) in w
let mem_id t id = let _, _, _, m = t.cfg_key.(id) in m

(* [Config.line] with Brent's cycle detection instead of a [Set] of
   visited configurations: one comparison against a checkpointed
   configuration per step, rather than a set insertion plus membership
   test (each O(log n) structural comparisons).  Output-identical:
   divergence is detected iff the deterministic step sequence is
   infinite, and every configuration on the cycle carries the same
   written set (the cycle repeats states, and F only grows), so the
   reported [written_max] coincides with the reference's
   first-revisit point.  Equality with {!Config.line} is locked by
   test/test_diffcore.ml. *)
let line_walk (cfg0 : Config.t) : Config.line =
  let open Config in
  let power = ref 1 and lam = ref 0 in
  let tortoise = ref cfg0 in
  let rec go (cfg : Config.t) : Config.line =
    match Prog.step cfg.prog with
    | Prog.Terminated v ->
      { line_end = L_term (v, cfg); written_max = cfg.written }
    | Prog.Undefined -> { line_end = L_bot; written_max = cfg.written }
    | Prog.Choice _
    | Prog.Do_read ((Mode.Rrlx | Mode.Racq), _, _)
    | Prog.Do_write ((Mode.Wrlx | Mode.Wrel), _, _, _)
    | Prog.Do_update _ | Prog.Do_fence _ | Prog.Do_out _ ->
      { line_end = L_label cfg; written_max = cfg.written }
    | Prog.Silent p -> step { cfg with prog = p }
    | Prog.Do_read (Mode.Rna, x, f) ->
      let v =
        if Loc.Set.mem x cfg.perm then Config.read_mem cfg x else Value.Undef
      in
      step { cfg with prog = f v }
    | Prog.Do_write (Mode.Wna, x, v, p) ->
      if Loc.Set.mem x cfg.perm then
        step
          {
            cfg with
            prog = p;
            written = Loc.Set.add x cfg.written;
            mem = Loc.Map.add x v cfg.mem;
          }
      else { line_end = L_bot; written_max = cfg.written }
  and step (cfg' : Config.t) : Config.line =
    if Config.compare cfg' !tortoise = 0 then
      { line_end = L_diverge; written_max = cfg'.written }
    else begin
      incr lam;
      if !lam = !power then begin
        power := 2 * !power;
        lam := 0;
        tortoise := cfg'
      end;
      go cfg'
    end
  in
  go cfg0

let line_id t id : Config.line =
  match t.line_memo.(id) with
  | Some l -> l
  | None ->
    let l = line_walk t.cfg_rev.(id) in
    t.line_memo.(id) <- Some l;
    t.line_wmax.(id) <- Packed.mask_of_set t.pk l.Config.written_max;
    (match l.Config.line_end with
     | Config.L_term (_, c) | Config.L_label c ->
       let nid = intern t c in
       t.line_next.(id) <- nid
     | Config.L_bot | Config.L_diverge -> ());
    l

(** Interned id of the end configuration of [line_id t id] — the
    [L_term]/[L_label] configuration, or -1 for [L_bot]/[L_diverge].
    Only meaningful after [line_id t id] has been forced. *)
let line_next t id : int =
  (match t.line_memo.(id) with None -> ignore (line_id t id) | Some _ -> ());
  t.line_next.(id)

(** Mask of [written_max] of [line_id t id].  Forces the line memo. *)
let line_wmax_mask t id : int =
  (match t.line_memo.(id) with None -> ignore (line_id t id) | Some _ -> ());
  t.line_wmax.(id)

let line t cfg = line_id t (intern t cfg)

let moves_id t id : Config.move list =
  match t.moves_memo.(id) with
  | Some m -> m
  | None ->
    let m = Config.moves_t t.tables t.d t.cfg_rev.(id) in
    t.moves_memo.(id) <- Some m;
    let next =
      Array.of_list
        (List.map
           (function
             | _, Config.Bot -> -1
             | _, Config.Cont c -> intern t c)
           m)
    in
    t.moves_next.(id) <- next;
    m

(** Per-move successor ids for [moves_id t id]: the interned [Cont]
    configuration, or -1 for a [Bot] move.  Forces the moves memo. *)
let moves_next t id : int array =
  (match t.moves_memo.(id) with None -> ignore (moves_id t id) | Some _ -> ());
  t.moves_next.(id)

let moves t cfg = moves_id t (intern t cfg)

(* ------------------------------------------------------------------ *)
(* Symmetry reduction over initial environments                        *)
(* ------------------------------------------------------------------ *)

module Symmetry = struct
  (* Beyond this many non-atomic locations, n! permutations cost more
     than the orbits save. *)
  let max_locs = 5

  let rec permutations = function
    | [] -> [ [] ]
    | locs ->
      List.concat_map
        (fun x ->
          List.map
            (fun p -> x :: p)
            (permutations (List.filter (fun y -> not (Loc.equal x y)) locs)))
        locs

  (** Non-identity permutations of the domain's non-atomic locations that
      fix every given statement syntactically (up to {!Stmt.normalize}).
      Such a renaming is an automorphism of the whole transition system,
      so initial environments in the same orbit have isomorphic pair
      graphs and equal verdicts. *)
  let automorphisms (d : Domain.t) (stmts : Stmt.t list) :
      (Loc.t -> Loc.t) list =
    let na = d.Domain.na_locs in
    if List.length na < 2 || List.length na > max_locs then []
    else
      let norms = List.map Stmt.normalize stmts in
      let candidates =
        List.filter_map
          (fun perm ->
            if List.equal Loc.equal perm na then None (* identity *)
            else
              let assoc = List.combine na perm in
              Some (fun x -> try List.assoc x assoc with Not_found -> x))
          (permutations na)
      in
      List.filter
        (fun f ->
          List.for_all2
            (fun s n -> Stmt.normalize (Stmt.rename_locs f s) = n)
            stmts norms)
        candidates

  let rename_set f s =
    Loc.Set.fold (fun x acc -> Loc.Set.add (f x) acc) s Loc.Set.empty

  let rename_mem f m =
    Loc.Map.fold (fun x v acc -> Loc.Map.add (f x) v acc) m Loc.Map.empty

  (** Is [(perm, written, mem)] the minimum of its orbit under the given
      renamings?  Keeping only minimal environments explores one
      representative per orbit; verdicts are preserved, pair counts
      shrink (which is why symmetry reduction is opt-in — golden tables
      pin the unreduced counts). *)
  let minimal_env (autos : (Loc.t -> Loc.t) list) ~(perm : Loc.Set.t)
      ~(written : Loc.Set.t) ~(mem : Value.t Loc.Map.t) : bool =
    List.for_all
      (fun f ->
        let c = Loc.Set.compare (rename_set f perm) perm in
        if c <> 0 then c > 0
        else
          let c = Loc.Set.compare (rename_set f written) written in
          if c <> 0 then c > 0
          else Loc.Map.compare Value.compare (rename_mem f mem) mem >= 0)
      autos
end
