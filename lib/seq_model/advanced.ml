(** Advanced behavioral refinement (§3): behavioral refinement up to a
    commitment set R (Fig 2) quantified over all oracles (Def 3.2/3.3),
    decided by the simulation of Fig 6.

    Compared to the simple game ({!Refine}):
    - the source may invoke UB {e later} than the target, provided it can
      reach ⊥ with no acquire event {e for every oracle} — environment
      choices (relaxed-read values, release permission drops, [choose]
      resolutions) are universally quantified ({!can_fail_universally});
    - release-write labels need not agree on the written-set/memory
      annotations; the disagreement becomes a {e commitment set} R of
      locations the source must write before it terminates or acquires
      (beh-rel-write);
    - partial behaviors are matched by letting the source run further
      (without acquires, for every oracle) until its writes cover
      F_tgt ∪ R ({!can_fulfill_universally}, rule beh-partial). *)

open Lang

(* ------------------------------------------------------------------ *)
(* ∀-oracle suffix games                                                *)
(* ------------------------------------------------------------------ *)

module Cfg_set = Set.Make (struct
  type t = Config.t
  let compare = Config.compare
end)

(* Universal branching over environment responses at a labeled step.
   Returns [None] if the step is an acquire (forbidden in suffixes) and
   the list of successor configurations otherwise ([`Stop] when the
   program terminates). *)
let suffix_successors (d : Domain.t) (cfg : Config.t) :
    [ `Forbidden | `Branches of [ `Cfg of Config.t | `Bot ] list ] =
  match Prog.step cfg.Config.prog with
  | Prog.Terminated _ -> `Branches []
  | Prog.Undefined -> `Branches [ `Bot ]
  | Prog.Silent p -> `Branches [ `Cfg { cfg with prog = p } ]
  | Prog.Do_out (_, p) -> `Branches [ `Cfg { cfg with prog = p } ]
  | Prog.Choice f ->
    `Branches (List.map (fun v -> `Cfg { cfg with prog = f v }) d.Domain.values)
  | Prog.Do_read (Mode.Rna, x, f) ->
    let v = if Loc.Set.mem x cfg.perm then Config.read_mem cfg x else Value.Undef in
    `Branches [ `Cfg { cfg with prog = f v } ]
  | Prog.Do_read (Mode.Rrlx, _, f) ->
    `Branches
      (List.map (fun v -> `Cfg { cfg with prog = f v }) (Domain.values_with_undef d))
  | Prog.Do_read (Mode.Racq, _, _) | Prog.Do_update _
  | Prog.Do_fence ((Mode.Facq | Mode.Facqrel | Mode.Fsc), _) -> `Forbidden
  | Prog.Do_write (Mode.Wna, x, v, p) ->
    if Loc.Set.mem x cfg.perm then
      `Branches
        [ `Cfg
            {
              cfg with
              prog = p;
              written = Loc.Set.add x cfg.written;
              mem = Loc.Map.add x v cfg.mem;
            } ]
    else `Branches [ `Bot ]
  | Prog.Do_write (Mode.Wrlx, _, _, p) -> `Branches [ `Cfg { cfg with prog = p } ]
  | Prog.Do_write (Mode.Wrel, _, _, p) ->
    `Branches
      (List.map
         (fun post -> `Cfg (Config.apply_release { cfg with prog = p } ~post))
         (Domain.subsets_of d cfg.perm))
  | Prog.Do_fence (Mode.Frel, p) ->
    `Branches
      (List.map
         (fun post -> `Cfg (Config.apply_release { cfg with prog = p } ~post))
         (Domain.subsets_of d cfg.perm))

(** Can the source reach ⊥ without any acquire event, under {e every}
    oracle? (the "∀Ω. ∃ trace with Racq ∉ tr ending in ⊥" disjunct of
    Fig 6.)  Environment-controlled branches ([choose] values, relaxed-read
    values, release permission drops) are conjunctive; cycles lose. *)
module Cfg_map = Map.Make (struct
  type t = Config.t
  let compare = Config.compare
end)

(* All branching in the suffix games is adversarial (the program itself is
   deterministic), so a cycle means the environment can loop forever:
   returning false on back-edges computes the exact game value, and results
   are context-independent and cacheable. *)
let can_fail_universally_memo ?(budget = Engine.Budget.unlimited)
    (d : Domain.t) (memo : bool Cfg_map.t ref) (cfg : Config.t) : bool =
  let rec go visiting cfg =
    Engine.Budget.check budget;
    match Cfg_map.find_opt cfg !memo with
    | Some b -> b
    | None ->
      if Cfg_set.mem cfg visiting then false (* a cycle never reaches ⊥ *)
      else begin
        let visiting = Cfg_set.add cfg visiting in
        let result =
          match suffix_successors d cfg with
          | `Forbidden -> false
          | `Branches [] -> false (* terminated without ⊥ *)
          | `Branches bs ->
            List.for_all
              (function `Bot -> true | `Cfg c -> go visiting c)
              bs
        in
        memo := Cfg_map.add cfg result !memo;
        result
      end
  in
  go Cfg_set.empty cfg

(** Can the source reach ⊥ without any acquire event, under {e every}
    oracle? (the "∀Ω. ∃ trace with Racq ∉ tr ending in ⊥" disjunct of
    Fig 6.) *)
let can_fail_universally ?budget (d : Domain.t) (cfg : Config.t) : bool =
  can_fail_universally_memo ?budget d (ref Cfg_map.empty) cfg

(** Can the source, without any acquire event and under every oracle,
    extend its execution so that its writes cover [need]?  (rule
    beh-partial: F_tgt ∪ R ⊆ F_src ∪ ⋃ released F's; writes are "banked"
    continuously, which is equivalent.)  Reaching ⊥ also wins
    (beh-failure). *)
let can_fulfill_universally ?(budget = Engine.Budget.unlimited) (d : Domain.t)
    ~(need : Loc.Set.t) (cfg : Config.t) : bool =
  let module Key = struct
    type t = Loc.Set.t * Config.t
    let compare (n1, c1) (n2, c2) =
      let c = Loc.Set.compare n1 n2 in
      if c <> 0 then c else Config.compare c1 c2
  end in
  let module KSet = Set.Make (Key) in
  let rec go visiting need cfg =
    Engine.Budget.check budget;
    let need = Loc.Set.diff need cfg.Config.written in
    if Loc.Set.is_empty need then true
    else if KSet.mem (need, cfg) visiting then false
    else
      let visiting = KSet.add (need, cfg) visiting in
      match suffix_successors d cfg with
      | `Forbidden -> false
      | `Branches [] -> false
      | `Branches bs ->
        List.for_all
          (function `Bot -> true | `Cfg c -> go visiting need c)
          bs
  in
  go KSet.empty need cfg

(* ------------------------------------------------------------------ *)
(* The simulation game with commitment sets                            *)
(* ------------------------------------------------------------------ *)

type pair = { commit : Loc.Set.t; tgt : Config.t; src : Config.t }

module Pair_map = Map.Make (struct
  type t = pair
  let compare a b =
    let c = Loc.Set.compare a.commit b.commit in
    if c <> 0 then c
    else
      let c = Config.compare a.tgt b.tgt in
      if c <> 0 then c else Config.compare a.src b.src
end)

type answer = Const of bool | Dep of pair

type src_point =
  | Plain of Config.t
  | Pend_rel of Event.rel_kind * Config.t
  | Pend_acq of Event.acq_kind * Config.t

let mem_le (d : Domain.t) m1 m2 =
  List.for_all
    (fun x ->
      Value.le
        (Loc.Map.find_default ~default:Value.zero x m1)
        (Loc.Map.find_default ~default:Value.zero x m2))
    d.Domain.na_locs

(* R' of beh-rel-write: (R ∖ F_src) ∪ (F_tgt ∖ F_src) ∪ {y | V_tgt(y) ⋢ V_src(y)}.
   The released memories range over the shared pre-release permission set. *)
let next_commit ~commit ~(ftgt : Loc.Set.t) ~(fsrc : Loc.Set.t)
    ~(vtgt : Value.t Loc.Map.t) ~(vsrc : Value.t Loc.Map.t) : Loc.Set.t =
  let base = Loc.Set.union (Loc.Set.diff commit fsrc) (Loc.Set.diff ftgt fsrc) in
  Loc.Map.fold
    (fun y vt acc ->
      let vs = Loc.Map.find_default ~default:Value.zero y vsrc in
      if Value.le vt vs then acc else Loc.Set.add y acc)
    vtgt base

let src_released (scfg : Config.t) : Value.t Loc.Map.t =
  Loc.Set.fold
    (fun y acc -> Loc.Map.add y (Config.read_mem scfg y) acc)
    scfg.Config.perm Loc.Map.empty

(* Answer one target label (Fig 2 rules) from a source configuration that
   sits at a labeled step.  Threads the commitment set. *)
let respond1 ~commit (scfg : Config.t) (ev : Event.t) :
    [ `Ok of Loc.Set.t * src_point | `Bot | `No ] =
  let open Event in
  match ev, Prog.step scfg.Config.prog with
  | Choose v, Prog.Choice f -> `Ok (commit, Plain { scfg with prog = f v })
  | Rlx_read (x, v), Prog.Do_read (Mode.Rrlx, y, f) when Loc.equal x y ->
    `Ok (commit, Plain { scfg with prog = f v })
  | Rlx_write (x, vt), Prog.Do_write (Mode.Wrlx, y, vs, p) when Loc.equal x y ->
    if Value.le vt vs then `Ok (commit, Plain { scfg with prog = p }) else `No
  | Out vt, Prog.Do_out (vs, p) ->
    if Value.le vt vs then `Ok (commit, Plain { scfg with prog = p }) else `No
  | Acq a, shape ->
    (* beh-acq-read: F_tgt ∪ R ⊆ F_src, R' = ∅ *)
    if
      not
        (Loc.Set.equal a.apre scfg.Config.perm
         && Loc.Set.subset
              (Loc.Set.union a.awritten commit)
              scfg.Config.written)
    then `No
    else
      let continue prog' =
        `Ok
          ( Loc.Set.empty,
            Plain
              (Config.apply_acquire { scfg with prog = prog' } ~post:a.apost
                 ~vnew:a.agained) )
      in
      (match a.akind, shape with
       | Acq_read (x, v), Prog.Do_read (Mode.Racq, y, f) when Loc.equal x y ->
         continue (f v)
       | Acq_fence, Prog.Do_fence (Mode.Facq, p) -> continue p
       | Acq_update (x, v), Prog.Do_update (y, f) when Loc.equal x y ->
         (match f v with
          | Prog.Upd_fault -> `Bot
          | Prog.Upd_read_only p -> continue p
          | Prog.Upd_write (v_new, p) ->
            let cfg' =
              Config.apply_acquire { scfg with prog = p } ~post:a.apost
                ~vnew:a.agained
            in
            `Ok (Loc.Set.empty, Pend_rel (Rel_update (x, v_new), cfg')))
       | _, _ -> `No)
  | Rel r, shape ->
    (* beh-rel-write: only P/P' and the value are constrained; written-set
       and memory disagreements become commitments. *)
    if not (Loc.Set.equal r.rpre scfg.Config.perm) then `No
    else
      let commit' =
        next_commit ~commit ~ftgt:r.rwritten ~fsrc:scfg.Config.written
          ~vtgt:r.rreleased ~vsrc:(src_released scfg)
      in
      let continue prog' =
        `Ok
          ( commit',
            Plain (Config.apply_release { scfg with prog = prog' } ~post:r.rpost)
          )
      in
      (match r.rkind, shape with
       | Rel_write (x, vt), Prog.Do_write (Mode.Wrel, y, vs, p)
         when Loc.equal x y ->
         if Value.le vt vs then continue p else `No
       | Rel_fence, Prog.Do_fence (Mode.Frel, p) -> continue p
       | Rel_fence, Prog.Do_fence (Mode.Facqrel, p) ->
         `Ok
           ( commit',
             Pend_acq
               (Event.Acq_fence,
                Config.apply_release { scfg with prog = p } ~post:r.rpost) )
       | Rel_fence_sc, Prog.Do_fence (Mode.Fsc, p) ->
         `Ok
           ( commit',
             Pend_acq
               (Event.Acq_fence_sc,
                Config.apply_release { scfg with prog = p } ~post:r.rpost) )
       | _, _ -> `No)
  | (Choose _ | Rlx_read _ | Rlx_write _ | Out _), _ -> `No

let respond_pending ~commit (point : src_point) (ev : Event.t) :
    [ `Ok of Loc.Set.t * src_point | `Bot | `No ] =
  let open Event in
  match point, ev with
  | Pend_rel (skind, scfg), Rel r ->
    if not (Loc.Set.equal r.rpre scfg.Config.perm) then `No
    else
      let kind_ok =
        match r.rkind, skind with
        | Rel_update (x, vt), Rel_update (y, vs) -> Loc.equal x y && Value.le vt vs
        | _, _ -> false
      in
      if not kind_ok then `No
      else
        let commit' =
          next_commit ~commit ~ftgt:r.rwritten ~fsrc:scfg.Config.written
            ~vtgt:r.rreleased ~vsrc:(src_released scfg)
        in
        `Ok (commit', Plain (Config.apply_release scfg ~post:r.rpost))
  | Pend_acq (k, scfg), Acq a ->
    if
      not
        (Loc.Set.equal a.apre scfg.Config.perm
         && Loc.Set.subset
              (Loc.Set.union a.awritten commit)
              scfg.Config.written
         && Event.compare_kinds_a a.akind k = 0)
    then `No
    else
      `Ok
        ( Loc.Set.empty,
          Plain (Config.apply_acquire scfg ~post:a.apost ~vnew:a.agained) )
  | (Plain _ | Pend_rel _ | Pend_acq _), _ -> `No

let rec consume (d : Domain.t) ~budget fm ~commit (point : src_point) (evs : Event.t list)
    (next_t : Config.next) : answer =
  match evs with
  | [] ->
    (match point with
     | Pend_rel _ | Pend_acq _ -> Const false
     | Plain scfg ->
       (match next_t with
        | Config.Bot -> Const (can_fail_universally_memo ~budget d fm scfg)
        | Config.Cont tcfg' -> Dep { commit; tgt = tcfg'; src = scfg }))
  | ev :: rest ->
    (match point with
     | Pend_rel _ | Pend_acq _ ->
       (match respond_pending ~commit point ev with
        | `Ok (commit', point') -> consume d ~budget fm ~commit:commit' point' rest next_t
        | `Bot -> Const true
        | `No -> Const false)
     | Plain scfg ->
       let ln = Config.line scfg in
       (match ln.Config.line_end with
        | Config.L_bot -> Const true
        | Config.L_label scfg' ->
          (match respond1 ~commit scfg' ev with
           | `Ok (commit', point') -> consume d ~budget fm ~commit:commit' point' rest next_t
           | `Bot -> Const true
           | `No ->
             (* the source may still escape via late UB for every oracle *)
             Const (can_fail_universally_memo ~budget d fm scfg))
        | Config.L_term _ | Config.L_diverge ->
          Const (can_fail_universally_memo ~budget d fm scfg)))

type node = { local_ok : bool; deps : answer list }

let analyze (d : Domain.t) ~budget fm (p : pair) : node =
  (* Fig 6: [∀Ω ∃ ⊥-suffix] disjunct first — it matches everything. *)
  if can_fail_universally_memo ~budget d fm p.src then { local_ok = true; deps = [] }
  else
    let ln_t = Config.line p.tgt in
    let need = Loc.Set.union ln_t.Config.written_max p.commit in
    if not (can_fulfill_universally ~budget d ~need p.src) then
      { local_ok = false; deps = [] }
    else
      match ln_t.Config.line_end with
      | Config.L_bot ->
        (* only matched by the ⊥-escape, which failed *)
        { local_ok = false; deps = [] }
      | Config.L_diverge -> { local_ok = true; deps = [] }
      | Config.L_term (v, tcfg') ->
        let ln_s = Config.line p.src in
        (match ln_s.Config.line_end with
         | Config.L_term (v', scfg') ->
           let ok =
             Value.le v v'
             && Loc.Set.subset
                  (Loc.Set.union tcfg'.Config.written p.commit)
                  scfg'.Config.written
             && mem_le d tcfg'.Config.mem scfg'.Config.mem
           in
           { local_ok = ok; deps = [] }
         | Config.L_bot | Config.L_diverge | Config.L_label _ ->
           { local_ok = false; deps = [] })
      | Config.L_label tcfg' ->
        let ln_s = Config.line p.src in
        (match ln_s.Config.line_end with
         | Config.L_label scfg' ->
           let answers =
             List.map
               (fun (evs, next_t) ->
                 consume d ~budget fm ~commit:p.commit (Plain scfg') evs next_t)
               (Config.moves d tcfg')
           in
           { local_ok = true; deps = answers }
         | Config.L_bot (* would have been caught by the escape *)
         | Config.L_term _ | Config.L_diverge ->
           { local_ok = false; deps = [] })

let check_pairs_count ?(budget = Engine.Budget.unlimited) (d : Domain.t)
    (roots : pair list) : bool * int =
  let fm = ref Cfg_map.empty in
  let nodes : node Pair_map.t ref = ref Pair_map.empty in
  let rec explore p =
    if not (Pair_map.mem p !nodes) then begin
      Engine.Budget.spend_state budget;
      nodes := Pair_map.add p { local_ok = true; deps = [] } !nodes;
      let node = analyze d ~budget fm p in
      nodes := Pair_map.add p node !nodes;
      List.iter (function Dep q -> explore q | Const _ -> ()) node.deps
    end
  in
  List.iter explore roots;
  let alive = ref (Pair_map.map (fun _ -> true) !nodes) in
  let changed = ref true in
  while !changed do
    changed := false;
    Pair_map.iter
      (fun p node ->
        Engine.Budget.check budget;
        if Pair_map.find p !alive then begin
          let ok =
            node.local_ok
            && List.for_all
                 (function Const b -> b | Dep q -> Pair_map.find q !alive)
                 node.deps
          in
          if not ok then begin
            alive := Pair_map.add p false !alive;
            changed := true
          end
        end)
      !nodes
  done;
  ( List.for_all (fun p -> Pair_map.find p !alive) roots,
    Pair_map.cardinal !nodes )

let check_pairs ?budget (d : Domain.t) (roots : pair list) : bool =
  fst (check_pairs_count ?budget d roots)

(** Budgeted three-valued form of {!check_pairs}. *)
let check_pairs_verdict ?budget (d : Domain.t) (roots : pair list) :
    unit Engine.Verdict.t =
  Engine.Verdict.run (fun () ->
      Engine.Verdict.of_bool (check_pairs ?budget d roots))

(** [check d ~src ~tgt] decides [σ_tgt ⊑w σ_src] (Def 3.3) over the finite
    domain: advanced behavioral refinement for every oracle and every
    initial permission set and memory. *)
let check_count ?(quantify_written = false) ?budget (d : Domain.t)
    ~(src : Stmt.t) ~(tgt : Stmt.t) : bool * int =
  Config.check_no_mixing [ src; tgt ];
  let perms = Domain.subsets d.Domain.na_locs in
  let writtens =
    if quantify_written then Domain.subsets d.Domain.na_locs
    else [ Loc.Set.empty ]
  in
  let mems = Domain.memories d in
  let roots =
    List.concat_map
      (fun perm ->
        List.concat_map
          (fun written ->
            List.map
              (fun mem ->
                {
                  commit = Loc.Set.empty;
                  tgt = Config.make ~perm ~written ~mem (Prog.init tgt);
                  src = Config.make ~perm ~written ~mem (Prog.init src);
                })
              mems)
          writtens)
      perms
  in
  check_pairs_count ?budget d roots

let check ?quantify_written ?budget (d : Domain.t) ~(src : Stmt.t)
    ~(tgt : Stmt.t) : bool =
  fst (check_count ?quantify_written ?budget d ~src ~tgt)

(** Budgeted three-valued form of {!check}: [Unknown] on budget
    exhaustion, [Mixed_access], or any other trapped exception. *)
let check_verdict ?quantify_written ?budget (d : Domain.t) ~(src : Stmt.t)
    ~(tgt : Stmt.t) : unit Engine.Verdict.t =
  Engine.Verdict.run (fun () ->
      Engine.Verdict.of_bool (check ?quantify_written ?budget d ~src ~tgt))
