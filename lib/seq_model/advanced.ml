(** Advanced behavioral refinement (§3): behavioral refinement up to a
    commitment set R (Fig 2) quantified over all oracles (Def 3.2/3.3),
    decided by the simulation of Fig 6.

    Compared to the simple game ({!Refine}):
    - the source may invoke UB {e later} than the target, provided it can
      reach ⊥ with no acquire event {e for every oracle} — environment
      choices (relaxed-read values, release permission drops, [choose]
      resolutions) are universally quantified ({!can_fail_universally});
    - release-write labels need not agree on the written-set/memory
      annotations; the disagreement becomes a {e commitment set} R of
      locations the source must write before it terminates or acquires
      (beh-rel-write);
    - partial behaviors are matched by letting the source run further
      (without acquires, for every oracle) until its writes cover
      F_tgt ∪ R ({!can_fulfill_universally}, rule beh-partial). *)

open Lang

(* ------------------------------------------------------------------ *)
(* ∀-oracle suffix games                                                *)
(* ------------------------------------------------------------------ *)

module Cfg_set = Set.Make (struct
  type t = Config.t
  let compare = Config.compare
end)

(* Universal branching over environment responses at a labeled step.
   Returns [None] if the step is an acquire (forbidden in suffixes) and
   the list of successor configurations otherwise ([`Stop] when the
   program terminates).  [rel] provides the release permission drops and
   must equal [Domain.subsets_of d cfg.perm] — the parameterization only
   lets the fast path substitute the per-mask cached copy. *)
let suffix_successors_gen ~rel (d : Domain.t) (cfg : Config.t) :
    [ `Forbidden | `Branches of [ `Cfg of Config.t | `Bot ] list ] =
  match Prog.step cfg.Config.prog with
  | Prog.Terminated _ -> `Branches []
  | Prog.Undefined -> `Branches [ `Bot ]
  | Prog.Silent p -> `Branches [ `Cfg { cfg with prog = p } ]
  | Prog.Do_out (_, p) -> `Branches [ `Cfg { cfg with prog = p } ]
  | Prog.Choice f ->
    `Branches (List.map (fun v -> `Cfg { cfg with prog = f v }) d.Domain.values)
  | Prog.Do_read (Mode.Rna, x, f) ->
    let v = if Loc.Set.mem x cfg.perm then Config.read_mem cfg x else Value.Undef in
    `Branches [ `Cfg { cfg with prog = f v } ]
  | Prog.Do_read (Mode.Rrlx, _, f) ->
    `Branches
      (List.map (fun v -> `Cfg { cfg with prog = f v }) (Domain.values_with_undef d))
  | Prog.Do_read (Mode.Racq, _, _) | Prog.Do_update _
  | Prog.Do_fence ((Mode.Facq | Mode.Facqrel | Mode.Fsc), _) -> `Forbidden
  | Prog.Do_write (Mode.Wna, x, v, p) ->
    if Loc.Set.mem x cfg.perm then
      `Branches
        [ `Cfg
            {
              cfg with
              prog = p;
              written = Loc.Set.add x cfg.written;
              mem = Loc.Map.add x v cfg.mem;
            } ]
    else `Branches [ `Bot ]
  | Prog.Do_write (Mode.Wrlx, _, _, p) -> `Branches [ `Cfg { cfg with prog = p } ]
  | Prog.Do_write (Mode.Wrel, _, _, p) ->
    `Branches
      (List.map
         (fun post -> `Cfg (Config.apply_release { cfg with prog = p } ~post))
         (rel cfg))
  | Prog.Do_fence (Mode.Frel, p) ->
    `Branches
      (List.map
         (fun post -> `Cfg (Config.apply_release { cfg with prog = p } ~post))
         (rel cfg))

let suffix_successors (d : Domain.t) (cfg : Config.t) =
  suffix_successors_gen d cfg
    ~rel:(fun c -> Domain.subsets_of d c.Config.perm)

(** Can the source reach ⊥ without any acquire event, under {e every}
    oracle? (the "∀Ω. ∃ trace with Racq ∉ tr ending in ⊥" disjunct of
    Fig 6.)  Environment-controlled branches ([choose] values, relaxed-read
    values, release permission drops) are conjunctive; cycles lose. *)
module Cfg_map = Map.Make (struct
  type t = Config.t
  let compare = Config.compare
end)

(* All branching in the suffix games is adversarial (the program itself is
   deterministic), so a cycle means the environment can loop forever:
   returning false on back-edges computes the exact game value, and results
   are context-independent and cacheable. *)
let can_fail_universally_memo ?(budget = Engine.Budget.unlimited)
    (d : Domain.t) (memo : bool Cfg_map.t ref) (cfg : Config.t) : bool =
  let rec go visiting cfg =
    Engine.Budget.check budget;
    match Cfg_map.find_opt cfg !memo with
    | Some b -> b
    | None ->
      if Cfg_set.mem cfg visiting then false (* a cycle never reaches ⊥ *)
      else begin
        let visiting = Cfg_set.add cfg visiting in
        let result =
          match suffix_successors d cfg with
          | `Forbidden -> false
          | `Branches [] -> false (* terminated without ⊥ *)
          | `Branches bs ->
            List.for_all
              (function `Bot -> true | `Cfg c -> go visiting c)
              bs
        in
        memo := Cfg_map.add cfg result !memo;
        result
      end
  in
  go Cfg_set.empty cfg

(** Can the source reach ⊥ without any acquire event, under {e every}
    oracle? (the "∀Ω. ∃ trace with Racq ∉ tr ending in ⊥" disjunct of
    Fig 6.) *)
let can_fail_universally ?budget (d : Domain.t) (cfg : Config.t) : bool =
  can_fail_universally_memo ?budget d (ref Cfg_map.empty) cfg

(** Can the source, without any acquire event and under every oracle,
    extend its execution so that its writes cover [need]?  (rule
    beh-partial: F_tgt ∪ R ⊆ F_src ∪ ⋃ released F's; writes are "banked"
    continuously, which is equivalent.)  Reaching ⊥ also wins
    (beh-failure). *)
let can_fulfill_universally ?(budget = Engine.Budget.unlimited) (d : Domain.t)
    ~(need : Loc.Set.t) (cfg : Config.t) : bool =
  let module Key = struct
    type t = Loc.Set.t * Config.t
    let compare (n1, c1) (n2, c2) =
      let c = Loc.Set.compare n1 n2 in
      if c <> 0 then c else Config.compare c1 c2
  end in
  let module KSet = Set.Make (Key) in
  let rec go visiting need cfg =
    Engine.Budget.check budget;
    let need = Loc.Set.diff need cfg.Config.written in
    if Loc.Set.is_empty need then true
    else if KSet.mem (need, cfg) visiting then false
    else
      let visiting = KSet.add (need, cfg) visiting in
      match suffix_successors d cfg with
      | `Forbidden -> false
      | `Branches [] -> false
      | `Branches bs ->
        List.for_all
          (function `Bot -> true | `Cfg c -> go visiting need c)
          bs
  in
  go KSet.empty need cfg

(* ------------------------------------------------------------------ *)
(* The simulation game with commitment sets                            *)
(* ------------------------------------------------------------------ *)

type pair = { commit : Loc.Set.t; tgt : Config.t; src : Config.t }

module Pair_map = Map.Make (struct
  type t = pair
  let compare a b =
    let c = Loc.Set.compare a.commit b.commit in
    if c <> 0 then c
    else
      let c = Config.compare a.tgt b.tgt in
      if c <> 0 then c else Config.compare a.src b.src
end)

type answer = Const of bool | Dep of pair

type src_point =
  | Plain of Config.t
  | Pend_rel of Event.rel_kind * Config.t
  | Pend_acq of Event.acq_kind * Config.t

let mem_le (d : Domain.t) m1 m2 =
  List.for_all
    (fun x ->
      Value.le
        (Loc.Map.find_default ~default:Value.zero x m1)
        (Loc.Map.find_default ~default:Value.zero x m2))
    d.Domain.na_locs

(* The game logic is written once against this vtable and instantiated
   twice: the reference implementation ({!Slow}) recomputes lines, move
   lists, and the ∀-oracle suffix games from scratch (modulo the
   per-check [can_fail] memo it always had); the fast path serves all
   four from a {!Core} context over interned configuration ids.  Both
   must return identical values — the games may not drift. *)
type ops = {
  line : Config.t -> Config.line;
  moves : Config.t -> Config.move list;
  can_fail : Config.t -> bool;
  can_fulfill : need:Loc.Set.t -> Config.t -> bool;
}

let slow_ops ~budget (d : Domain.t) (fm : bool Cfg_map.t ref) : ops =
  {
    line = Config.line;
    moves = Config.moves d;
    can_fail = (fun cfg -> can_fail_universally_memo ~budget d fm cfg);
    can_fulfill =
      (fun ~need cfg -> can_fulfill_universally ~budget d ~need cfg);
  }

(* R' of beh-rel-write: (R ∖ F_src) ∪ (F_tgt ∖ F_src) ∪ {y | V_tgt(y) ⋢ V_src(y)}.
   The released memories range over the shared pre-release permission set. *)
let next_commit ~commit ~(ftgt : Loc.Set.t) ~(fsrc : Loc.Set.t)
    ~(vtgt : Value.t Loc.Map.t) ~(vsrc : Value.t Loc.Map.t) : Loc.Set.t =
  let base = Loc.Set.union (Loc.Set.diff commit fsrc) (Loc.Set.diff ftgt fsrc) in
  Loc.Map.fold
    (fun y vt acc ->
      let vs = Loc.Map.find_default ~default:Value.zero y vsrc in
      if Value.le vt vs then acc else Loc.Set.add y acc)
    vtgt base

let src_released (scfg : Config.t) : Value.t Loc.Map.t =
  Loc.Set.fold
    (fun y acc -> Loc.Map.add y (Config.read_mem scfg y) acc)
    scfg.Config.perm Loc.Map.empty

(* Answer one target label (Fig 2 rules) from a source configuration that
   sits at a labeled step.  Threads the commitment set. *)
let respond1 ~commit (scfg : Config.t) (ev : Event.t) :
    [ `Ok of Loc.Set.t * src_point | `Bot | `No ] =
  let open Event in
  match ev, Prog.step scfg.Config.prog with
  | Choose v, Prog.Choice f -> `Ok (commit, Plain { scfg with prog = f v })
  | Rlx_read (x, v), Prog.Do_read (Mode.Rrlx, y, f) when Loc.equal x y ->
    `Ok (commit, Plain { scfg with prog = f v })
  | Rlx_write (x, vt), Prog.Do_write (Mode.Wrlx, y, vs, p) when Loc.equal x y ->
    if Value.le vt vs then `Ok (commit, Plain { scfg with prog = p }) else `No
  | Out vt, Prog.Do_out (vs, p) ->
    if Value.le vt vs then `Ok (commit, Plain { scfg with prog = p }) else `No
  | Acq a, shape ->
    (* beh-acq-read: F_tgt ∪ R ⊆ F_src, R' = ∅ *)
    if
      not
        (Loc.Set.equal a.apre scfg.Config.perm
         && Loc.Set.subset
              (Loc.Set.union a.awritten commit)
              scfg.Config.written)
    then `No
    else
      let continue prog' =
        `Ok
          ( Loc.Set.empty,
            Plain
              (Config.apply_acquire { scfg with prog = prog' } ~post:a.apost
                 ~vnew:a.agained) )
      in
      (match a.akind, shape with
       | Acq_read (x, v), Prog.Do_read (Mode.Racq, y, f) when Loc.equal x y ->
         continue (f v)
       | Acq_fence, Prog.Do_fence (Mode.Facq, p) -> continue p
       | Acq_update (x, v), Prog.Do_update (y, f) when Loc.equal x y ->
         (match f v with
          | Prog.Upd_fault -> `Bot
          | Prog.Upd_read_only p -> continue p
          | Prog.Upd_write (v_new, p) ->
            let cfg' =
              Config.apply_acquire { scfg with prog = p } ~post:a.apost
                ~vnew:a.agained
            in
            `Ok (Loc.Set.empty, Pend_rel (Rel_update (x, v_new), cfg')))
       | _, _ -> `No)
  | Rel r, shape ->
    (* beh-rel-write: only P/P' and the value are constrained; written-set
       and memory disagreements become commitments. *)
    if not (Loc.Set.equal r.rpre scfg.Config.perm) then `No
    else
      let commit' =
        next_commit ~commit ~ftgt:r.rwritten ~fsrc:scfg.Config.written
          ~vtgt:r.rreleased ~vsrc:(src_released scfg)
      in
      let continue prog' =
        `Ok
          ( commit',
            Plain (Config.apply_release { scfg with prog = prog' } ~post:r.rpost)
          )
      in
      (match r.rkind, shape with
       | Rel_write (x, vt), Prog.Do_write (Mode.Wrel, y, vs, p)
         when Loc.equal x y ->
         if Value.le vt vs then continue p else `No
       | Rel_fence, Prog.Do_fence (Mode.Frel, p) -> continue p
       | Rel_fence, Prog.Do_fence (Mode.Facqrel, p) ->
         `Ok
           ( commit',
             Pend_acq
               (Event.Acq_fence,
                Config.apply_release { scfg with prog = p } ~post:r.rpost) )
       | Rel_fence_sc, Prog.Do_fence (Mode.Fsc, p) ->
         `Ok
           ( commit',
             Pend_acq
               (Event.Acq_fence_sc,
                Config.apply_release { scfg with prog = p } ~post:r.rpost) )
       | _, _ -> `No)
  | (Choose _ | Rlx_read _ | Rlx_write _ | Out _), _ -> `No

let respond_pending ~commit (point : src_point) (ev : Event.t) :
    [ `Ok of Loc.Set.t * src_point | `Bot | `No ] =
  let open Event in
  match point, ev with
  | Pend_rel (skind, scfg), Rel r ->
    if not (Loc.Set.equal r.rpre scfg.Config.perm) then `No
    else
      let kind_ok =
        match r.rkind, skind with
        | Rel_update (x, vt), Rel_update (y, vs) -> Loc.equal x y && Value.le vt vs
        | _, _ -> false
      in
      if not kind_ok then `No
      else
        let commit' =
          next_commit ~commit ~ftgt:r.rwritten ~fsrc:scfg.Config.written
            ~vtgt:r.rreleased ~vsrc:(src_released scfg)
        in
        `Ok (commit', Plain (Config.apply_release scfg ~post:r.rpost))
  | Pend_acq (k, scfg), Acq a ->
    if
      not
        (Loc.Set.equal a.apre scfg.Config.perm
         && Loc.Set.subset
              (Loc.Set.union a.awritten commit)
              scfg.Config.written
         && Event.compare_kinds_a a.akind k = 0)
    then `No
    else
      `Ok
        ( Loc.Set.empty,
          Plain (Config.apply_acquire scfg ~post:a.apost ~vnew:a.agained) )
  | (Plain _ | Pend_rel _ | Pend_acq _), _ -> `No

let rec consume (ops : ops) ~commit (point : src_point) (evs : Event.t list)
    (next_t : Config.next) : answer =
  match evs with
  | [] ->
    (match point with
     | Pend_rel _ | Pend_acq _ -> Const false
     | Plain scfg ->
       (match next_t with
        | Config.Bot -> Const (ops.can_fail scfg)
        | Config.Cont tcfg' -> Dep { commit; tgt = tcfg'; src = scfg }))
  | ev :: rest ->
    (match point with
     | Pend_rel _ | Pend_acq _ ->
       (match respond_pending ~commit point ev with
        | `Ok (commit', point') -> consume ops ~commit:commit' point' rest next_t
        | `Bot -> Const true
        | `No -> Const false)
     | Plain scfg ->
       let ln = ops.line scfg in
       (match ln.Config.line_end with
        | Config.L_bot -> Const true
        | Config.L_label scfg' ->
          (match respond1 ~commit scfg' ev with
           | `Ok (commit', point') -> consume ops ~commit:commit' point' rest next_t
           | `Bot -> Const true
           | `No ->
             (* the source may still escape via late UB for every oracle *)
             Const (ops.can_fail scfg))
        | Config.L_term _ | Config.L_diverge ->
          Const (ops.can_fail scfg)))

type node = { local_ok : bool; deps : answer list }

let analyze (ops : ops) (d : Domain.t) (p : pair) : node =
  (* Fig 6: [∀Ω ∃ ⊥-suffix] disjunct first — it matches everything. *)
  if ops.can_fail p.src then { local_ok = true; deps = [] }
  else
    let ln_t = ops.line p.tgt in
    let need = Loc.Set.union ln_t.Config.written_max p.commit in
    if not (ops.can_fulfill ~need p.src) then { local_ok = false; deps = [] }
    else
      match ln_t.Config.line_end with
      | Config.L_bot ->
        (* only matched by the ⊥-escape, which failed *)
        { local_ok = false; deps = [] }
      | Config.L_diverge -> { local_ok = true; deps = [] }
      | Config.L_term (v, tcfg') ->
        let ln_s = ops.line p.src in
        (match ln_s.Config.line_end with
         | Config.L_term (v', scfg') ->
           let ok =
             Value.le v v'
             && Loc.Set.subset
                  (Loc.Set.union tcfg'.Config.written p.commit)
                  scfg'.Config.written
             && mem_le d tcfg'.Config.mem scfg'.Config.mem
           in
           { local_ok = ok; deps = [] }
         | Config.L_bot | Config.L_diverge | Config.L_label _ ->
           { local_ok = false; deps = [] })
      | Config.L_label tcfg' ->
        let ln_s = ops.line p.src in
        (match ln_s.Config.line_end with
         | Config.L_label scfg' ->
           let answers =
             List.map
               (fun (evs, next_t) ->
                 consume ops ~commit:p.commit (Plain scfg') evs next_t)
               (ops.moves tcfg')
           in
           { local_ok = true; deps = answers }
         | Config.L_bot (* would have been caught by the escape *)
         | Config.L_term _ | Config.L_diverge ->
           { local_ok = false; deps = [] })

(** The set-based reference checker: recomputes every line, move list,
    and suffix game from scratch (modulo the per-check [can_fail] memo it
    always had) and runs the greatest fixpoint by repeated full passes.
    The differential-testing oracle for the fast path below. *)
module Slow = struct
  let check_pairs_count ?(budget = Engine.Budget.unlimited) (d : Domain.t)
      (roots : pair list) : bool * int =
    let fm = ref Cfg_map.empty in
    let ops = slow_ops ~budget d fm in
    let nodes : node Pair_map.t ref = ref Pair_map.empty in
    let rec explore p =
      if not (Pair_map.mem p !nodes) then begin
        Engine.Budget.spend_state budget;
        nodes := Pair_map.add p { local_ok = true; deps = [] } !nodes;
        let node = analyze ops d p in
        nodes := Pair_map.add p node !nodes;
        List.iter (function Dep q -> explore q | Const _ -> ()) node.deps
      end
    in
    List.iter explore roots;
    let alive = ref (Pair_map.map (fun _ -> true) !nodes) in
    let changed = ref true in
    while !changed do
      changed := false;
      Pair_map.iter
        (fun p node ->
          Engine.Budget.check budget;
          if Pair_map.find p !alive then begin
            let ok =
              node.local_ok
              && List.for_all
                   (function Const b -> b | Dep q -> Pair_map.find q !alive)
                   node.deps
            in
            if not ok then begin
              alive := Pair_map.add p false !alive;
              changed := true
            end
          end)
        !nodes
    done;
    ( List.for_all (fun p -> Pair_map.find p !alive) roots,
      Pair_map.cardinal !nodes )

  let check_pairs ?budget (d : Domain.t) (roots : pair list) : bool =
    fst (check_pairs_count ?budget d roots)
end

(* ------------------------------------------------------------------ *)
(* Fast path: interned configurations, memoized suffix games           *)
(* ------------------------------------------------------------------ *)

(* Memoized suffix successors over interned ids.  `Bot branches are
   trivially winning in both suffix games, so only the configuration
   successors are kept; [S_term] records the terminated case (an empty
   branch list), which loses, while a branch list emptied by dropping
   `Bot entries wins. *)
type suffix = S_forbidden | S_term | S_branches of int array

let suffix_id_ops (core : Core.t) (budget : Engine.Budget.t) =
  let d = Core.domain core in
  let pk = Core.packed core in
  let rel c = Packed.release_choices pk (Packed.mask_of_set pk c.Config.perm) in
  let suffix_memo : (int, suffix) Hashtbl.t = Hashtbl.create 64 in
  let suffix id =
    match Hashtbl.find_opt suffix_memo id with
    | Some s -> s
    | None ->
      let s =
        match suffix_successors_gen ~rel d (Core.cfg core id) with
        | `Forbidden -> S_forbidden
        | `Branches [] -> S_term
        | `Branches bs ->
          S_branches
            (Array.of_list
               (List.filter_map
                  (function
                    | `Bot -> None
                    | `Cfg c -> Some (Core.intern core c))
                  bs))
      in
      Hashtbl.replace suffix_memo id s;
      s
  in
  (* can_fail: result memo (context-independent, as in the reference:
     all branching is adversarial, so a back edge is a genuine cycle and
     false is the exact game value); [visiting] is the DFS path. *)
  let fail_memo : (int, bool) Hashtbl.t = Hashtbl.create 64 in
  let fail_visiting : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let rec can_fail_id id =
    Engine.Budget.check budget;
    match Hashtbl.find_opt fail_memo id with
    | Some b -> b
    | None ->
      if Hashtbl.mem fail_visiting id then false
      else begin
        Hashtbl.add fail_visiting id ();
        let result =
          match suffix id with
          | S_forbidden | S_term -> false
          | S_branches ids -> Array.for_all can_fail_id ids
        in
        Hashtbl.remove fail_visiting id;
        Hashtbl.replace fail_memo id result;
        result
      end
  in
  (* can_fulfill: interior nodes are path-dependent (a back edge to the
     DFS path loses only along that path), so only completed {e
     top-level} queries are memoized — those are the exact game values
     the reference computes from scratch at every pair. *)
  let fulfill_memo : (int * int, bool) Hashtbl.t = Hashtbl.create 64 in
  let can_fulfill_id need id =
    match Hashtbl.find_opt fulfill_memo (need, id) with
    | Some b -> b
    | None ->
      let visiting : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
      let rec go need id =
        Engine.Budget.check budget;
        let need = need land lnot (Core.written_mask core id) in
        if need = 0 then true
        else if Hashtbl.mem visiting (need, id) then false
        else begin
          Hashtbl.add visiting (need, id) ();
          let result =
            match suffix id with
            | S_forbidden | S_term -> false
            | S_branches ids -> Array.for_all (fun c -> go need c) ids
          in
          Hashtbl.remove visiting (need, id);
          result
        end
      in
      let b = go need id in
      Hashtbl.add fulfill_memo (need, id) b;
      b
  in
  (can_fail_id, can_fulfill_id)

(* An [answer] at the id level: commitment mask, target id, source id. *)
type fanswer = FConst of bool | FDep of int * int * int

(* Same structure as [Refine.solve_fast], with the commitment mask
   threaded through pair keys and answer-memo keys.  Identical phase-1
   DFS (same pair set, order, and budget spend points as the reference);
   gfp by reverse-dependency propagation.  The source's answer to one
   target move is a function of (commit mask, source line-end id, target
   line-end id, move index), so answers are shared between every pair
   reaching the same post-line frontier under the same commitment. *)
let solve_fast ?(budget = Engine.Budget.unlimited) (core : Core.t)
    (d : Domain.t) (roots : pair list) : bool * int =
  let pk = Core.packed core in
  let can_fail_id, can_fulfill_id = suffix_id_ops core budget in
  let mask_of = Packed.mask_of_set pk in
  (* Mirrors [consume] at id granularity; [commit]/[cmask] are the same
     set in both representations. *)
  let rec consume_fast ~commit ~cmask (point : src_point)
      (evs : Event.t list) (next_t : int) : fanswer =
    match evs with
    | [] ->
      (match point with
       | Pend_rel _ | Pend_acq _ -> FConst false
       | Plain scfg ->
         let sid = Core.intern core scfg in
         if next_t < 0 then FConst (can_fail_id sid)
         else FDep (cmask, next_t, sid))
    | ev :: rest ->
      (match point with
       | Pend_rel _ | Pend_acq _ ->
         (match respond_pending ~commit point ev with
          | `Ok (commit', point') ->
            consume_fast ~commit:commit' ~cmask:(mask_of commit') point' rest
              next_t
          | `Bot -> FConst true
          | `No -> FConst false)
       | Plain scfg ->
         let sid = Core.intern core scfg in
         let ln = Core.line_id core sid in
         (match ln.Config.line_end with
          | Config.L_bot -> FConst true
          | Config.L_label scfg' ->
            (match respond1 ~commit scfg' ev with
             | `Ok (commit', point') ->
               consume_fast ~commit:commit' ~cmask:(mask_of commit') point'
                 rest next_t
             | `Bot -> FConst true
             | `No ->
               (* the source may still escape via late UB for every oracle *)
               FConst (can_fail_id sid))
          | Config.L_term _ | Config.L_diverge -> FConst (can_fail_id sid)))
  in
  (* (commit mask, source line-end id, target line-end id, move index) *)
  let answer_memo : (int * int * int * int, fanswer) Hashtbl.t =
    Hashtbl.create 64
  in
  let analyze_fast (cmask : int) (tid : int) (sid : int) :
      bool * fanswer list =
    (* Fig 6: [forall-Omega exists bottom-suffix] disjunct first — it
       matches everything. *)
    if can_fail_id sid then (true, [])
    else
      let ln_t = Core.line_id core tid in
      let need = Core.line_wmax_mask core tid lor cmask in
      if not (can_fulfill_id need sid) then (false, [])
      else
        match ln_t.Config.line_end with
        | Config.L_bot ->
          (* only matched by the bottom-escape, which failed *)
          (false, [])
        | Config.L_diverge -> (true, [])
        | Config.L_term (v, _) ->
          let ln_s = Core.line_id core sid in
          (match ln_s.Config.line_end with
           | Config.L_term (v', _) ->
             let t'id = Core.line_next core tid in
             let s'id = Core.line_next core sid in
             let ok =
               Value.le v v'
               && (Core.written_mask core t'id lor cmask)
                  land lnot (Core.written_mask core s'id)
                  = 0
               && mem_le d
                    (Core.cfg core t'id).Config.mem
                    (Core.cfg core s'id).Config.mem
             in
             (ok, [])
           | Config.L_bot | Config.L_diverge | Config.L_label _ ->
             (false, []))
        | Config.L_label _ ->
          let ln_s = Core.line_id core sid in
          (match ln_s.Config.line_end with
           | Config.L_label _ ->
             let t'id = Core.line_next core tid in
             let s'id = Core.line_next core sid in
             let commit = Packed.set_of_mask pk cmask in
             let moves = Core.moves_id core t'id in
             let nexts = Core.moves_next core t'id in
             let answers =
               List.mapi
                 (fun k (evs, _) ->
                   let key = (cmask, s'id, t'id, k) in
                   match Hashtbl.find_opt answer_memo key with
                   | Some a -> a
                   | None ->
                     let a =
                       consume_fast ~commit ~cmask
                         (Plain (Core.cfg core s'id))
                         evs nexts.(k)
                     in
                     Hashtbl.add answer_memo key a;
                     a)
                 moves
             in
             (true, answers)
           | Config.L_bot (* would have been caught by the escape *)
           | Config.L_term _ | Config.L_diverge ->
             (false, []))
  in
  let pair_ids : (int * int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let local_ok = ref (Bytes.make 64 '\001') in
  let deps = ref (Array.make 64 [||]) in
  let count = ref 0 in
  let ensure n =
    if n > Bytes.length !local_ok then begin
      let lo = Bytes.make (2 * Bytes.length !local_ok) '\001' in
      Bytes.blit !local_ok 0 lo 0 (Bytes.length !local_ok);
      local_ok := lo;
      let dp = Array.make (2 * Array.length !deps) [||] in
      Array.blit !deps 0 dp 0 (Array.length !deps);
      deps := dp
    end
  in
  let rec explore (cmask : int) (tid : int) (sid : int) : int =
    let key = (cmask, tid, sid) in
    match Hashtbl.find_opt pair_ids key with
    | Some pid -> pid
    | None ->
      Engine.Budget.spend_state budget;
      let pid = !count in
      incr count;
      ensure !count;
      Hashtbl.add pair_ids key pid;
      let node_ok, node_deps = analyze_fast cmask tid sid in
      let ok = ref node_ok in
      let dep_ids =
        List.filter_map
          (function
            | FConst true -> None
            | FConst false ->
              ok := false;
              None
            | FDep (c, t, s) -> Some (explore c t s))
          node_deps
      in
      if not !ok then Bytes.set !local_ok pid '\000';
      !deps.(pid) <- Array.of_list dep_ids;
      pid
  in
  let root_ids =
    List.map
      (fun p ->
        explore (mask_of p.commit) (Core.intern core p.tgt)
          (Core.intern core p.src))
      roots
  in
  let n = !count in
  let rdeps = Array.make (max n 1) [] in
  for pid = 0 to n - 1 do
    Array.iter (fun q -> rdeps.(q) <- pid :: rdeps.(q)) !deps.(pid)
  done;
  let alive = Array.make (max n 1) true in
  let stack = ref [] in
  for pid = 0 to n - 1 do
    if Bytes.get !local_ok pid = '\000' then begin
      alive.(pid) <- false;
      stack := pid :: !stack
    end
  done;
  let rec drain () =
    match !stack with
    | [] -> ()
    | pid :: rest ->
      stack := rest;
      Engine.Budget.check budget;
      List.iter
        (fun r ->
          if alive.(r) then begin
            alive.(r) <- false;
            stack := r :: !stack
          end)
        rdeps.(pid);
      drain ()
  in
  drain ();
  (List.for_all (fun pid -> alive.(pid)) root_ids, n)

let check_pairs_count ?budget (d : Domain.t) (roots : pair list) :
    bool * int =
  match Core.create d with
  | None -> Slow.check_pairs_count ?budget d roots
  | Some core ->
    (* Packability of the roots extends to every reachable pair: see
       [Refine.check_pairs_count]; commitment sets only collect locations
       from written sets and released memories, which stay inside the
       domain. *)
    (match
       List.iter
         (fun p ->
           ignore (Packed.mask_of_set (Core.packed core) p.commit);
           ignore (Core.intern core p.tgt);
           ignore (Core.intern core p.src))
         roots
     with
     | () -> solve_fast ?budget core d roots
     | exception Packed.Unpackable -> Slow.check_pairs_count ?budget d roots)

let check_pairs ?budget (d : Domain.t) (roots : pair list) : bool =
  fst (check_pairs_count ?budget d roots)

(** Budgeted three-valued form of {!check_pairs}. *)
let check_pairs_verdict ?budget (d : Domain.t) (roots : pair list) :
    unit Engine.Verdict.t =
  Engine.Verdict.run (fun () ->
      Engine.Verdict.of_bool (check_pairs ?budget d roots))

(** [check d ~src ~tgt] decides [σ_tgt ⊑w σ_src] (Def 3.3) over the finite
    domain: advanced behavioral refinement for every oracle and every
    initial permission set and memory. *)
let check_count ?(quantify_written = false) ?(symmetry = false) ?budget
    (d : Domain.t) ~(src : Stmt.t) ~(tgt : Stmt.t) : bool * int =
  Config.check_no_mixing [ src; tgt ];
  let perms = Domain.subsets d.Domain.na_locs in
  let writtens =
    if quantify_written then Domain.subsets d.Domain.na_locs
    else [ Loc.Set.empty ]
  in
  let mems = Domain.memories d in
  let roots =
    List.concat_map
      (fun perm ->
        List.concat_map
          (fun written ->
            List.map
              (fun mem ->
                {
                  commit = Loc.Set.empty;
                  tgt = Config.make ~perm ~written ~mem (Prog.init tgt);
                  src = Config.make ~perm ~written ~mem (Prog.init src);
                })
              mems)
          writtens)
      perms
  in
  let roots =
    if not symmetry then roots
    else
      match Core.Symmetry.automorphisms d [ src; tgt ] with
      | [] -> roots
      | autos ->
        List.filter
          (fun p ->
            Core.Symmetry.minimal_env autos ~perm:p.tgt.Config.perm
              ~written:p.tgt.Config.written ~mem:p.tgt.Config.mem)
          roots
  in
  check_pairs_count ?budget d roots

let check ?quantify_written ?symmetry ?budget (d : Domain.t) ~(src : Stmt.t)
    ~(tgt : Stmt.t) : bool =
  fst (check_count ?quantify_written ?symmetry ?budget d ~src ~tgt)

(** Budgeted three-valued form of {!check}: [Unknown] on budget
    exhaustion, [Mixed_access], or any other trapped exception. *)
let check_verdict ?quantify_written ?symmetry ?budget (d : Domain.t)
    ~(src : Stmt.t) ~(tgt : Stmt.t) : unit Engine.Verdict.t =
  Engine.Verdict.run (fun () ->
      Engine.Verdict.of_bool
        (check ?quantify_written ?symmetry ?budget d ~src ~tgt))
