(** The paper's examples as a machine-readable corpus.

    Conventions: [X], [W] are non-atomic locations; [Y], [Z] atomic;
    [a]..[d] registers.  Transformation snippets end with an observer
    [return] so register results are behaviors. *)

type verdict = Sound | Unsound

val verdict_to_string : verdict -> string

type transformation = {
  name : string;
  paper_ref : string;  (** example / section number in the paper *)
  src : string;
  tgt : string;
  simple : verdict;  (** expected under simple refinement (Def 2.4) *)
  advanced : verdict;  (** expected under advanced refinement (Def 3.3) *)
}

val transformations : transformation list
val find_transformation : string -> transformation option

(** Concurrent litmus programs (for E4). *)
type concurrent = {
  cname : string;
  cref : string;
  threads : string;  (** [|||]-separated program text *)
}

val concurrent_programs : concurrent list

(** One row of the E15 differential backend grid: a litmus program, its
    designated weak outcome (one return value per thread), and the
    expected allowed/forbidden verdict per backend name. *)
type grid_entry = {
  g : concurrent;
  weak : int list;
  allowed : (string * bool) list;
}

(** The grid corpus (SB, MP, LB and IRIW-style rows): the classic
    separations — SB separates TSO from SC, MP-rlx separates ARMv8 from
    TSO, LB separates PS_na from ARMv8. *)
val grid_programs : grid_entry list

(** The E15 pass-soundness grid: (transformation name, context name)
    pairs — each SEQ-validated pass is plugged into the context and
    re-checked as behavior-set refinement under every backend. *)
val grid_passes : (string * string) list

(** Concurrent contexts for the adequacy experiment (E5), following the
    corpus location conventions. *)
val contexts : (string * string) list
