(** Engine-swept litmus/soundness matrices shared by the bench harness,
    the CLI drivers, and the golden-table regression tests.

    Rendering discipline: with [stats:false] every rendered byte is a
    deterministic function of the corpus (verdicts, state/pair counts) —
    that is what the golden tests pin down.  [stats:true] appends one
    final wall-clock [ms] column, the only column allowed to differ
    between runs or [--jobs] settings. *)

open Lang

(** One row of the E1/E2 transformation soundness matrix. *)
type e12_row = {
  tr : Catalog.transformation;
  simple_got : Catalog.verdict;
  advanced_got : Catalog.verdict;
  pairs : int;  (** simulation pairs explored (simple + advanced) *)
  wall_ms : float;
}

(** Expected and computed verdicts agree. *)
val e12_ok : e12_row -> bool

val e12_row :
  ?values:Value.t list -> ?budget:Engine.Budget.t ->
  Catalog.transformation -> e12_row

(** The full corpus, one engine task per transformation. *)
val e12_rows :
  ?pool:Engine.Pool.t -> ?jobs:int -> ?values:Value.t list -> unit ->
  e12_row list

(** The fault-tolerant E1/E2 sweep: one supervised outcome per corpus
    entry, in corpus order; never raises.  Each task attempt gets a fresh
    budget from [budget]; budget exhaustion and trapped exceptions (e.g.
    [Config.Mixed_access]) become [Error] outcomes instead of aborting the
    sweep (see {!Engine.Sweep.run_verdict}).  [corpus] defaults to the full
    {!Catalog.transformations}. *)
val e12_rows_v :
  ?pool:Engine.Pool.t -> ?jobs:int -> ?values:Value.t list ->
  ?budget:Engine.Budget.spec -> ?retries:int -> ?faults:Engine.Faults.plan ->
  ?corpus:Catalog.transformation list -> unit ->
  (Catalog.transformation * e12_row Engine.Sweep.outcome) list

val render_e12 : ?stats:bool -> e12_row list -> string

(** Render supervised outcomes: byte-identical to {!render_e12} when every
    outcome is [Ok]; failed tasks get an [UNKNOWN(reason)] row and the
    footer counts them (only when nonzero). *)
val render_e12_v :
  ?stats:bool ->
  (Catalog.transformation * e12_row Engine.Sweep.outcome) list -> string

(** One row of the E4 PS_na litmus table. *)
type e4_row = {
  c : Catalog.concurrent;
  states : int;
  races : bool;
  truncated : bool;
  behaviors : string;  (** pretty-printed behavior set *)
  wall_ms : float;
}

val e4_row :
  ?params:Promising.Thread.params -> ?memo:Promising.Machine.memo ->
  ?budget:Engine.Budget.t -> Catalog.concurrent -> e4_row

(** The full litmus catalog, one engine task per program.  Worker domains
    keep a persistent per-domain certification memo across their tasks
    (never shared between domains); this warms timing only — states,
    races and behaviors are memo-independent. *)
val e4_rows :
  ?pool:Engine.Pool.t -> ?jobs:int -> ?params:Promising.Thread.params ->
  unit -> e4_row list

(** The fault-tolerant E4 sweep; per-domain memo as {!e4_rows}, supervised
    outcomes as {!e12_rows_v}. *)
val e4_rows_v :
  ?pool:Engine.Pool.t -> ?jobs:int -> ?params:Promising.Thread.params ->
  ?budget:Engine.Budget.spec -> ?retries:int -> ?faults:Engine.Faults.plan ->
  ?corpus:Catalog.concurrent list -> unit ->
  (Catalog.concurrent * e4_row Engine.Sweep.outcome) list

val render_e4 : ?stats:bool -> e4_row list -> string

(** Render supervised E4 outcomes; byte-identical to {!render_e4} when
    every outcome is [Ok]. *)
val render_e4_v :
  ?stats:bool ->
  (Catalog.concurrent * e4_row Engine.Sweep.outcome) list -> string

(** Render E5 adequacy rows (see {!Adequacy}); same [stats] discipline
    ([ms] is omitted because rows carry no timing — the bench harness
    times whole tables). *)
val render_e5 : ?stats:bool -> Adequacy.row list -> string

(** Render supervised E5 outcomes (from {!Adequacy.run_v}); byte-identical
    to {!render_e5} when every outcome is [Ok]. *)
val render_e5_v :
  ?stats:bool ->
  (Catalog.transformation * Adequacy.row Engine.Sweep.outcome) list -> string

(** One row of the E15 N-model differential backend grid: the litmus
    program explored under every backend in {!e15_models}, with
    per-backend allowed/forbidden verdicts for the designated weak
    outcome and an inclusion-chain check (SC ⊆ TSO ⊆ ARMv8). *)
type e15_row = {
  ge : Catalog.grid_entry;
  cells : (string * bool) list;  (** backend name -> weak outcome allowed *)
  chain_ok : bool;  (** SC ⊆ TSO ⊆ ARMv8 held on this row *)
  truncated : bool;
  wall_ms : float;
}

(** Backends swept by the litmus grid, in strength order:
    ["sc"; "tso"; "armv8"; "ps"]. *)
val e15_models : string list

(** Backends swept by the pass-soundness grid (adds ["catchfire"]). *)
val e15p_models : string list

(** Every cell matches the catalog expectation and the chain held. *)
val e15_ok : e15_row -> bool

val e15_row :
  ?values:Value.t list -> ?max_states:int -> ?budget:Engine.Budget.t ->
  Catalog.grid_entry -> e15_row

(** The full grid corpus, one engine task per litmus program. *)
val e15_rows :
  ?pool:Engine.Pool.t -> ?jobs:int -> ?values:Value.t list -> unit ->
  e15_row list

(** The fault-tolerant E15 sweep; supervised outcomes as
    {!e12_rows_v}.  [corpus] defaults to {!Catalog.grid_programs}. *)
val e15_rows_v :
  ?pool:Engine.Pool.t -> ?jobs:int -> ?values:Value.t list ->
  ?budget:Engine.Budget.spec -> ?retries:int -> ?faults:Engine.Faults.plan ->
  ?corpus:Catalog.grid_entry list -> unit ->
  (Catalog.grid_entry * e15_row Engine.Sweep.outcome) list

val render_e15 : ?stats:bool -> e15_row list -> string

(** Render supervised E15 outcomes; byte-identical to {!render_e15}
    when every outcome is [Ok]. *)
val render_e15_v :
  ?stats:bool ->
  (Catalog.grid_entry * e15_row Engine.Sweep.outcome) list -> string

(** One row of the E15 pass-soundness grid: a SEQ-validated
    transformation plugged into a concurrent context and re-checked as
    behavior-set refinement under every backend in {!e15p_models} —
    showing where each pass over-/under-approximates hardware. *)
type e15p_row = {
  tr : Catalog.transformation;
  ctx_name : string;
  cells : (string * bool) list;  (** backend name -> tgt refines src *)
  truncated : bool;
  wall_ms : float;
}

val e15p_row :
  ?values:Value.t list -> ?max_states:int -> ?budget:Engine.Budget.t ->
  string * string -> e15p_row

(** The full pass grid, one engine task per (transformation, context)
    pair from {!Catalog.grid_passes}. *)
val e15p_rows :
  ?pool:Engine.Pool.t -> ?jobs:int -> ?values:Value.t list -> unit ->
  e15p_row list

(** The fault-tolerant pass-grid sweep. *)
val e15p_rows_v :
  ?pool:Engine.Pool.t -> ?jobs:int -> ?values:Value.t list ->
  ?budget:Engine.Budget.spec -> ?retries:int -> ?faults:Engine.Faults.plan ->
  ?corpus:(string * string) list -> unit ->
  ((string * string) * e15p_row Engine.Sweep.outcome) list

val render_e15p : ?stats:bool -> e15p_row list -> string

(** Render supervised pass-grid outcomes; byte-identical to
    {!render_e15p} when every outcome is [Ok]. *)
val render_e15p_v :
  ?stats:bool ->
  ((string * string) * e15p_row Engine.Sweep.outcome) list -> string
