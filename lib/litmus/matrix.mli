(** Engine-swept litmus/soundness matrices shared by the bench harness,
    the CLI drivers, and the golden-table regression tests.

    Rendering discipline: with [stats:false] every rendered byte is a
    deterministic function of the corpus (verdicts, state/pair counts) —
    that is what the golden tests pin down.  [stats:true] appends one
    final wall-clock [ms] column, the only column allowed to differ
    between runs or [--jobs] settings. *)

open Lang

(** One row of the E1/E2 transformation soundness matrix. *)
type e12_row = {
  tr : Catalog.transformation;
  simple_got : Catalog.verdict;
  advanced_got : Catalog.verdict;
  pairs : int;  (** simulation pairs explored (simple + advanced) *)
  wall_ms : float;
}

(** Expected and computed verdicts agree. *)
val e12_ok : e12_row -> bool

val e12_row : ?values:Value.t list -> Catalog.transformation -> e12_row

(** The full corpus, one engine task per transformation. *)
val e12_rows :
  ?pool:Engine.Pool.t -> ?jobs:int -> ?values:Value.t list -> unit ->
  e12_row list

val render_e12 : ?stats:bool -> e12_row list -> string

(** One row of the E4 PS_na litmus table. *)
type e4_row = {
  c : Catalog.concurrent;
  states : int;
  races : bool;
  truncated : bool;
  behaviors : string;  (** pretty-printed behavior set *)
  wall_ms : float;
}

val e4_row :
  ?params:Promising.Thread.params -> ?memo:Promising.Machine.memo ->
  Catalog.concurrent -> e4_row

(** The full litmus catalog, one engine task per program.  Worker domains
    keep a persistent per-domain certification memo across their tasks
    (never shared between domains); this warms timing only — states,
    races and behaviors are memo-independent. *)
val e4_rows :
  ?pool:Engine.Pool.t -> ?jobs:int -> ?params:Promising.Thread.params ->
  unit -> e4_row list

val render_e4 : ?stats:bool -> e4_row list -> string

(** Render E5 adequacy rows (see {!Adequacy}); same [stats] discipline
    ([ms] is omitted because rows carry no timing — the bench harness
    times whole tables). *)
val render_e5 : ?stats:bool -> Adequacy.row list -> string
