(** Empirical validation of the adequacy theorem (Thm 6.2, experiment E5):
    every SEQ-(weakly-)validated transformation must contextually refine in
    PS_na for every context in the library; a single
    SEQ-accepts/PS_na-refutes pair would be a counterexample. *)

type row = {
  tr : Catalog.transformation;
  seq_simple : bool;
  seq_advanced : bool;
  seq_pairs : int;  (** SEQ simulation pairs explored (simple + advanced) *)
  contexts : (string * bool * bool) list;
      (** context name, PS_na refines, exploration complete *)
  states : int;  (** PS_na states explored, summed over the contexts *)
  memo_hits : int;
      (** certification-memo hits — the row's explorations share one memo
          context, so this is deterministic unless [memo] was pre-warmed *)
}

(** Does the adequacy implication hold on this row? *)
val row_ok : row -> bool

(** Check one corpus transformation against the context library.  All
    explorations of the row share [memo] (fresh by default), so the source
    thread's certification verdicts are computed once across contexts. *)
val check_transformation :
  ?params:Promising.Thread.params ->
  ?contexts:(string * string) list ->
  ?memo:Promising.Machine.memo ->
  ?budget:Engine.Budget.t ->
  Catalog.transformation ->
  row

(** Run the experiment over (a sublist of) the corpus, swept in parallel
    by the engine when [pool]/[jobs] ask for it (each row gets a fresh
    memo context, so results and stats are identical for every [jobs]). *)
val run :
  ?pool:Engine.Pool.t ->
  ?jobs:int ->
  ?params:Promising.Thread.params ->
  ?contexts:(string * string) list ->
  ?corpus:Catalog.transformation list ->
  unit ->
  row list

(** The fault-tolerant E5 sweep: one supervised outcome per corpus row, in
    corpus order; never raises.  Each row attempt gets a fresh budget from
    [budget]; budget exhaustion and trapped exceptions become [Error]
    outcomes (see {!Engine.Sweep.run_verdict}). *)
val run_v :
  ?pool:Engine.Pool.t ->
  ?jobs:int ->
  ?params:Promising.Thread.params ->
  ?contexts:(string * string) list ->
  ?budget:Engine.Budget.spec ->
  ?retries:int ->
  ?faults:Engine.Faults.plan ->
  ?corpus:Catalog.transformation list ->
  unit ->
  (Catalog.transformation * row Engine.Sweep.outcome) list
