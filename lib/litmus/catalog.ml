(** The paper's examples as a machine-readable corpus.

    Conventions: [X], [W] are non-atomic locations; [Y], [Z] are atomic
    locations; [a]..[d] are registers.  Transformation snippets are closed
    with an observer [return] so register results are behaviors (mirroring
    the paper's contexts [C = ·; return(a)]). *)

open Lang

type verdict = Sound | Unsound

let verdict_to_string = function Sound -> "sound" | Unsound -> "unsound"

type transformation = {
  name : string;
  paper_ref : string;  (** example / section number in the paper *)
  src : string;
  tgt : string;
  simple : verdict;  (** expected under simple refinement (Def 2.4) *)
  advanced : verdict;  (** expected under advanced refinement (Def 3.3) *)
}

let t name paper_ref ~src ~tgt ~simple ~advanced =
  { name; paper_ref; src; tgt; simple; advanced }

let transformations =
  [
    (* --- §1 motivating examples ------------------------------------ *)
    t "slf-basic" "Ex 1.1"
      ~src:"X.store(na, 1); b = X.load(na); return b"
      ~tgt:"X.store(na, 1); b = 1; return b"
      ~simple:Sound ~advanced:Sound;
    t "licm-pattern" "Ex 1.3"
      ~src:"while b == 0 { a = X.load(na); b = Y.load(rlx) }; return a"
      ~tgt:"c = X.load(na); while b == 0 { a = c; b = Y.load(rlx) }; return a"
      ~simple:Sound ~advanced:Sound;
    (* --- Example 2.5: reordering non-atomics ----------------------- *)
    t "reorder-na-rw-diff" "Ex 2.5"
      ~src:"a = X.load(na); W.store(na, 1); return a"
      ~tgt:"W.store(na, 1); a = X.load(na); return a"
      ~simple:Sound ~advanced:Sound;
    t "reorder-na-rw-same" "Ex 2.5"
      ~src:"a = X.load(na); X.store(na, 1); return a"
      ~tgt:"X.store(na, 1); a = X.load(na); return a"
      ~simple:Unsound ~advanced:Unsound;
    t "reorder-na-ww-diff" "Ex 2.5 (variant)"
      ~src:"X.store(na, 1); W.store(na, 2)"
      ~tgt:"W.store(na, 2); X.store(na, 1)"
      ~simple:Sound ~advanced:Sound;
    (* --- Example 2.6: eliminations/introductions ------------------- *)
    t "overwritten-store-elim" "Ex 2.6(i)"
      ~src:"X.store(na, 1); X.store(na, 2)"
      ~tgt:"X.store(na, 2)"
      ~simple:Sound ~advanced:Sound;
    t "store-to-load-fwd" "Ex 2.6(ii)"
      ~src:"X.store(na, 1); a = X.load(na); return a"
      ~tgt:"X.store(na, 1); a = 1; return a"
      ~simple:Sound ~advanced:Sound;
    t "load-to-load-fwd" "Ex 2.6(iii)"
      ~src:"a = X.load(na); b = X.load(na); return a + 3*b"
      ~tgt:"a = X.load(na); b = a; return a + 3*b"
      ~simple:Sound ~advanced:Sound;
    t "read-before-write-elim" "Ex 2.6(iv)"
      ~src:"a = X.load(na); X.store(na, a); return a"
      ~tgt:"a = X.load(na); return a"
      ~simple:Sound ~advanced:Sound;
    t "write-after-read-intro" "Ex 2.6 (converse of iv)"
      ~src:"a = X.load(na); if a != 1 { X.store(na, 1) }; return a"
      ~tgt:"a = X.load(na); X.store(na, 1); return a"
      ~simple:Unsound ~advanced:Unsound;
    t "redundant-store-intro" "Ex 2.6(i')"
      ~src:"X.store(na, 2)"
      ~tgt:"X.store(na, 1); X.store(na, 2)"
      ~simple:Sound ~advanced:Sound;
    t "copy-to-load-intro" "Ex 2.6(iii')"
      (* the converse of load-to-load forwarding: replacing a register
         copy by a re-load — load introduction, sound in SEQ *)
      ~src:"a = X.load(na); b = a; return a + 3*b"
      ~tgt:"a = X.load(na); b = X.load(na); return a + 3*b"
      ~simple:Sound ~advanced:Sound;
    (* --- Example 2.7: reordering across loops ---------------------- *)
    t "write-before-loop" "Ex 2.7"
      ~src:"while b == 0 { skip }; X.store(na, 1)"
      ~tgt:"X.store(na, 1); while b == 0 { skip }"
      ~simple:Unsound ~advanced:Unsound;
    t "write-before-loop-after-write" "Ex 2.7 (variant)"
      ~src:"a = X.load(na); if a != 1 { X.store(na, 1) }; \
            while b == 0 { skip }; X.store(na, 2)"
      ~tgt:"a = X.load(na); if a != 1 { X.store(na, 1) }; \
            X.store(na, 2); while b == 0 { skip }"
      ~simple:Unsound ~advanced:Unsound;
    t "read-before-loop" "Ex 2.7"
      ~src:"while b == 0 { skip }; a = X.load(na); return a"
      ~tgt:"a = X.load(na); while b == 0 { skip }; return a"
      ~simple:Sound ~advanced:Sound;
    (* --- Example 2.8: unused loads ---------------------------------- *)
    t "unused-load-elim" "Ex 2.8"
      ~src:"a = X.load(na); return 0"
      ~tgt:"return 0"
      ~simple:Sound ~advanced:Sound;
    t "irrelevant-load-intro" "Ex 2.8"
      ~src:"return 0"
      ~tgt:"a = X.load(na); return 0"
      ~simple:Sound ~advanced:Sound;
    (* --- Example 2.9: roach motel ----------------------------------- *)
    t "acq-then-na-write" "Ex 2.9(i)"
      ~src:"a = Y.load(acq); X.store(na, 1); return a"
      ~tgt:"X.store(na, 1); a = Y.load(acq); return a"
      ~simple:Unsound ~advanced:Unsound;
    t "na-write-then-rel" "Ex 2.9(ii)"
      ~src:"X.store(na, 1); Y.store(rel, 1)"
      ~tgt:"Y.store(rel, 1); X.store(na, 1)"
      ~simple:Unsound ~advanced:Unsound;
    t "acq-then-na-read" "Ex 2.9(iii)"
      ~src:"a = Y.load(acq); b = X.load(na); return b"
      ~tgt:"b = X.load(na); a = Y.load(acq); return b"
      ~simple:Unsound ~advanced:Unsound;
    t "na-read-then-rel" "Ex 2.9(iv)"
      ~src:"a = X.load(na); Y.store(rel, 1); return a"
      ~tgt:"Y.store(rel, 1); a = X.load(na); return a"
      ~simple:Unsound ~advanced:Unsound;
    t "na-write-into-acq" "Ex 2.9(i')"
      ~src:"X.store(na, 1); a = Y.load(acq); return a"
      ~tgt:"a = Y.load(acq); X.store(na, 1); return a"
      ~simple:Sound ~advanced:Sound;
    t "na-read-into-acq" "Ex 2.9(iii')"
      ~src:"b = X.load(na); a = Y.load(acq); return b"
      ~tgt:"a = Y.load(acq); b = X.load(na); return b"
      ~simple:Sound ~advanced:Sound;
    t "na-read-into-rel" "Ex 2.9(iv')"
      ~src:"Y.store(rel, 1); a = X.load(na); return a"
      ~tgt:"a = X.load(na); Y.store(rel, 1); return a"
      ~simple:Sound ~advanced:Sound;
    t "na-write-into-rel" "Ex 2.9(ii')"
      ~src:"Y.store(rel, 1); X.store(na, 2)"
      ~tgt:"X.store(na, 2); Y.store(rel, 1)"
      ~simple:Unsound ~advanced:Sound;
    (* --- Example 2.10: store introduction after release ------------- *)
    t "store-intro-after-rel" "Ex 2.10"
      ~src:"X.store(na, 1); Y.store(rel, 1)"
      ~tgt:"X.store(na, 1); Y.store(rel, 1); X.store(na, 1)"
      ~simple:Unsound ~advanced:Unsound;
    t "store-intro-after-rlx" "Ex 2.10"
      ~src:"X.store(na, 1); Y.store(rlx, 1)"
      ~tgt:"X.store(na, 1); Y.store(rlx, 1); X.store(na, 1)"
      ~simple:Sound ~advanced:Sound;
    (* --- Example 2.11: SLF across atomics --------------------------- *)
    t "slf-across-rlx-read" "Ex 2.11"
      ~src:"X.store(na, 1); a = Y.load(rlx); b = X.load(na); return 3*a + b"
      ~tgt:"X.store(na, 1); a = Y.load(rlx); b = 1; return 3*a + b"
      ~simple:Sound ~advanced:Sound;
    t "slf-across-rlx-write" "Ex 2.11"
      ~src:"X.store(na, 1); Y.store(rlx, 2); b = X.load(na); return b"
      ~tgt:"X.store(na, 1); Y.store(rlx, 2); b = 1; return b"
      ~simple:Sound ~advanced:Sound;
    t "slf-across-acq-read" "Ex 2.11"
      ~src:"X.store(na, 1); a = Y.load(acq); b = X.load(na); return 3*a + b"
      ~tgt:"X.store(na, 1); a = Y.load(acq); b = 1; return 3*a + b"
      ~simple:Sound ~advanced:Sound;
    t "slf-across-rel-write" "Ex 2.11"
      ~src:"X.store(na, 1); Y.store(rel, 2); b = X.load(na); return b"
      ~tgt:"X.store(na, 1); Y.store(rel, 2); b = 1; return b"
      ~simple:Sound ~advanced:Sound;
    (* --- Example 2.12: no SLF across rel-acq pairs ------------------ *)
    t "slf-across-rel-acq" "Ex 2.12"
      ~src:"X.store(na, 1); Y.store(rel, 2); a = Z.load(acq); \
            b = X.load(na); return b"
      ~tgt:"X.store(na, 1); Y.store(rel, 2); a = Z.load(acq); \
            b = 1; return b"
      ~simple:Unsound ~advanced:Unsound;
    (* --- §3: late UB ------------------------------------------------ *)
    t "rlx-read-then-na-write" "§3 (late UB)"
      ~src:"a = Y.load(rlx); X.store(na, 1); return a"
      ~tgt:"X.store(na, 1); a = Y.load(rlx); return a"
      ~simple:Unsound ~advanced:Sound;
    t "acq-then-div0" "Ex 3.1"
      ~src:"a = Y.load(acq); b = 1/0; return b"
      ~tgt:"b = 1/0; a = Y.load(acq); return b"
      ~simple:Unsound ~advanced:Unsound;
    t "ex3.1-end-to-end" "Ex 3.1 (whole chain)"
      (* the end-to-end composition of Ex 3.1's chain: hoisting y^rlx := 1
         above the conditional and the relaxed read; refuted because the
         first link (acquire past UB) is unsound *)
      ~src:"a = Z.load(rlx);             if a == 1 { a = Z.load(acq); b = 1/0 } else { Y.store(rlx, 1) };             return a"
      ~tgt:"Y.store(rlx, 1); a = Z.load(rlx);             if a == 1 { b = 1/0; a = Z.load(acq) };             return a"
      ~simple:Unsound ~advanced:Unsound;
    t "conditional-ub-hoist" "§3 (oracle counterexample)"
      ~src:"a = Y.load(rlx); if a == 1 { b = 1/0 }; \
            while c == 0 { skip }; return a"
      ~tgt:"b = 1/0; a = Y.load(rlx); while c == 0 { skip }; return a"
      ~simple:Unsound ~advanced:Unsound;
    t "unconditional-ub-hoist" "§3"
      ~src:"a = Y.load(rlx); b = 1/0; return b"
      ~tgt:"b = 1/0; a = Y.load(rlx); return b"
      ~simple:Unsound ~advanced:Sound;
    (* --- Example 3.5: DSE across atomics ---------------------------- *)
    t "dse-across-rlx-read" "Ex 3.5"
      ~src:"X.store(na, 1); b = Y.load(rlx); X.store(na, 2); return b"
      ~tgt:"b = Y.load(rlx); X.store(na, 2); return b"
      ~simple:Sound ~advanced:Sound;
    t "dse-across-acq-read" "Ex 3.5"
      ~src:"X.store(na, 1); b = Y.load(acq); X.store(na, 2); return b"
      ~tgt:"b = Y.load(acq); X.store(na, 2); return b"
      ~simple:Sound ~advanced:Sound;
    t "dse-across-rel-write" "Ex 3.5"
      ~src:"X.store(na, 1); Y.store(rel, 0); X.store(na, 2)"
      ~tgt:"Y.store(rel, 0); X.store(na, 2)"
      ~simple:Unsound ~advanced:Sound;
    t "dse-across-rel-acq" "Ex 3.5 (boundary)"
      ~src:"X.store(na, 1); Y.store(rel, 0); a = Z.load(acq); \
            X.store(na, 2); return a"
      ~tgt:"Y.store(rel, 0); a = Z.load(acq); X.store(na, 2); return a"
      ~simple:Unsound ~advanced:Unsound;
    (* --- Remark 3 / App C: non-determinism vs release --------------- *)
    t "choose-then-rel" "Remark 3 / App C"
      ~src:"a = choose(); Y.store(rel, 1); return a"
      ~tgt:"Y.store(rel, 1); a = choose(); return a"
      ~simple:Unsound ~advanced:Unsound;
    t "choose-then-na-write" "Remark 3 (allowed by ⊑w)"
      (* simple refinement refuses: if X ∉ P the target is ⊥ with an empty
         trace while the source must first emit its choose label; the
         late-UB rule of the advanced notion accepts. *)
      ~src:"a = choose(); X.store(na, 1); return a"
      ~tgt:"X.store(na, 1); a = choose(); return a"
      ~simple:Unsound ~advanced:Sound;
    t "freeze-then-rel" "App C (freeze form)"
      ~src:"a = freeze(undef); Y.store(rel, 1); return a"
      ~tgt:"Y.store(rel, 1); a = freeze(undef); return a"
      ~simple:Unsound ~advanced:Unsound;
    (* --- extensions: fences and RMW in SEQ -------------------------- *)
    t "na-write-into-acq-fence" "extension (fence roach motel)"
      ~src:"X.store(na, 1); fence(acq)"
      ~tgt:"fence(acq); X.store(na, 1)"
      ~simple:Sound ~advanced:Sound;
    t "acq-fence-then-na-write" "extension (fence roach motel)"
      ~src:"fence(acq); X.store(na, 1)"
      ~tgt:"X.store(na, 1); fence(acq)"
      ~simple:Unsound ~advanced:Unsound;
    t "slf-across-cas" "extension (SLF across a single RMW)"
      (* an RMW is acquire-then-release in program order — never a
         release-acquire *pair* — so forwarding remains sound (the token
         goes ◦(v) → •(v), not ⊤) *)
      ~src:"X.store(na, 1); a = cas(Y, 0, 1); b = X.load(na); return 3*a + b"
      ~tgt:"X.store(na, 1); a = cas(Y, 0, 1); b = 1; return 3*a + b"
      ~simple:Sound ~advanced:Sound;
    t "no-slf-across-rel-then-cas" "extension (rel;RMW is a rel-acq pair)"
      ~src:"X.store(na, 1); Y.store(rel, 1); a = cas(Z, 0, 1); \
            b = X.load(na); return 3*a + b"
      ~tgt:"X.store(na, 1); Y.store(rel, 1); a = cas(Z, 0, 1); \
            b = 1; return 3*a + b"
      ~simple:Unsound ~advanced:Unsound;
    t "rmw-identity" "extension (RMW matches itself)"
      ~src:"a = fadd(Y, 1); return a"
      ~tgt:"a = fadd(Y, 1); return a"
      ~simple:Sound ~advanced:Sound;
    t "no-slf-across-sc-fence" "extension (SC fence is a rel-acq pair)"
      ~src:"X.store(na, 1); fence(sc); b = X.load(na); return b"
      ~tgt:"X.store(na, 1); fence(sc); b = 1; return b"
      ~simple:Unsound ~advanced:Unsound;
    t "slf-across-rel-fence" "extension (Ex 2.11 analogue for fences)"
      ~src:"X.store(na, 1); fence(rel); b = X.load(na); return b"
      ~tgt:"X.store(na, 1); fence(rel); b = 1; return b"
      ~simple:Sound ~advanced:Sound;
    t "no-sc-fence-weakening" "extension (sc fence ≠ acq-rel fence)"
      ~src:"fence(sc); return 0"
      ~tgt:"fence(acqrel); return 0"
      ~simple:Unsound ~advanced:Unsound;
    t "sc-fence-identity" "extension"
      ~src:"fence(sc); return 0"
      ~tgt:"fence(sc); return 0"
      ~simple:Sound ~advanced:Sound;
    (* --- §2 non-goal: no optimizations on atomics -------------------- *)
    t "no-acq-load-to-load-fwd" "§2 (atomics are not optimized)"
      ~src:"a = Y.load(acq); b = Y.load(acq); return 3*a + b"
      ~tgt:"a = Y.load(acq); b = a; return 3*a + b"
      ~simple:Unsound ~advanced:Unsound;
    t "no-rlx-store-elim" "§2 (atomics are not optimized)"
      ~src:"Y.store(rlx, 1); Y.store(rlx, 2)"
      ~tgt:"Y.store(rlx, 2)"
      ~simple:Unsound ~advanced:Unsound;
    t "no-rlx-slf" "§2 (atomics are not optimized)"
      ~src:"Y.store(rlx, 1); a = Y.load(rlx); return a"
      ~tgt:"Y.store(rlx, 1); a = 1; return a"
      ~simple:Unsound ~advanced:Unsound;
    t "no-na-to-rlx-strengthening" "§5 (a mapping theorem, not a SEQ one)"
      (* sound in PS_na as a compilation-scheme fact (tested in the
         promising suite), but not derivable by sequential reasoning: the
         target emits atomic labels the source does not have *)
      ~src:"X.store(na, 1); return 0"
      ~tgt:"X.store(rlx, 1); return 0"
      ~simple:Unsound ~advanced:Unsound;
  ]

(* ------------------------------------------------------------------ *)
(* Concurrent litmus programs (for E4)                                  *)
(* ------------------------------------------------------------------ *)

type concurrent = {
  cname : string;
  cref : string;
  threads : string;  (** [|||]-separated program text *)
}

let concurrent_programs =
  [
    {
      cname = "SB-rlx";
      cref = "classic";
      threads =
        "Y.store(rlx,1); a = Z.load(rlx); return a ||| \
         Z.store(rlx,1); b = Y.load(rlx); return b";
    };
    {
      cname = "MP-rel-acq";
      cref = "classic";
      threads =
        "X.store(na,1); Y.store(rel,1); return 0 ||| \
         a = Y.load(acq); if a == 1 { b = X.load(na) }; return 10*a+b";
    };
    {
      cname = "LB-rlx";
      cref = "classic";
      threads =
        "a = Y.load(rlx); Z.store(rlx,1); return a ||| \
         b = Z.load(rlx); Y.store(rlx,1); return b";
    };
    {
      cname = "LB-data";
      cref = "out-of-thin-air";
      threads =
        "a = Y.load(rlx); Z.store(rlx,a); return a ||| \
         b = Z.load(rlx); Y.store(rlx,b); return b";
    };
    {
      cname = "Ex-5.1";
      cref = "Ex 5.1";
      threads =
        "a = X.load(na); Y.store(rlx,1); return a ||| \
         b = Y.load(rlx); if b == 1 { X.store(na,1) }; return b";
    };
    {
      cname = "WW-race";
      cref = "§5";
      threads = "X.store(na,1); return 0 ||| X.store(na,2); return 0";
    };
    {
      cname = "RW-race";
      cref = "§5";
      threads = "a = X.load(na); return a ||| X.store(na,1); return 0";
    };
    {
      cname = "2+2W-rlx";
      cref = "classic";
      threads =
        "Y.store(rlx,1); Z.store(rlx,2); return 0 ||| \
         Z.store(rlx,1); Y.store(rlx,2); return 0 ||| \
         a = Y.load(rlx); b = Z.load(rlx); return 10*a+b";
    };
    {
      cname = "MP-fences";
      cref = "extension (fences)";
      threads =
        "X.store(na,1); fence(rel); Y.store(rlx,1); return 0 ||| \
         a = Y.load(rlx); fence(acq); if a == 1 { b = X.load(na) }; return 10*a+b";
    };
    {
      cname = "SB-sc-fence";
      cref = "extension (SC fences)";
      threads =
        "Y.store(rlx,1); fence(sc); a = Z.load(rlx); return a ||| \
         Z.store(rlx,1); fence(sc); b = Y.load(rlx); return b";
    };
  ]

(* ------------------------------------------------------------------ *)
(* The E15 differential backend grid                                    *)
(* ------------------------------------------------------------------ *)

type grid_entry = {
  g : concurrent;
  weak : int list;
  allowed : (string * bool) list;
}

let conc cname = List.find (fun c -> c.cname = cname) concurrent_programs

(** The grid corpus: each row is a litmus program with a designated weak
    outcome (one return value per thread) and the expected per-backend
    allowed/forbidden verdicts.  The classic separations live here: SB
    separates TSO from SC, MP-rlx separates ARMv8 from TSO, LB separates
    PS_na from ARMv8 (promise steps exhibit load buffering, which the
    speculation-free ARMv8 machine does not), and IRIW shows the ARMv8
    machine's non-multi-copy-atomic reads. *)
let grid_programs =
  [
    {
      g = conc "SB-rlx";
      weak = [ 0; 0 ];
      allowed =
        [ ("sc", false); ("tso", true); ("armv8", true); ("ps", true) ];
    };
    {
      g = conc "SB-sc-fence";
      weak = [ 0; 0 ];
      allowed =
        [ ("sc", false); ("tso", false); ("armv8", false); ("ps", false) ];
    };
    {
      g = conc "MP-rel-acq";
      weak = [ 0; 10 ];
      allowed =
        [ ("sc", false); ("tso", false); ("armv8", false); ("ps", false) ];
    };
    {
      g =
        {
          cname = "MP-rlx";
          cref = "classic";
          threads =
            "Y.store(rlx,1); Z.store(rlx,1); return 0 ||| \
             a = Z.load(rlx); if a == 1 { b = Y.load(rlx) }; return 10*a+b";
        };
      weak = [ 0; 10 ];
      allowed =
        [ ("sc", false); ("tso", false); ("armv8", true); ("ps", true) ];
    };
    {
      g = conc "MP-fences";
      weak = [ 0; 10 ];
      allowed =
        [ ("sc", false); ("tso", false); ("armv8", false); ("ps", false) ];
    };
    {
      g = conc "LB-rlx";
      weak = [ 1; 1 ];
      allowed =
        [ ("sc", false); ("tso", false); ("armv8", false); ("ps", true) ];
    };
    {
      g =
        {
          cname = "IRIW-rlx";
          cref = "classic";
          threads =
            "Y.store(rlx,1); return 0 ||| Z.store(rlx,1); return 0 ||| \
             a = Y.load(rlx); b = Z.load(rlx); return 10*a+b ||| \
             c = Z.load(rlx); d = Y.load(rlx); return 10*c+d";
        };
      weak = [ 0; 0; 10; 10 ];
      allowed =
        [ ("sc", false); ("tso", false); ("armv8", true); ("ps", true) ];
    };
    (* R: like SB but the second thread's store and the first thread's
       pair race through a third observer fixing Z's coherence order
       1 -> 2.  A TSO store buffer lets T2 read Y=0 while its Z=2 is
       still buffered — the classic write-to-read separation again, but
       witnessed through coherence rather than two reads. *)
    {
      g =
        {
          cname = "R-rlx";
          cref = "classic";
          threads =
            "Y.store(rlx,1); Z.store(rlx,1); return 0 ||| \
             Z.store(rlx,2); a = Y.load(rlx); return a ||| \
             c = Z.load(rlx); d = Z.load(rlx); return 10*c+d";
        };
      weak = [ 0; 0; 12 ];
      allowed =
        [ ("sc", false); ("tso", true); ("armv8", true); ("ps", true) ];
    };
    (* S: needs T1's Z=2;Y=1 to become visible out of order (Y=1 read
       before Z=2 lands), which FIFO TSO buffers cannot do — only the
       ARMv8 machine's cross-location store-store reordering (and PS_na
       promises) exhibit it. *)
    {
      g =
        {
          cname = "S-rlx";
          cref = "classic";
          threads =
            "Z.store(rlx,2); Y.store(rlx,1); return 0 ||| \
             a = Y.load(rlx); Z.store(rlx,1); return a ||| \
             c = Z.load(rlx); d = Z.load(rlx); return 10*c+d";
        };
      weak = [ 0; 1; 12 ];
      allowed =
        [ ("sc", false); ("tso", false); ("armv8", true); ("ps", true) ];
    };
    (* WRC: write-read causality.  T3 observing Z=1 but Y=0 needs its
       two loads reordered (or non-multi-copy-atomic stores); TSO has
       neither, the ARMv8 machine's per-location read floors allow the
       stale Y read after the fresh Z read. *)
    {
      g =
        {
          cname = "WRC-rlx";
          cref = "classic";
          threads =
            "Y.store(rlx,1); return 0 ||| \
             a = Y.load(rlx); Z.store(rlx,1); return a ||| \
             b = Z.load(rlx); c = Y.load(rlx); return 10*b+c";
        };
      weak = [ 0; 1; 10 ];
      allowed =
        [ ("sc", false); ("tso", false); ("armv8", true); ("ps", true) ];
    };
    (* CoRR: coherence of read-read.  Reading Y=1 then Y=0 violates
       per-location coherence, which every model in the zoo enforces
       (the ARMv8 machine's reads raise their own location's floor; PS
       views only rise) — an all-forbid row keeping the weak side of the
       grid honest. *)
    {
      g =
        {
          cname = "CoRR-rlx";
          cref = "classic";
          threads =
            "Y.store(rlx,1); return 0 ||| \
             a = Y.load(rlx); b = Y.load(rlx); return 10*a+b";
        };
      weak = [ 0; 10 ];
      allowed =
        [ ("sc", false); ("tso", false); ("armv8", false); ("ps", false) ];
    };
  ]

(** The E15 pass-soundness grid: SEQ-validated transformations plugged
    into a concurrent context (from {!contexts}) and re-checked as
    behavior-set refinement under every backend — where a pass sound on
    SEQ/PS_na over- or under-approximates a hardware model, the cell
    shows it (e.g. load introduction fails only under catch-fire, E6). *)
let grid_passes : (string * string) list =
  [
    ("store-to-load-fwd", "na-writer");
    ("reorder-na-rw-diff", "na-writer");
    ("irrelevant-load-intro", "na-writer");
    ("unused-load-elim", "na-writer");
    ("overwritten-store-elim", "na-reader");
    ("read-before-write-elim", "na-writer");
  ]

(* ------------------------------------------------------------------ *)
(* Context library for the adequacy experiment (E5)                     *)
(* ------------------------------------------------------------------ *)

(** Concurrent contexts to plug transformations into (Thm 6.2 quantifies
    over arbitrary parallel compositions).  Contexts follow the corpus
    conventions: [X]/[W] non-atomic, [Y]/[Z] atomic. *)
let contexts : (string * string) list =
  [
    ("idle", "return 0");
    ("na-reader", "a = X.load(na); return a");
    ("na-writer", "X.store(na, 2); return 0");
    ("rel-acq-flagger", "Y.store(rel, 1); a = Z.load(acq); return a");
    ("acq-guarded-writer", "a = Y.load(acq); if a == 1 { X.store(na, 2) }; return a");
    ("handover",
     "a = Y.load(acq); if a == 1 { b = X.load(na); X.store(na, b + 1); \
      Z.store(rel, 1) }; return b");
    ("rlx-mixer", "Y.store(rlx, 2); a = Z.load(rlx); return a");
    ("two-threads",
     "Y.store(rel, 1); return 0 ||| a = Z.load(acq); X.store(na, a); return a");
  ]

let find_transformation name =
  List.find_opt (fun tr -> tr.name = name) transformations
