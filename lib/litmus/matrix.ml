(** Engine-swept litmus/soundness matrices (see matrix.mli).

    Every sweep here parallelizes at row granularity; all deterministic
    columns (verdicts, pair/state counts) are computed with row-local or
    per-domain memo state so they are byte-identical for every [jobs]
    setting — only the trailing [ms] column may vary. *)

open Lang
module M = Promising.Machine

(* ------------------------------------------------------------------ *)
(* E1/E2: transformation soundness                                      *)
(* ------------------------------------------------------------------ *)

type e12_row = {
  tr : Catalog.transformation;
  simple_got : Catalog.verdict;
  advanced_got : Catalog.verdict;
  pairs : int;
  wall_ms : float;
}

let e12_ok (r : e12_row) =
  r.simple_got = r.tr.Catalog.simple && r.advanced_got = r.tr.Catalog.advanced

let verdict b = if b then Catalog.Sound else Catalog.Unsound

let e12_row ?(values = Domain.default_values) ?budget
    (tr : Catalog.transformation) : e12_row =
  let row, ms =
    Engine.Stats.timed (fun () ->
        let src = Parser.stmt_of_string tr.Catalog.src in
        let tgt = Parser.stmt_of_string tr.Catalog.tgt in
        let d = Domain.of_stmts ~values [ src; tgt ] in
        let simple, simple_pairs =
          Seq_model.Refine.check_count ?budget d ~src ~tgt
        in
        let advanced, advanced_pairs =
          if simple then (true, 0)
          else Seq_model.Advanced.check_count ?budget d ~src ~tgt
        in
        {
          tr;
          simple_got = verdict simple;
          advanced_got = verdict advanced;
          pairs = simple_pairs + advanced_pairs;
          wall_ms = 0.;
        })
  in
  { row with wall_ms = ms }

let e12_rows ?pool ?jobs ?values () : e12_row list =
  Engine.Sweep.run ?pool ?jobs
    ~f:(fun tr -> e12_row ?values tr)
    Catalog.transformations

(** The fault-tolerant sweep: one supervised outcome per corpus entry, in
    corpus order; never raises (see {!Engine.Sweep.run_verdict}). *)
let e12_rows_v ?pool ?jobs ?values ?budget ?retries ?faults
    ?(corpus = Catalog.transformations) () :
    (Catalog.transformation * e12_row Engine.Sweep.outcome) list =
  let outcomes =
    Engine.Sweep.run_verdict ?pool ?jobs ?budget ?retries ?faults
      ~f:(fun ~budget tr -> e12_row ?values ~budget tr)
      corpus
  in
  List.combine corpus outcomes

(* Shared row printers: the [_v] renderers reuse them so that on all-Ok
   outcomes their output is byte-identical to the plain renderers (the
   golden tests pin the latter). *)
let bpr buf fmt = Printf.ksprintf (Buffer.add_string buf) fmt

let pr_e12_header buf stats =
  let pr fmt = bpr buf fmt in
  pr "%-32s %-26s %-18s %-18s %-10s %-8s%s\n" "name" "paper ref"
    "simple(exp/got)" "advanced(exp/got)" "ok" "pairs"
    (if stats then " ms" else "")

let pr_e12_row buf stats (r : e12_row) =
  let pr fmt = bpr buf fmt in
  let ok = e12_ok r in
  pr "%-32s %-26s %-18s %-18s %-10s %-8d%s\n" r.tr.Catalog.name
    r.tr.Catalog.paper_ref
    (Printf.sprintf "%s/%s"
       (Catalog.verdict_to_string r.tr.Catalog.simple)
       (Catalog.verdict_to_string r.simple_got))
    (Printf.sprintf "%s/%s"
       (Catalog.verdict_to_string r.tr.Catalog.advanced)
       (Catalog.verdict_to_string r.advanced_got))
    (if ok then "ok" else "MISMATCH")
    r.pairs
    (if stats then Printf.sprintf " %.1f" r.wall_ms else "");
  ok

let pr_e12_unknown buf stats (tr : Catalog.transformation)
    (o : e12_row Engine.Sweep.outcome) reason =
  let pr fmt = bpr buf fmt in
  pr "%-32s %-26s %-18s %-18s %-10s %-8s%s\n" tr.Catalog.name
    tr.Catalog.paper_ref
    (Printf.sprintf "%s/?" (Catalog.verdict_to_string tr.Catalog.simple))
    (Printf.sprintf "%s/?" (Catalog.verdict_to_string tr.Catalog.advanced))
    (Printf.sprintf "UNKNOWN(%s)" (Engine.Verdict.reason_to_string reason))
    "-"
    (if stats then Printf.sprintf " %.1f" o.Engine.Sweep.wall_ms else "")

let render_e12 ?(stats = false) (rows : e12_row list) : string =
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr_e12_header buf stats;
  let mismatches = ref 0 in
  List.iter (fun r -> if not (pr_e12_row buf stats r) then incr mismatches) rows;
  pr "-- %d transformations, %d mismatches\n" (List.length rows) !mismatches;
  Buffer.contents buf

(** Render supervised outcomes; byte-identical to {!render_e12} when every
    outcome is [Ok].  Unknown rows keep the table shape, and the footer
    counts them only when there are any. *)
let render_e12_v ?(stats = false)
    (rows : (Catalog.transformation * e12_row Engine.Sweep.outcome) list) :
    string =
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr_e12_header buf stats;
  let mismatches = ref 0 and unknown = ref 0 in
  List.iter
    (fun (tr, o) ->
      match o.Engine.Sweep.result with
      | Ok r -> if not (pr_e12_row buf stats r) then incr mismatches
      | Error reason ->
        incr unknown;
        pr_e12_unknown buf stats tr o reason)
    rows;
  pr "-- %d transformations, %d mismatches%s\n" (List.length rows)
    !mismatches
    (if !unknown > 0 then Printf.sprintf ", %d unknown" !unknown else "");
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* E4: PS_na litmus outcomes                                            *)
(* ------------------------------------------------------------------ *)

type e4_row = {
  c : Catalog.concurrent;
  states : int;
  races : bool;
  truncated : bool;
  behaviors : string;
  wall_ms : float;
}

let e4_row ?params ?memo ?budget (c : Catalog.concurrent) : e4_row =
  let row, ms =
    Engine.Stats.timed (fun () ->
        let r =
          M.explore ?params ?memo ?budget
            (Parser.threads_of_string c.Catalog.threads)
        in
        {
          c;
          states = r.M.states;
          races = r.M.races;
          truncated = r.M.truncated;
          behaviors = Fmt.str "%a" M.pp_behaviors r.M.behaviors;
          wall_ms = 0.;
        })
  in
  { row with wall_ms = ms }

let e4_rows ?pool ?jobs ?params () : e4_row list =
  Engine.Sweep.run_with ?pool ?jobs ~init:M.make_memo
    ~f:(fun memo c -> e4_row ?params ~memo c)
    Catalog.concurrent_programs

(** Fault-tolerant E4 sweep; worker domains keep the same per-domain
    certification memo as {!e4_rows}. *)
let e4_rows_v ?pool ?jobs ?params ?budget ?retries ?faults
    ?(corpus = Catalog.concurrent_programs) () :
    (Catalog.concurrent * e4_row Engine.Sweep.outcome) list =
  let outcomes =
    Engine.Sweep.run_verdict_with ?pool ?jobs ?budget ?retries ?faults
      ~init:M.make_memo
      ~f:(fun memo ~budget c -> e4_row ?params ~memo ~budget c)
      corpus
  in
  List.combine corpus outcomes

let pr_e4_header buf stats =
  let pr fmt = bpr buf fmt in
  pr "%-12s %-18s %-8s %-7s %s%s\n" "litmus" "paper ref" "states" "races"
    "behaviors"
    (if stats then "  [ms]" else "")

let pr_e4_row buf stats (r : e4_row) =
  let pr fmt = bpr buf fmt in
  pr "%-12s %-18s %-8d %-7b %s%s%s\n" r.c.Catalog.cname r.c.Catalog.cref
    r.states r.races r.behaviors
    (if r.truncated then " (TRUNCATED)" else "")
    (if stats then Printf.sprintf "  [%.1f]" r.wall_ms else "")

let render_e4 ?(stats = false) (rows : e4_row list) : string =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr_e4_header buf stats;
  List.iter (fun r -> pr_e4_row buf stats r) rows;
  pr "-- %d litmus programs\n" (List.length rows);
  Buffer.contents buf

(** Render supervised E4 outcomes; byte-identical to {!render_e4} when
    every outcome is [Ok]. *)
let render_e4_v ?(stats = false)
    (rows : (Catalog.concurrent * e4_row Engine.Sweep.outcome) list) : string =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr_e4_header buf stats;
  let unknown = ref 0 in
  List.iter
    (fun (c, o) ->
      match o.Engine.Sweep.result with
      | Ok r -> pr_e4_row buf stats r
      | Error reason ->
        incr unknown;
        pr "%-12s %-18s %-8s %-7s UNKNOWN(%s)%s\n" c.Catalog.cname
          c.Catalog.cref "-" "-"
          (Engine.Verdict.reason_to_string reason)
          (if stats then Printf.sprintf "  [%.1f]" o.Engine.Sweep.wall_ms
           else ""))
    rows;
  pr "-- %d litmus programs%s\n" (List.length rows)
    (if !unknown > 0 then Printf.sprintf ", %d unknown" !unknown else "");
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* E5: adequacy                                                         *)
(* ------------------------------------------------------------------ *)

let pr_e5_header buf stats =
  let pr fmt = bpr buf fmt in
  pr "%-32s %-9s %-11s %-20s%s\n" "transformation" "SEQ-adv" "PS-refines"
    "ok"
    (if stats then " pairs    states    hits" else "")

let pr_e5_row buf stats (r : Adequacy.row) =
  let pr fmt = bpr buf fmt in
  let all_refine = List.for_all (fun (_, ok, _) -> ok) r.Adequacy.contexts in
  let ok = Adequacy.row_ok r in
  pr "%-32s %-9b %-11b %-20s%s\n" r.Adequacy.tr.Catalog.name
    r.Adequacy.seq_advanced all_refine
    (if ok then "ok" else "ADEQUACY VIOLATION")
    (if stats then
       Printf.sprintf " %-8d %-9d %d" r.Adequacy.seq_pairs r.Adequacy.states
         r.Adequacy.memo_hits
     else "");
  ok

let render_e5 ?(stats = false) (rows : Adequacy.row list) : string =
  let buf = Buffer.create 2048 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr_e5_header buf stats;
  let violations = ref 0 in
  List.iter
    (fun (r : Adequacy.row) ->
      if not (pr_e5_row buf stats r) then incr violations)
    rows;
  let n_contexts =
    match rows with r :: _ -> List.length r.Adequacy.contexts | [] -> 0
  in
  pr "-- %d rows x %d contexts, %d adequacy violations\n" (List.length rows)
    n_contexts !violations;
  Buffer.contents buf

(** Render supervised E5 outcomes; byte-identical to {!render_e5} when
    every outcome is [Ok]. *)
let render_e5_v ?(stats = false)
    (rows : (Catalog.transformation * Adequacy.row Engine.Sweep.outcome) list)
    : string =
  let buf = Buffer.create 2048 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr_e5_header buf stats;
  let violations = ref 0 and unknown = ref 0 in
  List.iter
    (fun ((tr : Catalog.transformation), o) ->
      match o.Engine.Sweep.result with
      | Ok r -> if not (pr_e5_row buf stats r) then incr violations
      | Error reason ->
        incr unknown;
        pr "%-32s %-9s %-11s %-20s%s\n" tr.Catalog.name "-" "-"
          (Printf.sprintf "UNKNOWN(%s)"
             (Engine.Verdict.reason_to_string reason))
          (if stats then
             Printf.sprintf " -        -         -"
           else ""))
    rows;
  let n_contexts =
    List.find_map
      (fun (_, o) ->
        match o.Engine.Sweep.result with
        | Ok (r : Adequacy.row) -> Some (List.length r.Adequacy.contexts)
        | Error _ -> None)
      rows
    |> Option.value ~default:0
  in
  pr "-- %d rows x %d contexts, %d adequacy violations%s\n"
    (List.length rows) n_contexts !violations
    (if !unknown > 0 then Printf.sprintf ", %d unknown" !unknown else "");
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* E15: the N-model differential grid                                   *)
(* ------------------------------------------------------------------ *)

module B = Backends.Backend

(** Backends the litmus grid sweeps, in strength order. *)
let e15_models = [ "sc"; "tso"; "armv8"; "ps" ]

(** Backends the pass-soundness grid sweeps ([catchfire] joins: it is
    the one model that refutes load introduction, E6). *)
let e15p_models = [ "sc"; "catchfire"; "tso"; "armv8"; "ps" ]

type e15_row = {
  ge : Catalog.grid_entry;
  cells : (string * bool) list;  (* backend name -> weak outcome allowed *)
  chain_ok : bool;  (* SC ⊆ TSO ⊆ ARMv8 held on this row *)
  truncated : bool;
  wall_ms : float;
}

let e15_ok (r : e15_row) =
  r.chain_ok
  && List.for_all
       (fun (m, got) ->
         match List.assoc_opt m r.ge.Catalog.allowed with
         | Some expect -> got = expect
         | None -> true)
       r.cells

let machine name : (module B.MACHINE) =
  match Backends.Registry.find name with
  | Some m -> m
  | None -> invalid_arg ("Matrix: unknown backend " ^ name)

let e15_row ?values ?max_states ?budget (ge : Catalog.grid_entry) : e15_row =
  let row, ms =
    Engine.Stats.timed (fun () ->
        let progs = Parser.threads_of_string ge.Catalog.g.Catalog.threads in
        let weak =
          B.Ret (List.map (fun n -> (Value.Int n, [])) ge.Catalog.weak)
        in
        let results =
          List.map
            (fun name ->
              let (module M : B.MACHINE) = machine name in
              (name, M.explore ?values ?max_states ?budget progs))
            e15_models
        in
        let get name = List.assoc name results in
        {
          ge;
          cells =
            List.map
              (fun (name, r) -> (name, B.Behavior_set.mem weak r.B.behaviors))
              results;
          chain_ok =
            B.subset ~small:(get "sc") ~big:(get "tso")
            && B.subset ~small:(get "tso") ~big:(get "armv8");
          truncated = List.exists (fun (_, r) -> r.B.truncated) results;
          wall_ms = 0.;
        })
  in
  { row with wall_ms = ms }

let e15_rows ?pool ?jobs ?values () : e15_row list =
  Engine.Sweep.run ?pool ?jobs
    ~f:(fun ge -> e15_row ?values ge)
    Catalog.grid_programs

(** The fault-tolerant grid sweep, supervised as {!e12_rows_v}. *)
let e15_rows_v ?pool ?jobs ?values ?budget ?retries ?faults
    ?(corpus = Catalog.grid_programs) () :
    (Catalog.grid_entry * e15_row Engine.Sweep.outcome) list =
  let outcomes =
    Engine.Sweep.run_verdict ?pool ?jobs ?budget ?retries ?faults
      ~f:(fun ~budget ge -> e15_row ?values ~budget ge)
      corpus
  in
  List.combine corpus outcomes

let e15_weak_string (ge : Catalog.grid_entry) =
  String.concat "," (List.map string_of_int ge.Catalog.weak)

let pr_e15_header buf stats =
  let pr fmt = bpr buf fmt in
  pr "%-12s %-18s %-10s %-7s %-7s %-7s %-7s %-9s %s%s\n" "litmus"
    "paper ref" "weak" "sc" "tso" "armv8" "ps" "chain" "ok"
    (if stats then "  [ms]" else "")

let pr_e15_row buf stats (r : e15_row) =
  let pr fmt = bpr buf fmt in
  let ok = e15_ok r in
  let cell name =
    match List.assoc_opt name r.cells with
    | Some true -> "allow"
    | Some false -> "forbid"
    | None -> "-"
  in
  pr "%-12s %-18s %-10s %-7s %-7s %-7s %-7s %-9s %s%s%s\n"
    r.ge.Catalog.g.Catalog.cname r.ge.Catalog.g.Catalog.cref
    (e15_weak_string r.ge) (cell "sc") (cell "tso") (cell "armv8")
    (cell "ps")
    (if r.chain_ok then "ok" else "VIOLATION")
    (if ok then "ok" else "MISMATCH")
    (if r.truncated then " (TRUNCATED)" else "")
    (if stats then Printf.sprintf "  [%.1f]" r.wall_ms else "");
  ok

let pr_e15_unknown buf stats (ge : Catalog.grid_entry)
    (o : e15_row Engine.Sweep.outcome) reason =
  let pr fmt = bpr buf fmt in
  pr "%-12s %-18s %-10s %-7s %-7s %-7s %-7s %-9s UNKNOWN(%s)%s\n"
    ge.Catalog.g.Catalog.cname ge.Catalog.g.Catalog.cref
    (e15_weak_string ge) "-" "-" "-" "-" "-"
    (Engine.Verdict.reason_to_string reason)
    (if stats then Printf.sprintf "  [%.1f]" o.Engine.Sweep.wall_ms else "")

let render_e15 ?(stats = false) (rows : e15_row list) : string =
  let buf = Buffer.create 2048 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr_e15_header buf stats;
  let mismatches = ref 0 in
  List.iter (fun r -> if not (pr_e15_row buf stats r) then incr mismatches) rows;
  pr "-- %d grid rows, %d mismatches\n" (List.length rows) !mismatches;
  Buffer.contents buf

(** Render supervised grid outcomes; byte-identical to {!render_e15}
    when every outcome is [Ok]. *)
let render_e15_v ?(stats = false)
    (rows : (Catalog.grid_entry * e15_row Engine.Sweep.outcome) list) : string
    =
  let buf = Buffer.create 2048 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr_e15_header buf stats;
  let mismatches = ref 0 and unknown = ref 0 in
  List.iter
    (fun (ge, o) ->
      match o.Engine.Sweep.result with
      | Ok r -> if not (pr_e15_row buf stats r) then incr mismatches
      | Error reason ->
        incr unknown;
        pr_e15_unknown buf stats ge o reason)
    rows;
  pr "-- %d grid rows, %d mismatches%s\n" (List.length rows) !mismatches
    (if !unknown > 0 then Printf.sprintf ", %d unknown" !unknown else "");
  Buffer.contents buf

(* The pass-soundness half of E15: SEQ-validated transformations in a
   concurrent context, re-checked as behavior-set refinement per
   backend. *)

type e15p_row = {
  tr : Catalog.transformation;
  ctx_name : string;
  cells : (string * bool) list;  (* backend name -> tgt refines src *)
  truncated : bool;
  wall_ms : float;
}

let e15p_row ?values ?max_states ?budget ((tr_name, ctx_name) : string * string)
    : e15p_row =
  let row, ms =
    Engine.Stats.timed (fun () ->
        let tr =
          match Catalog.find_transformation tr_name with
          | Some tr -> tr
          | None -> invalid_arg ("Matrix: unknown transformation " ^ tr_name)
        in
        let ctx =
          match List.assoc_opt ctx_name Catalog.contexts with
          | Some c -> c
          | None -> invalid_arg ("Matrix: unknown context " ^ ctx_name)
        in
        let src = Parser.threads_of_string (tr.Catalog.src ^ " ||| " ^ ctx) in
        let tgt = Parser.threads_of_string (tr.Catalog.tgt ^ " ||| " ^ ctx) in
        let truncated = ref false in
        let cells =
          List.map
            (fun name ->
              let (module M : B.MACHINE) = machine name in
              let r_src = M.explore ?values ?max_states ?budget src in
              let r_tgt = M.explore ?values ?max_states ?budget tgt in
              if r_src.B.truncated || r_tgt.B.truncated then truncated := true;
              (name, B.refines ~src:r_src ~tgt:r_tgt))
            e15p_models
        in
        { tr; ctx_name; cells; truncated = !truncated; wall_ms = 0. })
  in
  { row with wall_ms = ms }

let e15p_rows ?pool ?jobs ?values () : e15p_row list =
  Engine.Sweep.run ?pool ?jobs
    ~f:(fun pc -> e15p_row ?values pc)
    Catalog.grid_passes

(** The fault-tolerant pass-grid sweep. *)
let e15p_rows_v ?pool ?jobs ?values ?budget ?retries ?faults
    ?(corpus = Catalog.grid_passes) () :
    ((string * string) * e15p_row Engine.Sweep.outcome) list =
  let outcomes =
    Engine.Sweep.run_verdict ?pool ?jobs ?budget ?retries ?faults
      ~f:(fun ~budget pc -> e15p_row ?values ~budget pc)
      corpus
  in
  List.combine corpus outcomes

let pr_e15p_header buf stats =
  let pr fmt = bpr buf fmt in
  pr "%-26s %-20s %-9s %-11s %-9s %-9s %-9s%s\n" "transformation" "context"
    "sc" "catchfire" "tso" "armv8" "ps"
    (if stats then "  [ms]" else "")

let pr_e15p_row buf stats (r : e15p_row) =
  let pr fmt = bpr buf fmt in
  let cell name =
    match List.assoc_opt name r.cells with
    | Some true -> "ok"
    | Some false -> "REFUTED"
    | None -> "-"
  in
  pr "%-26s %-20s %-9s %-11s %-9s %-9s %-9s%s%s\n" r.tr.Catalog.name
    r.ctx_name (cell "sc") (cell "catchfire") (cell "tso") (cell "armv8")
    (cell "ps")
    (if r.truncated then " (TRUNCATED)" else "")
    (if stats then Printf.sprintf "  [%.1f]" r.wall_ms else "")

let render_e15p ?(stats = false) (rows : e15p_row list) : string =
  let buf = Buffer.create 2048 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr_e15p_header buf stats;
  List.iter (fun r -> pr_e15p_row buf stats r) rows;
  pr "-- %d pass rows\n" (List.length rows);
  Buffer.contents buf

(** Render supervised pass-grid outcomes; byte-identical to
    {!render_e15p} when every outcome is [Ok]. *)
let render_e15p_v ?(stats = false)
    (rows : ((string * string) * e15p_row Engine.Sweep.outcome) list) : string
    =
  let buf = Buffer.create 2048 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr_e15p_header buf stats;
  let unknown = ref 0 in
  List.iter
    (fun ((tr_name, ctx_name), o) ->
      match o.Engine.Sweep.result with
      | Ok r -> pr_e15p_row buf stats r
      | Error reason ->
        incr unknown;
        pr "%-26s %-20s UNKNOWN(%s)%s\n" tr_name ctx_name
          (Engine.Verdict.reason_to_string reason)
          (if stats then Printf.sprintf "  [%.1f]" o.Engine.Sweep.wall_ms
           else ""))
    rows;
  pr "-- %d pass rows%s\n" (List.length rows)
    (if !unknown > 0 then Printf.sprintf ", %d unknown" !unknown else "");
  Buffer.contents buf
