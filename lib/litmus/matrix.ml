(** Engine-swept litmus/soundness matrices (see matrix.mli).

    Every sweep here parallelizes at row granularity; all deterministic
    columns (verdicts, pair/state counts) are computed with row-local or
    per-domain memo state so they are byte-identical for every [jobs]
    setting — only the trailing [ms] column may vary. *)

open Lang
module M = Promising.Machine

(* ------------------------------------------------------------------ *)
(* E1/E2: transformation soundness                                      *)
(* ------------------------------------------------------------------ *)

type e12_row = {
  tr : Catalog.transformation;
  simple_got : Catalog.verdict;
  advanced_got : Catalog.verdict;
  pairs : int;
  wall_ms : float;
}

let e12_ok (r : e12_row) =
  r.simple_got = r.tr.Catalog.simple && r.advanced_got = r.tr.Catalog.advanced

let verdict b = if b then Catalog.Sound else Catalog.Unsound

let e12_row ?(values = Domain.default_values) (tr : Catalog.transformation) :
    e12_row =
  let row, ms =
    Engine.Stats.timed (fun () ->
        let src = Parser.stmt_of_string tr.Catalog.src in
        let tgt = Parser.stmt_of_string tr.Catalog.tgt in
        let d = Domain.of_stmts ~values [ src; tgt ] in
        let simple, simple_pairs = Seq_model.Refine.check_count d ~src ~tgt in
        let advanced, advanced_pairs =
          if simple then (true, 0)
          else Seq_model.Advanced.check_count d ~src ~tgt
        in
        {
          tr;
          simple_got = verdict simple;
          advanced_got = verdict advanced;
          pairs = simple_pairs + advanced_pairs;
          wall_ms = 0.;
        })
  in
  { row with wall_ms = ms }

let e12_rows ?pool ?jobs ?values () : e12_row list =
  Engine.Sweep.run ?pool ?jobs ~f:(e12_row ?values) Catalog.transformations

let render_e12 ?(stats = false) (rows : e12_row list) : string =
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "%-32s %-26s %-18s %-18s %-10s %-8s%s\n" "name" "paper ref"
    "simple(exp/got)" "advanced(exp/got)" "ok" "pairs"
    (if stats then " ms" else "");
  let mismatches = ref 0 in
  List.iter
    (fun r ->
      let ok = e12_ok r in
      if not ok then incr mismatches;
      pr "%-32s %-26s %-18s %-18s %-10s %-8d%s\n" r.tr.Catalog.name
        r.tr.Catalog.paper_ref
        (Printf.sprintf "%s/%s"
           (Catalog.verdict_to_string r.tr.Catalog.simple)
           (Catalog.verdict_to_string r.simple_got))
        (Printf.sprintf "%s/%s"
           (Catalog.verdict_to_string r.tr.Catalog.advanced)
           (Catalog.verdict_to_string r.advanced_got))
        (if ok then "ok" else "MISMATCH")
        r.pairs
        (if stats then Printf.sprintf " %.1f" r.wall_ms else ""))
    rows;
  pr "-- %d transformations, %d mismatches\n" (List.length rows) !mismatches;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* E4: PS_na litmus outcomes                                            *)
(* ------------------------------------------------------------------ *)

type e4_row = {
  c : Catalog.concurrent;
  states : int;
  races : bool;
  truncated : bool;
  behaviors : string;
  wall_ms : float;
}

let e4_row ?params ?memo (c : Catalog.concurrent) : e4_row =
  let row, ms =
    Engine.Stats.timed (fun () ->
        let r = M.explore ?params ?memo (Parser.threads_of_string c.Catalog.threads) in
        {
          c;
          states = r.M.states;
          races = r.M.races;
          truncated = r.M.truncated;
          behaviors = Fmt.str "%a" M.pp_behaviors r.M.behaviors;
          wall_ms = 0.;
        })
  in
  { row with wall_ms = ms }

let e4_rows ?pool ?jobs ?params () : e4_row list =
  Engine.Sweep.run_with ?pool ?jobs ~init:M.make_memo
    ~f:(fun memo c -> e4_row ?params ~memo c)
    Catalog.concurrent_programs

let render_e4 ?(stats = false) (rows : e4_row list) : string =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "%-12s %-18s %-8s %-7s %s%s\n" "litmus" "paper ref" "states" "races"
    "behaviors"
    (if stats then "  [ms]" else "");
  List.iter
    (fun r ->
      pr "%-12s %-18s %-8d %-7b %s%s%s\n" r.c.Catalog.cname r.c.Catalog.cref
        r.states r.races r.behaviors
        (if r.truncated then " (TRUNCATED)" else "")
        (if stats then Printf.sprintf "  [%.1f]" r.wall_ms else ""))
    rows;
  pr "-- %d litmus programs\n" (List.length rows);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* E5: adequacy                                                         *)
(* ------------------------------------------------------------------ *)

let render_e5 ?(stats = false) (rows : Adequacy.row list) : string =
  let buf = Buffer.create 2048 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "%-32s %-9s %-11s %-20s%s\n" "transformation" "SEQ-adv" "PS-refines"
    "ok"
    (if stats then " pairs    states    hits" else "");
  let violations = ref 0 in
  List.iter
    (fun (r : Adequacy.row) ->
      let all_refine =
        List.for_all (fun (_, ok, _) -> ok) r.Adequacy.contexts
      in
      let ok = Adequacy.row_ok r in
      if not ok then incr violations;
      pr "%-32s %-9b %-11b %-20s%s\n" r.Adequacy.tr.Catalog.name
        r.Adequacy.seq_advanced all_refine
        (if ok then "ok" else "ADEQUACY VIOLATION")
        (if stats then
           Printf.sprintf " %-8d %-9d %d" r.Adequacy.seq_pairs
             r.Adequacy.states r.Adequacy.memo_hits
         else ""))
    rows;
  let n_contexts =
    match rows with r :: _ -> List.length r.Adequacy.contexts | [] -> 0
  in
  pr "-- %d rows x %d contexts, %d adequacy violations\n" (List.length rows)
    n_contexts !violations;
  Buffer.contents buf
