(** Empirical validation of the adequacy theorem (Thm 6.2, E5).

    Adequacy states: if σ_tgt ⊑w σ_src in SEQ (and σ_src is deterministic,
    which WHILE programs are by construction), then for {e any} concurrent
    context, the target contextually refines the source in PS_na.  We
    cannot quantify over all contexts, but we can falsify: for every corpus
    transformation and every context in the library, a SEQ-accepted
    transformation must PS_na-refine.  A single SEQ-accepts/PS_na-refutes
    pair would be a counterexample to the implementation (or the
    theorem). *)

open Lang
module M = Promising.Machine

type row = {
  tr : Catalog.transformation;
  seq_simple : bool;
  seq_advanced : bool;
  seq_pairs : int;  (** SEQ simulation pairs explored (simple + advanced) *)
  contexts : (string * bool * bool) list;
      (** context name, PS_na refines, exploration complete *)
  states : int;  (** PS_na states explored, summed over the contexts *)
  memo_hits : int;  (** certification-memo hits across the row *)
}

(** Does the adequacy implication hold on this row? *)
let row_ok (r : row) =
  (not r.seq_advanced) || List.for_all (fun (_, refines, _) -> refines) r.contexts

let check_transformation ?(params = Promising.Thread.default_params)
    ?contexts ?memo ?budget (tr : Catalog.transformation) : row =
  let contexts = Option.value contexts ~default:Catalog.contexts in
  (* one memo per row: the src thread's certification verdicts recur
     across contexts, and a row-local table keeps the hit count
     deterministic however rows are scheduled *)
  let memo = match memo with Some m -> m | None -> M.make_memo () in
  let src = Parser.stmt_of_string tr.Catalog.src in
  let tgt = Parser.stmt_of_string tr.Catalog.tgt in
  let d = Domain.of_stmts ~values:params.Promising.Thread.values [ src; tgt ] in
  let seq_simple, simple_pairs =
    Seq_model.Refine.check_count ?budget d ~src ~tgt
  in
  let seq_advanced, advanced_pairs =
    if seq_simple then (true, 0) (* Prop 3.4 *)
    else Seq_model.Advanced.check_count ?budget d ~src ~tgt
  in
  let states = ref 0 in
  let memo_hits = ref 0 in
  let contexts =
    List.map
      (fun (name, ctx_src) ->
        let ctx_threads = Parser.threads_of_string ctx_src in
        (* a ⊥ behavior of the source matches everything, so the source
           exploration may stop at the first ⊥ and skip the target *)
        let rs =
          M.explore ~params ~until_bot:true ~memo ?budget (src :: ctx_threads)
        in
        states := !states + rs.M.states;
        memo_hits := !memo_hits + rs.M.memo_hits;
        if M.Behavior_set.mem M.Bot rs.M.behaviors then (name, true, true)
        else begin
          let rt = M.explore ~params ~memo ?budget (tgt :: ctx_threads) in
          states := !states + rt.M.states;
          memo_hits := !memo_hits + rt.M.memo_hits;
          ( name,
            M.refines ~src:rs.M.behaviors ~tgt:rt.M.behaviors,
            (not rs.M.truncated) && not rt.M.truncated )
        end)
      contexts
  in
  {
    tr;
    seq_simple;
    seq_advanced;
    seq_pairs = simple_pairs + advanced_pairs;
    contexts;
    states = !states;
    memo_hits = !memo_hits;
  }

(** Run the experiment over (a sublist of) the corpus, one engine task
    per row. *)
let run ?pool ?jobs ?params ?contexts ?(corpus = Catalog.transformations) () :
    row list =
  Engine.Sweep.run ?pool ?jobs
    ~f:(fun tr -> check_transformation ?params ?contexts tr)
    corpus

(** The fault-tolerant variant: one supervised outcome per corpus row, in
    corpus order; never raises (see {!Engine.Sweep.run_verdict}). *)
let run_v ?pool ?jobs ?params ?contexts ?budget ?retries ?faults
    ?(corpus = Catalog.transformations) () :
    (Catalog.transformation * row Engine.Sweep.outcome) list =
  let outcomes =
    Engine.Sweep.run_verdict ?pool ?jobs ?budget ?retries ?faults
      ~f:(fun ~budget tr -> check_transformation ?params ?contexts ~budget tr)
      corpus
  in
  List.combine corpus outcomes
