(** Parallel sweeps with a sequential contract.

    Every function here returns results {e in input order} and behaves
    observationally like its sequential counterpart, whatever [jobs] is:

    - results are collected by task index, never by completion order;
    - if several tasks raise, the exception of the {e lowest-index}
      raising task is re-raised (with its backtrace), as a sequential
      left-to-right run would have done;
    - {!find_first} returns the match of lowest task index, even when a
      higher-index worker finds its match earlier in wall-clock time;
      tasks beyond the best match so far are cancelled, tasks before it
      always run.

    The determinism contract requires [f] to be observationally pure:
    given the same task it must return the same value regardless of
    scheduling.  Per-domain state handed out by {!run_with} may make
    [f] {e faster} (warm memo tables) but must never change its result
    — see docs/ENGINE.md.

    [?pool] reuses an existing {!Pool.t} (its size wins); otherwise a
    temporary pool of [?jobs] slots is created and shut down around the
    sweep. *)

(** [run ?jobs ~f tasks] = [List.map f tasks], swept across domains. *)
val run :
  ?pool:Pool.t -> ?jobs:int -> ?chunk:int -> f:('a -> 'b) -> 'a list -> 'b list

(** [run_with ~init ~f tasks]: like {!run}, but each worker domain
    lazily creates one ['env] with [init] and passes it to every task it
    executes (fresh envs per call, never shared across domains) — the
    hook for per-domain memo/interner tables. *)
val run_with :
  ?pool:Pool.t ->
  ?jobs:int ->
  ?chunk:int ->
  init:(unit -> 'env) ->
  f:('env -> 'a -> 'b) ->
  'a list ->
  'b list

(** [run_timed ~f tasks]: {!run}, pairing each result with the task's
    wall-clock milliseconds. *)
val run_timed :
  ?pool:Pool.t ->
  ?jobs:int ->
  ?chunk:int ->
  f:('a -> 'b) ->
  'a list ->
  ('b * float) list

(** The outcome of one supervised task: the task's result, or the
    normalized reason it could not be computed.  [attempts] counts
    executions (1 = first try succeeded); [quarantined] records that the
    task raised non-transiently and was excluded from the retry path.
    [wall_ms] includes retry backoff. *)
type 'b outcome = {
  result : ('b, Verdict.reason) Stdlib.result;
  attempts : int;
  quarantined : bool;
  wall_ms : float;
}

val outcome_ok : 'b outcome -> bool

(** [run_verdict ~f tasks]: the fault-tolerant sweep.  Never raises;
    returns one outcome per task, in input order, preserving the
    parallel=sequential determinism contract (each outcome is a pure
    function of the task, its index, the budget [spec] and the fault
    plan — never of scheduling).

    Per task attempt: a fresh budget is started from [budget] (so each
    retry gets the full [timeout_ms] again), [faults] is applied (see
    {!Faults.apply}), then [f] runs with the budget.  Budget exhaustion
    and every exception ([Stack_overflow]/[Out_of_memory] included) are
    trapped into [Error] outcomes.  Failures whose reason is transient
    ({!Verdict.transient}) are retried up to [retries] extra times with
    doubling backoff ([backoff_ms], capped at [max_backoff_ms]); a task
    that raised non-transiently is quarantined: recorded and skipped on
    retry, leaving every other task's result intact. *)
val run_verdict :
  ?pool:Pool.t ->
  ?jobs:int ->
  ?chunk:int ->
  ?budget:Budget.spec ->
  ?retries:int ->
  ?backoff_ms:float ->
  ?max_backoff_ms:float ->
  ?faults:Faults.plan ->
  f:(budget:Budget.t -> 'a -> 'b) ->
  'a list ->
  'b outcome list

(** {!run_verdict} with a per-domain environment, as {!run_with}. *)
val run_verdict_with :
  ?pool:Pool.t ->
  ?jobs:int ->
  ?chunk:int ->
  ?budget:Budget.spec ->
  ?retries:int ->
  ?backoff_ms:float ->
  ?max_backoff_ms:float ->
  ?faults:Faults.plan ->
  init:(unit -> 'env) ->
  f:('env -> budget:Budget.t -> 'a -> 'b) ->
  'a list ->
  'b outcome list

(** [find_first ~f tasks] is [List.find_map]-with-index: the first task
    (lowest index) for which [f] returns [Some].  Remaining tasks are
    cancelled once a match is known — the "stop on first UB/mismatch"
    mode. *)
val find_first :
  ?pool:Pool.t ->
  ?jobs:int ->
  ?chunk:int ->
  f:('a -> 'b option) ->
  'a list ->
  (int * 'b) option
