(** Shared validation of the CLI flags every driver understands.

    Historically each binary clamped or silently misused out-of-range
    flags ([Pool.create] clamps [--jobs 0] to 1, a negative
    [--timeout-ms] behaved as already-expired, a negative [--retries]
    as 0).  The drivers now agree on one contract, documented in the
    README exit-code table: an out-of-range flag is a {e usage error} —
    one line on stderr and exit {!usage_exit}, before any work starts.

    The [validate_*] functions return the first problem found as
    [Error "flag NAME: message"]; drivers print it prefixed with their
    own name and exit {!usage_exit}. *)

(** Exit code for rejected flag values (matches cmdliner's own usage
    errors). *)
val usage_exit : int

(** [jobs] must be >= 1 (worker domains include the caller). *)
val validate_jobs : int -> (unit, string) result

(** If present, [--timeout-ms] must be >= 0 (0 is a valid, immediately
    exhausted budget). *)
val validate_timeout_ms : float option -> (unit, string) result

(** [--retries] must be >= 0. *)
val validate_retries : int -> (unit, string) result

(** If present, [--max-states] must be >= 0. *)
val validate_max_states : int option -> (unit, string) result

(** [--inject-faults] must be >= 0. *)
val validate_inject_faults : int -> (unit, string) result

(** First error among the flags common to the sweep drivers; [retries]
    and [inject_faults] default to 0 (always valid) when a driver does
    not expose them. *)
val validate :
  ?retries:int ->
  ?inject_faults:int ->
  jobs:int ->
  timeout_ms:float option ->
  max_states:int option ->
  unit ->
  (unit, string) result

(** [validate_pos ~flag n]: a generic "must be >= 1" check for
    driver-specific flags (e.g. seqd's [--mem-capacity]). *)
val validate_pos : flag:string -> int -> (unit, string) result

(** [validate_nonneg ~flag n]: a generic "must be >= 0" check. *)
val validate_nonneg : flag:string -> int -> (unit, string) result

(** [validate_choice ~flag ~choices v]: [v] must be one of [choices]
    (used by [--backend], validated against [Backends.Registry.names];
    the error message lists the valid choices).  Engine cannot depend on
    the backends library, so callers pass the known names in. *)
val validate_choice :
  flag:string -> choices:string list -> string -> (unit, string) result
