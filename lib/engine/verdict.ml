(** Three-valued verdicts (see verdict.mli). *)

type trap = { exn : string; backtrace : string; transient : bool }

type reason =
  | Exhausted of Budget.reason
  | Trapped of trap

type 'a t = Proved | Refuted of 'a | Unknown of reason

(* How a Proved was obtained: a static certificate needs no enumeration,
   so the split is the fast-path hit rate.  Static = pipeline-replay
   certificate; Static_abs = abstract-interpretation certificate. *)
type provenance = Static | Static_abs | Enumerated

let provenance_to_string = function
  | Static -> "static"
  | Static_abs -> "static-abs"
  | Enumerated -> "enumerated"

let pp_provenance ppf p = Format.pp_print_string ppf (provenance_to_string p)

let of_bool b = if b then Proved else Refuted ()

let transient = function
  | Exhausted Budget.Deadline -> true
  | Exhausted (Budget.States | Budget.Fuel) -> false
  | Trapped t -> t.transient

let reason_of_exn (e : exn) (bt : Printexc.raw_backtrace) : reason =
  match e with
  | Budget.Exhausted r -> Exhausted r
  | Faults.Injected { transient; _ } ->
    Trapped
      {
        exn = Printexc.to_string e;
        backtrace = Printexc.raw_backtrace_to_string bt;
        transient;
      }
  | e ->
    Trapped
      {
        exn = Printexc.to_string e;
        backtrace = Printexc.raw_backtrace_to_string bt;
        transient = false;
      }

let capture (f : unit -> 'a) : ('a, reason) Stdlib.result =
  match f () with
  | v -> Ok v
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    Error (reason_of_exn e bt)

let run (f : unit -> 'a t) : 'a t =
  match capture f with Ok v -> v | Error r -> Unknown r

let reason_to_string = function
  | Exhausted r -> Budget.reason_to_string r
  | Trapped t -> "trap: " ^ t.exn

let pp_reason ppf r = Format.pp_print_string ppf (reason_to_string r)

let to_string = function
  | Proved -> "PROVED"
  | Refuted _ -> "REFUTED"
  | Unknown r -> Printf.sprintf "UNKNOWN(%s)" (reason_to_string r)

let pp ppf v = Format.pp_print_string ppf (to_string v)
