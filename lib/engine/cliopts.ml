(** Shared validation of driver CLI flags (see .mli). *)

let usage_exit = 2

let err flag msg = Error (Printf.sprintf "flag %s: %s" flag msg)

let validate_pos ~flag n =
  if n >= 1 then Ok () else err flag (Printf.sprintf "must be >= 1 (got %d)" n)

let validate_nonneg ~flag n =
  if n >= 0 then Ok () else err flag (Printf.sprintf "must be >= 0 (got %d)" n)

let validate_jobs n = validate_pos ~flag:"--jobs" n

let validate_timeout_ms = function
  | None -> Ok ()
  | Some ms ->
    if ms >= 0.0 && Float.is_finite ms then Ok ()
    else err "--timeout-ms" (Printf.sprintf "must be >= 0 (got %g)" ms)

let validate_retries n = validate_nonneg ~flag:"--retries" n

let validate_max_states = function
  | None -> Ok ()
  | Some n -> validate_nonneg ~flag:"--max-states" n

let validate_inject_faults n = validate_nonneg ~flag:"--inject-faults" n

let validate_choice ~flag ~choices v =
  if List.mem v choices then Ok ()
  else
    err flag
      (Printf.sprintf "unknown value %S (choose from: %s)" v
         (String.concat ", " choices))

let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e

let validate ?(retries = 0) ?(inject_faults = 0) ~jobs ~timeout_ms ~max_states
    () =
  let* () = validate_jobs jobs in
  let* () = validate_timeout_ms timeout_ms in
  let* () = validate_retries retries in
  let* () = validate_max_states max_states in
  validate_inject_faults inject_faults
