(** Deterministic fault injection (see faults.mli). *)

type action =
  | Raise of { transient : bool }
  | Stall_ms of float
  | Burn_states of int

type rule = { index : int; action : action; attempts : int }

type plan = rule list

exception Injected of { index : int; attempt : int; transient : bool }

let () =
  Printexc.register_printer (function
    | Injected { index; attempt; transient } ->
      Some
        (Printf.sprintf "injected fault (task %d, attempt %d%s)" index attempt
           (if transient then ", transient" else ""))
    | _ -> None)

let none : plan = []

let raise_at ?(transient = false) ?(attempts = max_int) indices =
  List.map (fun index -> { index; action = Raise { transient }; attempts }) indices

let seeded ~seed ~tasks ~faulty ?(action = Raise { transient = false })
    ?(attempts = max_int) () : plan =
  if tasks <= 0 || faulty <= 0 then []
  else begin
    (* explicit-seed PRNG: the plan is a pure function of [seed] *)
    let st = Random.State.make [| 0x5eed; seed; tasks |] in
    let picked = Hashtbl.create 16 in
    let n = min faulty tasks in
    while Hashtbl.length picked < n do
      Hashtbl.replace picked (Random.State.int st tasks) ()
    done;
    Hashtbl.fold (fun index () acc -> { index; action; attempts } :: acc) picked []
    |> List.sort (fun a b -> compare a.index b.index)
  end

let backoff_ms ~seed ~base_ms ~max_ms ~attempt =
  let attempt = max 1 attempt in
  (* explicit-seed PRNG: the delay is a pure function of (seed, attempt),
     so retry schedules replay exactly in tests and chaos drills *)
  let st = Random.State.make [| 0xbac0ff; seed; attempt |] in
  let base = Float.max 0. base_ms in
  let cap = Float.max base max_ms in
  let exp = Float.min cap (base *. (2. ** float_of_int (attempt - 1))) in
  let jitter = if exp > 0. then Random.State.float st (exp /. 2.) else 0. in
  Float.min cap (exp +. jitter)

let apply (plan : plan) ~(budget : Budget.t) ~index ~attempt =
  match List.find_opt (fun r -> r.index = index) plan with
  | None -> ()
  | Some r ->
    if attempt <= r.attempts then (
      match r.action with
      | Raise { transient } -> raise (Injected { index; attempt; transient })
      | Stall_ms ms ->
        if ms > 0. then Unix.sleepf (ms /. 1000.);
        (* force a clock poll so a stall past the deadline is noticed
           deterministically, before any real work starts *)
        Budget.check budget
      | Burn_states n -> Budget.spend_state ~n budget)
