(** A fixed-size pool of worker domains draining a chunked work queue.

    Two shapes:

    - {b Shared} (default): the pool owns [size - 1] spawned domains and
      the caller of {!run_job} participates as worker 0, so [jobs = 1]
      runs everything synchronously on the calling domain with no
      spawning at all.  One job at a time, submitted from a single
      orchestrating domain.
    - {b Dedicated} ([~dedicated:true]): the pool owns all [size]
      domains.  {!submit} dispatches fire-and-forget thunks onto them,
      several callers may {!run_job} concurrently, and a thunk running on
      a worker may itself call {!run_job} on the same pool (it
      participates under its own worker slot) — this is how the seqd
      server evaluates many requests at once while [Batch] requests
      still fan out their sweeps.

    Work is submitted as one job of [n] indexed items, split into
    contiguous index ranges (chunks) that workers pull off a shared
    queue under a mutex.  See {!Sweep} for the high-level,
    exception-safe API. *)

type t

(** [create ?jobs ?dedicated ()] spawns a pool with [jobs] worker slots.
    Default [jobs]: [Domain.recommended_domain_count ()]; clamped to at
    least 1.  [dedicated] (default [false]) spawns a domain for every
    slot instead of leaving slot 0 to the {!run_job} caller. *)
val create : ?jobs:int -> ?dedicated:bool -> unit -> t

(** Worker slots (including the calling domain for shared pools). *)
val size : t -> int

(** [run_job t ~n run] executes [run ~wid i] for every [i] in
    [0 .. n-1] across the pool and returns when all items are accounted
    for.  [wid] is the worker slot — distinct concurrent invocations on
    distinct domains always carry distinct [wid]s, so [wid]-indexed
    state needs no locking.  [chunk] is the queue granularity (default:
    [max 1 (n / (4 * size))]).

    On a shared pool the caller participates as worker 0 (single
    orchestrator only).  On a dedicated pool an external caller blocks
    while the workers execute; a caller that is itself a pool worker (a
    {!submit} thunk) participates under its own slot, draining queued
    chunks — including other jobs' — until its job completes.

    [run] is expected not to raise; if it does, the first exception
    observed is re-raised after the job completes (remaining items of
    the raising chunk are skipped, other chunks still run).  For
    deterministic error reporting use {!Sweep}, which catches per item. *)
val run_job : t -> ?chunk:int -> n:int -> (wid:int -> int -> unit) -> unit

(** [submit t thunk] enqueues a fire-and-forget task for a worker domain
    to run.  Never blocks and never reports completion — callers track
    their own completions (the seqd server pairs it with a wakeup
    pipe).  [thunk] must not raise; an escaping exception is swallowed.
    Meaningful on dedicated pools (on a shared pool with [jobs = 1]
    nothing will ever run the thunk).  @raise Invalid_argument after
    {!shutdown}. *)
val submit : t -> (unit -> unit) -> unit

(** Signal workers to exit and join them.  Idempotent.  Queued work is
    still drained before workers exit; {!run_job} jobs must not be
    running. *)
val shutdown : t -> unit

(** [with_pool ?jobs f] runs [f] with a fresh shared pool and always
    shuts it down. *)
val with_pool : ?jobs:int -> (t -> 'a) -> 'a
