(** A fixed-size pool of worker domains draining a chunked work queue.

    The pool owns [size - 1] spawned domains; the caller of {!run_job}
    participates as worker 0, so [jobs = 1] runs everything synchronously
    on the calling domain with no spawning at all.  Work is submitted as
    one job of [n] indexed items, split into contiguous index ranges
    (chunks) that workers pull off a shared queue under a mutex.

    The pool is an orchestration primitive, not a general scheduler: one
    job runs at a time, submitted from a single orchestrating domain
    (concurrent {!run_job} calls are not supported).  See
    {!Sweep} for the high-level, exception-safe API. *)

type t

(** [create ?jobs ()] spawns a pool with [jobs] worker slots (including
    the caller).  Default: [Domain.recommended_domain_count ()].  Values
    are clamped to at least 1. *)
val create : ?jobs:int -> unit -> t

(** Worker slots, including the calling domain. *)
val size : t -> int

(** [run_job t ~n run] executes [run ~wid i] for every [i] in
    [0 .. n-1] across the pool and returns when all items are accounted
    for.  [wid] is the worker slot (0 = caller) — distinct concurrent
    invocations always carry distinct [wid]s, so [wid]-indexed state
    needs no locking.  [chunk] is the queue granularity (default:
    [max 1 (n / (4 * size))]).

    [run] is expected not to raise; if it does, the first exception
    observed is re-raised after the job completes (remaining items of
    the raising chunk are skipped, other chunks still run).  For
    deterministic error reporting use {!Sweep}, which catches per item. *)
val run_job : t -> ?chunk:int -> n:int -> (wid:int -> int -> unit) -> unit

(** Signal workers to exit and join them.  Idempotent.  Jobs must not be
    running. *)
val shutdown : t -> unit

(** [with_pool ?jobs f] runs [f] with a fresh pool and always shuts it
    down. *)
val with_pool : ?jobs:int -> (t -> 'a) -> 'a
