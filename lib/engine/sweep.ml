(** Parallel sweeps over a {!Pool} with a sequential contract (see
    sweep.mli).

    Each task index gets one cell; cells are written by exactly one
    domain each, and the pool's mutex hand-offs publish them to the
    orchestrator before [Pool.run_job] returns.  Cancellation is a
    monotonically decreasing atomic index bound: an event (match or
    exception) at index [i] stops tasks [> i] from starting, while tasks
    [< i] always run — which is exactly what makes min-index selection
    deterministic. *)

type 'b cell =
  | Empty  (* cancelled before starting *)
  | Value of 'b
  | Raised of exn * Printexc.raw_backtrace

let cancel_down bound i =
  let rec go () =
    let c = Atomic.get bound in
    if i < c && not (Atomic.compare_and_set bound c i) then go ()
  in
  go ()

let with_pool_opt ?pool ?jobs f =
  match pool with Some p -> f p | None -> Pool.with_pool ?jobs f

(* Core sweep: fill one cell per task, honouring cancellation. *)
let run_cells ?pool ?jobs ?chunk ~stop ~init ~f tasks =
  let arr = Array.of_list tasks in
  let n = Array.length arr in
  let cells = Array.make n Empty in
  if n > 0 then
    with_pool_opt ?pool ?jobs (fun pool ->
        let envs = Array.make (Pool.size pool) None in
        let bound = Atomic.make max_int in
        let run ~wid i =
          if i < Atomic.get bound then begin
            let env =
              match envs.(wid) with
              | Some e -> e
              | None ->
                let e = init () in
                envs.(wid) <- Some e;
                e
            in
            match f env arr.(i) with
            | r ->
              cells.(i) <- Value r;
              if stop r then cancel_down bound (i + 1)
            | exception e ->
              cells.(i) <- Raised (e, Printexc.get_raw_backtrace ());
              cancel_down bound (i + 1)
          end
        in
        Pool.run_job pool ?chunk ~n run);
  cells

(* Deterministic collection: re-raise the lowest-index exception, else
   all cells are values. *)
let collect cells =
  let exn = ref None in
  for i = Array.length cells - 1 downto 0 do
    match cells.(i) with
    | Raised (e, bt) -> exn := Some (e, bt)
    | Value _ | Empty -> ()
  done;
  match !exn with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None ->
    Array.to_list
      (Array.map
         (function
           | Value v -> v
           | Empty | Raised _ -> assert false (* no exception, no stop *))
         cells)

let run_with ?pool ?jobs ?chunk ~init ~f tasks =
  collect
    (run_cells ?pool ?jobs ?chunk ~stop:(fun _ -> false) ~init ~f tasks)

let run ?pool ?jobs ?chunk ~f tasks =
  run_with ?pool ?jobs ?chunk ~init:(fun () -> ()) ~f:(fun () x -> f x) tasks

let run_timed ?pool ?jobs ?chunk ~f tasks =
  run ?pool ?jobs ?chunk ~f:(fun x -> Stats.timed (fun () -> f x)) tasks

(* ------------------------------------------------------------------ *)
(* Supervised sweeps: budgeted, fault-tolerant, never raising           *)
(* ------------------------------------------------------------------ *)

type 'b outcome = {
  result : ('b, Verdict.reason) Stdlib.result;
  attempts : int;
  quarantined : bool;
  wall_ms : float;
}

let outcome_ok o = Result.is_ok o.result

(* One supervised task: fresh budget per attempt (retries restart the
   deadline), fault injection at attempt start, every exception trapped.
   Transient failures retry with doubling capped backoff; a trapped
   non-transient exception quarantines the task — recorded in the
   outcome, never retried.  The outcome is a pure function of
   (task, index, plan, spec), so the parallel=sequential contract of the
   surrounding sweep is preserved. *)
let supervise ~budget ~retries ~backoff_ms ~max_backoff_ms ~faults ~f env i x =
  let rec go attempt backoff =
    let b = Budget.start budget in
    match
      Faults.apply faults ~budget:b ~index:i ~attempt;
      f env ~budget:b x
    with
    | r -> { result = Ok r; attempts = attempt; quarantined = false; wall_ms = 0. }
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      let reason = Verdict.reason_of_exn e bt in
      if Verdict.transient reason && attempt <= retries then begin
        if backoff > 0. then Unix.sleepf (backoff /. 1000.);
        go (attempt + 1) (Float.min max_backoff_ms (backoff *. 2.))
      end
      else
        {
          result = Error reason;
          attempts = attempt;
          quarantined = (match reason with Verdict.Trapped _ -> true | Verdict.Exhausted _ -> false);
          wall_ms = 0.;
        }
  in
  let o, ms = Stats.timed (fun () -> go 1 backoff_ms) in
  { o with wall_ms = ms }

let run_verdict_with ?pool ?jobs ?chunk ?(budget = Budget.spec_unlimited)
    ?(retries = 0) ?(backoff_ms = 1.) ?(max_backoff_ms = 100.)
    ?(faults = Faults.none) ~init ~f tasks =
  run_with ?pool ?jobs ?chunk ~init
    ~f:(fun env (i, x) ->
      supervise ~budget ~retries ~backoff_ms ~max_backoff_ms ~faults ~f env i x)
    (List.mapi (fun i x -> (i, x)) tasks)

let run_verdict ?pool ?jobs ?chunk ?budget ?retries ?backoff_ms ?max_backoff_ms
    ?faults ~f tasks =
  run_verdict_with ?pool ?jobs ?chunk ?budget ?retries ?backoff_ms
    ?max_backoff_ms ?faults
    ~init:(fun () -> ())
    ~f:(fun () ~budget x -> f ~budget x)
    tasks

let find_first ?pool ?jobs ?chunk ~f tasks =
  let cells =
    run_cells ?pool ?jobs ?chunk
      ~stop:(fun r -> Option.is_some r)
      ~init:(fun () -> ())
      ~f:(fun () x -> f x)
      tasks
  in
  (* The first decisive cell wins: a lower-index exception beats a
     higher-index match, as in a sequential left-to-right scan. *)
  let n = Array.length cells in
  let rec scan i =
    if i >= n then None
    else
      match cells.(i) with
      | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
      | Value (Some r) -> Some (i, r)
      | Value None | Empty -> scan (i + 1)
  in
  scan 0
