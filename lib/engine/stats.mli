(** Per-task timing/stats records for parallel sweeps.

    [wall_ms] is the only field that may legitimately differ between
    runs (and between [--jobs] settings); [states] and [memo_hits] are
    deterministic as long as the task's memo tables are task-local (see
    docs/ENGINE.md for the determinism contract). *)

type task = {
  wall_ms : float;  (** wall-clock time of the task, milliseconds *)
  states : int;  (** states / simulation pairs explored *)
  memo_hits : int;  (** memoization-table hits *)
}

val zero : task
val add : task -> task -> task
val sum : task list -> task

(** [timed f] runs [f ()] and returns its result with the elapsed
    wall-clock milliseconds (monotonic enough for coarse task timing). *)
val timed : (unit -> 'a) -> 'a * float

val pp : Format.formatter -> task -> unit
