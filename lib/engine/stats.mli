(** Per-task timing/stats records for parallel sweeps.

    [wall_ms] is the only field that may legitimately differ between
    runs (and between [--jobs] settings); [states] and [memo_hits] are
    deterministic as long as the task's memo tables are task-local (see
    docs/ENGINE.md for the determinism contract). *)

type task = {
  wall_ms : float;  (** wall-clock time of the task, milliseconds *)
  states : int;  (** states / simulation pairs explored *)
  memo_hits : int;  (** memoization-table hits *)
}

val zero : task
val add : task -> task -> task
val sum : task list -> task

(** [timed f] runs [f ()] and returns its result with the elapsed
    wall-clock milliseconds (monotonic enough for coarse task timing). *)
val timed : (unit -> 'a) -> 'a * float

val pp : Format.formatter -> task -> unit

(** Static fast-path counters for validation sweeps: how many checks were
    discharged by a pipeline-replay certificate ([static_hits]), by the
    abstract-interpretation certifier ([static_abs_hits]), or by
    enumeration.  Unlike [wall_ms], all fields are deterministic. *)
type fastpath = { static_hits : int; static_abs_hits : int; enumerated : int }

val fastpath_zero : fastpath
val add_fastpath : fastpath -> fastpath -> fastpath

(** Checks discharged without enumeration (either static route). *)
val fastpath_static : fastpath -> int

val fastpath_total : fastpath -> int

(** Fraction of checks discharged statically (0 when none ran). *)
val fastpath_rate : fastpath -> float

(** E.g. ["static 32/57 (56%, 16 replay + 16 abstract)"]. *)
val pp_fastpath : Format.formatter -> fastpath -> unit
