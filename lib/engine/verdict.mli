(** Three-valued verdicts for budgeted, fault-tolerant checking.

    Exhaustive checkers historically answered [bool] — and diverged or
    crashed when they could not.  A verdict makes the third outcome a
    value: [Unknown reason] covers budget exhaustion ({!Budget.Exhausted})
    and trapped exceptions ([Stack_overflow], [Out_of_memory], injected
    faults, [Config.Mixed_access], arbitrary [exn]s with their backtrace).

    The verdict lattice: [Proved] and [Refuted _] are definite and may be
    trusted; [Unknown _] is strictly weaker than both — a budgeted run
    never converts a would-be [Proved]/[Refuted] into the other, it only
    weakens it to [Unknown] (tested).

    {!capture} and {!run} are the single catch-points: everything below
    them raises freely ({!Budget.check} included), everything above them
    sees total functions. *)

(** A trapped exception, normalized for deterministic rendering: [exn] is
    the printed exception (no addresses), the backtrace is kept separately
    and never included in [reason_to_string]. *)
type trap = { exn : string; backtrace : string; transient : bool }

type reason =
  | Exhausted of Budget.reason  (** the attempt's budget ran out *)
  | Trapped of trap  (** the task raised *)

(** A three-valued verdict; [Refuted] carries checker-specific refutation
    info (a counterexample, a mismatch description, [unit]). *)
type 'a t = Proved | Refuted of 'a | Unknown of reason

(** How a definite verdict was established: [Static] — certified by
    pipeline replay, no state enumeration ran; [Static_abs] — certified
    by the abstract-interpretation layer (value numbering + permission
    facts), also enumeration-free; [Enumerated] — the exhaustive checker
    ran.  A static proof is sound only if the certifier is (cross-checked
    by the qcheck suite); the split is what the benchmarks report as the
    fast-path hit rate. *)
type provenance = Static | Static_abs | Enumerated

val provenance_to_string : provenance -> string
val pp_provenance : Format.formatter -> provenance -> unit

val of_bool : bool -> unit t

(** Retrying may plausibly change the outcome: deadline exhaustion (the
    machine may have been contended) and faults injected as transient.
    State/fuel exhaustion and real traps are deterministic — not
    transient.  Drives {!Sweep.run_verdict}'s retry-vs-quarantine split. *)
val transient : reason -> bool

(** Normalize a raised exception (as caught) into a reason; the raw
    backtrace should be captured immediately at the catch site. *)
val reason_of_exn : exn -> Printexc.raw_backtrace -> reason

(** [capture f]: run [f], trapping budget exhaustion and every exception
    (including [Stack_overflow] and [Out_of_memory]) into [Error]. *)
val capture : (unit -> 'a) -> ('a, reason) Stdlib.result

(** [run f]: like {!capture} for verdict-returning [f]; failures become
    [Unknown]. *)
val run : (unit -> 'a t) -> 'a t

(** Deterministic short form: ["deadline"], ["states"], ["fuel"],
    ["trap: <exn>"] — no backtraces, stable across schedulings. *)
val reason_to_string : reason -> string

val pp_reason : Format.formatter -> reason -> unit

(** ["PROVED"], ["REFUTED"], or ["UNKNOWN(<reason>)"]. *)
val to_string : 'a t -> string

val pp : Format.formatter -> 'a t -> unit
