(** Fixed-size domain pool with a chunked work queue (see pool.mli).

    Synchronization is a single mutex plus two conditions: [work] wakes
    workers when chunks are enqueued (or at shutdown), [finished] wakes
    waiters when a job's remaining-item count hits zero.  The job's
    [remaining] counter counts items {e accounted for} (run or skipped
    after an escape), so it reaches zero even if a [run] callback
    violates the no-raise contract — the pool never deadlocks on a
    raising task.

    Deadlock-freedom with nested/concurrent jobs: a domain blocks on
    [finished] only after the queue is empty, at which point every
    unaccounted chunk of its job has been popped by some domain.  A
    popped chunk is either executing (progress) or its executor is
    itself blocked on a job nested strictly inside that chunk — the
    waits-on chain follows nesting depth, which is finite and acyclic,
    so it ends at an actively executing domain. *)

type job = {
  run : wid:int -> int -> unit;
  mutable remaining : int;  (* items not yet accounted for *)
  mutable poison : exn option;  (* first contract-violating exception *)
}

type range = { job : job; lo : int; hi : int }

type t = {
  uid : int;  (* identifies this pool in worker-domain DLS *)
  mutex : Mutex.t;
  work : Condition.t;
  finished : Condition.t;
  queue : range Queue.t;
  mutable closed : bool;
  mutable domains : unit Domain.t list;
  size : int;
  dedicated : bool;
}

let next_uid = Atomic.make 0

(* Which pool (by uid) and worker slot the current domain belongs to.
   Lets [run_job] called from inside a worker (a [submit] thunk running
   a nested sweep) participate under its own [wid] instead of stealing
   slot 0. *)
let dls_slot : (int * int) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let my_slot t =
  match !(Domain.DLS.get dls_slot) with
  | Some (uid, wid) when uid = t.uid -> Some wid
  | _ -> None

let size t = t.size

(* Run one range.  Exceptions escaping [job.run] poison the job but
   still account for the whole range, so [remaining] always drains. *)
let exec t ~wid (r : range) =
  (try
     for i = r.lo to r.hi - 1 do
       r.job.run ~wid i
     done
   with e ->
     Mutex.lock t.mutex;
     if r.job.poison = None then r.job.poison <- Some e;
     Mutex.unlock t.mutex);
  Mutex.lock t.mutex;
  r.job.remaining <- r.job.remaining - (r.hi - r.lo);
  if r.job.remaining <= 0 then Condition.broadcast t.finished;
  Mutex.unlock t.mutex

let rec worker t wid =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.closed do
    Condition.wait t.work t.mutex
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.mutex  (* closed and drained *)
  else begin
    let r = Queue.pop t.queue in
    Mutex.unlock t.mutex;
    exec t ~wid r;
    worker t wid
  end

let create ?jobs ?(dedicated = false) () =
  let size =
    match jobs with
    | Some j -> max 1 j
    | None -> max 1 (Domain.recommended_domain_count ())
  in
  let t =
    {
      uid = Atomic.fetch_and_add next_uid 1;
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      queue = Queue.create ();
      closed = false;
      domains = [];
      size;
      dedicated;
    }
  in
  (* Dedicated pools own every slot (an external orchestrator never
     participates); shared pools leave slot 0 to the [run_job] caller. *)
  let spawn wid =
    Domain.spawn (fun () ->
        Domain.DLS.get dls_slot := Some (t.uid, wid);
        worker t wid)
  in
  t.domains <-
    (if dedicated then List.init size spawn
     else List.init (size - 1) (fun k -> spawn (k + 1)));
  t

let enqueue t job ~n ~chunk =
  Mutex.lock t.mutex;
  if t.closed then begin
    Mutex.unlock t.mutex;
    invalid_arg "Engine.Pool: pool is shut down"
  end;
  let lo = ref 0 in
  while !lo < n do
    let hi = min n (!lo + chunk) in
    Queue.push { job; lo = !lo; hi } t.queue;
    lo := hi
  done;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex

let submit t thunk =
  let job =
    { run = (fun ~wid:_ _ -> thunk ()); remaining = 1; poison = None }
  in
  enqueue t job ~n:1 ~chunk:1

let run_job t ?chunk ~n run =
  if n > 0 then begin
    let job = { run; remaining = n; poison = None } in
    let chunk =
      match chunk with
      | Some c -> max 1 c
      | None -> max 1 (n / (4 * t.size))
    in
    enqueue t job ~n ~chunk;
    let participant_wid =
      match my_slot t with
      | Some wid -> Some wid  (* nested call from one of our workers *)
      | None -> if t.dedicated then None else Some 0
    in
    (match participant_wid with
     | Some wid ->
       (* Participate until the queue is drained (executing whatever is
          queued, including other jobs' chunks — required for progress
          when jobs nest), then block until in-flight chunks finish. *)
       let rec drain () =
         Mutex.lock t.mutex;
         if not (Queue.is_empty t.queue) then begin
           let r = Queue.pop t.queue in
           Mutex.unlock t.mutex;
           exec t ~wid r;
           drain ()
         end
         else begin
           while job.remaining > 0 do
             Condition.wait t.finished t.mutex
           done;
           Mutex.unlock t.mutex
         end
       in
       drain ()
     | None ->
       (* External caller of a dedicated pool: the workers own every
          slot, so just wait for the job to be accounted for. *)
       Mutex.lock t.mutex;
       while job.remaining > 0 do
         Condition.wait t.finished t.mutex
       done;
       Mutex.unlock t.mutex);
    match job.poison with None -> () | Some e -> raise e
  end

let shutdown t =
  Mutex.lock t.mutex;
  if t.closed then Mutex.unlock t.mutex
  else begin
    t.closed <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.domains;
    t.domains <- []
  end

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
