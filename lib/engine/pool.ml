(** Fixed-size domain pool with a chunked work queue (see pool.mli).

    Synchronization is a single mutex plus two conditions: [work] wakes
    workers when chunks are enqueued (or at shutdown), [finished] wakes
    the orchestrator when a job's remaining-item count hits zero.  The
    job's [remaining] counter counts items {e accounted for} (run or
    skipped after an escape), so it reaches zero even if a [run]
    callback violates the no-raise contract — the pool never deadlocks
    on a raising task. *)

type job = {
  run : wid:int -> int -> unit;
  mutable remaining : int;  (* items not yet accounted for *)
  mutable poison : exn option;  (* first contract-violating exception *)
}

type range = { job : job; lo : int; hi : int }

type t = {
  mutex : Mutex.t;
  work : Condition.t;
  finished : Condition.t;
  queue : range Queue.t;
  mutable closed : bool;
  mutable domains : unit Domain.t list;
  size : int;
}

let size t = t.size

(* Run one range.  Exceptions escaping [job.run] poison the job but
   still account for the whole range, so [remaining] always drains. *)
let exec t ~wid (r : range) =
  (try
     for i = r.lo to r.hi - 1 do
       r.job.run ~wid i
     done
   with e ->
     Mutex.lock t.mutex;
     if r.job.poison = None then r.job.poison <- Some e;
     Mutex.unlock t.mutex);
  Mutex.lock t.mutex;
  r.job.remaining <- r.job.remaining - (r.hi - r.lo);
  if r.job.remaining <= 0 then Condition.broadcast t.finished;
  Mutex.unlock t.mutex

let rec worker t wid =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.closed do
    Condition.wait t.work t.mutex
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.mutex  (* closed *)
  else begin
    let r = Queue.pop t.queue in
    Mutex.unlock t.mutex;
    exec t ~wid r;
    worker t wid
  end

let create ?jobs () =
  let size =
    match jobs with
    | Some j -> max 1 j
    | None -> max 1 (Domain.recommended_domain_count ())
  in
  let t =
    {
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      queue = Queue.create ();
      closed = false;
      domains = [];
      size;
    }
  in
  t.domains <-
    List.init (size - 1) (fun k -> Domain.spawn (fun () -> worker t (k + 1)));
  t

let run_job t ?chunk ~n run =
  if n > 0 then begin
    let job = { run; remaining = n; poison = None } in
    let chunk =
      match chunk with
      | Some c -> max 1 c
      | None -> max 1 (n / (4 * t.size))
    in
    Mutex.lock t.mutex;
    if t.closed then begin
      Mutex.unlock t.mutex;
      invalid_arg "Engine.Pool.run_job: pool is shut down"
    end;
    let lo = ref 0 in
    while !lo < n do
      let hi = min n (!lo + chunk) in
      Queue.push { job; lo = !lo; hi } t.queue;
      lo := hi
    done;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    (* The caller participates as worker 0 until the queue is drained,
       then blocks until in-flight chunks finish. *)
    let rec drain () =
      Mutex.lock t.mutex;
      if not (Queue.is_empty t.queue) then begin
        let r = Queue.pop t.queue in
        Mutex.unlock t.mutex;
        exec t ~wid:0 r;
        drain ()
      end
      else begin
        while job.remaining > 0 do
          Condition.wait t.finished t.mutex
        done;
        Mutex.unlock t.mutex
      end
    in
    drain ();
    match job.poison with None -> () | Some e -> raise e
  end

let shutdown t =
  Mutex.lock t.mutex;
  if t.closed then Mutex.unlock t.mutex
  else begin
    t.closed <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.domains;
    t.domains <- []
  end

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
