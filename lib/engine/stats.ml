type task = { wall_ms : float; states : int; memo_hits : int }

let zero = { wall_ms = 0.; states = 0; memo_hits = 0 }

let add a b =
  {
    wall_ms = a.wall_ms +. b.wall_ms;
    states = a.states + b.states;
    memo_hits = a.memo_hits + b.memo_hits;
  }

let sum = List.fold_left add zero

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.)

let pp ppf t =
  Format.fprintf ppf "%.1fms %d states %d hits" t.wall_ms t.states t.memo_hits
