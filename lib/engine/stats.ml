type task = { wall_ms : float; states : int; memo_hits : int }

let zero = { wall_ms = 0.; states = 0; memo_hits = 0 }

let add a b =
  {
    wall_ms = a.wall_ms +. b.wall_ms;
    states = a.states + b.states;
    memo_hits = a.memo_hits + b.memo_hits;
  }

let sum = List.fold_left add zero

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.)

let pp ppf t =
  Format.fprintf ppf "%.1fms %d states %d hits" t.wall_ms t.states t.memo_hits

type fastpath = { static_hits : int; static_abs_hits : int; enumerated : int }

let fastpath_zero = { static_hits = 0; static_abs_hits = 0; enumerated = 0 }

let add_fastpath a b =
  {
    static_hits = a.static_hits + b.static_hits;
    static_abs_hits = a.static_abs_hits + b.static_abs_hits;
    enumerated = a.enumerated + b.enumerated;
  }

let fastpath_static f = f.static_hits + f.static_abs_hits
let fastpath_total f = f.static_hits + f.static_abs_hits + f.enumerated

let fastpath_rate f =
  let total = fastpath_total f in
  if total = 0 then 0.
  else float_of_int (fastpath_static f) /. float_of_int total

let pp_fastpath ppf f =
  Format.fprintf ppf "static %d/%d (%.0f%%, %d replay + %d abstract)"
    (fastpath_static f) (fastpath_total f)
    (100. *. fastpath_rate f)
    f.static_hits f.static_abs_hits
