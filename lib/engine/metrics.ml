(** Named counters and latency percentile reservoirs (see .mli). *)

let reservoir_size = 8192

type series = {
  samples : float array;  (** ring buffer, [reservoir_size] slots *)
  mutable seen : int;  (** total observations; ring index = seen mod size *)
}

type t = {
  mutex : Mutex.t;
  counters : (string, int ref) Hashtbl.t;
  series : (string, series) Hashtbl.t;
}

let create () =
  {
    mutex = Mutex.create ();
    counters = Hashtbl.create 16;
    series = Hashtbl.create 16;
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let incr ?(n = 1) t name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.counters name with
      | Some r -> r := !r + n
      | None -> Hashtbl.add t.counters name (ref n))

let get t name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.counters name with
      | Some r -> !r
      | None -> 0)

let observe t name ms =
  with_lock t (fun () ->
      let s =
        match Hashtbl.find_opt t.series name with
        | Some s -> s
        | None ->
          let s = { samples = Array.make reservoir_size 0.0; seen = 0 } in
          Hashtbl.add t.series name s;
          s
      in
      s.samples.(s.seen mod reservoir_size) <- ms;
      s.seen <- s.seen + 1)

let counters t =
  with_lock t (fun () ->
      Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counters []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))

type latency = { count : int; p50 : float; p90 : float; p99 : float }

(* Nearest-rank percentile over a sorted sample: the smallest value whose
   rank is >= ceil(p * n). *)
let nearest_rank sorted p =
  let n = Array.length sorted in
  let rank = int_of_float (ceil (p *. float_of_int n)) in
  sorted.(max 0 (min (n - 1) (rank - 1)))

let latency_of_series s =
  let n = min s.seen reservoir_size in
  if n = 0 then None
  else begin
    let sorted = Array.sub s.samples 0 n in
    Array.sort Float.compare sorted;
    Some
      {
        count = s.seen;
        p50 = nearest_rank sorted 0.50;
        p90 = nearest_rank sorted 0.90;
        p99 = nearest_rank sorted 0.99;
      }
  end

let latency t name =
  with_lock t (fun () ->
      Option.bind (Hashtbl.find_opt t.series name) latency_of_series)

let latencies t =
  with_lock t (fun () ->
      Hashtbl.fold
        (fun name s acc ->
          match latency_of_series s with
          | Some l -> (name, l) :: acc
          | None -> acc)
        t.series []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))

let render t =
  let cs = counters t and ls = latencies t in
  let buf = Buffer.create 256 in
  List.iter
    (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "%s %d\n" name v))
    cs;
  List.iter
    (fun (name, l) ->
      Buffer.add_string buf
        (Printf.sprintf "%s count=%d p50=%.3fms p90=%.3fms p99=%.3fms\n" name
           l.count l.p50 l.p90 l.p99))
    ls;
  Buffer.contents buf
