(** Deterministic fault injection for the sweep supervisor.

    The test suite (and the CI robustness smoke) prove graceful
    degradation by making selected task indices misbehave: raise, stall
    past their deadline, or burn extra states from their budget.  A
    {!plan} is explicit configuration — rules name concrete task indices,
    and {!seeded} derives the indices from an explicit seed — so injected
    runs are deterministic for every [jobs] setting; there is no ambient
    randomness and no injection unless a plan is passed in. *)

(** What an injected fault does at the start of a task attempt. *)
type action =
  | Raise of { transient : bool }
      (** raise {!Injected}; transient faults qualify for the supervisor's
          retry path, persistent ones are quarantined *)
  | Stall_ms of float  (** sleep, then poll the budget's deadline *)
  | Burn_states of int  (** pre-charge states against the attempt's budget *)

(** One rule: fault task [index] on its first [attempts] attempts (so a
    transient rule with [attempts = 1] fails once and then succeeds on
    retry). *)
type rule = { index : int; action : action; attempts : int }

type plan = rule list

exception Injected of { index : int; attempt : int; transient : bool }

(** The empty plan: inject nothing. *)
val none : plan

(** [raise_at indices]: raise on every attempt of each listed index
    ([transient] defaults to [false], [attempts] to [max_int]). *)
val raise_at : ?transient:bool -> ?attempts:int -> int list -> plan

(** [seeded ~seed ~tasks ~faulty ()]: a plan faulting [faulty] distinct
    indices of [0..tasks-1], chosen deterministically from [seed];
    [action] defaults to [Raise { transient = false }]. *)
val seeded :
  seed:int -> tasks:int -> faulty:int -> ?action:action -> ?attempts:int ->
  unit -> plan

(** [backoff_ms ~seed ~base_ms ~max_ms ~attempt] is the delay (ms)
    before retry [attempt] (1-based): exponential doubling from
    [base_ms], capped at [max_ms], plus up to 50% jitter drawn from an
    explicit-seed PRNG — a pure function of [(seed, attempt)], so retry
    schedules replay exactly under test.  Used by the service client's
    resilience layer. *)
val backoff_ms :
  seed:int -> base_ms:float -> max_ms:float -> attempt:int -> float

(** Run the plan's rule for [index]/[attempt], if any, against the
    attempt's budget.  Called by {!Sweep.run_verdict} at the start of
    every task attempt; a no-op for indices without a rule. *)
val apply : plan -> budget:Budget.t -> index:int -> attempt:int -> unit
