(** Cooperative resource budgets for exhaustive checkers and explorers.

    The refinement/adequacy checkers are fixpoint explorations whose cost
    explodes with the domain size; a {!t} bounds one task attempt by an
    optional wall-clock deadline, a state/pair budget, and a step fuel.
    Hot loops call {!check} (cheap: a counter decrement between throttled
    clock polls) and charge work with {!spend_state}/{!spend_fuel}; when a
    limit is hit, {!Exhausted} is raised and is meant to be caught exactly
    once, at a verdict boundary ({!Verdict.run}/{!Verdict.capture} or
    {!Sweep.run_verdict}) where it becomes an [Unknown] outcome.

    A budget is mutable, single-owner state: create one per task attempt
    and never share one across domains.  {!unlimited} is the exception —
    all operations on it are no-ops (it never mutates), so it is safe to
    share and is the default everywhere, making the budgeted code paths
    byte-identical to the historical unbudgeted ones. *)

(** Why a budget ran out. *)
type reason =
  | Deadline  (** the wall-clock deadline passed *)
  | States  (** the state/pair budget was consumed *)
  | Fuel  (** the step fuel was consumed *)

exception Exhausted of reason

val reason_to_string : reason -> string
val pp_reason : Format.formatter -> reason -> unit

(** Immutable description of per-attempt limits; [start] turns it into a
    live budget (capturing the deadline at call time, so retries of a
    task each get a fresh full timeout). *)
type spec = {
  timeout_ms : float option;  (** wall-clock limit per attempt *)
  max_states : int option;  (** states/simulation pairs per attempt *)
  max_fuel : int option;  (** abstract step limit per attempt *)
}

val spec_unlimited : spec
val spec : ?timeout_ms:float -> ?max_states:int -> ?fuel:int -> unit -> spec
val spec_is_unlimited : spec -> bool

type t

(** The shared no-op budget: never exhausts, never mutates. *)
val unlimited : t

(** Start the clock on a [spec].  [start spec_unlimited == unlimited]. *)
val start : spec -> t

(** [make ()] is {!unlimited}; any argument makes a limited budget whose
    deadline (if any) starts now. *)
val make : ?timeout_ms:float -> ?max_states:int -> ?fuel:int -> unit -> t

val is_unlimited : t -> bool

(** Poll the deadline.  Amortized cost is one integer decrement: the
    clock is read only every few hundred calls (and on the first call, so
    an already-expired deadline is noticed immediately).
    @raise Exhausted [Deadline] when past the deadline. *)
val check : t -> unit

(** Charge [n] (default 1) states/pairs, then {!check}.
    @raise Exhausted [States] when the budget is consumed. *)
val spend_state : ?n:int -> t -> unit

(** Charge [n] (default 1) fuel steps, then {!check}.
    @raise Exhausted [Fuel] when the fuel is consumed. *)
val spend_fuel : ?n:int -> t -> unit

(** States charged so far (0 for {!unlimited}). *)
val states_used : t -> int
