(** Cooperative resource budgets (see budget.mli).

    The hot-path contract: [check] must be cheap enough to sit inside a
    fixpoint exploration loop.  Unlimited budgets short-circuit before
    touching any mutable field (so the shared [unlimited] value is
    domain-safe); limited budgets pay one integer decrement per call and
    read the clock only every [poll_interval] calls.  The poll countdown
    starts at 0, so the very first [check] of an already-expired deadline
    raises — a 0 ms timeout is deterministic, not racy. *)

type reason = Deadline | States | Fuel

exception Exhausted of reason

let reason_to_string = function
  | Deadline -> "deadline"
  | States -> "states"
  | Fuel -> "fuel"

let pp_reason ppf r = Format.pp_print_string ppf (reason_to_string r)

let () =
  Printexc.register_printer (function
    | Exhausted r -> Some (Printf.sprintf "Engine.Budget.Exhausted(%s)" (reason_to_string r))
    | _ -> None)

type spec = {
  timeout_ms : float option;
  max_states : int option;
  max_fuel : int option;
}

let spec_unlimited = { timeout_ms = None; max_states = None; max_fuel = None }

let spec ?timeout_ms ?max_states ?fuel () =
  { timeout_ms; max_states; max_fuel = fuel }

let spec_is_unlimited s =
  s.timeout_ms = None && s.max_states = None && s.max_fuel = None

type t = {
  limited : bool;
  deadline : float;  (* absolute Unix time; infinity = none *)
  max_states : int;  (* max_int = none *)
  max_fuel : int;
  mutable states : int;
  mutable fuel : int;
  mutable poll : int;  (* countdown to the next clock read *)
}

let poll_interval = 256

let unlimited =
  {
    limited = false;
    deadline = infinity;
    max_states = max_int;
    max_fuel = max_int;
    states = 0;
    fuel = 0;
    poll = 0;
  }

let start (s : spec) : t =
  if spec_is_unlimited s then unlimited
  else
    {
      limited = true;
      deadline =
        (match s.timeout_ms with
         | None -> infinity
         | Some ms -> Unix.gettimeofday () +. (ms /. 1000.));
      max_states = Option.value s.max_states ~default:max_int;
      max_fuel = Option.value s.max_fuel ~default:max_int;
      states = 0;
      fuel = 0;
      poll = 0;
    }

let make ?timeout_ms ?max_states ?fuel () =
  start (spec ?timeout_ms ?max_states ?fuel ())

let is_unlimited t = not t.limited

let check t =
  if t.limited && t.deadline < infinity then begin
    if t.poll <= 0 then begin
      t.poll <- poll_interval;
      (* [>=], not [>]: a 0 ms timeout sets the deadline to the current
         clock reading, and the first check may land on the same tick —
         an already-expired deadline must fire deterministically *)
      if Unix.gettimeofday () >= t.deadline then raise (Exhausted Deadline)
    end
    else t.poll <- t.poll - 1
  end

let spend_state ?(n = 1) t =
  if t.limited then begin
    t.states <- t.states + n;
    if t.states > t.max_states then raise (Exhausted States);
    check t
  end

let spend_fuel ?(n = 1) t =
  if t.limited then begin
    t.fuel <- t.fuel + n;
    if t.fuel > t.max_fuel then raise (Exhausted Fuel);
    check t
  end

let states_used t = t.states
