(** Service metrics: named counters and latency percentiles.

    A {!t} is a small thread-safe registry of monotonically increasing
    counters and per-name latency reservoirs, built for long-running
    services (the `seqd` daemon exposes one snapshot per [stats] RPC).
    All operations are mutex-protected and safe to call from any domain;
    the snapshot functions return plain values computed under the lock.

    Percentiles are computed over a bounded reservoir (a ring buffer of
    the most recent {!reservoir_size} observations per name) by the
    nearest-rank method on the sorted sample — exact until the ring
    wraps, recent-biased after. *)

type t

(** Observations kept per latency series. *)
val reservoir_size : int

val create : unit -> t

(** [incr t name] adds [n] (default 1) to counter [name], creating it at
    0 first if absent. *)
val incr : ?n:int -> t -> string -> unit

(** Current value of a counter (0 if never incremented). *)
val get : t -> string -> int

(** [observe t name ms] records one latency observation. *)
val observe : t -> string -> float -> unit

(** All counters, sorted by name. *)
val counters : t -> (string * int) list

(** Percentile summary of a latency series: observation count and the
    p50/p90/p99 nearest-rank values in milliseconds. *)
type latency = { count : int; p50 : float; p90 : float; p99 : float }

(** [None] if nothing was observed under [name]. *)
val latency : t -> string -> latency option

(** All latency series, sorted by name. *)
val latencies : t -> (string * latency) list

(** Multi-line human-readable snapshot: one [name value] line per
    counter, then one [name count/p50/p90/p99] line per latency
    series.  Deterministic order (sorted by name). *)
val render : t -> string
