(** Happens-before data-race detection shared by the hardware machines
    ({!Tso}, {!Armv8}): the SC baseline's vector-clock discipline as a
    self-contained component.  Synchronization order is the same under
    SC, TSO and ARMv8 — buffering relaxes visibility, not happens-before
    — so every backend's race verdict uses one definition: a conflicting
    unordered pair with at least one non-atomic access (§5). *)

open Lang

type t

(** [make n]: initial component for [n] threads. *)
val make : int -> t

(** A race has been observed on some path into this state. *)
val raced : t -> bool

(** A read access by [tid]: race check, acquire synchronisation when
    [acq], history recording. *)
val read : t -> tid:int -> Loc.t -> atomic:bool -> acq:bool -> t

(** A write access by [tid]: race check, release synchronisation when
    [rel], history recording. *)
val write : t -> tid:int -> Loc.t -> atomic:bool -> rel:bool -> t

(** An RMW by [tid]: atomic acquire read plus — when [write] — a release
    write (a failed CAS is read-only). *)
val update : t -> tid:int -> Loc.t -> write:bool -> t

(** A fence by [tid], synchronising through a distinguished token
    location. *)
val fence : t -> tid:int -> Mode.fence -> t

(** Total order for state-key comparators.  The per-location access
    history is deliberately excluded (it is a function of the history
    summarised by clocks and the race flag), mirroring
    {!Baselines.Sc}. *)
val compare : t -> t -> int
