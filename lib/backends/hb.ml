(** Happens-before data-race detection shared by the hardware machines.

    This is the SC baseline's vector-clock discipline
    ({!Baselines.Sc}) factored into a self-contained component the
    store-buffer machines thread through their states: synchronization
    order (release/acquire edges, RMWs, fences) is the same under SC,
    TSO and ARMv8 — buffering relaxes {e visibility}, not happens-before
    — so the race verdicts of all backends use one definition: a race is
    a conflicting unordered pair with at least one non-atomic access
    (§5).

    The per-location access history ([meta]) is deliberately excluded
    from {!compare}, mirroring {!Baselines.Sc.State_key}: it is a
    function of the history already summarised by (clocks, raced) for
    exploration purposes. *)

open Lang
module Vclock = Baselines.Vclock

type loc_meta = {
  w_na : (int * int) option;  (* epoch of last non-atomic write *)
  w_at : (int * int) option;  (* epoch of last atomic write *)
  r_na : Vclock.t;  (* join of non-atomic read clocks *)
  r_at : Vclock.t;  (* join of atomic read clocks *)
  release : Vclock.t;  (* release clock (for acq/rel synchronisation) *)
}

type t = {
  n : int;  (* thread count *)
  clocks : Vclock.t list;
  meta : loc_meta Loc.Map.t;
  raced : bool;
}

let make n =
  {
    n;
    clocks = List.init n (fun tid -> Vclock.init_thread n tid);
    meta = Loc.Map.empty;
    raced = false;
  }

let raced h = h.raced

let empty_meta n =
  {
    w_na = None;
    w_at = None;
    r_na = Vclock.make n;
    r_at = Vclock.make n;
    release = Vclock.make n;
  }

let get_meta h x = Loc.Map.find_default ~default:(empty_meta h.n) x h.meta
let epoch_ok e c = match e with None -> true | Some ep -> Vclock.epoch_le ep c
let set_nth l i v = List.mapi (fun j x -> if j = i then v else x) l

let racy_read h tid x ~atomic =
  let m = get_meta h x in
  let c = List.nth h.clocks tid in
  if atomic then not (epoch_ok m.w_na c)
  else not (epoch_ok m.w_na c && epoch_ok m.w_at c)

let racy_write h tid x ~atomic =
  let m = get_meta h x in
  let c = List.nth h.clocks tid in
  if atomic then not (epoch_ok m.w_na c && Vclock.le m.r_na c)
  else
    not
      (epoch_ok m.w_na c && epoch_ok m.w_at c && Vclock.le m.r_na c
     && Vclock.le m.r_at c)

let record_read h tid x ~atomic =
  let m = get_meta h x in
  let c = List.nth h.clocks tid in
  let m =
    if atomic then { m with r_at = Vclock.join m.r_at c }
    else { m with r_na = Vclock.join m.r_na c }
  in
  { h with meta = Loc.Map.add x m h.meta }

let record_write h tid x ~atomic =
  let m = get_meta h x in
  let c = List.nth h.clocks tid in
  let ep = Some (tid, c.(tid)) in
  let m = if atomic then { m with w_at = ep } else { m with w_na = ep } in
  { h with meta = Loc.Map.add x m h.meta }

(* Acquire: join the location's release clock into ours. *)
let do_acquire h tid x =
  let m = get_meta h x in
  let c = Vclock.join (List.nth h.clocks tid) m.release in
  { h with clocks = set_nth h.clocks tid c }

(* Release: tick our clock and publish it on the location. *)
let do_release h tid x =
  let c = Vclock.tick (List.nth h.clocks tid) tid in
  let h = { h with clocks = set_nth h.clocks tid c } in
  let m = get_meta h x in
  let m = { m with release = Vclock.join m.release c } in
  { h with meta = Loc.Map.add x m h.meta }

(** A read access: race check against the pre-state, acquire
    synchronisation when [acq], then history recording — the same order
    as the SC baseline. *)
let read h ~tid x ~atomic ~acq =
  let h = { h with raced = h.raced || racy_read h tid x ~atomic } in
  let h = if acq then do_acquire h tid x else h in
  record_read h tid x ~atomic

let write h ~tid x ~atomic ~rel =
  let h = { h with raced = h.raced || racy_write h tid x ~atomic } in
  let h = if rel then do_release h tid x else h in
  record_write h tid x ~atomic

(** An RMW: an atomic acquire read, plus a release write when [write]
    (a failed CAS is read-only). *)
let update h ~tid x ~write =
  let h = { h with raced = h.raced || racy_write h tid x ~atomic:true } in
  let h = do_acquire h tid x in
  if not write then record_read h tid x ~atomic:true
  else
    let h = do_release h tid x in
    let h = record_read h tid x ~atomic:true in
    record_write h tid x ~atomic:true

(* Fences synchronise through a distinguished token location, as in the
   SC baseline. *)
let fence h ~tid (m : Mode.fence) =
  let tok = Loc.make "__fence__" in
  match m with
  | Mode.Facq -> do_acquire h tid tok
  | Mode.Frel -> do_release h tid tok
  | Mode.Facqrel | Mode.Fsc -> do_release (do_acquire h tid tok) tid tok

let compare h1 h2 =
  let c = List.compare Vclock.compare h1.clocks h2.clocks in
  if c <> 0 then c else Bool.compare h1.raced h2.raced
