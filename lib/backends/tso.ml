(** An x86-TSO operational machine: per-thread FIFO store buffers over a
    single flat memory (see tso.mli and docs/BACKENDS.md).

    The step relation, per thread:
    - a buffered write ([na]/[rlx]) appends to the thread's FIFO buffer;
    - an asynchronous {e drain} step commits the oldest buffered entry
      to memory (drains of different threads interleave freely — this
      is the store-buffering relaxation);
    - a load forwards the newest own-buffer entry for its location, and
      reads memory otherwise (x86 store-to-load forwarding);
    - acquire loads, release stores, RMWs and every fence first drain
      the whole buffer (the mfence discipline), so they are
      sequentially consistent points — release stores then write
      through to memory directly.

    Terminal behaviors require every buffer to be empty: a run ends
    only once all its stores have committed.  Race detection ({!Hb}) is
    the same happens-before discipline as the SC baseline. *)

open Lang

type state = {
  progs : Prog.state list;
  bufs : (Loc.t * Value.t) list list;  (* per thread, oldest first *)
  mem : Value.t Loc.Map.t;
  outs : Value.t list list;  (* per thread, most recent first *)
  hb : Hb.t;
}

let name = "tso"

let set_nth l i v = List.mapi (fun j x -> if j = i then v else x) l
let read_mem st x = Loc.Map.find_default ~default:Value.zero x st.mem

(* Newest own-buffer entry for [x], if any. *)
let forwarded buf x =
  List.fold_left
    (fun acc (y, v) -> if Loc.compare y x = 0 then Some v else acc)
    None buf

let drain_all st tid =
  let buf = List.nth st.bufs tid in
  let mem = List.fold_left (fun m (x, v) -> Loc.Map.add x v m) st.mem buf in
  { st with mem; bufs = set_nth st.bufs tid [] }

(** Successors of [st] by one step of thread [tid]: an optional drain of
    its oldest buffered store, plus its program step (if any), plus a UB
    flag. *)
let thread_steps (values : Value.t list) (st : state) (tid : int) :
    [ `Next of state | `Ub ] list =
  let prog = List.nth st.progs tid in
  let buf = List.nth st.bufs tid in
  let with_prog st p = { st with progs = set_nth st.progs tid p } in
  let drains =
    match buf with
    | [] -> []
    | (x, v) :: rest ->
      [ `Next
          { st with bufs = set_nth st.bufs tid rest; mem = Loc.Map.add x v st.mem }
      ]
  in
  let prog_steps =
    match Prog.step prog with
    | Prog.Terminated _ -> []
    | Prog.Undefined -> [ `Ub ]
    | Prog.Silent p -> [ `Next (with_prog st p) ]
    | Prog.Do_out (v, p) ->
      let outs = set_nth st.outs tid (v :: List.nth st.outs tid) in
      [ `Next (with_prog { st with outs } p) ]
    | Prog.Choice f -> List.map (fun v -> `Next (with_prog st (f v))) values
    | Prog.Do_read (o, x, f) ->
      let atomic = Mode.read_is_atomic o in
      if o = Mode.Racq then begin
        (* mfence-on-acquire: drain, then read memory. *)
        let st = drain_all st tid in
        let st = { st with hb = Hb.read st.hb ~tid x ~atomic ~acq:true } in
        [ `Next (with_prog st (f (read_mem st x))) ]
      end
      else begin
        let st = { st with hb = Hb.read st.hb ~tid x ~atomic ~acq:false } in
        let v =
          match forwarded buf x with Some v -> v | None -> read_mem st x
        in
        [ `Next (with_prog st (f v)) ]
      end
    | Prog.Do_write (o, x, v, p) ->
      let atomic = Mode.write_is_atomic o in
      if o = Mode.Wrel then begin
        (* mfence-on-release: drain, then write through. *)
        let st = drain_all st tid in
        let st = { st with hb = Hb.write st.hb ~tid x ~atomic ~rel:true } in
        [ `Next (with_prog { st with mem = Loc.Map.add x v st.mem } p) ]
      end
      else begin
        let st = { st with hb = Hb.write st.hb ~tid x ~atomic ~rel:false } in
        let bufs = set_nth st.bufs tid (buf @ [ (x, v) ]) in
        [ `Next (with_prog { st with bufs } p) ]
      end
    | Prog.Do_update (x, f) ->
      (* RMWs are locked instructions: drain, then read-modify-write
         memory atomically. *)
      let st = drain_all st tid in
      (match f (read_mem st x) with
       | Prog.Upd_fault -> [ `Ub ]
       | Prog.Upd_read_only p ->
         let st = { st with hb = Hb.update st.hb ~tid x ~write:false } in
         [ `Next (with_prog st p) ]
       | Prog.Upd_write (v_new, p) ->
         let st = { st with hb = Hb.update st.hb ~tid x ~write:true } in
         [ `Next (with_prog { st with mem = Loc.Map.add x v_new st.mem } p) ])
    | Prog.Do_fence (m, p) ->
      let st = drain_all st tid in
      let st = { st with hb = Hb.fence st.hb ~tid m } in
      [ `Next (with_prog st p) ]
  in
  drains @ prog_steps

(* A run terminates only once every buffer has committed. *)
let terminal_behavior st =
  if not (List.for_all (fun b -> b = []) st.bufs) then None
  else
    let rec go acc progs outs =
      match (progs, outs) with
      | [], [] -> Some (Backend.Ret (List.rev acc))
      | p :: ps, o :: os ->
        (match Prog.step p with
         | Prog.Terminated v -> go ((v, List.rev o) :: acc) ps os
         | _ -> None)
      | _ -> None
    in
    go [] st.progs st.outs

module State_key = struct
  type t = state

  let compare_buf = List.compare (fun (x1, v1) (x2, v2) ->
      let c = Loc.compare x1 x2 in
      if c <> 0 then c else Value.compare v1 v2)

  let compare s1 s2 =
    let c = List.compare Prog.compare_state s1.progs s2.progs in
    if c <> 0 then c
    else
      let c = List.compare compare_buf s1.bufs s2.bufs in
      if c <> 0 then c
      else
        let c = Loc.Map.compare Value.compare s1.mem s2.mem in
        if c <> 0 then c
        else
          let c =
            List.compare (List.compare Value.compare) s1.outs s2.outs
          in
          if c <> 0 then c else Hb.compare s1.hb s2.hb
end

module State_set = Set.Make (State_key)

(** Exhaustive x86-TSO exploration (breadth-first over the interleaving
    of program and drain steps). *)
let explore ?(values = Backend.default_values)
    ?(max_states = Backend.default_max_states)
    ?(budget = Engine.Budget.unlimited) (progs : Stmt.t list) :
    Backend.result =
  let n = List.length progs in
  let init =
    {
      progs = List.map (fun p -> Prog.init p) progs;
      bufs = List.init n (fun _ -> []);
      mem = Loc.Map.empty;
      outs = List.init n (fun _ -> []);
      hb = Hb.make n;
    }
  in
  let visited = ref State_set.empty in
  let n_visited = ref 0 in
  let behaviors = ref Backend.Behavior_set.empty in
  let races = ref false in
  let truncated = ref false in
  let queue = Queue.create () in
  let push st =
    if not (State_set.mem st !visited) then
      if !n_visited >= max_states then truncated := true
      else begin
        Engine.Budget.spend_state budget;
        visited := State_set.add st !visited;
        incr n_visited;
        Queue.push st queue
      end
  in
  push init;
  while not (Queue.is_empty queue) do
    Engine.Budget.check budget;
    let st = Queue.pop queue in
    if Hb.raced st.hb then races := true;
    (match terminal_behavior st with
     | Some b -> behaviors := Backend.Behavior_set.add b !behaviors
     | None -> ());
    for tid = 0 to n - 1 do
      List.iter
        (function
          | `Ub -> behaviors := Backend.Behavior_set.add Backend.Bot !behaviors
          | `Next st' -> push st')
        (thread_steps values st tid)
    done
  done;
  {
    Backend.behaviors = !behaviors;
    races = !races;
    truncated = !truncated;
    states = !n_visited;
  }
