(** An x86-TSO operational machine over [Lang] programs: per-thread FIFO
    store buffers, store-to-load forwarding, asynchronous drains, and
    mfence-on-acquire/release draining (acquire loads, release stores,
    RMWs and fences are sequentially consistent points).

    Strictly weaker than SC and strictly stronger than {!Armv8}: every
    SC execution is a TSO execution that drains each store immediately,
    and every TSO execution is an ARMv8 execution whose drains happen to
    stay FIFO and whose loads happen to read the newest message — the
    SC ⊆ TSO ⊆ ARMv8 chain the E15 grid asserts per row.  The classic
    separation witness is SB: the both-read-zero outcome is forbidden
    under SC and allowed here.  See docs/BACKENDS.md. *)

open Lang

val name : string

(** Exhaustive bounded exploration; see {!Backend.MACHINE}. *)
val explore :
  ?values:Value.t list ->
  ?max_states:int ->
  ?budget:Engine.Budget.t ->
  Stmt.t list ->
  Backend.result
