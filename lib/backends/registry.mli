(** The backend registry: the machine zoo behind one signature, by
    name.  CLI drivers validate [--backend] against {!names} (via
    {!Engine.Cliopts.validate_choice}) and dispatch via {!find}. *)

(** The SC baseline ({!Baselines.Sc}) behind the shared signature. *)
module Sc_machine : Backend.MACHINE

(** The catch-fire baseline: SC behaviors plus ⊥ whenever any
    interleaving races. *)
module Catchfire_machine : Backend.MACHINE

(** The paper's PS_na machine ({!Promising.Machine}). *)
module Ps_machine : Backend.MACHINE

module Tso_machine : Backend.MACHINE
module Armv8_machine : Backend.MACHINE

(** All machines, in strength order: ["sc"], ["catchfire"], ["tso"],
    ["armv8"], ["ps"]. *)
val all : (module Backend.MACHINE) list

(** The registered backend names, in {!all} order. *)
val names : string list

(** Look a machine up by its {!Backend.MACHINE.name}. *)
val find : string -> (module Backend.MACHINE) option
