(** An ARMv8-flavoured weak machine: bounded local reordering of
    independent accesses (see armv8.mli and docs/BACKENDS.md).

    Memory keeps a {e per-location write history} (append-only message
    lists; index 0 is the implicit initial zero).  Each thread carries:

    - a store buffer drained {e per-location FIFO}: entries to the same
      location commit in issue order, entries to different locations
      commit in any order — store-store reordering;
    - a {e read floor} per location: the minimal history index the
      thread may still read.  A relaxed load may read {e any} message at
      or above the floor — reading a stale message of an independent
      location is exactly load-load/load-store reordering.  Reads raise
      the floor of their own location only (per-location coherence);
      writes raise it when they commit.

    Barriers restrict the reordering:
    - a {e release store} drains the buffer and writes through a message
      carrying the writer's floor snapshot (its view);
    - an {e acquire load} joins the view of the message it reads into
      its floor — so reading a released flag publishes everything the
      writer had observed (MP-rel-acq stays forbidden);
    - {e fences} (all modes, conservatively a full dmb) drain the buffer
      and raise every floor to the newest message;
    - RMWs drain, then atomically read the newest message (acquire) and
      append (release).

    The machine executes instructions in program order — no load
    speculation — so LB-style (write-to-read causality) reorderings are
    not exhibited; MP-rlx and SB are.  It is also not multi-copy-atomic
    (stale reads are per-thread), so IRIW-style outcomes are permitted —
    weaker than real ARMv8, which is OMCA; the E15 grid documents this.
    Race detection ({!Hb}) is the shared happens-before discipline. *)

open Lang

type msg = {
  v : Value.t;
  view : int Loc.Map.t;  (* writer's floor snapshot; empty for rlx/na *)
}

type state = {
  progs : Prog.state list;
  bufs : (Loc.t * Value.t) list list;  (* per thread, issue order *)
  hist : msg list Loc.Map.t;  (* per location, oldest first, incl. initial *)
  floors : int Loc.Map.t list;  (* per thread; absent location = 0 *)
  outs : Value.t list list;
  hb : Hb.t;
}

let name = "armv8"

let set_nth l i v = List.mapi (fun j x -> if j = i then v else x) l
let init_msg = { v = Value.zero; view = Loc.Map.empty }
let hist_of st x = Loc.Map.find_default ~default:[ init_msg ] x st.hist
let newest st x = List.length (hist_of st x) - 1
let nth_msg st x i = List.nth (hist_of st x) i

(* Append a message; returns the state and the new index. *)
let append st x m =
  let h = hist_of st x in
  ({ st with hist = Loc.Map.add x (h @ [ m ]) st.hist }, List.length h)

let floor_of st tid x =
  Loc.Map.find_default ~default:0 x (List.nth st.floors tid)

(* Floors store only nonzero entries so states stay canonical. *)
let raise_floor st tid x i =
  if i <= floor_of st tid x then st
  else
    let f = Loc.Map.add x i (List.nth st.floors tid) in
    { st with floors = set_nth st.floors tid f }

let join_view st tid (view : int Loc.Map.t) =
  Loc.Map.fold (fun x i st -> raise_floor st tid x i) view st

(* Newest own-buffer entry for [x], if any (store-to-load forwarding,
   mandatory: per-location coherence). *)
let forwarded buf x =
  List.fold_left
    (fun acc (y, v) -> if Loc.compare y x = 0 then Some v else acc)
    None buf

(* Commit one buffered entry: append a viewless message and raise the
   writer's own floor (own-write coherence). *)
let commit st tid x v =
  let st, i = append st x { v; view = Loc.Map.empty } in
  raise_floor st tid x i

let drain_all st tid =
  let buf = List.nth st.bufs tid in
  let st = { st with bufs = set_nth st.bufs tid [] } in
  List.fold_left (fun st (x, v) -> commit st tid x v) st buf

(* Buffer entries drainable now: the first entry of each location
   (per-location FIFO, any order across locations). *)
let drainable buf =
  let rec go seen idx = function
    | [] -> []
    | (x, v) :: rest ->
      let tail = go (Loc.Set.add x seen) (idx + 1) rest in
      if Loc.Set.mem x seen then tail else (idx, x, v) :: tail
  in
  go Loc.Set.empty 0 buf

let remove_nth l i = List.filteri (fun j _ -> j <> i) l

(** Successors of [st] by one step of thread [tid]: one drain per
    drainable buffer entry, plus its program step, plus a UB flag. *)
let thread_steps (values : Value.t list) (st : state) (tid : int) :
    [ `Next of state | `Ub ] list =
  let prog = List.nth st.progs tid in
  let buf = List.nth st.bufs tid in
  let with_prog st p = { st with progs = set_nth st.progs tid p } in
  let drains =
    List.map
      (fun (idx, x, v) ->
        let st = { st with bufs = set_nth st.bufs tid (remove_nth buf idx) } in
        `Next (commit st tid x v))
      (drainable buf)
  in
  let read_successors st x ~acq f =
    (* Every message at or above the floor is readable. *)
    let lo = floor_of st tid x in
    let hi = newest st x in
    List.init (hi - lo + 1) (fun k ->
        let i = lo + k in
        let m = nth_msg st x i in
        let st = if acq then join_view st tid m.view else st in
        let st = raise_floor st tid x i in
        `Next (with_prog st (f m.v)))
  in
  let prog_steps =
    match Prog.step prog with
    | Prog.Terminated _ -> []
    | Prog.Undefined -> [ `Ub ]
    | Prog.Silent p -> [ `Next (with_prog st p) ]
    | Prog.Do_out (v, p) ->
      let outs = set_nth st.outs tid (v :: List.nth st.outs tid) in
      [ `Next (with_prog { st with outs } p) ]
    | Prog.Choice f -> List.map (fun v -> `Next (with_prog st (f v))) values
    | Prog.Do_read (o, x, f) ->
      let atomic = Mode.read_is_atomic o in
      let acq = o = Mode.Racq in
      let st = { st with hb = Hb.read st.hb ~tid x ~atomic ~acq } in
      (match forwarded buf x with
       | Some v -> [ `Next (with_prog st (f v)) ]
       | None -> read_successors st x ~acq f)
    | Prog.Do_write (o, x, v, p) ->
      let atomic = Mode.write_is_atomic o in
      if o = Mode.Wrel then begin
        let st = drain_all st tid in
        let st = { st with hb = Hb.write st.hb ~tid x ~atomic ~rel:true } in
        (* Write through, carrying the post-drain floor as the view. *)
        let st', i = append st x { v; view = List.nth st.floors tid } in
        [ `Next (with_prog (raise_floor st' tid x i) p) ]
      end
      else begin
        let st = { st with hb = Hb.write st.hb ~tid x ~atomic ~rel:false } in
        let bufs = set_nth st.bufs tid (buf @ [ (x, v) ]) in
        [ `Next (with_prog { st with bufs } p) ]
      end
    | Prog.Do_update (x, f) ->
      (* RMW: drain, then atomically acquire-read the newest message and
         release-append the result. *)
      let st = drain_all st tid in
      let i = newest st x in
      let m = nth_msg st x i in
      (match f m.v with
       | Prog.Upd_fault -> [ `Ub ]
       | Prog.Upd_read_only p ->
         let st = { st with hb = Hb.update st.hb ~tid x ~write:false } in
         let st = join_view st tid m.view in
         [ `Next (with_prog (raise_floor st tid x i) p) ]
       | Prog.Upd_write (v_new, p) ->
         let st = { st with hb = Hb.update st.hb ~tid x ~write:true } in
         let st = join_view st tid m.view in
         let st = raise_floor st tid x i in
         let st', j = append st x { v = v_new; view = List.nth st.floors tid } in
         [ `Next (with_prog (raise_floor st' tid x j) p) ])
    | Prog.Do_fence (m, p) ->
      (* Conservatively a full barrier (dmb sy): drain and advance every
         floor to the newest message. *)
      let st = drain_all st tid in
      let st = { st with hb = Hb.fence st.hb ~tid m } in
      let st =
        Loc.Map.fold
          (fun x h st -> raise_floor st tid x (List.length h - 1))
          st.hist st
      in
      [ `Next (with_prog st p) ]
  in
  drains @ prog_steps

let terminal_behavior st =
  if not (List.for_all (fun b -> b = []) st.bufs) then None
  else
    let rec go acc progs outs =
      match (progs, outs) with
      | [], [] -> Some (Backend.Ret (List.rev acc))
      | p :: ps, o :: os ->
        (match Prog.step p with
         | Prog.Terminated v -> go ((v, List.rev o) :: acc) ps os
         | _ -> None)
      | _ -> None
    in
    go [] st.progs st.outs

module State_key = struct
  type t = state

  let compare_msg m1 m2 =
    let c = Value.compare m1.v m2.v in
    if c <> 0 then c else Loc.Map.compare Int.compare m1.view m2.view

  let compare_buf = List.compare (fun (x1, v1) (x2, v2) ->
      let c = Loc.compare x1 x2 in
      if c <> 0 then c else Value.compare v1 v2)

  let compare s1 s2 =
    let c = List.compare Prog.compare_state s1.progs s2.progs in
    if c <> 0 then c
    else
      let c = List.compare compare_buf s1.bufs s2.bufs in
      if c <> 0 then c
      else
        let c = Loc.Map.compare (List.compare compare_msg) s1.hist s2.hist in
        if c <> 0 then c
        else
          let c =
            List.compare (Loc.Map.compare Int.compare) s1.floors s2.floors
          in
          if c <> 0 then c
          else
            let c =
              List.compare (List.compare Value.compare) s1.outs s2.outs
            in
            if c <> 0 then c else Hb.compare s1.hb s2.hb
end

module State_set = Set.Make (State_key)

(** Exhaustive bounded ARMv8 exploration. *)
let explore ?(values = Backend.default_values)
    ?(max_states = Backend.default_max_states)
    ?(budget = Engine.Budget.unlimited) (progs : Stmt.t list) :
    Backend.result =
  let n = List.length progs in
  let init =
    {
      progs = List.map (fun p -> Prog.init p) progs;
      bufs = List.init n (fun _ -> []);
      hist = Loc.Map.empty;
      floors = List.init n (fun _ -> Loc.Map.empty);
      outs = List.init n (fun _ -> []);
      hb = Hb.make n;
    }
  in
  let visited = ref State_set.empty in
  let n_visited = ref 0 in
  let behaviors = ref Backend.Behavior_set.empty in
  let races = ref false in
  let truncated = ref false in
  let queue = Queue.create () in
  let push st =
    if not (State_set.mem st !visited) then
      if !n_visited >= max_states then truncated := true
      else begin
        Engine.Budget.spend_state budget;
        visited := State_set.add st !visited;
        incr n_visited;
        Queue.push st queue
      end
  in
  push init;
  while not (Queue.is_empty queue) do
    Engine.Budget.check budget;
    let st = Queue.pop queue in
    if Hb.raced st.hb then races := true;
    (match terminal_behavior st with
     | Some b -> behaviors := Backend.Behavior_set.add b !behaviors
     | None -> ());
    for tid = 0 to n - 1 do
      List.iter
        (function
          | `Ub -> behaviors := Backend.Behavior_set.add Backend.Bot !behaviors
          | `Next st' -> push st')
        (thread_steps values st tid)
    done
  done;
  {
    Backend.behaviors = !behaviors;
    races = !races;
    truncated = !truncated;
    states = !n_visited;
  }
