(** The shared machine-backend interface.

    A {e backend} is an operational memory model under which the behaviors
    of a concurrent [Lang] program (one statement per thread) can be
    enumerated exhaustively over a finite value domain.  The zoo behind
    this signature spans the strength spectrum:

    - [sc] — sequentially consistent interleaving ({!Baselines.Sc});
    - [catchfire] — SC where any data race is UB ({!Baselines.Catchfire});
    - [tso] — x86-TSO with per-thread FIFO store buffers ({!Tso});
    - [armv8] — ARMv8-flavoured local reordering ({!Armv8});
    - [ps] — the paper's PS_na promising machine ({!Promising.Machine}).

    All backends share {!Promising.Machine.Behavior_set}, so behavior
    sets from different models compare directly — that is what the E15
    differential grid and the SC ⊆ TSO ⊆ ARMv8 inclusion property are
    built on.  See docs/BACKENDS.md. *)

open Lang

(** Re-export of {!Promising.Machine.behavior}: per-thread return value
    and output trace, or ⊥ for a UB run. *)
type behavior = Promising.Machine.behavior =
  | Ret of (Value.t * Value.t list) list
  | Bot

module Behavior_set = Promising.Machine.Behavior_set

(** What every backend's exploration reports. *)
type result = {
  behaviors : Behavior_set.t;
  races : bool;  (** some explored execution contained a data race *)
  truncated : bool;  (** [max_states] hit: the behavior set may be partial *)
  states : int;  (** distinct states explored *)
}

(** The signature every machine implements.  [explore] enumerates the
    behaviors of a concurrent program (one statement per thread) over
    [values] (the finite choice/read domain), visiting at most
    [max_states] distinct states (beyond that the result is marked
    [truncated]).  [budget] (default {!Engine.Budget.unlimited}, a no-op)
    is charged one state per distinct state; on exhaustion
    {!Engine.Budget.Exhausted} escapes, to be caught at a verdict
    boundary. *)
module type MACHINE = sig
  val name : string

  val explore :
    ?values:Value.t list ->
    ?max_states:int ->
    ?budget:Engine.Budget.t ->
    Stmt.t list ->
    result
end

(** Default exploration parameters, shared by every backend (they match
    {!Baselines.Sc.explore}). *)
val default_values : Value.t list

val default_max_states : int

(** [refines ~src ~tgt]: every target behavior is ⊑-matched by a source
    behavior; a source ⊥ matches everything (Def 5.3 lifted to any
    backend). *)
val refines : src:result -> tgt:result -> bool

(** [subset ~small ~big]: behavior-set inclusion, the per-row E15 chain
    check (SC ⊆ TSO ⊆ ARMv8). *)
val subset : small:result -> big:result -> bool
