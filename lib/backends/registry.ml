(** The backend registry: every machine behind {!Backend.MACHINE}, by
    name (see registry.mli). *)

(** SC as a backend: {!Baselines.Sc} behind the shared signature.  The
    underlying explorer predates budgets; the whole exploration is
    charged to [budget] after the fact (checked up front so an
    already-exhausted budget still stops immediately). *)
module Sc_machine : Backend.MACHINE = struct
  let name = "sc"

  let explore ?values ?max_states ?(budget = Engine.Budget.unlimited) progs =
    Engine.Budget.check budget;
    let r = Baselines.Sc.explore ?values ?max_states progs in
    Engine.Budget.spend_state ~n:r.Baselines.Sc.states budget;
    {
      Backend.behaviors = r.Baselines.Sc.behaviors;
      races = r.Baselines.Sc.races;
      truncated = r.Baselines.Sc.truncated;
      states = r.Baselines.Sc.states;
    }
end

(** Catch-fire as a backend: the SC behaviors, plus ⊥ whenever any
    interleaving races ({!Baselines.Catchfire}). *)
module Catchfire_machine : Backend.MACHINE = struct
  let name = "catchfire"

  let explore ?values ?max_states ?(budget = Engine.Budget.unlimited) progs =
    Engine.Budget.check budget;
    let r = Baselines.Sc.explore ?values ?max_states progs in
    Engine.Budget.spend_state ~n:r.Baselines.Sc.states budget;
    let behaviors =
      if r.Baselines.Sc.races then
        Backend.Behavior_set.add Backend.Bot r.Baselines.Sc.behaviors
      else r.Baselines.Sc.behaviors
    in
    {
      Backend.behaviors;
      races = r.Baselines.Sc.races;
      truncated = r.Baselines.Sc.truncated;
      states = r.Baselines.Sc.states;
    }
end

(** PS_na as a backend: {!Promising.Machine} behind the shared
    signature.  [values] selects nothing there (PS_na reads from
    messages, and [choose()] already ranges over the machine's fixed
    domain); [max_states] and [budget] are threaded through. *)
module Ps_machine : Backend.MACHINE = struct
  let name = "ps"

  let explore ?values:_ ?max_states ?budget progs =
    let params =
      match max_states with
      | None -> None
      | Some m -> Some { Promising.Thread.default_params with max_states = m }
    in
    let r = Promising.Machine.explore ?params ?budget progs in
    {
      Backend.behaviors = r.Promising.Machine.behaviors;
      races = r.Promising.Machine.races;
      truncated = r.Promising.Machine.truncated;
      states = r.Promising.Machine.states;
    }
end

module Tso_machine : Backend.MACHINE = Tso
module Armv8_machine : Backend.MACHINE = Armv8

let all : (module Backend.MACHINE) list =
  [
    (module Sc_machine);
    (module Catchfire_machine);
    (module Tso_machine);
    (module Armv8_machine);
    (module Ps_machine);
  ]

let names = List.map (fun (module M : Backend.MACHINE) -> M.name) all

let find name =
  List.find_opt (fun (module M : Backend.MACHINE) -> M.name = name) all
