(** Shared backend interface: result type, signature, refinement (see
    backend.mli). *)

open Lang

type behavior = Promising.Machine.behavior =
  | Ret of (Value.t * Value.t list) list
  | Bot

module Behavior_set = Promising.Machine.Behavior_set

type result = {
  behaviors : Behavior_set.t;
  races : bool;
  truncated : bool;
  states : int;
}

module type MACHINE = sig
  val name : string

  val explore :
    ?values:Value.t list ->
    ?max_states:int ->
    ?budget:Engine.Budget.t ->
    Stmt.t list ->
    result
end

let default_values = [ Value.Int 0; Value.Int 1; Value.Int 2 ]
let default_max_states = 200_000

let refines ~(src : result) ~(tgt : result) : bool =
  Promising.Machine.refines ~src:src.behaviors ~tgt:tgt.behaviors

let subset ~(small : result) ~(big : result) : bool =
  Behavior_set.subset small.behaviors big.behaviors
