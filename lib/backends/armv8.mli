(** An ARMv8-flavoured weak machine over [Lang] programs: per-location
    write histories, per-location-FIFO store buffers (store-store
    reordering), and per-thread read floors that let relaxed loads read
    stale messages of independent locations (load-load/load-store
    reordering) — restricted by acquire/release barriers: release stores
    write through carrying the writer's view, acquire loads join the
    view of the message they read, fences act as full barriers.

    Strictly weaker than {!Tso} (every TSO execution keeps drains FIFO
    and reads newest — the E15 chain's upper link); the separation
    witness is MP-rlx, whose stale-read outcome TSO forbids and this
    machine allows.  Executes in program order (no load speculation), so
    LB-style outcomes are not exhibited; not multi-copy-atomic, so
    IRIW-style outcomes are — both documented in docs/BACKENDS.md. *)

open Lang

val name : string

(** Exhaustive bounded exploration; see {!Backend.MACHINE}. *)
val explore :
  ?values:Value.t list ->
  ?max_states:int ->
  ?budget:Engine.Budget.t ->
  Stmt.t list ->
  Backend.result
