(** Value numbering / available expressions — the first seqabs domain.

    A forward must-analysis mapping registers and non-atomic locations to
    {e value numbers}: two entities with the same number provably hold
    the same value in every execution reaching the program point.
    Numbers are hash-consed structurally over constants and operator
    applications; anything the analysis cannot predict — atomic loads
    (each relaxed or acquire read is an environment choice carrying its
    own trace label, so it is {e never} available for reuse), [choose],
    [freeze], operands of unknown number — gets a number equal only to
    itself.

    Location numbers are killed by mode-aware clobbers, mirroring the
    forwarding passes (App D, Fig 8): acquire events (acquire loads,
    RMWs, acq/acqrel/sc fences) may import fresh memory and kill every
    location binding; relaxed accesses, release stores and release
    fences leave non-atomic memory untouched and kill nothing.  A
    non-atomic store re-binds its own location to the stored
    expression's number.

    Loop heads take a genuine fixpoint with {e fresh-per-probe} numbers
    for unpredictable values, so a binding survives a loop join only
    when it is iteration-independent — no widening bound is needed (the
    chain shrinks pointwise over finitely many bindings).

    Consumers: the {!Opt.Cse} and {!Opt.Rle} passes, the [Static_abs]
    certifier ({!Opt.Certabs}) and the {!Avail} redundancy report. *)

open Lang

type vn = int

(** Shared numbering context.  One context per analysis question; states
    from different contexts are not comparable. *)
type ctx

val create : unit -> ctx

(** A fresh number, equal only to itself. *)
val fresh : ctx -> vn

(** Per-point abstract state: must-bindings for registers and non-atomic
    locations.  Absent = unknown. *)
type state = { regs : vn Reg.Map.t; mem : vn Loc.Map.t }

val empty : state
val reg_vn : state -> Reg.t -> vn option
val mem_vn : state -> Loc.t -> vn option

(** Registers currently bound to [vn]. *)
val holders : state -> vn -> Reg.Set.t

(** Structural evaluation; [None] when some register is unbound. *)
val eval : ctx -> state -> Expr.t -> vn option

val eval_or_fresh : ctx -> state -> Expr.t -> vn

(** Leaf transfer function (raises [Invalid_argument] on compounds). *)
val transfer : ctx -> state -> Stmt.t -> state

(** Must-join: keep only bindings both sides agree on. *)
val join : state -> state -> state

val leq : state -> state -> bool
val equal : state -> state -> bool

(** [loop_fix step h0] iterates [h ⊓ step h] to stability; returns the
    head state and the iteration count. *)
val loop_fix : (state -> state) -> state -> state * int

(** Facts keyed by statement path: the state {e before} each node. *)
type facts = state Path.Map.t

val analyze : ?ctx:ctx -> Stmt.t -> facts
val before : facts -> Path.t -> state option
