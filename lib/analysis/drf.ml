(** Static data-race-freedom certifier (see drf.mli). *)

open Lang

type access = {
  thread : int;
  path : Path.t;
  loc : Loc.t;
  write : bool;
  weak : bool;
}

type pair = { a : access; b : access }

type protocol = {
  ploc : Loc.t;
  owner : int;
  flag : Loc.t;
  publish : Path.t;  (** the owner's release store of the guard value *)
  guards : (int * Path.t) list;  (** per reader: the guarded [If] *)
}

type evidence = No_weak_pairs | Owner_protocol of protocol

type verdict = Race_free of evidence list | Unproven of pair list

(* ------------------------------------------------------------------ *)

let accesses_of (thread : int) (s : Stmt.t) : access list =
  let acc = ref [] in
  Path.iter_leaves s ~f:(fun path leaf ->
      let add loc write weak = acc := { thread; path; loc; write; weak } :: !acc in
      match leaf with
      | Stmt.Load (_, m, x) -> add x false (m = Mode.Rna || m = Mode.Rrlx)
      | Stmt.Store (m, x, _) -> add x true (m = Mode.Wna || m = Mode.Wrlx)
      | Stmt.Cas (_, x, _, _) | Stmt.Fadd (_, x, _) -> add x true false
      | _ -> ());
  List.rev !acc

let weak_pairs (accs : access list) : pair list =
  List.concat_map
    (fun a ->
      List.filter_map
        (fun b ->
          if
            a.thread < b.thread
            && Loc.equal a.loc b.loc
            && (a.write || b.write)
            && (a.weak || b.weak)
          then Some { a; b }
          else None)
        accs)
    accs

(* Top-level statement spine with source paths ([Skip] kept). *)
let rec spine_with_paths p s acc =
  match s with
  | Stmt.Seq (a, b) ->
    spine_with_paths (Path.child p Path.Fst) a
      (spine_with_paths (Path.child p Path.Snd) b acc)
  | s -> (p, s) :: acc

let spine s = spine_with_paths Path.root s []

let touches (x : Loc.t) (s : Stmt.t) =
  let fp = Stmt.footprint s in
  Loc.Set.mem x fp.Stmt.na || Loc.Set.mem x fp.Stmt.at

let defines_reg r = function
  | Stmt.Assign (r', _) | Stmt.Load (r', _, _) | Stmt.Cas (r', _, _, _)
  | Stmt.Fadd (r', _, _) | Stmt.Choose r' | Stmt.Freeze (r', _) ->
    Reg.equal r r'
  | _ -> false

let guard_const (e : Expr.t) : (Reg.t * int) option =
  match e with
  | Expr.Binop (Expr.Eq, Expr.Reg r, Expr.Const (Value.Int c))
  | Expr.Binop (Expr.Eq, Expr.Const (Value.Int c), Expr.Reg r)
    when c <> 0 -> Some (r, c)
  | _ -> None

let is_prefix (p : Path.t) (q : Path.t) =
  let rec go p q =
    match p, q with
    | [], _ -> true
    | a :: p, b :: q -> a = b && go p q
    | _ :: _, [] -> false
  in
  go p q

(* The message-passing ownership protocol for location [x] (the MP-rel-acq
   shape, Fig 1): one owner thread performs every write of [x] and
   publishes a non-zero constant [c] to a release/acquire-disciplined
   flag [y] after its last access of [x]; every other thread touches [x]
   only inside the Then branch of a top-level [If (r == c)] where [r] was
   set by an acquire load of [y] and not redefined since.  Initial memory
   is all-zero, so a reader observing [c ≠ 0] must have synchronized with
   the owner's unique release store of [c] — every cross-thread pair on
   [x] is ordered by that happens-before edge. *)
let owner_protocol (threads : Stmt.t list) (accs : access list) (x : Loc.t) :
    protocol option =
  let ( let* ) = Option.bind in
  let x_accs = List.filter (fun a -> Loc.equal a.loc x) accs in
  let writers =
    List.sort_uniq compare
      (List.filter_map (fun a -> if a.write then Some a.thread else None) x_accs)
  in
  let* owner = match writers with [ o ] -> Some o | _ -> None in
  let readers =
    List.sort_uniq compare
      (List.filter_map
         (fun a -> if a.thread <> owner then Some a.thread else None)
         x_accs)
  in
  (* Per-reader guard: acquire load of a flag, then the guarded If. *)
  let reader_guard (t : int) : (Loc.t * int * Path.t) option =
    let sp = spine (List.nth threads t) in
    let rec scan = function
      | [] -> None
      | (_, Stmt.Load (r, Mode.Racq, y)) :: rest when not (Loc.equal y x) ->
        (match scan_if r y rest with
         | Some g -> Some g
         | None -> scan rest)
      | _ :: rest -> scan rest
    and scan_if r y = function
      | [] -> None
      | (ip, Stmt.If (cond, _, els)) :: _
        when (match guard_const cond with
              | Some (r', _) -> Reg.equal r r'
              | None -> false)
             && not (touches x els) ->
        let _, c = Option.get (guard_const cond) in
        Some (y, c, ip)
      | (_, s) :: rest when not (defines_reg r s || touches x s) ->
        scan_if r y rest
      | _ -> None
    in
    scan sp
  in
  let* guards =
    List.fold_left
      (fun acc t ->
        let* acc = acc in
        let* y, c, ip = reader_guard t in
        (* every access of [x] in thread [t] must sit under the Then *)
        let under_then =
          List.for_all
            (fun a ->
              a.thread <> t
              || is_prefix (ip @ [ Path.Then ]) a.path)
            x_accs
        in
        if under_then then Some ((t, y, c, ip) :: acc) else None)
      (Some []) readers
  in
  let* flag, c =
    match List.sort_uniq compare (List.map (fun (_, y, c, _) -> (y, c)) guards)
    with
    | [ (y, c) ] -> Some (y, c)
    | [] -> None  (* no readers: single-threaded access, trivially ordered *)
    | _ -> None
  in
  (* Flag discipline: written only by the owner and only with release
     stores; read elsewhere only with acquire loads. *)
  let flag_ok =
    List.for_all
      (fun (t, s) ->
        let ok = ref true in
        Path.iter_leaves s ~f:(fun _ leaf ->
            match leaf with
            | Stmt.Load (_, m, y) when Loc.equal y flag ->
              if m <> Mode.Racq then ok := false
            | Stmt.Store (m, y, _) when Loc.equal y flag ->
              if not (t = owner && m = Mode.Wrel) then ok := false
            | Stmt.Cas (_, y, _, _) | Stmt.Fadd (_, y, _)
              when Loc.equal y flag -> ok := false
            | _ -> ());
        !ok)
      (List.mapi (fun t s -> (t, s)) threads)
  in
  if not flag_ok then None
  else
    (* Owner: every access of [x] is a top-level leaf before the unique
       top-level release store of [Const c] to the flag. *)
    let osp = spine (List.nth threads owner) in
    let is_publish (s : Stmt.t) =
      match s with
      | Stmt.Store (Mode.Wrel, y, Expr.Const (Value.Int c')) ->
        Loc.equal y flag && c' = c
      | _ -> false
    in
    let* publish_idx, publish_path =
      match
        List.filteri (fun _ (_, s) -> is_publish s) osp
      with
      | [ (p, _) ] ->
        let rec idx i = function
          | [] -> None
          | (q, _) :: _ when Path.equal q p -> Some (i, p)
          | _ :: rest -> idx (i + 1) rest
        in
        idx 0 osp
      | _ -> None
    in
    let owner_ok =
      List.for_all
        (fun (i, (_, s)) ->
          match s with
          | _ when not (touches x s) -> true
          | Stmt.Load (_, _, _) | Stmt.Store (_, _, _) -> i < publish_idx
          | _ -> false (* [x] inside a compound or RMW: unproven *))
        (List.mapi (fun i it -> (i, it)) osp)
    in
    if owner_ok then
      Some
        {
          ploc = x;
          owner;
          flag;
          publish = publish_path;
          guards = List.rev_map (fun (t, _, _, ip) -> (t, ip)) guards;
        }
    else None

let certify (threads : Stmt.t list) : verdict =
  let accs = List.concat (List.mapi accesses_of threads) in
  let pairs = weak_pairs accs in
  if pairs = [] then Race_free [ No_weak_pairs ]
  else
    let locs =
      List.sort_uniq Loc.compare (List.map (fun p -> p.a.loc) pairs)
    in
    let proofs = List.map (fun x -> (x, owner_protocol threads accs x)) locs in
    if List.for_all (fun (_, p) -> p <> None) proofs then
      Race_free
        (List.filter_map
           (fun (_, p) -> Option.map (fun p -> Owner_protocol p) p)
           proofs)
    else
      Unproven
        (List.filter
           (fun p ->
             List.exists
               (fun (x, proof) -> proof = None && Loc.equal x p.a.loc)
             proofs)
           pairs)

(* ------------------------------------------------------------------ *)

let pp_evidence ppf = function
  | No_weak_pairs ->
    Fmt.pf ppf
      "no cross-thread conflicting pair involves a non-atomic or relaxed \
       access"
  | Owner_protocol p ->
    Fmt.pf ppf
      "%s is owned by thread %d, published via release store of flag %s at \
       %a; reader guard%s %a"
      (Loc.name p.ploc) p.owner (Loc.name p.flag) Path.pp p.publish
      (if List.length p.guards = 1 then "" else "s")
      (Fmt.list ~sep:Fmt.comma (fun ppf (t, q) ->
           Fmt.pf ppf "thread %d at %a" t Path.pp q))
      p.guards

let pp_pair ppf (p : pair) =
  let side ppf (a : access) =
    Fmt.pf ppf "thread %d %s %s at %a" a.thread
      (if a.write then "write" else "read")
      (Loc.name a.loc) Path.pp a.path
  in
  Fmt.pf ppf "%a / %a" side p.a side p.b

let pp_verdict ppf = function
  | Race_free ev ->
    Fmt.pf ppf "race-free: %a" (Fmt.list ~sep:Fmt.semi pp_evidence) ev
  | Unproven ps ->
    Fmt.pf ppf "unproven: %a" (Fmt.list ~sep:Fmt.semi pp_pair) ps
