(** Static permission analysis: a per-point under-approximation of the
    SEQ machine's permission set [P] and written-since-release set [F].

    SEQ (§2, Fig 1) runs a thread against an adversarial environment:
    the initial permission set is arbitrary, acquire steps grow [P] by
    an arbitrary gain (havocking the gained locations' values), and
    release steps shrink [P] to an arbitrary subset and reset [F].  The
    only facts that hold on {e every} SEQ execution are therefore the
    ones forced by the thread's own non-atomic writes:

    - after a non-atomic write to [x] that did not fault, [x ∈ P] (a
      racy non-atomic write is UB, so on all continuing executions the
      thread holds the permission) and [x ∈ F];
    - acquires preserve both facts ([P] only grows, [F] is untouched);
    - releases destroy both ([P] may shrink to any subset, [F] := ∅);
    - control-flow joins intersect.

    The resulting must-sets [p ⊆ P] and [f ⊆ F] are exactly the facts
    the paper's §4 pass analyses consume: a non-atomic read of [x] with
    [x ∈ p] cannot return [undef]; a non-atomic write to [x] with
    [x ∈ p] cannot be UB; a redundant store to [x] may be introduced
    where [x ∈ f] (Ex 2.10).  [seqlint] derives its racy-access and
    store-introduction diagnostics from these tables, and the soundness
    of the claims is cross-checked against SEQ enumeration by QCheck
    (test/test_analysis.ml). *)

open Lang

(** Must-facts at a program point: [p] ⊆ every reachable configuration's
    permission set, [f] ⊆ its written set. *)
type fact = { p : Loc.Set.t; f : Loc.Set.t }

(** The information order: more locations = more information, so [top]
    (no information) is the pair of empty sets and joins intersect. *)
module L : Dataflow.LATTICE with type t = fact

module Table : module type of Dataflow.Make (L)

(** Run the forward analysis from the adversarial initial fact
    [{p = ∅; f = ∅}] (sound for every initial [P], [F], [M]). *)
val analyze : Stmt.t -> Table.facts

(** A non-atomic access whose location is not statically covered by [p]
    (a {e possibly racy} access — the analysis under-approximates, so
    covered accesses are definitely race-free in SEQ). *)
type access = {
  path : Path.t;
  loc : Loc.t;
  kind : [ `Read | `Write ];  (** racy read → [undef]; racy write → UB *)
}

(** All possibly-racy non-atomic accesses of the statement. *)
val racy_accesses : ?facts:Table.facts -> Stmt.t -> access list

(** Non-atomic store sites whose location is not in the must-written set
    [f] just before them: introducing a redundant store in that region
    is not justified by the [F]-invariant (Ex 2.10). *)
val store_intro_unsafe : ?facts:Table.facts -> Stmt.t -> (Path.t * Loc.t) list
