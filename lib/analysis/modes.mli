(** Mode-consistency analysis: statically detect mixed atomic /
    non-atomic access to a single location.

    SEQ's well-formedness precondition (§2, footnote 3) forbids a
    location from being accessed both atomically and non-atomically;
    {!Seq_model.Config.check_no_mixing} enforces it at run time by
    raising [Mixed_access].  This analysis decides the same property
    syntactically, {e with sites}: for every location it collects each
    accessing instruction's path, thread index, and mode class, so a
    violation can be reported as a compile-time diagnostic citing both
    conflicting instructions — the runtime exception remains only as a
    backstop.

    PS_na tolerates mixing, so clients choose severity: [seqcheck]
    treats a mixed program as an error (SEQ would reject it), while
    [litmus_run] merely warns. *)

open Lang

(** One shared-memory access: which thread, where, to what, and whether
    the access mode is atomic ([rlx]/[acq]/[rel]/RMW) or non-atomic. *)
type site = {
  thread : int;  (** index into the analyzed statement list *)
  path : Path.t;
  loc : Loc.t;
  atomic : bool;
}

(** A location accessed in both classes, witnessed by one non-atomic and
    one atomic site (the first of each in program order). *)
type conflict = { cloc : Loc.t; na_site : site; at_site : site }

(** All access sites of a thread list, in thread-then-program order. *)
val sites : Stmt.t list -> site list

(** Mixed-access conflicts {e within} each single thread — the exact
    property [Config.check_no_mixing] tests, one statement at a time. *)
val per_thread_conflicts : Stmt.t list -> conflict list

(** Mixed-access conflicts over the whole thread list (a location used
    non-atomically by one thread and atomically by another is mixed even
    though each thread alone is consistent).  This is the property that
    decides whether a SEQ domain built from all statements is
    well-formed. *)
val combined_conflicts : Stmt.t list -> conflict list

(** [true] iff {!combined_conflicts} is empty. *)
val consistent : Stmt.t list -> bool

val pp_conflict : src:Stmt.t list -> Format.formatter -> conflict -> unit
