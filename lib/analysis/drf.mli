(** Static data-race-freedom certifier — the third seqabs domain.

    A must-analysis over a {e closed} set of threads, proving that every
    cross-thread conflicting pair involving a non-atomic or relaxed
    access is ordered by a release/acquire happens-before edge.  Two
    criteria:

    - {b No_weak_pairs}: no cross-thread same-location pair with a write
      and a non-atomic/relaxed side exists at all (e.g. a program whose
      only shared accesses are release stores and acquire loads);
    - {b Owner_protocol}: the message-passing shape (Fig 1).  For each
      weakly-accessed location [x]: a single owner thread performs every
      write of [x] and publishes a non-zero constant to a rel/acq-only
      flag after its last [x]-access; every other thread touches [x]
      only under a top-level [If (r == c)] whose register was set by an
      acquire load of the flag and not redefined since.  Since initial
      memory is all-zero and the owner's release store of [c] is unique,
      a reader observing [c] has synchronized with it — ordering every
      pair on [x].

    [Race_free] is {e sound} with respect to the promise-free dynamic
    race detector: it implies {!Baselines.Drf}'s [pf_race_free] on the
    same threads (cross-checked over the full litmus catalog by the test
    suite).  [Unproven] is {e not} a race report — the analysis is
    incomplete by design (so e.g. fence-based synchronization stays
    Unproven).

    Consumers: the seqlint racy-read upgrade/suppression (a [Race_free]
    verdict downgrades racy-read warnings to cited hints; a provably
    unorderable pair upgrades them to errors) and the E14 bench table. *)

open Lang

type access = {
  thread : int;
  path : Path.t;
  loc : Loc.t;
  write : bool;
  weak : bool;  (** non-atomic or relaxed *)
}

(** A cross-thread conflicting pair with a weak side ([a.thread <
    b.thread]). *)
type pair = { a : access; b : access }

type protocol = {
  ploc : Loc.t;  (** the protected location *)
  owner : int;  (** the unique writer thread *)
  flag : Loc.t;  (** the rel/acq-disciplined flag *)
  publish : Path.t;  (** the owner's release store of the guard value *)
  guards : (int * Path.t) list;  (** per reader: the guarded [If] *)
}

type evidence = No_weak_pairs | Owner_protocol of protocol

type verdict = Race_free of evidence list | Unproven of pair list

(** All shared-memory accesses of one thread, with paths. *)
val accesses_of : int -> Stmt.t -> access list

(** The cross-thread weak conflicting pairs of a closed thread set. *)
val weak_pairs : access list -> pair list

val certify : Stmt.t list -> verdict

val pp_evidence : Format.formatter -> evidence -> unit
val pp_pair : Format.formatter -> pair -> unit
val pp_verdict : Format.formatter -> verdict -> unit
