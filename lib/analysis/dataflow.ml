(** Generic monotone dataflow over statement trees (see dataflow.mli). *)

open Lang

module type LATTICE = sig
  type t
  val top : t
  val leq : t -> t -> bool
  val join : t -> t -> t
  val widen : t -> t -> t
end

module Make (L : LATTICE) = struct
  type facts = {
    mutable before_tbl : L.t Path.Map.t;
    mutable after_tbl : L.t Path.Map.t;
    mutable iters : int;
  }

  let before f p = Path.Map.find_opt p f.before_tbl
  let after f p = Path.Map.find_opt p f.after_tbl
  let max_loop_iters f = f.iters

  let fold g f acc =
    Path.Map.fold
      (fun p b acc ->
        match Path.Map.find_opt p f.after_tbl with
        | Some a -> g p ~before:b ~after:a acc
        | None -> acc)
      f.before_tbl acc

  let stable prev next = L.leq next prev && L.leq prev next

  (* Iterate [h ← widen h (join h (step h))] to stability, falling back
     to [top] past the bound.  Joining with the previous iterate only
     moves toward [top] (loses information), so over-iteration is always
     sound.  [record_iters] is false for the throwaway probes of nested
     fixpoints. *)
  let fixpoint ~max_iters ~(facts : facts) ~record_iters (step : L.t -> L.t)
      (init : L.t) : L.t =
    let rec fix h n =
      if n > max_iters then L.top
      else
        let h' = L.widen h (L.join h (step h)) in
        if stable h h' then begin
          if record_iters then facts.iters <- max facts.iters n;
          h
        end
        else fix h' (n + 1)
    in
    fix init 1

  let no_cond : Path.t -> Expr.t -> L.t -> L.t = fun _ _ d -> d

  (* [flow] analyzes [s] at path [p] with incoming fact [d] (in the
     analysis direction) and returns the outgoing fact.  [record] is
     false during loop fixpoint probes so the tables only ever hold the
     final (post-fixpoint) facts. *)
  let forward ?(max_iters = 64) ?(cond = no_cond) ~transfer ~init
      (stmt : Stmt.t) : facts =
    let facts =
      { before_tbl = Path.Map.empty; after_tbl = Path.Map.empty; iters = 1 }
    in
    let rec flow ~record d s p =
      let out =
        match s with
        | Stmt.Seq (a, b) ->
          let d1 = flow ~record d a (Path.child p Path.Fst) in
          flow ~record d1 b (Path.child p Path.Snd)
        | Stmt.If (e, a, b) ->
          let dc = cond p e d in
          let da = flow ~record dc a (Path.child p Path.Then) in
          let db = flow ~record dc b (Path.child p Path.Else) in
          L.join da db
        | Stmt.While (e, body) ->
          (* [h] is the fact at the loop head, before the condition *)
          let step h =
            flow ~record:false (cond p e h) body (Path.child p Path.Body)
          in
          let head = fixpoint ~max_iters ~facts ~record_iters:record step d in
          let dc = cond p e head in
          ignore (flow ~record dc body (Path.child p Path.Body) : L.t);
          (* the loop exit also sees the post-condition head fact *)
          dc
        | leaf -> transfer p leaf d
      in
      if record then begin
        facts.before_tbl <- Path.Map.add p d facts.before_tbl;
        facts.after_tbl <- Path.Map.add p out facts.after_tbl
      end;
      out
    in
    ignore (flow ~record:true init stmt Path.root : L.t);
    facts

  let backward ?(max_iters = 64) ?(cond = no_cond) ~transfer ~exit_
      (stmt : Stmt.t) : facts =
    let facts =
      { before_tbl = Path.Map.empty; after_tbl = Path.Map.empty; iters = 1 }
    in
    (* [d] is the fact after [s]; the result is the fact before it. *)
    let rec flow ~record d s p =
      let inb =
        match s with
        | Stmt.Seq (a, b) ->
          let d1 = flow ~record d b (Path.child p Path.Snd) in
          flow ~record d1 a (Path.child p Path.Fst)
        | Stmt.If (e, a, b) ->
          let da = flow ~record d a (Path.child p Path.Then) in
          let db = flow ~record d b (Path.child p Path.Else) in
          cond p e (L.join da db)
        | Stmt.While (e, body) ->
          (* at the head (before the condition) the future is: exit with
             [d], or one more body iteration followed by the head *)
          let step h =
            cond p e
              (L.join d (flow ~record:false h body (Path.child p Path.Body)))
          in
          let head = fixpoint ~max_iters ~facts ~record_iters:record step d in
          ignore (flow ~record head body (Path.child p Path.Body) : L.t);
          head
        | leaf -> transfer p leaf d
      in
      if record then begin
        facts.before_tbl <- Path.Map.add p inb facts.before_tbl;
        facts.after_tbl <- Path.Map.add p d facts.after_tbl
      end;
      inb
    in
    ignore (flow ~record:true exit_ stmt Path.root : L.t);
    facts
end
