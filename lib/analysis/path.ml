(** Statement paths (see path.mli). *)

open Lang

type step = Fst | Snd | Then | Else | Body

type t = step list

let root : t = []

let child p s = p @ [ s ]

let step_rank = function Fst -> 0 | Snd -> 1 | Then -> 2 | Else -> 3 | Body -> 4

let compare_step a b = Int.compare (step_rank a) (step_rank b)

let rec compare a b =
  match a, b with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: a, y :: b ->
    let c = compare_step x y in
    if c <> 0 then c else compare a b

let equal a b = compare a b = 0

let step_to_string = function
  | Fst -> "0"
  | Snd -> "1"
  | Then -> "then"
  | Else -> "else"
  | Body -> "body"

let to_string = function
  | [] -> "/"
  | p -> String.concat "" (List.map (fun s -> "/" ^ step_to_string s) p)

let pp ppf p = Fmt.string ppf (to_string p)

let rec find (s : Stmt.t) (p : t) : Stmt.t option =
  match p, s with
  | [], s -> Some s
  | Fst :: p, Stmt.Seq (a, _) -> find a p
  | Snd :: p, Stmt.Seq (_, b) -> find b p
  | Then :: p, Stmt.If (_, a, _) -> find a p
  | Else :: p, Stmt.If (_, _, b) -> find b p
  | Body :: p, Stmt.While (_, a) -> find a p
  | _ :: _, _ -> None

let describe (s : Stmt.t) (p : t) : string =
  match find s p with
  | None -> "<gone>"
  | Some (Stmt.Seq _) -> "..."
  | Some (Stmt.If (e, _, _)) -> Fmt.str "if %a {...}" Expr.pp e
  | Some (Stmt.While (e, _)) -> Fmt.str "while %a {...}" Expr.pp e
  | Some leaf -> Stmt.to_string leaf

let iter_leaves (s : Stmt.t) ~f =
  let rec go p = function
    | Stmt.Seq (a, b) ->
      go (child p Fst) a;
      go (child p Snd) b
    | Stmt.If (_, a, b) ->
      go (child p Then) a;
      go (child p Else) b
    | Stmt.While (_, a) -> go (child p Body) a
    | leaf -> f p leaf
  in
  go root s

module Map = Map.Make (struct
  type nonrec t = t
  let compare = compare
end)
