(** Static permission analysis (see perm.mli). *)

open Lang

type fact = { p : Loc.Set.t; f : Loc.Set.t }

module L = struct
  type t = fact

  (* No information: nothing is known to be held or written.  [a ⊑ b]
     when [a] carries at least [b]'s information (bigger sets = lower in
     the order), so joins intersect and [top] is the empty pair. *)
  let top = { p = Loc.Set.empty; f = Loc.Set.empty }
  let leq a b = Loc.Set.subset b.p a.p && Loc.Set.subset b.f a.f
  let join a b = { p = Loc.Set.inter a.p b.p; f = Loc.Set.inter a.f b.f }
  let widen _prev next = next  (* finite height: ≤ |Loc_na| per component *)
end

module Table = Dataflow.Make (L)

(* Effects of the Fig 1 steps on the must-sets.  Releases drop to an
   arbitrary subset and reset F, so both must-sets empty; acquires only
   grow P and keep F, so both survive; a surviving non-atomic write
   forces x ∈ P (racy-na-write is UB) and x ∈ F. *)
let transfer ~bottom (_ : Path.t) (s : Stmt.t) (d : fact) : fact =
  match s with
  | Stmt.Store (Mode.Wna, x, _) ->
    { p = Loc.Set.add x d.p; f = Loc.Set.add x d.f }
  | Stmt.Store (Mode.Wrel, _, _) | Stmt.Fence (Mode.Frel | Mode.Facqrel | Mode.Fsc)
  | Stmt.Cas _ | Stmt.Fadd _ -> L.top
  | Stmt.Load (_, _, _) | Stmt.Store ((Mode.Wrlx), _, _)
  | Stmt.Fence Mode.Facq | Stmt.Skip | Stmt.Assign _ | Stmt.Choose _
  | Stmt.Freeze _ | Stmt.Print _ -> d
  | Stmt.Abort | Stmt.Return _ ->
    (* execution never continues past this point: any fact is sound *)
    bottom
  | Stmt.Seq _ | Stmt.If _ | Stmt.While _ -> assert false

let analyze (stmt : Stmt.t) : Table.facts =
  let fp = Stmt.footprint stmt in
  let bottom = { p = fp.Stmt.na; f = fp.Stmt.na } in
  Table.forward ~transfer:(transfer ~bottom) ~init:L.top stmt

type access = {
  path : Path.t;
  loc : Loc.t;
  kind : [ `Read | `Write ];
}

let facts_for ?facts stmt =
  match facts with Some f -> f | None -> analyze stmt

let racy_accesses ?facts (stmt : Stmt.t) : access list =
  let facts = facts_for ?facts stmt in
  let acc = ref [] in
  Path.iter_leaves stmt ~f:(fun path s ->
      let covered x =
        match Table.before facts path with
        | Some d -> Loc.Set.mem x d.p
        | None -> false
      in
      match s with
      | Stmt.Load (_, Mode.Rna, x) when not (covered x) ->
        acc := { path; loc = x; kind = `Read } :: !acc
      | Stmt.Store (Mode.Wna, x, _) when not (covered x) ->
        acc := { path; loc = x; kind = `Write } :: !acc
      | _ -> ());
  List.rev !acc

let store_intro_unsafe ?facts (stmt : Stmt.t) : (Path.t * Loc.t) list =
  let facts = facts_for ?facts stmt in
  let acc = ref [] in
  Path.iter_leaves stmt ~f:(fun path s ->
      match s with
      | Stmt.Store (Mode.Wna, x, _) ->
        let written =
          match Table.before facts path with
          | Some d -> Loc.Set.mem x d.f
          | None -> false
        in
        if not written then acc := (path, x) :: !acc
      | _ -> ());
  List.rev !acc
