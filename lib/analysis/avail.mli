(** Available-access analysis — the second seqabs domain.

    Combines the {!Vn} value-numbering facts with the {!Perm} permission
    must-analysis to report which non-atomic accesses are {e redundant}
    under SEQ's P/F semantics:

    - a load whose location's current value is provably held by a
      register ([Redundant_load], the forwarding passes' enabling fact);
    - a store of the value the location already holds ([Noop_store],
      Ex 2.6(iv): the store can be elided);
    - a store whose location's next access is another same-block store
      with only register-local instructions in between ([Covered_store],
      Ex 2.6(i): the strictest form of deadness — the DSE pass decides
      the general case).

    Each finding carries the {!Perm} evidence ([permitted]: the location
    is provably in the permission set at that point), so lint messages
    and certificates can cite both the value fact and the permission
    fact. *)

open Lang

type kind =
  | Redundant_load of Reg.t  (** this register holds the value *)
  | Noop_store
  | Covered_store

type finding = {
  path : Path.t;
  loc : Loc.t;
  kind : kind;
  permitted : bool;  (** [loc ∈ P] provably holds before the access *)
}

val kind_name : kind -> string
val describe : finding -> string
val analyze : Stmt.t -> finding list
