(** A generic monotone dataflow framework over {!Lang.Stmt.t}.

    The optimizer's per-pass analyses (SLF tokens, LLF register sets, DSE
    tokens, liveness) are all instances of one scheme: a join-semilattice
    of abstract facts, a transfer function over leaf instructions, joins
    at control-flow merges, and a loop-head fixpoint.  This module is
    that scheme, reusable by any future pass: it walks the statement
    tree (structured control flow only — the WHILE language has no
    [goto]), runs loop bodies to a fixpoint with widening and a safe
    [top] fallback, and records a per-point fact table keyed by
    statement {!Path}s.

    Conventions:
    - [transfer] is called on {e leaf} statements only; [Seq]/[If]/
      [While] control flow is handled by the engine.  Branch conditions
      are pure expressions; analyses that need to see their uses (e.g.
      liveness) supply the [cond] hook.
    - For a {e forward} analysis, [transfer path s d] maps the fact
      before [s] to the fact after it; for a {e backward} analysis it
      maps the fact after [s] to the fact before it.
    - Loop fixpoints iterate [prev ← widen prev (join prev step)] until
      stable, at most [max_iters] times (default 64); if the bound is
      hit, the head fact falls back to [top], which must therefore be a
      sound "no information" element.  Finite-height lattices can use
      [let widen _ next = next]. *)

module type LATTICE = sig
  type t

  (** No information — sound at any program point; the fallback when a
      loop fixpoint fails to stabilize within the iteration bound. *)
  val top : t

  val leq : t -> t -> bool
  val join : t -> t -> t

  (** [widen prev next] with [next = join prev step]: must be an upper
      bound of both and guarantee stabilization.  Finite-height lattices
      simply return [next]. *)
  val widen : t -> t -> t
end

module Make (L : LATTICE) : sig
  (** Per-point fact tables: the fact flowing {e into} and {e out of}
      every node of the statement tree (in program order, regardless of
      the analysis direction). *)
  type facts

  (** The fact holding just before the statement at a path. *)
  val before : facts -> Path.t -> L.t option

  (** The fact holding just after the statement at a path (for a loop:
      at the loop exit). *)
  val after : facts -> Path.t -> L.t option

  (** Maximum loop fixpoint iteration count over any loop (1 if the
      program is loop-free), for E3-style termination reporting. *)
  val max_loop_iters : facts -> int

  (** Fold over all recorded points in path order. *)
  val fold :
    (Path.t -> before:L.t -> after:L.t -> 'a -> 'a) -> facts -> 'a -> 'a

  (** [cond] (default: identity) is applied to every [If]/[While]
      condition expression at its evaluation point: after the incoming
      fact for a forward analysis, before the outgoing fact for a
      backward one — the hook liveness-style instances need to see
      condition uses. *)
  val forward :
    ?max_iters:int ->
    ?cond:(Path.t -> Lang.Expr.t -> L.t -> L.t) ->
    transfer:(Path.t -> Lang.Stmt.t -> L.t -> L.t) ->
    init:L.t ->
    Lang.Stmt.t ->
    facts

  val backward :
    ?max_iters:int ->
    ?cond:(Path.t -> Lang.Expr.t -> L.t -> L.t) ->
    transfer:(Path.t -> Lang.Stmt.t -> L.t -> L.t) ->
    exit_:L.t ->
    Lang.Stmt.t ->
    facts
end
