(** Mode-consistency analysis (see modes.mli). *)

open Lang

type site = {
  thread : int;
  path : Path.t;
  loc : Loc.t;
  atomic : bool;
}

type conflict = { cloc : Loc.t; na_site : site; at_site : site }

let stmt_sites ~thread (s : Stmt.t) : site list =
  let acc = ref [] in
  let add path loc atomic = acc := { thread; path; loc; atomic } :: !acc in
  Path.iter_leaves s ~f:(fun path leaf ->
      match leaf with
      | Stmt.Load (_, m, x) -> add path x (Mode.read_is_atomic m)
      | Stmt.Store (m, x, _) -> add path x (Mode.write_is_atomic m)
      | Stmt.Cas (_, x, _, _) | Stmt.Fadd (_, x, _) -> add path x true
      | _ -> ());
  List.rev !acc

let sites (threads : Stmt.t list) : site list =
  List.concat (List.mapi (fun thread s -> stmt_sites ~thread s) threads)

(* First na/at witness per location, in the given site order; a location
   with both witnesses is a conflict. *)
let conflicts_of_sites (sites : site list) : conflict list =
  let tbl : (Loc.t, site option * site option) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun s ->
      let na, at =
        match Hashtbl.find_opt tbl s.loc with
        | Some w -> w
        | None ->
          order := s.loc :: !order;
          (None, None)
      in
      let w =
        if s.atomic then (na, if at = None then Some s else at)
        else ((if na = None then Some s else na), at)
      in
      Hashtbl.replace tbl s.loc w)
    sites;
  List.rev !order
  |> List.filter_map (fun loc ->
         match Hashtbl.find tbl loc with
         | Some na_site, Some at_site -> Some { cloc = loc; na_site; at_site }
         | _ -> None)

let per_thread_conflicts (threads : Stmt.t list) : conflict list =
  List.concat
    (List.mapi
       (fun thread s -> conflicts_of_sites (stmt_sites ~thread s))
       threads)

let combined_conflicts (threads : Stmt.t list) : conflict list =
  conflicts_of_sites (sites threads)

let consistent threads = combined_conflicts threads = []

let pp_conflict ~(src : Stmt.t list) ppf (c : conflict) =
  let describe (s : site) =
    match List.nth_opt src s.thread with
    | Some stmt -> Path.describe stmt s.path
    | None -> "<gone>"
  in
  let pos (s : site) =
    if List.length src > 1 then
      Fmt.str "thread %d, %s" s.thread (Path.to_string s.path)
    else Path.to_string s.path
  in
  Fmt.pf ppf
    "location %s is accessed both non-atomically (%s: %s) and atomically (%s: %s)"
    (Loc.name c.cloc) (pos c.na_site) (describe c.na_site) (pos c.at_site)
    (describe c.at_site)
