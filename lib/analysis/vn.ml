(** Value numbering / available expressions (see vn.mli). *)

open Lang

type vn = int

(* Hash-consing context.  Constants and operator applications over known
   operands are numbered structurally; everything whose value the
   analysis cannot predict (atomic loads, choose/freeze, operands of
   unknown number) gets a fresh number that is equal only to itself. *)
type key =
  | Kconst of Value.t
  | Kbin of Expr.binop * vn * vn
  | Kun of Expr.unop * vn

type ctx = { tbl : (key, vn) Hashtbl.t; mutable next : vn }

let create () : ctx = { tbl = Hashtbl.create 64; next = 0 }

let fresh (c : ctx) : vn =
  let n = c.next in
  c.next <- n + 1;
  n

let intern (c : ctx) (k : key) : vn =
  match Hashtbl.find_opt c.tbl k with
  | Some n -> n
  | None ->
    let n = fresh c in
    Hashtbl.add c.tbl k n;
    n

type state = { regs : vn Reg.Map.t; mem : vn Loc.Map.t }

let empty = { regs = Reg.Map.empty; mem = Loc.Map.empty }

let reg_vn st r = Reg.Map.find_opt r st.regs
let mem_vn st x = Loc.Map.find_opt x st.mem

let rec eval (c : ctx) (st : state) (e : Expr.t) : vn option =
  match e with
  | Expr.Const v -> Some (intern c (Kconst v))
  | Expr.Reg r -> Reg.Map.find_opt r st.regs
  | Expr.Binop (op, a, b) ->
    (match eval c st a, eval c st b with
     | Some na, Some nb -> Some (intern c (Kbin (op, na, nb)))
     | _ -> None)
  | Expr.Unop (op, a) ->
    (match eval c st a with
     | Some na -> Some (intern c (Kun (op, na)))
     | None -> None)

let eval_or_fresh c st e =
  match eval c st e with Some n -> n | None -> fresh c

let holders (st : state) (n : vn) : Reg.Set.t =
  Reg.Map.fold
    (fun r m acc -> if m = n then Reg.Set.add r acc else acc)
    st.regs Reg.Set.empty

let set_reg st r n = { st with regs = Reg.Map.add r n st.regs }
let set_mem st x n = { st with mem = Loc.Map.add x n st.mem }
let clear_mem st = { st with mem = Loc.Map.empty }

(* Mode-aware clobbers, mirroring the forwarding passes' kill rules
   (App D, Fig 8): an acquire event (acquire load, RMW, acq/acqrel/sc
   fence) may import fresh memory for any non-atomic location, so all
   location numbers die; relaxed and release accesses leave non-atomic
   memory untouched (SEQ's release keeps M, only permissions drop), so
   location numbers survive them. *)
let transfer (c : ctx) (st : state) (s : Stmt.t) : state =
  match s with
  | Stmt.Assign (r, e) -> set_reg st r (eval_or_fresh c st e)
  | Stmt.Load (r, Mode.Rna, x) ->
    let n = match mem_vn st x with Some n -> n | None -> fresh c in
    set_mem (set_reg st r n) x n
  | Stmt.Load (r, Mode.Rrlx, _) -> set_reg st r (fresh c)
  | Stmt.Load (r, Mode.Racq, _) -> clear_mem (set_reg st r (fresh c))
  | Stmt.Store (Mode.Wna, x, e) -> set_mem st x (eval_or_fresh c st e)
  | Stmt.Store ((Mode.Wrlx | Mode.Wrel), _, _) -> st
  | Stmt.Cas (r, _, _, _) | Stmt.Fadd (r, _, _) ->
    clear_mem (set_reg st r (fresh c))
  | Stmt.Choose r | Stmt.Freeze (r, _) -> set_reg st r (fresh c)
  | Stmt.Fence (Mode.Facq | Mode.Facqrel | Mode.Fsc) -> clear_mem st
  | Stmt.Fence Mode.Frel | Stmt.Skip | Stmt.Print _ | Stmt.Abort
  | Stmt.Return _ -> st
  | Stmt.Seq _ | Stmt.If _ | Stmt.While _ ->
    invalid_arg "Vn.transfer: compound statement"

(* Must-join: keep only bindings both sides agree on. *)
let join (a : state) (b : state) : state =
  let agree _ x y =
    match x, y with Some x, Some y when x = y -> Some x | _ -> None
  in
  { regs = Reg.Map.merge agree a.regs b.regs;
    mem = Loc.Map.merge agree a.mem b.mem }

let leq (a : state) (b : state) =
  (* a carries at least b's bindings *)
  Reg.Map.for_all (fun r n -> Reg.Map.find_opt r a.regs = Some n) b.regs
  && Loc.Map.for_all (fun x n -> Loc.Map.find_opt x a.mem = Some n) b.mem

let equal (a : state) (b : state) = leq a b && leq b a

(* Loop fixpoint from head state [h]: iterate [h ⊓ step h] until stable.
   Unpredictable values get genuinely fresh numbers on every probe, so a
   binding survives the join only if its value is iteration-independent
   (constants, values established before the loop and not clobbered
   inside it) — which is exactly when forwarding it is sound.  The chain
   is pointwise-shrinking over finitely many bindings, so it terminates
   without a widening bound. *)
let loop_fix (step : state -> state) (h0 : state) : state * int =
  let rec fix h iters =
    let h' = join h (step h) in
    if equal h h' then (h, iters) else fix h' (iters + 1)
  in
  fix h0 1

(* Published facts: a straight-line walk recording the state before every
   leaf.  If/While bodies are analyzed with the proper joins (branch
   join, loop fixpoint), so facts inside compounds are sound. *)
type facts = state Path.Map.t

let analyze ?ctx (stmt : Stmt.t) : facts =
  let c = match ctx with Some c -> c | None -> create () in
  let tbl = ref Path.Map.empty in
  let rec go (st : state) (s : Stmt.t) (p : Path.t) : state =
    tbl := Path.Map.add p st !tbl;
    match s with
    | Stmt.Seq (a, b) ->
      let st = go st a (Path.child p Path.Fst) in
      go st b (Path.child p Path.Snd)
    | Stmt.If (_, a, b) ->
      let sa = go st a (Path.child p Path.Then) in
      let sb = go st b (Path.child p Path.Else) in
      join sa sb
    | Stmt.While (_, body) ->
      let bp = Path.child p Path.Body in
      let head, _ =
        loop_fix (fun h -> probe h body) st
      in
      ignore (go head body bp : state);
      head
    | leaf -> transfer c st leaf
  and probe (st : state) (s : Stmt.t) : state =
    (* fixpoint probe: no fact recording *)
    match s with
    | Stmt.Seq (a, b) -> probe (probe st a) b
    | Stmt.If (_, a, b) -> join (probe st a) (probe st b)
    | Stmt.While (_, body) ->
      let head, _ = loop_fix (fun h -> probe h body) st in
      head
    | leaf -> transfer c st leaf
  in
  ignore (go empty stmt Path.root : state);
  !tbl

let before (f : facts) (p : Path.t) = Path.Map.find_opt p f
