(** Backward register liveness — the classic may-analysis, instantiated
    on the generic {!Dataflow} engine (its backward direction and the
    condition hook are exercised here; {!Perm} covers the forward one).

    A register is live at a point when some path from the point reads it
    before overwriting it.  [Print]/[Return]/[Store]/RMW operands and
    branch conditions are uses; dead non-atomic loads are exactly the
    rewrites of the DAE pass (Ex 2.8), so {!dead_assignments} gives the
    engine-computed cross-check for its sites. *)

open Lang

(** The live set, with an explicit "everything may be live" top so the
    engine's widening fallback is sound without knowing the program's
    register universe. *)
type liveset = All | Regs of Reg.Set.t

val live_mem : Reg.t -> liveset -> bool

module L : Dataflow.LATTICE with type t = liveset

module Table : module type of Dataflow.Make (L)

(** Live-register tables of a statement (exit fact: the empty set — a
    [return]'s expression is a use, so nothing is implicitly live). *)
val analyze : Stmt.t -> Table.facts

(** Sites whose assigned register is dead at the site: plain register
    assignments with total expressions and non-atomic loads — the
    instructions dead-assignment elimination removes. *)
val dead_assignments : ?facts:Table.facts -> Stmt.t -> (Path.t * Reg.t) list
