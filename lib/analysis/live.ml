(** Backward register liveness on the generic engine (see live.mli). *)

open Lang

type liveset = All | Regs of Reg.Set.t

let live_mem r = function All -> true | Regs s -> Reg.Set.mem r s

module L = struct
  type t = liveset

  let top = All

  let leq a b =
    match a, b with
    | _, All -> true
    | All, Regs _ -> false
    | Regs a, Regs b -> Reg.Set.subset a b

  let join a b =
    match a, b with
    | All, _ | _, All -> All
    | Regs a, Regs b -> Regs (Reg.Set.union a b)

  let widen _prev next = next  (* finite height: ≤ |Reg| + 1 *)
end

module Table = Dataflow.Make (L)

let use e = function All -> All | Regs s -> Regs (Reg.Set.union (Expr.regs e) s)
let kill r = function All -> All | Regs s -> Regs (Reg.Set.remove r s)

(* Backward transfer: fact after the instruction → fact before it. *)
let transfer (_ : Path.t) (s : Stmt.t) (d : liveset) : liveset =
  match s with
  | Stmt.Assign (r, e) | Stmt.Freeze (r, e) -> use e (kill r d)
  | Stmt.Load (r, _, _) -> kill r d
  | Stmt.Store (_, _, e) | Stmt.Print e | Stmt.Return e -> use e d
  | Stmt.Cas (r, _, e1, e2) -> use e1 (use e2 (kill r d))
  | Stmt.Fadd (r, _, e) -> use e (kill r d)
  | Stmt.Choose r -> kill r d
  | Stmt.Skip | Stmt.Abort | Stmt.Fence _ -> d
  | Stmt.Seq _ | Stmt.If _ | Stmt.While _ -> assert false

let cond (_ : Path.t) (e : Expr.t) (d : liveset) : liveset = use e d

let analyze (stmt : Stmt.t) : Table.facts =
  Table.backward ~cond ~transfer ~exit_:(Regs Reg.Set.empty) stmt

(* Expressions whose evaluation cannot fault (no division/modulo): only
   these make a dead assignment removable — run-time faults must stay. *)
let rec total (e : Expr.t) : bool =
  match e with
  | Expr.Const _ | Expr.Reg _ -> true
  | Expr.Binop ((Expr.Div | Expr.Mod), _, _) -> false
  | Expr.Binop (_, a, b) -> total a && total b
  | Expr.Unop (_, a) -> total a

let dead_assignments ?facts (stmt : Stmt.t) : (Path.t * Reg.t) list =
  let facts = match facts with Some f -> f | None -> analyze stmt in
  let acc = ref [] in
  Path.iter_leaves stmt ~f:(fun path s ->
      let dead r =
        match Table.after facts path with
        | Some d -> not (live_mem r d)
        | None -> false
      in
      match s with
      | Stmt.Assign (r, e) when total e ->
        if dead r then acc := (path, r) :: !acc
      | Stmt.Load (r, Mode.Rna, _) ->
        if dead r then acc := (path, r) :: !acc
      | _ -> ());
  List.rev !acc
