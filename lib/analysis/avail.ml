(** Available-access analysis (see avail.mli). *)

open Lang

type kind =
  | Redundant_load of Reg.t
  | Noop_store
  | Covered_store

type finding = {
  path : Path.t;
  loc : Loc.t;
  kind : kind;
  permitted : bool;
}

let kind_name = function
  | Redundant_load _ -> "redundant-load"
  | Noop_store -> "noop-store"
  | Covered_store -> "covered-store"

let describe (f : finding) : string =
  let perm =
    if f.permitted then " (the location is provably permitted here)"
    else ""
  in
  match f.kind with
  | Redundant_load r ->
    Fmt.str
      "non-atomic load of %s is redundant: register %s provably holds its \
       current value%s"
      (Loc.name f.loc) (Reg.name r) perm
  | Noop_store ->
    Fmt.str
      "non-atomic store to %s is a no-op: it stores the value the location \
       already holds%s"
      (Loc.name f.loc) perm
  | Covered_store ->
    Fmt.str
      "non-atomic store to %s is dead: the next access of the location is \
       another store%s"
      (Loc.name f.loc) perm

(* A same-block overwrite with nothing in between but register-local
   leaves: the strictest form of deadness, used for the covered-store
   report (the DSE pass itself decides the general case). *)
let rec covered x (rest : Stmt.t list) =
  match rest with
  | Stmt.Store (Mode.Wna, y, _) :: _ when Loc.equal x y -> true
  | (Stmt.Assign _ | Stmt.Choose _ | Stmt.Freeze _ | Stmt.Skip) :: tl ->
    covered x tl
  | _ -> false

let analyze (stmt : Stmt.t) : finding list =
  let c = Vn.create () in
  let perm_facts = Perm.analyze stmt in
  let acc = ref [] in
  let permitted path x =
    match Perm.Table.before perm_facts path with
    | Some d -> Loc.Set.mem x d.Perm.p
    | None -> false
  in
  let note path loc kind =
    acc := { path; loc; kind; permitted = permitted path loc } :: !acc
  in
  (* Walk the statement tree with the VN state, keeping a lookahead spine
     of the statements that follow in the same block for the
     covered-store check. *)
  let rec flat s acc = match s with
    | Stmt.Seq (a, b) -> flat a (flat b acc)
    | s -> s :: acc
  in
  let rec go st (s : Stmt.t) (p : Path.t) (rest : Stmt.t list) : Vn.state =
    match s with
    | Stmt.Seq (a, b) ->
      let st = go st a (Path.child p Path.Fst) (flat b rest) in
      go st b (Path.child p Path.Snd) rest
    | Stmt.If (_, a, b) ->
      let sa = go st a (Path.child p Path.Then) [] in
      let sb = go st b (Path.child p Path.Else) [] in
      Vn.join sa sb
    | Stmt.While (_, body) ->
      let bp = Path.child p Path.Body in
      let head, _ = Vn.loop_fix (fun h -> probe h body) st in
      ignore (go head body bp [] : Vn.state);
      head
    | Stmt.Load (r, Mode.Rna, x) as leaf ->
      (match Vn.mem_vn st x with
       | Some n ->
         let hs = Reg.Set.remove r (Vn.holders st n) in
         (match Reg.Set.min_elt_opt hs with
          | Some h -> note p x (Redundant_load h)
          | None -> ())
       | None -> ());
      Vn.transfer c st leaf
    | Stmt.Store (Mode.Wna, x, e) as leaf ->
      (match Vn.eval c st e, Vn.mem_vn st x with
       | Some n, Some m when n = m -> note p x Noop_store
       | _ -> if covered x rest then note p x Covered_store);
      Vn.transfer c st leaf
    | leaf -> Vn.transfer c st leaf
  and probe st s =
    match s with
    | Stmt.Seq (a, b) -> probe (probe st a) b
    | Stmt.If (_, a, b) -> Vn.join (probe st a) (probe st b)
    | Stmt.While (_, body) ->
      let head, _ = Vn.loop_fix (fun h -> probe h body) st in
      head
    | leaf -> Vn.transfer c st leaf
  in
  ignore (go Vn.empty stmt Path.root [] : Vn.state);
  List.rev !acc
