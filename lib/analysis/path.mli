(** Statement paths: stable addresses of program points inside a
    {!Lang.Stmt.t} tree.

    A path names a node of the statement tree by the branch choices taken
    from the root: left/right of a [Seq], then/else of an [If], the body
    of a [While].  Paths are the keys of per-point fact tables
    ({!Dataflow}), the rewrite sites recorded by the optimizer passes
    ({!Optimizer.Driver.pass_report}), and the locations cited by
    [seqlint] diagnostics — so an analysis fact, a pass rewrite, and a
    lint message about the same instruction all print the same address. *)

type step =
  | Fst  (** left of a [Seq] *)
  | Snd  (** right of a [Seq] *)
  | Then  (** then-branch of an [If] *)
  | Else  (** else-branch of an [If] *)
  | Body  (** body of a [While] *)

(** A path from the root to a node, in root-to-node order. *)
type t = step list

val root : t

(** Extend a path downward by one step (paths are built root-first). *)
val child : t -> step -> t

val compare : t -> t -> int
val equal : t -> t -> bool

(** Deterministic rendering, e.g. ["/0/1/then/0"]; the root is ["/"]. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** The sub-statement at a path ([None] if the path leaves the tree). *)
val find : Lang.Stmt.t -> t -> Lang.Stmt.t option

(** [find] restricted to the node's own constructor: for compound nodes
    ([Seq]/[If]/[While]) the returned rendering is truncated to one line
    ("if ... {...}"), so diagnostics stay single-line. *)
val describe : Lang.Stmt.t -> t -> string

(** Visit every {e leaf} statement (everything but [Seq]/[If]/[While])
    with its path, in program order. *)
val iter_leaves : Lang.Stmt.t -> f:(t -> Lang.Stmt.t -> unit) -> unit

module Map : Map.S with type key = t
