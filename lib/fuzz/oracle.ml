(** Pluggable differential oracles.

    Every oracle checks one cross-layer agreement contract on a single
    generated program; a [Some detail] result is a {e finding} — evidence
    that two layers of the system disagree.  All oracles are
    deterministic given the program (no RNG, no wall-clock-dependent
    output) and charge their exploration to the task budget
    ({!Engine.Budget.Exhausted} escapes and is trapped by the campaign's
    supervised sweep into an [Unknown]). *)

open Lang

type kind =
  | Pass_correct  (** each optimizer pass's output refines its input *)
  | Analysis_sound  (** static racy-access set covers SEQ's dynamic races *)
  | Lint_agree  (** a lint-clean program has no dynamic racy access *)
  | Baseline_env  (** single-thread SC behaviors ⊆ SEQ; DRF ⇒ catchfire=SC *)
  | Baseline_hw of string
      (** SC behaviors ⊆ the named hardware backend's (default tso) *)

let default_hw = "tso"

let all =
  [ Pass_correct; Analysis_sound; Lint_agree; Baseline_env;
    Baseline_hw default_hw ]

let name = function
  | Pass_correct -> "pass-correct"
  | Analysis_sound -> "analysis-sound"
  | Lint_agree -> "lint-agree"
  | Baseline_env -> "baseline-env"
  | Baseline_hw m -> if m = default_hw then "baseline-hw" else "baseline-hw:" ^ m

let of_string s =
  match List.find_opt (fun k -> name k = s) all with
  | Some _ as k -> k
  | None ->
    (* a non-default machine renders as "baseline-hw:<machine>" *)
    (match String.split_on_char ':' s with
     | [ "baseline-hw"; m ] when Backends.Registry.find m <> None ->
       Some (Baseline_hw m)
     | _ -> None)

(* ------------------------------------------------------------------ *)
(* Advanced-only refinement, the workhorse of pass checking: a static
   certificate when the pipeline replay reaches [tgt] or the abstract
   certifier bridges the gap, the Fig 6 enumeration otherwise.
   ({!Optimizer.Validate.validate} also decides the simple Def 2.4
   notion by enumeration, which fuzzing throughput cannot afford;
   soundness of a pass is the advanced notion.)  Routing fuzz traffic
   through both certifiers is deliberate: an unsound certificate would
   stop the campaign from refuting a planted bug, which the fixed-seed
   smoke test would flag. *)
let refines ~budget ~(src : Stmt.t) ~(tgt : Stmt.t) : bool =
  match Optimizer.Certify.attempt ~src ~tgt () with
  | Some _ -> true
  | None -> (
    match Optimizer.Certabs.attempt ~src ~tgt () with
    | Some _ -> true
    | None ->
      let d = Domain.of_stmts [ src; tgt ] in
      Seq_model.Advanced.check ~budget d ~src ~tgt)

let check_pass_correct ~budget (p : Stmt.t) : string option =
  let rec go = function
    | [] -> None
    | pass :: rest ->
      let tgt, rewrites, _, _ = Optimizer.Driver.run_pass pass p in
      if rewrites = 0 || Stmt.normalize tgt = Stmt.normalize p then go rest
      else if refines ~budget ~src:p ~tgt then go rest
      else
        Some
          (Printf.sprintf "%s output does not refine its input"
             (Optimizer.Driver.pass_name pass))
  in
  go Optimizer.Driver.all_passes

(* ------------------------------------------------------------------ *)
(* Exhaustive dynamic racy accesses: all (kind, loc) pairs of non-atomic
   accesses SEQ can perform without holding the permission, over every
   initial permission set and memory of the (2-valued, for tractability)
   domain.  Mirrors the qcheck harness in test/test_analysis.ml, but
   budget-charged so the campaign can bound it. *)
let dynamic_racy ~budget (p : Stmt.t) : ([ `Read | `Write ] * Loc.t) list =
  let module CSet = Set.Make (Seq_model.Config) in
  let d = Domain.of_stmts ~values:[ Value.Int 0; Value.Int 1 ] [ p ] in
  let seen = ref CSet.empty in
  let acc = ref [] in
  let rec visit cfg =
    if not (CSet.mem cfg !seen) then begin
      Engine.Budget.spend_state budget;
      seen := CSet.add cfg !seen;
      (match Prog.step cfg.Seq_model.Config.prog with
       | Prog.Do_read (Mode.Rna, x, _)
         when not (Loc.Set.mem x cfg.Seq_model.Config.perm) ->
         acc := (`Read, x) :: !acc
       | Prog.Do_write (Mode.Wna, x, _, _)
         when not (Loc.Set.mem x cfg.Seq_model.Config.perm) ->
         acc := (`Write, x) :: !acc
       | _ -> ());
      List.iter
        (fun (_, next) ->
          match next with
          | Seq_model.Config.Cont c -> visit c
          | Seq_model.Config.Bot -> ())
        (Seq_model.Config.moves d cfg)
    end
  in
  List.iter
    (fun perm ->
      List.iter
        (fun mem -> visit (Seq_model.Config.make ~perm ~mem (Prog.init p)))
        (Domain.memories d))
    (Domain.subsets d.Domain.na_locs);
  List.sort_uniq compare !acc

let kind_name = function `Read -> "read" | `Write -> "write"

let check_analysis_sound ~budget (p : Stmt.t) : string option =
  let static =
    List.map
      (fun a -> (a.Analysis.Perm.kind, a.Analysis.Perm.loc))
      (Analysis.Perm.racy_accesses p)
  in
  let dynamic = dynamic_racy ~budget p in
  match List.find_opt (fun pr -> not (List.mem pr static)) dynamic with
  | None -> None
  | Some (k, x) ->
    Some
      (Printf.sprintf "dynamic racy %s of %s not statically flagged"
         (kind_name k) (Loc.name x))

let check_lint_agree ~budget (p : Stmt.t) : string option =
  let diags = Optimizer.Lint.lint ~hints:false [ p ] in
  let race_flagged =
    List.exists
      (fun d ->
        match d.Optimizer.Lint.rule with
        | Optimizer.Lint.Racy_read | Optimizer.Lint.Racy_write
        | Optimizer.Lint.Mixed_access | Optimizer.Lint.Unordered_race -> true
        | _ -> false)
      diags
  in
  if race_flagged then None
  else
    match dynamic_racy ~budget p with
    | [] -> None
    | (k, x) :: _ ->
      Some
        (Printf.sprintf "lint-clean program has a dynamic racy %s of %s"
           (kind_name k) (Loc.name x))

(* ------------------------------------------------------------------ *)
(* Baseline envelope.  Single-thread SC executions are SEQ executions
   under the identity environment from the full-permission, zero-memory
   initial configuration, so every SC (return value, prints) behavior
   must appear among SEQ's enumerated terminal behaviors; and on
   race-free programs the catch-fire semantics must agree with SC
   exactly (the DRF guarantee).

   The SEQ enumeration branches over environment choices at every
   acquire, so this oracle is exhaustive only on small programs: ones
   above [baseline_env_max_size] are skipped, like SC-truncated ones —
   the envelope property is about behavior sets, and on the campaign's
   deep mutants the enumeration would spend the entire state budget
   without covering either set (docs/FUZZING.md).

   The gate sits at 20 statements (12 at PR 5, 16 once the packed-table
   enumeration core landed): the hash-consed Seq_model.Core transitions
   keep the per-acquire branching cheap enough to afford the deeper
   programs within the same campaign budgets, with the 200k-state local
   cap below still bounding the worst loop-heavy mutants. *)
let baseline_env_max_size = 20

(* The SC side below is hard-capped (Sc.explore ~max_states); the SEQ
   enumeration needs the same protection when the campaign budget is
   unlimited — a loop-heavy mutant near the size gate can otherwise
   enumerate behavior sets without bound.  Any explicit budget wins. *)
let baseline_env_default_states = 200_000

let check_baseline_env ~budget (p : Stmt.t) : string option =
  if Stmt.size p > baseline_env_max_size then None
  else
  let budget =
    if Engine.Budget.is_unlimited budget then
      Engine.Budget.make ~max_states:baseline_env_default_states ()
    else budget
  in
  let sc = Baselines.Sc.explore ~max_states:20_000 [ p ] in
  if sc.Baselines.Sc.truncated then None
  else begin
    let cf = Baselines.Catchfire.explore [ p ] in
    if
      (not sc.Baselines.Sc.races)
      && not
           (Baselines.Sc.Behavior_set.equal cf.Baselines.Catchfire.behaviors
              sc.Baselines.Sc.behaviors)
    then Some "catch-fire disagrees with SC on a race-free program"
    else begin
      let d = Domain.of_stmts [ p ] in
      let cfg =
        Seq_model.Config.make ~perm:(Domain.na_set d) (Prog.init p)
      in
      let fuel = (16 * Stmt.size p) + 64 in
      let tables = Seq_model.Config.make_tables d in
      let behs = Seq_model.Behavior.enumerate ~budget ?tables d ~fuel cfg in
      let seq_terms =
        Seq_model.Behavior.Set.fold
          (fun (evs, r) acc ->
            match r with
            | Seq_model.Behavior.Trm (v, _, _) ->
              ( v,
                List.filter_map
                  (function Seq_model.Event.Out v -> Some v | _ -> None)
                  evs )
              :: acc
            | _ -> acc)
          behs []
      in
      let seq_bot =
        Seq_model.Behavior.Set.exists
          (fun (_, r) -> r = Seq_model.Behavior.Bot)
          behs
      in
      let missing = ref None in
      Baselines.Sc.Behavior_set.iter
        (fun b ->
          if !missing = None then
            match b with
            | Baselines.Sc.Bot ->
              if not seq_bot then missing := Some "an erroneous (Bot) behavior"
            | Baselines.Sc.Ret [ (v, prints) ] ->
              if not (List.mem (v, prints) seq_terms) then
                missing :=
                  Some
                    (Fmt.str "return %a with %d print(s)" Value.pp v
                       (List.length prints))
            | Baselines.Sc.Ret _ -> ())
        sc.Baselines.Sc.behaviors;
      match !missing with
      | None -> None
      | Some what -> Some ("SC behavior missing from SEQ enumeration: " ^ what)
    end
  end

(* ------------------------------------------------------------------ *)
(* Hardware envelope.  Every hardware backend only ever relaxes SC —
   store buffering and local reordering add interleavings, they never
   remove one — so the SC behavior set of a generated program must be
   included in the hardware machine's (the first link of the
   SC ⊆ TSO ⊆ ARMv8 chain the E15 grid pins on the catalog, here
   cross-checked on arbitrary generated programs).  Size-gated and
   truncation-skipped like {!check_baseline_env}: inclusion is a
   statement about complete behavior sets. *)
let hw_max_states = 20_000

let check_baseline_hw ~budget machine (p : Stmt.t) : string option =
  if Stmt.size p > baseline_env_max_size then None
  else
    let (module M : Backends.Backend.MACHINE) =
      match Backends.Registry.find machine with
      | Some m -> m
      | None -> invalid_arg ("Oracle.baseline-hw: unknown backend " ^ machine)
    in
    let sc =
      Backends.Registry.Sc_machine.explore ~max_states:hw_max_states ~budget
        [ p ]
    in
    if sc.Backends.Backend.truncated then None
    else
      let hw = M.explore ~max_states:hw_max_states ~budget [ p ] in
      if hw.Backends.Backend.truncated then None
      else if Backends.Backend.subset ~small:sc ~big:hw then None
      else Some ("SC behavior missing under " ^ M.name)

let check (k : kind) ~budget (p : Stmt.t) : string option =
  match k with
  | Pass_correct -> check_pass_correct ~budget p
  | Analysis_sound -> check_analysis_sound ~budget p
  | Lint_agree -> check_lint_agree ~budget p
  | Baseline_env -> check_baseline_env ~budget p
  | Baseline_hw m -> check_baseline_hw ~budget m p
