(** The fuzzing campaign runner.

    Deterministically seeded: corpus entry [i] is generated (or mutated
    from entry [i/2]) using its own RNG stream
    [Random.State.make [| seed; i |]], deduplicated by
    {!Lang.Fingerprint}, swept through the oracles and planted variants
    under {!Engine.Sweep.run_verdict} (budget-bounded, quarantining,
    parallel=sequential), then findings are shrunk sequentially.  Every
    report field except [wall_ms] is independent of [jobs] and
    scheduling, provided the budget spec has no wall-clock component —
    {!render} is the byte-comparable form. *)

open Lang

(** One generator configuration in the campaign's rotation. *)
type phase = { phase_name : string; cfg : Gen.config; size : int }

(** default / store-heavy / load-heavy / loops — tuned so the planted
    variants' needles (store–release–acquire–store, load–acquire–load,
    invariant-load-next-to-acquire loops) are reachable within a small
    budget. *)
val default_phases : phase list

type finding = {
  index : int;  (** corpus index of the failing program *)
  oracle : string;  (** oracle name, or ["planted:<variant>"] *)
  fingerprint : string;  (** of the original failing program *)
  detail : string;
  program : Stmt.t;  (** the original failing program (normalized) *)
  shrunk : Stmt.t option;  (** minimized reproducer, when shrinking ran *)
  shrink_steps : int;
}

(** The coverage ledger of a [coverage]/[guided] campaign.  Every field
    except [persisted] is jobs-independent like the rest of the report;
    [persisted] is too (the store is content-addressed, so the write
    count is a pure function of the deterministic report contents). *)
type coverage_stats = {
  cov_points : int;  (** distinct coverage signals after the run *)
  cov_admitted : int;  (** generated programs admitted to the pool *)
  corpus_size : int;  (** pool size after the run (incl. resumed) *)
  resumed : int;  (** programs replayed from the store *)
  fresh_execs : int;  (** swept programs no earlier run had seen *)
  persisted : int;  (** store entries written (0 without a store) *)
}

type report = {
  seed : int;
  requested_execs : int;
  unique_execs : int;  (** after fingerprint dedup *)
  dedup_dropped : int;
  findings : finding list;  (** real-oracle findings, in corpus order *)
  planted : (string * finding option) list;
      (** per planted variant: the first refutation, or [None] if the
          variant survived (a harness failure) *)
  unknowns : int;
  quarantined : int;
  shrink_steps_total : int;
  cov : coverage_stats option;  (** [None] on blind campaigns *)
  wall_ms : float;  (** the only scheduling-dependent field *)
}

val execs_per_s : report -> float

(** [coverage] turns on signal accounting and pool admission without
    steering (the corpus is the blind one — the E16 baseline);
    [guided] (implies [coverage]) draws mutation parents from the pool
    by {!Schedule.pick}; [corpus_dir] (implies [coverage]) persists the
    pool, reproducers and swept fingerprints through {!Persist} at the
    end of the run; [resume] replays a persisted store first — its pool
    and reproducers become tasks [0..resumed-1] and its swept
    fingerprints are skipped without running an oracle. *)
val run :
  ?pool:Engine.Pool.t ->
  ?jobs:int ->
  ?budget:Engine.Budget.spec ->
  ?oracles:Oracle.kind list ->
  ?planted:Planted.variant list ->
  ?shrink:bool ->
  ?phases:phase list ->
  ?coverage:bool ->
  ?guided:bool ->
  ?corpus_dir:string ->
  ?resume:bool ->
  seed:int ->
  max_execs:int ->
  unit ->
  report

(** Deterministic rendering (no timing fields): byte-identical across
    [jobs] settings. *)
val render : report -> string

val render_finding : finding -> string

(** The campaign as a JSON document (includes [wall_ms]/[execs_per_s]). *)
val json : report -> Service.Json.t
