(** Energy scheduling: bias mutation budget toward recently-novel seeds.

    A member's energy is its admission-time novelty (how many new
    coverage points it brought) boosted by recency (a linear window over
    admission indices), so the campaign keeps mutating the frontier of
    the coverage map rather than long-exhausted early seeds.  Picking is
    a single weighted draw from the supplied RNG state — the per-index
    campaign streams keep it deterministic and jobs-independent. *)

type energy = int

(** Admission indices inside this window of the newest member get a
    recency boost. *)
val recency_window : int

(** [weight ~now e]: [e.new_points * (1 + recency boost)]; [now] is the
    current pool size. *)
val weight : now:int -> Corpus.entry -> energy

(** Members paired with their current energies, in admission order. *)
val weights : Corpus.t -> (Corpus.entry * energy) list

(** One energy-weighted draw; [None] on an empty (or zero-energy) pool.
    Consumes at most one [int] from the RNG state. *)
val pick : Corpus.t -> Random.State.t -> Corpus.entry option
