(** Deliberately unsound optimizer-pass variants — planted bugs.

    Each variant reimplements one of the paper's passes with exactly the
    barrier-sensitivity removed that makes the real pass sound (§2, Fig 1;
    the litmus catalog's "…-across-…" entries are the minimal needles):

    - {!Dse_rel}: dead store elimination that treats release writes,
      acquire reads and fences as transparent.  Eliminating a store
      across a release {e write} alone is still sound in the advanced
      notion (Ex 3.5), but eliminating it across a release-acquire pair
      is not — the environment may observe the overwritten value.
    - {!Llf_acq}: load-to-load forwarding that forwards a non-atomic
      load across an acquire read.  The acquire may regain the location
      with a new environment-provided value (Ex 2.11's dual).
    - {!Licm_acq}: loop-invariant code motion that hoists a non-atomic
      load out of a loop whose body performs an acquire — the real LICM
      refuses such loops (§4/App D), because later iterations read
      values the environment supplied at the acquire.
    - {!Cse_acq}: common-subexpression elimination that treats an
      acquire load as a pure expression: a second acquire load of the
      same location is replaced by a copy of the first result.  An
      acquire load is an environment-choice event — eliminating it
      erases both the event and the fresh value the environment may
      supply there (Ex 2.9(iii); the real {!Optimizer.Cse} only
      numbers pure expressions).
    - {!Rle_rel}: redundant-load elimination whose store-to-load
      forwarding facts survive release writes, as if the published
      value were sealed.  Forwarding across a lone acquire is sound
      (slf-across-acq-read): without a release the environment never
      gains the location.  Across a release-{e acquire} pair it is not
      (Ex 2.12): the environment may take x at the release, change it,
      and hand it back at the acquire.  The real {!Optimizer.Rle}
      kills its facts at every acquire-class event.

    The fuzzer's job is to {e refute} every variant: find a generated
    program on which the variant's output does not refine its input.
    Variants are honest pass skeletons, not error generators: on programs
    without the dangerous shape they perform ordinary sound rewrites (or
    nothing), so refutations genuinely exercise the oracles. *)

open Lang

type variant = Dse_rel | Llf_acq | Licm_acq | Cse_acq | Rle_rel

let all = [ Dse_rel; Llf_acq; Licm_acq; Cse_acq; Rle_rel ]

let name = function
  | Dse_rel -> "dse-across-release"
  | Llf_acq -> "llf-across-acquire"
  | Licm_acq -> "licm-past-acquire"
  | Cse_acq -> "cse-across-acquire"
  | Rle_rel -> "load-elim-across-release"

let describe = function
  | Dse_rel -> "dead store elimination ignoring release/acquire barriers"
  | Llf_acq -> "load-to-load forwarding across acquire reads"
  | Licm_acq -> "LICM hoisting a load past an acquire loop head"
  | Cse_acq -> "CSE numbering an acquire load like a pure expression"
  | Rle_rel -> "store-to-load forwarding surviving a release publish"

let of_string s = List.find_opt (fun v -> name v = s) all

(* Statement-list spine of a block (right-nested [Seq], [Skip] dropped). *)
let rec flatten s acc =
  match s with
  | Stmt.Seq (a, b) -> flatten a (flatten b acc)
  | Stmt.Skip -> acc
  | s -> s :: acc

let spine s = flatten s []

(* ------------------------------------------------------------------ *)
(* Buggy DSE: a non-atomic store is dead if some later store in the same
   block overwrites the location before any load of it — scanning THROUGH
   fences and atomic accesses as if they were transparent (the planted
   bug; the real pass kills its deadness facts at a release and must see
   no acquire before the overwrite). *)

let rec dse_killable x = function
  | [] -> false
  | Stmt.Store (Mode.Wna, y, _) :: _ when Loc.equal x y -> true
  | Stmt.Load (_, _, y) :: _ when Loc.equal x y -> false
  | (Stmt.If _ | Stmt.While _ | Stmt.Return _ | Stmt.Abort) :: _ -> false
  | _ :: rest -> dse_killable x rest
  (* Fence / atomic load / atomic store / CAS / FADD fall through: BUG *)

let rec dse_block = function
  | [] -> []
  | Stmt.Store (Mode.Wna, x, _) :: rest when dse_killable x rest ->
    dse_block rest
  | Stmt.If (e, a, b) :: rest ->
    Stmt.If (e, dse_stmt a, dse_stmt b) :: dse_block rest
  | Stmt.While (e, a) :: rest -> Stmt.While (e, dse_stmt a) :: dse_block rest
  | s :: rest -> s :: dse_block rest

and dse_stmt s = Stmt.seq_list (dse_block (spine s))

(* ------------------------------------------------------------------ *)
(* Buggy LLF: forward a non-atomic load's value to a later load of the
   same location, scanning through acquire reads and fences (the planted
   bug; the real pass clears its forwarding facts at every acquire). *)

let defined_reg = function
  | Stmt.Assign (r, _) | Stmt.Load (r, _, _) | Stmt.Cas (r, _, _, _)
  | Stmt.Fadd (r, _, _) | Stmt.Choose r | Stmt.Freeze (r, _) -> Some r
  | _ -> None

let rec llf_forward r x stmts =
  match stmts with
  | [] -> []
  | Stmt.Load (r', Mode.Rna, y) :: rest when Loc.equal x y ->
    Stmt.Assign (r', Expr.reg r)
    :: (if Reg.equal r' r then rest else llf_forward r x rest)
  | (Stmt.Store (_, y, _) :: _) when Loc.equal x y -> stmts
  | (Stmt.If _ | Stmt.While _ | Stmt.Return _ | Stmt.Abort) :: _ -> stmts
  | s :: rest ->
    (match defined_reg s with
     | Some r0 when Reg.equal r0 r -> stmts
     | _ -> s :: llf_forward r x rest)
  (* acquire loads and fences fall through the last case: BUG *)

let rec llf_block = function
  | [] -> []
  | (Stmt.Load (r, Mode.Rna, x) as ld) :: rest ->
    ld :: llf_block (llf_forward r x rest)
  | Stmt.If (e, a, b) :: rest ->
    Stmt.If (e, llf_stmt a, llf_stmt b) :: llf_block rest
  | Stmt.While (e, a) :: rest -> Stmt.While (e, llf_stmt a) :: llf_block rest
  | s :: rest -> s :: llf_block rest

and llf_stmt s = Stmt.seq_list (llf_block (spine s))

(* ------------------------------------------------------------------ *)
(* Buggy LICM: hoist the first loop-invariant non-atomic load out of the
   first eligible loop — without checking whether the body performs an
   acquire (the planted bug; the real pass refuses loops with acquires).
   One hoist per program keeps the fresh-register plumbing trivial. *)

let licm_apply (p : Stmt.t) : Stmt.t =
  let t = Stmt.fresh_reg p "t" in
  let hoisted = ref false in
  let may_store_x x = function
    | Stmt.Store (_, y, _) -> Loc.equal x y
    | Stmt.Cas (_, y, _, _) | Stmt.Fadd (_, y, _) -> Loc.equal x y
    | Stmt.If _ | Stmt.While _ -> true (* conservatively: may store *)
    | _ -> false
  in
  let rec go_block stmts = List.concat_map go_stmt stmts
  and go_stmt st =
    if !hoisted then [ st ]
    else
      match st with
      | Stmt.If (e, a, b) -> [ Stmt.If (e, wrap a, wrap b) ]
      | Stmt.While (e, body) ->
        let sp = spine body in
        let invariant x = not (List.exists (may_store_x x) sp) in
        let rec find pre = function
          | [] -> None
          | Stmt.Load (r, Mode.Rna, x) :: rest when invariant x ->
            Some (List.rev pre, r, x, rest)
          | s :: rest -> find (s :: pre) rest
        in
        (match find [] sp with
         | Some (pre, r, x, rest) ->
           hoisted := true;
           [ Stmt.Load (t, Mode.Rna, x);
             Stmt.While
               (e, Stmt.seq_list (pre @ (Stmt.Assign (r, Expr.reg t) :: rest)));
           ]
         | None -> [ Stmt.While (e, wrap body) ])
      | st -> [ st ]
  and wrap s = Stmt.seq_list (go_block (spine s))
  in
  wrap p

(* ------------------------------------------------------------------ *)
(* Buggy CSE: an acquire load of x whose result register is still live
   makes a later acquire load of x a "common subexpression" — replaced
   by a register copy, as if the load were pure (the planted bug; the
   real pass only numbers pure expressions, because every acquire load
   is an environment-choice event and never eliminable). *)

let rec cse_forward r x stmts =
  match stmts with
  | [] -> []
  | Stmt.Load (r', Mode.Racq, y) :: rest when Loc.equal x y ->
    Stmt.Assign (r', Expr.reg r)
    :: (if Reg.equal r' r then rest else cse_forward r x rest)
  | (Stmt.Store (_, y, _) | Stmt.Cas (_, y, _, _) | Stmt.Fadd (_, y, _)) :: _
    when Loc.equal x y ->
    stmts
  | (Stmt.If _ | Stmt.While _ | Stmt.Return _ | Stmt.Abort) :: _ -> stmts
  | s :: rest ->
    (match defined_reg s with
     | Some r0 when Reg.equal r0 r -> stmts
     | _ -> s :: cse_forward r x rest)

let rec cse_block = function
  | [] -> []
  | (Stmt.Load (r, Mode.Racq, x) as ld) :: rest ->
    ld :: cse_block (cse_forward r x rest)
  | Stmt.If (e, a, b) :: rest ->
    Stmt.If (e, cse_stmt a, cse_stmt b) :: cse_block rest
  | Stmt.While (e, a) :: rest -> Stmt.While (e, cse_stmt a) :: cse_block rest
  | s :: rest -> s :: cse_block rest

and cse_stmt s = Stmt.seq_list (cse_block (spine s))

(* ------------------------------------------------------------------ *)
(* Buggy RLE: after a non-atomic store of x, forward the stored value to
   later non-atomic loads of x — with the forwarding fact surviving
   release writes, acquire reads and fences (the planted bug; the real
   pass kills at every acquire-class event).  Refutable exactly on
   store–release–acquire–load shapes. *)

let rec rle_forward e x stmts =
  let ergs = Expr.regs e in
  match stmts with
  | [] -> []
  | Stmt.Load (r', Mode.Rna, y) :: rest when Loc.equal x y ->
    Stmt.Assign (r', e)
    :: (if Reg.Set.mem r' ergs then rest else rle_forward e x rest)
  | (Stmt.Store (_, y, _) | Stmt.Cas (_, y, _, _) | Stmt.Fadd (_, y, _)) :: _
    when Loc.equal x y ->
    stmts
  | (Stmt.If _ | Stmt.While _ | Stmt.Return _ | Stmt.Abort) :: _ -> stmts
  | s :: rest ->
    (match defined_reg s with
     | Some r0 when Reg.Set.mem r0 ergs -> stmts
     | _ -> s :: rle_forward e x rest)
  (* release writes, acquire reads and fences fall through: BUG *)

let rec rle_block = function
  | [] -> []
  | (Stmt.Store (Mode.Wna, x, e) as st_) :: rest ->
    st_ :: rle_block (rle_forward e x rest)
  | Stmt.If (e, a, b) :: rest ->
    Stmt.If (e, rle_stmt a, rle_stmt b) :: rle_block rest
  | Stmt.While (e, a) :: rest -> Stmt.While (e, rle_stmt a) :: rle_block rest
  | s :: rest -> s :: rle_block rest

and rle_stmt s = Stmt.seq_list (rle_block (spine s))

let apply (v : variant) (p : Stmt.t) : Stmt.t =
  let out =
    match v with
    | Dse_rel -> dse_stmt p
    | Llf_acq -> llf_stmt p
    | Licm_acq -> licm_apply p
    | Cse_acq -> cse_stmt p
    | Rle_rel -> rle_stmt p
  in
  Stmt.normalize out
