(** Deliberately unsound optimizer-pass variants — planted bugs.

    Each variant reimplements one of the paper's passes with exactly the
    barrier-sensitivity removed that makes the real pass sound (§2, Fig 1;
    the litmus catalog's "…-across-…" entries are the minimal needles):

    - {!Dse_rel}: dead store elimination that treats release writes,
      acquire reads and fences as transparent.  Eliminating a store
      across a release {e write} alone is still sound in the advanced
      notion (Ex 3.5), but eliminating it across a release-acquire pair
      is not — the environment may observe the overwritten value.
    - {!Llf_acq}: load-to-load forwarding that forwards a non-atomic
      load across an acquire read.  The acquire may regain the location
      with a new environment-provided value (Ex 2.11's dual).
    - {!Licm_acq}: loop-invariant code motion that hoists a non-atomic
      load out of a loop whose body performs an acquire — the real LICM
      refuses such loops (§4/App D), because later iterations read
      values the environment supplied at the acquire.

    The fuzzer's job is to {e refute} every variant: find a generated
    program on which the variant's output does not refine its input.
    Variants are honest pass skeletons, not error generators: on programs
    without the dangerous shape they perform ordinary sound rewrites (or
    nothing), so refutations genuinely exercise the oracles. *)

open Lang

type variant = Dse_rel | Llf_acq | Licm_acq

let all = [ Dse_rel; Llf_acq; Licm_acq ]

let name = function
  | Dse_rel -> "dse-across-release"
  | Llf_acq -> "llf-across-acquire"
  | Licm_acq -> "licm-past-acquire"

let describe = function
  | Dse_rel -> "dead store elimination ignoring release/acquire barriers"
  | Llf_acq -> "load-to-load forwarding across acquire reads"
  | Licm_acq -> "LICM hoisting a load past an acquire loop head"

let of_string s = List.find_opt (fun v -> name v = s) all

(* Statement-list spine of a block (right-nested [Seq], [Skip] dropped). *)
let rec flatten s acc =
  match s with
  | Stmt.Seq (a, b) -> flatten a (flatten b acc)
  | Stmt.Skip -> acc
  | s -> s :: acc

let spine s = flatten s []

(* ------------------------------------------------------------------ *)
(* Buggy DSE: a non-atomic store is dead if some later store in the same
   block overwrites the location before any load of it — scanning THROUGH
   fences and atomic accesses as if they were transparent (the planted
   bug; the real pass kills its deadness facts at a release and must see
   no acquire before the overwrite). *)

let rec dse_killable x = function
  | [] -> false
  | Stmt.Store (Mode.Wna, y, _) :: _ when Loc.equal x y -> true
  | Stmt.Load (_, _, y) :: _ when Loc.equal x y -> false
  | (Stmt.If _ | Stmt.While _ | Stmt.Return _ | Stmt.Abort) :: _ -> false
  | _ :: rest -> dse_killable x rest
  (* Fence / atomic load / atomic store / CAS / FADD fall through: BUG *)

let rec dse_block = function
  | [] -> []
  | Stmt.Store (Mode.Wna, x, _) :: rest when dse_killable x rest ->
    dse_block rest
  | Stmt.If (e, a, b) :: rest ->
    Stmt.If (e, dse_stmt a, dse_stmt b) :: dse_block rest
  | Stmt.While (e, a) :: rest -> Stmt.While (e, dse_stmt a) :: dse_block rest
  | s :: rest -> s :: dse_block rest

and dse_stmt s = Stmt.seq_list (dse_block (spine s))

(* ------------------------------------------------------------------ *)
(* Buggy LLF: forward a non-atomic load's value to a later load of the
   same location, scanning through acquire reads and fences (the planted
   bug; the real pass clears its forwarding facts at every acquire). *)

let defined_reg = function
  | Stmt.Assign (r, _) | Stmt.Load (r, _, _) | Stmt.Cas (r, _, _, _)
  | Stmt.Fadd (r, _, _) | Stmt.Choose r | Stmt.Freeze (r, _) -> Some r
  | _ -> None

let rec llf_forward r x stmts =
  match stmts with
  | [] -> []
  | Stmt.Load (r', Mode.Rna, y) :: rest when Loc.equal x y ->
    Stmt.Assign (r', Expr.reg r)
    :: (if Reg.equal r' r then rest else llf_forward r x rest)
  | (Stmt.Store (_, y, _) :: _) when Loc.equal x y -> stmts
  | (Stmt.If _ | Stmt.While _ | Stmt.Return _ | Stmt.Abort) :: _ -> stmts
  | s :: rest ->
    (match defined_reg s with
     | Some r0 when Reg.equal r0 r -> stmts
     | _ -> s :: llf_forward r x rest)
  (* acquire loads and fences fall through the last case: BUG *)

let rec llf_block = function
  | [] -> []
  | (Stmt.Load (r, Mode.Rna, x) as ld) :: rest ->
    ld :: llf_block (llf_forward r x rest)
  | Stmt.If (e, a, b) :: rest ->
    Stmt.If (e, llf_stmt a, llf_stmt b) :: llf_block rest
  | Stmt.While (e, a) :: rest -> Stmt.While (e, llf_stmt a) :: llf_block rest
  | s :: rest -> s :: llf_block rest

and llf_stmt s = Stmt.seq_list (llf_block (spine s))

(* ------------------------------------------------------------------ *)
(* Buggy LICM: hoist the first loop-invariant non-atomic load out of the
   first eligible loop — without checking whether the body performs an
   acquire (the planted bug; the real pass refuses loops with acquires).
   One hoist per program keeps the fresh-register plumbing trivial. *)

let licm_apply (p : Stmt.t) : Stmt.t =
  let t = Stmt.fresh_reg p "t" in
  let hoisted = ref false in
  let may_store_x x = function
    | Stmt.Store (_, y, _) -> Loc.equal x y
    | Stmt.Cas (_, y, _, _) | Stmt.Fadd (_, y, _) -> Loc.equal x y
    | Stmt.If _ | Stmt.While _ -> true (* conservatively: may store *)
    | _ -> false
  in
  let rec go_block stmts = List.concat_map go_stmt stmts
  and go_stmt st =
    if !hoisted then [ st ]
    else
      match st with
      | Stmt.If (e, a, b) -> [ Stmt.If (e, wrap a, wrap b) ]
      | Stmt.While (e, body) ->
        let sp = spine body in
        let invariant x = not (List.exists (may_store_x x) sp) in
        let rec find pre = function
          | [] -> None
          | Stmt.Load (r, Mode.Rna, x) :: rest when invariant x ->
            Some (List.rev pre, r, x, rest)
          | s :: rest -> find (s :: pre) rest
        in
        (match find [] sp with
         | Some (pre, r, x, rest) ->
           hoisted := true;
           [ Stmt.Load (t, Mode.Rna, x);
             Stmt.While
               (e, Stmt.seq_list (pre @ (Stmt.Assign (r, Expr.reg t) :: rest)));
           ]
         | None -> [ Stmt.While (e, wrap body) ])
      | st -> [ st ]
  and wrap s = Stmt.seq_list (go_block (spine s))
  in
  wrap p

let apply (v : variant) (p : Stmt.t) : Stmt.t =
  let out =
    match v with
    | Dse_rel -> dse_stmt p
    | Llf_acq -> llf_stmt p
    | Licm_acq -> licm_apply p
  in
  Stmt.normalize out
