(** Semantics-aware AST mutation operators over {!Lang.Stmt.t}.

    Mutants serve as {e inputs} to the differential oracles — they need
    not preserve their parent's semantics, only {!Lang.Gen}'s
    well-formedness invariant: no operator changes a location's
    atomic/non-atomic class or introduces locations outside the config's
    pools, so the na/atomic pools stay disjoint. *)

open Lang

type op =
  | Swap  (** swap two adjacent statements of a block *)
  | Mode  (** strengthen/weaken an atomic access (rlx ↔ acq/rel) *)
  | Dup_access  (** duplicate a load or store in place *)
  | Drop_store  (** delete a store *)
  | Const  (** replace a constant with another domain value *)
  | Hoist  (** move the first statement of a loop body before the loop *)
  | Insert  (** insert a fresh instruction before a random statement *)

val all_ops : op list
val op_name : op -> string

(** Generic preorder site machinery, shared with {!Shrink}: [site]
    proposes a replacement for a node; [count_sites] counts proposals and
    [rewrite_nth] applies the k-th (in preorder), leaving every other
    node untouched. *)
val count_sites : site:(Stmt.t -> Stmt.t option) -> Stmt.t -> int

val rewrite_nth :
  site:(Stmt.t -> Stmt.t option) -> int -> Stmt.t -> Stmt.t option

(** Apply one operator at a random eligible site; [None] if the operator
    has no eligible site in the program. *)
val apply : Gen.config -> Random.State.t -> op -> Stmt.t -> Stmt.t option

(** Apply one random applicable operator (every program admits one: if no
    operator applies, a fresh instruction is prepended).  The result is
    normalized ({!Stmt.normalize}). *)
val mutate : Gen.config -> Random.State.t -> Stmt.t -> Stmt.t
