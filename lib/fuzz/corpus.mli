(** A minimized, deduplicated pool of coverage-novel programs.

    Admission is by coverage novelty: a program joins the pool only if
    it exhibits at least one {!Coverage} signal no member has shown.
    Novel candidates are shrunk on admission — {!Shrink.shrink} against
    the cheap AST subset of their novel signals — so the pool stays a
    pool of {e small} witnesses, which keeps mutation energy well spent.
    Everything is deterministic: admission order is the only state, and
    equal admission sequences build equal pools. *)

open Lang

type entry = {
  program : Stmt.t;  (** normalized, possibly shrunk *)
  fingerprint : string;  (** {!Lang.Fingerprint.stmt} of [program] *)
  signals : Coverage.signal list;  (** full signal set of [program] *)
  new_points : int;  (** signals novel at admission time *)
  added_at : int;  (** admission index, 0-based *)
}

type verdict =
  | Admitted of entry
  | Known  (** fingerprint already processed (member or not) *)
  | Subsumed  (** no novel signal: every point already covered *)

type t

val create : unit -> t

(** The underlying monotone signal set (shared with the campaign's
    novelty counters). *)
val coverage : t -> Coverage.t

(** Members in admission order. *)
val entries : t -> entry list

val size : t -> int

(** Admit a candidate if it covers novel signals.  [shrink_admit]
    (default true) shrinks the candidate first, preserving its novel AST
    signals; the admitted entry's signals are those of the shrunk
    program. *)
val add : ?shrink_admit:bool -> t -> Stmt.t -> verdict

(** Rebuild the pool by re-admitting members in order without shrinking,
    dropping the ones whose signals are covered by earlier members —
    used after loading a persisted pool, whose members may have become
    mutually redundant across runs. *)
val minimize : t -> t
