(** Deterministic coverage signals for guided fuzzing.

    A {e signal} is a short string naming one structural feature a
    program exercises — an instruction-class n-gram of its canonical
    AST, a permission/written-mask profile of its packed sequential
    state space, or a behavior-set digest under a hardware backend.
    Signals are pure functions of the program (no wall clock, no RNG,
    no [--jobs]): the guided campaign's determinism contract rests on
    that, and the determinism qcheck in test/test_fuzz.ml locks it.

    Every extractor is capped by construction — a bounded id-graph walk,
    a bounded backend exploration behind a size gate — so signal
    extraction stays a small constant cost per unique program even on
    unlimited-budget campaigns. *)

open Lang

(** ["class:detail"], e.g. ["ast1:st.rel"], ["core:pw:3/1"],
    ["hw:tso:set:<md5>"]. *)
type signal = string

(** Instruction-class unigrams and program-order bigrams of the
    canonical AST ([ast1:]/[ast2:] classes).  Cheap — used as the
    shrink-on-admit preservation check. *)
val ast_signals : Stmt.t -> signal list

(** Permission/written-mask profiles ([core:pw:]) and a log₂ size bucket
    ([core:size:]) of the packed {!Seq_model.Core} id-graph reachable
    from the program's initial configuration, walked breadth-first up to
    a fixed configuration cap; [core:unpackable] when the footprint
    exceeds the packed representation. *)
val state_signals : Stmt.t -> signal list

(** Behavior-set digests, size buckets, and race/truncation markers
    ([hw:<machine>:]) under the SC and x86-TSO backends, plus
    [hw:diverge] when the two sets differ.  Empty above the size gate —
    the backends are the most expensive extractor. *)
val behavior_signals : Stmt.t -> signal list

(** All of the above, sorted and deduplicated. *)
val signals : Stmt.t -> signal list

(** Does the signal belong to the cheap AST class? *)
val is_ast : signal -> bool

(** A monotone set of signals seen so far. *)
type t

val create : unit -> t

(** Distinct signals seen. *)
val points : t -> int

val mem : t -> signal -> bool

(** The subset of [sigs] not yet seen (without recording them). *)
val novel : t -> signal list -> signal list

(** Record [sigs]; returns how many were new. *)
val admit : t -> signal list -> int
