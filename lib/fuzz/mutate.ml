(** Semantics-aware AST mutation operators.

    Each operator rewrites one randomly chosen eligible site.  All
    operators preserve {!Gen}'s well-formedness invariant: a location's
    access-mode class (non-atomic vs atomic) is never changed and no
    location outside the config's pools is introduced, so the na/atomic
    pools stay disjoint (qcheck-tested).  Mutants are {e inputs} for the
    differential oracles, not transformation targets — they need not be
    semantically equivalent to their parent, only well-formed. *)

open Lang

type op =
  | Swap  (** swap two adjacent statements of a block *)
  | Mode  (** strengthen/weaken an atomic access (rlx ↔ acq/rel) *)
  | Dup_access  (** duplicate a load or store in place *)
  | Drop_store  (** delete a store *)
  | Const  (** replace a constant with another domain value *)
  | Hoist  (** move the first statement of a loop body before the loop *)
  | Insert  (** insert a fresh instruction before a random statement *)

let all_ops = [ Swap; Mode; Dup_access; Drop_store; Const; Hoist; Insert ]

let op_name = function
  | Swap -> "swap"
  | Mode -> "mode"
  | Dup_access -> "dup-access"
  | Drop_store -> "drop-store"
  | Const -> "const"
  | Hoist -> "hoist"
  | Insert -> "insert"

(* ------------------------------------------------------------------ *)
(* Generic preorder site machinery: [site] proposes a replacement for a
   node; [count_sites] counts proposals, [rewrite_nth] applies the k-th
   (preorder) and leaves everything else untouched. *)

let count_sites ~(site : Stmt.t -> Stmt.t option) (s : Stmt.t) : int =
  let n = ref 0 in
  let rec go s =
    if Option.is_some (site s) then incr n;
    match s with
    | Stmt.Seq (a, b) | Stmt.If (_, a, b) -> go a; go b
    | Stmt.While (_, a) -> go a
    | _ -> ()
  in
  go s;
  !n

let rewrite_nth ~(site : Stmt.t -> Stmt.t option) (k : int) (s : Stmt.t) :
    Stmt.t option =
  let n = ref 0 in
  let hit = ref false in
  let rec go s =
    if !hit then s
    else
      match site s with
      | Some repl ->
        let i = !n in
        incr n;
        if i = k then (hit := true; repl) else descend s
      | None -> descend s
  and descend s =
    match s with
    | Stmt.Seq (a, b) -> Stmt.Seq (go a, go b)
    | Stmt.If (e, a, b) -> Stmt.If (e, go a, go b)
    | Stmt.While (e, a) -> Stmt.While (e, go a)
    | s -> s
  in
  let r = go s in
  if !hit then Some r else None

let apply_site_random st ~site s =
  match count_sites ~site s with
  | 0 -> None
  | n -> rewrite_nth ~site (Random.State.int st n) s

(* ------------------------------------------------------------------ *)
(* The operators' site functions. *)

let swap_site = function
  | Stmt.Seq (a, Stmt.Seq (b, rest)) -> Some (Stmt.Seq (b, Stmt.Seq (a, rest)))
  | Stmt.Seq (a, b) -> Some (Stmt.Seq (b, a))
  | _ -> None

let mode_site = function
  | Stmt.Load (r, Mode.Rrlx, x) -> Some (Stmt.Load (r, Mode.Racq, x))
  | Stmt.Load (r, Mode.Racq, x) -> Some (Stmt.Load (r, Mode.Rrlx, x))
  | Stmt.Store (Mode.Wrlx, x, e) -> Some (Stmt.Store (Mode.Wrel, x, e))
  | Stmt.Store (Mode.Wrel, x, e) -> Some (Stmt.Store (Mode.Wrlx, x, e))
  | _ -> None

let dup_site = function
  | (Stmt.Store _ | Stmt.Load _) as st -> Some (Stmt.Seq (st, st))
  | _ -> None

let drop_site = function
  | Stmt.Store _ -> Some Stmt.Skip
  | _ -> None

let hoist_site = function
  | Stmt.While (e, Stmt.Seq (h, rest)) -> Some (Stmt.Seq (h, Stmt.While (e, rest)))
  | Stmt.While (_, (Stmt.Skip | Stmt.While _ | Stmt.If _)) -> None
  | Stmt.While (e, h) -> Some (Stmt.Seq (h, Stmt.While (e, Stmt.Skip)))
  | _ -> None

(* Constants live in expressions, so they need their own traversal. *)

let count_consts (s : Stmt.t) : int =
  let n = ref 0 in
  let rec ex = function
    | Expr.Const (Value.Int _) -> incr n
    | Expr.Const Value.Undef | Expr.Reg _ -> ()
    | Expr.Binop (_, a, b) -> ex a; ex b
    | Expr.Unop (_, a) -> ex a
  in
  let rec go = function
    | Stmt.Skip | Stmt.Abort | Stmt.Fence _ | Stmt.Choose _ | Stmt.Load _ -> ()
    | Stmt.Assign (_, e) | Stmt.Store (_, _, e) | Stmt.Freeze (_, e)
    | Stmt.Print e | Stmt.Return e -> ex e
    | Stmt.Cas (_, _, e1, e2) -> ex e1; ex e2
    | Stmt.Fadd (_, _, e) -> ex e
    | Stmt.Seq (a, b) -> go a; go b
    | Stmt.If (e, a, b) -> ex e; go a; go b
    | Stmt.While (e, a) -> ex e; go a
  in
  go s;
  !n

let rewrite_nth_const (k : int) ~(value : int -> int) (s : Stmt.t) :
    Stmt.t option =
  let n = ref 0 in
  let hit = ref false in
  let rec ex e =
    match e with
    | Expr.Const (Value.Int v) ->
      let i = !n in
      incr n;
      if i = k && not !hit then (hit := true; Expr.Const (Value.Int (value v)))
      else e
    | Expr.Const Value.Undef | Expr.Reg _ -> e
    | Expr.Binop (o, a, b) ->
      let a' = ex a in
      Expr.Binop (o, a', ex b)
    | Expr.Unop (o, a) -> Expr.Unop (o, ex a)
  in
  let rec go s =
    match s with
    | Stmt.Skip | Stmt.Abort | Stmt.Fence _ | Stmt.Choose _ | Stmt.Load _ -> s
    | Stmt.Assign (r, e) -> Stmt.Assign (r, ex e)
    | Stmt.Store (m, x, e) -> Stmt.Store (m, x, ex e)
    | Stmt.Freeze (r, e) -> Stmt.Freeze (r, ex e)
    | Stmt.Print e -> Stmt.Print (ex e)
    | Stmt.Return e -> Stmt.Return (ex e)
    | Stmt.Cas (r, x, e1, e2) ->
      let e1' = ex e1 in
      Stmt.Cas (r, x, e1', ex e2)
    | Stmt.Fadd (r, x, e) -> Stmt.Fadd (r, x, ex e)
    | Stmt.Seq (a, b) ->
      let a' = go a in
      Stmt.Seq (a', go b)
    | Stmt.If (e, a, b) ->
      let e' = ex e in
      let a' = go a in
      Stmt.If (e', a', go b)
    | Stmt.While (e, a) ->
      let e' = ex e in
      Stmt.While (e', go a)
  in
  let r = go s in
  if !hit then Some r else None

(* ------------------------------------------------------------------ *)

let apply (cfg : Gen.config) (st : Random.State.t) (op : op) (s : Stmt.t) :
    Stmt.t option =
  match op with
  | Swap -> apply_site_random st ~site:swap_site s
  | Mode -> apply_site_random st ~site:mode_site s
  | Dup_access -> apply_site_random st ~site:dup_site s
  | Drop_store -> apply_site_random st ~site:drop_site s
  | Hoist -> apply_site_random st ~site:hoist_site s
  | Insert ->
    (* Inserting before a random (preorder, non-[Skip]) statement reaches
       every block, including loop bodies — the mutation that lands
       acquire reads between existing accesses. *)
    let instr = Gen.gen_instr cfg st in
    let site s0 =
      match s0 with Stmt.Skip -> None | s0 -> Some (Stmt.Seq (instr, s0))
    in
    apply_site_random st ~site s
  | Const ->
    (match count_consts s with
     | 0 -> None
     | n ->
       let k = Random.State.int st n in
       let vs = if cfg.Gen.values = [] then [ 0; 1 ] else cfg.Gen.values in
       let pick = List.nth vs (Random.State.int st (List.length vs)) in
       let value old =
         if pick <> old then pick
         else List.nth vs ((Random.State.int st (List.length vs) + 1)
                           mod List.length vs)
       in
       rewrite_nth_const k ~value s)

(** Apply one random applicable operator (rotating from a random start, so
    every program admits a mutation); if none applies, prepend a fresh
    instruction from the config.  The result is normalized. *)
let mutate (cfg : Gen.config) (st : Random.State.t) (s : Stmt.t) : Stmt.t =
  let nops = List.length all_ops in
  let start = Random.State.int st nops in
  let rec try_ k =
    if k = nops then Stmt.seq (Gen.gen_instr cfg st) s
    else
      match apply cfg st (List.nth all_ops ((start + k) mod nops)) s with
      | Some s' -> s'
      | None -> try_ (k + 1)
  in
  Stmt.normalize (try_ 0)
