(** Novelty/recency energy scheduling (see .mli). *)

type energy = int

let recency_window = 8

let weight ~now (e : Corpus.entry) =
  let age = now - 1 - e.Corpus.added_at in
  e.Corpus.new_points * (1 + max 0 (recency_window - age))

let weights c =
  let now = Corpus.size c in
  List.map (fun e -> (e, weight ~now e)) (Corpus.entries c)

let pick c st =
  let ws = weights c in
  let total = List.fold_left (fun acc (_, w) -> acc + w) 0 ws in
  if total <= 0 then None
  else begin
    let r = Random.State.int st total in
    let rec go r = function
      | [] -> None
      | (e, w) :: rest -> if r < w then Some e else go (r - w) rest
    in
    go r ws
  end
