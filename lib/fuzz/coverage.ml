(** Deterministic coverage signals (see .mli). *)

open Lang

type signal = string

(* Fixed caps: signal extraction must stay a small constant cost per
   unique program, independent of the campaign budget. *)
let core_cfg_cap = 1_000
let hw_state_cap = 1_000
let hw_size_gate = 10
let hw_machines = [ "sc"; "tso" ]

(* ------------------------------------------------------------------ *)
(* AST instruction-class n-grams                                       *)
(* ------------------------------------------------------------------ *)

let read_tok = function
  | Mode.Rna -> "ld.na"
  | Mode.Rrlx -> "ld.rlx"
  | Mode.Racq -> "ld.acq"

let write_tok = function
  | Mode.Wna -> "st.na"
  | Mode.Wrlx -> "st.rlx"
  | Mode.Wrel -> "st.rel"

let fence_tok = function
  | Mode.Facq -> "f.acq"
  | Mode.Frel -> "f.rel"
  | Mode.Facqrel -> "f.ar"
  | Mode.Fsc -> "f.sc"

(* Program-order token spine; structure contributes bracket tokens so a
   load inside a loop covers differently from the same load outside. *)
let rec tokens s k =
  match s with
  | Stmt.Skip -> k
  | Stmt.Assign _ -> "asn" :: k
  | Stmt.Load (_, m, _) -> read_tok m :: k
  | Stmt.Store (m, _, _) -> write_tok m :: k
  | Stmt.Cas _ -> "cas" :: k
  | Stmt.Fadd _ -> "fadd" :: k
  | Stmt.Fence m -> fence_tok m :: k
  | Stmt.Seq (a, b) -> tokens a (tokens b k)
  | Stmt.If (_, a, b) -> "if" :: tokens a ("else" :: tokens b ("fi" :: k))
  | Stmt.While (_, a) -> "do" :: tokens a ("od" :: k)
  | Stmt.Choose _ -> "choose" :: k
  | Stmt.Freeze _ -> "freeze" :: k
  | Stmt.Print _ -> "print" :: k
  | Stmt.Abort -> "abort" :: k
  | Stmt.Return _ -> "ret" :: k

let ast_signals p =
  let toks = tokens (Stmt.normalize p) [] in
  let uni = List.map (fun t -> "ast1:" ^ t) toks in
  let rec bi acc = function
    | a :: (b :: _ as rest) -> bi (("ast2:" ^ a ^ ">" ^ b) :: acc) rest
    | _ -> acc
  in
  List.sort_uniq String.compare (bi uni toks)

let is_ast s =
  String.length s >= 5
  &&
  let p = String.sub s 0 5 in
  p = "ast1:" || p = "ast2:"

(* ------------------------------------------------------------------ *)
(* packed state-space profiles                                         *)
(* ------------------------------------------------------------------ *)

let log2_bucket n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 (max 1 n)

let state_signals p =
  let p = Stmt.normalize p in
  let d = Domain.of_stmts [ p ] in
  match Seq_model.Core.create d with
  | None -> [ "core:unpackable" ]
  | Some core ->
    let root =
      Seq_model.Config.make ~perm:(Domain.na_set d) (Prog.init p)
    in
    let seen = Hashtbl.create 256 in
    let queue = Queue.create () in
    let acc = ref [] in
    let truncated = ref false in
    let root_id = Seq_model.Core.intern core root in
    Hashtbl.add seen root_id ();
    Queue.push root_id queue;
    while not (Queue.is_empty queue) do
      let id = Queue.pop queue in
      acc :=
        Printf.sprintf "core:pw:%x/%x"
          (Seq_model.Core.perm_mask core id)
          (Seq_model.Core.written_mask core id)
        :: !acc;
      Array.iter
        (fun j ->
          if j >= 0 && not (Hashtbl.mem seen j) then
            if Hashtbl.length seen >= core_cfg_cap then truncated := true
            else begin
              Hashtbl.add seen j ();
              Queue.push j queue
            end)
        (Seq_model.Core.moves_next core id)
    done;
    let sigs =
      Printf.sprintf "core:size:%d" (log2_bucket (Hashtbl.length seen))
      :: !acc
    in
    List.sort_uniq String.compare
      (if !truncated then "core:trunc" :: sigs else sigs)

(* ------------------------------------------------------------------ *)
(* backend behavior digests                                            *)
(* ------------------------------------------------------------------ *)

let render_result (r : Backends.Backend.result) =
  let b = Buffer.create 128 in
  Backends.Backend.Behavior_set.iter
    (fun beh -> Buffer.add_string b (Fmt.str "%a;" Promising.Machine.pp_behavior beh))
    r.behaviors;
  Buffer.contents b

let behavior_signals p =
  let p = Stmt.normalize p in
  if Stmt.size p > hw_size_gate then []
  else begin
    let per_machine =
      List.filter_map
        (fun name ->
          match Backends.Registry.find name with
          | None -> None
          | Some (module M : Backends.Backend.MACHINE) ->
            let r = M.explore ~max_states:hw_state_cap [ p ] in
            let tag s = "hw:" ^ name ^ ":" ^ s in
            let sigs =
              (if r.truncated then [ tag "trunc" ]
               else
                 [ tag ("set:" ^ Fingerprint.digest_hex (render_result r)) ])
              @ (if r.races then [ tag "races" ] else [])
              @ [
                  tag
                    (Printf.sprintf "n:%d"
                       (log2_bucket
                          (Backends.Backend.Behavior_set.cardinal r.behaviors)));
                ]
            in
            Some (r, sigs))
        hw_machines
    in
    let diverge =
      match per_machine with
      | [ (a, _); (b, _) ]
        when (not a.truncated) && not b.truncated
             && not (Backends.Backend.Behavior_set.equal a.behaviors b.behaviors)
        -> [ "hw:diverge" ]
      | _ -> []
    in
    List.sort_uniq String.compare
      (diverge @ List.concat_map snd per_machine)
  end

let signals p =
  List.sort_uniq String.compare
    (ast_signals p @ state_signals p @ behavior_signals p)

(* ------------------------------------------------------------------ *)
(* the monotone seen-set                                               *)
(* ------------------------------------------------------------------ *)

type t = { seen : (signal, unit) Hashtbl.t }

let create () = { seen = Hashtbl.create 1024 }
let points t = Hashtbl.length t.seen
let mem t s = Hashtbl.mem t.seen s
let novel t sigs = List.filter (fun s -> not (Hashtbl.mem t.seen s)) sigs

let admit t sigs =
  List.fold_left
    (fun n s ->
      if Hashtbl.mem t.seen s then n
      else begin
        Hashtbl.add t.seen s ();
        n + 1
      end)
    0 sigs
