(** Warm-resume corpus store (see .mli). *)

open Lang

type store = {
  corpus : Stmt.t list;
  findings : Stmt.t list;
  seen : string list;
  skipped : int;
}

let empty = { corpus = []; findings = []; seen = []; skipped = 0 }

let kind_corpus = "corpus"
let kind_finding = "finding"
let kind_seen = "seen"

let key_of ~kind body = Fingerprint.key [ "fuzz"; kind; body ]

let save ~dir ~corpus ~findings ~seen =
  (* Opening a throwaway cache on the directory gives the store the
     exact create-time semantics of the daemon cache: mkdir, VERSION
     stamp, clear-and-restamp on a foreign format. *)
  ignore (Service.Cache.create ~dir ~mem_capacity:1 ());
  let n = ref 0 in
  let put kind body =
    let key = key_of ~kind body in
    let sdir, path = Service.Cache.entry_path dir key in
    Service.Cache.write_atomic ~dir:sdir ~path
      (Service.Cache.entry_of_payload (kind ^ "\n" ^ body));
    incr n
  in
  List.iter (fun p -> put kind_corpus (Stmt.to_string (Stmt.normalize p))) corpus;
  List.iter
    (fun p -> put kind_finding (Stmt.to_string (Stmt.normalize p)))
    findings;
  List.iter (fun fp -> put kind_seen fp) seen;
  !n

let version_ok dir =
  match
    In_channel.with_open_text (Filename.concat dir "VERSION")
      In_channel.input_line
  with
  | Some line ->
    int_of_string_opt (String.trim line) = Some Service.Cache.format_version
  | None -> false
  | exception Sys_error _ -> false

let load ~dir =
  if (not (Sys.file_exists dir)) || not (Sys.is_directory dir) then empty
  else if not (version_ok dir) then empty
  else begin
    let shards =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun name ->
             name <> "VERSION" && Sys.is_directory (Filename.concat dir name))
      |> List.sort String.compare
    in
    let files =
      List.concat_map
        (fun shard ->
          let sdir = Filename.concat dir shard in
          Sys.readdir sdir |> Array.to_list
          |> List.filter (fun f -> Filename.extension f <> ".tmp")
          |> List.sort String.compare
          |> List.map (fun f -> Filename.concat sdir f))
        shards
    in
    let st = ref empty in
    List.iter
      (fun path ->
        let skip () = st := { !st with skipped = !st.skipped + 1 } in
        match In_channel.with_open_bin path In_channel.input_all with
        | exception Sys_error _ -> skip ()
        | raw -> (
          match Service.Cache.payload_of_entry raw with
          | None -> skip ()
          | Some payload -> (
            match String.index_opt payload '\n' with
            | None -> skip ()
            | Some i ->
              let kind = String.sub payload 0 i in
              let body =
                String.sub payload (i + 1) (String.length payload - i - 1)
              in
              if kind = kind_seen then
                st := { !st with seen = body :: !st.seen }
              else if kind = kind_corpus || kind = kind_finding then begin
                match Parser.stmt_of_string body with
                | exception _ -> skip ()
                | p ->
                  let p = Stmt.normalize p in
                  if kind = kind_corpus then
                    st := { !st with corpus = p :: !st.corpus }
                  else st := { !st with findings = p :: !st.findings }
              end
              else skip ())))
      files;
    (* The per-kind lists were built by consing over key-sorted files:
       reverse back into key order. *)
    {
      corpus = List.rev !st.corpus;
      findings = List.rev !st.findings;
      seen = List.rev !st.seen;
      skipped = !st.skipped;
    }
  end
