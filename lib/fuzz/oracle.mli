(** Pluggable differential oracles over a single generated program.

    A [Some detail] result is a {e finding}: two layers of the system
    disagree on the program.  Oracles are deterministic given the
    program; exploration cost is charged to [budget]
    ({!Engine.Budget.Exhausted} escapes, to be trapped at the campaign's
    verdict boundary). *)

open Lang

type kind =
  | Pass_correct
      (** each optimizer pass's output refines its input (advanced
          refinement, static certificate or Fig 6 enumeration) *)
  | Analysis_sound
      (** {!Analysis.Perm}'s static racy-access set covers the racy
          accesses SEQ can dynamically perform (exhaustive exploration
          over all initial permissions/memories) *)
  | Lint_agree
      (** a program {!Optimizer.Lint} raises no race/mixing diagnostic
          for has no dynamic racy access *)
  | Baseline_env
      (** single-thread SC behaviors are included in SEQ's enumerated
          behaviors; on race-free programs catch-fire agrees with SC *)
  | Baseline_hw of string
      (** SC behaviors are included in the named hardware backend's
          ({!Backends.Registry} name; relaxation only ever adds
          behaviors) — size-gated like [Baseline_env] *)

(** The machine [all]'s hardware-envelope oracle checks against
    (["tso"]). *)
val default_hw : string

val all : kind list

(** Stable names: ["pass-correct"], ["analysis-sound"], ["lint-agree"],
    ["baseline-env"], ["baseline-hw"] (a non-default machine renders as
    ["baseline-hw:<machine>"]). *)
val name : kind -> string

val of_string : string -> kind option

(** Advanced-only refinement check (static certificate fast path, then
    Fig 6 enumeration) — also used to refute {!Planted} variants. *)
val refines : budget:Engine.Budget.t -> src:Stmt.t -> tgt:Stmt.t -> bool

(** Run one oracle.  [Some detail] is a finding; the detail string is
    deterministic. *)
val check : kind -> budget:Engine.Budget.t -> Stmt.t -> string option
