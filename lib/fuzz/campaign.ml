(** The fuzzing campaign: deterministically seeded generate/mutate corpus,
    fingerprint dedup, budgeted parallel oracle sweep, planted-variant
    refutation, and sequential shrinking.

    Determinism contract (tested): every field of the report except
    [wall_ms]/[execs_per_s] is a pure function of (seed, max_execs,
    phases, oracles, planted, shrink, budget spec, coverage flags,
    store contents) — never of [jobs] or scheduling.  Program [i] of
    the corpus is derived from its own RNG stream
    [Random.State.make [| seed; i |]]; the corpus, dedup, coverage and
    shrink phases are sequential; the oracle sweep runs under
    {!Engine.Sweep.run_verdict}'s parallel=sequential contract.  (A
    wall-clock budget — [timeout_ms] — makes individual outcomes
    machine-dependent; jobs-independence is only claimed for state/fuel
    budgets, which is what the CLI smoke tests use.)

    Coverage-guided mode ([guided], implying [coverage]) keeps the same
    generation skeleton — same per-index streams, same phase rotation,
    same fresh/mutant parity — and changes exactly one decision: the
    mutation parent at odd indices comes from an energy-weighted
    {!Schedule.pick} over the {!Corpus} pool instead of position
    [i / 2].  [coverage] alone only accounts (signals, pool admission,
    novelty counters) without steering, so its corpus is the blind one —
    the comparable baseline the E16 bench rows use.

    With a [corpus_dir], the pool, the counterexample reproducers, and
    every swept fingerprint are persisted through {!Persist} at the end
    of the run; [resume] loads them back first.  Resumed pool members
    and reproducers are re-swept (they are the regression corpus —
    indices [0..resumed-1]); any regenerated program whose fingerprint
    the store has already swept is skipped without running an oracle,
    which is what makes the second campaign warm. *)

open Lang

type phase = { phase_name : string; cfg : Gen.config; size : int }

(* The rotation of generator configs, each aimed at one family of
   barrier-sensitive shapes: "store-heavy" concentrates non-atomic
   stores on a single location with acquire/release traffic between
   them, plus enough non-atomic loads to read a published value back
   behind the matching acquire (the planted-DSE and planted-RLE
   needles, store–release–acquire–store and store–release–acquire–load);
   "load-heavy" does the same for repeated loads (the planted-LLF and
   planted-CSE needles, load–acquire–load and acquire–acquire); "loops" drops non-atomic stores
   entirely so loop bodies keep an invariant load next to an acquire
   (the planted-LICM needle). *)
let default_phases =
  let z = Loc.make "Z" in
  let x = Loc.make "X" in
  [
    { phase_name = "default"; cfg = Gen.default_config; size = 7 };
    {
      phase_name = "store-heavy";
      cfg =
        {
          Gen.default_config with
          Gen.na_locs = [ x ];
          at_locs = Gen.default_config.Gen.at_locs @ [ z ];
          w_na_store = 2;
          w_na_load = 3;
          w_mode_strong = 4;
          size_jitter = 2;
        };
      size = 11;
    };
    {
      phase_name = "load-heavy";
      cfg =
        {
          Gen.default_config with
          Gen.na_locs = [ x ];
          at_locs = Gen.default_config.Gen.at_locs @ [ z ];
          w_na_load = 4;
          w_mode_strong = 3;
        };
      size = 8;
    };
    {
      phase_name = "loops";
      cfg =
        {
          Gen.default_config with
          Gen.allow_loops = true;
          at_locs = Gen.default_config.Gen.at_locs @ [ z ];
          w_na_load = 3;
          w_na_store = 0;
          w_mode_strong = 3;
        };
      size = 9;
    };
  ]

type finding = {
  index : int;  (** corpus index of the failing program *)
  oracle : string;  (** oracle name, or ["planted:<variant>"] *)
  fingerprint : string;  (** of the original failing program *)
  detail : string;
  program : Stmt.t;  (** the original failing program (normalized) *)
  shrunk : Stmt.t option;  (** minimized reproducer, when shrinking ran *)
  shrink_steps : int;
}

type coverage_stats = {
  cov_points : int;  (** distinct coverage signals after the run *)
  cov_admitted : int;  (** generated programs admitted to the pool *)
  corpus_size : int;  (** pool size after the run (incl. resumed) *)
  resumed : int;  (** programs replayed from the store *)
  fresh_execs : int;  (** swept programs no earlier run had seen *)
  persisted : int;  (** store entries written (0 without a store) *)
}

type report = {
  seed : int;
  requested_execs : int;
  unique_execs : int;  (** after fingerprint dedup *)
  dedup_dropped : int;
  findings : finding list;  (** real-oracle findings, in corpus order *)
  planted : (string * finding option) list;
      (** per planted variant: the first refutation, or [None] if the
          variant survived the campaign (a harness failure) *)
  unknowns : int;  (** individual checks whose budget ran out *)
  quarantined : int;
  shrink_steps_total : int;
  cov : coverage_stats option;  (** [None] on blind campaigns *)
  wall_ms : float;  (** the only timing field; everything else is
                        jobs-independent *)
}

let execs_per_s (r : report) : float =
  if r.wall_ms <= 0. then 0.
  else float_of_int r.unique_execs /. (r.wall_ms /. 1000.)

(* ------------------------------------------------------------------ *)

let build_corpus ~seed ~max_execs ~(phases : phase list) : Stmt.t array =
  let nph = List.length phases in
  let progs = Array.make (max 1 max_execs) Stmt.Skip in
  for i = 0 to max_execs - 1 do
    let st = Random.State.make [| seed; i |] in
    (* [(i / 2) mod nph], not [i mod nph]: the fresh/mutant split below
       is parity-based, so a parity-based rotation would starve every
       odd-positioned phase of fresh programs. *)
    let ph = List.nth phases (i / 2 mod nph) in
    let p =
      (* even indices: fresh programs; odd indices (after the first wave
         of every phase): mutants of an earlier corpus entry *)
      if i < 2 * nph || i mod 2 = 0 then
        Gen.gen_program ph.cfg st ~size:ph.size
      else Mutate.mutate ph.cfg st progs.(i / 2)
    in
    progs.(i) <- Stmt.normalize p
  done;
  progs

type task_result = {
  t_real : (Oracle.kind * string) list;  (** oracle findings *)
  t_planted : Planted.variant list;  (** variants this program refutes *)
  t_unknowns : int;  (** per-program checks whose budget ran out *)
}

let run ?pool ?(jobs = 1) ?(budget = Engine.Budget.spec_unlimited)
    ?(oracles = Oracle.all) ?(planted = Planted.all) ?(shrink = true)
    ?(phases = default_phases) ?(coverage = false) ?(guided = false)
    ?corpus_dir ?(resume = false) ~seed ~max_execs () : report =
  if phases = [] then invalid_arg "Campaign.run: empty phase list";
  let coverage = coverage || guided || corpus_dir <> None in
  let t0 = Unix.gettimeofday () in
  (* the pool and the fingerprint sets driving coverage accounting *)
  let pool_c = if coverage then Some (Corpus.create ()) else None in
  let prior_seen = Hashtbl.create 16 in
  let swept_seen = Hashtbl.create 64 in
  (* warm resume: replay the persisted pool + reproducers as tasks
     [0..resumed-1] and pre-mark every fingerprint the store has swept *)
  let resumed_tasks =
    match (corpus_dir, pool_c) with
    | Some dir, Some c when resume ->
      let store = Persist.load ~dir in
      List.iter
        (fun fp -> Hashtbl.replace prior_seen fp ())
        store.Persist.seen;
      let replay = store.Persist.corpus @ store.Persist.findings in
      List.iter (fun p -> ignore (Corpus.add ~shrink_admit:false c p)) replay;
      let dedup = Hashtbl.create 64 in
      List.filter_map
        (fun p ->
          let fp = Fingerprint.stmt p in
          if Hashtbl.mem dedup fp then None
          else begin
            Hashtbl.add dedup fp ();
            Hashtbl.replace prior_seen fp ();
            Some (fp, p)
          end)
        replay
    | _ -> []
  in
  let n_resumed = List.length resumed_tasks in
  let resumed_tasks = List.mapi (fun i (fp, p) -> (i, fp, p)) resumed_tasks in
  let admitted = ref 0 and fresh = ref 0 in
  let tasks =
    match pool_c with
    | None ->
      let progs = build_corpus ~seed ~max_execs ~phases in
      (* fingerprint dedup, in corpus order *)
      let seen = Hashtbl.create 64 in
      let tasks = ref [] in
      Array.iteri
        (fun i p ->
          if i < max_execs then begin
            let fp = Fingerprint.stmt p in
            if not (Hashtbl.mem seen fp) then begin
              Hashtbl.add seen fp ();
              tasks := (i, fp, p) :: !tasks
            end
          end)
        progs;
      List.rev !tasks
    | Some c ->
      (* Same generation skeleton as [build_corpus], fused with the
         coverage accounting so admission order equals corpus order.
         In guided mode the mutation parent comes from the pool. *)
      let nph = List.length phases in
      let progs = Array.make (max 1 max_execs) Stmt.Skip in
      List.iter
        (fun (_, fp, _) -> Hashtbl.replace swept_seen fp ())
        resumed_tasks;
      let gen = ref [] in
      for i = 0 to max_execs - 1 do
        let st = Random.State.make [| seed; i |] in
        let ph = List.nth phases (i / 2 mod nph) in
        let p =
          if i < 2 * nph || i mod 2 = 0 then
            Gen.gen_program ph.cfg st ~size:ph.size
          else begin
            let parent =
              match if guided then Schedule.pick c st else None with
              | Some e -> e.Corpus.program
              | None -> progs.(i / 2)
            in
            Mutate.mutate ph.cfg st parent
          end
        in
        let p = Stmt.normalize p in
        progs.(i) <- p;
        let fp = Fingerprint.stmt p in
        if not (Hashtbl.mem swept_seen fp) then begin
          Hashtbl.replace swept_seen fp ();
          (match Corpus.add ~shrink_admit:shrink c p with
           | Corpus.Admitted _ -> incr admitted
           | Corpus.Known | Corpus.Subsumed -> ());
          (* a fingerprint an earlier campaign already swept costs no
             oracle run — the store remembers its verdict was clean *)
          if not (Hashtbl.mem prior_seen fp) then begin
            incr fresh;
            gen := (n_resumed + i, fp, p) :: !gen
          end
        end
      done;
      resumed_tasks @ List.rev !gen
  in
  let unique_execs = List.length tasks in
  (* Each oracle and each planted check runs under its OWN budget
     started from the spec, with exhaustion trapped per check: one
     expensive oracle must not starve the planted checks on exactly the
     acquire-rich programs the planted needles live in.  (The sweep-level
     budget passed in by [run_verdict] is deliberately unused.) *)
  let f ~budget:_ (_i, _fp, p) =
    let unk = ref 0 in
    let chk ~none th =
      match Engine.Verdict.capture th with
      | Ok x -> x
      | Error _ -> incr unk; none
    in
    let t_real =
      List.filter_map
        (fun k ->
          chk ~none:None (fun () ->
              Option.map
                (fun d -> (k, d))
                (Oracle.check k ~budget:(Engine.Budget.start budget) p)))
        oracles
    in
    let t_planted =
      List.filter
        (fun v ->
          chk ~none:false (fun () ->
              let tgt = Planted.apply v p in
              tgt <> p
              && not
                   (Oracle.refines ~budget:(Engine.Budget.start budget) ~src:p
                      ~tgt)))
        planted
    in
    { t_real; t_planted; t_unknowns = !unk }
  in
  let outcomes = Engine.Sweep.run_verdict ?pool ~jobs ~budget ~f tasks in
  (* aggregate in corpus order *)
  let unknowns = ref 0 and quarantined = ref 0 in
  let real = ref [] in
  let planted_hits = Hashtbl.create 8 in
  List.iter2
    (fun (i, fp, p) (o : _ Engine.Sweep.outcome) ->
      if o.Engine.Sweep.quarantined then incr quarantined;
      match o.Engine.Sweep.result with
      | Error _ -> incr unknowns
      | Ok tr ->
        unknowns := !unknowns + tr.t_unknowns;
        List.iter
          (fun (k, detail) ->
            real :=
              {
                index = i;
                oracle = Oracle.name k;
                fingerprint = fp;
                detail;
                program = p;
                shrunk = None;
                shrink_steps = 0;
              }
              :: !real)
          tr.t_real;
        List.iter
          (fun v ->
            if not (Hashtbl.mem planted_hits (Planted.name v)) then
              Hashtbl.add planted_hits (Planted.name v) (i, fp, p))
          tr.t_planted)
    tasks outcomes;
  let findings = List.rev !real in
  (* sequential shrinking; each candidate check runs under a fresh
     budget from the same spec, with failures treated as "does not
     reproduce" (conservative: the reproducer stays larger) *)
  let trap_false f =
    match Engine.Verdict.capture f with Ok b -> b | Error _ -> false
  in
  let shrink_real k p0 =
    Shrink.shrink
      ~check:(fun q ->
        trap_false (fun () ->
            Oracle.check k ~budget:(Engine.Budget.start budget) q <> None))
      p0
  in
  let shrink_planted v p0 =
    Shrink.shrink
      ~check:(fun q ->
        trap_false (fun () ->
            let tgt = Planted.apply v q in
            tgt <> q
            && not
                 (Oracle.refines ~budget:(Engine.Budget.start budget) ~src:q
                    ~tgt)))
      p0
  in
  let shrink_steps_total = ref 0 in
  let findings =
    if not shrink then findings
    else
      List.map
        (fun fi ->
          match Oracle.of_string fi.oracle with
          | None -> fi
          | Some k ->
            let s, steps = shrink_real k fi.program in
            shrink_steps_total := !shrink_steps_total + steps;
            { fi with shrunk = Some s; shrink_steps = steps })
        findings
  in
  let planted_report =
    List.map
      (fun v ->
        let nm = Planted.name v in
        match Hashtbl.find_opt planted_hits nm with
        | None -> (nm, None)
        | Some (i, fp, p) ->
          let shrunk, steps =
            if shrink then
              let s, steps = shrink_planted v p in
              (Some s, steps)
            else (None, 0)
          in
          shrink_steps_total := !shrink_steps_total + steps;
          ( nm,
            Some
              {
                index = i;
                oracle = "planted:" ^ nm;
                fingerprint = fp;
                detail = Planted.describe v;
                program = p;
                shrunk;
                shrink_steps = steps;
              } ))
      planted
  in
  (* persistence, then the coverage ledger *)
  let cov =
    match pool_c with
    | None -> None
    | Some c ->
      let persisted =
        match corpus_dir with
        | None -> 0
        | Some dir ->
          let members =
            List.map (fun e -> e.Corpus.program) (Corpus.entries c)
          in
          let repro fi =
            match fi.shrunk with Some s -> s | None -> fi.program
          in
          let reproducers =
            List.map repro findings
            @ List.filter_map (fun (_, h) -> Option.map repro h) planted_report
          in
          let all_seen = Hashtbl.copy swept_seen in
          Hashtbl.iter (fun fp () -> Hashtbl.replace all_seen fp ()) prior_seen;
          let seen_fps =
            List.sort String.compare
              (Hashtbl.fold (fun fp () acc -> fp :: acc) all_seen [])
          in
          Persist.save ~dir ~corpus:members ~findings:reproducers
            ~seen:seen_fps
      in
      Some
        {
          cov_points = Coverage.points (Corpus.coverage c);
          cov_admitted = !admitted;
          corpus_size = Corpus.size c;
          resumed = n_resumed;
          fresh_execs = !fresh;
          persisted;
        }
  in
  {
    seed;
    requested_execs = max_execs;
    unique_execs;
    dedup_dropped =
      (match cov with
       | None -> max_execs - unique_execs
       | Some cs -> max_execs - cs.fresh_execs);
    findings;
    planted = planted_report;
    unknowns = !unknowns;
    quarantined = !quarantined;
    shrink_steps_total = !shrink_steps_total;
    cov;
    wall_ms = (Unix.gettimeofday () -. t0) *. 1000.;
  }

(* ------------------------------------------------------------------ *)
(* Rendering.  [render] is byte-identical across [jobs] settings: it
   includes no timing field. *)

let render_program_indented s =
  String.concat "\n"
    (List.map (fun l -> "    " ^ l) (String.split_on_char '\n' (Stmt.to_string s)))

let render_finding (fi : finding) : string =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "FINDING %s exec=#%d fp=%s\n  %s\n" fi.oracle fi.index
       fi.fingerprint fi.detail);
  (match fi.shrunk with
   | Some s ->
     Buffer.add_string b
       (Printf.sprintf "  shrunk to %d statement(s) in %d step(s):\n%s\n"
          (Stmt.size s) fi.shrink_steps (render_program_indented s))
   | None ->
     Buffer.add_string b
       (Printf.sprintf "  program (%d statement(s)):\n%s\n"
          (Stmt.size fi.program)
          (render_program_indented fi.program)));
  Buffer.contents b

let render (r : report) : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "seqfuzz seed=%d execs=%d unique=%d dedup=%d\n" r.seed
       r.requested_execs r.unique_execs r.dedup_dropped);
  (match r.cov with
   | None -> ()
   | Some c ->
     Buffer.add_string b
       (Printf.sprintf
          "coverage: points=%d admitted=%d corpus=%d resumed=%d fresh=%d\n"
          c.cov_points c.cov_admitted c.corpus_size c.resumed c.fresh_execs));
  List.iter
    (fun (nm, hit) ->
      match hit with
      | Some fi ->
        Buffer.add_string b
          (Printf.sprintf "PLANTED %-20s REFUTED at exec #%d%s\n" nm fi.index
             (match fi.shrunk with
              | Some s ->
                Printf.sprintf " (shrunk to %d statement(s))" (Stmt.size s)
              | None -> ""))
      | None ->
        Buffer.add_string b (Printf.sprintf "PLANTED %-20s SURVIVED\n" nm))
    r.planted;
  List.iter (fun fi -> Buffer.add_string b (render_finding fi)) r.findings;
  List.iter
    (fun (_, hit) ->
      match hit with
      | Some ({ shrunk = Some _; _ } as fi) ->
        Buffer.add_string b (render_finding fi)
      | _ -> ())
    r.planted;
  Buffer.add_string b
    (Printf.sprintf
       "summary: findings=%d planted_refuted=%d/%d unknowns=%d quarantined=%d shrink_steps=%d\n"
       (List.length r.findings)
       (List.length (List.filter (fun (_, h) -> h <> None) r.planted))
       (List.length r.planted) r.unknowns r.quarantined r.shrink_steps_total);
  Buffer.contents b

(* ------------------------------------------------------------------ *)

let json_of_finding (fi : finding) : Service.Json.t =
  Service.Json.Obj
    ([
       ("oracle", Service.Json.String fi.oracle);
       ("exec", Service.Json.Int fi.index);
       ("fingerprint", Service.Json.String fi.fingerprint);
       ("detail", Service.Json.String fi.detail);
       ("program", Service.Json.String (Stmt.to_string fi.program));
     ]
     @ (match fi.shrunk with
        | None -> []
        | Some s ->
          [
            ("shrunk", Service.Json.String (Stmt.to_string s));
            ("shrunk_size", Service.Json.Int (Stmt.size s));
            ("shrink_steps", Service.Json.Int fi.shrink_steps);
          ]))

(** The campaign as a JSON document; the fuzz row of the seq-bench/2
    schema embeds the same fields (docs/ENGINE.md). *)
let json (r : report) : Service.Json.t =
  Service.Json.Obj
    ([
      ("seed", Service.Json.Int r.seed);
      ("execs", Service.Json.Int r.requested_execs);
      ("unique", Service.Json.Int r.unique_execs);
      ("dedup_dropped", Service.Json.Int r.dedup_dropped);
      ( "dedup_rate",
        Service.Json.Float
          (if r.requested_execs = 0 then 0.
           else float_of_int r.dedup_dropped /. float_of_int r.requested_execs)
      );
      ("findings", Service.Json.List (List.map json_of_finding r.findings));
      ( "planted",
        Service.Json.List
          (List.map
             (fun (nm, hit) ->
               Service.Json.Obj
                 ([
                    ("variant", Service.Json.String nm);
                    ("refuted", Service.Json.Bool (hit <> None));
                  ]
                  @
                  match hit with
                  | None -> []
                  | Some fi -> [ ("finding", json_of_finding fi) ]))
             r.planted) );
      ("unknowns", Service.Json.Int r.unknowns);
      ("quarantined", Service.Json.Int r.quarantined);
      ("shrink_steps", Service.Json.Int r.shrink_steps_total);
    ]
     @ (match r.cov with
        | None -> []
        | Some c ->
          [
            ( "coverage",
              Service.Json.Obj
                [
                  ("points", Service.Json.Int c.cov_points);
                  ("admitted", Service.Json.Int c.cov_admitted);
                  ("corpus", Service.Json.Int c.corpus_size);
                  ("resumed", Service.Json.Int c.resumed);
                  ("fresh", Service.Json.Int c.fresh_execs);
                  ("persisted", Service.Json.Int c.persisted);
                ] );
          ])
     @ [
         ("wall_ms", Service.Json.Float r.wall_ms);
         ("execs_per_s", Service.Json.Float (execs_per_s r));
       ])
