(** Coverage-novel program pool (see .mli). *)

open Lang

type entry = {
  program : Stmt.t;
  fingerprint : string;
  signals : Coverage.signal list;
  new_points : int;
  added_at : int;
}

type verdict = Admitted of entry | Known | Subsumed

type t = {
  cov : Coverage.t;
  mutable rev_entries : entry list;
  mutable count : int;
  fps : (string, unit) Hashtbl.t;  (** every fingerprint ever processed *)
}

let create () =
  { cov = Coverage.create (); rev_entries = []; count = 0; fps = Hashtbl.create 256 }

let coverage t = t.cov
let entries t = List.rev t.rev_entries
let size t = t.count

(* Programs smaller than this aren't worth a shrink pass. *)
let shrink_floor = 4

let add ?(shrink_admit = true) t p =
  let p = Stmt.normalize p in
  let fp = Fingerprint.stmt p in
  if Hashtbl.mem t.fps fp then Known
  else begin
    Hashtbl.add t.fps fp ();
    let fresh = Coverage.novel t.cov (Coverage.signals p) in
    if fresh = [] then Subsumed
    else begin
      (* Shrink against the cheap AST subset of the novel signals: the
         shrunk witness keeps exactly the structure that made the
         candidate novel, at a fraction of the candidate's size. *)
      let ast_fresh = List.filter Coverage.is_ast fresh in
      let q =
        if shrink_admit && ast_fresh <> [] && Stmt.size p >= shrink_floor then
          fst
            (Shrink.shrink
               ~check:(fun q ->
                 let qs = Coverage.ast_signals q in
                 List.for_all (fun s -> List.mem s qs) ast_fresh)
               p)
        else p
      in
      let qfp = Fingerprint.stmt q in
      (* The shrunk witness cannot coincide with a member (members'
         signals are all covered and [ast_fresh] is not), but guard the
         invariant anyway: a collision degrades to Subsumed. *)
      if qfp <> fp && Hashtbl.mem t.fps qfp then Subsumed
      else begin
        if qfp <> fp then Hashtbl.add t.fps qfp ();
        let sigs = Coverage.signals q in
        let gained = Coverage.admit t.cov sigs in
        let e =
          {
            program = q;
            fingerprint = qfp;
            signals = sigs;
            new_points = gained;
            added_at = t.count;
          }
        in
        t.rev_entries <- e :: t.rev_entries;
        t.count <- t.count + 1;
        Admitted e
      end
    end
  end

let minimize t =
  let t' = create () in
  List.iter
    (fun e -> ignore (add ~shrink_admit:false t' e.program))
    (entries t);
  t'
