(** Deliberately unsound optimizer-pass variants — the planted bugs the
    fuzzer must refute (ground truth that the harness finds real bugs).

    Each variant is the corresponding certified pass with exactly its
    barrier-sensitivity removed: {!Dse_rel} eliminates dead stores
    through release/acquire events, {!Llf_acq} forwards non-atomic loads
    across acquire reads, {!Licm_acq} hoists a loop-invariant load out of
    a loop whose body acquires, {!Cse_acq} eliminates a repeated acquire
    load as if it were a pure common subexpression, {!Rle_rel} keeps
    store-to-load forwarding facts alive across a release publish (so
    they reach a load behind the matching acquire, Ex 2.12).  On
    programs without the dangerous shape
    they perform ordinary sound rewrites (or nothing), so a refutation
    requires the generator to produce a genuine counterexample and the
    oracle to recognize it. *)

open Lang

type variant = Dse_rel | Llf_acq | Licm_acq | Cse_acq | Rle_rel

val all : variant list

(** Stable machine-readable names: ["dse-across-release"],
    ["llf-across-acquire"], ["licm-past-acquire"],
    ["cse-across-acquire"], ["load-elim-across-release"]. *)
val name : variant -> string

val describe : variant -> string
val of_string : string -> variant option

(** Run the buggy pass.  The output is normalized; it equals the (also
    normalized) input when the variant found nothing to rewrite. *)
val apply : variant -> Stmt.t -> Stmt.t
