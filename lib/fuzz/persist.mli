(** Warm-resume corpus store, in the {!Service.Cache} disk format.

    A campaign store is a SEQC store: a [VERSION] file, two-character
    shard directories, and validated entries (magic, format version,
    length, MD5) written atomically — exactly the daemon cache's layout,
    through the primitives {!Service.Cache} exposes.  [seqd --fsck] (and
    {!Service.Cache.fsck}) repair a corpus store the same way they
    repair a cache.

    Entries are content-addressed: the key is a {!Lang.Fingerprint.key}
    over the entry's kind and body, so saving is idempotent and two
    campaigns can share a store.  The payload is [kind ^ "\n" ^ body]
    with three kinds:

    - [corpus] — a pool member (canonical program text, re-parsed on
      load);
    - [finding] — a counterexample reproducer (same encoding);
    - [seen] — a program fingerprint the store's campaigns already
      swept, so a resumed campaign skips it without re-running a single
      oracle.

    Loading is read-only and as forgiving as a cache lookup: a corrupt
    or foreign entry is skipped (and counted), never an error; a store
    whose [VERSION] disagrees with {!Service.Cache.format_version} loads
    empty.  Load order is the sorted shard/file order — deterministic,
    independent of directory enumeration order. *)

open Lang

type store = {
  corpus : Stmt.t list;  (** pool members, key order *)
  findings : Stmt.t list;  (** reproducers, key order *)
  seen : string list;  (** swept fingerprints, key order *)
  skipped : int;  (** corrupt/foreign/unparseable entries ignored *)
}

val empty : store

(** Write (idempotently) the given pool members, reproducers, and swept
    fingerprints into the store at [dir], creating or re-versioning it
    as {!Service.Cache.create} would.  Returns the number of entries
    written. *)
val save :
  dir:string ->
  corpus:Stmt.t list ->
  findings:Stmt.t list ->
  seen:string list ->
  int

(** Read a store back; a missing directory is {!empty}. *)
val load : dir:string -> store
