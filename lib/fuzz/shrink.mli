(** Greedy delta-debugging minimizer over statements and expressions.

    Invariants (tested): the shrunk program still satisfies [check] (the
    caller re-runs the failing oracle), its measure [(statement count,
    expression nodes)] is never larger than the input's and strictly
    decreases at every accepted step (so shrinking terminates), and the
    whole process is deterministic — candidates are tried in a fixed
    order and no RNG is involved. *)

open Lang

(** [(Stmt.size s, expression nodes of s)] — the lexicographic shrink
    measure. *)
val measure : Stmt.t -> int * int

(** All one-step reduction candidates in their fixed deterministic order
    (statement deletions, branch/loop elisions, expression collapses),
    each normalized. *)
val candidates : Stmt.t -> Stmt.t list

(** [shrink ~check p]: greedily commit the first candidate on which
    [check] still holds until none survives.  [check] must hold on [p]
    itself (it is not re-verified).  Returns the minimal program and the
    number of accepted reduction steps. *)
val shrink : check:(Stmt.t -> bool) -> Stmt.t -> Stmt.t * int
