(** Greedy delta-debugging minimizer.

    [shrink ~check p] repeatedly tries one-step reductions (statement
    deletion, branch/loop elision, expression collapse) in a fixed
    deterministic order and commits the first reduction on which [check]
    still reports the failure, until no candidate survives.  The measure
    [(statement count, expression nodes)] strictly decreases
    lexicographically at every accepted step, so shrinking terminates,
    the result is never larger than the input, and — [check] being a pure
    predicate and the candidate order fixed — the result is a
    deterministic function of the input.  No RNG is involved. *)

open Lang

let expr_nodes (s : Stmt.t) : int =
  let n = ref 0 in
  let rec ex = function
    | Expr.Const _ | Expr.Reg _ -> incr n
    | Expr.Binop (_, a, b) -> incr n; ex a; ex b
    | Expr.Unop (_, a) -> incr n; ex a
  in
  let rec go = function
    | Stmt.Skip | Stmt.Abort | Stmt.Fence _ | Stmt.Choose _ | Stmt.Load _ -> ()
    | Stmt.Assign (_, e) | Stmt.Store (_, _, e) | Stmt.Freeze (_, e)
    | Stmt.Print e | Stmt.Return e -> ex e
    | Stmt.Cas (_, _, e1, e2) -> ex e1; ex e2
    | Stmt.Fadd (_, _, e) -> ex e
    | Stmt.Seq (a, b) -> go a; go b
    | Stmt.If (e, a, b) -> ex e; go a; go b
    | Stmt.While (e, a) -> ex e; go a
  in
  go s;
  !n

let measure s = (Stmt.size s, expr_nodes s)
let lex_lt (a1, b1) (a2, b2) = a1 < a2 || (a1 = a2 && b1 < b2)

(* Enumerate all single-site applications of [site], in preorder. *)
let site_candidates ~site (s : Stmt.t) : Stmt.t list =
  let n = Mutate.count_sites ~site s in
  List.init n (fun k ->
      match Mutate.rewrite_nth ~site k s with
      | Some c -> c
      | None -> s (* unreachable: k < count *))

let delete_site = function
  | Stmt.Seq _ | Stmt.Skip -> None
  | _ -> Some Stmt.Skip

let if_then_site = function Stmt.If (_, a, _) -> Some a | _ -> None
let if_else_site = function Stmt.If (_, _, b) -> Some b | _ -> None
let while_body_site = function Stmt.While (_, a) -> Some a | _ -> None

(* Expression collapse: replace the k-th compound expression node by one
   of its children.  Enumerated per statement via a counter, like
   Mutate's constant rewriting. *)
let collapse_exprs (s : Stmt.t) : Stmt.t list =
  let out = ref [] in
  (* total number of compound expr sites *)
  let count = ref 0 in
  let rec cex = function
    | Expr.Const _ | Expr.Reg _ -> ()
    | Expr.Binop (_, a, b) -> incr count; cex a; cex b
    | Expr.Unop (_, a) -> incr count; cex a
  in
  let rec cgo = function
    | Stmt.Skip | Stmt.Abort | Stmt.Fence _ | Stmt.Choose _ | Stmt.Load _ -> ()
    | Stmt.Assign (_, e) | Stmt.Store (_, _, e) | Stmt.Freeze (_, e)
    | Stmt.Print e | Stmt.Return e -> cex e
    | Stmt.Cas (_, _, e1, e2) -> cex e1; cex e2
    | Stmt.Fadd (_, _, e) -> cex e
    | Stmt.Seq (a, b) -> cgo a; cgo b
    | Stmt.If (e, a, b) -> cex e; cgo a; cgo b
    | Stmt.While (e, a) -> cex e; cgo a
  in
  cgo s;
  for k = 0 to !count - 1 do
    List.iter
      (fun which ->
        let n = ref 0 in
        let hit = ref false in
        let rec ex e =
          match e with
          | Expr.Const _ | Expr.Reg _ -> e
          | Expr.Binop (o, a, b) ->
            let i = !n in
            incr n;
            if i = k && not !hit then begin
              hit := true;
              match which with `L -> a | `R -> b
            end
            else
              let a' = ex a in
              Expr.Binop (o, a', ex b)
          | Expr.Unop (o, a) ->
            let i = !n in
            incr n;
            if i = k && not !hit then (hit := true; a) else Expr.Unop (o, ex a)
        in
        let rec go s =
          match s with
          | Stmt.Skip | Stmt.Abort | Stmt.Fence _ | Stmt.Choose _
          | Stmt.Load _ -> s
          | Stmt.Assign (r, e) -> Stmt.Assign (r, ex e)
          | Stmt.Store (m, x, e) -> Stmt.Store (m, x, ex e)
          | Stmt.Freeze (r, e) -> Stmt.Freeze (r, ex e)
          | Stmt.Print e -> Stmt.Print (ex e)
          | Stmt.Return e -> Stmt.Return (ex e)
          | Stmt.Cas (r, x, e1, e2) ->
            let e1' = ex e1 in
            Stmt.Cas (r, x, e1', ex e2)
          | Stmt.Fadd (r, x, e) -> Stmt.Fadd (r, x, ex e)
          | Stmt.Seq (a, b) ->
            let a' = go a in
            Stmt.Seq (a', go b)
          | Stmt.If (e, a, b) ->
            let e' = ex e in
            let a' = go a in
            Stmt.If (e', a', go b)
          | Stmt.While (e, a) ->
            let e' = ex e in
            Stmt.While (e', go a)
        in
        let c = go s in
        if !hit then out := c :: !out)
      [ `L; `R ]
  done;
  List.rev !out

(** All one-step reduction candidates, normalized, in a fixed
    deterministic order: statement deletions first (largest wins), then
    branch/loop elisions, then expression collapses. *)
let candidates (s : Stmt.t) : Stmt.t list =
  List.map Stmt.normalize
    (site_candidates ~site:delete_site s
     @ site_candidates ~site:if_then_site s
     @ site_candidates ~site:if_else_site s
     @ site_candidates ~site:while_body_site s
     @ collapse_exprs s)

(** Greedy minimization: [check] must hold on the input (the caller's
    failing oracle re-run); returns the minimal program and the number of
    accepted reduction steps. *)
let shrink ~(check : Stmt.t -> bool) (p : Stmt.t) : Stmt.t * int =
  let rec loop s steps =
    let m = measure s in
    match
      List.find_opt (fun c -> lex_lt (measure c) m && check c) (candidates s)
    with
    | Some c -> loop c (steps + 1)
    | None -> (s, steps)
  in
  loop (Stmt.normalize p) 0
