(** Translation validation: per-run certification of optimizer output.

    Where the paper certifies the optimizer once and for all in Coq (via a
    simulation in SEQ), this reproduction certifies each run: the output
    must weakly behaviorally refine the input in SEQ over the finite
    domain (Def 3.3); by adequacy (Thm 6.2) this entails contextual
    refinement in PS_na.

    Validation has two routes to the same answer: a static fast path that
    certifies the refinement by replaying the certified pass pipeline
    ({!Certify}), and the exhaustive Fig 6 simulation.  The verdict's
    [proof] field records which route fired; the [valid]/[simple] fields
    are route-independent (cross-checked by the qcheck suite). *)

open Lang

(** How [valid] was established: [Static cert] — the pass-replay
    certificate proved it with no enumeration; [Static_abs cert] — the
    abstract-interpretation certifier ({!Certabs}) proved it from
    dataflow facts when no pipeline replay reached the target;
    [Enumerated] — the Fig 6 simulation ran.  A replay certificate cites
    the pass names and rewrite sites involved, in the same
    {!Analysis.Path} coordinates the linter uses; an abstract
    certificate cites the local rewrite rules that bridge source and
    target. *)
type proof =
  | Static of Certify.cert
  | Static_abs of Certabs.cert
  | Enumerated

(** Collapse a proof to the engine's provenance label. *)
val provenance : proof -> Engine.Verdict.provenance

type verdict = {
  valid : bool;  (** advanced refinement (Def 3.3) holds *)
  simple : bool;  (** the stronger §2 notion (Def 2.4) also holds *)
  domain : Domain.t;  (** the finite domain the check ranged over *)
  proof : proof;  (** how [valid] was established *)
}

exception Mixed_access of Loc.t

(** Validate a transformation in SEQ.  [fast_path] (default [true])
    allows the static certificate to discharge the advanced check;
    [passes] is the pipeline the certifier replays (default
    {!Driver.all_passes}).  [simple] always comes from enumeration.
    [budget] (default unlimited, a no-op) bounds the enumerated checks;
    on exhaustion {!Engine.Budget.Exhausted} escapes — callers serving
    remote requests trap it at a verdict boundary
    ({!Engine.Verdict.capture}). *)
val validate :
  ?values:Value.t list ->
  ?fast_path:bool ->
  ?passes:Driver.pass list ->
  ?budget:Engine.Budget.t ->
  src:Stmt.t ->
  tgt:Stmt.t ->
  unit ->
  verdict

(** Optimize and validate the result. *)
val certified_optimize :
  ?passes:Driver.pass list ->
  ?values:Value.t list ->
  ?fast_path:bool ->
  ?budget:Engine.Budget.t ->
  Stmt.t ->
  Driver.report * verdict
