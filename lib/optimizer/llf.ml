(** Load-to-load forwarding (App D, Fig 8a).

    Forward analysis assigning each non-atomic location the set of
    registers known to hold its current memory value (more precisely, per
    the paper's invariant: x ∈ P ∧ r ∈ R(x) ⟹ rs(r) ⊑ M(x)).
    Registers are added by loads, invalidated by stores to the location,
    by acquire accesses (which may import fresh memory), and — a detail
    Fig 8a elides — whenever the register itself is reassigned.

    Extension beyond Fig 8a: a store [x :=na b] of a register records
    [R(x) = {b}], giving register-level store-to-load forwarding for free
    (the invariant holds by the store itself). *)

open Lang

type astate = Reg.Set.t Loc.Map.t  (* absent = ∅ *)

let get (st : astate) x = Loc.Map.find_default ~default:Reg.Set.empty x st

let set (st : astate) x rs =
  if Reg.Set.is_empty rs then Loc.Map.remove x st else Loc.Map.add x rs st

(* join = pointwise intersection (D1 ⊑ D2 ⇔ ∀x. D1(x) ⊇ D2(x)) *)
let join (s1 : astate) (s2 : astate) : astate =
  Loc.Map.merge
    (fun _ r1 r2 ->
      match r1, r2 with
      | Some r1, Some r2 ->
        let i = Reg.Set.inter r1 r2 in
        if Reg.Set.is_empty i then None else Some i
      | _, _ -> None)
    s1 s2

let leq (s1 : astate) (s2 : astate) =
  Loc.Map.for_all (fun x r2 -> Reg.Set.subset r2 (get s1 x)) s2

let bottom_like : astate = Loc.Map.empty  (* all sets empty: the initial state *)

let kill_reg (st : astate) r : astate =
  Loc.Map.filter_map
    (fun _ rs ->
      let rs = Reg.Set.remove r rs in
      if Reg.Set.is_empty rs then None else Some rs)
    st

let clear : astate -> astate = fun _ -> Loc.Map.empty

let transfer (st : astate) (s : Stmt.t) : astate =
  match s with
  | Stmt.Load (a, Mode.Rna, x) -> set (kill_reg st a) x (Reg.Set.add a (get (kill_reg st a) x))
  | Stmt.Load (a, Mode.Rrlx, _) -> kill_reg st a
  | Stmt.Load (a, Mode.Racq, _) -> clear (kill_reg st a)
  | Stmt.Store (Mode.Wna, x, Expr.Reg b) -> set st x (Reg.Set.singleton b)
  | Stmt.Store (Mode.Wna, x, _) -> set st x Reg.Set.empty
  | Stmt.Store ((Mode.Wrlx | Mode.Wrel), _, _) -> st
  | Stmt.Assign (a, _) | Stmt.Choose a | Stmt.Freeze (a, _) -> kill_reg st a
  | Stmt.Cas (a, _, _, _) | Stmt.Fadd (a, _, _) -> clear (kill_reg st a)
  | Stmt.Fence (Mode.Facq | Mode.Facqrel | Mode.Fsc) -> clear st
  | Stmt.Fence Mode.Frel | Stmt.Skip | Stmt.Print _ | Stmt.Abort
  | Stmt.Return _ -> st
  | Stmt.Seq _ | Stmt.If _ | Stmt.While _ -> assert false

type stats = {
  mutable rewrites : int;
  mutable max_loop_iters : int;
  mutable sites : Analysis.Path.t list;  (* reversed; input coordinates *)
}

let rec go (stats : stats) (path : Analysis.Path.t) (st : astate) (s : Stmt.t)
    : Stmt.t * astate =
  match s with
  | Stmt.Load (a, Mode.Rna, x) ->
    let holders = get st x in
    (match Reg.Set.min_elt_opt (Reg.Set.remove a holders) with
     | Some b ->
       stats.rewrites <- stats.rewrites + 1;
       stats.sites <- path :: stats.sites;
       (* a := b; afterwards a also holds x's value *)
       let st = set (kill_reg st a) x (Reg.Set.add a (get (kill_reg st a) x)) in
       (Stmt.Assign (a, Expr.Reg b), st)
     | None -> (s, transfer st s))
  | Stmt.Seq (a, b) ->
    let a', st = go stats (Analysis.Path.child path Analysis.Path.Fst) st a in
    let b', st = go stats (Analysis.Path.child path Analysis.Path.Snd) st b in
    (Stmt.seq a' b', st)
  | Stmt.If (e, a, b) ->
    let a', sa = go stats (Analysis.Path.child path Analysis.Path.Then) st a in
    let b', sb = go stats (Analysis.Path.child path Analysis.Path.Else) st b in
    (Stmt.If (e, a', b'), join sa sb)
  | Stmt.While (e, body) ->
    let bpath = Analysis.Path.child path Analysis.Path.Body in
    let rec fix h iters =
      let _, h' =
        go { rewrites = 0; max_loop_iters = 0; sites = [] } bpath h body
      in
      let h'' = join h h' in
      if leq h'' h && leq h h'' then (h, iters) else fix h'' (iters + 1)
    in
    let head, iters = fix st 1 in
    stats.max_loop_iters <- max stats.max_loop_iters iters;
    let body', _ = go stats bpath head body in
    (Stmt.While (e, body'), head)
  | s -> (s, transfer st s)

(** Run the LLF pass. *)
let run (s : Stmt.t) : Stmt.t * int * int * Analysis.Path.t list =
  let stats = { rewrites = 0; max_loop_iters = 1; sites = [] } in
  let s', _ = go stats Analysis.Path.root bottom_like s in
  (s', stats.rewrites, stats.max_loop_iters, List.rev stats.sites)
