(** Dead register-assignment elimination (pipeline extension; thread-local
    and behavior-preserving).

    Backward liveness over registers.  An assignment to a dead register is
    removed only when its expression is {e total} (no division/modulo —
    run-time faults must be preserved so the pass keeps the exact behavior
    set); dead {e non-atomic} loads are removed too (unused load
    elimination, Ex 2.8).  Dead atomic loads, [choose], and [freeze] are
    kept: their SEQ trace labels are observable. *)

open Lang

let rec total (e : Expr.t) : bool =
  match e with
  | Expr.Const _ | Expr.Reg _ -> true
  | Expr.Binop ((Expr.Div | Expr.Mod), _, _) -> false
  | Expr.Binop (_, a, b) -> total a && total b
  | Expr.Unop (_, a) -> total a

type stats = {
  mutable rewrites : int;
  mutable max_loop_iters : int;
  mutable sites : Analysis.Path.t list;  (* reversed traversal order *)
}

(* Backward pass: [live] is the live-register set after [s]; returns the
   rewritten statement and the live set before it. *)
let rec go (stats : stats) (path : Analysis.Path.t) (s : Stmt.t)
    (live : Reg.Set.t) : Stmt.t * Reg.Set.t =
  let use e = Reg.Set.union (Expr.regs e) in
  match s with
  | Stmt.Assign (r, e) ->
    if (not (Reg.Set.mem r live)) && total e then begin
      stats.rewrites <- stats.rewrites + 1;
      stats.sites <- path :: stats.sites;
      (Stmt.Skip, live)
    end
    else (s, use e (Reg.Set.remove r live))
  | Stmt.Load (r, Mode.Rna, _) when not (Reg.Set.mem r live) ->
    stats.rewrites <- stats.rewrites + 1;
    stats.sites <- path :: stats.sites;
    (Stmt.Skip, live)
  | Stmt.Load (r, _, _) -> (s, Reg.Set.remove r live)
  | Stmt.Store (_, _, e) -> (s, use e live)
  | Stmt.Cas (r, _, e1, e2) -> (s, use e1 (use e2 (Reg.Set.remove r live)))
  | Stmt.Fadd (r, _, e) -> (s, use e (Reg.Set.remove r live))
  | Stmt.Choose r -> (s, Reg.Set.remove r live)
  | Stmt.Freeze (r, e) -> (s, use e (Reg.Set.remove r live))
  | Stmt.Print e | Stmt.Return e -> (s, use e live)
  | Stmt.Skip | Stmt.Abort | Stmt.Fence _ -> (s, live)
  | Stmt.Seq (a, b) ->
    let b', live = go stats (Analysis.Path.child path Analysis.Path.Snd) b live in
    let a', live = go stats (Analysis.Path.child path Analysis.Path.Fst) a live in
    (Stmt.seq a' b', live)
  | Stmt.If (e, a, b) ->
    let a', la = go stats (Analysis.Path.child path Analysis.Path.Then) a live in
    let b', lb = go stats (Analysis.Path.child path Analysis.Path.Else) b live in
    (Stmt.If (e, a', b'), use e (Reg.Set.union la lb))
  | Stmt.While (e, body) ->
    let bpath = Analysis.Path.child path Analysis.Path.Body in
    let rec fix h iters =
      let _, before =
        go { rewrites = 0; max_loop_iters = 0; sites = [] } bpath body h
      in
      let h' = Reg.Set.union h (Reg.Set.union live before) in
      if Reg.Set.equal h h' then (h, iters) else fix h' (iters + 1)
    in
    let head, iters = fix (use e live) 1 in
    stats.max_loop_iters <- max stats.max_loop_iters iters;
    let body', _ = go stats bpath body head in
    (Stmt.While (e, body'), use e head)

(** Run the dead-assignment elimination pass. *)
let run (s : Stmt.t) : Stmt.t * int * int * Analysis.Path.t list =
  let stats = { rewrites = 0; max_loop_iters = 1; sites = [] } in
  let s', _ = go stats Analysis.Path.root s Reg.Set.empty in
  (s', stats.rewrites, stats.max_loop_iters,
   List.sort_uniq Analysis.Path.compare stats.sites)
