(** Static fast-path certification (see certify.mli). *)

open Lang

type stage = {
  pass : Driver.pass;
  rewrites : int;
  sites : Analysis.Path.t list;
}

type cert = { stages : stage list; rounds : int }

let equal_stmt (a : Stmt.t) (b : Stmt.t) = Stdlib.compare a b = 0

(* Every recorded site must name a node of the stage's input — a cheap
   well-formedness check that keeps certificates citable. *)
let sites_resolve (input : Stmt.t) (sites : Analysis.Path.t list) =
  List.for_all (fun p -> Analysis.Path.find input p <> None) sites

let attempt ?(passes = Driver.all_passes) ?(max_rounds = 8) ~(src : Stmt.t)
    ~(tgt : Stmt.t) () : cert option =
  if not (Analysis.Modes.consistent [ src ] && Analysis.Modes.consistent [ tgt ])
  then None
  else if equal_stmt src tgt then Some { stages = []; rounds = 0 }
  else
    (* Replay the pipeline; after each pass application, compare with the
       target.  Stop when a whole round is the identity (the pipeline has
       stabilised short of [tgt]) or [max_rounds] is exhausted. *)
    let rec round cur acc n =
      if n = 0 then None
      else
        let rec pipeline cur acc = function
          | [] -> Error (cur, acc)  (* round over, not yet at tgt *)
          | p :: rest ->
            let cur', rewrites, _iters, sites = Driver.run_pass p cur in
            let acc =
              if rewrites > 0 && sites_resolve cur sites then
                { pass = p; rewrites; sites } :: acc
              else acc
            in
            if equal_stmt cur' tgt then Ok acc
            else pipeline cur' acc rest
        in
        match pipeline cur acc passes with
        | Ok acc ->
          Some { stages = List.rev acc; rounds = max_rounds - n + 1 }
        | Error (cur', acc) ->
          if equal_stmt cur cur' then None else round cur' acc (n - 1)
    in
    round src [] max_rounds

let replay (c : cert) ~(src : Stmt.t) ~(tgt : Stmt.t) : bool =
  let final =
    List.fold_left
      (fun cur (st : stage) ->
        let cur', _, _, _ = Driver.run_pass st.pass cur in
        cur')
      src c.stages
  in
  equal_stmt final tgt

let pp ppf (c : cert) =
  if c.stages = [] then Fmt.pf ppf "trivial (src = tgt)"
  else
    Fmt.pf ppf "@[<v>%a@]"
      (Fmt.list ~sep:Fmt.cut (fun ppf (st : stage) ->
           Fmt.pf ppf "%s: %d rewrite%s at %a" (Driver.pass_name st.pass)
             st.rewrites
             (if st.rewrites = 1 then "" else "s")
             (Fmt.list ~sep:Fmt.comma Analysis.Path.pp)
             st.sites))
      c.stages
