(** Translation validation: per-run certification of optimizer output.

    Where the paper certifies the optimizer once and for all in Coq by
    establishing a simulation in SEQ, we certify each {e run}: the output
    must (advanced-)behaviorally refine the input in SEQ over the finite
    domain (Def 3.3, decided by the Fig 6 simulation).  By the adequacy
    theorem (Thm 6.2) this entails contextual refinement in PS_na — and E5
    cross-checks that implication empirically.

    A static fast path ({!Certify.attempt}) can discharge the advanced
    check without enumerating: if replaying the certified pass pipeline
    from [src] reproduces [tgt] syntactically, the refinement holds by
    the passes' own soundness.  The resulting verdict is identical to the
    enumerated one (qcheck cross-checks this); only [proof] records which
    route was taken. *)

open Lang

type proof =
  | Static of Certify.cert
  | Static_abs of Certabs.cert
  | Enumerated

let provenance = function
  | Static _ -> Engine.Verdict.Static
  | Static_abs _ -> Engine.Verdict.Static_abs
  | Enumerated -> Engine.Verdict.Enumerated

type verdict = {
  valid : bool;
  simple : bool;  (** the stronger §2 notion also holds *)
  domain : Domain.t;
  proof : proof;  (** how [valid] was established *)
}

exception Mixed_access = Seq_model.Config.Mixed_access

(** Validate a transformation in SEQ: [tgt] must weakly behaviorally
    refine [src].  With [fast_path] (the default), a static certificate
    replaces the advanced enumeration when one exists; the [simple] field
    always comes from enumeration (a static certificate only proves the
    advanced notion — DSE may fire across a release, Ex 3.5). *)
let validate ?(values = Domain.default_values) ?(fast_path = true) ?passes
    ?(budget = Engine.Budget.unlimited) ~(src : Stmt.t) ~(tgt : Stmt.t) () :
    verdict =
  let d = Domain.of_stmts ~values [ src; tgt ] in
  let cert =
    if fast_path then Certify.attempt ?passes ~src ~tgt () else None
  in
  let abs_cert =
    match cert with
    | Some _ -> None
    | None -> if fast_path then Certabs.attempt ~src ~tgt () else None
  in
  let valid, proof =
    match (cert, abs_cert) with
    | Some c, _ -> (true, Static c)
    | None, Some c -> (true, Static_abs c)
    | None, None -> (Seq_model.Advanced.check ~budget d ~src ~tgt, Enumerated)
  in
  let simple = valid && Seq_model.Refine.check ~budget d ~src ~tgt in
  { valid; simple; domain = d; proof }

(** Optimize and validate; raises [Invalid_argument] if the optimizer
    produced an output that SEQ refuses — which would be an optimizer
    bug. *)
let certified_optimize ?passes ?values ?fast_path ?budget (s : Stmt.t) :
    Driver.report * verdict =
  let report = Driver.optimize ?passes s in
  let v =
    validate ?values ?fast_path ?passes ?budget ~src:report.Driver.input
      ~tgt:report.Driver.output ()
  in
  (report, v)
