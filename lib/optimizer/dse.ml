(** Dead (overwritten) store elimination (App D, Fig 8b).

    Backward analysis assigning each non-atomic location a token:
    - [Dead_near] (the paper's ◦): an overwriting store lies ahead, with no
      acquire read and no read of x before it;
    - [Dead_far] (the paper's •): an overwriting store lies ahead, possibly
      past an acquire read, but with no release write and no read of x
      before it;
    - [Live] (⊤): anything else.

    Walking backward, a store to x makes x ◦; an acquire read demotes ◦ to
    •; a release write kills • (a full release-acquire pair in program
    order between the store and its overwrite blocks the elimination, per
    Example 3.5); a read of x kills everything.  A non-atomic store whose
    post-token is ◦ or • is removed. *)

open Lang

type token = Dead_near | Dead_far | Live

(* ◦ ⊑ • ⊑ ⊤; join = max *)
let token_join t1 t2 =
  match t1, t2 with
  | Live, _ | _, Live -> Live
  | Dead_far, _ | _, Dead_far -> Dead_far
  | Dead_near, Dead_near -> Dead_near

type astate = token Loc.Map.t  (* absent = Live *)

let get (st : astate) x = Loc.Map.find_default ~default:Live x st

let set (st : astate) x t =
  match t with Live -> Loc.Map.remove x st | _ -> Loc.Map.add x t st

let join (s1 : astate) (s2 : astate) : astate =
  Loc.Map.merge
    (fun _ t1 t2 ->
      match
        token_join (Option.value ~default:Live t1) (Option.value ~default:Live t2)
      with
      | Live -> None
      | t -> Some t)
    s1 s2

let equal (s1 : astate) (s2 : astate) =
  Loc.Map.equal (fun a b -> a = b) s1 s2

let all_live : astate = Loc.Map.empty

(* backward effect of an acquire read: ◦ → • *)
let on_acquire (st : astate) : astate =
  Loc.Map.map (fun t -> match t with Dead_near -> Dead_far | t -> t) st

(* backward effect of a release write: • → ⊤ *)
let on_release (st : astate) : astate =
  Loc.Map.filter (fun _ t -> t <> Dead_far) st

(* backward transfer: given the token state after the instruction, the
   state before it *)
let transfer_back (st : astate) (s : Stmt.t) : astate =
  match s with
  | Stmt.Store (Mode.Wna, x, _) -> set st x Dead_near
  | Stmt.Load (_, _, x) ->
    let st = set st x Live in
    (match s with
     | Stmt.Load (_, Mode.Racq, _) -> on_acquire st
     | _ -> st)
  | Stmt.Store (Mode.Wrel, _, _) | Stmt.Fence Mode.Frel -> on_release st
  | Stmt.Fence Mode.Facq -> on_acquire st
  | Stmt.Cas (_, x, _, _) | Stmt.Fadd (_, x, _) ->
    (* RMW: acquire-then-release in program order; backward composition is
       TB_acq ∘ TB_rel, under which ◦ survives as • — elimination across a
       single RMW stays possible (only a rel-acq *pair* blocks it) *)
    on_acquire (on_release (set st x Live))
  | Stmt.Fence (Mode.Facqrel | Mode.Fsc) ->
    (* SEQ models acq-rel and SC fences as release-then-acquire, i.e. a
       full rel-acq pair: backward TB_rel ∘ TB_acq kills ◦ and • *)
    on_release (on_acquire st)
  | Stmt.Store (Mode.Wrlx, _, _) | Stmt.Skip | Stmt.Assign _ | Stmt.Choose _
  | Stmt.Freeze _ | Stmt.Print _ -> st
  | Stmt.Abort | Stmt.Return _ ->
    (* execution ends here: nothing ahead overwrites anything *)
    all_live
  | Stmt.Seq _ | Stmt.If _ | Stmt.While _ -> assert false

type stats = {
  mutable rewrites : int;
  mutable max_loop_iters : int;
  mutable sites : Analysis.Path.t list;  (* reversed traversal order *)
}

(* Backward analyze-and-rewrite: [st] is the abstract state *after* [s]. *)
let rec go (stats : stats) (path : Analysis.Path.t) (s : Stmt.t) (st : astate)
    : Stmt.t * astate =
  match s with
  | Stmt.Store (Mode.Wna, x, _) ->
    (match get st x with
     | Dead_near | Dead_far ->
       stats.rewrites <- stats.rewrites + 1;
       stats.sites <- path :: stats.sites;
       (Stmt.Skip, st)
     | Live -> (s, transfer_back st s))
  | Stmt.Seq (a, b) ->
    let b', st = go stats (Analysis.Path.child path Analysis.Path.Snd) b st in
    let a', st = go stats (Analysis.Path.child path Analysis.Path.Fst) a st in
    (Stmt.seq a' b', st)
  | Stmt.If (e, a, b) ->
    let a', sa = go stats (Analysis.Path.child path Analysis.Path.Then) a st in
    let b', sb = go stats (Analysis.Path.child path Analysis.Path.Else) b st in
    (Stmt.If (e, a', b'), join sa sb)
  | Stmt.While (e, body) ->
    let bpath = Analysis.Path.child path Analysis.Path.Body in
    let rec fix h iters =
      let _, h_before =
        go { rewrites = 0; max_loop_iters = 0; sites = [] } bpath body h
      in
      let h' = join h h_before in
      if equal h h' then (h, iters) else fix h' (iters + 1)
    in
    (* at the loop head the future is: exit (st) or body-then-head *)
    let head, iters = fix st 1 in
    stats.max_loop_iters <- max stats.max_loop_iters iters;
    let body', _ = go stats bpath body head in
    (Stmt.While (e, body'), head)
  | s -> (s, transfer_back st s)

(** Run the DSE pass. *)
let run (s : Stmt.t) : Stmt.t * int * int * Analysis.Path.t list =
  let stats = { rewrites = 0; max_loop_iters = 1; sites = [] } in
  let s', _ = go stats Analysis.Path.root s all_live in
  (s', stats.rewrites, stats.max_loop_iters,
   List.sort_uniq Analysis.Path.compare stats.sites)
