(** Constant propagation (pipeline extension beyond the paper's four
    passes; purely thread-local, so trivially justified in SEQ).

    Forward analysis mapping registers to known constant values;
    expressions are partially evaluated under that environment.  Folding
    is conservative about UB: divisions and modulos are never folded (the
    fault must stay at run time), and [undef] operands fold to [undef]
    only through total operators — so the rewritten program has exactly
    the behaviors of the original. *)

open Lang

type astate = Value.t Reg.Map.t  (* absent = unknown *)

let join (s1 : astate) (s2 : astate) : astate =
  Reg.Map.merge
    (fun _ v1 v2 ->
      match v1, v2 with
      | Some v1, Some v2 when Value.equal v1 v2 -> Some v1
      | _, _ -> None)
    s1 s2

let equal (s1 : astate) (s2 : astate) = Reg.Map.equal Value.equal s1 s2

(* Partial evaluation: substitute known registers and fold total
   operators. *)
let rec peval (st : astate) (e : Expr.t) : Expr.t =
  match e with
  | Expr.Const _ -> e
  | Expr.Reg r ->
    (match Reg.Map.find_opt r st with
     | Some v -> Expr.Const v
     | None -> e)
  | Expr.Binop (op, a, b) ->
    let a = peval st a and b = peval st b in
    (match op, a, b with
     | (Expr.Div | Expr.Mod), _, _ -> Expr.Binop (op, a, b)  (* keep faults *)
     | _, Expr.Const va, Expr.Const vb ->
       (match Expr.apply_binop op va vb with
        | Expr.Ok v -> Expr.Const v
        | Expr.Fault -> Expr.Binop (op, a, b))
     | _, _, _ -> Expr.Binop (op, a, b))
  | Expr.Unop (op, a) ->
    let a = peval st a in
    (match a with
     | Expr.Const va ->
       (match Expr.apply_unop op va with
        | Expr.Ok v -> Expr.Const v
        | Expr.Fault -> Expr.Unop (op, a))
     | _ -> Expr.Unop (op, a))

let kill r (st : astate) = Reg.Map.remove r st

type stats = {
  mutable rewrites : int;
  mutable max_loop_iters : int;
  mutable sites : Analysis.Path.t list;  (* reversed; input coordinates *)
}

let count_if stats path changed =
  if changed then begin
    stats.rewrites <- stats.rewrites + 1;
    stats.sites <- path :: stats.sites
  end

let rec go (stats : stats) (path : Analysis.Path.t) (st : astate) (s : Stmt.t)
    : Stmt.t * astate =
  let rw e =
    let e' = peval st e in
    count_if stats path (not (Expr.equal e e'));
    e'
  in
  match s with
  | Stmt.Assign (r, e) ->
    let e' = rw e in
    let st' =
      match e' with
      | Expr.Const v -> Reg.Map.add r v st
      | _ -> kill r st
    in
    (Stmt.Assign (r, e'), st')
  | Stmt.Load (r, m, x) -> (s, kill r st)
  | Stmt.Store (m, x, e) -> (Stmt.Store (m, x, rw e), st)
  | Stmt.Cas (r, x, e1, e2) -> (Stmt.Cas (r, x, rw e1, rw e2), kill r st)
  | Stmt.Fadd (r, x, e) -> (Stmt.Fadd (r, x, rw e), kill r st)
  | Stmt.Choose r -> (s, kill r st)
  | Stmt.Freeze (r, e) ->
    let e' = rw e in
    (* freeze of a known defined value is the identity *)
    (match e' with
     | Expr.Const (Value.Int _ as v) ->
       count_if stats path true;
       (Stmt.Assign (r, Expr.Const v), Reg.Map.add r v st)
     | _ -> (Stmt.Freeze (r, e'), kill r st))
  | Stmt.Print e -> (Stmt.Print (rw e), st)
  | Stmt.Return e -> (Stmt.Return (rw e), st)
  | Stmt.Skip | Stmt.Abort | Stmt.Fence _ -> (s, st)
  | Stmt.Seq (a, b) ->
    let a', st = go stats (Analysis.Path.child path Analysis.Path.Fst) st a in
    let b', st = go stats (Analysis.Path.child path Analysis.Path.Snd) st b in
    (Stmt.seq a' b', st)
  | Stmt.If (e, a, b) ->
    let e' = rw e in
    let a', sa = go stats (Analysis.Path.child path Analysis.Path.Then) st a in
    let b', sb = go stats (Analysis.Path.child path Analysis.Path.Else) st b in
    (Stmt.If (e', a', b'), join sa sb)
  | Stmt.While (e, body) ->
    let bpath = Analysis.Path.child path Analysis.Path.Body in
    let rec fix h iters =
      let _, h' =
        go { rewrites = 0; max_loop_iters = 0; sites = [] } bpath h body
      in
      let h'' = join h h' in
      if equal h h'' then (h, iters) else fix h'' (iters + 1)
    in
    let head, iters = fix st 1 in
    stats.max_loop_iters <- max stats.max_loop_iters iters;
    let e' =
      let e' = peval head e in
      count_if stats path (not (Expr.equal e e'));
      e'
    in
    let body', _ = go stats bpath head body in
    (Stmt.While (e', body'), head)

(** Run the constant-propagation pass. *)
let run (s : Stmt.t) : Stmt.t * int * int * Analysis.Path.t list =
  let stats = { rewrites = 0; max_loop_iters = 1; sites = [] } in
  let s', _ = go stats Analysis.Path.root Reg.Map.empty s in
  (s', stats.rewrites, stats.max_loop_iters, List.rev stats.sites)
