(** Redundant-load elimination across atomics (see rle.mli). *)

open Lang

module Vn = Analysis.Vn

type stats = {
  mutable rewrites : int;
  mutable max_loop_iters : int;
  mutable sites : Analysis.Path.t list;  (* reversed; input coordinates *)
}

let rec go (c : Vn.ctx) (stats : stats) (path : Analysis.Path.t)
    (st : Vn.state) (s : Stmt.t) : Stmt.t * Vn.state =
  match s with
  | Stmt.Load (r, Mode.Rna, x) ->
    (match Vn.mem_vn st x with
     | Some n ->
       let hs = Reg.Set.remove r (Vn.holders st n) in
       (match Reg.Set.min_elt_opt hs with
        | Some b ->
          stats.rewrites <- stats.rewrites + 1;
          stats.sites <- path :: stats.sites;
          let st = Vn.transfer c st (Stmt.Assign (r, Expr.Reg b)) in
          (Stmt.Assign (r, Expr.Reg b), st)
        | None -> (s, Vn.transfer c st s))
     | None -> (s, Vn.transfer c st s))
  | Stmt.Seq (a, b) ->
    let a', st = go c stats (Analysis.Path.child path Analysis.Path.Fst) st a in
    let b', st = go c stats (Analysis.Path.child path Analysis.Path.Snd) st b in
    (Stmt.seq a' b', st)
  | Stmt.If (e, a, b) ->
    let a', sa = go c stats (Analysis.Path.child path Analysis.Path.Then) st a in
    let b', sb = go c stats (Analysis.Path.child path Analysis.Path.Else) st b in
    (Stmt.If (e, a', b'), Vn.join sa sb)
  | Stmt.While (e, body) ->
    let bpath = Analysis.Path.child path Analysis.Path.Body in
    let probe h =
      let throwaway = { rewrites = 0; max_loop_iters = 0; sites = [] } in
      snd (go c throwaway bpath h body)
    in
    let head, iters = Vn.loop_fix probe st in
    stats.max_loop_iters <- max stats.max_loop_iters iters;
    let body', _ = go c stats bpath head body in
    (Stmt.While (e, body'), head)
  | leaf -> (leaf, Vn.transfer c st leaf)

(** Run the RLE pass. *)
let run (s : Stmt.t) : Stmt.t * int * int * Analysis.Path.t list =
  let stats = { rewrites = 0; max_loop_iters = 1; sites = [] } in
  let s', _ = go (Vn.create ()) stats Analysis.Path.root Vn.empty s in
  (s', stats.rewrites, stats.max_loop_iters, List.rev stats.sites)
