(** Store-to-load forwarding (§4, Fig 3).

    Forward analysis with, per non-atomic location, the abstract tokens
    - [Fresh v] (the paper's ◦(v)): v was written by the most recent store
      to x and no release has been executed since — so x ∈ P and
      v ⊑ M(x);
    - [Rel v] (the paper's •(v)): as above but a release (and no completing
      acquire) intervened — so x ∈ P ⟹ v ⊑ M(x);
    - [Top]: anything else.

    A non-atomic load of x is rewritten to a register assignment when the
    token is ◦(v) or •(v): the thread will read v (or undef ⊒ v if it lost
    the permission), exactly Fig 4's reasoning. *)

open Lang

type token = Fresh of Value.t | Rel of Value.t | Top

let token_join t1 t2 =
  match t1, t2 with
  | Top, _ | _, Top -> Top
  | Fresh v, Fresh w -> if Value.equal v w then Fresh v else Top
  | (Fresh v | Rel v), (Fresh w | Rel w) ->
    if Value.equal v w then Rel v else Top

let token_leq t1 t2 =
  match t1, t2 with
  | _, Top -> true
  | Fresh v, Fresh w -> Value.equal v w
  | Fresh v, Rel w | Rel v, Rel w -> Value.equal v w
  | _, _ -> false

(* Abstract state: tokens per location; absent = Top. *)
type astate = token Loc.Map.t

let get (st : astate) x = Loc.Map.find_default ~default:Top x st

let set (st : astate) x t =
  match t with Top -> Loc.Map.remove x st | _ -> Loc.Map.add x t st

let join (s1 : astate) (s2 : astate) : astate =
  Loc.Map.merge
    (fun _ t1 t2 ->
      match token_join (Option.value ~default:Top t1) (Option.value ~default:Top t2) with
      | Top -> None
      | t -> Some t)
    s1 s2

let leq (s1 : astate) (s2 : astate) =
  Loc.Map.for_all (fun x t2 -> token_leq (get s1 x) t2) s2

let top : astate = Loc.Map.empty

(* Effect of an acquire: •(v) → ⊤. *)
let on_acquire (st : astate) : astate =
  Loc.Map.filter_map
    (fun _ t -> match t with Rel _ -> None | t -> Some t)
    st

(* Effect of a release: ◦(v) → •(v). *)
let on_release (st : astate) : astate =
  Loc.Map.map (fun t -> match t with Fresh v -> Rel v | t -> t) st

(* Transfer for non-control instructions. *)
let transfer (st : astate) (s : Stmt.t) : astate =
  match s with
  | Stmt.Store (Mode.Wna, x, Expr.Const v) -> set st x (Fresh v)
  | Stmt.Store (Mode.Wna, x, _) -> set st x Top
  | Stmt.Store (Mode.Wrel, _, _) | Stmt.Fence Mode.Frel -> on_release st
  | Stmt.Load (_, Mode.Racq, _) | Stmt.Fence Mode.Facq -> on_acquire st
  | Stmt.Cas _ | Stmt.Fadd _ ->
    (* RMW: acquire-then-release in program order, so ◦(v) survives as
       •(v) — forwarding across a single RMW is sound (cf. Ex 2.11/2.12:
       only a release-acquire *pair* blocks it) *)
    on_release (on_acquire st)
  | Stmt.Fence (Mode.Facqrel | Mode.Fsc) ->
    (* SEQ models acq-rel and SC fences as release-then-acquire: kills
       both token levels *)
    on_acquire (on_release st)
  | Stmt.Store (Mode.Wrlx, _, _)
  | Stmt.Load (_, (Mode.Rna | Mode.Rrlx), _)
  | Stmt.Skip | Stmt.Assign _ | Stmt.Choose _ | Stmt.Freeze _ | Stmt.Print _
  | Stmt.Abort | Stmt.Return _ -> st
  | Stmt.Seq _ | Stmt.If _ | Stmt.While _ -> assert false  (* handled below *)

type stats = {
  mutable rewrites : int;
  mutable max_loop_iters : int;
  mutable sites : Analysis.Path.t list;  (* reversed; input coordinates *)
}

let record stats path =
  stats.rewrites <- stats.rewrites + 1;
  stats.sites <- path :: stats.sites

(* Analyze-and-rewrite in one forward traversal; loops run the analysis to
   a fixpoint first (the token lattice has height 3, so ≤ 3 joins — the
   paper's termination claim, which E3 measures). *)
let rec go (stats : stats) (path : Analysis.Path.t) (st : astate) (s : Stmt.t)
    : Stmt.t * astate =
  match s with
  | Stmt.Load (r, Mode.Rna, x) ->
    (match get st x with
     | Fresh v | Rel v ->
       record stats path;
       (Stmt.Assign (r, Expr.Const v), st)
     | Top -> (s, st))
  | Stmt.Seq (a, b) ->
    let a', st = go stats (Analysis.Path.child path Analysis.Path.Fst) st a in
    let b', st = go stats (Analysis.Path.child path Analysis.Path.Snd) st b in
    (Stmt.seq a' b', st)
  | Stmt.If (e, a, b) ->
    let a', sa = go stats (Analysis.Path.child path Analysis.Path.Then) st a in
    let b', sb = go stats (Analysis.Path.child path Analysis.Path.Else) st b in
    (Stmt.If (e, a', b'), join sa sb)
  | Stmt.While (e, body) ->
    let bpath = Analysis.Path.child path Analysis.Path.Body in
    let rec fix h iters =
      let _, h' =
        go { rewrites = 0; max_loop_iters = 0; sites = [] } bpath h body
      in
      let h'' = join h h' in
      if leq h h'' && leq h'' h then (h, iters)
      else fix h'' (iters + 1)
    in
    let head, iters = fix st 1 in
    stats.max_loop_iters <- max stats.max_loop_iters iters;
    let body', _ = go stats bpath head body in
    (Stmt.While (e, body'), head)
  | s -> (s, transfer st s)

(** Run the SLF pass.  Returns the transformed program, the number of loads
    rewritten, and the maximum number of loop fixpoint iterations. *)
let run (s : Stmt.t) : Stmt.t * int * int * Analysis.Path.t list =
  let stats = { rewrites = 0; max_loop_iters = 1; sites = [] } in
  let s', _ = go stats Analysis.Path.root top s in
  (s', stats.rewrites, stats.max_loop_iters, List.rev stats.sites)
