(** Common-subexpression elimination over {!Analysis.Vn} value numbers.

    [r := e] becomes [r := s] when register [s] provably holds [e]'s
    value.  Pure register-level: no memory event changes, so the rewrite
    is an {e equivalence} (sound in both directions) — which {!Certabs}
    exploits when normalizing candidate targets.  Availability of values
    computed from loads is bounded by the VN kill rules: acquire events
    clear location bindings, relaxed and release accesses do not. *)

open Lang

(** [run s] = (rewritten, rewrites, max loop fixpoint iterations,
    rewrite sites in input coordinates). *)
val run : Stmt.t -> Stmt.t * int * int * Analysis.Path.t list
