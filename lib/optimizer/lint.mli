(** seqlint — static race/UB diagnostics from the permission analyses.

    Every rule is an under-approximating static reading of a SEQ run-time
    phenomenon (§2, Fig 1):

    - [racy-read] (warning): a non-atomic read at a point where the
      permission analysis cannot prove x ∈ P — under an adversarial
      environment the read may return [undef];
    - [racy-write] (error): a non-atomic write at such a point — a racy
      write is undefined behavior (the SEQ configuration drops to ⊥);
    - [mixed-access] (error): a location accessed both atomically and
      non-atomically, in one thread or across threads — SEQ's
      well-formedness precondition is violated; within a single thread
      {!Seq_model.Config} would also raise [Mixed_access] at run time;
    - [unordered-race] (error): a [racy-read] made precise by the static
      DRF certifier on the {e closed} thread set — the conflicting pair
      is unconditional and one of the threads performs no
      release/acquire-class event at all, so no execution can order the
      two accesses: the read {e will} be able to return [undef];
    - [drf-guarded] (hint): a would-be [racy-read]/[racy-write]
      downgraded because {!Analysis.Drf.certify} proved the closed
      thread set race-free; the message cites the ownership-protocol
      evidence (owner, flag, publish and guard paths);
    - [store-intro] (hint): a non-atomic store at a point where x is not
      provably in the written-set F — an optimizer must not {e introduce}
      a store of x ahead of this point (F-validity, §3);
    - [dead-store] (hint): dead store elimination would remove this
      store;
    - [redundant-load] (hint): store-to-load or load-to-load forwarding
      would rewrite this load;
    - [dead-assign] (hint): dead assignment elimination would remove this
      instruction.

    The hint rules name the optimizer pass that would fire and cite its
    rewrite sites, so `seqlint` hints and {!Validate} certificates point
    at the same {!Analysis.Path} locations.

    Soundness contract (qcheck-tested): a program with no [racy-read] /
    [racy-write] / [mixed-access] diagnostic has no executable racy
    access in SEQ, whatever the initial permission set. *)

open Lang

type severity = Error | Warning | Hint

(** Stable machine-readable rule identifiers, e.g. ["racy-read"]. *)
type rule =
  | Racy_read
  | Racy_write
  | Mixed_access
  | Unordered_race
  | Drf_guarded
  | Store_intro
  | Dead_store
  | Redundant_load
  | Dead_assign

val rule_name : rule -> string
val severity_of_rule : rule -> severity

type diag = {
  rule : rule;
  sev : severity;
  thread : int;  (** index into the linted thread list *)
  path : Analysis.Path.t;
  loc : Loc.t option;  (** the accessed location, for the access rules *)
  message : string;
}

(** Lint a thread list (a single program is [ [s] ]).  [hints] (default
    [true]) controls the optimizer-pass hint rules; the race/UB/mixing
    rules always run.  With two or more threads the static DRF certifier
    refines the open-world race rules over the closed thread set —
    downgrading to [drf-guarded] on a [Race_free] verdict, upgrading
    provably unorderable racy reads to [unordered-race]. *)
val lint : ?hints:bool -> Stmt.t list -> diag list

(** [has_errors diags]: some diagnostic has severity [Error]. *)
val has_errors : diag list -> bool

(** One diagnostic per line: [SEV thread T PATH [rule] message] (thread
    prefix only for multi-thread programs). *)
val render : threads:int -> diag list -> string

val pp_diag : threads:int -> Format.formatter -> diag -> unit
