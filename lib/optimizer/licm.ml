(** Loop-invariant code motion (§4, App D).

    Two stages, exactly as the paper describes:
    1. for each loop whose body loads a non-atomic location x but contains
       no store to x and no acquire access, introduce an {e irrelevant
       load} [c := x^na] (c fresh) before the loop — load introduction is
       unconditionally sound in SEQ, so this stage needs no analysis for
       correctness, only for profitability;
    2. run load-to-load forwarding ({!Llf}), which rewrites the loads
       inside the loop to register copies of c.

    Stage 1 is [insert_hoisting_loads]; [run] composes both stages. *)

open Lang

(* Does the statement contain an acquire-flavoured access (which would
   invalidate the forwarded value inside the loop)? *)
let rec has_acquire = function
  | Stmt.Load (_, Mode.Racq, _) | Stmt.Cas _ | Stmt.Fadd _
  | Stmt.Fence (Mode.Facq | Mode.Facqrel | Mode.Fsc) -> true
  | Stmt.Seq (a, b) | Stmt.If (_, a, b) -> has_acquire a || has_acquire b
  | Stmt.While (_, a) -> has_acquire a
  | Stmt.Load (_, (Mode.Rna | Mode.Rrlx), _)
  | Stmt.Skip | Stmt.Assign _ | Stmt.Store _ | Stmt.Fence Mode.Frel
  | Stmt.Choose _ | Stmt.Freeze _ | Stmt.Print _ | Stmt.Abort | Stmt.Return _
    -> false

let rec na_loaded acc = function
  | Stmt.Load (_, Mode.Rna, x) -> Loc.Set.add x acc
  | Stmt.Seq (a, b) | Stmt.If (_, a, b) -> na_loaded (na_loaded acc a) b
  | Stmt.While (_, a) -> na_loaded acc a
  | _ -> acc

let rec na_stored acc = function
  | Stmt.Store (Mode.Wna, x, _) -> Loc.Set.add x acc
  | Stmt.Seq (a, b) | Stmt.If (_, a, b) -> na_stored (na_stored acc a) b
  | Stmt.While (_, a) -> na_stored acc a
  | _ -> acc

(** Loop-invariant non-atomic locations of a loop body. *)
let candidates (body : Stmt.t) : Loc.t list =
  if has_acquire body then []
  else
    Loc.Set.elements
      (Loc.Set.diff (na_loaded Loc.Set.empty body) (na_stored Loc.Set.empty body))

(** Stage 1: insert [c := x^na] before every loop with invariant loads.
    The returned sites are the paths (in the {e input} program) of the
    loops that received a hoisting load. *)
let insert_hoisting_loads (prog : Stmt.t) : Stmt.t * int * Analysis.Path.t list
    =
  let counter = ref 0 in
  let fresh () =
    let r = Stmt.fresh_reg prog (Printf.sprintf "licm%d" !counter) in
    incr counter;
    r
  in
  let inserted = ref 0 in
  let sites = ref [] in
  let rec rewrite path s =
    match s with
    | Stmt.Seq (a, b) ->
      Stmt.seq
        (rewrite (Analysis.Path.child path Analysis.Path.Fst) a)
        (rewrite (Analysis.Path.child path Analysis.Path.Snd) b)
    | Stmt.If (e, a, b) ->
      Stmt.If
        ( e,
          rewrite (Analysis.Path.child path Analysis.Path.Then) a,
          rewrite (Analysis.Path.child path Analysis.Path.Else) b )
    | Stmt.While (e, body) ->
      let body = rewrite (Analysis.Path.child path Analysis.Path.Body) body in
      let pre =
        List.map
          (fun x ->
            incr inserted;
            sites := path :: !sites;
            Stmt.Load (fresh (), Mode.Rna, x))
          (candidates body)
      in
      Stmt.seq_list (pre @ [ Stmt.While (e, body) ])
    | s -> s
  in
  let prog' = rewrite Analysis.Path.root prog in
  (prog', !inserted, List.rev !sites)

(** Run the LICM pass (stage 1 + LLF).  Returns the transformed program,
    the number of loads rewritten by the forwarding stage, the maximal
    loop fixpoint iteration count, and the hoisted loops' paths in the
    input program (the forwarding stage's own sites live in stage-1
    output coordinates, so they are not merged in). *)
let run (s : Stmt.t) : Stmt.t * int * int * Analysis.Path.t list =
  let s, _inserted, hoists = insert_hoisting_loads s in
  let s', rewrites, iters, _llf_sites = Llf.run s in
  (s', rewrites, iters, hoists)
