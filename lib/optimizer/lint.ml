(** seqlint diagnostics (see lint.mli). *)

open Lang

type severity = Error | Warning | Hint

type rule =
  | Racy_read
  | Racy_write
  | Mixed_access
  | Store_intro
  | Dead_store
  | Redundant_load
  | Dead_assign

let rule_name = function
  | Racy_read -> "racy-read"
  | Racy_write -> "racy-write"
  | Mixed_access -> "mixed-access"
  | Store_intro -> "store-intro"
  | Dead_store -> "dead-store"
  | Redundant_load -> "redundant-load"
  | Dead_assign -> "dead-assign"

let severity_of_rule = function
  | Racy_write | Mixed_access -> Error
  | Racy_read -> Warning
  | Store_intro | Dead_store | Redundant_load | Dead_assign -> Hint

type diag = {
  rule : rule;
  sev : severity;
  thread : int;
  path : Analysis.Path.t;
  message : string;
}

let mk rule thread path message =
  { rule; sev = severity_of_rule rule; thread; path; message }

(* racy-read / racy-write / store-intro, per thread, from the permission
   must-analysis. *)
let perm_diags thread (s : Stmt.t) : diag list =
  let facts = Analysis.Perm.analyze s in
  let racy =
    List.map
      (fun (a : Analysis.Perm.access) ->
        match a.kind with
        | `Read ->
          mk Racy_read thread a.path
            (Fmt.str
               "non-atomic read of %s may be racy: not provably permitted \
                here, an adversarial environment makes it return undef"
               (Loc.name a.loc))
        | `Write ->
          mk Racy_write thread a.path
            (Fmt.str
               "non-atomic write to %s may be racy: not provably permitted \
                here, a race makes it undefined behavior"
               (Loc.name a.loc)))
      (Analysis.Perm.racy_accesses ~facts s)
  in
  let intro =
    List.map
      (fun (path, x) ->
        mk Store_intro thread path
          (Fmt.str
             "%s is not provably in the written-set here: introducing a \
              store of %s ahead of this point would be unsound"
             (Loc.name x) (Loc.name x)))
      (Analysis.Perm.store_intro_unsafe ~facts s)
  in
  racy @ intro

let mixed_diags (threads : Stmt.t list) : diag list =
  List.map
    (fun (c : Analysis.Modes.conflict) ->
      mk Mixed_access c.na_site.Analysis.Modes.thread c.na_site.Analysis.Modes.path
        (Fmt.str "%a" (Analysis.Modes.pp_conflict ~src:threads) c))
    (Analysis.Modes.combined_conflicts threads)

(* Optimizer-pass hints: run each relevant pass on the thread alone (so
   every site is in source coordinates) and cite the pass by name. *)
let hint_diags thread (s : Stmt.t) : diag list =
  let sites_of pass =
    let _, _, _, sites = Driver.run_pass pass s in
    sites
  in
  let hint rule pass fmt =
    List.map (fun path ->
        mk rule thread path (Fmt.str fmt (Driver.pass_name pass)))
  in
  hint Dead_store Driver.DSE "%s would remove this dead store"
    (sites_of Driver.DSE)
  @ hint Redundant_load Driver.SLF "%s would rewrite this redundant load"
      (sites_of Driver.SLF)
  @ hint Redundant_load Driver.LLF "%s would rewrite this redundant load"
      (sites_of Driver.LLF)
  @ hint Dead_assign Driver.DAE "%s would remove this dead instruction"
      (sites_of Driver.DAE)

let lint ?(hints = true) (threads : Stmt.t list) : diag list =
  let per_thread =
    List.concat
      (List.mapi
         (fun i s ->
           perm_diags i s @ if hints then hint_diags i s else [])
         threads)
  in
  let diags = mixed_diags threads @ per_thread in
  (* deterministic order: thread, then path, then rule *)
  List.stable_sort
    (fun a b ->
      match compare a.thread b.thread with
      | 0 ->
        (match Analysis.Path.compare a.path b.path with
         | 0 -> compare a.rule b.rule
         | c -> c)
      | c -> c)
    diags

let has_errors diags = List.exists (fun d -> d.sev = Error) diags

let sev_name = function Error -> "error" | Warning -> "warning" | Hint -> "hint"

let pp_diag ~threads ppf (d : diag) =
  if threads > 1 then
    Fmt.pf ppf "%s: thread %d %s [%s] %s" (sev_name d.sev) d.thread
      (Analysis.Path.to_string d.path)
      (rule_name d.rule) d.message
  else
    Fmt.pf ppf "%s: %s [%s] %s" (sev_name d.sev)
      (Analysis.Path.to_string d.path)
      (rule_name d.rule) d.message

let render ~threads (diags : diag list) : string =
  Fmt.str "%a"
    (Fmt.list ~sep:(Fmt.any "@.") (pp_diag ~threads))
    diags
  ^ if diags = [] then "" else "\n"
