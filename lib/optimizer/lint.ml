(** seqlint diagnostics (see lint.mli). *)

open Lang

type severity = Error | Warning | Hint

type rule =
  | Racy_read
  | Racy_write
  | Mixed_access
  | Unordered_race
  | Drf_guarded
  | Store_intro
  | Dead_store
  | Redundant_load
  | Dead_assign

let rule_name = function
  | Racy_read -> "racy-read"
  | Racy_write -> "racy-write"
  | Mixed_access -> "mixed-access"
  | Unordered_race -> "unordered-race"
  | Drf_guarded -> "drf-guarded"
  | Store_intro -> "store-intro"
  | Dead_store -> "dead-store"
  | Redundant_load -> "redundant-load"
  | Dead_assign -> "dead-assign"

let severity_of_rule = function
  | Racy_write | Mixed_access | Unordered_race -> Error
  | Racy_read -> Warning
  | Drf_guarded | Store_intro | Dead_store | Redundant_load | Dead_assign ->
    Hint

type diag = {
  rule : rule;
  sev : severity;
  thread : int;
  path : Analysis.Path.t;
  loc : Loc.t option;
  message : string;
}

let mk ?loc rule thread path message =
  { rule; sev = severity_of_rule rule; thread; path; loc; message }

(* racy-read / racy-write / store-intro, per thread, from the permission
   must-analysis. *)
let perm_diags thread (s : Stmt.t) : diag list =
  let facts = Analysis.Perm.analyze s in
  let racy =
    List.map
      (fun (a : Analysis.Perm.access) ->
        match a.kind with
        | `Read ->
          mk ~loc:a.loc Racy_read thread a.path
            (Fmt.str
               "non-atomic read of %s may be racy: not provably permitted \
                here, an adversarial environment makes it return undef"
               (Loc.name a.loc))
        | `Write ->
          mk ~loc:a.loc Racy_write thread a.path
            (Fmt.str
               "non-atomic write to %s may be racy: not provably permitted \
                here, a race makes it undefined behavior"
               (Loc.name a.loc)))
      (Analysis.Perm.racy_accesses ~facts s)
  in
  let intro =
    List.map
      (fun (path, x) ->
        mk ~loc:x Store_intro thread path
          (Fmt.str
             "%s is not provably in the written-set here: introducing a \
              store of %s ahead of this point would be unsound"
             (Loc.name x) (Loc.name x)))
      (Analysis.Perm.store_intro_unsafe ~facts s)
  in
  racy @ intro

let mixed_diags (threads : Stmt.t list) : diag list =
  List.map
    (fun (c : Analysis.Modes.conflict) ->
      mk Mixed_access c.na_site.Analysis.Modes.thread c.na_site.Analysis.Modes.path
        (Fmt.str "%a" (Analysis.Modes.pp_conflict ~src:threads) c))
    (Analysis.Modes.combined_conflicts threads)

(* Optimizer-pass hints: run each relevant pass on the thread alone (so
   every site is in source coordinates) and cite the pass by name. *)
let hint_diags thread (s : Stmt.t) : diag list =
  let sites_of pass =
    let _, _, _, sites = Driver.run_pass pass s in
    sites
  in
  let hint rule pass fmt =
    List.map (fun path ->
        mk rule thread path (Fmt.str fmt (Driver.pass_name pass)))
  in
  hint Dead_store Driver.DSE "%s would remove this dead store"
    (sites_of Driver.DSE)
  @ hint Redundant_load Driver.SLF "%s would rewrite this redundant load"
      (sites_of Driver.SLF)
  @ hint Redundant_load Driver.LLF "%s would rewrite this redundant load"
      (sites_of Driver.LLF)
  @ hint Dead_assign Driver.DAE "%s would remove this dead instruction"
      (sites_of Driver.DAE)

(* --- Closed-world refinement of the race rules ---------------------

   The per-thread permission rules are open-world: they assume an
   adversarial environment, so every unprotected non-atomic access warns.
   Given the {e full} thread set, the static DRF certifier
   ({!Analysis.Drf}) either proves all cross-thread conflicting pairs
   ordered — downgrading those warnings to hints citing the protocol —
   or exposes pairs that no release/acquire edge could possibly order —
   upgrading the racy reads to precise errors. *)

let rec has_sync = function
  | Stmt.Load (_, Mode.Racq, _)
  | Stmt.Store (Mode.Wrel, _, _)
  | Stmt.Cas _ | Stmt.Fadd _ | Stmt.Fence _ ->
    true
  | Stmt.Seq (a, b) | Stmt.If (_, a, b) -> has_sync a || has_sync b
  | Stmt.While (_, b) -> has_sync b
  | _ -> false

let unconditional (p : Analysis.Path.t) =
  List.for_all
    (function Analysis.Path.Fst | Analysis.Path.Snd -> true | _ -> false)
    p

let drf_adjust (threads : Stmt.t list) (diags : diag list) : diag list =
  if List.length threads < 2 then diags
  else
    match Analysis.Drf.certify threads with
    | Analysis.Drf.Race_free evs ->
      let protocol_for x =
        List.find_map
          (function
            | Analysis.Drf.Owner_protocol p
              when Loc.equal p.Analysis.Drf.ploc x ->
              Some p
            | _ -> None)
          evs
      in
      List.map
        (fun d ->
          match (d.rule, d.loc) with
          | (Racy_read | Racy_write), Some x ->
            let evidence =
              match protocol_for x with
              | Some p ->
                if d.thread = p.Analysis.Drf.owner then
                  Fmt.str
                    "every access of %s by this owner thread happens before \
                     the release publish of %s at %s"
                    (Loc.name x)
                    (Loc.name p.Analysis.Drf.flag)
                    (Analysis.Path.to_string p.Analysis.Drf.publish)
                else (
                  match List.assoc_opt d.thread p.Analysis.Drf.guards with
                  | Some g ->
                    Fmt.str
                      "access of %s is ordered after thread %d's release \
                       publish of %s (at %s) by the acquire-guarded branch \
                       at %s"
                      (Loc.name x) p.Analysis.Drf.owner
                      (Loc.name p.Analysis.Drf.flag)
                      (Analysis.Path.to_string p.Analysis.Drf.publish)
                      (Analysis.Path.to_string g)
                  | None ->
                    Fmt.str "access of %s is owner-protocol ordered"
                      (Loc.name x))
              | None ->
                Fmt.str
                  "no other thread of this closed program conflicts on %s"
                  (Loc.name x)
            in
            {
              d with
              rule = Drf_guarded;
              sev = severity_of_rule Drf_guarded;
              message = Fmt.str "statically race-free: %s" evidence;
            }
          | _ -> d)
        diags
    | Analysis.Drf.Unproven pairs ->
      let arr = Array.of_list threads in
      let unorderable (pr : Analysis.Drf.pair) =
        ((not (has_sync arr.(pr.Analysis.Drf.a.Analysis.Drf.thread)))
        || not (has_sync arr.(pr.Analysis.Drf.b.Analysis.Drf.thread)))
        && unconditional pr.Analysis.Drf.a.Analysis.Drf.path
        && unconditional pr.Analysis.Drf.b.Analysis.Drf.path
      in
      let sides =
        List.concat_map
          (fun (pr : Analysis.Drf.pair) ->
            if unorderable pr then
              [
                (pr.Analysis.Drf.a, pr.Analysis.Drf.b);
                (pr.Analysis.Drf.b, pr.Analysis.Drf.a);
              ]
            else [])
          pairs
      in
      let desync t = if has_sync arr.(t) then None else Some t in
      List.map
        (fun d ->
          if d.rule <> Racy_read then d
          else
            match
              List.find_opt
                (fun ((acc : Analysis.Drf.access), _) ->
                  acc.Analysis.Drf.thread = d.thread
                  && Analysis.Path.equal acc.Analysis.Drf.path d.path)
                sides
            with
            | Some (acc, (other : Analysis.Drf.access)) ->
              let culprit =
                match
                  ( desync acc.Analysis.Drf.thread,
                    desync other.Analysis.Drf.thread )
                with
                | Some t, _ | None, Some t -> t
                | None, None -> other.Analysis.Drf.thread
              in
              {
                d with
                rule = Unordered_race;
                sev = severity_of_rule Unordered_race;
                message =
                  Fmt.str
                    "non-atomic read of %s races: it conflicts with thread \
                     %d's %s of %s at %s and no release/acquire edge can \
                     order them (thread %d performs no synchronization)"
                    (Loc.name acc.Analysis.Drf.loc)
                    other.Analysis.Drf.thread
                    (if other.Analysis.Drf.write then "write" else "read")
                    (Loc.name other.Analysis.Drf.loc)
                    (Analysis.Path.to_string other.Analysis.Drf.path)
                    culprit;
              }
            | None -> d)
        diags

let lint ?(hints = true) (threads : Stmt.t list) : diag list =
  let per_thread =
    List.concat
      (List.mapi
         (fun i s ->
           perm_diags i s @ if hints then hint_diags i s else [])
         threads)
  in
  let diags = drf_adjust threads (mixed_diags threads @ per_thread) in
  (* deterministic order: thread, then path, then rule *)
  List.stable_sort
    (fun a b ->
      match compare a.thread b.thread with
      | 0 ->
        (match Analysis.Path.compare a.path b.path with
         | 0 -> compare a.rule b.rule
         | c -> c)
      | c -> c)
    diags

let has_errors diags = List.exists (fun d -> d.sev = Error) diags

let sev_name = function Error -> "error" | Warning -> "warning" | Hint -> "hint"

let pp_diag ~threads ppf (d : diag) =
  if threads > 1 then
    Fmt.pf ppf "%s: thread %d %s [%s] %s" (sev_name d.sev) d.thread
      (Analysis.Path.to_string d.path)
      (rule_name d.rule) d.message
  else
    Fmt.pf ppf "%s: %s [%s] %s" (sev_name d.sev)
      (Analysis.Path.to_string d.path)
      (rule_name d.rule) d.message

let render ~threads (diags : diag list) : string =
  Fmt.str "%a"
    (Fmt.list ~sep:(Fmt.any "@.") (pp_diag ~threads))
    diags
  ^ if diags = [] then "" else "\n"
