(** [Static_abs]: certification of refinement directly from abstract
    facts, with no pass pipeline and no state enumeration.

    {!Certify} discharges src ⊒ tgt only when replaying the optimizer
    pipeline happens to reproduce [tgt] syntactically.  This module
    instead rewrites the source spine into the target spine one
    certified local step at a time, consulting the {!Analysis.Vn}
    must-facts (value availability, mode-aware kills) and a
    permission-licence set at every point:

    - {b elim/intro-load}: a non-atomic load exchanged with a register
      copy of the provably identical value (SLF/LLF/RLE and their
      converse, load introduction — Ex 2.6);
    - {b elim/intro-store}: a non-atomic store deleted or introduced
      when it provably rewrites the value already present (no-op form,
      Ex 2.6/2.10 — introduction additionally demands the write licence:
      an own na store since the last release-class event), or when a
      covering store overwrites it before anything can observe the
      window (covered form, Ex 2.6(i'));
    - {b reorder}: adjacent independent leaves swapped under the
      catalog's certified-commutation table — independent non-atomics
      (Ex 2.5), roach-motel moves into acquire/release-delimited
      sections (Ex 2.9), and the advanced notion's late-UB moves past
      relaxed reads and choice labels (Remark 3, §3);
    - {b hoist}: a non-atomic read or pure computation moved above a
      memory-silent loop (Ex 2.7), and the LICM shape — a loop-invariant
      load hoisted into a fresh register with in-body loads becoming
      copies (Ex 1.3).

    Refinement composes transitively, so the rule chain is a
    certificate.  Like {!Certify}, a certificate proves the {e advanced}
    notion (Def 3.3) — the late-UB and roach-motel clauses are exactly
    the moves the simple notion refuses — and [None] only ever means the
    fast path does not apply.  Soundness is cross-checked two ways by
    the test suite: every certificate over the litmus corpus agrees with
    the enumerated verdict, and a qcheck property re-validates certified
    pairs by enumeration. *)

open Lang

type rule =
  | Elim_load of Reg.t * Loc.t
  | Intro_load of Reg.t * Loc.t
  | Elim_store of Loc.t * bool  (** [true] = covered, [false] = no-op *)
  | Intro_store of Loc.t * bool  (** [true] = covered, [false] = no-op *)
  | Reorder of Stmt.t * Stmt.t  (** [Reorder (s1, s2)]: s2 moved above s1 *)
  | Hoist_past_loop of Stmt.t
  | Hoist_loop_load of Reg.t * Loc.t

(** The refinement steps that rewrite the (normalized) source into the
    target, in order; [rules = []] means the two are syntactically
    equal. *)
type cert = { rules : rule list }

(** [attempt ~src ~tgt ()] tries to certify src ⊒ tgt (advanced notion)
    by abstract interpretation.  [fuel] bounds the non-consuming
    reorder/hoist steps.  [None] means only that this fast path does not
    apply — never that the refinement fails. *)
val attempt : ?fuel:int -> src:Stmt.t -> tgt:Stmt.t -> unit -> cert option

val rule_name : rule -> string
val pp_rule : Format.formatter -> rule -> unit
val pp : Format.formatter -> cert -> unit
