(** Loop-invariant code motion (§4, App D): insert an irrelevant load
    [c := x^na] before every loop whose body loads x but neither stores to
    x nor acquires (stage 1 — load introduction is unconditionally sound
    in SEQ), then run load-to-load forwarding (stage 2). *)

open Lang

(** Loop-invariant non-atomic locations of a loop body. *)
val candidates : Stmt.t -> Loc.t list

(** Stage 1 only; returns the program, the number of loads inserted, and
    the hoisted loops' paths in the input program. *)
val insert_hoisting_loads : Stmt.t -> Stmt.t * int * Analysis.Path.t list

(** Both stages: transformed program, loads rewritten by forwarding, max
    loop fixpoint iterations, and the hoisted loops' paths in the input
    program (forwarding-stage sites live in stage-1 output coordinates
    and are not merged in). *)
val run : Stmt.t -> Stmt.t * int * int * Analysis.Path.t list
