(** Redundant-load elimination across atomics.

    Value-numbering generalization of SLF/LLF (App D, Fig 8): a
    non-atomic load [r := x.load(na)] becomes [r := b] whenever register
    [b] provably holds [x]'s current memory value — including through
    copy chains and stored expressions the set-based forwarding passes
    cannot track (e.g. [a := x.load(na); c := a; a := ...; b :=
    x.load(na)] forwards from [c]).  "Across atomics": the fact survives
    relaxed loads and stores, release stores and release fences — it is
    killed only by acquire events and same-location clobbers, per the
    {!Analysis.Vn} kill rules (Ex 2.11: only a release-{e acquire} pair
    blocks forwarding).  Atomic loads are never eliminated: every one is
    a labeled environment choice ({!Seq_model.Config}), so each relaxed
    or acquire read gets a fresh value number by construction. *)

open Lang

(** [run s] = (rewritten, rewrites, max loop fixpoint iterations,
    rewrite sites in input coordinates). *)
val run : Stmt.t -> Stmt.t * int * int * Analysis.Path.t list
