(** The optimizer pipeline (§4): SLF, LLF, DSE, LICM, with per-pass
    statistics. *)

open Lang

type pass = CP | SLF | LLF | RLE | CSE | DSE | LICM | DAE

(** CP; SLF; LLF; RLE; CSE; DSE; LICM; DAE — the paper's four passes
    bracketed by the sequential clean-up extensions and the
    value-numbering passes. *)
val all_passes : pass list

(** The paper's §4 pipeline only. *)
val paper_passes : pass list
val pass_name : pass -> string
val pass_of_string : string -> pass option

(** Run one pass: transformed program, number of rewrites, max loop
    fixpoint iterations, and the rewrite sites (paths into the pass's
    input program). *)
val run_pass : pass -> Stmt.t -> Stmt.t * int * int * Analysis.Path.t list

type pass_report = {
  pass : pass;
  rewrites : int;  (** instructions rewritten/removed *)
  loop_iters : int;  (** max analysis fixpoint iterations over any loop *)
  sites : Analysis.Path.t list;
      (** rewrite sites, in the coordinates of the program this pass
          invocation received (exact source coordinates only for the first
          pass of the first round) *)
}

type report = {
  input : Stmt.t;
  output : Stmt.t;
  passes : pass_report list;
  size_before : int;
  size_after : int;
}

(** Run a pipeline of passes (default: {!all_passes}), iterating the
    whole pipeline until the program stabilises, so the result is
    idempotent. *)
val optimize : ?passes:pass list -> ?max_rounds:int -> Stmt.t -> report

val pp_report : Format.formatter -> report -> unit
