(** Static fast-path certification of optimizer transformations.

    {!Validate.validate} decides src ⊒ tgt by enumerating the Fig 6
    simulation over a finite domain — exhaustive but expensive.  This
    module tries to discharge the same claim {e statically}: replay the
    optimizer pipeline from [src] and check after every pass application
    whether the intermediate program is syntactically equal to [tgt].
    Each pass is one of the paper's certified rewrites — its analysis
    under-approximates the per-point permission/written-set facts (§4,
    App D) that justify every rewrite it performs — so reaching [tgt] by
    pass applications alone proves the refinement with no state
    enumeration at all.

    The certificate records which passes fired and where (rewrite sites
    as {!Analysis.Path} values, each in the coordinates of that stage's
    input program), so a validation report can cite the same locations as
    the linter's hints.

    Soundness caveats, both handled here and cross-checked by qcheck:
    - the passes assume SEQ well-formedness, so certification is refused
      for mode-inconsistent programs ({!Analysis.Modes.consistent});
    - a static certificate proves the {e advanced} notion (Def 3.3; DSE
      may fire across a release, Ex 3.5), so it says nothing about the
      stronger §2 notion — clients must still enumerate for that. *)

open Lang

(** One pipeline stage that fired on the way from [src] to [tgt]. *)
type stage = {
  pass : Driver.pass;
  rewrites : int;
  sites : Analysis.Path.t list;
      (** in the coordinates of this stage's input program *)
}

(** A static certificate: applying [stages] (in order) to the source
    yields the target syntactically.  [stages = []] means [src = tgt]. *)
type cert = { stages : stage list; rounds : int }

(** [attempt ~src ~tgt ()] tries to certify src ⊒ tgt by pipeline replay
    (default pipeline {!Driver.all_passes}, same [max_rounds] default as
    {!Driver.optimize}).  [None] means only that the fast path does not
    apply — never that the refinement fails. *)
val attempt :
  ?passes:Driver.pass list ->
  ?max_rounds:int ->
  src:Stmt.t ->
  tgt:Stmt.t ->
  unit ->
  cert option

(** Re-run a certificate's stages from [src] and confirm they reproduce
    [tgt]; used by the test suite to keep certificates honest. *)
val replay : cert -> src:Stmt.t -> tgt:Stmt.t -> bool

(** Human-readable one-line-per-stage rendering, citing pass names and
    rewrite sites. *)
val pp : Format.formatter -> cert -> unit
